// Gatherv: the many-to-one pattern the paper's introduction singles out as
// a matching-misery trigger (e.g. MPI_Gatherv): every worker floods the
// root with differently-sized chunks before the root posts any receives,
// so hundreds of messages pile up in the unexpected store. The root then
// collects them with wildcard-source receives. The example runs the same
// workload on the traditional host matcher and on the offloaded optimistic
// matcher and prints the search-depth statistics side by side — the
// Figure 7 effect, live.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/match"
	"repro/internal/mpi"
)

const (
	ranks  = 16
	rounds = 20
)

func main() {
	type outcome struct {
		label string
		stats match.Stats
	}
	var outcomes []outcome

	for _, kind := range []mpi.EngineKind{mpi.EngineHost, mpi.EngineOffload} {
		world, err := mpi.NewWorld(ranks, mpi.Options{Engine: kind, RecvDepth: 1024})
		if err != nil {
			log.Fatal(err)
		}

		// Workers fire everything up front: all chunks land unexpected.
		var wg sync.WaitGroup
		errs := make([]error, ranks)
		for r := 1; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := world.Proc(r).World()
				for round := 0; round < rounds; round++ {
					chunk := make([]byte, 16+r*8) // per-rank sizes, as Gatherv
					for i := range chunk {
						chunk[i] = byte(r)
					}
					if err := c.Send(0, round, chunk); err != nil {
						errs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		for r := 1; r < ranks; r++ {
			if errs[r] != nil {
				log.Fatalf("rank %d: %v", r, errs[r])
			}
		}

		// Wait until the root's matcher has absorbed the flood, so every
		// receive searches a full unexpected store.
		const expect = (ranks - 1) * rounds
		for unexpectedCount(world.Proc(0)) < expect {
			time.Sleep(time.Millisecond)
		}

		root := world.Proc(0).World()
		got := make([]int, ranks)
		buf := make([]byte, 16+ranks*8)
		for round := 0; round < rounds; round++ {
			for i := 1; i < ranks; i++ {
				st, err := root.Recv(mpi.AnySource, round, buf)
				if err != nil {
					log.Fatal(err)
				}
				if buf[0] != byte(st.Source) {
					log.Fatalf("round %d: chunk from %d carries %d", round, st.Source, buf[0])
				}
				got[st.Source]++
			}
		}
		for r := 1; r < ranks; r++ {
			if got[r] != rounds {
				log.Fatalf("root received %d chunks from rank %d, want %d", got[r], r, rounds)
			}
		}

		switch kind {
		case mpi.EngineHost:
			outcomes = append(outcomes, outcome{"host list matcher", world.Proc(0).HostStats()})
		case mpi.EngineOffload:
			outcomes = append(outcomes, outcome{"offloaded optimistic", world.Proc(0).Matcher().DepthStats()})
		}
		world.Close()
	}

	fmt.Printf("gatherv: %d workers x %d rounds flooded into rank 0, then wildcard receives\n\n",
		ranks-1, rounds)
	fmt.Printf("%-22s %16s %16s\n", "root matcher", "avg UMQ search", "max UMQ search")
	for _, o := range outcomes {
		fmt.Printf("%-22s %16.2f %16d\n", o.label, o.stats.AvgPostDepth(), o.stats.PostMaxDepth)
	}
	fmt.Println("\nThe quadruply-indexed unexpected store keeps the offloaded engine's")
	fmt.Println("searches shallow while the list matcher walks the flood linearly —")
	fmt.Println("the paper's Figure 7 effect on the UMQ side.")
}

// unexpectedCount reads the root's unexpected-store depth on either engine.
func unexpectedCount(p *mpi.Proc) int {
	if m := p.Matcher(); m != nil {
		return m.UnexpectedDepth()
	}
	return int(p.HostStats().Unexpected)
}
