// Wildcard: a master/worker pool exercising the with-conflict machinery.
// The master posts long runs of identical receives (a compatible sequence,
// §III-D3a) and bursts of results arrive together, so the DPA threads all
// book the head of the sequence and resolve via the fast path — or via the
// slow path when it is disabled. The example prints which conflict-
// resolution paths fired.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/internal/bench"
	"repro/internal/dpa"
	"repro/internal/mpi"
)

func main() {
	fastPath := flag.Bool("fastpath", true, "resolve conflicts on the fast path (false: slow path)")
	flag.Parse()

	const (
		workers = 8
		tasks   = 64 // per worker
	)

	// The fast path needs the all-threads-book-the-same-receive
	// precondition; model simultaneous handler activation and disable the
	// early booking shortcut (see core.Config).
	mcfg := bench.PaperMatcherConfig()
	mcfg.EarlyBookingCheck = false
	mcfg.SimultaneousArrival = true
	mcfg.DisableFastPath = !*fastPath

	world, err := mpi.NewWorld(workers+1, mpi.Options{
		Engine:  mpi.EngineOffload,
		Matcher: mcfg,
		DPA:     dpa.Config{Threads: 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	const (
		taskTag   = 1
		resultTag = 2
	)

	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := world.Proc(w).World()
			buf := make([]byte, 8)
			for t := 0; t < tasks; t++ {
				st, err := c.Recv(0, taskTag, buf)
				if err != nil {
					log.Fatalf("worker %d: %v", w, err)
				}
				// "Compute": double each byte, send the result back. All
				// results share (source→0 is per-worker, tag=resultTag).
				out := make([]byte, st.Count)
				for i := 0; i < st.Count; i++ {
					out[i] = buf[i] * 2
				}
				if err := c.Send(0, resultTag, out); err != nil {
					log.Fatalf("worker %d: %v", w, err)
				}
			}
		}(w)
	}

	master := world.Proc(0).World()

	// The master posts ALL result receives up front with AnySource and one
	// tag: a single long compatible sequence in the source-wildcard index.
	results := make([]*mpi.Request, 0, workers*tasks)
	bufs := make([][]byte, workers*tasks)
	for i := range bufs {
		bufs[i] = make([]byte, 8)
		req, err := master.Irecv(mpi.AnySource, resultTag, bufs[i])
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, req)
	}

	// Scatter tasks round-robin.
	for t := 0; t < tasks; t++ {
		for w := 1; w <= workers; w++ {
			payload := []byte{byte(t), byte(w), 3, 4, 5, 6, 7, 8}
			if err := master.Send(w, taskTag, payload); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := mpi.Waitall(results...); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	checked := 0
	for _, b := range bufs {
		if b[2] != 6 { // 3*2
			log.Fatalf("result corrupted: %v", b)
		}
		checked++
	}

	st := world.Proc(0).Matcher().Stats()
	fmt.Printf("wildcard master/worker: %d results verified\n\n", checked)
	fmt.Printf("master matcher statistics (fast path %v):\n", *fastPath)
	fmt.Printf("  messages    %6d\n  blocks      %6d\n", st.Messages, st.Blocks)
	fmt.Printf("  optimistic  %6d\n  conflicts   %6d\n", st.Optimistic, st.Conflicts)
	fmt.Printf("  fast path   %6d\n  slow path   %6d\n", st.FastPath, st.SlowPath)
	fmt.Println("\nRe-run with -fastpath=false to force the §III-D3b slow path.")
}
