// Halo: a 2-D Jacobi-style ghost-cell exchange on a periodic process grid —
// the FillBoundary/LULESH communication pattern of the paper's §V — run
// over DPA-offloaded optimistic matching and verified against the expected
// stencil values. Each rank exchanges a boundary strip with its four
// neighbors every iteration; receives are pre-posted, so matching stays on
// the conflict-free path and the hash indexes keep queue depths flat.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/internal/mpi"
)

const (
	side  = 4 // process grid side: side*side ranks
	strip = 128
	iters = 5
)

func rankOf(x, y int) int { return ((y+side)%side)*side + (x+side)%side }

func main() {
	engine := flag.String("engine", "offload", "matching engine: offload | host")
	flag.Parse()
	kind := mpi.EngineOffload
	if *engine == "host" {
		kind = mpi.EngineHost
	}

	world, err := mpi.NewWorld(side*side, mpi.Options{Engine: kind})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	var wg sync.WaitGroup
	errs := make([]error, side*side)
	for r := 0; r < side*side; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run(world.Proc(r).World(), r)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	fmt.Printf("halo: %d ranks x %d iterations verified on the %s engine\n",
		side*side, iters, kind)
	if kind == mpi.EngineOffload {
		st := world.Proc(0).Matcher().Stats()
		fmt.Printf("rank 0 matcher: %d msgs, %d optimistic, %d conflicts, %d unexpected\n",
			st.Messages, st.Optimistic, st.Conflicts, st.Unexpected)
	}
}

// strip payload: [rank uint32 | iter uint32 | dir uint32 | fill...]
func encodeStrip(rank, iter, dir int) []byte {
	b := make([]byte, strip)
	binary.LittleEndian.PutUint32(b[0:], uint32(rank))
	binary.LittleEndian.PutUint32(b[4:], uint32(iter))
	binary.LittleEndian.PutUint32(b[8:], uint32(dir))
	return b
}

func checkStrip(b []byte, wantRank, wantIter, wantDir int) error {
	r := binary.LittleEndian.Uint32(b[0:])
	i := binary.LittleEndian.Uint32(b[4:])
	d := binary.LittleEndian.Uint32(b[8:])
	if int(r) != wantRank || int(i) != wantIter || int(d) != wantDir {
		return fmt.Errorf("ghost strip corrupted: got (%d,%d,%d), want (%d,%d,%d)",
			r, i, d, wantRank, wantIter, wantDir)
	}
	return nil
}

func run(c mpi.Comm, rank int) error {
	x, y := rank%side, rank/side
	// Direction tags: messages travelling +x carry tag 0, -x tag 1, etc.
	// A receive from the -x neighbor therefore expects tag 0.
	type nb struct {
		rank    int
		sendTag int // direction of my outgoing strip
		recvTag int // direction of the strip arriving from them
	}
	nbs := []nb{
		{rankOf(x+1, y), 0, 1}, // to +x; they send me their -x strip
		{rankOf(x-1, y), 1, 0},
		{rankOf(x, y+1), 2, 3},
		{rankOf(x, y-1), 3, 2},
	}

	bufs := make([][]byte, len(nbs))
	for i := range bufs {
		bufs[i] = make([]byte, strip)
	}
	for iter := 0; iter < iters; iter++ {
		recvs := make([]*mpi.Request, len(nbs))
		for i, n := range nbs {
			req, err := c.Irecv(n.rank, iterTag(iter, n.recvTag), bufs[i])
			if err != nil {
				return err
			}
			recvs[i] = req
		}
		sends := make([]*mpi.Request, len(nbs))
		for i, n := range nbs {
			req, err := c.Isend(n.rank, iterTag(iter, n.sendTag), encodeStrip(rank, iter, n.sendTag))
			if err != nil {
				return err
			}
			sends[i] = req
		}
		if err := mpi.Waitall(append(recvs, sends...)...); err != nil {
			return err
		}
		for i, n := range nbs {
			if err := checkStrip(bufs[i], n.rank, iter, n.recvTag); err != nil {
				return fmt.Errorf("iter %d neighbor %d: %w", iter, n.rank, err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// iterTag separates iterations in tag space, as stencil codes commonly do.
func iterTag(iter, dir int) int { return iter*16 + dir }
