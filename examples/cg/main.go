// CG: a distributed conjugate-gradient-style iteration — the full-chain
// offload story of the paper's §VII. Each iteration performs a hinted
// (no-wildcard) halo exchange of boundary values followed by an Allreduce
// dot product; both the point-to-point tree edges of the collective and the
// halo messages go through the DPA-offloaded optimistic matcher, with the
// communicator's mpi_assert_no_any_source / no_any_tag assertions pruning
// the wildcard indexes from every search.
//
// The "solver" runs 1-D Jacobi-preconditioned CG on the linear system
// A·x = b for the standard tridiagonal Laplacian, partitioned by rank, and
// checks convergence against the known solution.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/mpi"
)

const (
	ranks   = 8
	local   = 32 // unknowns per rank
	maxIter = 200
	tol     = 1e-10
	commID  = 1
)

func main() {
	world, err := mpi.NewWorld(ranks, mpi.Options{
		Engine: mpi.EngineOffload,
		CommInfo: map[int32]mpi.CommInfo{
			commID: {Hints: core.Hints{NoAnySource: true, NoAnyTag: true}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	results := make([]float64, ranks)
	iters := make([]int, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res, it, err := solve(world.Proc(r).Comm(commID))
			if err != nil {
				log.Fatalf("rank %d: %v", r, err)
			}
			results[r] = res
			iters[r] = it
		}(r)
	}
	wg.Wait()

	fmt.Printf("cg: %d ranks x %d unknowns converged in %d iterations (residual %.2e)\n",
		ranks, local, iters[0], results[0])
	st := world.Proc(0).Matcher().Stats()
	fmt.Printf("rank 0 offloaded matcher: %d messages, %d optimistic, %d conflicts\n",
		st.Messages, st.Optimistic, st.Conflicts)
	h := world.Proc(0).Matcher().CommHints(commID)
	fmt.Printf("p2p communicator hints in effect: %v\n", h)
}

// halo exchanges boundary values with the left and right neighbors of the
// 1-D partition (non-periodic).
func halo(c mpi.Comm, left, right float64) (l, r float64, err error) {
	rank, n := c.Rank(), c.Size()
	var reqs []*mpi.Request
	lbuf := make([]byte, 8)
	rbuf := make([]byte, 8)
	if rank > 0 {
		req, err := c.Irecv(rank-1, 0, lbuf)
		if err != nil {
			return 0, 0, err
		}
		reqs = append(reqs, req)
		sreq, err := c.Isend(rank-1, 1, mpi.PackFloat64s([]float64{left}))
		if err != nil {
			return 0, 0, err
		}
		reqs = append(reqs, sreq)
	}
	if rank < n-1 {
		req, err := c.Irecv(rank+1, 1, rbuf)
		if err != nil {
			return 0, 0, err
		}
		reqs = append(reqs, req)
		sreq, err := c.Isend(rank+1, 0, mpi.PackFloat64s([]float64{right}))
		if err != nil {
			return 0, 0, err
		}
		reqs = append(reqs, sreq)
	}
	if err := mpi.Waitall(reqs...); err != nil {
		return 0, 0, err
	}
	if rank > 0 {
		l = mpi.UnpackFloat64s(lbuf)[0]
	}
	if rank < n-1 {
		r = mpi.UnpackFloat64s(rbuf)[0]
	}
	return l, r, nil
}

// applyA computes y = A·p for the 1-D Laplacian (2 on the diagonal, −1 off)
// using ghost values from the halo exchange.
func applyA(c mpi.Comm, p []float64) ([]float64, error) {
	lGhost, rGhost, err := halo(c, p[0], p[len(p)-1])
	if err != nil {
		return nil, err
	}
	y := make([]float64, len(p))
	for i := range p {
		left := lGhost
		if i > 0 {
			left = p[i-1]
		} else if c.Rank() == 0 {
			left = 0
		}
		right := rGhost
		if i < len(p)-1 {
			right = p[i+1]
		} else if c.Rank() == c.Size()-1 {
			right = 0
		}
		y[i] = 2*p[i] - left - right
	}
	return y, nil
}

// dot computes the global dot product via Allreduce — a collective built on
// offloaded point-to-point matching.
func dot(c mpi.Comm, a, b []float64) (float64, error) {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	out := make([]byte, 8)
	if err := c.Allreduce(mpi.PackFloat64s([]float64{s}), mpi.OpSumFloat64, out); err != nil {
		return 0, err
	}
	return mpi.UnpackFloat64s(out)[0], nil
}

// solve runs CG on A·x = b with b = A·1, so the solution is all ones.
func solve(c mpi.Comm) (residual float64, iters int, err error) {
	ones := make([]float64, local)
	for i := range ones {
		ones[i] = 1
	}
	b, err := applyA(c, ones)
	if err != nil {
		return 0, 0, err
	}

	x := make([]float64, local)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rs, err := dot(c, r, r)
	if err != nil {
		return 0, 0, err
	}

	for iters = 0; iters < maxIter && math.Sqrt(rs) > tol; iters++ {
		ap, err := applyA(c, p)
		if err != nil {
			return 0, 0, err
		}
		pap, err := dot(c, p, ap)
		if err != nil {
			return 0, 0, err
		}
		alpha := rs / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew, err := dot(c, r, r)
		if err != nil {
			return 0, 0, err
		}
		beta := rsNew / rs
		rs = rsNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}

	// Verify against the known all-ones solution.
	worst := 0.0
	for i := range x {
		if d := math.Abs(x[i] - 1); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		return 0, 0, fmt.Errorf("solution off by %g", worst)
	}
	return math.Sqrt(rs), iters, nil
}
