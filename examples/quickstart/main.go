// Quickstart: a two-rank world with DPA-offloaded optimistic tag matching.
// Rank 0 sends a handful of tagged messages; rank 1 receives them — one
// pre-posted, one unexpected, one by wildcard — and prints the matching
// statistics the offloaded engine gathered along the way.
package main

import (
	"fmt"
	"log"

	"repro/internal/mpi"
)

func main() {
	// A world is a set of in-process ranks connected by a simulated RDMA
	// fabric. EngineOffload runs optimistic tag matching on a simulated
	// BlueField-3 Data Path Accelerator; swap in EngineHost for the
	// traditional on-CPU linked-list matcher — the API is identical.
	world, err := mpi.NewWorld(2, mpi.Options{Engine: mpi.EngineOffload})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	sender := world.Proc(0).World()
	receiver := world.Proc(1).World()

	// Pre-posted receive: the receive is indexed before the message lands.
	buf := make([]byte, 32)
	req, err := receiver.Irecv(0, 1, buf)
	if err != nil {
		log.Fatal(err)
	}
	if err := sender.Send(1, 1, []byte("pre-posted")); err != nil {
		log.Fatal(err)
	}
	st, err := req.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-posted:  %q from rank %d, tag %d\n", buf[:st.Count], st.Source, st.Tag)

	// Unexpected message: the send happens first, so the message waits in
	// the unexpected store (indexed in all four structures) until the
	// receive is posted.
	if err := sender.Send(1, 2, []byte("unexpected")); err != nil {
		log.Fatal(err)
	}
	st, err = receiver.Recv(0, 2, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unexpected:  %q from rank %d, tag %d\n", buf[:st.Count], st.Source, st.Tag)

	// Wildcard receive: AnySource/AnyTag receives live in their own index.
	if err := sender.Send(1, 42, []byte("wildcard")); err != nil {
		log.Fatal(err)
	}
	st, err = receiver.Recv(mpi.AnySource, mpi.AnyTag, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wildcard:    %q from rank %d, tag %d\n", buf[:st.Count], st.Source, st.Tag)

	// Large message: the rendezvous protocol sends a ready-to-send header;
	// after matching, the receiver pulls the payload with an RDMA read.
	big := make([]byte, 64*1024)
	for i := range big {
		big[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() { done <- sender.Send(1, 3, big) }()
	bigBuf := make([]byte, len(big))
	st, err = receiver.Recv(0, 3, bigBuf)
	if err != nil || <-done != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendezvous:  %d bytes via RDMA read\n", st.Count)

	// The engine's statistics show how the messages were matched.
	ms := world.Proc(1).Matcher().Stats()
	fmt.Printf("\nDPA matcher: %d messages in %d blocks; %d optimistic, %d conflicts, %d unexpected\n",
		ms.Messages, ms.Blocks, ms.Optimistic, ms.Conflicts, ms.Unexpected)
	fp := world.Proc(1).Matcher().ModelFootprint()
	fmt.Printf("DPA memory model: %.1f KiB tables + %.1f KiB descriptors\n",
		float64(fp.BinBytes)/1024, float64(fp.DescriptorBytes)/1024)
}
