// Sweep: a PARTISN/SNAP-style KBA wavefront on a 2-D process grid, built
// with persistent requests. Each rank re-starts the same receive for every
// plane of the sweep, producing the long runs of identical (source, tag)
// receives — compatible sequences, §III-D3a — that the paper's fast path
// and the pre-posting discipline of transport codes are designed around.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/internal/mpi"
)

const (
	nx, ny = 4, 3 // process grid
	planes = 24   // wavefront depth
)

func rankOf(x, y int) int { return y*nx + x }

func main() {
	engine := flag.String("engine", "offload", "matching engine: offload | host")
	flag.Parse()
	kind := mpi.EngineOffload
	if *engine == "host" {
		kind = mpi.EngineHost
	}

	world, err := mpi.NewWorld(nx*ny, mpi.Options{Engine: kind})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	var wg sync.WaitGroup
	errs := make([]error, nx*ny)
	for r := 0; r < nx*ny; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = sweepRank(world.Proc(r).World(), r)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	fmt.Printf("sweep: %dx%d wavefront, %d planes verified on the %v engine\n", nx, ny, planes, kind)
	if kind == mpi.EngineOffload {
		// The far corner sees the longest same-(source,tag) receive runs.
		st := world.Proc(rankOf(nx-1, ny-1)).Matcher().Stats()
		fmt.Printf("corner rank matcher: %d msgs, %d optimistic, %d conflicts (%d fast, %d slow)\n",
			st.Messages, st.Optimistic, st.Conflicts, st.FastPath, st.SlowPath)
	}
}

// sweepRank runs the wavefront for one rank: for each plane, receive the
// upstream x and y contributions, combine, forward downstream. Persistent
// requests re-issue the identical receives plane after plane.
func sweepRank(c mpi.Comm, rank int) error {
	x, y := rank%nx, rank/nx

	var rxX, rxY *mpi.PersistentRequest
	bufX := make([]byte, 8)
	bufY := make([]byte, 8)
	var err error
	if x > 0 {
		if rxX, err = c.RecvInit(rankOf(x-1, y), 0, bufX); err != nil {
			return err
		}
	}
	if y > 0 {
		if rxY, err = c.RecvInit(rankOf(x, y-1), 1, bufY); err != nil {
			return err
		}
	}

	for p := 0; p < planes; p++ {
		// The wavefront value at (x, y, p): plane + manhattan distance,
		// computed from upstream neighbors to verify the data flow.
		want := uint64(p + x + y)
		var reqs []*mpi.Request
		if rxX != nil {
			req, err := rxX.Start()
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if rxY != nil {
			req, err := rxY.Start()
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if err := mpi.Waitall(reqs...); err != nil {
			return err
		}
		if rxX != nil {
			if got := binary.LittleEndian.Uint64(bufX); got != want-1 {
				return fmt.Errorf("plane %d: x-upstream sent %d, want %d", p, got, want-1)
			}
		}
		if rxY != nil {
			if got := binary.LittleEndian.Uint64(bufY); got != want-1 {
				return fmt.Errorf("plane %d: y-upstream sent %d, want %d", p, got, want-1)
			}
		}

		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, want)
		if x < nx-1 {
			if err := c.Send(rankOf(x+1, y), 0, out); err != nil {
				return err
			}
		}
		if y < ny-1 {
			if err := c.Send(rankOf(x, y+1), 1, out); err != nil {
				return err
			}
		}
	}
	return c.Barrier()
}
