// Command traceanalyzer is the paper's contribution C2: it loads MPI
// traces (DUMPI text directories, with a binary cache, or the built-in
// synthetic generators), replays them through the optimistic matching
// structures, and reports matching-behaviour statistics.
//
// Usage:
//
//	traceanalyzer -report callmix [-scale 100]          # Figure 6
//	traceanalyzer -report depth -bins 1,32,128          # Figure 7
//	traceanalyzer -dir traces/BoxLib_CNS -app "BoxLib CNS" -bins 1,32,128
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	var (
		report     = flag.String("report", "depth", "report kind: callmix | depth | summary | tags")
		binsArg    = flag.String("bins", "1,32,128", "comma-separated bin counts")
		dir        = flag.String("dir", "", "DUMPI trace directory (default: synthetic generators)")
		app        = flag.String("app", "", "application name (required with -dir; filters otherwise)")
		scale      = flag.Int("scale", 100, "synthetic generation scale percentage")
		outdir     = flag.String("outdir", "", "also write per-run stats in the artifact layout (<outdir>/<app>/<bins>/stats.csv)")
		matcher    = flag.String("matcher", "optimistic", "matching strategy to emulate: optimistic | list | bin | rank | adaptive")
		parallel   = flag.Int("parallel", 0, "replay worker pool width (0 = GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
		statsJSON  = flag.String("stats-json", "", "write observability counter snapshots as JSON to this file")
	)
	flag.Parse()
	engine := analyzer.Engine(*matcher)
	cfg := analyzer.Config{Engine: engine, Workers: *parallel}

	var sink *obs.Sink
	if *traceOut != "" {
		sink = obs.New(obs.Options{}.Tracing())
	} else if *statsJSON != "" {
		sink = obs.New(obs.Options{})
	}
	cfg.Obs = sink

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "traceanalyzer: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface only live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "traceanalyzer: %v\n", err)
			}
		}()
	}

	bins, err := parseBins(*binsArg)
	if err != nil {
		fatal(err)
	}

	switch {
	case *dir != "":
		if *app == "" {
			fatal(fmt.Errorf("-dir requires -app"))
		}
		tr, err := trace.Load(*dir, *app)
		if err != nil {
			fatal(err)
		}
		reps, err := analyzer.Sweep(tr, bins, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(analyzer.FormatCallMix(reps[:1]))
		fmt.Println()
		fmt.Print(analyzer.FormatQueueDepth(*app, reps))

	case *report == "callmix":
		reps, err := bench.RunFigure6(*scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 6 — distribution of MPI communication calls")
		fmt.Print(analyzer.FormatCallMix(reps))

	case *report == "tags":
		reps, err := bench.RunFigure6(*scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Tag usage (§V): distinct tags and receive keys per application")
		fmt.Print(analyzer.FormatTagUsage(reps))

	case *report == "depth":
		byApp, err := bench.RunFigure7Config(*scale, bins, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Figure 7 — queue depth at bins %v\n", bins)
		for _, a := range tracegen.Apps() {
			if *app != "" && a.Name != *app {
				continue
			}
			fmt.Print(analyzer.FormatQueueDepth(a.Name, byApp[a.Name]))
			if *outdir != "" {
				if err := analyzer.WriteTree(*outdir, byApp[a.Name]); err != nil {
					fatal(err)
				}
			}
		}
		red := bench.Reduce(byApp, bins)
		fmt.Println()
		printReduction(red)

	case *report == "summary":
		byApp, err := bench.RunFigure7Config(*scale, bins, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(analyzer.FormatFigure7Summary(byApp, bins))
		red := bench.Reduce(byApp, bins)
		printReduction(red)

	default:
		fatal(fmt.Errorf("unknown report %q", *report))
	}

	if sink != nil {
		named := []obs.Named{{Name: "analyzer", Sink: sink}}
		if *traceOut != "" {
			if err := obs.WriteTraceFile(*traceOut, named); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
		}
		if *statsJSON != "" {
			if err := obs.WriteJSONFile(*statsJSON, named); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote observability snapshot to %s\n", *statsJSON)
		}
	}
}

func printReduction(red bench.Figure7Reduction) {
	fmt.Println("Cross-application average queue depth (p2p apps):")
	for i, b := range red.Bins {
		fmt.Printf("  %4d bins: %7.3f  (reduction vs 1 bin: %.0f%%)\n",
			b, red.AvgDepth[i], red.ReductionPct[i])
	}
}

func parseBins(s string) ([]int, error) {
	var bins []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad bin count %q", part)
		}
		bins = append(bins, v)
	}
	return bins, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "traceanalyzer: %v\n", err)
	os.Exit(1)
}
