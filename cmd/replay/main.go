// Command replay executes an application trace over the live mini-MPI
// stack: every traced operation becomes a real Isend/Irecv/Waitall/Barrier
// and flows through the selected matching engine — the end-to-end
// counterpart of the analyzer's trace-timeline emulation.
//
// With -transport tcp|udp|shm|hybrid each trace rank becomes its own OS
// process: the command re-executes itself once per rank (spawning a small
// coordinator for rank/address exchange), and every process replays its one
// rank of the same deterministic trace — over sockets, shared-memory rings,
// or the locality-routed mix of both.
//
// Usage:
//
//	replay -app "BoxLib CNS" -engine offload -scale 25
//	replay -dir traces/BoxLib_CNS -app "BoxLib CNS"
//	replay -app AMG -scale 10 -transport tcp
//	replay -app AMG -scale 10 -transport shm
//	replay -app AMG -scale 10 -transport hybrid -sim-hosts 2
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/rdma/netfabric"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	var (
		appName       = flag.String("app", "AMG", "application name (Table II)")
		dir           = flag.String("dir", "", "DUMPI trace directory (default: synthetic generator)")
		engine        = flag.String("engine", "offload", "matching engine: offload | host | raw")
		scale         = flag.Int("scale", 25, "synthetic generation scale percentage")
		inflight      = flag.Int("inflight", 1, "in-flight matching blocks K, 1..8")
		bins          = flag.Int("bins", 256, "hash-table bins (power of two)")
		coalesceBytes = flag.Int("coalesce-bytes", 0, "eager-coalescing byte threshold (0 = off)")
		coalesceMsgs  = flag.Int("coalesce-msgs", 0, "eager-coalescing message-count threshold (0 = off, 1 = off)")
		faults        = flag.String("faults", "", "deterministic fault plan, e.g. seed=1,drop=0.05,dup=0.02")
		traceOut      = flag.String("trace-out", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
		statsJSON     = flag.String("stats-json", "", "write observability counter/histogram snapshots as JSON to this file")
		transport     = flag.String("transport", "inproc", "fabric transport: inproc | tcp | udp | shm | hybrid")
		simHosts      = flag.Int("sim-hosts", 0, "hybrid only: spread ranks round-robin over N simulated hosts (0 = real hostname)")
		ranks         = flag.Int("ranks", 0, "expected world size (0 = the trace's own rank count; a mismatch is an error)")
		rank          = flag.Int("rank", -1, "this process's rank (set by the launcher; -1 = launch all ranks)")
		coord         = flag.String("coord", "", "coordinator address for rank/address exchange (set by the launcher)")
		daemonAddr    = flag.String("daemon", "", "submit the replay to a matchd control address instead of running locally")
		tenantName    = flag.String("tenant", "replay", "tenant name for -daemon submissions")
	)
	flag.Parse()

	// Daemon mode: hand the replay to a running matchd and wait. The
	// daemon regenerates the synthetic trace itself, so only generator
	// inputs travel (-dir traces cannot be submitted).
	if *daemonAddr != "" {
		if *dir != "" {
			fatal(fmt.Errorf("-daemon replays synthetic traces only; -dir is local-mode"))
		}
		if err := replayViaDaemon(*daemonAddr, *tenantName, *appName, *engine,
			*transport, *scale, *bins, *inflight); err != nil {
			fatal(err)
		}
		return
	}

	validTransport := map[string]bool{"inproc": true, "tcp": true, "udp": true, "shm": true, "hybrid": true}
	reliableNet := map[string]bool{"tcp": true, "shm": true, "hybrid": true}
	switch {
	case !validTransport[*transport]:
		fmt.Fprintf(os.Stderr, "replay: -transport %q, want inproc, tcp, udp, shm, or hybrid\n", *transport)
		os.Exit(2)
	case *ranks < 0:
		fmt.Fprintf(os.Stderr, "replay: -ranks %d must be >= 0\n", *ranks)
		os.Exit(2)
	case *transport == "inproc" && (*rank != -1 || *coord != ""):
		fmt.Fprintf(os.Stderr, "replay: -rank/-coord are only meaningful with a net transport\n")
		os.Exit(2)
	case *rank < -1 || (*ranks > 0 && *rank >= *ranks):
		fmt.Fprintf(os.Stderr, "replay: -rank %d outside [0,%d)\n", *rank, *ranks)
		os.Exit(2)
	case *rank >= 0 && *coord == "":
		fmt.Fprintf(os.Stderr, "replay: -rank requires -coord (both are set by the launcher)\n")
		os.Exit(2)
	case *rank < 0 && *coord != "":
		fmt.Fprintf(os.Stderr, "replay: -coord requires -rank\n")
		os.Exit(2)
	case reliableNet[*transport] && *faults != "":
		fmt.Fprintf(os.Stderr, "replay: %s models a reliable transport; lossy runs need -transport udp or -transport inproc\n", *transport)
		os.Exit(2)
	case *simHosts != 0 && *transport != "hybrid":
		fmt.Fprintf(os.Stderr, "replay: -sim-hosts only applies to -transport hybrid\n")
		os.Exit(2)
	case *simHosts < 0:
		fmt.Fprintf(os.Stderr, "replay: -sim-hosts %d must be >= 0\n", *simHosts)
		os.Exit(2)
	}

	if *inflight < 1 || *inflight > core.MaxInFlightBlocks {
		fmt.Fprintf(os.Stderr, "replay: -inflight %d outside [1,%d]\n", *inflight, core.MaxInFlightBlocks)
		os.Exit(2)
	}
	if *bins < 1 || bits.OnesCount(uint(*bins)) != 1 {
		fmt.Fprintf(os.Stderr, "replay: -bins %d must be a power of two >= 1\n", *bins)
		os.Exit(2)
	}
	if *coalesceBytes < 0 || *coalesceMsgs < 0 {
		fmt.Fprintf(os.Stderr, "replay: coalescing thresholds must be >= 0\n")
		os.Exit(2)
	}

	plan, err := rdma.ParseFaultPlan(*faults)
	if err != nil {
		fatal(err)
	}

	var kinds = map[string]mpi.EngineKind{
		"offload": mpi.EngineOffload,
		"host":    mpi.EngineHost,
		"raw":     mpi.EngineRaw,
	}
	kind, ok := kinds[*engine]
	if !ok {
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	var tr *trace.Trace
	if *dir != "" {
		var err error
		tr, err = trace.Load(*dir, *appName)
		if err != nil {
			fatal(err)
		}
	} else {
		app, ok := tracegen.ByName(*appName)
		if !ok {
			fatal(fmt.Errorf("unknown application %q", *appName))
		}
		tr = app.Generate(tracegen.Config{Scale: *scale})
	}
	n := tr.NumRanks()
	if *ranks > 0 && *ranks != n {
		fmt.Fprintf(os.Stderr, "replay: -ranks %d but the trace has %d ranks\n", *ranks, n)
		os.Exit(2)
	}

	// Launcher mode: a net transport with no -rank spawns the whole job —
	// one process per trace rank plus the coordinator — and waits. The
	// children regenerate the identical trace (the synthetic generators are
	// deterministic and -dir traces are shared files).
	if *transport != "inproc" && *rank < 0 {
		fmt.Printf("launching %d %s rank processes for %s (%d cores)\n",
			n, *transport, tr.App, runtime.NumCPU())
		if err := netfabric.Launch(n); err != nil {
			fatal(err)
		}
		return
	}

	cfg := replay.Config{Engine: kind}
	cfg.Options.Matcher = core.Config{
		Bins: *bins, MaxReceives: 4096, BlockSize: 8,
		InFlightBlocks:    *inflight,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
	}
	cfg.Options.CoalesceBytes = *coalesceBytes
	cfg.Options.CoalesceMsgs = *coalesceMsgs
	if *traceOut != "" {
		cfg.Options.Obs = cfg.Options.Obs.Tracing()
	}

	var res *replay.Result
	if *transport == "inproc" {
		fmt.Printf("replaying %s (%d ranks, %d events) on the %v engine...\n",
			tr.App, n, tr.NumEvents(), kind)
		cfg.Options.Faults = plan
		res, err = replay.Run(tr, cfg)
	} else {
		// Over sockets the fault plan arms the transport's injector; UDP's
		// unreliability alone already arms the repair sublayer.
		fmt.Printf("replaying %s rank %d/%d (%d events) on the %v engine over %s...\n",
			tr.App, *rank, n, tr.NumEvents(), kind, *transport)
		cfg.Options.Engine = kind
		if cfg.Options.RecvDepth == 0 {
			cfg.Options.RecvDepth = 64
		}
		ncfg := netfabric.Config{
			Network: *transport, Rank: *rank, Ranks: n,
			Coord: *coord, Faults: plan, Obs: cfg.Options.Obs,
		}
		if *simHosts > 0 {
			ncfg.Host = fmt.Sprintf("simhost-%d", *rank%*simHosts)
		}
		trans, terr := netfabric.New(ncfg)
		if terr != nil {
			fatal(terr)
		}
		var w *mpi.World
		w, err = mpi.NewNetWorld(trans, cfg.Options)
		if err != nil {
			fatal(err)
		}
		res, err = replay.RunWorld(tr, cfg, w)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)
	var frames, coalesced uint64
	for _, s := range res.Sinks {
		h := s.Sink.Hist(obs.HistCoalesceWidth)
		frames += h.Count
		coalesced += h.Sum
	}
	if frames > 0 {
		fmt.Printf("eager coalescing: %d messages in %d frames (mean width %.1f)\n",
			coalesced, frames, float64(coalesced)/float64(frames))
	}
	if res.Matcher.Messages > 0 {
		m := res.Matcher
		fmt.Printf("offloaded matching: %d msgs in %d blocks; %d optimistic, %d conflicts (%d fast, %d slow), %d unexpected\n",
			m.Messages, m.Blocks, m.Optimistic, m.Conflicts, m.FastPath, m.SlowPath, m.Unexpected)
	}
	if plan.Active() || *transport == "udp" {
		fmt.Printf("faults: %v\n", res.Faults)
		r := res.Reliability
		fmt.Printf("repair: sent=%d retransmits=%d dups-dropped=%d out-of-order=%d sacks=%d rnr-retries=%d\n",
			r.Sent, r.Retransmits, r.DupDropped, r.OutOfOrder, r.Sacks, r.SendRNR)
	}
	// One writer per job: the single in-process run, or rank 0 of a
	// multi-process job (each process only has its own ranks' sinks).
	if *rank > 0 {
		return
	}
	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, res.Sinks); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}
	if *statsJSON != "" {
		if err := obs.WriteJSONFile(*statsJSON, res.Sinks); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote observability snapshot to %s\n", *statsJSON)
	}
}

// replayViaDaemon submits one replay job to a matchd instance and waits
// for its terminal status.
func replayViaDaemon(addr, tenant, app, engine, transport string, scale, bins, inflight int) error {
	if transport == "udp" {
		return fmt.Errorf("-daemon hosts reliable transports only (inproc, tcp, shm, hybrid)")
	}
	gen, ok := tracegen.ByName(app)
	if !ok {
		return fmt.Errorf("unknown application %q", app)
	}
	ranks := gen.Generate(tracegen.Config{Scale: scale}).NumRanks()
	if ranks > daemon.MaxRanks {
		return fmt.Errorf("%s at scale %d needs %d ranks; the daemon hosts at most %d", app, scale, ranks, daemon.MaxRanks)
	}
	c, err := daemon.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.Submit(daemon.JobSpec{
		Tenant: tenant, Workload: "replay", Engine: engine, Transport: transport,
		Ranks: ranks, App: app, Scale: scale, Bins: bins, InFlight: inflight,
	})
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s to %s (tenant %s, %d ranks)\n", st.ID, addr, tenant, ranks)
	st, err = c.Wait(st.ID, 10*time.Minute)
	if err != nil {
		return err
	}
	if st.State != "done" {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	fmt.Printf("replayed %s over %s via daemon: %d sends, matched %d (%d unexpected)\n",
		app, transport, st.Messages, st.Matched, st.Unexpected)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "replay: %v\n", err)
	os.Exit(1)
}
