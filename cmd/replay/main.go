// Command replay executes an application trace over the live mini-MPI
// stack: every traced operation becomes a real Isend/Irecv/Waitall/Barrier
// and flows through the selected matching engine — the end-to-end
// counterpart of the analyzer's trace-timeline emulation.
//
// Usage:
//
//	replay -app "BoxLib CNS" -engine offload -scale 25
//	replay -dir traces/BoxLib_CNS -app "BoxLib CNS"
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	var (
		appName       = flag.String("app", "AMG", "application name (Table II)")
		dir           = flag.String("dir", "", "DUMPI trace directory (default: synthetic generator)")
		engine        = flag.String("engine", "offload", "matching engine: offload | host | raw")
		scale         = flag.Int("scale", 25, "synthetic generation scale percentage")
		inflight      = flag.Int("inflight", 1, "in-flight matching blocks K, 1..8")
		bins          = flag.Int("bins", 256, "hash-table bins (power of two)")
		coalesceBytes = flag.Int("coalesce-bytes", 0, "eager-coalescing byte threshold (0 = off)")
		coalesceMsgs  = flag.Int("coalesce-msgs", 0, "eager-coalescing message-count threshold (0 = off, 1 = off)")
		faults        = flag.String("faults", "", "deterministic fault plan, e.g. seed=1,drop=0.05,dup=0.02")
		traceOut      = flag.String("trace-out", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
		statsJSON     = flag.String("stats-json", "", "write observability counter/histogram snapshots as JSON to this file")
	)
	flag.Parse()

	if *inflight < 1 || *inflight > core.MaxInFlightBlocks {
		fmt.Fprintf(os.Stderr, "replay: -inflight %d outside [1,%d]\n", *inflight, core.MaxInFlightBlocks)
		os.Exit(2)
	}
	if *bins < 1 || bits.OnesCount(uint(*bins)) != 1 {
		fmt.Fprintf(os.Stderr, "replay: -bins %d must be a power of two >= 1\n", *bins)
		os.Exit(2)
	}
	if *coalesceBytes < 0 || *coalesceMsgs < 0 {
		fmt.Fprintf(os.Stderr, "replay: coalescing thresholds must be >= 0\n")
		os.Exit(2)
	}

	plan, err := rdma.ParseFaultPlan(*faults)
	if err != nil {
		fatal(err)
	}

	var kinds = map[string]mpi.EngineKind{
		"offload": mpi.EngineOffload,
		"host":    mpi.EngineHost,
		"raw":     mpi.EngineRaw,
	}
	kind, ok := kinds[*engine]
	if !ok {
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	var tr *trace.Trace
	if *dir != "" {
		var err error
		tr, err = trace.Load(*dir, *appName)
		if err != nil {
			fatal(err)
		}
	} else {
		app, ok := tracegen.ByName(*appName)
		if !ok {
			fatal(fmt.Errorf("unknown application %q", *appName))
		}
		tr = app.Generate(tracegen.Config{Scale: *scale})
	}

	fmt.Printf("replaying %s (%d ranks, %d events) on the %v engine...\n",
		tr.App, tr.NumRanks(), tr.NumEvents(), kind)
	cfg := replay.Config{Engine: kind}
	cfg.Options.Faults = plan
	cfg.Options.Matcher = core.Config{
		Bins: *bins, MaxReceives: 4096, BlockSize: 8,
		InFlightBlocks:    *inflight,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
	}
	cfg.Options.CoalesceBytes = *coalesceBytes
	cfg.Options.CoalesceMsgs = *coalesceMsgs
	if *traceOut != "" {
		cfg.Options.Obs = cfg.Options.Obs.Tracing()
	}
	res, err := replay.Run(tr, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)
	var frames, coalesced uint64
	for _, s := range res.Sinks {
		h := s.Sink.Hist(obs.HistCoalesceWidth)
		frames += h.Count
		coalesced += h.Sum
	}
	if frames > 0 {
		fmt.Printf("eager coalescing: %d messages in %d frames (mean width %.1f)\n",
			coalesced, frames, float64(coalesced)/float64(frames))
	}
	if res.Matcher.Messages > 0 {
		m := res.Matcher
		fmt.Printf("offloaded matching: %d msgs in %d blocks; %d optimistic, %d conflicts (%d fast, %d slow), %d unexpected\n",
			m.Messages, m.Blocks, m.Optimistic, m.Conflicts, m.FastPath, m.SlowPath, m.Unexpected)
	}
	if plan.Active() {
		fmt.Printf("faults: %v\n", res.Faults)
		r := res.Reliability
		fmt.Printf("repair: sent=%d retransmits=%d dups-dropped=%d out-of-order=%d sacks=%d rnr-retries=%d\n",
			r.Sent, r.Retransmits, r.DupDropped, r.OutOfOrder, r.Sacks, r.SendRNR)
	}
	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, res.Sinks); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}
	if *statsJSON != "" {
		if err := obs.WriteJSONFile(*statsJSON, res.Sinks); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote observability snapshot to %s\n", *statsJSON)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "replay: %v\n", err)
	os.Exit(1)
}
