// Command tracegen emits the synthetic DUMPI traces of the sixteen
// Table II applications, and renders Table II itself.
//
// Usage:
//
//	tracegen -table
//	tracegen -out traces/ [-app "BoxLib CNS"] [-scale 100]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	var (
		out    = flag.String("out", "", "directory to write DUMPI traces into (one subdirectory per app)")
		app    = flag.String("app", "", "generate only this application (default: all)")
		scale  = flag.Int("scale", 100, "iteration scale percentage")
		table  = flag.Bool("table", false, "print Table II and exit")
		format = flag.String("format", "dumpi", "trace file format: dumpi | jsonl")
	)
	flag.Parse()

	if *table {
		fmt.Print(tracegen.TableII())
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out or -table required")
		flag.Usage()
		os.Exit(2)
	}

	apps := tracegen.Apps()
	if *app != "" {
		a, ok := tracegen.ByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown application %q\n", *app)
			os.Exit(2)
		}
		apps = []tracegen.App{a}
	}

	cfg := tracegen.Config{Scale: *scale}
	for _, a := range apps {
		tr := a.Generate(cfg)
		dir := filepath.Join(*out, sanitized(a.Name))
		if err := trace.WriteDirFormat(dir, tr, *format); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %s: %v\n", a.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-18s %5d ranks %8d events -> %s\n", a.Name, tr.NumRanks(), tr.NumEvents(), dir)
	}
}

func sanitized(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
