// Command whatif is the capacity planner CLI: it prices candidate matcher
// configurations for a workload against the calibrated cost model and a
// memory budget, without running the full engine per candidate.
//
// Two subcommands:
//
//	whatif <global flags> whatif -bins 512 -block 16 -inflight 4
//	    price ONE explicit configuration against the current default and
//	    print a stage-by-stage delta (wire / parallel / slow / block).
//
//	whatif <global flags> recommend -top 3 -json plan.json
//	    search the configuration space (coarse grid + local refinement
//	    around the leaders) and print ranked recommendations; -json writes
//	    the machine-readable repro/plan/v1 document (validated by
//	    obscheck -plan).
//
// The workload is a built-in synthetic generator (-app, -scale) or a
// DUMPI trace directory (-dir with -app). -budget caps the modeled
// per-rank memory footprint ("512KiB", "2MiB", or plain bytes);
// candidates above it are rejected.
//
// Examples:
//
//	whatif -app LULESH -scale 50 recommend -top 3 -json plan.json
//	whatif -app AMG -budget 1MiB whatif -bins 512 -inflight 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	global := flag.NewFlagSet("whatif", flag.ExitOnError)
	var (
		app       = global.String("app", "LULESH", "application name (synthetic generator, or trace name with -dir)")
		dir       = global.String("dir", "", "DUMPI trace directory (default: synthetic generators)")
		scale     = global.Int("scale", 30, "synthetic generation scale percentage")
		budget    = global.String("budget", "", "per-rank memory budget (e.g. 512KiB, 2MiB, or bytes; empty = unlimited)")
		maxRecv   = global.Int("max-receives", 0, "planned posted-receive capacity (default: the paper configuration's)")
		parallel  = global.Int("parallel", 0, "analyzer replay worker pool width (0 = GOMAXPROCS)")
		statsJSON = global.String("stats-json", "", "write planner observability counters as JSON to this file")
	)
	global.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: whatif [global flags] <whatif|recommend> [flags]")
		global.PrintDefaults()
	}
	if err := global.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if global.NArg() < 1 {
		global.Usage()
		os.Exit(2)
	}

	budgetBytes, err := parseBytes(*budget)
	if err != nil {
		fatal(err)
	}

	var tr *trace.Trace
	if *dir != "" {
		tr, err = trace.Load(*dir, *app)
		if err != nil {
			fatal(err)
		}
	} else {
		gen, ok := tracegen.ByName(*app)
		if !ok {
			fatal(fmt.Errorf("unknown application %q (see traceanalyzer -report callmix for names)", *app))
		}
		tr = gen.Generate(tracegen.Config{Scale: *scale})
	}

	sink := obs.New(obs.Options{})
	p := plan.New(tr, plan.Config{
		MaxReceives: *maxRecv,
		BudgetBytes: budgetBytes,
		Workers:     *parallel,
		Obs:         sink,
	})

	sub, args := global.Arg(0), global.Args()[1:]
	switch sub {
	case "whatif":
		err = runWhatIf(p, budgetBytes, args)
	case "recommend":
		err = runRecommend(p, budgetBytes, args)
	default:
		err = fmt.Errorf("unknown subcommand %q (want whatif or recommend)", sub)
	}
	if err != nil {
		fatal(err)
	}
	if *statsJSON != "" {
		named := []obs.Named{{Name: "plan", Sink: sink}}
		if err := obs.WriteJSONFile(*statsJSON, named); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote observability snapshot to %s\n", *statsJSON)
	}
}

// runWhatIf prices one explicit candidate against the default and prints
// the stage-by-stage delta.
func runWhatIf(p *plan.Planner, budgetBytes int64, args []string) error {
	fs := flag.NewFlagSet("whatif whatif", flag.ExitOnError)
	def := plan.DefaultCandidate()
	var (
		bins     = fs.Int("bins", def.Bins, "bins per hash table (power of two)")
		block    = fs.Int("block", def.BlockSize, "arrival-block size")
		inflight = fs.Int("inflight", def.InFlight, "in-flight block window K")
		threads  = fs.Int("threads", def.Threads, "DPA thread count")
		cobytes  = fs.Int("coalesce-bytes", def.CoalesceBytes, "eager-coalescing byte threshold (0 = off)")
		comsgs   = fs.Int("coalesce-msgs", def.CoalesceMsgs, "eager-coalescing message threshold (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cand := plan.Candidate{
		Bins: *bins, BlockSize: *block, InFlight: *inflight, Threads: *threads,
		CoalesceBytes: *cobytes, CoalesceMsgs: *comsgs,
	}

	base, err := p.Estimate(def)
	if err != nil {
		return err
	}
	est, err := p.Estimate(cand)
	if err != nil {
		return err
	}

	f := p.Features()
	fmt.Printf("what-if: %s (%d ranks, %d sends, mean burst %.1f)\n\n", f.App, f.Procs, f.Sends, f.MeanBurst)
	fmt.Printf("%-24s %14s %14s\n", "", "current", "candidate")
	dimRow := func(name string, a, b int) { fmt.Printf("  %-22s %14d %14d\n", name, a, b) }
	dimRow("bins", def.Bins, cand.Bins)
	dimRow("block size", def.BlockSize, cand.BlockSize)
	dimRow("in-flight K", def.InFlight, cand.InFlight)
	dimRow("threads", def.Threads, cand.Threads)
	dimRow("coalesce bytes", def.CoalesceBytes, cand.CoalesceBytes)
	dimRow("coalesce msgs", def.CoalesceMsgs, cand.CoalesceMsgs)

	fmt.Printf("\nstage occupancy (ns/msg):\n")
	stageRow := func(name string, a, b float64) {
		fmt.Printf("  %-22s %14.1f %14.1f   %+8.1f\n", name, a, b, b-a)
	}
	stageRow("wire", base.Stages.WireNS, est.Stages.WireNS)
	stageRow("dpa parallel", base.Stages.ParallelNS, est.Stages.ParallelNS)
	stageRow("slow-path serial", base.Stages.SlowSerialNS, est.Stages.SlowSerialNS)
	stageRow("block serial", base.Stages.BlockSerialNS, est.Stages.BlockSerialNS)
	stageRow("match total", base.Stages.MatchNS(), est.Stages.MatchNS())

	fmt.Printf("\npredicted:\n")
	fmt.Printf("  %-22s %14.0f %14.0f   (%.2fx)\n", "offload msg/s",
		base.Offload.MsgPerSec, est.Offload.MsgPerSec, est.Speedup(base))
	fmt.Printf("  %-22s %14.0f %14.0f\n", "host msg/s", base.Host.MsgPerSec, est.Host.MsgPerSec)
	fmt.Printf("  %-22s %14.3f %14.3f\n", "queue depth mean", base.QueueMean, est.QueueMean)
	fmt.Printf("  %-22s %14d %14d\n", "queue depth max", base.QueueMax, est.QueueMax)
	fmt.Printf("  %-22s %14.4f %14.4f\n", "bin conflict prob", base.BinConflictProb, est.BinConflictProb)
	fmt.Printf("  %-22s %14s %14s\n", "footprint",
		formatBytes(base.FootprintBytes), formatBytes(est.FootprintBytes))
	if budgetBytes > 0 {
		fmt.Printf("  %-22s %14s\n", "budget", formatBytes(int(budgetBytes)))
	}
	if est.Reject != "" {
		fmt.Printf("\ncandidate REJECTED: %s\n", est.Reject)
		os.Exit(1)
	}
	return nil
}

// runRecommend searches the space and prints the ranked table.
func runRecommend(p *plan.Planner, budgetBytes int64, args []string) error {
	fs := flag.NewFlagSet("whatif recommend", flag.ExitOnError)
	var (
		topN     = fs.Int("top", 3, "recommendations to print")
		jsonPath = fs.String("json", "", "write the repro/plan/v1 document to this file")
		refine   = fs.Int("refine", 2, "local refinement rounds around the leaders")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := p.Recommend(plan.RecommendConfig{TopN: *topN, RefineRounds: *refine})
	if err != nil {
		return err
	}

	f := res.Features
	fmt.Printf("recommend: %s (%d ranks, %d sends, mean burst %.1f", f.App, f.Procs, f.Sends, f.MeanBurst)
	if budgetBytes > 0 {
		fmt.Printf(", budget %s", formatBytes(int(budgetBytes)))
	}
	fmt.Printf(")\n")
	fmt.Printf("%d candidates evaluated, %d rejected\n\n", res.Evaluated, res.Rejected)

	fmt.Printf("%-4s %-44s %12s %8s %9s %10s %9s\n",
		"rank", "configuration", "msg/s", "speedup", "queue", "conflict", "footprint")
	row := func(rank string, e plan.Estimate) {
		fmt.Printf("%-4s %-44s %12.0f %7.2fx %9.3f %10.4f %9s\n",
			rank, e.Candidate.String(), e.Offload.MsgPerSec, e.Speedup(res.Baseline),
			e.QueueMean, e.BinConflictProb, formatBytes(e.FootprintBytes))
	}
	for i, e := range res.Entries {
		row(fmt.Sprintf("#%d", i+1), e)
	}
	row("base", res.Baseline)

	if *jsonPath != "" {
		doc := plan.DocFromResult(res, budgetBytes)
		if err := plan.WriteDoc(*jsonPath, doc); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%s)\n", *jsonPath, plan.Schema)
	}
	return nil
}

// parseBytes accepts plain byte counts and binary-suffixed sizes
// (K/KiB/KB = 1024, M/MiB/MB = 1024², G/GiB/GB = 1024³).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, suf := range []struct {
		name string
		mul  int64
	}{
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mul
			s = s[:len(s)-len(suf.name)]
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 512KiB, 2MiB, or bytes)", s)
	}
	return v * mult, nil
}

func formatBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "whatif: %v\n", err)
	os.Exit(1)
}
