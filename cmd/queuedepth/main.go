// Command queuedepth regenerates Figure 7 across the full artifact sweep:
// every Table II application analyzed at bin counts 1…256 (powers of two),
// reporting per-app average and maximum queue depth plus the cross-
// application average and its reduction relative to traditional (1-bin)
// matching.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analyzer"
	"repro/internal/bench"
	"repro/internal/tracegen"
)

func main() {
	var (
		scale = flag.Int("scale", 100, "synthetic generation scale percentage")
		full  = flag.Bool("full", false, "sweep 1..256 bins (default: the paper's 1/32/128)")
	)
	flag.Parse()

	bins := bench.Figure7Bins
	if *full {
		bins = bench.ArtifactBins
	}

	byApp, err := bench.RunFigure7(*scale, bins)
	if err != nil {
		fmt.Fprintf(os.Stderr, "queuedepth: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("Figure 7 — queue depth sweep, bins %v, scale %d%%\n\n", bins, *scale)
	for _, a := range tracegen.Apps() {
		fmt.Print(analyzer.FormatQueueDepth(a.Name, byApp[a.Name]))
	}

	red := bench.Reduce(byApp, bins)
	fmt.Println("\nCross-application average queue depth (p2p apps):")
	fmt.Println("  paper: 8.21 at 1 bin -> 0.80 at 32 bins (-90%) -> 0.33 at 128 bins (-95%)")
	for i, b := range red.Bins {
		fmt.Printf("  %4d bins: %7.3f  (reduction vs 1 bin: %.0f%%)\n",
			b, red.AvgDepth[i], red.ReductionPct[i])
	}
}
