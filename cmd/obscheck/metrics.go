package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
)

// checkMetrics validates an OpenMetrics text exposition: the invariants a
// Prometheus scraper relies on, checked structurally so CI can gate a live
// matchd /metrics endpoint without a scraper.
func checkMetrics(src string) error {
	r, err := openMetrics(src)
	if err != nil {
		return err
	}
	defer r.Close()

	// Per-family state, keyed by the declared (TYPE) family name.
	types := map[string]string{}
	samples := map[string]int{} // family → sample count
	// Histogram bookkeeping: cumulative bucket progression and the
	// _count/_sum/+Inf cross-checks, keyed by family + label set (minus le).
	lastBucket := map[string]float64{}
	infBucket := map[string]float64{}
	counts := map[string]float64{}
	sums := map[string]bool{}

	sawEOF := false
	lines := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		lines++
		where := func(msg string, args ...any) error {
			return fmt.Errorf("%s:%d: %s (line %q)", src, lines, fmt.Sprintf(msg, args...), line)
		}
		if sawEOF && strings.TrimSpace(line) != "" {
			return where("content after # EOF")
		}
		switch {
		case line == "# EOF":
			sawEOF = true
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return where("malformed TYPE comment")
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				return where("unknown metric type %q", typ)
			}
			if _, dup := types[name]; dup {
				return where("family %s declared twice", name)
			}
			types[name] = typ
			continue
		case strings.HasPrefix(line, "#"):
			continue // HELP or other comments: ignored
		case strings.TrimSpace(line) == "":
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return where("%v", err)
		}
		family, suffix := familyOf(name, types)
		if family == "" {
			return where("sample %s has no declared family", name)
		}
		samples[family]++
		switch types[family] {
		case "counter":
			if suffix != "_total" {
				return where("counter sample %s must end in _total", name)
			}
			if value < 0 {
				return where("counter %s is negative", name)
			}
		case "gauge":
			if suffix != "" {
				return where("gauge sample %s must equal its family name", name)
			}
		case "histogram":
			series := family + "{" + stripLE(labels) + "}"
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return where("histogram bucket without le label")
				}
				if le == "+Inf" {
					infBucket[series] = value
				} else {
					if _, err := strconv.ParseFloat(le, 64); err != nil {
						return where("unparseable le %q", le)
					}
					if value < lastBucket[series] {
						return where("bucket le=%s of %s is not cumulative (%g < %g)",
							le, family, value, lastBucket[series])
					}
					lastBucket[series] = value
				}
			case "_count":
				counts[series] = value
			case "_sum":
				sums[series] = true
			default:
				return where("histogram sample %s must end in _bucket, _sum, or _count", name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %v", src, err)
	}
	if !sawEOF {
		return fmt.Errorf("%s: missing # EOF terminator", src)
	}

	// Cross-checks: every histogram series needs a +Inf bucket equal to
	// its _count, its last finite bucket must not exceed _count, and a
	// _sum must exist.
	series := make([]string, 0, len(counts))
	for s := range counts {
		series = append(series, s)
	}
	sort.Strings(series)
	for _, s := range series {
		inf, ok := infBucket[s]
		if !ok {
			return fmt.Errorf("%s: histogram %s has no le=\"+Inf\" bucket", src, s)
		}
		if inf != counts[s] {
			return fmt.Errorf("%s: histogram %s +Inf bucket %g != count %g", src, s, inf, counts[s])
		}
		if lastBucket[s] > counts[s] {
			return fmt.Errorf("%s: histogram %s buckets exceed count", src, s)
		}
		if !sums[s] {
			return fmt.Errorf("%s: histogram %s has no _sum sample", src, s)
		}
	}
	for s := range infBucket {
		if _, ok := counts[s]; !ok {
			return fmt.Errorf("%s: histogram %s has buckets but no _count sample", src, s)
		}
	}

	total := 0
	for _, n := range samples {
		total += n
	}
	fmt.Printf("%s: ok — %d families, %d samples, %d histogram series\n",
		src, len(types), total, len(counts))
	return nil
}

// openMetrics reads the exposition from a URL or a file.
func openMetrics(src string) (io.ReadCloser, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("%s: HTTP %s", src, resp.Status)
		}
		return resp.Body, nil
	}
	return os.Open(src)
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("sample without a value")
		}
		name = fields[0]
		rest = fields[1]
	}
	if name == "" {
		return "", "", 0, fmt.Errorf("sample without a name")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", "", 0, fmt.Errorf("sample without a value")
	}
	v, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	return name, labels, v, nil
}

// familyOf resolves a sample name to its declared family: exact match
// (gauges) or a declared prefix plus a known suffix.
func familyOf(name string, types map[string]string) (family, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			base := strings.TrimSuffix(name, suf)
			if _, ok := types[base]; ok {
				return base, suf
			}
		}
	}
	return "", ""
}

// stripLE removes the le pair from a label string, identifying the series
// shared by a histogram's buckets, sum, and count.
func stripLE(labels string) string {
	var out []string
	for _, part := range splitLabels(labels) {
		if !strings.HasPrefix(part, "le=") {
			out = append(out, part)
		}
	}
	return strings.Join(out, ",")
}

// labelValue extracts one label's (unescaped-enough) value.
func labelValue(labels, key string) (string, bool) {
	for _, part := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(part, key+"="); ok {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}
