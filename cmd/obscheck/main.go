// Command obscheck validates a Chrome trace_event JSON file produced by
// the observability layer (obs.WriteTrace / the -trace-out flags). It
// checks the structural invariants a trace viewer relies on — a
// traceEvents array whose records carry a name, a known phase, and
// non-negative timestamps — and exits non-zero on the first violation, so
// CI can smoke-test trace production without a browser.
//
// With -bench it instead validates a msgrate -bench-json results document
// against the repro/msgrate-bench/v1 schema; with -plan, a whatif
// recommendation document against the repro/plan/v1 schema; with -metrics,
// an OpenMetrics text exposition (a matchd /metrics scrape — the argument
// may be a file or an http:// URL): every sample must belong to a declared
// family, counter samples must end in _total, histogram buckets must
// cumulate to a le="+Inf" bucket equal to the _count sample, and the
// document must terminate with # EOF.
//
// Usage:
//
//	obscheck trace.json
//	obscheck -min-events 10 trace.json
//	obscheck -bench BENCH_msgrate.json
//	obscheck -plan plan.json
//	obscheck -metrics http://127.0.0.1:7601/metrics
//	obscheck -metrics metrics.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/plan"
)

// event mirrors the subset of the trace_event record schema obscheck
// validates. Unknown fields are ignored (the format is open-ended).
type event struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  float64  `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
	S    string   `json:"s"`
}

// knownPhases are the trace_event phase codes obs emits (plus the common
// duration pair for forward compatibility).
var knownPhases = map[string]bool{
	"X": true, // complete span
	"i": true, // instant
	"M": true, // metadata
	"B": true, // duration begin
	"E": true, // duration end
	"C": true, // counter
}

func main() {
	minEvents := flag.Int("min-events", 1, "fail unless the trace holds at least this many non-metadata events")
	benchMode := flag.Bool("bench", false, "validate a msgrate -bench-json document instead of a Chrome trace")
	planMode := flag.Bool("plan", false, "validate a whatif recommendation document instead of a Chrome trace")
	metricsMode := flag.Bool("metrics", false, "validate an OpenMetrics text exposition (file or http:// URL) instead of a Chrome trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-min-events N] trace.json | obscheck -bench bench.json | obscheck -plan plan.json | obscheck -metrics URL-or-file")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *metricsMode {
		if err := checkMetrics(path); err != nil {
			fatal(err)
		}
		return
	}

	if *planMode {
		doc, err := plan.ReadDoc(path)
		if err != nil {
			fatal(err)
		}
		budget := "unlimited"
		if doc.BudgetBytes > 0 {
			budget = fmt.Sprintf("%d bytes", doc.BudgetBytes)
		}
		fmt.Printf("%s: ok — %s, %s on %d ranks, %d recommendations (%d evaluated, %d rejected, budget %s)\n",
			path, doc.Schema, doc.App, doc.Procs, len(doc.Entries), doc.Evaluated, doc.Rejected, budget)
		return
	}

	if *benchMode {
		doc, err := bench.ReadBenchJSON(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: ok — %s, %d results (k=%d reps=%d coalesce=%dB/%d)\n",
			path, doc.Schema, len(doc.Results), doc.Config.K, doc.Config.Reps,
			doc.Config.CoalesceBytes, doc.Config.CoalesceMsgs)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc struct {
		TraceEvents     []event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("%s: not valid JSON: %w", path, err))
	}
	if doc.TraceEvents == nil {
		fatal(fmt.Errorf("%s: no traceEvents array", path))
	}

	spans, instants, metadata := 0, 0, 0
	procs := map[int]bool{}
	named := map[int]bool{}
	for i, e := range doc.TraceEvents {
		where := func(msg string, args ...any) error {
			return fmt.Errorf("%s: traceEvents[%d] (%q): %s", path, i, e.Name, fmt.Sprintf(msg, args...))
		}
		if e.Name == "" {
			fatal(where("missing name"))
		}
		if !knownPhases[e.Ph] {
			fatal(where("unknown phase %q", e.Ph))
		}
		if e.Pid == nil {
			fatal(where("missing pid"))
		}
		procs[*e.Pid] = true
		switch e.Ph {
		case "M":
			metadata++
			if e.Name == "process_name" {
				named[*e.Pid] = true
			}
			continue
		case "X":
			spans++
			if e.Dur < 0 {
				fatal(where("negative duration %v", e.Dur))
			}
		case "i":
			instants++
			if e.S != "" && e.S != "t" && e.S != "p" && e.S != "g" {
				fatal(where("bad instant scope %q", e.S))
			}
		}
		if e.Ts == nil {
			fatal(where("missing ts"))
		}
		if *e.Ts < 0 {
			fatal(where("negative ts %v", *e.Ts))
		}
		if e.Tid == nil {
			fatal(where("missing tid"))
		}
	}
	for pid := range procs {
		if !named[pid] {
			fatal(fmt.Errorf("%s: pid %d has events but no process_name metadata", path, pid))
		}
	}
	if got := spans + instants; got < *minEvents {
		fatal(fmt.Errorf("%s: %d events (%d spans, %d instants), want >= %d", path, got, spans, instants, *minEvents))
	}

	fmt.Printf("%s: ok — %d processes, %d spans, %d instants, %d metadata records\n",
		path, len(procs), spans, instants, metadata)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
	os.Exit(1)
}
