// Command msgrate regenerates Figure 8: the single-process message-rate
// ping-pong benchmark across the five configurations — Optimistic-DPA in
// the no-conflict (NC), with-conflict fast-path (WC-FP), and with-conflict
// slow-path (WC-SP) settings, plus the MPI-CPU and RDMA-CPU baselines.
//
// With -ranks N it instead runs the multi-rank ring message-rate workload,
// and with -transport tcp|udp|shm|hybrid the N ranks become N OS processes
// over real sockets or shared-memory rings: the command re-executes itself
// once per rank (spawning a small coordinator for rank/address exchange),
// so one invocation measures true multi-core scaling:
//
//	msgrate -transport tcp -ranks 4 -bench-json out.json
//	msgrate -transport udp -ranks 2 -faults seed=7,drop=0.05
//	msgrate -transport shm -ranks 4
//	msgrate -transport hybrid -ranks 4 -sim-hosts 2
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/dpa"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/rdma/netfabric"
)

// runViaDaemon submits one ring job to a matchd instance and waits for
// its terminal status, printing a result row in the local-run format.
func runViaDaemon(addr, tenant, engine, transport string, ranks, k, reps, payload, threads, bins, inflight int) error {
	if transport == "udp" {
		return fmt.Errorf("-daemon hosts reliable transports only (inproc, tcp, shm, hybrid)")
	}
	if ranks == 0 {
		ranks = 2
	}
	c, err := daemon.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.Submit(daemon.JobSpec{
		Tenant: tenant, Workload: "ring", Engine: engine, Transport: transport,
		Ranks: ranks, K: k, Reps: reps, PayloadBytes: payload,
		Threads: threads, Bins: bins, InFlight: inflight,
	})
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s to %s (tenant %s)\n", st.ID, addr, tenant)
	st, err = c.Wait(st.ID, 10*time.Minute)
	if err != nil {
		return err
	}
	if st.State != "done" {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	fmt.Printf("%-22s %12.0f msg/s  (%d ranks, %d msgs, matched %d)\n",
		"ring-"+transport+"-daemon", st.MsgPerSec, st.Ranks, st.Messages, st.Matched)
	return nil
}

// writeProfile dumps a named runtime profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
	}
}

func main() {
	var (
		k             = flag.Int("k", 100, "messages per sequence (paper: 100)")
		reps          = flag.Int("reps", 500, "sequence repetitions (paper: 500)")
		payload       = flag.Int("payload", 8, "eager payload bytes")
		threads       = flag.Int("threads", 32, "DPA threads (paper: 32)")
		inflight      = flag.Int("inflight", 1, "in-flight matching blocks K, 1..8 (1 = paper's serial stream)")
		bins          = flag.Int("bins", 2048, "hash-table bins (power of two)")
		coalesceBytes = flag.Int("coalesce-bytes", 0, "eager-coalescing byte threshold (0 = off)")
		coalesceMsgs  = flag.Int("coalesce-msgs", 0, "eager-coalescing message-count threshold (0 = off, 1 = off)")
		modeled       = flag.Bool("modeled", false, "report cost-model rates (core-count independent) instead of wall clock")
		faults        = flag.String("faults", "", "deterministic fault plan, e.g. seed=1,drop=0.05,dup=0.02,delay=0.01,rnr=0.01")
		benchJSON     = flag.String("bench-json", "", "write machine-readable results ("+bench.BenchSchema+") to this file")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprof     = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockprof     = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
		traceOut      = flag.String("trace-out", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
		statsJSON     = flag.String("stats-json", "", "write observability counter/histogram snapshots as JSON to this file")
		transport     = flag.String("transport", "inproc", "fabric transport: inproc | tcp | udp | shm | hybrid")
		ranks         = flag.Int("ranks", 0, "ring-mode world size (0 = classic two-rank Figure 8; requires >= 1 with a non-inproc transport)")
		simHosts      = flag.Int("sim-hosts", 0, "hybrid only: spread ranks round-robin over N simulated hosts (0 = real hostname)")
		rank          = flag.Int("rank", -1, "this process's rank (set by the launcher; -1 = launch all ranks)")
		coord         = flag.String("coord", "", "coordinator address for rank/address exchange (set by the launcher)")
		engine        = flag.String("engine", "host", "ring-mode matching engine: host | offload | raw")
		daemonAddr    = flag.String("daemon", "", "submit the ring run to a matchd control address instead of running locally")
		tenantName    = flag.String("tenant", "msgrate", "tenant name for -daemon submissions")
	)
	flag.Parse()

	// Daemon mode: hand the ring workload to a running matchd and wait.
	if *daemonAddr != "" {
		if err := runViaDaemon(*daemonAddr, *tenantName, *engine, *transport,
			*ranks, *k, *reps, *payload, *threads, *bins, *inflight); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	engines := map[string]mpi.EngineKind{
		"host": mpi.EngineHost, "offload": mpi.EngineOffload, "raw": mpi.EngineRaw,
	}
	engineKind, engineOK := engines[*engine]
	validTransport := map[string]bool{"inproc": true, "tcp": true, "udp": true, "shm": true, "hybrid": true}
	reliableNet := map[string]bool{"tcp": true, "shm": true, "hybrid": true}
	switch {
	case !validTransport[*transport]:
		fmt.Fprintf(os.Stderr, "msgrate: -transport %q, want inproc, tcp, udp, shm, or hybrid\n", *transport)
		os.Exit(2)
	case !engineOK:
		fmt.Fprintf(os.Stderr, "msgrate: -engine %q, want host, offload, or raw\n", *engine)
		os.Exit(2)
	case *ranks < 0:
		fmt.Fprintf(os.Stderr, "msgrate: -ranks %d must be >= 0\n", *ranks)
		os.Exit(2)
	case *transport != "inproc" && *ranks < 1:
		fmt.Fprintf(os.Stderr, "msgrate: -transport %s needs -ranks >= 1\n", *transport)
		os.Exit(2)
	case *transport == "inproc" && (*rank != -1 || *coord != ""):
		fmt.Fprintf(os.Stderr, "msgrate: -rank/-coord are only meaningful with a non-inproc transport\n")
		os.Exit(2)
	case *rank < -1 || (*ranks > 0 && *rank >= *ranks):
		fmt.Fprintf(os.Stderr, "msgrate: -rank %d outside [0,%d)\n", *rank, *ranks)
		os.Exit(2)
	case *rank >= 0 && *coord == "":
		fmt.Fprintf(os.Stderr, "msgrate: -rank requires -coord (both are set by the launcher)\n")
		os.Exit(2)
	case *rank < 0 && *coord != "":
		fmt.Fprintf(os.Stderr, "msgrate: -coord requires -rank\n")
		os.Exit(2)
	case reliableNet[*transport] && *faults != "":
		fmt.Fprintf(os.Stderr, "msgrate: %s models a reliable transport; lossy runs need -transport udp or -transport inproc\n", *transport)
		os.Exit(2)
	case *simHosts != 0 && *transport != "hybrid":
		fmt.Fprintf(os.Stderr, "msgrate: -sim-hosts only applies to -transport hybrid\n")
		os.Exit(2)
	case *simHosts < 0:
		fmt.Fprintf(os.Stderr, "msgrate: -sim-hosts %d must be >= 0\n", *simHosts)
		os.Exit(2)
	case *transport != "inproc" && *modeled:
		fmt.Fprintf(os.Stderr, "msgrate: -modeled rates are core-count independent; they only make sense with -transport inproc\n")
		os.Exit(2)
	}

	if *inflight < 1 || *inflight > core.MaxInFlightBlocks {
		fmt.Fprintf(os.Stderr, "msgrate: -inflight %d outside [1,%d]\n", *inflight, core.MaxInFlightBlocks)
		os.Exit(2)
	}
	if *bins < 1 || bits.OnesCount(uint(*bins)) != 1 {
		fmt.Fprintf(os.Stderr, "msgrate: -bins %d must be a power of two >= 1\n", *bins)
		os.Exit(2)
	}
	if *coalesceBytes < 0 || *coalesceMsgs < 0 {
		fmt.Fprintf(os.Stderr, "msgrate: coalescing thresholds must be >= 0\n")
		os.Exit(2)
	}

	plan, err := rdma.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		os.Exit(1)
	}

	// Launcher mode: a net transport with no -rank spawns the whole job —
	// one process per rank plus the coordinator — and waits.
	if *transport != "inproc" && *rank < 0 {
		fmt.Printf("launching %d %s rank processes (%d cores)\n", *ranks, *transport, runtime.NumCPU())
		if err := netfabric.Launch(*ranks); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface only live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			}
		}()
	}
	if *mutexprof != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprof)
	}
	if *blockprof != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprof)
	}

	doc := &bench.BenchDoc{
		Config: bench.BenchConfig{
			K: *k, Reps: *reps, PayloadBytes: *payload, Threads: *threads,
			InFlight: *inflight, CoalesceBytes: *coalesceBytes, CoalesceMsgs: *coalesceMsgs,
			Faults: *faults, Modeled: *modeled,
		},
	}
	writeBench := func() {
		if *benchJSON == "" {
			return
		}
		if err := bench.WriteBenchJSON(*benchJSON, doc); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote bench results to %s\n", *benchJSON)
	}

	// Ring mode: -ranks N runs the multi-rank ring workload — in one
	// process over the in-process fabric, or as this process's rank of an
	// out-of-process job over sockets.
	if *ranks > 0 {
		var obsOpts obs.Options
		if *traceOut != "" {
			obsOpts = obsOpts.Tracing()
		}
		matcher := bench.PaperMatcherConfig()
		matcher.Bins = *bins
		matcher.InFlightBlocks = *inflight
		opts := mpi.Options{
			Engine:        engineKind,
			Matcher:       matcher,
			DPA:           dpa.Config{Threads: *threads},
			RecvDepth:     max(2**k, 64),
			EagerLimit:    1024,
			CoalesceBytes: *coalesceBytes,
			CoalesceMsgs:  *coalesceMsgs,
			Obs:           obsOpts,
		}
		var w *mpi.World
		if *transport == "inproc" {
			opts.Faults = plan
			w, err = mpi.NewWorld(*ranks, opts)
		} else {
			// Over sockets the fault plan arms the transport's injector;
			// UDP's unreliability alone already arms the repair sublayer.
			ncfg := netfabric.Config{
				Network: *transport, Rank: *rank, Ranks: *ranks,
				Coord: *coord, Faults: plan, Obs: obsOpts,
			}
			if *simHosts > 0 {
				ncfg.Host = fmt.Sprintf("simhost-%d", *rank%*simHosts)
			}
			tr, terr := netfabric.New(ncfg)
			if terr != nil {
				fmt.Fprintf(os.Stderr, "msgrate: %v\n", terr)
				os.Exit(1)
			}
			w, err = mpi.NewNetWorld(tr, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		label := fmt.Sprintf("ring-%s-%dx-%s", *transport, *ranks, *engine)
		res, err := bench.RunMsgRateRing(w, bench.RingConfig{
			Label: label, K: *k, Reps: *reps, PayloadBytes: *payload,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res)
		if plan.Active() || *transport == "udp" {
			fmt.Printf("%-22s %12s faults: %v\n", "", "", res.Faults)
			fmt.Printf("%-22s %12s repair: retransmits=%d dups-dropped=%d out-of-order=%d sacks=%d\n",
				"", "", res.Reliability.Retransmits, res.Reliability.DupDropped,
				res.Reliability.OutOfOrder, res.Reliability.Sacks)
		}
		// One writer per job: the single in-process run, or rank 0 of the
		// multi-process job (every process computes the same global rate).
		if *rank <= 0 {
			doc.Config.Transport = *transport
			doc.Config.Ranks = *ranks
			doc.Config.SimHosts = *simHosts
			doc.Config.Cores = runtime.NumCPU()
			entry := bench.BenchEntry{
				Label:     res.Label,
				Engine:    engineKind.String(),
				MsgPerSec: res.MsgPerSec,
				Messages:  res.Messages,
				ElapsedNS: res.Elapsed.Nanoseconds(),
			}
			// shm/hybrid runs report the writing rank's spin/park behavior
			// alongside the rate.
			for _, nd := range res.Sinks {
				if nd.Name == "fabric" {
					entry.ShmSpinWakes += nd.Sink.Counters.Load(obs.CtrShmSpinWakes)
					entry.ShmParks += nd.Sink.Counters.Load(obs.CtrShmParks)
					entry.ShmRingFull += nd.Sink.Counters.Load(obs.CtrShmRingFull)
				}
			}
			doc.Results = append(doc.Results, entry)
			writeBench()
			if *traceOut != "" {
				if err := obs.WriteTraceFile(*traceOut, res.Sinks); err != nil {
					fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
			}
			if *statsJSON != "" {
				if err := obs.WriteJSONFile(*statsJSON, res.Sinks); err != nil {
					fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote observability snapshot to %s\n", *statsJSON)
			}
		}
		return
	}

	if *modeled {
		cm := bench.DefaultCostModel()
		cm.Threads = *threads
		cm.InFlight = *inflight
		fmt.Printf("Figure 8 (modeled) — pipeline-bottleneck rates from counted engine work, %d DPA threads, %d in-flight block(s)",
			*threads, *inflight)
		if *coalesceBytes > 0 || *coalesceMsgs > 1 {
			fmt.Printf(", coalescing %dB/%d msgs", *coalesceBytes, *coalesceMsgs)
		}
		fmt.Print("\n\n")
		rates, err := bench.RunModeledFigure8(cm, *k, min(*reps, 50), *coalesceBytes, *coalesceMsgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		for _, r := range rates {
			fmt.Println(r)
			doc.Results = append(doc.Results, bench.BenchEntry{
				Label: r.Label, MsgPerSec: r.MsgPerSec, NSPerMsg: r.NSPerMsg,
			})
		}
		writeBench()
		return
	}

	fmt.Printf("Figure 8 — message rate: k=%d, reps=%d, payload=%dB, %d DPA threads, %d in-flight block(s)\n",
		*k, *reps, *payload, *threads, *inflight)
	if *coalesceBytes > 0 || *coalesceMsgs > 1 {
		fmt.Printf("eager coalescing: %d bytes / %d msgs per frame\n", *coalesceBytes, *coalesceMsgs)
	}
	if plan.Active() {
		fmt.Printf("fault plan: %s\n", *faults)
	}
	fmt.Println()

	var obsOpts obs.Options
	if *traceOut != "" {
		obsOpts = obsOpts.Tracing()
	}

	var sinks []obs.Named
	var ms runtime.MemStats
	for _, cfg := range bench.Figure8Scenarios() {
		cfg.K = *k
		cfg.Reps = *reps
		cfg.PayloadBytes = *payload
		cfg.Threads = *threads
		cfg.InFlight = *inflight
		if *bins != 2048 {
			if cfg.Matcher == (core.Config{}) {
				cfg.Matcher = bench.PaperMatcherConfig()
			}
			cfg.Matcher.Bins = *bins
		}
		cfg.CoalesceBytes = *coalesceBytes
		cfg.CoalesceMsgs = *coalesceMsgs
		cfg.Faults = plan
		cfg.Obs = obsOpts
		runtime.ReadMemStats(&ms)
		allocsBefore := ms.Mallocs
		res, err := bench.RunMsgRate(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %s: %v\n", cfg.Label, err)
			os.Exit(1)
		}
		runtime.ReadMemStats(&ms)
		allocsPerMsg := float64(ms.Mallocs-allocsBefore) / float64(res.Messages)
		fmt.Println(res)
		if res.BatchWidth > 0 {
			fmt.Printf("%-22s %12s mean batch width %.1f msgs/frame\n", "", "", res.BatchWidth)
		}
		if st := res.MatchStats; st.Messages > 0 {
			fmt.Printf("%-22s %12s blocks=%d optimistic=%d conflicts=%d fast=%d slow=%d unexpected=%d\n",
				"", "", st.Blocks, st.Optimistic, st.Conflicts, st.FastPath, st.SlowPath, st.Unexpected)
		}
		if plan.Active() {
			fmt.Printf("%-22s %12s faults: %v\n", "", "", res.Faults)
			fmt.Printf("%-22s %12s repair: retransmits=%d dups-dropped=%d out-of-order=%d sacks=%d rnr-retries=%d\n",
				"", "", res.Reliability.Retransmits, res.Reliability.DupDropped,
				res.Reliability.OutOfOrder, res.Reliability.Sacks, res.Reliability.SendRNR)
		}
		sinks = append(sinks, res.Sinks...)
		doc.Results = append(doc.Results, bench.BenchEntry{
			Label:        res.Label,
			Engine:       res.Engine.String(),
			MsgPerSec:    res.MsgPerSec,
			Messages:     res.Messages,
			ElapsedNS:    res.Elapsed.Nanoseconds(),
			BatchWidth:   res.BatchWidth,
			AllocsPerMsg: allocsPerMsg,
		})
	}

	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, sinks); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s\n", *traceOut)
	}
	if *statsJSON != "" {
		if err := obs.WriteJSONFile(*statsJSON, sinks); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote observability snapshot to %s\n", *statsJSON)
	}
	writeBench()
}
