// Command msgrate regenerates Figure 8: the single-process message-rate
// ping-pong benchmark across the five configurations — Optimistic-DPA in
// the no-conflict (NC), with-conflict fast-path (WC-FP), and with-conflict
// slow-path (WC-SP) settings, plus the MPI-CPU and RDMA-CPU baselines.
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// writeProfile dumps a named runtime profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
	}
}

func main() {
	var (
		k             = flag.Int("k", 100, "messages per sequence (paper: 100)")
		reps          = flag.Int("reps", 500, "sequence repetitions (paper: 500)")
		payload       = flag.Int("payload", 8, "eager payload bytes")
		threads       = flag.Int("threads", 32, "DPA threads (paper: 32)")
		inflight      = flag.Int("inflight", 1, "in-flight matching blocks K, 1..8 (1 = paper's serial stream)")
		bins          = flag.Int("bins", 2048, "hash-table bins (power of two)")
		coalesceBytes = flag.Int("coalesce-bytes", 0, "eager-coalescing byte threshold (0 = off)")
		coalesceMsgs  = flag.Int("coalesce-msgs", 0, "eager-coalescing message-count threshold (0 = off, 1 = off)")
		modeled       = flag.Bool("modeled", false, "report cost-model rates (core-count independent) instead of wall clock")
		faults        = flag.String("faults", "", "deterministic fault plan, e.g. seed=1,drop=0.05,dup=0.02,delay=0.01,rnr=0.01")
		benchJSON     = flag.String("bench-json", "", "write machine-readable results ("+bench.BenchSchema+") to this file")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprof     = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockprof     = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
		traceOut      = flag.String("trace-out", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
		statsJSON     = flag.String("stats-json", "", "write observability counter/histogram snapshots as JSON to this file")
	)
	flag.Parse()

	if *inflight < 1 || *inflight > core.MaxInFlightBlocks {
		fmt.Fprintf(os.Stderr, "msgrate: -inflight %d outside [1,%d]\n", *inflight, core.MaxInFlightBlocks)
		os.Exit(2)
	}
	if *bins < 1 || bits.OnesCount(uint(*bins)) != 1 {
		fmt.Fprintf(os.Stderr, "msgrate: -bins %d must be a power of two >= 1\n", *bins)
		os.Exit(2)
	}
	if *coalesceBytes < 0 || *coalesceMsgs < 0 {
		fmt.Fprintf(os.Stderr, "msgrate: coalescing thresholds must be >= 0\n")
		os.Exit(2)
	}

	plan, err := rdma.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface only live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			}
		}()
	}
	if *mutexprof != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprof)
	}
	if *blockprof != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprof)
	}

	doc := &bench.BenchDoc{
		Config: bench.BenchConfig{
			K: *k, Reps: *reps, PayloadBytes: *payload, Threads: *threads,
			InFlight: *inflight, CoalesceBytes: *coalesceBytes, CoalesceMsgs: *coalesceMsgs,
			Faults: *faults, Modeled: *modeled,
		},
	}
	writeBench := func() {
		if *benchJSON == "" {
			return
		}
		if err := bench.WriteBenchJSON(*benchJSON, doc); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote bench results to %s\n", *benchJSON)
	}

	if *modeled {
		cm := bench.DefaultCostModel()
		cm.Threads = *threads
		cm.InFlight = *inflight
		fmt.Printf("Figure 8 (modeled) — pipeline-bottleneck rates from counted engine work, %d DPA threads, %d in-flight block(s)",
			*threads, *inflight)
		if *coalesceBytes > 0 || *coalesceMsgs > 1 {
			fmt.Printf(", coalescing %dB/%d msgs", *coalesceBytes, *coalesceMsgs)
		}
		fmt.Print("\n\n")
		rates, err := bench.RunModeledFigure8(cm, *k, min(*reps, 50), *coalesceBytes, *coalesceMsgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		for _, r := range rates {
			fmt.Println(r)
			doc.Results = append(doc.Results, bench.BenchEntry{
				Label: r.Label, MsgPerSec: r.MsgPerSec, NSPerMsg: r.NSPerMsg,
			})
		}
		writeBench()
		return
	}

	fmt.Printf("Figure 8 — message rate: k=%d, reps=%d, payload=%dB, %d DPA threads, %d in-flight block(s)\n",
		*k, *reps, *payload, *threads, *inflight)
	if *coalesceBytes > 0 || *coalesceMsgs > 1 {
		fmt.Printf("eager coalescing: %d bytes / %d msgs per frame\n", *coalesceBytes, *coalesceMsgs)
	}
	if plan.Active() {
		fmt.Printf("fault plan: %s\n", *faults)
	}
	fmt.Println()

	var obsOpts obs.Options
	if *traceOut != "" {
		obsOpts = obsOpts.Tracing()
	}

	var sinks []obs.Named
	var ms runtime.MemStats
	for _, cfg := range bench.Figure8Scenarios() {
		cfg.K = *k
		cfg.Reps = *reps
		cfg.PayloadBytes = *payload
		cfg.Threads = *threads
		cfg.InFlight = *inflight
		if *bins != 2048 {
			if cfg.Matcher == (core.Config{}) {
				cfg.Matcher = bench.PaperMatcherConfig()
			}
			cfg.Matcher.Bins = *bins
		}
		cfg.CoalesceBytes = *coalesceBytes
		cfg.CoalesceMsgs = *coalesceMsgs
		cfg.Faults = plan
		cfg.Obs = obsOpts
		runtime.ReadMemStats(&ms)
		allocsBefore := ms.Mallocs
		res, err := bench.RunMsgRate(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %s: %v\n", cfg.Label, err)
			os.Exit(1)
		}
		runtime.ReadMemStats(&ms)
		allocsPerMsg := float64(ms.Mallocs-allocsBefore) / float64(res.Messages)
		fmt.Println(res)
		if res.BatchWidth > 0 {
			fmt.Printf("%-22s %12s mean batch width %.1f msgs/frame\n", "", "", res.BatchWidth)
		}
		if st := res.MatchStats; st.Messages > 0 {
			fmt.Printf("%-22s %12s blocks=%d optimistic=%d conflicts=%d fast=%d slow=%d unexpected=%d\n",
				"", "", st.Blocks, st.Optimistic, st.Conflicts, st.FastPath, st.SlowPath, st.Unexpected)
		}
		if plan.Active() {
			fmt.Printf("%-22s %12s faults: %v\n", "", "", res.Faults)
			fmt.Printf("%-22s %12s repair: retransmits=%d dups-dropped=%d out-of-order=%d sacks=%d rnr-retries=%d\n",
				"", "", res.Reliability.Retransmits, res.Reliability.DupDropped,
				res.Reliability.OutOfOrder, res.Reliability.Sacks, res.Reliability.SendRNR)
		}
		sinks = append(sinks, res.Sinks...)
		doc.Results = append(doc.Results, bench.BenchEntry{
			Label:        res.Label,
			Engine:       res.Engine.String(),
			MsgPerSec:    res.MsgPerSec,
			Messages:     res.Messages,
			ElapsedNS:    res.Elapsed.Nanoseconds(),
			BatchWidth:   res.BatchWidth,
			AllocsPerMsg: allocsPerMsg,
		})
	}

	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, sinks); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s\n", *traceOut)
	}
	if *statsJSON != "" {
		if err := obs.WriteJSONFile(*statsJSON, sinks); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote observability snapshot to %s\n", *statsJSON)
	}
	writeBench()
}
