// Command msgrate regenerates Figure 8: the single-process message-rate
// ping-pong benchmark across the five configurations — Optimistic-DPA in
// the no-conflict (NC), with-conflict fast-path (WC-FP), and with-conflict
// slow-path (WC-SP) settings, plus the MPI-CPU and RDMA-CPU baselines.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// writeProfile dumps a named runtime profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
	}
}

func main() {
	var (
		k          = flag.Int("k", 100, "messages per sequence (paper: 100)")
		reps       = flag.Int("reps", 500, "sequence repetitions (paper: 500)")
		payload    = flag.Int("payload", 8, "eager payload bytes")
		threads    = flag.Int("threads", 32, "DPA threads (paper: 32)")
		inflight   = flag.Int("inflight", 1, "in-flight matching blocks K, 1..8 (1 = paper's serial stream)")
		modeled    = flag.Bool("modeled", false, "report cost-model rates (core-count independent) instead of wall clock")
		faults     = flag.String("faults", "", "deterministic fault plan, e.g. seed=1,drop=0.05,dup=0.02,delay=0.01,rnr=0.01")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprof  = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockprof  = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
		statsJSON  = flag.String("stats-json", "", "write observability counter/histogram snapshots as JSON to this file")
	)
	flag.Parse()

	plan, err := rdma.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface only live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			}
		}()
	}
	if *mutexprof != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprof)
	}
	if *blockprof != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprof)
	}

	if *modeled {
		cm := bench.DefaultCostModel()
		cm.Threads = *threads
		cm.InFlight = *inflight
		fmt.Printf("Figure 8 (modeled) — pipeline-bottleneck rates from counted engine work, %d DPA threads, %d in-flight block(s)\n\n",
			*threads, *inflight)
		rates, err := bench.RunModeledFigure8(cm, *k, min(*reps, 50))
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		for _, r := range rates {
			fmt.Println(r)
		}
		return
	}

	fmt.Printf("Figure 8 — message rate: k=%d, reps=%d, payload=%dB, %d DPA threads, %d in-flight block(s)\n",
		*k, *reps, *payload, *threads, *inflight)
	if plan.Active() {
		fmt.Printf("fault plan: %s\n", *faults)
	}
	fmt.Println()

	var obsOpts obs.Options
	if *traceOut != "" {
		obsOpts = obsOpts.Tracing()
	}

	var sinks []obs.Named
	for _, cfg := range bench.Figure8Scenarios() {
		cfg.K = *k
		cfg.Reps = *reps
		cfg.PayloadBytes = *payload
		cfg.Threads = *threads
		cfg.InFlight = *inflight
		cfg.Faults = plan
		cfg.Obs = obsOpts
		res, err := bench.RunMsgRate(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %s: %v\n", cfg.Label, err)
			os.Exit(1)
		}
		fmt.Println(res)
		if st := res.MatchStats; st.Messages > 0 {
			fmt.Printf("%-22s %12s blocks=%d optimistic=%d conflicts=%d fast=%d slow=%d unexpected=%d\n",
				"", "", st.Blocks, st.Optimistic, st.Conflicts, st.FastPath, st.SlowPath, st.Unexpected)
		}
		if plan.Active() {
			fmt.Printf("%-22s %12s faults: %v\n", "", "", res.Faults)
			fmt.Printf("%-22s %12s repair: retransmits=%d dups-dropped=%d out-of-order=%d sacks=%d rnr-retries=%d\n",
				"", "", res.Reliability.Retransmits, res.Reliability.DupDropped,
				res.Reliability.OutOfOrder, res.Reliability.Sacks, res.Reliability.SendRNR)
		}
		sinks = append(sinks, res.Sinks...)
	}

	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, sinks); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s\n", *traceOut)
	}
	if *statsJSON != "" {
		if err := obs.WriteJSONFile(*statsJSON, sinks); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote observability snapshot to %s\n", *statsJSON)
	}
}
