// Command matchd is the long-running multi-tenant matching daemon: it
// hosts many jobs — each its own mini-MPI world over the in-process, TCP,
// shared-memory, or hybrid fabric — in one process, admitting them against
// per-tenant DPA-thread and modeled-memory budgets (§IV-E) and bounding
// each job's posted-receive depth so a greedy tenant backpressures only
// itself.
//
// Control runs over a JSON-lines protocol (submit/status/cancel/list;
// msgrate -daemon and replay -daemon are clients); observability over
// HTTP: /metrics (OpenMetrics, per-tenant labels, validated by obscheck
// -metrics), /healthz, and /tenants. SIGTERM/SIGINT drains gracefully —
// stop admitting, let jobs flush, force-cancel past -drain-timeout — and
// exits 0; SIGHUP reloads -config.
//
// Usage:
//
//	matchd -control 127.0.0.1:7600 -http 127.0.0.1:7601
//	matchd -config budgets.json
//	matchd -tenant-threads 64 -tenant-bytes 16MiB -post-depth 128
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
)

func main() {
	var (
		controlAddr   = flag.String("control", "127.0.0.1:7600", "control-protocol listen address (port 0 picks one; printed on start)")
		httpAddr      = flag.String("http", "127.0.0.1:7601", "HTTP listen address for /metrics, /healthz, /tenants")
		configPath    = flag.String("config", "", "budgets config file (JSON); reloaded on SIGHUP")
		maxTenants    = flag.Int("max-tenants", 0, "tenant limit (0 = default)")
		tenantThreads = flag.Int("tenant-threads", 0, "per-tenant DPA thread budget (0 = default)")
		tenantBytes   = flag.String("tenant-bytes", "", "per-tenant modeled-memory budget, e.g. 16MiB (empty = default)")
		tenantJobs    = flag.Int("tenant-jobs", 0, "per-tenant concurrent job limit (0 = default)")
		postDepth     = flag.Int("post-depth", 0, "bounded posted-receive depth per communicator (0 = default)")
		drainTimeout  = flag.Duration("drain-timeout", 0, "drain deadline before running jobs are force-canceled (0 = default)")
	)
	flag.Parse()

	budgets := daemon.Budgets{
		MaxTenants:       *maxTenants,
		TenantThreads:    *tenantThreads,
		TenantJobs:       *tenantJobs,
		MaxPostedPerComm: *postDepth,
		DrainTimeout:     *drainTimeout,
	}
	if *tenantBytes != "" {
		n, err := parseBytes(*tenantBytes)
		if err != nil {
			fatal(err)
		}
		budgets.TenantBytes = int(n)
	}
	if *configPath != "" {
		loaded, err := loadConfig(*configPath)
		if err != nil {
			fatal(err)
		}
		budgets = merge(budgets, loaded)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "matchd: %s %s\n",
			time.Now().Format("15:04:05.000"), fmt.Sprintf(format, args...))
	}
	d := daemon.New(daemon.Config{Budgets: budgets, Logf: logf})

	controlLn, err := net.Listen("tcp", *controlAddr)
	if err != nil {
		fatal(err)
	}
	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	// The smoke test and scripts parse these two lines; keep them stable.
	fmt.Printf("matchd control listening on %s\n", controlLn.Addr())
	fmt.Printf("matchd http listening on %s\n", httpLn.Addr())

	go d.ServeControl(controlLn)
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(httpLn)

	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if *configPath == "" {
				logf("SIGHUP with no -config; keeping current budgets")
				continue
			}
			loaded, err := loadConfig(*configPath)
			if err != nil {
				logf("reload failed, keeping current budgets: %v", err)
				continue
			}
			d.Reload(merge(daemon.Budgets{}, loaded))
			continue
		}
		logf("%v: draining", sig)
		forced, _ := d.Drain()
		if forced > 0 {
			logf("drain forced %d job(s)", forced)
		}
		controlLn.Close()
		httpLn.Close()
		d.CloseConns()
		srv.Close()
		logf("drained, exiting")
		return // exit 0: a drained shutdown is a clean shutdown
	}
}

// loadConfig reads a Budgets JSON document.
func loadConfig(path string) (daemon.Budgets, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return daemon.Budgets{}, err
	}
	var b daemon.Budgets
	if err := json.Unmarshal(data, &b); err != nil {
		return daemon.Budgets{}, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

// merge overlays nonzero fields of over onto base (config file wins over
// flag defaults at startup).
func merge(base, over daemon.Budgets) daemon.Budgets {
	if over.MaxTenants != 0 {
		base.MaxTenants = over.MaxTenants
	}
	if over.TenantThreads != 0 {
		base.TenantThreads = over.TenantThreads
	}
	if over.TenantBytes != 0 {
		base.TenantBytes = over.TenantBytes
	}
	if over.TenantJobs != 0 {
		base.TenantJobs = over.TenantJobs
	}
	if over.MaxPostedPerComm != 0 {
		base.MaxPostedPerComm = over.MaxPostedPerComm
	}
	if over.DrainTimeout != 0 {
		base.DrainTimeout = over.DrainTimeout
	}
	if over.DrainTimeoutSec != 0 {
		base.DrainTimeoutSec = over.DrainTimeoutSec
		base.DrainTimeout = 0 // let fill derive it from the seconds field
	}
	return base
}

// parseBytes accepts plain byte counts and binary-suffixed sizes
// (K/KiB/KB = 1024, M/MiB/MB = 1024², G/GiB/GB = 1024³).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, suf := range []struct {
		name string
		mul  int64
	}{
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mul
			s = s[:len(s)-len(suf.name)]
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 512KiB, 2MiB, or bytes)", s)
	}
	return v * mult, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "matchd: %v\n", err)
	os.Exit(1)
}
