package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end — the same
// gate a user's first `go run` would hit. Each example self-verifies its
// data flow and exits non-zero on corruption, so success here means the
// full stack (matching engine, DPA pipeline, RDMA fabric, MPI layer)
// carried real traffic correctly.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn subprocesses; skipped in -short mode")
	}
	examples := map[string]string{
		"quickstart": "rendezvous",
		"halo":       "verified",
		"gatherv":    "avg UMQ search",
		"wildcard":   "results verified",
		"cg":         "converged",
		"sweep":      "planes verified",
	}
	for name, marker := range examples {
		name, marker := name, marker
		t.Run(name, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Fatalf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
}
