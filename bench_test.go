// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations over the §IV-D design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Mapping (see DESIGN.md experiment index):
//
//	BenchmarkTableII*   — Table II (application trace generation)
//	BenchmarkFigure6*   — Figure 6 (MPI call distribution)
//	BenchmarkFigure7*   — Figure 7 (queue depth vs bins)
//	BenchmarkFigure8*   — Figure 8 (message rate per configuration)
//	BenchmarkMemory*    — §IV-E memory model
//	BenchmarkAblation*  — §IV-D optimizations and scaling knobs
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/mpi"
	"repro/internal/tracegen"
)

// benchScale keeps trace-driven benchmarks affordable; the cmd/ tools run
// the full-scale versions.
const benchScale = 10

// BenchmarkTableIITraceGen regenerates the Table II application traces.
func BenchmarkTableIITraceGen(b *testing.B) {
	for _, app := range tracegen.Apps() {
		b.Run(app.Name, func(b *testing.B) {
			var events int
			for i := 0; i < b.N; i++ {
				tr := app.Generate(tracegen.Config{Scale: benchScale})
				events = tr.NumEvents()
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// BenchmarkFigure6CallMix regenerates the call-distribution analysis.
func BenchmarkFigure6CallMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := bench.RunFigure6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(reps) != 16 {
			b.Fatalf("reports = %d", len(reps))
		}
	}
}

// BenchmarkFigure7QueueDepth regenerates the queue-depth sweep at the
// paper's headline bin counts and reports the cross-app averages.
func BenchmarkFigure7QueueDepth(b *testing.B) {
	var red bench.Figure7Reduction
	for i := 0; i < b.N; i++ {
		byApp, err := bench.RunFigure7(benchScale, bench.Figure7Bins)
		if err != nil {
			b.Fatal(err)
		}
		red = bench.Reduce(byApp, bench.Figure7Bins)
	}
	b.ReportMetric(red.AvgDepth[0], "depth@1bin")
	b.ReportMetric(red.AvgDepth[1], "depth@32bins")
	b.ReportMetric(red.AvgDepth[2], "depth@128bins")
}

// BenchmarkFigure8MsgRate regenerates the five message-rate scenarios; the
// msg/s metric is the figure's y-axis.
func BenchmarkFigure8MsgRate(b *testing.B) {
	for _, cfg := range bench.Figure8Scenarios() {
		cfg := cfg
		b.Run(cfg.Label, func(b *testing.B) {
			cfg.K = 100
			cfg.Reps = 20
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunMsgRate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rate = res.MsgPerSec
			}
			b.ReportMetric(rate, "msg/s")
		})
	}
}

// BenchmarkMemoryFootprint exercises descriptor-table allocation at the
// §IV-E design point (8 K receives) and reports the modeled bytes.
func BenchmarkMemoryFootprint(b *testing.B) {
	cfg := core.Config{Bins: 128, MaxReceives: 8192, BlockSize: 32, LazyRemoval: true}
	var total int
	for i := 0; i < b.N; i++ {
		m := core.MustNew(cfg)
		total = m.ModelFootprint().Total()
	}
	b.ReportMetric(float64(total)/1024, "KiB")
}

// matchBench drives a post+arrive cycle through the sequential engine.
func matchBench(b *testing.B, cfg core.Config, keys int) {
	m := core.MustNew(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % keys
		r := &match.Recv{Source: match.Rank(k % 16), Tag: match.Tag(k)}
		if _, _, err := m.PostRecv(r); err != nil {
			b.Fatal(err)
		}
		res := m.Arrive(&match.Envelope{Source: match.Rank(k % 16), Tag: match.Tag(k)})
		if res.Unexpected {
			b.Fatal("unexpected")
		}
	}
}

// BenchmarkAblationBins sweeps the bin count (the Figure 7 knob) on a
// post+match cycle with 64 live keys.
func BenchmarkAblationBins(b *testing.B) {
	for _, bins := range []int{1, 8, 32, 128, 512} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			cfg := core.Config{Bins: bins, MaxReceives: 4096, BlockSize: 1,
				EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true}
			matchBench(b, cfg, 64)
		})
	}
}

// conflictBlock runs with-conflict blocks through the engine.
func conflictBlock(b *testing.B, mutate func(*core.Config)) {
	cfg := core.Config{Bins: 256, MaxReceives: 4096, BlockSize: 16,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true}
	if mutate != nil {
		mutate(&cfg)
	}
	m := core.MustNew(cfg)
	const n = 16
	envs := make([]*match.Envelope, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < n; j++ {
			if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: 7}); err != nil {
				b.Fatal(err)
			}
			envs[j] = &match.Envelope{Source: 1, Tag: 7}
		}
		b.StartTimer()
		m.ArriveBlock(envs)
	}
}

// BenchmarkAblationConflictPaths compares the §III-D resolution strategies
// on a pure compatible-sequence workload.
func BenchmarkAblationConflictPaths(b *testing.B) {
	b.Run("early-booking-check", func(b *testing.B) { conflictBlock(b, nil) })
	b.Run("fast-path", func(b *testing.B) {
		conflictBlock(b, func(c *core.Config) {
			c.EarlyBookingCheck = false
			c.SimultaneousArrival = true
		})
	})
	b.Run("slow-path", func(b *testing.B) {
		conflictBlock(b, func(c *core.Config) {
			c.EarlyBookingCheck = false
			c.SimultaneousArrival = true
			c.DisableFastPath = true
		})
	})
}

// BenchmarkAblationLazyRemoval compares lazy and eager consumed-entry
// removal (§IV-D).
func BenchmarkAblationLazyRemoval(b *testing.B) {
	for _, lazy := range []bool{true, false} {
		b.Run(fmt.Sprintf("lazy=%v", lazy), func(b *testing.B) {
			conflictBlock(b, func(c *core.Config) { c.LazyRemoval = lazy })
		})
	}
}

// BenchmarkAblationInlineHashes compares sender-computed and on-NIC hashes
// (§IV-D).
func BenchmarkAblationInlineHashes(b *testing.B) {
	for _, inline := range []bool{true, false} {
		b.Run(fmt.Sprintf("inline=%v", inline), func(b *testing.B) {
			cfg := core.Config{Bins: 256, MaxReceives: 4096, BlockSize: 1,
				EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: inline}
			matchBench(b, cfg, 64)
		})
	}
}

// BenchmarkAblationHints measures the §VII communicator assertions: with
// no_any_source/no_any_tag asserted, arrivals skip the wildcard indexes
// entirely; with allow_overtaking, conflict machinery is bypassed.
func BenchmarkAblationHints(b *testing.B) {
	cases := []struct {
		name  string
		hints core.Hints
	}{
		{"none", core.Hints{}},
		{"no-wildcards", core.Hints{NoAnySource: true, NoAnyTag: true}},
		{"allow-overtaking", core.Hints{AllowOvertaking: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := core.Config{Bins: 256, MaxReceives: 4096, BlockSize: 1,
				EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true}
			m := core.MustNew(cfg)
			m.SetCommHints(0, c.hints)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % 64
				r := &match.Recv{Source: match.Rank(k % 16), Tag: match.Tag(k)}
				if _, _, err := m.PostRecv(r); err != nil {
					b.Fatal(err)
				}
				if res := m.Arrive(&match.Envelope{Source: match.Rank(k % 16), Tag: match.Tag(k)}); res.Unexpected {
					b.Fatal("unexpected")
				}
			}
		})
	}
}

// BenchmarkCollectives measures the p2p-built collectives over both
// matching engines (the §VII full-chain-offload workload).
func BenchmarkCollectives(b *testing.B) {
	for _, kind := range []mpi.EngineKind{mpi.EngineHost, mpi.EngineOffload} {
		b.Run(kind.String(), func(b *testing.B) {
			w, err := mpi.NewWorld(8, mpi.Options{Engine: kind})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			data := mpi.PackFloat64s([]float64{1, 2, 3, 4})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for r := 0; r < 8; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						out := make([]byte, len(data))
						if err := w.Proc(r).World().Allreduce(data, mpi.OpSumFloat64, out); err != nil {
							b.Error(err)
						}
					}(r)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkAblationBlockSize sweeps the parallel block width N.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, n := range []int{1, 4, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			cfg := core.Config{Bins: 256, MaxReceives: 4096, BlockSize: n,
				EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true}
			m := core.MustNew(cfg)
			envs := make([]*match.Envelope, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < n; j++ {
					if _, _, err := m.PostRecv(&match.Recv{Source: match.Rank(j), Tag: match.Tag(j)}); err != nil {
						b.Fatal(err)
					}
					envs[j] = &match.Envelope{Source: match.Rank(j), Tag: match.Tag(j)}
				}
				b.StartTimer()
				m.ArriveBlock(envs)
			}
		})
	}
}

// BenchmarkBaselineMatchers measures the two baselines on the same
// post+arrive cycle for context.
func BenchmarkBaselineMatchers(b *testing.B) {
	run := func(b *testing.B, m match.Matcher) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i % 64
			m.PostRecv(&match.Recv{Source: match.Rank(k % 16), Tag: match.Tag(k)})
			if _, ok := m.Arrive(&match.Envelope{Source: match.Rank(k % 16), Tag: match.Tag(k)}); !ok {
				b.Fatal("miss")
			}
		}
	}
	b.Run("list", func(b *testing.B) { run(b, match.NewListMatcher()) })
	b.Run("bin-32", func(b *testing.B) { run(b, match.NewBinMatcher(32)) })
	b.Run("bin-128", func(b *testing.B) { run(b, match.NewBinMatcher(128)) })
}

// BenchmarkAnalyzerThroughput measures trace replay speed (events/s), the
// cost the artifact reports as its 45–60 minute full run.
func BenchmarkAnalyzerThroughput(b *testing.B) {
	app, _ := tracegen.ByName("BoxLib CNS")
	tr := app.Generate(tracegen.Config{Scale: 25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.Analyze(tr, analyzer.Config{Bins: 32}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.NumEvents()), "events")
}
