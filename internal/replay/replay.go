// Package replay executes an MPI trace over a live mini-MPI world, driving
// every traced point-to-point operation through the configured matching
// engine. Where the analyzer (package analyzer) *emulates* matching on the
// trace's own timeline, replay actually runs it: each rank is a goroutine
// issuing its traced operations in order, messages cross the simulated
// RDMA fabric, and the offloaded engine matches them in parallel blocks —
// an end-to-end validation that the full stack sustains real application
// communication patterns.
package replay

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/trace"
)

// Config parameterizes a replay run.
type Config struct {
	// Engine selects the matching engine (default EngineHost).
	Engine mpi.EngineKind
	// MaxMessageBytes caps traced transfer sizes (default 4096): traces
	// record element counts that can be large, and replay is about
	// matching behaviour, not bandwidth.
	MaxMessageBytes int
	// Options overrides the world options; Engine above takes precedence.
	// Options.Obs configures observability (set TraceEvents for event
	// tracing); the world's sinks land in Result.Sinks either way.
	Options mpi.Options
}

func (c *Config) fill() {
	if c.MaxMessageBytes == 0 {
		c.MaxMessageBytes = 4096
	}
	c.Options.Engine = c.Engine
	if c.Options.RecvDepth == 0 {
		c.Options.RecvDepth = 64
	}
	if c.Options.Matcher == (core.Config{}) {
		c.Options.Matcher = core.Config{
			Bins: 256, MaxReceives: 4096, BlockSize: 8,
			EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
		}
	}
}

// Result summarizes a replay.
type Result struct {
	Ranks       int
	Sends       int
	Recvs       int
	Collectives int
	Elapsed     time.Duration
	// Matcher aggregates the offloaded engines' statistics over all ranks
	// (zero for other engines).
	Matcher core.EngineStats
	// Faults and Reliability report injected-fault and repair counters
	// when the world ran under an active rdma.FaultPlan.
	Faults      rdma.FaultSnapshot
	Reliability mpi.ReliabilitySnapshot
	// Sinks are the world's observability sinks (one per rank plus the
	// fabric), captured before teardown for stats/trace export.
	Sinks []obs.Named
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("replayed %d ranks: %d sends, %d recvs, %d collectives in %v",
		r.Ranks, r.Sends, r.Recvs, r.Collectives, r.Elapsed.Round(time.Millisecond))
}

// Run replays t. Every rank of the trace becomes a goroutine in a world of
// the same size; traced receives, sends, progress and collective calls map
// to Irecv, Isend, Waitall and Barrier respectively.
func Run(t *trace.Trace, cfg Config) (*Result, error) {
	cfg.fill()
	n := t.NumRanks()
	if n == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	w, err := mpi.NewWorld(n, cfg.Options)
	if err != nil {
		return nil, err
	}
	return RunWorld(t, cfg, w)
}

// RunWorld replays t over a caller-built world and closes it. Only the
// ranks the world hosts are driven: an in-process world replays the whole
// trace, a NewNetWorld member replays its one rank while peer processes
// replay theirs — the trace must be identical in every process (the
// synthetic generators are deterministic, so same app + scale suffices).
// Counts and statistics cover the local ranks only; the Elapsed window is
// aligned across processes by the trace's own collectives and the final
// barrier every rank runs.
func RunWorld(t *trace.Trace, cfg Config, w *mpi.World) (*Result, error) {
	cfg.fill()
	n := t.NumRanks()
	if n == 0 {
		w.Close()
		return nil, fmt.Errorf("replay: empty trace")
	}
	if w.Size() != n {
		w.Close()
		return nil, fmt.Errorf("replay: world of %d ranks cannot host a %d-rank trace", w.Size(), n)
	}
	defer w.Close()

	res := &Result{Ranks: n}
	start := time.Now()

	var wg sync.WaitGroup
	errs := make([]error, n)
	counts := make([]Result, n)
	local := 0
	for ri := range t.Ranks {
		rank := int(t.Ranks[ri].Rank)
		if !w.Hosts(rank) {
			continue
		}
		local++
		wg.Add(1)
		go func(ri, rank int) {
			defer wg.Done()
			counts[ri], errs[ri] = replayRank(w.Proc(rank), t.Ranks[ri].Events, cfg)
		}(ri, rank)
	}
	if local == 0 {
		return nil, fmt.Errorf("replay: world hosts none of the trace's ranks")
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("replay: rank %d: %w", r, err)
		}
	}
	res.Elapsed = time.Since(start)
	// Quiesce before reading stats: Close waits for the engines' in-flight
	// blocks to retire, so counters like Retires have settled (the deferred
	// Close above is a no-op after this).
	w.Close()
	for i := range counts {
		res.Sends += counts[i].Sends
		res.Recvs += counts[i].Recvs
		res.Collectives += counts[i].Collectives
	}
	res.Faults = w.FaultStats()
	res.Reliability = w.ReliabilityStats()
	res.Sinks = w.ObsSinks()
	for _, p := range w.LocalProcs() {
		if m := p.Matcher(); m != nil {
			st := m.Stats()
			res.Matcher.Messages += st.Messages
			res.Matcher.Blocks += st.Blocks
			res.Matcher.Optimistic += st.Optimistic
			res.Matcher.Conflicts += st.Conflicts
			res.Matcher.FastPath += st.FastPath
			res.Matcher.SlowPath += st.SlowPath
			res.Matcher.Unexpected += st.Unexpected
			res.Matcher.Relaxed += st.Relaxed
			res.Matcher.Revalidated += st.Revalidated
			res.Matcher.Steals += st.Steals
			res.Matcher.Retires += st.Retires
		}
	}
	return res, nil
}

// replayRank issues one rank's traced operations in order.
func replayRank(p *mpi.Proc, events []trace.Event, cfg Config) (Result, error) {
	var counts Result
	var pending []*mpi.Request

	size := func(count int32) int {
		s := int(count)
		if s < 1 {
			s = 1
		}
		if s > cfg.MaxMessageBytes {
			s = cfg.MaxMessageBytes
		}
		return s
	}

	for _, e := range events {
		switch e.Kind {
		case trace.OpRecv:
			if e.Comm < 0 {
				continue // reserved communicator in a foreign trace
			}
			buf := make([]byte, size(e.Count))
			req, err := p.Comm(e.Comm).Irecv(int(e.Peer), int(e.Tag), buf)
			if err != nil {
				return counts, err
			}
			pending = append(pending, req)
			counts.Recvs++
		case trace.OpSend:
			if e.Comm < 0 {
				continue
			}
			req, err := p.Comm(e.Comm).Isend(int(e.Peer), int(e.Tag), make([]byte, size(e.Count)))
			if err != nil {
				return counts, err
			}
			pending = append(pending, req)
			counts.Sends++
		case trace.OpProgress:
			if err := mpi.Waitall(pending...); err != nil {
				return counts, err
			}
			pending = pending[:0]
		case trace.OpCollective:
			// Synchronization superset: every traced collective becomes a
			// barrier, which itself flows through the matching engine.
			if err := mpi.Waitall(pending...); err != nil {
				return counts, err
			}
			pending = pending[:0]
			if err := p.World().Barrier(); err != nil {
				return counts, err
			}
			counts.Collectives++
		}
	}
	if err := mpi.Waitall(pending...); err != nil {
		return counts, err
	}
	// Final synchronization so no rank tears the world down while peers
	// still expect acknowledgements.
	return counts, p.World().Barrier()
}
