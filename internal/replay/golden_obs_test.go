package replay

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Golden end-to-end observability test: one generated trace replayed
// through the offloaded engine at in-flight block depths 1, 4 and 8, with
// every layer's obs counters checked for internal consistency at each
// depth, for invariance across depths, and — after calibrating away
// barrier traffic — against the trace analyzer's independent emulation of
// the same trace. Run with -race.

// goldenTotals is the cross-rank counter aggregate one replay produces.
type goldenTotals struct {
	stats         core.EngineStats
	matched       uint64
	cqCompletions uint64
	launches      uint64
	retires       uint64
	dropped       uint64
}

// replayGolden runs tr through the offload engine at the given in-flight
// depth with tracing enabled and aggregates the rank sinks.
func replayGolden(t *testing.T, tr *trace.Trace, depth int) (*Result, goldenTotals) {
	t.Helper()
	matcher := core.Config{
		Bins: 256, MaxReceives: 4096, BlockSize: 8,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
		InFlightBlocks: depth,
	}
	cfg := Config{Engine: mpi.EngineOffload}
	cfg.Options.Matcher = matcher
	// Rings sized so nothing is overwritten: the event-count invariants
	// below need a complete record.
	cfg.Options.Obs = obs.Options{TraceEvents: 1 << 15}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatalf("depth %d: %v", depth, err)
	}

	var tot goldenTotals
	tot.stats = res.Matcher
	for _, ns := range res.Sinks {
		if ns.Name == "fabric" {
			continue
		}
		c := &ns.Sink.Counters
		tot.matched += c.Load(obs.CtrMatched)
		tot.cqCompletions += c.Load(obs.CtrCQCompletions)
		_, d := ns.Sink.Recorded()
		tot.dropped += d
		for _, e := range ns.Sink.Events() {
			switch e.Kind {
			case obs.EvBlockLaunch:
				tot.launches++
			case obs.EvBlockRetire:
				tot.retires++
			}
		}
	}
	return res, tot
}

func TestGoldenReplayObsCrossDepth(t *testing.T) {
	app, ok := tracegen.ByName("AMG")
	if !ok {
		t.Fatal("unknown app AMG")
	}
	tr := app.Generate(tracegen.Config{Scale: 10})

	// Calibration run: the same ranks and collective schedule with all
	// point-to-point traffic removed. Replay turns collectives into real
	// barriers that themselves flow through the matching engine, so the
	// barrier contribution to the counters is measured, not guessed.
	calibTr := &trace.Trace{App: tr.App, Ranks: make([]trace.RankTrace, len(tr.Ranks))}
	for i := range tr.Ranks {
		calibTr.Ranks[i].Rank = tr.Ranks[i].Rank
		for _, e := range tr.Ranks[i].Events {
			if e.Kind == trace.OpCollective {
				calibTr.Ranks[i].Events = append(calibTr.Ranks[i].Events, e)
			}
		}
	}
	_, calib := replayGolden(t, calibTr, 1)

	depths := []int{1, 4, 8}
	totals := make([]goldenTotals, len(depths))
	for i, depth := range depths {
		res, tot := replayGolden(t, tr, depth)
		totals[i] = tot
		st := tot.stats

		// Per-depth engine invariants.
		if st.Messages == 0 || tot.matched == 0 {
			t.Fatalf("depth %d: no traffic observed (%+v)", depth, st)
		}
		if st.Retires != st.Blocks {
			t.Errorf("depth %d: retires=%d blocks=%d — engine did not quiesce", depth, st.Retires, st.Blocks)
		}
		if st.FastPath+st.SlowPath != st.Conflicts {
			t.Errorf("depth %d: fast=%d slow=%d conflicts=%d", depth, st.FastPath, st.SlowPath, st.Conflicts)
		}
		if depth == 1 && st.Steals != 0 {
			t.Errorf("depth 1 stole %d descriptors; steals need overlapping blocks", st.Steals)
		}

		// Event-ring invariants: nothing overwritten, and the launch/retire
		// event streams agree with the counters exactly.
		if tot.dropped != 0 {
			t.Fatalf("depth %d: %d events overwritten; grow the test ring", depth, tot.dropped)
		}
		if tot.launches != st.Blocks || tot.retires != st.Blocks {
			t.Errorf("depth %d: launch/retire events = %d/%d, counters say %d blocks",
				depth, tot.launches, tot.retires, st.Blocks)
		}

		// The replay itself saw the whole trace.
		if res.Sends == 0 || res.Recvs == 0 {
			t.Fatalf("depth %d: sends=%d recvs=%d", depth, res.Sends, res.Recvs)
		}
	}

	// Cross-depth invariance: the engine pipelines more blocks at higher
	// depths, but the traffic — messages entering blocks, pairings
	// completed, completions drained — is identical.
	for i := 1; i < len(depths); i++ {
		a, b := totals[0], totals[i]
		if a.stats.Messages != b.stats.Messages {
			t.Errorf("messages diverge across depths: d1=%d d%d=%d",
				a.stats.Messages, depths[i], b.stats.Messages)
		}
		if a.matched != b.matched {
			t.Errorf("matched diverges across depths: d1=%d d%d=%d",
				a.matched, depths[i], b.matched)
		}
		if a.cqCompletions != b.cqCompletions {
			t.Errorf("cq completions diverge across depths: d1=%d d%d=%d",
				a.cqCompletions, depths[i], b.cqCompletions)
		}
	}

	// Against the analyzer: its emulation of the same trace counts one
	// pairing per traced send/recv, with no barrier traffic. Subtracting
	// the calibrated barrier contribution from the live run must land on
	// the same number.
	rep, err := analyzer.Analyze(tr, analyzer.Config{Bins: 256})
	if err != nil {
		t.Fatal(err)
	}
	dataMatched := totals[0].matched - calib.matched
	if dataMatched != rep.Matched {
		t.Errorf("replay matched %d data pairings (total %d - %d barrier), analyzer reports %d",
			dataMatched, totals[0].matched, calib.matched, rep.Matched)
	}
}

// TestGoldenReplaySinkNames pins the sink topology the exporters rely on:
// one sink per rank plus the fabric.
func TestGoldenReplaySinkNames(t *testing.T) {
	app, _ := tracegen.ByName("AMG")
	tr := app.Generate(tracegen.Config{Scale: 5})
	res, err := Run(tr, Config{Engine: mpi.EngineHost})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sinks) != tr.NumRanks()+1 {
		t.Fatalf("%d sinks for %d ranks", len(res.Sinks), tr.NumRanks())
	}
	var fabric bool
	for _, ns := range res.Sinks {
		if ns.Sink == nil {
			t.Errorf("sink %q is nil", ns.Name)
		}
		switch {
		case ns.Name == "fabric":
			fabric = true
		case strings.HasPrefix(ns.Name, "rank"):
		default:
			t.Errorf("unexpected sink name %q", ns.Name)
		}
	}
	if !fabric {
		t.Error("no fabric sink")
	}
}
