package replay

import (
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func replayApp(t *testing.T, name string, scale int, engine mpi.EngineKind) *Result {
	t.Helper()
	app, ok := tracegen.ByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	tr := app.Generate(tracegen.Config{Scale: scale})
	res, err := Run(tr, Config{Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	mix := tr.Mix()
	if res.Sends*2 != mix.P2P {
		t.Fatalf("%s: replayed %d sends + %d recvs, trace has %d p2p ops",
			name, res.Sends, res.Recvs, mix.P2P)
	}
	return res
}

func TestReplayAMGBothEngines(t *testing.T) {
	for _, engine := range []mpi.EngineKind{mpi.EngineHost, mpi.EngineOffload} {
		t.Run(engine.String(), func(t *testing.T) {
			res := replayApp(t, "AMG", 25, engine)
			if res.Ranks != 8 {
				t.Fatalf("ranks = %d", res.Ranks)
			}
			if res.Collectives == 0 {
				t.Fatal("AMG replay ran no collectives")
			}
			if engine == mpi.EngineOffload && res.Matcher.Messages == 0 {
				t.Fatal("offloaded matcher saw no traffic")
			}
			if !strings.Contains(res.String(), "replayed 8 ranks") {
				t.Fatalf("summary: %s", res)
			}
		})
	}
}

func TestReplayStencilOffloaded(t *testing.T) {
	// BoxLib CNS: 64 ranks, 26-neighbor ghost exchange, deepest queues.
	res := replayApp(t, "BoxLib CNS", 10, mpi.EngineOffload)
	if res.Ranks != 64 {
		t.Fatalf("ranks = %d", res.Ranks)
	}
	// Replay has no global clock, so a rank can send before its peer posts
	// (unlike the analyzer's trace-timeline emulation): unexpected messages
	// are expected. What must hold is that every data message reached a
	// matcher and the run drained completely (Waitall + final barrier).
	if res.Matcher.Messages == 0 {
		t.Fatal("no messages reached the offloaded matchers")
	}
}

func TestReplayUnexpectedHeavy(t *testing.T) {
	// CrystalRouter sends before posting: replay must flow through the
	// unexpected store. (Timing differs from the trace's timeline, so some
	// receives may win the race; the shape — many unexpected — remains.)
	app, _ := tracegen.ByName("CrystalRouter")
	tr := app.Generate(tracegen.Config{Scale: 5})
	res, err := Run(tr, Config{Engine: mpi.EngineOffload})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matcher.Unexpected == 0 {
		t.Fatal("CrystalRouter replay produced no unexpected messages")
	}
}

func TestReplayWildcards(t *testing.T) {
	// MOCFE uses AnySource receives.
	res := replayApp(t, "MOCFE", 10, mpi.EngineOffload)
	if res.Recvs == 0 {
		t.Fatal("no receives replayed")
	}
}

func TestReplaySweepCompatibleSequences(t *testing.T) {
	// PARTISN's same-(source,tag) pipelines exercise compatible sequences
	// in a live run.
	res := replayApp(t, "PARTISN", 5, mpi.EngineOffload)
	if res.Matcher.Messages == 0 {
		t.Fatal("no matched traffic")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	if _, err := Run(&trace.Trace{}, Config{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReplaySkipsReservedComms(t *testing.T) {
	tr := &trace.Trace{App: "x", Ranks: []trace.RankTrace{{Rank: 0, Events: []trace.Event{
		{Kind: trace.OpRecv, Peer: 0, Tag: 1, Comm: -5},
		{Kind: trace.OpSend, Peer: 0, Tag: 1, Comm: -5},
	}}}}
	res, err := Run(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sends != 0 || res.Recvs != 0 {
		t.Fatalf("reserved-comm ops replayed: %+v", res)
	}
}
