package replay_test

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/rdma"
	"repro/internal/rdma/netfabric"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// goldenSummary is the transport-independent fingerprint of a replay: the
// operation counts are fixed by the trace, and the matcher's message total
// is fixed by the communication pattern (every sent message matches exactly
// once, regardless of arrival order, duplication, or retransmission).
// Block/conflict/unexpected counts are timing-dependent and deliberately
// excluded.
type goldenSummary struct {
	Sends, Recvs, Collectives int
	MatchedMsgs               uint64
}

func summarize(results ...*replay.Result) goldenSummary {
	var s goldenSummary
	for _, r := range results {
		s.Sends += r.Sends
		s.Recvs += r.Recvs
		s.Collectives += r.Collectives
		s.MatchedMsgs += r.Matcher.Messages
	}
	return s
}

func goldenConfig(kind mpi.EngineKind, inflight int) replay.Config {
	cfg := replay.Config{Engine: kind}
	cfg.Options.Engine = kind
	cfg.Options.RecvDepth = 64
	cfg.Options.Matcher = core.Config{
		Bins: 256, MaxReceives: 4096, BlockSize: 8,
		InFlightBlocks:    inflight,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
	}
	return cfg
}

// replayNet replays tr with one single-rank world per trace rank, all in
// this process, meshed over real sockets, and returns the aggregated
// results. It mirrors what the cmd/replay launcher does with N OS
// processes; in-process it is additionally -race-visible.
func replayNet(t *testing.T, tr *trace.Trace, network string, cfg replay.Config, faults rdma.FaultPlan) (goldenSummary, mpi.ReliabilitySnapshot) {
	t.Helper()
	n := tr.NumRanks()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("coordinator listen: %v", err)
	}
	go netfabric.ServeCoordinator(ln, n)
	shmDir := ""
	if network == "shm" || network == "hybrid" {
		shmDir = t.TempDir()
	}

	results := make([]*replay.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ncfg := netfabric.Config{
				Network: network, Rank: k, Ranks: n,
				Coord: ln.Addr().String(), Faults: faults, ShmDir: shmDir,
			}
			if network == "hybrid" {
				// Two simulated hosts: even ranks on one, odd on the
				// other, so the hybrid router exercises both legs.
				ncfg.Host = fmt.Sprintf("h%d", k%2)
			}
			trans, err := netfabric.New(ncfg)
			if err != nil {
				errs[k] = err
				return
			}
			w, err := mpi.NewNetWorld(trans, cfg.Options)
			if err != nil {
				errs[k] = err
				return
			}
			results[k], errs[k] = replay.RunWorld(tr, cfg, w)
		}(k)
	}
	wg.Wait()
	ln.Close()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("%s rank %d: %v", network, k, err)
		}
	}
	var rel mpi.ReliabilitySnapshot
	for _, r := range results {
		rel.Sent += r.Reliability.Sent
		rel.Retransmits += r.Reliability.Retransmits
		rel.DupDropped += r.Reliability.DupDropped
		rel.OutOfOrder += r.Reliability.OutOfOrder
		rel.Sacks += r.Reliability.Sacks
	}
	return summarize(results...), rel
}

// TestGoldenCrossTransportEquivalence replays a fixed deterministic trace
// over the in-process fabric, TCP sockets, UDP sockets under a 5%-drop
// fault plan, shared-memory rings, and the hybrid shm/TCP router (two
// simulated hosts), across engines and in-flight block depths, and
// requires the matched results to be identical everywhere. The UDP legs
// must also show the repair sublayer actually working (retransmissions
// happened and the result still matched the golden baseline).
func TestGoldenCrossTransportEquivalence(t *testing.T) {
	app, ok := tracegen.ByName("AMG")
	if !ok {
		t.Fatal("tracegen: AMG generator missing")
	}
	tr := app.Generate(tracegen.Config{Scale: 5})
	if tr.NumRanks() < 2 {
		t.Fatalf("trace has %d ranks, want >= 2", tr.NumRanks())
	}

	plan, err := rdma.ParseFaultPlan("seed=11,drop=0.05,dup=0.02")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		engine   mpi.EngineKind
		inflight int
	}{
		{mpi.EngineHost, 1},
		{mpi.EngineOffload, 1},
		{mpi.EngineOffload, 4},
		{mpi.EngineOffload, 8},
	}

	var totalRetx uint64
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v-k%d", tc.engine, tc.inflight), func(t *testing.T) {
			cfg := goldenConfig(tc.engine, tc.inflight)

			base, err := replay.Run(tr, cfg)
			if err != nil {
				t.Fatalf("inproc: %v", err)
			}
			golden := summarize(base)
			if golden.Sends == 0 || golden.Recvs == 0 {
				t.Fatalf("degenerate golden baseline: %+v", golden)
			}

			tcp, _ := replayNet(t, tr, "tcp", cfg, rdma.FaultPlan{})
			if tcp != golden {
				t.Errorf("tcp diverged: got %+v, want %+v", tcp, golden)
			}

			shm, _ := replayNet(t, tr, "shm", cfg, rdma.FaultPlan{})
			if shm != golden {
				t.Errorf("shm diverged: got %+v, want %+v", shm, golden)
			}

			hybrid, _ := replayNet(t, tr, "hybrid", cfg, rdma.FaultPlan{})
			if hybrid != golden {
				t.Errorf("hybrid diverged: got %+v, want %+v", hybrid, golden)
			}

			udp, rel := replayNet(t, tr, "udp", cfg, plan)
			if udp != golden {
				t.Errorf("udp+faults diverged: got %+v, want %+v", udp, golden)
			}
			totalRetx += rel.Retransmits
			if rel.Sent == 0 {
				t.Error("udp reliability sublayer saw no traffic")
			}
		})
	}
	// Drops are probabilistic per run; over all four UDP legs the 5% plan
	// must have forced at least one retransmission.
	if totalRetx == 0 {
		t.Error("no retransmissions across any UDP leg: fault plan not reaching the transport")
	}
}
