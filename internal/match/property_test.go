package match_test

import (
	"math/rand"
	"testing"

	"repro/internal/match"
	"repro/internal/match/matchtest"
)

// TestBinMatchesGoldenModel drives random scenarios through the traditional
// list matcher (the golden model) and the binned matcher at several bin
// counts, requiring identical message→receive pairings. MPI matching is
// deterministic under C1+C2, so any divergence is a bug.
func TestBinMatchesGoldenModel(t *testing.T) {
	cfgs := []matchtest.Config{
		matchtest.DefaultConfig(),
		{Sources: 2, Tags: 2, Comms: 1, PSrcWild: 0.5, PTagWild: 0.5},             // wildcard heavy
		{Sources: 32, Tags: 64, Comms: 1},                                         // wide key space
		{Sources: 4, Tags: 1, Comms: 1, Burstiness: 6},                            // bursty same-key
		{Sources: 1, Tags: 1, Comms: 1, PSrcWild: 0.3, PTagWild: 0.3},             // single key, max conflicts
		{Sources: 8, Tags: 8, Comms: 3, PSrcWild: 0.1, PTagWild: 0.1, PPost: 0.8}, // post heavy
		{Sources: 8, Tags: 8, Comms: 3, PPost: 0.2},                               // arrival heavy
	}
	for ci, cfg := range cfgs {
		for _, bins := range []int{1, 2, 7, 32, 128} {
			rng := rand.New(rand.NewSource(int64(1000*ci + bins)))
			for iter := 0; iter < 20; iter++ {
				ops := matchtest.Generate(rng, 400, cfg)
				gold, gp, gu := matchtest.Run(match.NewListMatcher(), ops)
				got, bp, bu := matchtest.Run(match.NewBinMatcher(bins), ops)
				if diff := matchtest.DiffPairings(gold, got); diff != "" {
					t.Fatalf("cfg %d bins %d iter %d: %s", ci, bins, iter, diff)
				}
				if gp != bp || gu != bu {
					t.Fatalf("cfg %d bins %d iter %d: depths golden (%d,%d) engine (%d,%d)",
						ci, bins, iter, gp, gu, bp, bu)
				}
			}
		}
	}
}

// TestGoldenModelConservation checks the bookkeeping identity:
// matches*2 + queued-posted + stored-unexpected == total ops.
func TestGoldenModelConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := matchtest.Generate(rng, 1000, matchtest.DefaultConfig())
	m := match.NewListMatcher()
	pairings, posted, unexpected := matchtest.Run(m, ops)
	if 2*len(pairings)+posted+unexpected != len(ops) {
		t.Fatalf("conservation violated: 2*%d + %d + %d != %d",
			len(pairings), posted, unexpected, len(ops))
	}
	st := m.Stats()
	if st.Matched != uint64(len(pairings)) {
		t.Fatalf("stats.Matched %d != pairings %d", st.Matched, len(pairings))
	}
	// Queued counts receives that entered the PRQ; entries later consumed by
	// arrivals are not decremented, so Queued can only exceed the residue.
	if st.Queued < uint64(posted) {
		t.Fatalf("stats.Queued %d < residual posted %d", st.Queued, posted)
	}
	if st.Unexpected < uint64(unexpected) {
		t.Fatalf("stats.Unexpected %d < residual unexpected %d", st.Unexpected, unexpected)
	}
}

func TestDiffPairingsReportsDivergence(t *testing.T) {
	a := []match.Pairing{{MsgSeq: 1, RecvLabel: 0}}
	b := []match.Pairing{{MsgSeq: 1, RecvLabel: 2}}
	if matchtest.DiffPairings(a, b) == "" {
		t.Fatal("divergent pairings reported as equal")
	}
	if matchtest.DiffPairings(a, a) != "" {
		t.Fatal("identical pairings reported as different")
	}
	if matchtest.DiffPairings(a, nil) == "" {
		t.Fatal("count mismatch not reported")
	}
	c := []match.Pairing{{MsgSeq: 9, RecvLabel: 0}}
	if matchtest.DiffPairings(a, c) == "" {
		t.Fatal("unknown message not reported")
	}
}
