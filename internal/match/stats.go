package match

// Stats accumulates search-cost statistics for a matching engine. The
// paper's Figure 7 reports "queue depth": the number of queue entries
// examined while searching for a match. With a single bin this is the
// classic linked-list traversal length; with b bins it shrinks roughly by
// a factor of b unless keys collide.
type Stats struct {
	// PostSearches is the number of PostRecv operations that searched the
	// unexpected store.
	PostSearches uint64
	// PostTraversed is the total number of unexpected entries examined
	// across all PostRecv searches.
	PostTraversed uint64
	// PostMaxDepth is the largest number of entries examined by a single
	// PostRecv search.
	PostMaxDepth uint64

	// ArriveSearches is the number of Arrive operations that searched the
	// posted-receive store.
	ArriveSearches uint64
	// ArriveTraversed is the total number of posted entries examined across
	// all Arrive searches.
	ArriveTraversed uint64
	// ArriveMaxDepth is the largest number of entries examined by a single
	// Arrive search.
	ArriveMaxDepth uint64

	// Matched counts completed pairings; Unexpected counts messages stored
	// without a match; Queued counts receives stored without a match.
	Matched    uint64
	Unexpected uint64
	Queued     uint64
}

// recordPost folds one PostRecv search of depth d into the statistics.
func (s *Stats) recordPost(d uint64) {
	s.PostSearches++
	s.PostTraversed += d
	if d > s.PostMaxDepth {
		s.PostMaxDepth = d
	}
}

// recordArrive folds one Arrive search of depth d into the statistics.
func (s *Stats) recordArrive(d uint64) {
	s.ArriveSearches++
	s.ArriveTraversed += d
	if d > s.ArriveMaxDepth {
		s.ArriveMaxDepth = d
	}
}

// AvgArriveDepth returns the mean number of posted entries examined per
// Arrive search, the quantity plotted in Figure 7.
func (s Stats) AvgArriveDepth() float64 {
	if s.ArriveSearches == 0 {
		return 0
	}
	return float64(s.ArriveTraversed) / float64(s.ArriveSearches)
}

// AvgPostDepth returns the mean number of unexpected entries examined per
// PostRecv search.
func (s Stats) AvgPostDepth() float64 {
	if s.PostSearches == 0 {
		return 0
	}
	return float64(s.PostTraversed) / float64(s.PostSearches)
}

// AvgDepth returns the mean search depth over both directions.
func (s Stats) AvgDepth() float64 {
	n := s.ArriveSearches + s.PostSearches
	if n == 0 {
		return 0
	}
	return float64(s.ArriveTraversed+s.PostTraversed) / float64(n)
}

// MaxDepth returns the largest single-search depth seen in either direction.
func (s Stats) MaxDepth() uint64 {
	if s.ArriveMaxDepth > s.PostMaxDepth {
		return s.ArriveMaxDepth
	}
	return s.PostMaxDepth
}

// Delivered returns the number of messages the arrival path delivered into
// matching. Every arriving message either pairs immediately (arrive-side
// Matched) or is stored unexpected; Matched additionally counts post-side
// pairings against the unexpected store, which are PostSearches - Queued
// (posts that did not queue). Delivered is therefore independent of how
// arrivals were batched on the wire — coalesced frames may share searches,
// so ArriveSearches is NOT a message count — and it is the quantity the
// cost model prices per message (the host-side analogue of the offload
// engine's EngineStats.Messages).
func (s Stats) Delivered() uint64 {
	postMatches := s.PostSearches - s.Queued
	d := s.Matched + s.Unexpected
	if postMatches > d {
		return 0
	}
	return d - postMatches
}

// Add returns the element-wise accumulation of s and t (max fields take the
// maximum). It is used to merge per-rank statistics.
func (s Stats) Add(t Stats) Stats {
	out := s
	out.PostSearches += t.PostSearches
	out.PostTraversed += t.PostTraversed
	if t.PostMaxDepth > out.PostMaxDepth {
		out.PostMaxDepth = t.PostMaxDepth
	}
	out.ArriveSearches += t.ArriveSearches
	out.ArriveTraversed += t.ArriveTraversed
	if t.ArriveMaxDepth > out.ArriveMaxDepth {
		out.ArriveMaxDepth = t.ArriveMaxDepth
	}
	out.Matched += t.Matched
	out.Unexpected += t.Unexpected
	out.Queued += t.Queued
	return out
}
