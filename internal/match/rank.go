package match

// RankMatcher is the rank-based baseline of the paper's Table I (Dózsa et
// al., "Enabling concurrent multithreaded MPI communication on multicore
// petascale systems"): posted receives and unexpected messages are
// partitioned per source rank, so threads handling different senders never
// contend and searches only walk one sender's queue. Receives with a
// source wildcard cannot be partitioned and live in a shared posting-
// ordered list, checked against every arrival; posting labels arbitrate
// between the partitions and the wildcard list (C1).
//
// RankMatcher is not safe for concurrent use.
type RankMatcher struct {
	posted    map[Rank]*binChain // fully specified receives per source
	wildcards wildList           // AnySource receives, posting order
	postedN   int

	unexp    map[Rank]*umChain // unexpected messages per source
	unexpAll umGlobal          // arrival order (for AnySource receives)

	nextLabel uint64
	nextSeq   uint64
	stats     Stats
}

// NewRankMatcher returns an empty rank-based matcher.
func NewRankMatcher() *RankMatcher {
	return &RankMatcher{
		posted: make(map[Rank]*binChain),
		unexp:  make(map[Rank]*umChain),
	}
}

func (m *RankMatcher) postedChain(src Rank) *binChain {
	c := m.posted[src]
	if c == nil {
		c = &binChain{}
		m.posted[src] = c
	}
	return c
}

func (m *RankMatcher) unexpChain(src Rank) *umChain {
	c := m.unexp[src]
	if c == nil {
		c = &umChain{}
		m.unexp[src] = c
	}
	return c
}

// PostRecv implements Matcher.
func (m *RankMatcher) PostRecv(r *Recv) (*Envelope, bool) {
	r.Label = m.nextLabel
	m.nextLabel++

	var depth uint64
	if r.Source != AnySource {
		// Only this sender's messages can match: walk its queue.
		for e := m.unexpChain(r.Source).head; e != nil; e = e.binNext {
			if r.Matches(e.env) {
				m.removeUnexpected(e)
				m.stats.recordPost(depth)
				m.stats.Matched++
				return e.env, true
			}
			depth++
		}
		m.stats.recordPost(depth)
		m.stats.Queued++
		m.postedChain(r.Source).push(r)
		m.postedN++
		return nil, false
	}

	// AnySource: the partitioning cannot help; walk arrival order.
	for e := m.unexpAll.head; e != nil; e = e.allNext {
		if r.Matches(e.env) {
			m.removeUnexpected(e)
			m.stats.recordPost(depth)
			m.stats.Matched++
			return e.env, true
		}
		depth++
	}
	m.stats.recordPost(depth)
	m.stats.Queued++
	m.wildcards.push(r)
	m.postedN++
	return nil, false
}

func (m *RankMatcher) removeUnexpected(e *umEntry) {
	m.unexp[Rank(e.bin)].remove(e)
	m.unexpAll.remove(e)
}

// Arrive implements Matcher: the sender's partition and the wildcard list
// are both searched; the older posting label wins (C1).
func (m *RankMatcher) Arrive(e *Envelope) (*Recv, bool) {
	if e.Seq == 0 {
		m.nextSeq++
		e.Seq = m.nextSeq
	}

	var depth uint64
	var partCand *binEntry
	if c := m.posted[e.Source]; c != nil {
		for be := c.head; be != nil; be = be.next {
			if be.recv.Matches(e) {
				partCand = be
				break
			}
			depth++
		}
	}
	var wildCand *wildEntry
	for we := m.wildcards.head; we != nil; we = we.next {
		if we.recv.Matches(e) {
			wildCand = we
			break
		}
		depth++
	}
	m.stats.recordArrive(depth)

	switch {
	case partCand != nil && (wildCand == nil || partCand.recv.Label < wildCand.recv.Label):
		m.posted[e.Source].remove(partCand)
		m.postedN--
		m.stats.Matched++
		return partCand.recv, true
	case wildCand != nil:
		m.wildcards.remove(wildCand)
		m.postedN--
		m.stats.Matched++
		return wildCand.recv, true
	}

	ue := &umEntry{env: e, bin: int(e.Source)}
	m.unexpChain(e.Source).push(ue)
	m.unexpAll.push(ue)
	m.stats.Unexpected++
	return nil, false
}

// PostedDepth implements Matcher.
func (m *RankMatcher) PostedDepth() int { return m.postedN }

// UnexpectedDepth implements Matcher.
func (m *RankMatcher) UnexpectedDepth() int { return m.unexpAll.n }

// Stats implements Matcher.
func (m *RankMatcher) Stats() Stats { return m.stats }

// ResetStats implements Matcher.
func (m *RankMatcher) ResetStats() { m.stats = Stats{} }

var _ Matcher = (*RankMatcher)(nil)
