// Package match defines the shared vocabulary of MPI message matching —
// envelopes, receive requests, wildcards, and the matching rules imposed by
// the MPI standard — together with two receiver-side baseline engines: a
// traditional two-queue linked-list matcher (the on-CPU baseline used by
// mainstream MPI implementations) and a Flajslik-style binned matcher.
//
// The optimistic, offload-oriented engine that is the subject of the paper
// lives in package core and shares these types.
//
// Matching rules. A posted receive matches an incoming message when the
// communicators are equal, the receive's source is either AnySource or equal
// to the message source, and the receive's tag is either AnyTag or equal to
// the message tag. Two ordering constraints must hold:
//
//   - C1 (order of posted receives): if a message could match several posted
//     receives, the receive posted first wins.
//   - C2 (non-overtaking): if two messages from the same sender could match
//     the same receive, they match in the order they were sent.
package match

import "fmt"

// Rank identifies an MPI process within a communicator.
type Rank int32

// Tag is the user-defined message identifier.
type Tag int32

// CommID identifies a communicator (message channel).
type CommID int32

// Wildcards. Messages themselves never carry wildcards; only posted receives
// may use them (MPI §3.2.4).
const (
	// AnySource matches a message from any sender (MPI_ANY_SOURCE).
	AnySource Rank = -1
	// AnyTag matches a message with any tag (MPI_ANY_TAG).
	AnyTag Tag = -1
)

// WorldComm is the default communicator used when none is specified.
const WorldComm CommID = 0

// Envelope is the matching-relevant header of an incoming message.
// The Seq field is assigned by the receiver in arrival order and is what the
// non-overtaking constraint (C2) is expressed against.
type Envelope struct {
	Source Rank   // sending rank; never a wildcard
	Tag    Tag    // message tag; never a wildcard
	Comm   CommID // communicator
	Seq    uint64 // receiver-side arrival sequence number
	Size   int    // payload size in bytes
	Data   []byte // optional payload (eager protocol); may be nil
	// SenderKey carries rendezvous information (e.g. a remote memory key)
	// opaque to the matching layer. A zero key means the eager protocol.
	SenderKey uint64
	// Inline optionally carries sender-computed hash values from the
	// message header (the §IV-D "inline hash values" optimization); engines
	// configured to trust them skip hashing on the accelerator. Nil means
	// the header carried no hashes and the engine computes its own.
	Inline *InlineHashes

	// inlineScratch is a reusable backing for Inline owned by pooled
	// envelopes (see EnvelopePool): SetInline writes into it instead of
	// allocating, and Reset retains it across recycling.
	inlineScratch *InlineHashes
}

// String implements fmt.Stringer for diagnostics.
func (e *Envelope) String() string {
	return fmt.Sprintf("msg{src=%d tag=%d comm=%d seq=%d size=%d}",
		e.Source, e.Tag, e.Comm, e.Seq, e.Size)
}

// Reset clears e for reuse, retaining its reusable Inline backing.
func (e *Envelope) Reset() {
	scratch := e.inlineScratch
	*e = Envelope{inlineScratch: scratch}
}

// SetInline records sender-computed hashes in e's reusable backing and
// points Inline at it, allocating the backing only on first use.
func (e *Envelope) SetInline(h InlineHashes) {
	if e.inlineScratch == nil {
		e.inlineScratch = new(InlineHashes)
	}
	*e.inlineScratch = h
	e.Inline = e.inlineScratch
}

// Recv is a posted receive request. Source and Tag may be wildcards.
// Label is assigned by the matching engine in posting order and is what the
// posted-receive-order constraint (C1) is expressed against.
type Recv struct {
	Source Rank   // requested source, or AnySource
	Tag    Tag    // requested tag, or AnyTag
	Comm   CommID // communicator
	Label  uint64 // engine-assigned posting-order label
	Buffer []byte // destination buffer; may be nil for header-only tests
	// User is an opaque completion cookie (e.g. an MPI request handle).
	User any
}

// String implements fmt.Stringer for diagnostics.
func (r *Recv) String() string {
	return fmt.Sprintf("recv{src=%d tag=%d comm=%d label=%d}",
		r.Source, r.Tag, r.Comm, r.Label)
}

// WildcardClass enumerates the four wildcard combinations a posted receive
// can use. The optimistic engine indexes each class separately (§III-B).
type WildcardClass uint8

const (
	// ClassNone: both source and tag are fully specified.
	ClassNone WildcardClass = iota
	// ClassSrcWild: source is AnySource, tag is specified.
	ClassSrcWild
	// ClassTagWild: tag is AnyTag, source is specified.
	ClassTagWild
	// ClassBothWild: both source and tag are wildcards.
	ClassBothWild
	// NumClasses is the number of wildcard classes.
	NumClasses = 4
)

// String implements fmt.Stringer.
func (c WildcardClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassSrcWild:
		return "src-wild"
	case ClassTagWild:
		return "tag-wild"
	case ClassBothWild:
		return "both-wild"
	}
	return fmt.Sprintf("WildcardClass(%d)", uint8(c))
}

// Class reports the wildcard class of the receive.
func (r *Recv) Class() WildcardClass {
	switch {
	case r.Source == AnySource && r.Tag == AnyTag:
		return ClassBothWild
	case r.Source == AnySource:
		return ClassSrcWild
	case r.Tag == AnyTag:
		return ClassTagWild
	default:
		return ClassNone
	}
}

// Matches reports whether the receive matches the envelope under MPI rules.
func (r *Recv) Matches(e *Envelope) bool {
	if r.Comm != e.Comm {
		return false
	}
	if r.Source != AnySource && r.Source != e.Source {
		return false
	}
	if r.Tag != AnyTag && r.Tag != e.Tag {
		return false
	}
	return true
}

// Matcher is a receiver-side MPI matching engine. Implementations must
// satisfy constraints C1 and C2 when driven from a single goroutine; the
// optimistic engine in package core additionally supports block-parallel
// arrival processing.
type Matcher interface {
	// PostRecv presents a new receive request. If a stored unexpected
	// message matches it (honoring C2), that envelope is returned and
	// removed from the unexpected store; otherwise the receive is recorded
	// (honoring C1) and nil is returned.
	PostRecv(r *Recv) (*Envelope, bool)

	// Arrive presents a new incoming message. If a posted receive matches
	// (honoring C1), it is returned and removed from the posted store;
	// otherwise the message is stored as unexpected and nil is returned.
	Arrive(e *Envelope) (*Recv, bool)

	// PostedDepth returns the number of receives currently posted.
	PostedDepth() int

	// UnexpectedDepth returns the number of stored unexpected messages.
	UnexpectedDepth() int

	// Stats returns cumulative search statistics.
	Stats() Stats

	// ResetStats zeroes the cumulative search statistics.
	ResetStats()
}

// Pairing records one completed match, for golden-model comparison.
type Pairing struct {
	MsgSeq    uint64 // Envelope.Seq of the matched message
	RecvLabel uint64 // Recv.Label of the matched receive
}
