package match_test

import (
	"fmt"
	"testing"

	"repro/internal/match"
)

// Baseline-strategy microbenchmarks: one posted-then-matched cycle with a
// configurable number of live keys, across every Table I implementation.

func cycle(b *testing.B, m match.Matcher, keys int) {
	b.Helper()
	// Warm: fill the structures with `keys` outstanding receives.
	for k := 0; k < keys; k++ {
		m.PostRecv(&match.Recv{Source: match.Rank(k % 16), Tag: match.Tag(k)})
	}
	// Pseudo-random key order: cycling through keys in posting order would
	// let the list matcher always match at the head, hiding its O(n) walk.
	lcg := uint32(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lcg = lcg*1664525 + 1013904223
		k := int(lcg>>8) % keys
		// Match the oldest receive for this key and re-post it.
		if _, ok := m.Arrive(&match.Envelope{Source: match.Rank(k % 16), Tag: match.Tag(k)}); !ok {
			b.Fatal("miss")
		}
		m.PostRecv(&match.Recv{Source: match.Rank(k % 16), Tag: match.Tag(k)})
	}
}

func BenchmarkMatchers(b *testing.B) {
	for _, keys := range []int{8, 64, 512} {
		for _, tc := range []struct {
			name string
			mk   func() match.Matcher
		}{
			{"list", func() match.Matcher { return match.NewListMatcher() }},
			{"bin-32", func() match.Matcher { return match.NewBinMatcher(32) }},
			{"bin-128", func() match.Matcher { return match.NewBinMatcher(128) }},
			{"rank", func() match.Matcher { return match.NewRankMatcher() }},
			{"adaptive", func() match.Matcher { return match.NewAdaptiveMatcher(match.AdaptiveConfig{}) }},
		} {
			b.Run(fmt.Sprintf("%s/keys=%d", tc.name, keys), func(b *testing.B) {
				cycle(b, tc.mk(), keys)
			})
		}
	}
}

// BenchmarkUnexpectedFlood measures the UMQ side: a flood of stored
// messages drained by posting receives.
func BenchmarkUnexpectedFlood(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func() match.Matcher
	}{
		{"list", func() match.Matcher { return match.NewListMatcher() }},
		{"bin-128", func() match.Matcher { return match.NewBinMatcher(128) }},
		{"rank", func() match.Matcher { return match.NewRankMatcher() }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := tc.mk()
			const flood = 256
			for i := 0; i < flood; i++ {
				m.Arrive(&match.Envelope{Source: match.Rank(i % 16), Tag: match.Tag(i)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % flood
				if _, ok := m.PostRecv(&match.Recv{Source: match.Rank(k % 16), Tag: match.Tag(k)}); !ok {
					b.Fatal("miss")
				}
				m.Arrive(&match.Envelope{Source: match.Rank(k % 16), Tag: match.Tag(k)})
			}
		})
	}
}

// BenchmarkHash measures the sender-side inline-hash computation (§IV-D).
func BenchmarkHash(b *testing.B) {
	e := &match.Envelope{Source: 13, Tag: 4099, Comm: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = match.ComputeInlineHashes(e)
	}
}
