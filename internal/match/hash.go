package match

// Key hashing shared by the binned baseline and the optimistic engine.
// The functions are deliberately cheap — the paper's §IV-D "inline hash
// values" optimization assumes the sender can compute them in a handful of
// instructions — while mixing well enough that consecutive tags or ranks do
// not collide systematically (FNV-1a over the key words, finalized with a
// 64-bit avalanche).

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func mix64(x uint64) uint64 {
	// SplitMix64 finalizer: full avalanche in three multiply-xor rounds.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func fnv1a(words ...uint64) uint64 {
	h := uint64(fnvOffset64)
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= fnvPrime64
		}
	}
	return mix64(h)
}

// HashSrcTag hashes a fully specified (source, tag, communicator) key, used
// by the no-wildcard index.
func HashSrcTag(src Rank, tag Tag, comm CommID) uint64 {
	return fnv1a(uint64(uint32(src)), uint64(uint32(tag)), uint64(uint32(comm)))
}

// HashTag hashes a (tag, communicator) key, used by the source-wildcard
// index (the source is unknown at posting time).
func HashTag(tag Tag, comm CommID) uint64 {
	return fnv1a(0xa5a5a5a5, uint64(uint32(tag)), uint64(uint32(comm)))
}

// HashSrc hashes a (source, communicator) key, used by the tag-wildcard
// index (the tag is unknown at posting time).
func HashSrc(src Rank, comm CommID) uint64 {
	return fnv1a(0x5a5a5a5a, uint64(uint32(src)), uint64(uint32(comm)))
}

// InlineHashes carries the three sender-computable hash values of a message
// (§IV-D "inline hash values"): they depend only on the message header, so a
// sender can place them in the wire header and spare the accelerator the
// hashing work.
type InlineHashes struct {
	SrcTag uint64 // HashSrcTag(src, tag, comm)
	Tag    uint64 // HashTag(tag, comm)
	Src    uint64 // HashSrc(src, comm)
}

// ComputeInlineHashes returns the three hash values for an envelope.
func ComputeInlineHashes(e *Envelope) InlineHashes {
	return InlineHashes{
		SrcTag: HashSrcTag(e.Source, e.Tag, e.Comm),
		Tag:    HashTag(e.Tag, e.Comm),
		Src:    HashSrc(e.Source, e.Comm),
	}
}
