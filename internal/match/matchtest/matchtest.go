// Package matchtest provides scenario generators and golden-model drivers
// shared by the test suites of the matching engines. A scenario is a
// sequence of post/arrive operations; the golden model (the traditional
// list matcher) defines the MPI-correct message→receive pairing, which is
// unique given constraints C1 and C2, so every compliant engine must
// produce the identical pairing list.
package matchtest

import (
	"fmt"
	"math/rand"

	"repro/internal/match"
)

// Op is one matching operation in a scenario.
type Op struct {
	Post bool       // true: post a receive; false: deliver a message
	Src  match.Rank // source (or AnySource for posts)
	Tag  match.Tag  // tag (or AnyTag for posts)
	Comm match.CommID
}

// Config bounds the randomness of generated scenarios.
type Config struct {
	Sources    int     // number of distinct source ranks
	Tags       int     // number of distinct tags
	Comms      int     // number of communicators (0 means 1)
	PSrcWild   float64 // probability a post uses AnySource
	PTagWild   float64 // probability a post uses AnyTag
	PPost      float64 // probability an op is a post (0 means 0.5)
	Burstiness int     // if >0, repeat each generated op up to this many times
}

// DefaultConfig is a balanced scenario mix with moderate wildcard use.
func DefaultConfig() Config {
	return Config{Sources: 8, Tags: 8, Comms: 2, PSrcWild: 0.15, PTagWild: 0.15, PPost: 0.5}
}

// Generate produces n operations under cfg using rng.
func Generate(rng *rand.Rand, n int, cfg Config) []Op {
	if cfg.Comms <= 0 {
		cfg.Comms = 1
	}
	if cfg.PPost == 0 {
		cfg.PPost = 0.5
	}
	ops := make([]Op, 0, n)
	for len(ops) < n {
		op := Op{
			Post: rng.Float64() < cfg.PPost,
			Src:  match.Rank(rng.Intn(cfg.Sources)),
			Tag:  match.Tag(rng.Intn(cfg.Tags)),
			Comm: match.CommID(rng.Intn(cfg.Comms)),
		}
		if op.Post {
			if rng.Float64() < cfg.PSrcWild {
				op.Src = match.AnySource
			}
			if rng.Float64() < cfg.PTagWild {
				op.Tag = match.AnyTag
			}
		}
		reps := 1
		if cfg.Burstiness > 1 {
			reps = 1 + rng.Intn(cfg.Burstiness)
		}
		for r := 0; r < reps && len(ops) < n; r++ {
			ops = append(ops, op)
		}
	}
	return ops
}

// Run drives ops through m sequentially and returns the pairings in
// completion order plus the final queue depths.
func Run(m match.Matcher, ops []Op) (pairings []match.Pairing, posted, unexpected int) {
	var seq uint64
	for _, op := range ops {
		if op.Post {
			r := &match.Recv{Source: op.Src, Tag: op.Tag, Comm: op.Comm}
			if env, ok := m.PostRecv(r); ok {
				pairings = append(pairings, match.Pairing{MsgSeq: env.Seq, RecvLabel: r.Label})
			}
		} else {
			seq++
			e := &match.Envelope{Source: op.Src, Tag: op.Tag, Comm: op.Comm, Seq: seq}
			if r, ok := m.Arrive(e); ok {
				pairings = append(pairings, match.Pairing{MsgSeq: e.Seq, RecvLabel: r.Label})
			}
		}
	}
	return pairings, m.PostedDepth(), m.UnexpectedDepth()
}

// DiffPairings compares two pairing sets irrespective of completion order
// (block-parallel engines may report completions out of order within a
// block) and returns a description of the first divergence, or "".
func DiffPairings(golden, got []match.Pairing) string {
	if len(golden) != len(got) {
		return fmt.Sprintf("pairing count: golden %d, got %d", len(golden), len(got))
	}
	byMsg := make(map[uint64]uint64, len(golden))
	for _, p := range golden {
		byMsg[p.MsgSeq] = p.RecvLabel
	}
	for _, p := range got {
		want, ok := byMsg[p.MsgSeq]
		if !ok {
			return fmt.Sprintf("msg %d matched by engine but not by golden model", p.MsgSeq)
		}
		if want != p.RecvLabel {
			return fmt.Sprintf("msg %d: golden matched recv label %d, engine matched %d",
				p.MsgSeq, want, p.RecvLabel)
		}
	}
	return ""
}
