package match

import "testing"

func TestListExpectedMessage(t *testing.T) {
	m := NewListMatcher()
	if _, ok := m.PostRecv(&Recv{Source: 1, Tag: 5}); ok {
		t.Fatal("empty UMQ must not match")
	}
	if m.PostedDepth() != 1 {
		t.Fatalf("PostedDepth = %d, want 1", m.PostedDepth())
	}
	r, ok := m.Arrive(&Envelope{Source: 1, Tag: 5})
	if !ok {
		t.Fatal("expected message must match posted receive")
	}
	if r.Source != 1 || r.Tag != 5 {
		t.Fatalf("wrong receive matched: %v", r)
	}
	if m.PostedDepth() != 0 || m.UnexpectedDepth() != 0 {
		t.Fatal("queues must be empty after match")
	}
}

func TestListUnexpectedMessage(t *testing.T) {
	m := NewListMatcher()
	if _, ok := m.Arrive(&Envelope{Source: 2, Tag: 9}); ok {
		t.Fatal("empty PRQ must not match")
	}
	if m.UnexpectedDepth() != 1 {
		t.Fatalf("UnexpectedDepth = %d, want 1", m.UnexpectedDepth())
	}
	e, ok := m.PostRecv(&Recv{Source: 2, Tag: 9})
	if !ok {
		t.Fatal("posting receive must match stored unexpected message")
	}
	if e.Source != 2 || e.Tag != 9 {
		t.Fatalf("wrong envelope matched: %v", e)
	}
	if m.UnexpectedDepth() != 0 {
		t.Fatal("UMQ must be empty after match")
	}
}

func TestListC1PostedOrder(t *testing.T) {
	// Two receives can match the same message; the first-posted must win.
	m := NewListMatcher()
	m.PostRecv(&Recv{Source: AnySource, Tag: 3}) // label 0
	m.PostRecv(&Recv{Source: 1, Tag: 3})         // label 1
	r, ok := m.Arrive(&Envelope{Source: 1, Tag: 3})
	if !ok || r.Label != 0 {
		t.Fatalf("C1 violated: matched label %d, want 0", r.Label)
	}
}

func TestListC2NonOvertaking(t *testing.T) {
	// Two messages from the same sender match the same receive; they must
	// complete in send order.
	m := NewListMatcher()
	m.Arrive(&Envelope{Source: 4, Tag: 1, Seq: 1})
	m.Arrive(&Envelope{Source: 4, Tag: 1, Seq: 2})
	e1, ok := m.PostRecv(&Recv{Source: 4, Tag: 1})
	if !ok || e1.Seq != 1 {
		t.Fatalf("C2 violated: first receive got seq %d, want 1", e1.Seq)
	}
	e2, ok := m.PostRecv(&Recv{Source: 4, Tag: 1})
	if !ok || e2.Seq != 2 {
		t.Fatalf("C2 violated: second receive got seq %d, want 2", e2.Seq)
	}
}

func TestListWildcardReceiveTakesOldestUnexpected(t *testing.T) {
	m := NewListMatcher()
	m.Arrive(&Envelope{Source: 7, Tag: 1, Seq: 1})
	m.Arrive(&Envelope{Source: 2, Tag: 1, Seq: 2})
	e, ok := m.PostRecv(&Recv{Source: AnySource, Tag: 1})
	if !ok || e.Source != 7 {
		t.Fatalf("wildcard receive matched src %d, want oldest (7)", e.Source)
	}
}

func TestListNoMatchAcrossComms(t *testing.T) {
	m := NewListMatcher()
	m.PostRecv(&Recv{Source: 1, Tag: 1, Comm: 0})
	if _, ok := m.Arrive(&Envelope{Source: 1, Tag: 1, Comm: 1}); ok {
		t.Fatal("message must not match receive on a different communicator")
	}
	if m.PostedDepth() != 1 || m.UnexpectedDepth() != 1 {
		t.Fatal("both entries must remain queued")
	}
}

func TestListLabelsMonotonic(t *testing.T) {
	m := NewListMatcher()
	var last uint64
	for i := 0; i < 100; i++ {
		r := &Recv{Source: Rank(i), Tag: 1}
		m.PostRecv(r)
		if i > 0 && r.Label <= last {
			t.Fatalf("labels not monotonic: %d after %d", r.Label, last)
		}
		last = r.Label
	}
}

func TestListSeqAssignment(t *testing.T) {
	m := NewListMatcher()
	e1 := &Envelope{Source: 0, Tag: 0}
	e2 := &Envelope{Source: 0, Tag: 0}
	m.Arrive(e1)
	m.Arrive(e2)
	if e1.Seq == 0 || e2.Seq <= e1.Seq {
		t.Fatalf("arrival seq not assigned in order: %d, %d", e1.Seq, e2.Seq)
	}
	// Pre-assigned sequence numbers are preserved.
	e3 := &Envelope{Source: 0, Tag: 0, Seq: 999}
	m.Arrive(e3)
	if e3.Seq != 999 {
		t.Fatalf("pre-assigned seq overwritten: %d", e3.Seq)
	}
}

func TestListSearchDepthStats(t *testing.T) {
	m := NewListMatcher()
	for i := 0; i < 10; i++ {
		m.PostRecv(&Recv{Source: Rank(i), Tag: 0})
	}
	// A message for the last receive walks past nine non-matching entries.
	m.Arrive(&Envelope{Source: 9, Tag: 0})
	st := m.Stats()
	if st.ArriveMaxDepth != 9 {
		t.Fatalf("ArriveMaxDepth = %d, want 9", st.ArriveMaxDepth)
	}
	m.ResetStats()
	if m.Stats().ArriveSearches != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestListInterleavedRemoval(t *testing.T) {
	// Remove from the middle of the PRQ and make sure the chain stays intact.
	m := NewListMatcher()
	for i := 0; i < 5; i++ {
		m.PostRecv(&Recv{Source: Rank(i), Tag: 0})
	}
	if r, ok := m.Arrive(&Envelope{Source: 2, Tag: 0}); !ok || r.Source != 2 {
		t.Fatal("middle removal failed")
	}
	// Remaining receives still matchable, in order.
	want := []Rank{0, 1, 3, 4}
	for _, src := range want {
		if r, ok := m.Arrive(&Envelope{Source: src, Tag: 0}); !ok || r.Source != src {
			t.Fatalf("receive for src %d lost after middle removal", src)
		}
	}
	if m.PostedDepth() != 0 {
		t.Fatalf("PostedDepth = %d, want 0", m.PostedDepth())
	}
}

func TestListTailRemovalThenAppend(t *testing.T) {
	m := NewListMatcher()
	m.PostRecv(&Recv{Source: 0, Tag: 0})
	m.PostRecv(&Recv{Source: 1, Tag: 0})
	m.Arrive(&Envelope{Source: 1, Tag: 0}) // removes tail
	m.PostRecv(&Recv{Source: 2, Tag: 0})   // append must still work
	if r, ok := m.Arrive(&Envelope{Source: 2, Tag: 0}); !ok || r.Source != 2 {
		t.Fatal("append after tail removal broken")
	}
	if r, ok := m.Arrive(&Envelope{Source: 0, Tag: 0}); !ok || r.Source != 0 {
		t.Fatal("head entry lost")
	}
}

func TestListUMQMiddleRemoval(t *testing.T) {
	m := NewListMatcher()
	m.Arrive(&Envelope{Source: 0, Tag: 0})
	m.Arrive(&Envelope{Source: 1, Tag: 0})
	m.Arrive(&Envelope{Source: 2, Tag: 0})
	if e, ok := m.PostRecv(&Recv{Source: 1, Tag: 0}); !ok || e.Source != 1 {
		t.Fatal("UMQ middle removal failed")
	}
	if e, ok := m.PostRecv(&Recv{Source: AnySource, Tag: AnyTag}); !ok || e.Source != 0 {
		t.Fatal("UMQ order broken after middle removal")
	}
	if e, ok := m.PostRecv(&Recv{Source: AnySource, Tag: AnyTag}); !ok || e.Source != 2 {
		t.Fatal("UMQ tail lost after removals")
	}
}

func TestListPeekUnexpected(t *testing.T) {
	m := NewListMatcher()
	m.Arrive(&Envelope{Source: 3, Tag: 4, Seq: 1})
	env, ok := m.PeekUnexpected(&Recv{Source: AnySource, Tag: 4})
	if !ok || env.Seq != 1 {
		t.Fatal("peek failed")
	}
	if m.UnexpectedDepth() != 1 {
		t.Fatal("peek consumed")
	}
	if _, ok := m.PeekUnexpected(&Recv{Source: 3, Tag: 9}); ok {
		t.Fatal("peek invented a message")
	}
}
