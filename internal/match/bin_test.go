package match

import "testing"

func TestBinMatcherBasicExpected(t *testing.T) {
	m := NewBinMatcher(32)
	m.PostRecv(&Recv{Source: 3, Tag: 8})
	r, ok := m.Arrive(&Envelope{Source: 3, Tag: 8})
	if !ok || r.Source != 3 || r.Tag != 8 {
		t.Fatalf("expected match failed: %v ok=%v", r, ok)
	}
}

func TestBinMatcherBasicUnexpected(t *testing.T) {
	m := NewBinMatcher(32)
	m.Arrive(&Envelope{Source: 3, Tag: 8})
	e, ok := m.PostRecv(&Recv{Source: 3, Tag: 8})
	if !ok || e.Source != 3 {
		t.Fatalf("unexpected match failed: %v ok=%v", e, ok)
	}
	if m.UnexpectedDepth() != 0 {
		t.Fatal("unexpected store not emptied")
	}
}

func TestBinMatcherRejectsZeroBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBinMatcher(0) must panic")
		}
	}()
	NewBinMatcher(0)
}

func TestBinMatcherC1AcrossBinAndWildcard(t *testing.T) {
	// A wildcard receive posted before a specific one must win (C1), even
	// though they live in different structures.
	m := NewBinMatcher(32)
	m.PostRecv(&Recv{Source: AnySource, Tag: 4}) // label 0, wildcard list
	m.PostRecv(&Recv{Source: 6, Tag: 4})         // label 1, bin
	r, ok := m.Arrive(&Envelope{Source: 6, Tag: 4})
	if !ok || r.Label != 0 {
		t.Fatalf("C1 across structures violated: got label %d, want 0", r.Label)
	}
	// And the reverse posting order must pick the bin entry.
	m2 := NewBinMatcher(32)
	m2.PostRecv(&Recv{Source: 6, Tag: 4})         // label 0, bin
	m2.PostRecv(&Recv{Source: AnySource, Tag: 4}) // label 1, wildcard
	r2, ok := m2.Arrive(&Envelope{Source: 6, Tag: 4})
	if !ok || r2.Label != 0 {
		t.Fatalf("C1 reversed violated: got label %d, want 0", r2.Label)
	}
}

func TestBinMatcherWildcardReceiveSeesArrivalOrder(t *testing.T) {
	// Unexpected messages with different keys land in different bins, but a
	// wildcard receive must still take the globally oldest one (C2).
	m := NewBinMatcher(64)
	m.Arrive(&Envelope{Source: 1, Tag: 10, Seq: 1})
	m.Arrive(&Envelope{Source: 2, Tag: 20, Seq: 2})
	m.Arrive(&Envelope{Source: 3, Tag: 30, Seq: 3})
	e, ok := m.PostRecv(&Recv{Source: AnySource, Tag: AnyTag})
	if !ok || e.Seq != 1 {
		t.Fatalf("wildcard receive got seq %d, want 1", e.Seq)
	}
	// The taken message must be gone from its bin too: a specific receive
	// for it must now queue.
	if _, ok := m.PostRecv(&Recv{Source: 1, Tag: 10}); ok {
		t.Fatal("message matched twice (bin unlink missing)")
	}
}

func TestBinMatcherSpecificReceiveBinRemovalUnlinksGlobal(t *testing.T) {
	m := NewBinMatcher(64)
	m.Arrive(&Envelope{Source: 1, Tag: 10, Seq: 1})
	m.Arrive(&Envelope{Source: 2, Tag: 20, Seq: 2})
	// Specific receive consumes the first message via its bin.
	if e, ok := m.PostRecv(&Recv{Source: 1, Tag: 10}); !ok || e.Seq != 1 {
		t.Fatal("specific receive failed")
	}
	// Wildcard receive must now see only the second message.
	e, ok := m.PostRecv(&Recv{Source: AnySource, Tag: AnyTag})
	if !ok || e.Seq != 2 {
		t.Fatalf("global unlink missing: wildcard got seq %d, want 2", e.Seq)
	}
	if m.UnexpectedDepth() != 0 {
		t.Fatal("unexpected store should be empty")
	}
}

func TestBinMatcherSameKeyFIFO(t *testing.T) {
	m := NewBinMatcher(8)
	for i := 1; i <= 4; i++ {
		m.Arrive(&Envelope{Source: 5, Tag: 5, Seq: uint64(i)})
	}
	for i := 1; i <= 4; i++ {
		e, ok := m.PostRecv(&Recv{Source: 5, Tag: 5})
		if !ok || e.Seq != uint64(i) {
			t.Fatalf("same-key FIFO violated at %d: got %d", i, e.Seq)
		}
	}
}

func TestBinMatcherOneBinDegeneratesToList(t *testing.T) {
	// With one bin the search depths must equal the traditional matcher's.
	lm := NewListMatcher()
	bm := NewBinMatcher(1)
	ops := []struct {
		post bool
		src  Rank
		tag  Tag
	}{
		{true, 1, 1}, {true, 2, 2}, {true, 3, 3},
		{false, 3, 3}, {false, 2, 2}, {false, 1, 1},
	}
	for _, op := range ops {
		if op.post {
			lm.PostRecv(&Recv{Source: op.src, Tag: op.tag})
			bm.PostRecv(&Recv{Source: op.src, Tag: op.tag})
		} else {
			lm.Arrive(&Envelope{Source: op.src, Tag: op.tag})
			bm.Arrive(&Envelope{Source: op.src, Tag: op.tag})
		}
	}
	if lm.Stats().ArriveTraversed != bm.Stats().ArriveTraversed {
		t.Fatalf("1-bin traversal %d != list traversal %d",
			bm.Stats().ArriveTraversed, lm.Stats().ArriveTraversed)
	}
}

func TestBinMatcherDepthCollapsesWithBins(t *testing.T) {
	// The Figure 7 effect in miniature: distinct (src,tag) receives spread
	// across bins, so per-arrival search depth collapses.
	run := func(bins int) float64 {
		m := NewBinMatcher(bins)
		const n = 256
		for i := 0; i < n; i++ {
			m.PostRecv(&Recv{Source: Rank(i % 16), Tag: Tag(i / 16)})
		}
		for i := n - 1; i >= 0; i-- { // worst order for a list
			m.Arrive(&Envelope{Source: Rank(i % 16), Tag: Tag(i / 16)})
		}
		return m.Stats().AvgArriveDepth()
	}
	d1, d32, d128 := run(1), run(32), run(128)
	if d32 >= d1/4 {
		t.Errorf("32 bins: depth %.2f did not collapse from %.2f", d32, d1)
	}
	if d128 >= d32 {
		t.Errorf("128 bins: depth %.2f did not improve on %.2f", d128, d32)
	}
}

func TestBinMatcherOccupancy(t *testing.T) {
	m := NewBinMatcher(16)
	empty, maxChain := m.BinOccupancy()
	if empty != 16 || maxChain != 0 {
		t.Fatalf("fresh table occupancy wrong: empty=%d max=%d", empty, maxChain)
	}
	for i := 0; i < 8; i++ {
		m.PostRecv(&Recv{Source: Rank(i), Tag: Tag(i)})
	}
	empty, maxChain = m.BinOccupancy()
	if empty > 16-1 || maxChain < 1 {
		t.Fatalf("occupancy after posts wrong: empty=%d max=%d", empty, maxChain)
	}
}

func TestBinMatcherCommIsolation(t *testing.T) {
	m := NewBinMatcher(32)
	m.PostRecv(&Recv{Source: 1, Tag: 1, Comm: 0})
	if _, ok := m.Arrive(&Envelope{Source: 1, Tag: 1, Comm: 9}); ok {
		t.Fatal("matched across communicators")
	}
}

func TestBinMatcherStatsReset(t *testing.T) {
	m := NewBinMatcher(4)
	m.Arrive(&Envelope{Source: 1, Tag: 1})
	if m.Stats().ArriveSearches == 0 {
		t.Fatal("stats not recorded")
	}
	m.ResetStats()
	if m.Stats().ArriveSearches != 0 {
		t.Fatal("ResetStats did not clear")
	}
	if m.Bins() != 4 {
		t.Fatalf("Bins() = %d, want 4", m.Bins())
	}
}
