package match

// BinMatcher is a Flajslik-style binned matching engine ("Mitigating MPI
// message matching misery", ISC 2016), the software bin-based baseline the
// paper builds on. Posted receives without wildcards are hashed by
// (source, tag, communicator) into b bins, each bin an arrival-ordered
// chain; receives with wildcards live in a separate posting-ordered list.
// Posting-order labels play the role of Flajslik's timestamps: when a
// message could match both a binned receive and a wildcard receive, the
// smaller label wins (C1).
//
// Unexpected messages are hashed by their full key into b bins and
// additionally threaded on a global arrival-ordered list so wildcard
// receives can search them in order (C2).
//
// BinMatcher is not safe for concurrent use.
type BinMatcher struct {
	bins      int
	posted    []binChain // non-wildcard posted receives, one chain per bin
	wildcards wildList   // posted receives with any wildcard, posting order
	postedN   int

	unexpBins []umChain // unexpected messages hashed by full key
	unexpAll  umGlobal  // all unexpected messages in arrival order

	nextLabel uint64
	nextSeq   uint64
	stats     Stats
}

// NewBinMatcher returns a binned matcher with the given number of bins per
// hash table. bins must be at least 1; one bin degenerates to the
// traditional linked-list behaviour.
func NewBinMatcher(bins int) *BinMatcher {
	if bins < 1 {
		panic("match: NewBinMatcher requires bins >= 1")
	}
	return &BinMatcher{
		bins:      bins,
		posted:    make([]binChain, bins),
		unexpBins: make([]umChain, bins),
	}
}

// Bins returns the configured bin count.
func (m *BinMatcher) Bins() int { return m.bins }

type binEntry struct {
	recv       *Recv
	next, prev *binEntry
}

// binChain is a doubly linked arrival-ordered chain of posted receives.
type binChain struct {
	head, tail *binEntry
	n          int
}

func (c *binChain) push(r *Recv) *binEntry {
	e := &binEntry{recv: r}
	if c.tail == nil {
		c.head = e
	} else {
		c.tail.next = e
		e.prev = c.tail
	}
	c.tail = e
	c.n++
	return e
}

func (c *binChain) remove(e *binEntry) {
	if e.prev == nil {
		c.head = e.next
	} else {
		e.prev.next = e.next
	}
	if e.next == nil {
		c.tail = e.prev
	} else {
		e.next.prev = e.prev
	}
	e.next, e.prev = nil, nil
	c.n--
}

type wildEntry struct {
	recv       *Recv
	next, prev *wildEntry
}

// wildList is a doubly linked posting-ordered list of wildcard receives.
type wildList struct {
	head, tail *wildEntry
	n          int
}

func (l *wildList) push(r *Recv) *wildEntry {
	e := &wildEntry{recv: r}
	if l.tail == nil {
		l.head = e
	} else {
		l.tail.next = e
		e.prev = l.tail
	}
	l.tail = e
	l.n++
	return e
}

func (l *wildList) remove(e *wildEntry) {
	if e.prev == nil {
		l.head = e.next
	} else {
		e.prev.next = e.next
	}
	if e.next == nil {
		l.tail = e.prev
	} else {
		e.next.prev = e.prev
	}
	e.next, e.prev = nil, nil
	l.n--
}

// umEntry is an unexpected message threaded on both its hash bin and the
// global arrival list, so it can be unlinked from both in O(1) whichever
// structure found it.
type umEntry struct {
	env              *Envelope
	binNext, binPrev *umEntry
	allNext, allPrev *umEntry
	bin              int
}

type umChain struct {
	head, tail *umEntry
	n          int
}

func (c *umChain) push(e *umEntry) {
	if c.tail == nil {
		c.head = e
	} else {
		c.tail.binNext = e
		e.binPrev = c.tail
	}
	c.tail = e
	c.n++
}

func (c *umChain) remove(e *umEntry) {
	if e.binPrev == nil {
		c.head = e.binNext
	} else {
		e.binPrev.binNext = e.binNext
	}
	if e.binNext == nil {
		c.tail = e.binPrev
	} else {
		e.binNext.binPrev = e.binPrev
	}
	e.binNext, e.binPrev = nil, nil
	c.n--
}

type umGlobal struct {
	head, tail *umEntry
	n          int
}

func (g *umGlobal) push(e *umEntry) {
	if g.tail == nil {
		g.head = e
	} else {
		g.tail.allNext = e
		e.allPrev = g.tail
	}
	g.tail = e
	g.n++
}

func (g *umGlobal) remove(e *umEntry) {
	if e.allPrev == nil {
		g.head = e.allNext
	} else {
		e.allPrev.allNext = e.allNext
	}
	if e.allNext == nil {
		g.tail = e.allPrev
	} else {
		e.allNext.allPrev = e.allPrev
	}
	e.allNext, e.allPrev = nil, nil
	g.n--
}

func (m *BinMatcher) binFor(src Rank, tag Tag, comm CommID) int {
	return int(HashSrcTag(src, tag, comm) % uint64(m.bins))
}

// removeUnexpected unlinks an unexpected entry from both structures.
func (m *BinMatcher) removeUnexpected(e *umEntry) {
	m.unexpBins[e.bin].remove(e)
	m.unexpAll.remove(e)
}

// PostRecv implements Matcher.
func (m *BinMatcher) PostRecv(r *Recv) (*Envelope, bool) {
	r.Label = m.nextLabel
	m.nextLabel++

	var depth uint64
	if r.Class() == ClassNone {
		// Only messages with exactly this key can match: search that bin.
		bin := m.binFor(r.Source, r.Tag, r.Comm)
		for e := m.unexpBins[bin].head; e != nil; e = e.binNext {
			if r.Matches(e.env) {
				m.removeUnexpected(e)
				m.stats.recordPost(depth)
				m.stats.Matched++
				return e.env, true
			}
			depth++
		}
		m.stats.recordPost(depth)
		m.stats.Queued++
		m.posted[bin].push(r)
		m.postedN++
		return nil, false
	}

	// Wildcard receive: search all unexpected messages in arrival order.
	for e := m.unexpAll.head; e != nil; e = e.allNext {
		if r.Matches(e.env) {
			m.removeUnexpected(e)
			m.stats.recordPost(depth)
			m.stats.Matched++
			return e.env, true
		}
		depth++
	}
	m.stats.recordPost(depth)
	m.stats.Queued++
	m.wildcards.push(r)
	m.postedN++
	return nil, false
}

// Arrive implements Matcher. The message's bin chain and the wildcard list
// are both searched; the candidate with the smaller posting label wins (C1).
func (m *BinMatcher) Arrive(e *Envelope) (*Recv, bool) {
	if e.Seq == 0 {
		m.nextSeq++
		e.Seq = m.nextSeq
	}

	var depth uint64
	bin := m.binFor(e.Source, e.Tag, e.Comm)

	var binCand *binEntry
	for be := m.posted[bin].head; be != nil; be = be.next {
		if be.recv.Matches(e) {
			binCand = be
			break
		}
		depth++
	}
	var wildCand *wildEntry
	for we := m.wildcards.head; we != nil; we = we.next {
		if we.recv.Matches(e) {
			wildCand = we
			break
		}
		depth++
	}
	m.stats.recordArrive(depth)

	switch {
	case binCand != nil && (wildCand == nil || binCand.recv.Label < wildCand.recv.Label):
		m.posted[bin].remove(binCand)
		m.postedN--
		m.stats.Matched++
		return binCand.recv, true
	case wildCand != nil:
		m.wildcards.remove(wildCand)
		m.postedN--
		m.stats.Matched++
		return wildCand.recv, true
	}

	ue := &umEntry{env: e, bin: bin}
	m.unexpBins[bin].push(ue)
	m.unexpAll.push(ue)
	m.stats.Unexpected++
	return nil, false
}

// PostedDepth implements Matcher.
func (m *BinMatcher) PostedDepth() int { return m.postedN }

// UnexpectedDepth implements Matcher.
func (m *BinMatcher) UnexpectedDepth() int { return m.unexpAll.n }

// Stats implements Matcher.
func (m *BinMatcher) Stats() Stats { return m.stats }

// ResetStats implements Matcher.
func (m *BinMatcher) ResetStats() { m.stats = Stats{} }

// BinOccupancy reports, for the posted-receive table, the number of empty
// bins and the maximum chain length — the §V-A occupancy statistics.
func (m *BinMatcher) BinOccupancy() (empty, maxChain int) {
	for i := range m.posted {
		n := m.posted[i].n
		if n == 0 {
			empty++
		}
		if n > maxChain {
			maxChain = n
		}
	}
	return empty, maxChain
}

var _ Matcher = (*BinMatcher)(nil)
