package match

// ListMatcher is the traditional two-queue matching engine used by
// mainstream MPI implementations and by the paper as the on-CPU baseline
// (Fig. 8 "MPI-CPU"): a posted-receives queue (PRQ) and an unexpected-
// messages queue (UMQ), both plain linked lists scanned from the head.
// Appending at the tail and scanning from the head satisfies both MPI
// ordering constraints at the cost of O(n) searches.
//
// ListMatcher is not safe for concurrent use; drive it from one goroutine
// (which is exactly the serialization the paper sets out to remove).
type ListMatcher struct {
	prq       recvList
	umq       envList
	nextLabel uint64
	nextSeq   uint64
	stats     Stats
}

// NewListMatcher returns an empty traditional matcher.
func NewListMatcher() *ListMatcher {
	return &ListMatcher{}
}

// recvNode is a PRQ entry.
type recvNode struct {
	recv *Recv
	next *recvNode
}

// recvList is a singly linked queue with O(1) append.
type recvList struct {
	head, tail *recvNode
	n          int
}

func (l *recvList) push(r *Recv) {
	n := &recvNode{recv: r}
	if l.tail == nil {
		l.head = n
	} else {
		l.tail.next = n
	}
	l.tail = n
	l.n++
}

// removeAfter unlinks the node following prev (or the head when prev is nil).
func (l *recvList) removeAfter(prev, node *recvNode) {
	if prev == nil {
		l.head = node.next
	} else {
		prev.next = node.next
	}
	if l.tail == node {
		l.tail = prev
	}
	l.n--
}

// envNode is a UMQ entry.
type envNode struct {
	env  *Envelope
	next *envNode
}

// envList is a singly linked queue with O(1) append.
type envList struct {
	head, tail *envNode
	n          int
}

func (l *envList) push(e *Envelope) {
	n := &envNode{env: e}
	if l.tail == nil {
		l.head = n
	} else {
		l.tail.next = n
	}
	l.tail = n
	l.n++
}

func (l *envList) removeAfter(prev, node *envNode) {
	if prev == nil {
		l.head = node.next
	} else {
		prev.next = node.next
	}
	if l.tail == node {
		l.tail = prev
	}
	l.n--
}

// PostRecv implements Matcher. The UMQ is scanned from the head so the
// oldest matching unexpected message wins (C2).
func (m *ListMatcher) PostRecv(r *Recv) (*Envelope, bool) {
	r.Label = m.nextLabel
	m.nextLabel++

	var depth uint64
	var prev *envNode
	for n := m.umq.head; n != nil; prev, n = n, n.next {
		if r.Matches(n.env) {
			m.umq.removeAfter(prev, n)
			m.stats.recordPost(depth)
			m.stats.Matched++
			return n.env, true
		}
		depth++
	}
	m.stats.recordPost(depth)
	m.stats.Queued++
	m.prq.push(r)
	return nil, false
}

// Arrive implements Matcher. The PRQ is scanned from the head so the oldest
// matching posted receive wins (C1).
func (m *ListMatcher) Arrive(e *Envelope) (*Recv, bool) {
	if e.Seq == 0 {
		m.nextSeq++
		e.Seq = m.nextSeq
	}

	var depth uint64
	var prev *recvNode
	for n := m.prq.head; n != nil; prev, n = n, n.next {
		if n.recv.Matches(e) {
			m.prq.removeAfter(prev, n)
			m.stats.recordArrive(depth)
			m.stats.Matched++
			return n.recv, true
		}
		depth++
	}
	m.stats.recordArrive(depth)
	m.stats.Unexpected++
	m.umq.push(e)
	return nil, false
}

// PeekUnexpected reports whether a stored unexpected message matches r
// without consuming it (the MPI_Probe primitive).
func (m *ListMatcher) PeekUnexpected(r *Recv) (*Envelope, bool) {
	for n := m.umq.head; n != nil; n = n.next {
		if r.Matches(n.env) {
			return n.env, true
		}
	}
	return nil, false
}

// PostedDepth implements Matcher.
func (m *ListMatcher) PostedDepth() int { return m.prq.n }

// UnexpectedDepth implements Matcher.
func (m *ListMatcher) UnexpectedDepth() int { return m.umq.n }

// Stats implements Matcher.
func (m *ListMatcher) Stats() Stats { return m.stats }

// ResetStats implements Matcher.
func (m *ListMatcher) ResetStats() { m.stats = Stats{} }

var _ Matcher = (*ListMatcher)(nil)
