package match_test

import (
	"math/rand"
	"testing"

	"repro/internal/match"
	"repro/internal/match/matchtest"
)

// TestAllBaselinesMatchGoldenModel runs the golden-model equivalence over
// every Table I baseline implementation: rank-based (Dózsa), bin-based
// (Flajslik), and adaptive (Bayatpour). MPI matching is deterministic, so
// all of them must produce identical pairings.
func TestAllBaselinesMatchGoldenModel(t *testing.T) {
	engines := map[string]func() match.Matcher{
		"rank":     func() match.Matcher { return match.NewRankMatcher() },
		"bin-16":   func() match.Matcher { return match.NewBinMatcher(16) },
		"adaptive": func() match.Matcher { return match.NewAdaptiveMatcher(match.AdaptiveConfig{}) },
		"adaptive-trig": func() match.Matcher {
			return match.NewAdaptiveMatcher(match.AdaptiveConfig{Window: 8, Threshold: 0.5, Bins: 8})
		},
	}
	cfgs := []matchtest.Config{
		matchtest.DefaultConfig(),
		{Sources: 2, Tags: 2, Comms: 1, PSrcWild: 0.5, PTagWild: 0.5},
		{Sources: 16, Tags: 1, Comms: 1, Burstiness: 4}, // per-rank partitions shine
		{Sources: 1, Tags: 16, Comms: 1},                // per-rank partitions degenerate
		{Sources: 4, Tags: 4, Comms: 2, PPost: 0.3},     // arrival heavy: unexpected store
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			for ci, cfg := range cfgs {
				rng := rand.New(rand.NewSource(int64(7*ci + 1)))
				for iter := 0; iter < 15; iter++ {
					ops := matchtest.Generate(rng, 400, cfg)
					gold, gp, gu := matchtest.Run(match.NewListMatcher(), ops)
					got, bp, bu := matchtest.Run(mk(), ops)
					if diff := matchtest.DiffPairings(gold, got); diff != "" {
						t.Fatalf("cfg %d iter %d: %s", ci, iter, diff)
					}
					if gp != bp || gu != bu {
						t.Fatalf("cfg %d iter %d: depths golden (%d,%d) engine (%d,%d)",
							ci, iter, gp, gu, bp, bu)
					}
				}
			}
		})
	}
}

func TestRankMatcherPartitionDepth(t *testing.T) {
	// Many senders, one tag: the rank partitions keep searches near zero
	// where the list walks everything.
	lm := match.NewListMatcher()
	rm := match.NewRankMatcher()
	const senders = 32
	for _, m := range []match.Matcher{lm, rm} {
		for s := 0; s < senders; s++ {
			m.PostRecv(&match.Recv{Source: match.Rank(s), Tag: 1})
		}
		for s := senders - 1; s >= 0; s-- {
			if _, ok := m.Arrive(&match.Envelope{Source: match.Rank(s), Tag: 1}); !ok {
				t.Fatal("miss")
			}
		}
	}
	if rm.Stats().ArriveTraversed >= lm.Stats().ArriveTraversed/4 {
		t.Fatalf("rank partitions did not help: rank %d vs list %d",
			rm.Stats().ArriveTraversed, lm.Stats().ArriveTraversed)
	}
	if rm.Stats().ArriveMaxDepth != 0 {
		t.Fatalf("distinct senders should never collide: max depth %d", rm.Stats().ArriveMaxDepth)
	}
}

func TestRankMatcherWildcardInterplay(t *testing.T) {
	m := match.NewRankMatcher()
	m.PostRecv(&match.Recv{Source: match.AnySource, Tag: 1}) // label 0
	m.PostRecv(&match.Recv{Source: 3, Tag: 1})               // label 1
	if r, ok := m.Arrive(&match.Envelope{Source: 3, Tag: 1}); !ok || r.Label != 0 {
		t.Fatalf("C1 across partition and wildcard list violated: %v", r)
	}
	if r, ok := m.Arrive(&match.Envelope{Source: 3, Tag: 1}); !ok || r.Label != 1 {
		t.Fatalf("partition entry lost: %v", r)
	}
	if m.PostedDepth() != 0 {
		t.Fatal("posted depth should be zero")
	}
}

func TestRankMatcherUnexpectedPerSender(t *testing.T) {
	m := match.NewRankMatcher()
	m.Arrive(&match.Envelope{Source: 1, Tag: 5, Seq: 1})
	m.Arrive(&match.Envelope{Source: 2, Tag: 5, Seq: 2})
	if m.UnexpectedDepth() != 2 {
		t.Fatalf("unexpected depth = %d", m.UnexpectedDepth())
	}
	// A specific receive takes only its sender's message…
	if env, ok := m.PostRecv(&match.Recv{Source: 2, Tag: 5}); !ok || env.Seq != 2 {
		t.Fatal("per-sender unexpected lookup failed")
	}
	// …and an AnySource receive sees global arrival order.
	if env, ok := m.PostRecv(&match.Recv{Source: match.AnySource, Tag: 5}); !ok || env.Seq != 1 {
		t.Fatal("wildcard unexpected lookup failed")
	}
	m.ResetStats()
	if m.Stats().Matched != 0 {
		t.Fatal("reset failed")
	}
}

func TestAdaptiveMigrationTrigger(t *testing.T) {
	m := match.NewAdaptiveMatcher(match.AdaptiveConfig{Window: 16, Threshold: 2, Bins: 32})
	if m.Migrated() {
		t.Fatal("fresh matcher already migrated")
	}
	// Deep single-bin misery: many distinct keys searched in reverse.
	const n = 64
	for i := 0; i < n; i++ {
		m.PostRecv(&match.Recv{Source: match.Rank(i % 8), Tag: match.Tag(i)})
	}
	for i := n - 1; i >= 0; i-- {
		if _, ok := m.Arrive(&match.Envelope{Source: match.Rank(i % 8), Tag: match.Tag(i)}); !ok {
			t.Fatal("miss")
		}
	}
	if !m.Migrated() {
		t.Fatalf("deep queues did not trigger migration: %+v", m.Stats())
	}
	// Post-migration behaviour stays correct.
	m.PostRecv(&match.Recv{Source: 1, Tag: 999})
	if _, ok := m.Arrive(&match.Envelope{Source: 1, Tag: 999}); !ok {
		t.Fatal("post-migration match failed")
	}
}

// TestAdaptiveWindowedMeanNotDiluted pins the windowed migration policy:
// a long shallow phase must not desensitize the trigger. Under the old
// cumulative-mean policy the shallow history dilutes the recent deep
// window below the threshold and migration never fires.
func TestAdaptiveWindowedMeanNotDiluted(t *testing.T) {
	m := match.NewAdaptiveMatcher(match.AdaptiveConfig{Window: 16, Threshold: 2, Bins: 32})
	// Phase 1: thousands of depth-0/1 searches.
	for i := 0; i < 4096; i++ {
		m.PostRecv(&match.Recv{Source: 1, Tag: 1})
		m.Arrive(&match.Envelope{Source: 1, Tag: 1})
	}
	if m.Migrated() {
		t.Fatal("shallow phase triggered migration")
	}
	// Phase 2: one window of deep searches. Windowed mean is ~32; the
	// cumulative mean stays ~0.5, far below the threshold.
	const deep = 64
	for i := 0; i < deep; i++ {
		m.PostRecv(&match.Recv{Source: match.Rank(i % 8), Tag: match.Tag(100 + i)})
	}
	for i := deep - 1; i >= 0; i-- {
		m.Arrive(&match.Envelope{Source: match.Rank(i % 8), Tag: match.Tag(100 + i)})
	}
	if !m.Migrated() {
		t.Fatalf("deep window diluted by shallow history: %+v", m.Stats())
	}
}

func TestAdaptiveStaysOnListWhenShallow(t *testing.T) {
	m := match.NewAdaptiveMatcher(match.AdaptiveConfig{Window: 8, Threshold: 4})
	// Perfectly shallow traffic: always match at the head.
	for i := 0; i < 200; i++ {
		m.PostRecv(&match.Recv{Source: 1, Tag: 1})
		m.Arrive(&match.Envelope{Source: 1, Tag: 1})
	}
	if m.Migrated() {
		t.Fatal("shallow traffic triggered migration")
	}
}

func TestAdaptiveMigrationPreservesState(t *testing.T) {
	m := match.NewAdaptiveMatcher(match.AdaptiveConfig{Window: 4, Threshold: 1, Bins: 16})
	// Leave state in both queues, then force deep searches to migrate.
	m.PostRecv(&match.Recv{Source: 7, Tag: 70}) // stays posted
	m.Arrive(&match.Envelope{Source: 8, Tag: 80, Seq: 900})
	for i := 0; i < 32; i++ {
		m.PostRecv(&match.Recv{Source: 1, Tag: match.Tag(i)})
	}
	for i := 31; i >= 0; i-- {
		m.Arrive(&match.Envelope{Source: 1, Tag: match.Tag(i)})
	}
	if !m.Migrated() {
		t.Fatal("migration did not trigger")
	}
	// Pre-migration state must have survived the move.
	if r, ok := m.Arrive(&match.Envelope{Source: 7, Tag: 70}); !ok || r.Source != 7 {
		t.Fatal("posted receive lost in migration")
	}
	if env, ok := m.PostRecv(&match.Recv{Source: 8, Tag: 80}); !ok || env.Seq != 900 {
		t.Fatal("unexpected message lost in migration")
	}
	if m.PostedDepth() != 0 || m.UnexpectedDepth() != 0 {
		t.Fatalf("leftover state: posted=%d unexpected=%d", m.PostedDepth(), m.UnexpectedDepth())
	}
}

func TestAdaptiveStatsAccumulateAcrossMigration(t *testing.T) {
	m := match.NewAdaptiveMatcher(match.AdaptiveConfig{Window: 4, Threshold: 1, Bins: 8})
	for i := 0; i < 16; i++ {
		m.PostRecv(&match.Recv{Source: 1, Tag: match.Tag(i)})
	}
	for i := 15; i >= 0; i-- {
		m.Arrive(&match.Envelope{Source: 1, Tag: match.Tag(i)})
	}
	st := m.Stats()
	if st.Matched != 16 {
		t.Fatalf("matched = %d across migration, want 16", st.Matched)
	}
	if st.ArriveSearches != 16 {
		t.Fatalf("searches = %d, want 16 (replay must not double count)", st.ArriveSearches)
	}
}

func TestAdaptiveResetStats(t *testing.T) {
	m := match.NewAdaptiveMatcher(match.AdaptiveConfig{})
	m.PostRecv(&match.Recv{Source: 1, Tag: 1})
	m.Arrive(&match.Envelope{Source: 1, Tag: 1})
	if m.Stats().Matched != 1 {
		t.Fatal("no match recorded")
	}
	m.ResetStats()
	if m.Stats().Matched != 0 {
		t.Fatal("reset failed")
	}
}
