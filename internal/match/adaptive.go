package match

// AdaptiveMatcher is the dynamic baseline of the paper's Table I (Bayatpour
// et al., "Adaptive and dynamic design for MPI tag matching", CLUSTER
// 2016): it starts on the traditional linked-list algorithm and, when the
// observed search depth over a sampling window exceeds a threshold,
// migrates all state into a binned matcher. MPI semantics are preserved
// across the migration: entries are re-posted/re-delivered in their
// original label and arrival order, so the pairing outcome is identical to
// having used either structure from the start.
//
// AdaptiveMatcher is not safe for concurrent use.
type AdaptiveMatcher struct {
	active Matcher

	bins      int
	window    uint64
	threshold float64
	migrated  bool

	// label/seq continuity across migration
	carry Stats

	// Snapshot of the cumulative counters at the previous policy check,
	// so each check evaluates the mean depth of the last window only.
	lastSearches  uint64
	lastTraversed uint64
}

// AdaptiveConfig tunes the migration policy.
type AdaptiveConfig struct {
	// Bins is the bin count adopted after migration (default 64).
	Bins int
	// Window is the number of searches between policy checks (default 64).
	Window uint64
	// Threshold is the mean search depth that triggers migration
	// (default 4.0).
	Threshold float64
}

// NewAdaptiveMatcher returns a matcher on the traditional algorithm, ready
// to migrate to bins when queues grow deep.
func NewAdaptiveMatcher(cfg AdaptiveConfig) *AdaptiveMatcher {
	if cfg.Bins <= 0 {
		cfg.Bins = 64
	}
	if cfg.Window == 0 {
		cfg.Window = 64
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 4.0
	}
	return &AdaptiveMatcher{
		active:    NewListMatcher(),
		bins:      cfg.Bins,
		window:    cfg.Window,
		threshold: cfg.Threshold,
	}
}

// Migrated reports whether the matcher has switched to the binned design.
func (m *AdaptiveMatcher) Migrated() bool { return m.migrated }

// maybeMigrate checks the policy after each operation. The decision uses
// the mean search depth over the last sampling window only — the delta of
// (traversed, searches) since the previous check — matching Bayatpour's
// design: the cumulative mean would dilute recent congestion with the
// entire shallow history, making migration ever less sensitive over time.
func (m *AdaptiveMatcher) maybeMigrate() {
	if m.migrated {
		return
	}
	st := m.active.Stats()
	searches := st.ArriveSearches + st.PostSearches
	if searches < m.lastSearches+m.window {
		return
	}
	traversed := st.ArriveTraversed + st.PostTraversed
	dSearches := searches - m.lastSearches
	dTraversed := traversed - m.lastTraversed
	m.lastSearches = searches
	m.lastTraversed = traversed
	if float64(dTraversed)/float64(dSearches) < m.threshold {
		return
	}
	m.migrate()
}

// migrate rebuilds the current state inside a binned matcher. The list
// matcher's internal order is recovered through its public behaviour:
// draining all posted receives (oldest first, via matching probes) and all
// unexpected messages (arrival order, via wildcard posts) would consume
// them, so instead the migration relies on the snapshot accessors below.
func (m *AdaptiveMatcher) migrate() {
	lm := m.active.(*ListMatcher)
	bm := NewBinMatcher(m.bins)

	// Replay posted receives in posting order, restoring each receive's
	// original label afterwards: chain order inside the new structure comes
	// from insertion order, while cross-structure C1 comparisons keep using
	// the original monotonic labels.
	for n := lm.prq.head; n != nil; n = n.next {
		label := n.recv.Label
		bm.PostRecv(n.recv)
		n.recv.Label = label
	}
	bm.nextLabel = lm.nextLabel // future posts continue the label sequence
	bm.nextSeq = lm.nextSeq     // and future arrivals the sequence numbers
	// Replay unexpected messages in arrival order, keeping their sequence
	// numbers (C2 depends on relative order only).
	for n := lm.umq.head; n != nil; n = n.next {
		bm.Arrive(n.env)
	}
	// Carry accumulated statistics so depth reporting stays cumulative.
	m.carry = m.carry.Add(lm.Stats())
	bm.ResetStats()
	m.active = bm
	m.migrated = true
}

// PostRecv implements Matcher.
func (m *AdaptiveMatcher) PostRecv(r *Recv) (*Envelope, bool) {
	env, ok := m.active.PostRecv(r)
	m.maybeMigrate()
	return env, ok
}

// Arrive implements Matcher.
func (m *AdaptiveMatcher) Arrive(e *Envelope) (*Recv, bool) {
	r, ok := m.active.Arrive(e)
	m.maybeMigrate()
	return r, ok
}

// PostedDepth implements Matcher.
func (m *AdaptiveMatcher) PostedDepth() int { return m.active.PostedDepth() }

// UnexpectedDepth implements Matcher.
func (m *AdaptiveMatcher) UnexpectedDepth() int { return m.active.UnexpectedDepth() }

// Stats implements Matcher, accumulating across migrations.
func (m *AdaptiveMatcher) Stats() Stats { return m.carry.Add(m.active.Stats()) }

// ResetStats implements Matcher.
func (m *AdaptiveMatcher) ResetStats() {
	m.carry = Stats{}
	m.active.ResetStats()
}

var _ Matcher = (*AdaptiveMatcher)(nil)
