package match

import (
	"testing"
	"testing/quick"
)

func TestRecvClass(t *testing.T) {
	cases := []struct {
		src  Rank
		tag  Tag
		want WildcardClass
	}{
		{3, 7, ClassNone},
		{AnySource, 7, ClassSrcWild},
		{3, AnyTag, ClassTagWild},
		{AnySource, AnyTag, ClassBothWild},
		{0, 0, ClassNone},
	}
	for _, c := range cases {
		r := &Recv{Source: c.src, Tag: c.tag}
		if got := r.Class(); got != c.want {
			t.Errorf("Recv{src=%d tag=%d}.Class() = %v, want %v", c.src, c.tag, got, c.want)
		}
	}
}

func TestWildcardClassString(t *testing.T) {
	names := map[WildcardClass]string{
		ClassNone:     "none",
		ClassSrcWild:  "src-wild",
		ClassTagWild:  "tag-wild",
		ClassBothWild: "both-wild",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := WildcardClass(9).String(); got != "WildcardClass(9)" {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestMatchesRules(t *testing.T) {
	e := &Envelope{Source: 5, Tag: 11, Comm: 2}
	cases := []struct {
		r    Recv
		want bool
	}{
		{Recv{Source: 5, Tag: 11, Comm: 2}, true},
		{Recv{Source: AnySource, Tag: 11, Comm: 2}, true},
		{Recv{Source: 5, Tag: AnyTag, Comm: 2}, true},
		{Recv{Source: AnySource, Tag: AnyTag, Comm: 2}, true},
		{Recv{Source: 4, Tag: 11, Comm: 2}, false},
		{Recv{Source: 5, Tag: 10, Comm: 2}, false},
		{Recv{Source: 5, Tag: 11, Comm: 3}, false},
		{Recv{Source: AnySource, Tag: AnyTag, Comm: 3}, false},
	}
	for i, c := range cases {
		if got := c.r.Matches(e); got != c.want {
			t.Errorf("case %d: %v.Matches(%v) = %v, want %v", i, &c.r, e, got, c.want)
		}
	}
}

func TestEnvelopeString(t *testing.T) {
	e := &Envelope{Source: 1, Tag: 2, Comm: 3, Seq: 4, Size: 5}
	want := "msg{src=1 tag=2 comm=3 seq=4 size=5}"
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	r := &Recv{Source: 1, Tag: 2, Comm: 3, Label: 4}
	wantR := "recv{src=1 tag=2 comm=3 label=4}"
	if got := r.String(); got != wantR {
		t.Errorf("String() = %q, want %q", got, wantR)
	}
}

func TestHashesDifferByRole(t *testing.T) {
	// The three hash families must not alias each other for equal inputs,
	// otherwise a src-wild lookup could hit a tag-wild bucket.
	src, tag, comm := Rank(7), Tag(7), CommID(0)
	hst := HashSrcTag(src, tag, comm)
	ht := HashTag(tag, comm)
	hs := HashSrc(src, comm)
	if hst == ht || hst == hs || ht == hs {
		t.Errorf("hash families alias: srcTag=%x tag=%x src=%x", hst, ht, hs)
	}
}

func TestHashDeterminism(t *testing.T) {
	f := func(src int32, tag int32, comm int32) bool {
		a := HashSrcTag(Rank(src), Tag(tag), CommID(comm))
		b := HashSrcTag(Rank(src), Tag(tag), CommID(comm))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSpread(t *testing.T) {
	// Consecutive tags from one source must spread over bins: this is the
	// assumption behind the paper's Figure 7 queue-depth collapse.
	const bins = 32
	counts := make([]int, bins)
	for tag := Tag(0); tag < 512; tag++ {
		counts[HashSrcTag(3, tag, 0)%bins]++
	}
	// Perfect spread would be 16 per bin; reject pathological clustering.
	for i, c := range counts {
		if c > 40 {
			t.Errorf("bin %d has %d of 512 consecutive tags (poor spread)", i, c)
		}
	}
}

func TestComputeInlineHashes(t *testing.T) {
	e := &Envelope{Source: 9, Tag: 42, Comm: 1}
	h := ComputeInlineHashes(e)
	if h.SrcTag != HashSrcTag(9, 42, 1) {
		t.Error("SrcTag mismatch")
	}
	if h.Tag != HashTag(42, 1) {
		t.Error("Tag mismatch")
	}
	if h.Src != HashSrc(9, 1) {
		t.Error("Src mismatch")
	}
}

func TestStatsAccumulation(t *testing.T) {
	var s Stats
	s.recordArrive(3)
	s.recordArrive(5)
	s.recordPost(2)
	if s.ArriveSearches != 2 || s.ArriveTraversed != 8 || s.ArriveMaxDepth != 5 {
		t.Errorf("arrive stats wrong: %+v", s)
	}
	if s.PostSearches != 1 || s.PostTraversed != 2 || s.PostMaxDepth != 2 {
		t.Errorf("post stats wrong: %+v", s)
	}
	if got := s.AvgArriveDepth(); got != 4.0 {
		t.Errorf("AvgArriveDepth = %v, want 4", got)
	}
	if got := s.AvgPostDepth(); got != 2.0 {
		t.Errorf("AvgPostDepth = %v, want 2", got)
	}
	if got := s.AvgDepth(); got != 10.0/3.0 {
		t.Errorf("AvgDepth = %v, want %v", got, 10.0/3.0)
	}
	if got := s.MaxDepth(); got != 5 {
		t.Errorf("MaxDepth = %v, want 5", got)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.AvgArriveDepth() != 0 || s.AvgPostDepth() != 0 || s.AvgDepth() != 0 {
		t.Error("empty stats must average to zero")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{ArriveSearches: 1, ArriveTraversed: 4, ArriveMaxDepth: 4, Matched: 1}
	b := Stats{ArriveSearches: 2, ArriveTraversed: 2, ArriveMaxDepth: 2, Unexpected: 1,
		PostSearches: 1, PostTraversed: 7, PostMaxDepth: 7, Queued: 3}
	c := a.Add(b)
	if c.ArriveSearches != 3 || c.ArriveTraversed != 6 || c.ArriveMaxDepth != 4 {
		t.Errorf("Add arrive wrong: %+v", c)
	}
	if c.PostSearches != 1 || c.PostMaxDepth != 7 {
		t.Errorf("Add post wrong: %+v", c)
	}
	if c.Matched != 1 || c.Unexpected != 1 || c.Queued != 3 {
		t.Errorf("Add counters wrong: %+v", c)
	}
}
