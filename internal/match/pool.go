package match

import "sync"

// EnvelopePool recycles Envelopes across arrival cycles so the steady-state
// arrival path performs no heap allocation per message. Each pooled
// envelope owns a backing InlineHashes value (filled via SetInline and
// reused across cycles), so decoding a wire header into a pooled envelope
// allocates nothing either.
//
// Ownership protocol: Get hands out a zeroed envelope; the caller fills it,
// matches it, and must Put it back exactly once — after the match has been
// delivered (matched path) or after the unexpected store has released it
// (unexpected path). An envelope must not be referenced after Put.
//
// The zero value is ready to use.
type EnvelopePool struct {
	p sync.Pool
}

// Get returns a zeroed envelope. Its Inline field is nil until the caller
// installs hashes with SetInline.
func (ep *EnvelopePool) Get() *Envelope {
	if e, ok := ep.p.Get().(*Envelope); ok {
		return e
	}
	return new(Envelope)
}

// Put resets e (keeping its Inline backing) and returns it to the pool.
// Putting nil is a no-op.
func (ep *EnvelopePool) Put(e *Envelope) {
	if e == nil {
		return
	}
	e.Reset()
	ep.p.Put(e)
}
