package obs

import (
	"math/bits"
	"sync/atomic"
)

// Hist identifies one fixed-bucket histogram in a Sink.
type Hist uint8

const (
	// HistBlockNs is the block lifecycle latency (launch → retire) in
	// nanoseconds.
	HistBlockNs Hist = iota
	// HistDrainBatch is the CQ drain batch size in completions.
	HistDrainBatch
	// HistRetxBackoffNs is the reliability retransmit backoff in
	// nanoseconds at the time of each re-send.
	HistRetxBackoffNs
	// HistPostDepth is the PostRecv search depth in entries examined.
	HistPostDepth
	// HistCoalesceWidth is the sub-message count of each flushed eager
	// batch frame (Count = frames sent, Sum = messages coalesced, so
	// Mean() is the achieved batch width).
	HistCoalesceWidth

	// NumHists bounds the enum; it must stay last.
	NumHists
)

// histNames maps Hist values to stable snapshot keys.
var histNames = [NumHists]string{
	HistBlockNs:       "block_ns",
	HistDrainBatch:    "drain_batch",
	HistRetxBackoffNs: "retx_backoff_ns",
	HistPostDepth:     "post_depth",
	HistCoalesceWidth: "coalesce_width",
}

// String returns the histogram's stable snapshot key.
func (h Hist) String() string {
	if h < NumHists {
		return histNames[h]
	}
	return "unknown"
}

// HistBuckets is the fixed bucket count: power-of-two buckets 2^0 … 2^30,
// with the last bucket absorbing everything larger (> ~1.07e9, i.e. more
// than a second when the unit is nanoseconds).
const HistBuckets = 32

// Histogram is a fixed-bucket log2 histogram. Bucket i counts values v
// with bits.Len64(v) == i (so bucket 0 is v==0, bucket 1 is v==1, bucket
// 2 is 2..3, and so on); values past the last bucket land in it. The zero
// value is ready to use; Observe is one atomic add.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	// Count and Sum give the sample count and total (Mean = Sum/Count).
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// Buckets[i] counts samples with bits.Len64(v)==i; trailing zero
	// buckets are trimmed.
	Buckets []uint64 `json:"buckets"`
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	out := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	last := -1
	var b [HistBuckets]uint64
	for i := range b {
		b[i] = h.buckets[i].Load()
		if b[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		out.Buckets = append([]uint64(nil), b[:last+1]...)
	}
	return out
}

// Mean returns the mean observed value (0 with no samples).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
