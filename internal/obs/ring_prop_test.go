package obs

import (
	"sync"
	"testing"
	"testing/quick"
)

// splitmix64 is a tiny deterministic PRNG step so the property inputs are
// reproducible from quick's seed values alone.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// payloadC is the checksum relation every recorded event must satisfy: a
// torn read (payload words from two different records) breaks it with
// overwhelming probability.
func payloadC(a, b uint64) uint64 {
	return splitmix64(a ^ splitmix64(b) ^ 0xdeadbeefcafef00d)
}

// TestRingNoTornEventsQuick is the ISSUE's property test: under concurrent
// writers overwriting a deliberately tiny ring, a concurrent snapshot may
// observe any subset of the records — but never a torn one. Each writer
// stamps events whose C word is a checksum of A and B; the readers verify
// the relation on every event they see. Run with -race.
func TestRingNoTornEventsQuick(t *testing.T) {
	check := func(seed uint64, writerSel, sizeSel uint8) bool {
		writers := 2 + int(writerSel%6) // 2..7 concurrent writers
		ringSize := 8 << (sizeSel % 3)  // 8, 16, or 32 slots: wrap constantly
		const perWriter = 400

		s := New(Options{TraceEvents: ringSize, Rings: 2})
		var wg sync.WaitGroup
		tear := make(chan Event, 1)

		// Readers snapshot continuously while writers race.
		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					for _, e := range s.Events() {
						if e.C != payloadC(e.A, e.B) {
							select {
							case tear <- e:
							default:
							}
						}
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
		}

		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				x := splitmix64(seed + uint64(w))
				for i := 0; i < perWriter; i++ {
					x = splitmix64(x)
					a := x
					b := splitmix64(x ^ uint64(i))
					s.Event(Kind(uint64(i)%uint64(NumKinds)), w, a, b, payloadC(a, b))
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		readers.Wait()

		// One final quiescent sweep.
		for _, e := range s.Events() {
			if e.C != payloadC(e.A, e.B) {
				select {
				case tear <- e:
				default:
				}
			}
		}
		select {
		case e := <-tear:
			t.Logf("torn event: %+v (want C=%#x)", e, payloadC(e.A, e.B))
			return false
		default:
		}

		// Accounting sanity: everything sent was either kept or counted as
		// dropped, and the rings never hold more than their capacity.
		rec, _ := s.Recorded()
		if rec != uint64(writers*perWriter) {
			t.Logf("recorded %d, want %d", rec, writers*perWriter)
			return false
		}
		if n := len(s.Events()); n > 2*ringSizeRounded(ringSize) {
			t.Logf("%d live events exceed ring capacity", n)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// ringSizeRounded mirrors New's round-up-to-power-of-two capacity rule.
func ringSizeRounded(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}
