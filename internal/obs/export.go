package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON writes the named sinks' counter/histogram snapshots as one
// structured JSON document: {"sinks":[{name, counters, histograms, ...}]}.
func WriteJSON(w io.Writer, sinks []Named) error {
	doc := struct {
		Sinks []Snapshot `json:"sinks"`
	}{}
	for _, ns := range sinks {
		snap := ns.Sink.Snapshot()
		snap.Name = ns.Name
		doc.Sinks = append(doc.Sinks, snap)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// traceEvent is one Chrome trace_event record. The format is documented in
// the Trace Event Format spec; chrome://tracing and Perfetto load a JSON
// object carrying a traceEvents array of these.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// kindCat maps event kinds to Chrome trace categories.
func kindCat(k Kind) string {
	switch k {
	case EvBlockLaunch, EvBlockBarrierExit, EvBlockSteal, EvBlockSettle,
		EvBlockRetire, EvMatchFast, EvMatchSlow, EvUnexpectedPub, EvPostMatch:
		return "match"
	case EvCQDrain:
		return "cq"
	case EvFaultInject, EvFaultRepair, EvRetransmit, EvAck:
		return "fault"
	case EvAnalyzerShard, EvAnalyzerPhase:
		return "analyzer"
	case EvCoalesceFlush:
		return "coalesce"
	}
	return "obs"
}

// WriteTrace writes the named sinks' event rings as Chrome trace_event
// JSON. Each sink becomes one pid (with a process_name metadata record);
// each worker lane becomes a tid. Block lifecycles (EvBlockLaunch paired
// with EvBlockRetire on the same block sequence) render as complete "X"
// spans; every other record renders as a thread-scoped instant.
func WriteTrace(w io.Writer, sinks []Named) error {
	var evs []traceEvent
	for pid, ns := range sinks {
		evs = append(evs, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": ns.Name},
		})
		events := ns.Sink.Events()

		// Pair launches with retires by block sequence to synthesize spans.
		launches := make(map[uint64]Event)
		for _, e := range events {
			if e.Kind == EvBlockLaunch {
				launches[e.A] = e
			}
		}
		for _, e := range events {
			ts := float64(e.Nano) / 1e3
			switch e.Kind {
			case EvBlockLaunch:
				// Rendered by its retire (or dropped if the retire was
				// overwritten — a partial span would mislead more than a gap).
				continue
			case EvBlockRetire:
				if l, ok := launches[e.A]; ok {
					evs = append(evs, traceEvent{
						Name: fmt.Sprintf("block %d", e.A), Cat: "match", Ph: "X",
						Ts: float64(l.Nano) / 1e3, Dur: float64(e.Nano-l.Nano) / 1e3,
						Pid: pid, Tid: int(l.Worker),
						Args: map[string]any{"messages": e.B, "block_ns": e.C},
					})
					continue
				}
				fallthrough
			default:
				evs = append(evs, traceEvent{
					Name: e.Kind.String(), Cat: kindCat(e.Kind), Ph: "i",
					Ts: ts, Pid: pid, Tid: int(e.Worker), S: "t",
					Args: map[string]any{"a": e.A, "b": e.B, "c": e.C, "seq": e.Seq},
				})
			}
		}
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteTraceFile writes a Chrome trace to path (see WriteTrace).
func WriteTraceFile(path string, sinks []Named) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, sinks); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteJSONFile writes a stats snapshot to path (see WriteJSON).
func WriteJSONFile(path string, sinks []Named) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, sinks); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
