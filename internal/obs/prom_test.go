package obs

import (
	"strings"
	"testing"
)

// TestWritePromCounters pins the counter rendering: one TYPE header per
// family, `_total` samples per labeled group summed across the group's
// sinks, zero-valued families omitted, and deterministic order.
func TestWritePromCounters(t *testing.T) {
	a1, a2, b := New(Options{}), New(Options{}), New(Options{})
	a1.CounterAdd(CtrMatched, 3)
	a2.CounterAdd(CtrMatched, 4)
	b.CounterAdd(CtrMatched, 10)
	b.CounterAdd(CtrUnexpected, 2)

	var sb strings.Builder
	err := WriteProm(&sb, "matchd", []LabeledSinks{
		{Labels: []Label{{"tenant", "alpha"}}, Sinks: []*Sink{a1, a2, nil}},
		{Labels: []Label{{"tenant", "beta"}}, Sinks: []*Sink{b}},
	})
	if err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()

	wantLines := []string{
		"# TYPE matchd_matched counter",
		`matchd_matched_total{tenant="alpha"} 7`,
		`matchd_matched_total{tenant="beta"} 10`,
		"# TYPE matchd_unexpected counter",
		`matchd_unexpected_total{tenant="beta"} 2`,
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Errorf("output missing line %q\ngot:\n%s", l, out)
		}
	}
	// Alpha never recorded unexpected: no sample for it.
	if strings.Contains(out, `matchd_unexpected_total{tenant="alpha"}`) {
		t.Errorf("zero-valued sample emitted for alpha:\n%s", out)
	}
	// Families with no nonzero sample anywhere must be absent entirely.
	if strings.Contains(out, "matchd_posted") {
		t.Errorf("all-zero family matchd_posted emitted:\n%s", out)
	}
	// Determinism: two renders byte-identical.
	var sb2 strings.Builder
	if err := WriteProm(&sb2, "matchd", []LabeledSinks{
		{Labels: []Label{{"tenant", "alpha"}}, Sinks: []*Sink{a1, a2, nil}},
		{Labels: []Label{{"tenant", "beta"}}, Sinks: []*Sink{b}},
	}); err != nil {
		t.Fatalf("WriteProm (second render): %v", err)
	}
	if sb2.String() != out {
		t.Errorf("renders differ:\n%s\nvs\n%s", out, sb2.String())
	}
}

// TestWritePromHistogram pins the log2 → le bucket expansion: bucket i
// counts values with bits.Len64(v)==i, so its inclusive upper bound is
// 2^i-1; buckets must cumulate and close with +Inf == count.
func TestWritePromHistogram(t *testing.T) {
	s := New(Options{})
	s.Observe(HistDrainBatch, 0) // bucket 0 (le="0")
	s.Observe(HistDrainBatch, 1) // bucket 1 (le="1")
	s.Observe(HistDrainBatch, 2) // bucket 2 (le="3")
	s.Observe(HistDrainBatch, 3) // bucket 2
	s.Observe(HistDrainBatch, 7) // bucket 3 (le="7")

	var sb strings.Builder
	if err := WriteProm(&sb, "d", []LabeledSinks{{Sinks: []*Sink{s}}}); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	wantLines := []string{
		"# TYPE d_drain_batch histogram",
		`d_drain_batch_bucket{le="0"} 1`,
		`d_drain_batch_bucket{le="1"} 2`,
		`d_drain_batch_bucket{le="3"} 4`,
		`d_drain_batch_bucket{le="7"} 5`,
		`d_drain_batch_bucket{le="+Inf"} 5`,
		"d_drain_batch_sum 13",
		"d_drain_batch_count 5",
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Errorf("output missing line %q\ngot:\n%s", l, out)
		}
	}
}

// TestWritePromLabelEscaping pins the exposition-format escapes for label
// values: backslash, double quote, and newline.
func TestWritePromLabelEscaping(t *testing.T) {
	s := New(Options{})
	s.CounterInc(CtrMatched)
	var sb strings.Builder
	err := WriteProm(&sb, "d", []LabeledSinks{
		{Labels: []Label{{"job", "a\\b\"c\nd"}}, Sinks: []*Sink{s}},
	})
	if err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	want := `d_matched_total{job="a\\b\"c\nd"} 1`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Errorf("escaped sample missing: want %q in\n%s", want, sb.String())
	}
}

// TestWriteGauge pins the gauge family rendering with sorted label keys.
func TestWriteGauge(t *testing.T) {
	var sb strings.Builder
	err := WriteGauge(&sb, "d_tenants_active", map[string]float64{
		"beta": 2, "alpha": 1.5,
	}, "tenant")
	if err != nil {
		t.Fatalf("WriteGauge: %v", err)
	}
	want := "# TYPE d_tenants_active gauge\n" +
		`d_tenants_active{tenant="alpha"} 1.5` + "\n" +
		`d_tenants_active{tenant="beta"} 2` + "\n"
	if sb.String() != want {
		t.Errorf("gauge output:\n%s\nwant:\n%s", sb.String(), want)
	}
}
