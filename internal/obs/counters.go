package obs

import "sync/atomic"

// Counter identifies one well-known counter in a CounterSet. Counters are
// enum-indexed into a flat atomic array so the recording path is a single
// indexed atomic add — no map lookup, no allocation, no lock.
//
// The set spans every layer of the stack: the optimistic matcher's engine
// and search-depth statistics (formerly core's private engineCounters and
// depthCounters), the reliability sublayer's repair tallies (formerly
// mpi.ReliabilityStats), the fabric's fault-injection tallies (formerly
// rdma.FaultStats), and the CQ-drain accounting of the arrival datapaths.
// Components share one CounterSet per observability domain (one per rank in
// an mpi.World, one per fabric) and write disjoint index ranges.
type Counter uint8

// Matching-engine counters (internal/core).
const (
	// CtrBlocks counts arrival blocks begun.
	CtrBlocks Counter = iota
	// CtrMessages counts messages entering arrival blocks.
	CtrMessages
	// CtrOptimistic counts messages finalized without conflict.
	CtrOptimistic
	// CtrConflicts counts messages that lost their booking (the paper's
	// "collisions").
	CtrConflicts
	// CtrFastPath counts conflicts resolved on the fast path (§III-D3a).
	CtrFastPath
	// CtrSlowPath counts conflicts resolved on the slow path (§III-D3b).
	CtrSlowPath
	// CtrUnexpected counts messages stored as unexpected.
	CtrUnexpected
	// CtrRelaxed counts messages matched under allow_overtaking hints.
	CtrRelaxed
	// CtrTableFull counts posts rejected with core.ErrTableFull.
	CtrTableFull
	// CtrLazySweeps counts lazy-removal chain sweeps.
	CtrLazySweeps
	// CtrLazyReaped counts consumed entries unlinked by sweeps.
	CtrLazyReaped
	// CtrRevalidated counts retirement-time redos (cross-block steals,
	// raced posts).
	CtrRevalidated
	// CtrSteals counts descriptors taken back from a higher-sequence block
	// through the ownership steal protocol (DESIGN.md §9).
	CtrSteals
	// CtrRetires counts arrival blocks retired (always equals CtrBlocks
	// once the engine quiesces).
	CtrRetires

	// Search-depth counters (the match.Stats quantities, Figure 7).

	// CtrPostSearches counts PostRecv searches of the unexpected store.
	CtrPostSearches
	// CtrPostTraversed totals unexpected entries examined across posts.
	CtrPostTraversed
	// CtrPostMaxDepth is the deepest single PostRecv search (max-merged).
	CtrPostMaxDepth
	// CtrArriveSearches counts arrival searches of the posted indexes.
	CtrArriveSearches
	// CtrArriveTraversed totals posted entries examined across arrivals.
	CtrArriveTraversed
	// CtrArriveMaxDepth is the deepest single arrival search (max-merged).
	CtrArriveMaxDepth
	// CtrMatched counts completed pairings (both directions).
	CtrMatched
	// CtrUnexpectedStored counts messages stored without a match.
	CtrUnexpectedStored
	// CtrQueued counts receives indexed without a match.
	CtrQueued

	// Reliability-sublayer counters (internal/mpi reliable.go).

	// CtrRelSent counts reliable messages first-sent.
	CtrRelSent
	// CtrRelRetransmits counts timeout-driven re-sends.
	CtrRelRetransmits
	// CtrRelAcked counts pending entries retired by a cumulative ack.
	CtrRelAcked
	// CtrRelSacks counts cumulative acks transmitted.
	CtrRelSacks
	// CtrRelDupDropped counts duplicate arrivals suppressed.
	CtrRelDupDropped
	// CtrRelOutOfOrder counts arrivals buffered for reordering.
	CtrRelOutOfOrder
	// CtrRelSendRNR counts sends refused by the fabric (retried later).
	CtrRelSendRNR

	// Fault-injection counters (internal/rdma fault.go).

	// CtrFaultDropped counts messages dropped on the wire.
	CtrFaultDropped
	// CtrFaultDuplicated counts messages delivered twice.
	CtrFaultDuplicated
	// CtrFaultDelayed counts messages held back and overtaken.
	CtrFaultDelayed
	// CtrFaultRNR counts receiver-not-ready NAKs injected.
	CtrFaultRNR
	// CtrFaultStalls counts send-pipeline stalls injected.
	CtrFaultStalls

	// Datapath counters (internal/dpa, internal/mpi engines).

	// CtrCQDrains counts CQ drain batches taken by an arrival loop.
	CtrCQDrains
	// CtrCQCompletions counts completions drained from the receive CQ.
	CtrCQCompletions

	// Eager-coalescing counters (internal/mpi coalesce.go): frames flushed
	// by each policy trigger. Frame widths are in HistCoalesceWidth.

	// CtrCoalesceFlushSize counts frames flushed by the byte threshold.
	CtrCoalesceFlushSize
	// CtrCoalesceFlushCount counts frames flushed by the message-count
	// threshold.
	CtrCoalesceFlushCount
	// CtrCoalesceFlushSync counts frames flushed at synchronization points
	// (Wait, Barrier, rendezvous, bypass sends, world drain).
	CtrCoalesceFlushSync
	// CtrCoalesceFlushTimeout counts frames flushed by the staleness timer.
	CtrCoalesceFlushTimeout

	// Analyzer counters (internal/analyzer).

	// CtrAnalyzerShards counts per-rank replay shards executed.
	CtrAnalyzerShards
	// CtrAnalyzerEvents counts trace events replayed.
	CtrAnalyzerEvents

	// Capacity-planner counters (internal/plan).

	// CtrPlanCandidates counts configurations priced by the planner.
	CtrPlanCandidates
	// CtrPlanRejected counts candidates rejected (over the memory budget or
	// infeasible posted-receive capacity).
	CtrPlanRejected
	// CtrPlanReplays counts analyzer replays the planner ran (one per
	// distinct bin count, not one per candidate).
	CtrPlanReplays

	// Network-transport counters (internal/rdma/netfabric): the socket
	// datapath of out-of-process worlds. They live in the transport's sink,
	// which takes the "fabric" slot of the world's export.

	// CtrNetTxFrames counts frames handed to the socket layer.
	CtrNetTxFrames
	// CtrNetTxBytes counts encoded frame bytes transmitted.
	CtrNetTxBytes
	// CtrNetRxFrames counts frames decoded off the socket.
	CtrNetRxFrames
	// CtrNetRxBytes counts encoded frame bytes received.
	CtrNetRxBytes
	// CtrNetFlushes counts writev flushes (one per batched net.Buffers
	// write of a TCP peer writer; one per datagram on UDP).
	CtrNetFlushes
	// CtrNetStalls counts sends that blocked on a saturated peer queue.
	CtrNetStalls
	// CtrNetReadReqs counts rendezvous read requests issued to peers.
	CtrNetReadReqs
	// CtrNetReadRetries counts read requests re-sent after a timeout
	// (UDP: the request or its response was lost).
	CtrNetReadRetries

	// Shared-memory transport counters (internal/rdma/netfabric shm.go):
	// the intra-node ring datapath. They share the "fabric" sink with the
	// socket counters (the hybrid transport increments both families).

	// CtrShmTxFrames counts frames staged into peer rings.
	CtrShmTxFrames
	// CtrShmTxBytes counts encoded frame bytes staged into peer rings.
	CtrShmTxBytes
	// CtrShmRxFrames counts frames consumed from inbound rings.
	CtrShmRxFrames
	// CtrShmRxBytes counts payload bytes consumed from inbound rings.
	CtrShmRxBytes
	// CtrShmSpinWakes counts waits resolved within the bounded busy-poll
	// budget (work arrived before the poller had to park).
	CtrShmSpinWakes
	// CtrShmParks counts spin-to-park transitions (the budget ran dry and
	// the waiter fell back to timed sleeps).
	CtrShmParks
	// CtrShmRingFull counts send-side stall episodes on a full ring.
	CtrShmRingFull
	// CtrShmReads counts zero-round-trip rendezvous reads served straight
	// from a shared arena (no READ RPC).
	CtrShmReads

	// Daemon counters (internal/daemon): the matchd control plane. They
	// live in the server's own sink (exported with component="daemon") and,
	// for per-job quantities, in each job's daemon-domain sink (exported
	// with per-tenant labels).

	// CtrDaemonSubmitted counts control-protocol job submissions received.
	CtrDaemonSubmitted
	// CtrDaemonAdmitted counts jobs admitted by the budget ledger.
	CtrDaemonAdmitted
	// CtrDaemonRejected counts submissions rejected (over budget, draining,
	// invalid spec, duplicate ID).
	CtrDaemonRejected
	// CtrDaemonCompleted counts jobs that finished successfully.
	CtrDaemonCompleted
	// CtrDaemonFailed counts jobs that finished with an error.
	CtrDaemonFailed
	// CtrDaemonCanceled counts jobs canceled by the control protocol or by
	// a forced shutdown.
	CtrDaemonCanceled
	// CtrDaemonBackpressure counts posted-receive pacing stalls: windows a
	// job had to split its receive burst into because the per-communicator
	// posted-depth bound was smaller than the burst.
	CtrDaemonBackpressure
	// CtrDaemonReloads counts hot config reloads applied (SIGHUP).
	CtrDaemonReloads
	// CtrDaemonBadRequests counts control-protocol lines answered with a
	// typed error reply.
	CtrDaemonBadRequests

	// NumCounters bounds the enum; it must stay last.
	NumCounters
)

// counterNames maps Counter values to stable snake_case snapshot keys.
var counterNames = [NumCounters]string{
	CtrBlocks:           "blocks",
	CtrMessages:         "messages",
	CtrOptimistic:       "optimistic",
	CtrConflicts:        "conflicts",
	CtrFastPath:         "fast_path",
	CtrSlowPath:         "slow_path",
	CtrUnexpected:       "unexpected",
	CtrRelaxed:          "relaxed",
	CtrTableFull:        "table_full",
	CtrLazySweeps:       "lazy_sweeps",
	CtrLazyReaped:       "lazy_reaped",
	CtrRevalidated:      "revalidated",
	CtrSteals:           "steals",
	CtrRetires:          "retires",
	CtrPostSearches:     "post_searches",
	CtrPostTraversed:    "post_traversed",
	CtrPostMaxDepth:     "post_max_depth",
	CtrArriveSearches:   "arrive_searches",
	CtrArriveTraversed:  "arrive_traversed",
	CtrArriveMaxDepth:   "arrive_max_depth",
	CtrMatched:          "matched",
	CtrUnexpectedStored: "unexpected_stored",
	CtrQueued:           "queued",
	CtrRelSent:          "rel_sent",
	CtrRelRetransmits:   "rel_retransmits",
	CtrRelAcked:         "rel_acked",
	CtrRelSacks:         "rel_sacks",
	CtrRelDupDropped:    "rel_dup_dropped",
	CtrRelOutOfOrder:    "rel_out_of_order",
	CtrRelSendRNR:       "rel_send_rnr",
	CtrFaultDropped:     "fault_dropped",
	CtrFaultDuplicated:  "fault_duplicated",
	CtrFaultDelayed:     "fault_delayed",
	CtrFaultRNR:         "fault_rnr",
	CtrFaultStalls:      "fault_stalls",
	CtrCQDrains:         "cq_drains",
	CtrCQCompletions:    "cq_completions",

	CtrCoalesceFlushSize:    "coalesce_flush_size",
	CtrCoalesceFlushCount:   "coalesce_flush_count",
	CtrCoalesceFlushSync:    "coalesce_flush_sync",
	CtrCoalesceFlushTimeout: "coalesce_flush_timeout",
	CtrAnalyzerShards:       "analyzer_shards",
	CtrAnalyzerEvents:       "analyzer_events",
	CtrPlanCandidates:       "plan_candidates",
	CtrPlanRejected:         "plan_rejected",
	CtrPlanReplays:          "plan_replays",
	CtrNetTxFrames:          "net_tx_frames",
	CtrNetTxBytes:           "net_tx_bytes",
	CtrNetRxFrames:          "net_rx_frames",
	CtrNetRxBytes:           "net_rx_bytes",
	CtrNetFlushes:           "net_flushes",
	CtrNetStalls:            "net_stalls",
	CtrNetReadReqs:          "net_read_reqs",
	CtrNetReadRetries:       "net_read_retries",
	CtrShmTxFrames:          "shm_tx_frames",
	CtrShmTxBytes:           "shm_tx_bytes",
	CtrShmRxFrames:          "shm_rx_frames",
	CtrShmRxBytes:           "shm_rx_bytes",
	CtrShmSpinWakes:         "shm_spin_wakes",
	CtrShmParks:             "shm_parks",
	CtrShmRingFull:          "shm_ring_full",
	CtrShmReads:             "shm_reads",
	CtrDaemonSubmitted:      "daemon_submitted",
	CtrDaemonAdmitted:       "daemon_admitted",
	CtrDaemonRejected:       "daemon_rejected",
	CtrDaemonCompleted:      "daemon_completed",
	CtrDaemonFailed:         "daemon_failed",
	CtrDaemonCanceled:       "daemon_canceled",
	CtrDaemonBackpressure:   "daemon_backpressure_waits",
	CtrDaemonReloads:        "daemon_reloads",
	CtrDaemonBadRequests:    "daemon_bad_requests",
}

// String returns the counter's stable snapshot key.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "unknown"
}

// CounterSet is a flat array of atomic counters indexed by Counter. The
// zero value is ready to use; writers never block and readers assemble
// snapshots without any lock.
type CounterSet struct {
	c [NumCounters]atomic.Uint64
}

// Add increments counter i by v.
func (s *CounterSet) Add(i Counter, v uint64) { s.c[i].Add(v) }

// Inc increments counter i by one.
func (s *CounterSet) Inc(i Counter) { s.c[i].Add(1) }

// Load returns the current value of counter i.
func (s *CounterSet) Load(i Counter) uint64 { return s.c[i].Load() }

// Store overwrites counter i with v.
func (s *CounterSet) Store(i Counter, v uint64) { s.c[i].Store(v) }

// Max raises counter i to at least v (monotone atomic maximum), the merge
// rule of the *_max_depth counters.
func (s *CounterSet) Max(i Counter, v uint64) {
	a := &s.c[i]
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Reset zeroes the given counters (all of them when none are named).
func (s *CounterSet) Reset(idx ...Counter) {
	if len(idx) == 0 {
		for i := range s.c {
			s.c[i].Store(0)
		}
		return
	}
	for _, i := range idx {
		s.c[i].Store(0)
	}
}

// Snapshot returns the nonzero counters keyed by their stable names.
func (s *CounterSet) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	for i := Counter(0); i < NumCounters; i++ {
		if v := s.c[i].Load(); v != 0 {
			out[i.String()] = v
		}
	}
	return out
}
