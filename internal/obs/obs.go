// Package obs is the unified observability layer: low-overhead event
// tracing, typed counters, and fixed-bucket latency histograms for every
// layer of the offloaded-matching stack (DESIGN.md §10).
//
// The design targets the arrival hot path. Counters are enum-indexed
// atomics (one indexed atomic add per record, no lookup); events go to
// per-worker lock-free ring buffers of fixed-size seqlock-stamped records
// (one atomic reservation plus a handful of atomic stores, overwriting the
// oldest records when full); and the whole event path is gated on a single
// branch — a Sink with tracing disabled (or a nil Sink) returns before
// evaluating anything. BenchmarkArrivalHotPath asserts the disabled path
// stays allocation-free; EXPERIMENTS.md records the enabled overhead.
//
// Snapshots export as structured JSON (WriteJSON) and as Chrome
// trace_event JSON (WriteTrace) loadable in chrome://tracing or Perfetto.
package obs

import (
	"time"
)

// DefaultTraceEvents is the per-ring record capacity used when tracing is
// requested without an explicit size.
const DefaultTraceEvents = 1 << 14

// DefaultRings is the worker-lane count used when tracing is requested
// without an explicit shard count.
const DefaultRings = 8

// Options configures a Sink.
type Options struct {
	// TraceEvents enables event tracing when positive: each ring holds
	// TraceEvents records (rounded up to a power of two), overwriting the
	// oldest when full. Zero leaves tracing disabled — the counter and
	// histogram surfaces still work, and the event path is one branch.
	TraceEvents int
	// Rings is the number of per-worker ring shards (default DefaultRings
	// when tracing is enabled). Workers map to shards by id modulo Rings.
	Rings int
}

// Tracing returns o with tracing enabled at the default sizes, keeping any
// explicit sizes already set.
func (o Options) Tracing() Options {
	if o.TraceEvents <= 0 {
		o.TraceEvents = DefaultTraceEvents
	}
	return o
}

// Sink is one observability domain: a counter set, histograms, and
// (optionally) event rings sharing one time epoch. Every method is safe on
// a nil receiver — a nil *Sink is the always-compiled disabled layer, and
// costs its callers a single branch.
type Sink struct {
	// Counters is the sink's counter set. Callers with a guaranteed
	// non-nil sink may use it directly; CounterAdd and friends are the
	// nil-safe equivalents.
	Counters CounterSet

	hists [NumHists]Histogram
	rings []ring
	base  time.Time
}

// New returns a sink. With opts.TraceEvents == 0 the sink records counters
// and histograms only; Event becomes a near-free no-op.
func New(opts Options) *Sink {
	s := &Sink{base: time.Now()}
	if opts.TraceEvents > 0 {
		n := opts.Rings
		if n <= 0 {
			n = DefaultRings
		}
		cap := 1
		for cap < opts.TraceEvents {
			cap <<= 1
		}
		s.rings = make([]ring, n)
		for i := range s.rings {
			s.rings[i].slots = make([]slot, cap)
		}
	}
	return s
}

// Enabled reports whether the sink records events. It is the one branch
// call sites pay when tracing is off; guard any argument computation with
// it.
func (s *Sink) Enabled() bool { return s != nil && len(s.rings) > 0 }

// Now returns nanoseconds since the sink's epoch (0 on a nil sink).
func (s *Sink) Now() int64 {
	if s == nil {
		return 0
	}
	return time.Since(s.base).Nanoseconds()
}

// Event records one typed event on worker's ring lane. It is a no-op
// unless Enabled.
func (s *Sink) Event(k Kind, worker int, a, b, c uint64) {
	if s == nil || len(s.rings) == 0 {
		return
	}
	w := worker
	if w < 0 {
		w = 0
	}
	s.rings[w%len(s.rings)].record(s.Now(), k, int32(worker), a, b, c)
}

// EventAt is Event with a caller-supplied timestamp (nanoseconds since the
// sink's epoch, from a prior Now call), for spans whose start was sampled
// earlier.
func (s *Sink) EventAt(nano int64, k Kind, worker int, a, b, c uint64) {
	if s == nil || len(s.rings) == 0 {
		return
	}
	w := worker
	if w < 0 {
		w = 0
	}
	s.rings[w%len(s.rings)].record(nano, k, int32(worker), a, b, c)
}

// CounterAdd is a nil-safe Counters.Add.
func (s *Sink) CounterAdd(i Counter, v uint64) {
	if s == nil {
		return
	}
	s.Counters.Add(i, v)
}

// CounterInc is a nil-safe Counters.Inc.
func (s *Sink) CounterInc(i Counter) {
	if s == nil {
		return
	}
	s.Counters.Inc(i)
}

// Observe records one histogram sample (nil-safe).
func (s *Sink) Observe(h Hist, v uint64) {
	if s == nil {
		return
	}
	s.hists[h].Observe(v)
}

// Hist returns a snapshot of one histogram (zero on a nil sink).
func (s *Sink) Hist(h Hist) HistSnapshot {
	if s == nil {
		return HistSnapshot{}
	}
	return s.hists[h].Snapshot()
}

// Events returns every consistent record across all rings, ordered by
// time then sequence. Records overwritten mid-snapshot are skipped, never
// torn.
func (s *Sink) Events() []Event {
	if s == nil || len(s.rings) == 0 {
		return nil
	}
	var out []Event
	for i := range s.rings {
		out = s.rings[i].snapshot(out)
	}
	sortEvents(out)
	return out
}

// Recorded returns the total events ever recorded and how many were lost
// to ring overwrite.
func (s *Sink) Recorded() (recorded, dropped uint64) {
	if s == nil {
		return 0, 0
	}
	for i := range s.rings {
		recorded += s.rings[i].recorded()
		dropped += s.rings[i].dropped()
	}
	return recorded, dropped
}

// Named pairs a sink with the name exported snapshots carry (e.g. "rank0",
// "fabric").
type Named struct {
	Name string
	Sink *Sink
}

// Snapshot is one sink's exportable state.
type Snapshot struct {
	Name     string                  `json:"name,omitempty"`
	Counters map[string]uint64       `json:"counters"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
	Recorded uint64                  `json:"recorded_events,omitempty"`
	Dropped  uint64                  `json:"dropped_events,omitempty"`
}

// Snapshot assembles the sink's counter and histogram state.
func (s *Sink) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{Counters: map[string]uint64{}}
	}
	out := Snapshot{Counters: s.Counters.Snapshot()}
	for h := Hist(0); h < NumHists; h++ {
		hs := s.hists[h].Snapshot()
		if hs.Count == 0 {
			continue
		}
		if out.Hists == nil {
			out.Hists = make(map[string]HistSnapshot)
		}
		out.Hists[h.String()] = hs
	}
	out.Recorded, out.Dropped = s.Recorded()
	return out
}
