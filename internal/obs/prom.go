package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus/OpenMetrics text exporter. A long-running host (cmd/matchd)
// exposes every tenant's CounterSets and histograms on one /metrics
// endpoint; this file renders them in the text exposition format scrapers
// expect: one `# TYPE` header per metric family, counter samples suffixed
// `_total`, and log2 histograms expanded into cumulative `le` buckets.
//
// The exporter is deliberately snapshot-shaped — it reads atomic counters
// at scrape time and holds no locks, so scrapes never contend with the
// arrival hot path.

// Label is one name="value" pair attached to a sink group's samples.
// Order is preserved; callers list the most significant label first
// (e.g. tenant before job).
type Label struct {
	Name, Value string
}

// LabeledSinks is one group of sinks exported under a shared label set.
// The group's counters are summed across its sinks (e.g. all ranks of one
// tenant job) and its histograms are bucket-merged, so each group becomes
// exactly one sample per metric family.
type LabeledSinks struct {
	Labels []Label
	Sinks  []*Sink
}

// promEscape escapes a label value per the exposition format.
var promEscape = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels renders {a="x",b="y"}, or "" for an empty set.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, promEscape.Replace(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// counterSums returns the group's per-counter totals.
func (g *LabeledSinks) counterSums() [NumCounters]uint64 {
	var sums [NumCounters]uint64
	for _, s := range g.Sinks {
		if s == nil {
			continue
		}
		for i := Counter(0); i < NumCounters; i++ {
			sums[i] += s.Counters.Load(i)
		}
	}
	return sums
}

// histSum merges one histogram family across the group's sinks.
func (g *LabeledSinks) histSum(h Hist) HistSnapshot {
	out := HistSnapshot{}
	var buckets [HistBuckets]uint64
	last := -1
	for _, s := range g.Sinks {
		if s == nil {
			continue
		}
		hs := s.Hist(h)
		out.Count += hs.Count
		out.Sum += hs.Sum
		for i, v := range hs.Buckets {
			buckets[i] += v
			if v != 0 && i > last {
				last = i
			}
		}
	}
	if last >= 0 {
		out.Buckets = append([]uint64(nil), buckets[:last+1]...)
	}
	return out
}

// WriteProm writes the groups' counters and histograms in the
// Prometheus/OpenMetrics text exposition format, every metric name
// prefixed `prefix_`. Families with no nonzero sample anywhere are
// omitted; family and group order is deterministic (enum order, caller
// order). The caller owns the surrounding document — gauges it computes
// itself and the terminating `# EOF` line.
func WriteProm(w io.Writer, prefix string, groups []LabeledSinks) error {
	bw := &promWriter{w: w}

	// Counters: one family per enum entry with any nonzero sample.
	sums := make([][NumCounters]uint64, len(groups))
	for gi := range groups {
		sums[gi] = groups[gi].counterSums()
	}
	for c := Counter(0); c < NumCounters; c++ {
		any := false
		for gi := range groups {
			if sums[gi][c] != 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		name := prefix + "_" + c.String()
		bw.printf("# TYPE %s counter\n", name)
		for gi := range groups {
			if sums[gi][c] == 0 {
				continue
			}
			bw.printf("%s_total%s %d\n", name, renderLabels(groups[gi].Labels), sums[gi][c])
		}
	}

	// Histograms: log2 bucket i holds values v with bits.Len64(v) == i, so
	// its inclusive upper bound is 2^i - 1; cumulate and close with +Inf.
	for h := Hist(0); h < NumHists; h++ {
		merged := make([]HistSnapshot, len(groups))
		any := false
		for gi := range groups {
			merged[gi] = groups[gi].histSum(h)
			if merged[gi].Count != 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		name := prefix + "_" + h.String()
		bw.printf("# TYPE %s histogram\n", name)
		for gi := range groups {
			hs := merged[gi]
			if hs.Count == 0 {
				continue
			}
			labels := groups[gi].Labels
			cum := uint64(0)
			for i, v := range hs.Buckets {
				cum += v
				le := fmt.Sprintf("%d", upperBound(i))
				bw.printf("%s_bucket%s %d\n", name, renderLabels(labels, Label{"le", le}), cum)
			}
			bw.printf("%s_bucket%s %d\n", name, renderLabels(labels, Label{"le", "+Inf"}), hs.Count)
			bw.printf("%s_sum%s %d\n", name, renderLabels(labels), hs.Sum)
			bw.printf("%s_count%s %d\n", name, renderLabels(labels), hs.Count)
		}
	}
	return bw.err
}

// upperBound is the inclusive upper value of log2 bucket i (2^i - 1,
// saturating at the last absorbing bucket).
func upperBound(i int) uint64 {
	if i >= HistBuckets-1 {
		return math.MaxUint64 >> 1 // representable, monotone past the last real bound
	}
	return (uint64(1) << uint(i)) - 1
}

// WriteGauge writes one gauge family with a single sample per label set.
// Sample order follows the given map's sorted keys when labels are keyed,
// so output is deterministic.
func WriteGauge(w io.Writer, name string, samples map[string]float64, labelName string) error {
	bw := &promWriter{w: w}
	bw.printf("# TYPE %s gauge\n", name)
	if labelName == "" {
		for _, v := range samples {
			bw.printf("%s %s\n", name, formatFloat(v))
		}
		return bw.err
	}
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bw.printf("%s%s %s\n", name, renderLabels([]Label{{labelName, k}}), formatFloat(samples[k]))
	}
	return bw.err
}

// formatFloat renders integral gauges without an exponent, everything else
// in compact form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// promWriter accumulates the first write error so families render with one
// error check at the end.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}
