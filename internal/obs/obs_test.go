package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterSet(t *testing.T) {
	var s CounterSet
	s.Inc(CtrBlocks)
	s.Add(CtrMessages, 41)
	s.Inc(CtrMessages)
	if got := s.Load(CtrBlocks); got != 1 {
		t.Errorf("CtrBlocks = %d, want 1", got)
	}
	if got := s.Load(CtrMessages); got != 42 {
		t.Errorf("CtrMessages = %d, want 42", got)
	}

	s.Max(CtrArriveMaxDepth, 7)
	s.Max(CtrArriveMaxDepth, 3) // must not lower
	s.Max(CtrArriveMaxDepth, 9)
	if got := s.Load(CtrArriveMaxDepth); got != 9 {
		t.Errorf("Max merge = %d, want 9", got)
	}

	snap := s.Snapshot()
	if snap["messages"] != 42 || snap["blocks"] != 1 || snap["arrive_max_depth"] != 9 {
		t.Errorf("snapshot = %v", snap)
	}
	if _, ok := snap["conflicts"]; ok {
		t.Error("snapshot includes zero counter")
	}

	s.Reset(CtrMessages)
	if s.Load(CtrMessages) != 0 || s.Load(CtrBlocks) != 1 {
		t.Error("selective Reset touched the wrong counters")
	}
	s.Reset()
	if s.Load(CtrBlocks) != 0 || s.Load(CtrArriveMaxDepth) != 0 {
		t.Error("full Reset left residue")
	}
}

func TestCounterNamesComplete(t *testing.T) {
	seen := make(map[string]Counter)
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "" || name == "unknown" {
			t.Errorf("counter %d has no name", c)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("counters %d and %d share the name %q", prev, c, name)
		}
		seen[name] = c
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1 << 20} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 6 {
		t.Errorf("Count = %d, want 6", snap.Count)
	}
	if want := uint64(0 + 1 + 2 + 3 + 4 + 1<<20); snap.Sum != want {
		t.Errorf("Sum = %d, want %d", snap.Sum, want)
	}
	// bits.Len64 bucketing: 0→0, 1→1, {2,3}→2, 4→3, 1<<20→21.
	want := []uint64{1, 1, 2, 1}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Buckets[i], w)
		}
	}
	if len(snap.Buckets) != 22 || snap.Buckets[21] != 1 {
		t.Errorf("trimmed buckets = %v (len %d), want last index 21", snap.Buckets, len(snap.Buckets))
	}
	if m := snap.Mean(); m != float64(snap.Sum)/6 {
		t.Errorf("Mean = %v", m)
	}
	// Oversized values saturate into the last bucket instead of escaping.
	h.Observe(1 << 63)
	if got := h.Snapshot().Buckets[HistBuckets-1]; got != 1 {
		t.Errorf("saturating bucket = %d, want 1", got)
	}
}

func TestNilSinkSafe(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Error("nil sink reports Enabled")
	}
	// None of these may panic.
	s.Event(EvBlockLaunch, 0, 1, 2, 3)
	s.EventAt(5, EvBlockLaunch, 0, 1, 2, 3)
	s.CounterAdd(CtrBlocks, 1)
	s.CounterInc(CtrBlocks)
	s.Observe(HistBlockNs, 1)
	if s.Now() != 0 {
		t.Error("nil sink Now != 0")
	}
	if s.Events() != nil {
		t.Error("nil sink has events")
	}
	if r, d := s.Recorded(); r != 0 || d != 0 {
		t.Error("nil sink recorded events")
	}
	if h := s.Hist(HistBlockNs); h.Count != 0 {
		t.Error("nil sink has histogram samples")
	}
	if snap := s.Snapshot(); len(snap.Counters) != 0 {
		t.Error("nil sink snapshot has counters")
	}
}

func TestDisabledSinkDropsEvents(t *testing.T) {
	s := New(Options{}) // counters only
	if s.Enabled() {
		t.Error("counters-only sink reports Enabled")
	}
	s.Event(EvBlockLaunch, 0, 1, 2, 3)
	if evs := s.Events(); evs != nil {
		t.Errorf("disabled sink recorded %d events", len(evs))
	}
	s.Counters.Inc(CtrBlocks)
	if s.Snapshot().Counters["blocks"] != 1 {
		t.Error("disabled sink lost counters")
	}
}

func TestSinkEventsRoundTrip(t *testing.T) {
	s := New(Options{TraceEvents: 16, Rings: 2})
	if !s.Enabled() {
		t.Fatal("tracing sink not Enabled")
	}
	s.Event(EvBlockLaunch, 3, 10, 20, 30)
	s.Event(EvBlockRetire, 5, 10, 20, 999)
	evs := s.Events()
	if len(evs) != 2 {
		t.Fatalf("Events() = %d records, want 2", len(evs))
	}
	// Sorted by time: launch first.
	if evs[0].Kind != EvBlockLaunch || evs[0].Worker != 3 ||
		evs[0].A != 10 || evs[0].B != 20 || evs[0].C != 30 {
		t.Errorf("launch event = %+v", evs[0])
	}
	if evs[1].Kind != EvBlockRetire || evs[1].C != 999 {
		t.Errorf("retire event = %+v", evs[1])
	}
	if rec, drop := s.Recorded(); rec != 2 || drop != 0 {
		t.Errorf("Recorded() = %d, %d; want 2, 0", rec, drop)
	}
}

func TestRingOverwriteAccounting(t *testing.T) {
	s := New(Options{TraceEvents: 4, Rings: 1})
	const n = 25
	for i := 0; i < n; i++ {
		s.Event(EvCQDrain, 0, uint64(i), 0, 0)
	}
	rec, drop := s.Recorded()
	if rec != n {
		t.Errorf("recorded = %d, want %d", rec, n)
	}
	if drop != n-4 {
		t.Errorf("dropped = %d, want %d", drop, n-4)
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("ring of 4 holds %d events", len(evs))
	}
	for _, e := range evs {
		// Only the newest lap survives.
		if e.A < n-4 {
			t.Errorf("stale record survived overwrite: %+v", e)
		}
	}
}

func TestEventWorkerLaneMapping(t *testing.T) {
	s := New(Options{TraceEvents: 8, Rings: 2})
	// Negative workers must not index out of range; they clamp to lane 0.
	s.Event(EvCQDrain, -7, 1, 0, 0)
	evs := s.Events()
	if len(evs) != 1 || evs[0].Worker != -7 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if NumKinds.String() != "unknown" {
		t.Error("out-of-range kind not mapped to unknown")
	}
}

func TestWriteJSONStructure(t *testing.T) {
	s := New(Options{})
	s.Counters.Add(CtrMatched, 11)
	s.Observe(HistDrainBatch, 4)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Named{{Name: "rank0", Sink: s}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Sinks []struct {
			Name     string                  `json:"name"`
			Counters map[string]uint64       `json:"counters"`
			Hists    map[string]HistSnapshot `json:"histograms"`
		} `json:"sinks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output is not JSON: %v", err)
	}
	if len(doc.Sinks) != 1 || doc.Sinks[0].Name != "rank0" {
		t.Fatalf("sinks = %+v", doc.Sinks)
	}
	if doc.Sinks[0].Counters["matched"] != 11 {
		t.Errorf("counters = %v", doc.Sinks[0].Counters)
	}
	if doc.Sinks[0].Hists["drain_batch"].Count != 1 {
		t.Errorf("histograms = %v", doc.Sinks[0].Hists)
	}
}

func TestWriteTraceStructure(t *testing.T) {
	s := New(Options{TraceEvents: 64, Rings: 1})
	launch := s.Now()
	s.EventAt(launch, EvBlockLaunch, 2, 7, 32, 0)
	s.Event(EvMatchFast, 2, 7, 2, 0)
	s.EventAt(launch+1500, EvBlockRetire, 2, 7, 32, 1500)
	// A retire with no recorded launch renders as an instant, not a span.
	s.Event(EvBlockRetire, 0, 99, 1, 1)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Named{{Name: "rank1", Sink: s}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteTrace output is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var meta, spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "process_name" || e.Args["name"] != "rank1" {
				t.Errorf("metadata = %+v", e)
			}
		case "X":
			spans++
			if e.Name != "block 7" || e.Dur <= 0 || e.Tid != 2 {
				t.Errorf("span = %+v", e)
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 1 || spans != 1 || instants != 2 {
		t.Errorf("meta/spans/instants = %d/%d/%d, want 1/1/2 (match_fast + orphan retire)", meta, spans, instants)
	}
}

func TestOptionsTracing(t *testing.T) {
	o := Options{}.Tracing()
	if o.TraceEvents != DefaultTraceEvents {
		t.Errorf("Tracing() TraceEvents = %d", o.TraceEvents)
	}
	o = Options{TraceEvents: 128, Rings: 3}.Tracing()
	if o.TraceEvents != 128 || o.Rings != 3 {
		t.Error("Tracing() clobbered explicit sizes")
	}
	// Capacity rounds up to a power of two.
	s := New(Options{TraceEvents: 100, Rings: 1})
	for i := 0; i < 128; i++ {
		s.Event(EvCQDrain, 0, uint64(i), 0, 0)
	}
	if _, drop := s.Recorded(); drop != 0 {
		t.Errorf("128-capacity ring dropped %d of 128", drop)
	}
}
