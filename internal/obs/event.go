package obs

import (
	"runtime"
	"sort"
	"sync/atomic"
)

// Kind is the type tag of a recorded event. Every kind's A/B/C payload
// convention is documented here and in DESIGN.md §10; exporters use the
// table to label Chrome trace events.
type Kind uint8

const (
	// EvBlockLaunch: an arrival block began. A=block seq, B=message count,
	// C=post-horizon snapshot.
	EvBlockLaunch Kind = iota
	// EvBlockBarrierExit: a handler thread cleared the partial barrier.
	// A=block seq, B=tid.
	EvBlockBarrierExit
	// EvBlockSteal: a descriptor was taken back from a higher-sequence
	// block. A=thief block seq, B=victim block seq, C=descriptor slot.
	EvBlockSteal
	// EvBlockSettle: retirement validation finished. A=block seq,
	// B=results revalidated.
	EvBlockSettle
	// EvBlockRetire: the block retired and advanced the frontier.
	// A=block seq, B=message count, C=lifecycle nanoseconds.
	EvBlockRetire
	// EvCQDrain: one CQ drain batch was taken. A=completions drained,
	// B=cursor after the batch, C=match-bound subset size.
	EvCQDrain
	// EvMatchFast: a conflict resolved on the fast path. A=block seq,
	// B=tid.
	EvMatchFast
	// EvMatchSlow: a conflict resolved on the slow path. A=block seq,
	// B=tid.
	EvMatchSlow
	// EvUnexpectedPub: a message was published to the unexpected store.
	// A=block seq.
	EvUnexpectedPub
	// EvPostMatch: a PostRecv matched a stored unexpected message.
	// A=receive label, B=search depth.
	EvPostMatch
	// EvFaultInject: the fabric injected a fault. A=QP id, B=fault code
	// (0 drop, 1 dup, 2 delay, 3 rnr, 4 stall).
	EvFaultInject
	// EvFaultRepair: the reliability layer repaired the stream. A=source
	// rank, B=sequence, C=repair code (0 dup-dropped, 1 buffered
	// out-of-order).
	EvFaultRepair
	// EvRetransmit: a timeout-driven re-send. A=destination rank,
	// B=sequence, C=backoff nanoseconds after doubling.
	EvRetransmit
	// EvAck: a cumulative sack retired pending sends. A=acker rank,
	// B=cumulative sequence, C=entries retired.
	EvAck
	// EvAnalyzerShard: one per-rank analyzer replay shard ran.
	// A=destination rank, B=steps replayed, C=shard nanoseconds.
	EvAnalyzerShard
	// EvAnalyzerPhase: an analyzer pipeline phase completed. A=phase code
	// (0 schedule, 1 replay, 2 merge), B=phase nanoseconds.
	EvAnalyzerPhase
	// EvPlanPhase: a capacity-planner phase completed. A=phase code
	// (0 features, 1 replay, 2 grid, 3 refine, 4 rank), B=phase
	// nanoseconds, C=candidates touched by the phase.
	EvPlanPhase
	// EvCoalesceFlush: an eager batch frame was flushed. A=flush reason
	// (0 size, 1 count, 2 sync, 3 timeout), B=sub-message count, C=frame
	// bytes on the wire; Worker=destination rank.
	EvCoalesceFlush
	// EvNetStall: a socket-transport send blocked on a saturated peer
	// queue. A=peer rank, B=frame bytes; Worker=peer rank.
	EvNetStall

	// NumKinds bounds the enum; it must stay last.
	NumKinds
)

// kindNames maps Kind values to stable export names.
var kindNames = [NumKinds]string{
	EvBlockLaunch:      "block_launch",
	EvBlockBarrierExit: "barrier_exit",
	EvBlockSteal:       "steal",
	EvBlockSettle:      "settle",
	EvBlockRetire:      "block_retire",
	EvCQDrain:          "cq_drain",
	EvMatchFast:        "match_fast",
	EvMatchSlow:        "match_slow",
	EvUnexpectedPub:    "unexpected_publish",
	EvPostMatch:        "post_match",
	EvFaultInject:      "fault_inject",
	EvFaultRepair:      "fault_repair",
	EvRetransmit:       "retransmit",
	EvAck:              "ack",
	EvAnalyzerShard:    "analyzer_shard",
	EvAnalyzerPhase:    "analyzer_phase",
	EvPlanPhase:        "plan_phase",
	EvNetStall:         "net_stall",
	EvCoalesceFlush:    "coalesce_flush",
}

// String returns the kind's stable export name.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one decoded trace record. Events are fixed-size and
// pointer-free; the meaning of A, B, C depends on Kind.
type Event struct {
	// Seq is the record's position in its ring's write stream (monotone
	// per ring; overwritten records leave gaps).
	Seq uint64
	// Nano is the record time in nanoseconds since the sink's epoch.
	Nano int64
	// Kind tags the payload.
	Kind Kind
	// Worker is the recording worker lane (DPA tid, rank, or 0).
	Worker int32
	// A, B, C are the kind-specific payload words.
	A, B, C uint64
}

// slot is one ring entry. Every field is an atomic word, so a snapshot
// reader never races a writer in the -race sense; the marker makes torn
// reads detectable (seqlock): a writer claims the slot by CAS-ing the
// marker to the odd value 2*pos+1, stores the payload, then publishes
// 2*pos+2. A reader accepts a slot only when the marker is even, nonzero,
// and unchanged across the payload loads.
type slot struct {
	marker atomic.Uint64
	nano   atomic.Int64
	meta   atomic.Uint64 // kind<<32 | uint32(worker)
	a      atomic.Uint64
	b      atomic.Uint64
	c      atomic.Uint64
}

// ring is one worker lane's bounded event buffer. Writers reserve
// positions with one atomic add and overwrite the oldest records when the
// ring wraps; recording never blocks and never allocates.
type ring struct {
	head  atomic.Uint64
	slots []slot // len is a power of two
}

// record writes one event at the next position. Two writers share a slot
// only when one laps the other by a full ring; the claim CAS makes the
// overlap safe (the lapped writer's record is simply lost, counted as
// overwritten).
func (r *ring) record(nano int64, k Kind, worker int32, a, b, c uint64) {
	pos := r.head.Add(1) - 1
	s := &r.slots[pos&uint64(len(r.slots)-1)]
	for {
		m := s.marker.Load()
		// Claim only forward positions: if another writer already claimed a
		// LATER lap of this slot, drop this record rather than resurrecting
		// an older position.
		if m >= 2*pos+1 {
			return
		}
		if m&1 == 0 && s.marker.CompareAndSwap(m, 2*pos+1) {
			break
		}
		runtime.Gosched() // a lapping writer is mid-write; yield and retry
	}
	s.nano.Store(nano)
	s.meta.Store(uint64(k)<<32 | uint64(uint32(worker)))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.marker.Store(2*pos + 2)
}

// snapshot appends every consistent record in the ring to out.
func (r *ring) snapshot(out []Event) []Event {
	for i := range r.slots {
		s := &r.slots[i]
		for {
			m1 := s.marker.Load()
			if m1 == 0 || m1&1 != 0 {
				break // empty or mid-write: skip
			}
			ev := Event{
				Seq:  (m1 - 2) / 2,
				Nano: s.nano.Load(),
			}
			meta := s.meta.Load()
			ev.Kind = Kind(meta >> 32)
			ev.Worker = int32(uint32(meta))
			ev.A = s.a.Load()
			ev.B = s.b.Load()
			ev.C = s.c.Load()
			if s.marker.Load() == m1 {
				out = append(out, ev)
				break
			}
			// A writer moved the slot under us; retry against the new record.
		}
	}
	return out
}

// recorded returns the number of records ever written to the ring.
func (r *ring) recorded() uint64 { return r.head.Load() }

// dropped returns how many records were overwritten by ring wrap.
func (r *ring) dropped() uint64 {
	n := r.head.Load()
	if cap := uint64(len(r.slots)); n > cap {
		return n - cap
	}
	return 0
}

// sortEvents orders a merged snapshot by time, then sequence, for stable
// export.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Nano != evs[j].Nano {
			return evs[i].Nano < evs[j].Nano
		}
		return evs[i].Seq < evs[j].Seq
	})
}
