// Package trace provides the MPI trace model of the paper's analyzer (C2):
// an in-memory representation of point-to-point, collective, one-sided and
// progress operations, a parser for DUMPI ASCII traces, a writer for the
// same format, and a binary cache that skips re-parsing (§V-A: "the parser
// verifies the existence of a binary cache for the given input trace, as
// parsing ... is the most time-consuming step").
package trace

import "fmt"

// OpKind classifies an MPI operation the way the analyzer processes it
// (§V-A: only p2p and progress operations drive the matching structures;
// collectives and one-sided ops are counted for the call-mix statistics but
// otherwise ignored).
type OpKind uint8

const (
	// OpSend covers MPI_Send/MPI_Isend and friends: a message injection.
	OpSend OpKind = iota
	// OpRecv covers MPI_Recv/MPI_Irecv: a posted receive.
	OpRecv
	// OpProgress covers MPI_Wait/Waitall/Test…: a statistics sample point.
	OpProgress
	// OpCollective covers MPI_Bcast/Allreduce/Alltoall/Barrier….
	OpCollective
	// OpOneSided covers MPI_Put/Get/Accumulate and window operations.
	OpOneSided
	// OpOther covers everything else (init, finalize, datatype ops, …).
	OpOther
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpProgress:
		return "progress"
	case OpCollective:
		return "collective"
	case OpOneSided:
		return "one-sided"
	case OpOther:
		return "other"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Wildcard values as they appear in traces.
const (
	AnySource int32 = -1
	AnyTag    int32 = -1
)

// Event is one traced MPI call.
type Event struct {
	Kind OpKind
	// Name is the MPI function name (e.g. "MPI_Isend").
	Name string
	// Peer is the destination rank for sends and the source rank for
	// receives (AnySource for wildcard receives); unused otherwise.
	Peer int32
	// Tag is the message tag (AnyTag for wildcard receives).
	Tag int32
	// Comm is the communicator ID.
	Comm int32
	// Count is the element count of the transfer.
	Count int32
	// Walltime is the call's enter time in seconds.
	Walltime float64
}

// RankTrace is the event stream of one rank.
type RankTrace struct {
	Rank   int32
	Events []Event
}

// Trace is a full application trace.
type Trace struct {
	App   string
	Ranks []RankTrace
}

// NumRanks returns the number of rank streams.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// NumEvents returns the total event count.
func (t *Trace) NumEvents() int {
	n := 0
	for i := range t.Ranks {
		n += len(t.Ranks[i].Events)
	}
	return n
}

// CallMix is the Figure 6 statistic: the share of MPI calls by type.
type CallMix struct {
	P2P        int // sends + receives
	Progress   int
	Collective int
	OneSided   int
	Other      int
}

// Total returns the number of classified calls.
func (m CallMix) Total() int {
	return m.P2P + m.Progress + m.Collective + m.OneSided + m.Other
}

// CommTotal returns the calls counted for Figure 6 (p2p, collective,
// one-sided — the communication calls).
func (m CallMix) CommTotal() int { return m.P2P + m.Collective + m.OneSided }

// Mix computes the call-type distribution of the trace.
func (t *Trace) Mix() CallMix {
	var m CallMix
	for i := range t.Ranks {
		for _, e := range t.Ranks[i].Events {
			switch e.Kind {
			case OpSend, OpRecv:
				m.P2P++
			case OpProgress:
				m.Progress++
			case OpCollective:
				m.Collective++
			case OpOneSided:
				m.OneSided++
			default:
				m.Other++
			}
		}
	}
	return m
}

// Classify maps an MPI function name to its OpKind.
func Classify(name string) OpKind {
	if k, ok := nameKinds[name]; ok {
		return k
	}
	return OpOther
}

var nameKinds = map[string]OpKind{
	"MPI_Send":      OpSend,
	"MPI_Isend":     OpSend,
	"MPI_Ssend":     OpSend,
	"MPI_Issend":    OpSend,
	"MPI_Rsend":     OpSend,
	"MPI_Bsend":     OpSend,
	"MPI_Send_init": OpSend,

	"MPI_Recv":      OpRecv,
	"MPI_Irecv":     OpRecv,
	"MPI_Recv_init": OpRecv,

	"MPI_Wait":     OpProgress,
	"MPI_Waitall":  OpProgress,
	"MPI_Waitany":  OpProgress,
	"MPI_Waitsome": OpProgress,
	"MPI_Test":     OpProgress,
	"MPI_Testall":  OpProgress,
	"MPI_Testany":  OpProgress,
	"MPI_Testsome": OpProgress,

	"MPI_Barrier":              OpCollective,
	"MPI_Bcast":                OpCollective,
	"MPI_Reduce":               OpCollective,
	"MPI_Allreduce":            OpCollective,
	"MPI_Alltoall":             OpCollective,
	"MPI_Alltoallv":            OpCollective,
	"MPI_Allgather":            OpCollective,
	"MPI_Allgatherv":           OpCollective,
	"MPI_Gather":               OpCollective,
	"MPI_Gatherv":              OpCollective,
	"MPI_Scatter":              OpCollective,
	"MPI_Scatterv":             OpCollective,
	"MPI_Scan":                 OpCollective,
	"MPI_Exscan":               OpCollective,
	"MPI_Reduce_scatter":       OpCollective,
	"MPI_Reduce_scatter_block": OpCollective,

	"MPI_Put":        OpOneSided,
	"MPI_Get":        OpOneSided,
	"MPI_Accumulate": OpOneSided,
	"MPI_Win_create": OpOneSided,
	"MPI_Win_fence":  OpOneSided,
	"MPI_Win_lock":   OpOneSided,
	"MPI_Win_unlock": OpOneSided,
	"MPI_Win_free":   OpOneSided,
}
