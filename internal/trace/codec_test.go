package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// codecTrace exercises every field class: wildcards (negative sentinels),
// empty rank streams, non-contiguous rank ids, repeated and one-off names.
func codecTrace() *Trace {
	return &Trace{App: "codec app", Ranks: []RankTrace{
		{Rank: 0, Events: []Event{
			{Kind: OpSend, Name: "MPI_Isend", Peer: 7, Tag: 3, Comm: 2, Count: 512, Walltime: 100.25},
			{Kind: OpRecv, Name: "MPI_Irecv", Peer: AnySource, Tag: AnyTag, Comm: 0, Count: 16, Walltime: 100.5},
			{Kind: OpProgress, Name: "MPI_Waitall", Walltime: 101},
		}},
		{Rank: 3, Events: nil},
		{Rank: 7, Events: []Event{
			{Kind: OpCollective, Name: "MPI_Allreduce", Count: 1, Walltime: 0},
			{Kind: OpOneSided, Name: "MPI_Put", Peer: 0, Walltime: 1e-9},
			{Kind: OpOther, Name: "MPI_Init", Walltime: -1.5},
			{Kind: OpSend, Name: "MPI_Isend", Peer: 0, Tag: 1 << 20, Comm: -3, Count: 0, Walltime: 1e12},
		}},
	}}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	orig := codecTrace()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", orig, got)
	}
}

func TestBinaryCodecEmptyTrace(t *testing.T) {
	orig := &Trace{App: ""}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "" || got.NumRanks() != 0 {
		t.Fatalf("empty trace decoded as %+v", got)
	}
}

func TestDecodeBinaryRejectsForeignInput(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("not a cache at all, definitely longer than the magic"),
		append([]byte{'T', 'R', 'C', 'B', 'I', 'N', 0, 99}, 0), // future version
	} {
		if _, err := DecodeBinary(data); !errors.Is(err, ErrNotBinaryCache) {
			t.Errorf("DecodeBinary(%q) err = %v, want ErrNotBinaryCache", data, err)
		}
	}
}

func TestDecodeBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, codecTrace()); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every strict prefix beyond the magic must fail loudly, never panic
	// or silently succeed.
	for n := len(binMagic); n < len(whole); n++ {
		tr, err := DecodeBinary(whole[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully: %+v", n, tr)
		}
	}
}

func TestGobCacheFallback(t *testing.T) {
	dir := t.TempDir()
	writeTraceDir(t, dir)
	orig, err := ParseDir(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	// A cache left behind by an earlier version must still load…
	if err := saveGobCache(dir, orig); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCache(dir)
	if err != nil || !ok {
		t.Fatalf("gob fallback: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("gob cache decoded differently")
	}
	// …and the binary format must win once both exist.
	if err := SaveCache(dir, orig); err != nil {
		t.Fatal(err)
	}
	path, _, ok, err := statCache(dir)
	if err != nil || !ok {
		t.Fatalf("statCache: ok=%v err=%v", ok, err)
	}
	if filepath.Base(path) != cacheName {
		t.Fatalf("statCache preferred %s", path)
	}
	if _, ok, err := LoadCache(dir); err != nil || !ok {
		t.Fatalf("binary cache: ok=%v err=%v", ok, err)
	}
}

func TestLoadCacheSurfacesStatErrors(t *testing.T) {
	// A plain file where a directory is expected makes os.Stat fail with
	// ENOTDIR — a real error, which must not be misread as "no cache"
	// (the old behaviour swallowed everything but success).
	dir := t.TempDir()
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := LoadCache(filepath.Join(file, "sub")); err == nil || ok {
		t.Fatalf("stat error swallowed: ok=%v err=%v", ok, err)
	}
}

func TestLoadCacheUnknownVersionIsMiss(t *testing.T) {
	dir := t.TempDir()
	writeTraceDir(t, dir)
	future := append([]byte{'T', 'R', 'C', 'B', 'I', 'N', 0, 99}, []byte("payload")...)
	if err := os.WriteFile(cachePath(dir), future, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, ok, err := LoadCache(dir)
	if err != nil || ok || tr != nil {
		t.Fatalf("future-version cache: tr=%v ok=%v err=%v", tr, ok, err)
	}
	// Load must recover by re-parsing and overwriting the cache.
	if _, err := Load(dir, "test"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := LoadCache(dir); err != nil || !ok {
		t.Fatalf("cache not refreshed: ok=%v err=%v", ok, err)
	}
}

func TestCorruptBinaryCacheErrors(t *testing.T) {
	dir := t.TempDir()
	writeTraceDir(t, dir)
	tr, err := ParseDir(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := os.WriteFile(cachePath(dir), data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := LoadCache(dir); err == nil || ok {
		t.Fatalf("truncated cache accepted: ok=%v err=%v", ok, err)
	}
}
