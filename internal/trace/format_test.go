package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{App: "fmt-test", Ranks: []RankTrace{
		{Rank: 0, Events: []Event{
			{Kind: OpRecv, Name: "MPI_Irecv", Peer: 1, Tag: 3, Comm: 0, Count: 8, Walltime: 0.5},
			{Kind: OpRecv, Name: "MPI_Irecv", Peer: AnySource, Tag: AnyTag, Comm: 1, Count: 4, Walltime: 0.6},
			{Kind: OpProgress, Name: "MPI_Waitall", Walltime: 0.9},
		}},
		{Rank: 1, Events: []Event{
			{Kind: OpSend, Name: "MPI_Isend", Peer: 0, Tag: 3, Comm: 0, Count: 8, Walltime: 0.7},
			{Kind: OpCollective, Name: "MPI_Allreduce", Walltime: 0.95},
		}},
	}}
}

func TestFormatRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, f := range Formats() {
		names[f.Name()] = true
	}
	if !names["dumpi"] || !names["jsonl"] {
		t.Fatalf("registry missing built-ins: %v", names)
	}
	if _, ok := FormatByName("dumpi"); !ok {
		t.Fatal("FormatByName(dumpi) failed")
	}
	if _, ok := FormatByName("nope"); ok {
		t.Fatal("FormatByName invented a format")
	}
}

func TestFormatsRoundTripEquivalently(t *testing.T) {
	orig := sampleTrace()
	for _, fname := range []string{"dumpi", "jsonl"} {
		t.Run(fname, func(t *testing.T) {
			f, _ := FormatByName(fname)
			for ri := range orig.Ranks {
				var buf bytes.Buffer
				if err := f.Write(&buf, &orig.Ranks[ri]); err != nil {
					t.Fatal(err)
				}
				got, err := f.Parse(&buf, orig.Ranks[ri].Rank)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Events) != len(orig.Ranks[ri].Events) {
					t.Fatalf("rank %d: %d events, want %d", ri, len(got.Events), len(orig.Ranks[ri].Events))
				}
				for i, e := range got.Events {
					o := orig.Ranks[ri].Events[i]
					if e.Kind != o.Kind || e.Name != o.Name {
						t.Fatalf("event %d: %+v != %+v", i, e, o)
					}
					if e.Kind == OpSend || e.Kind == OpRecv {
						if e.Peer != o.Peer || e.Tag != o.Tag || e.Comm != o.Comm || e.Count != o.Count {
							t.Fatalf("event %d fields: %+v != %+v", i, e, o)
						}
					}
				}
			}
		})
	}
}

func TestWriteDirFormatAndAutodetect(t *testing.T) {
	orig := sampleTrace()
	for _, fname := range []string{"dumpi", "jsonl"} {
		dir := t.TempDir()
		if err := WriteDirFormat(dir, orig, fname); err != nil {
			t.Fatalf("%s: %v", fname, err)
		}
		got, err := LoadDir(dir, "fmt-test")
		if err != nil {
			t.Fatalf("%s: %v", fname, err)
		}
		if got.NumRanks() != 2 || got.NumEvents() != orig.NumEvents() {
			t.Fatalf("%s: autodetected load got %d ranks / %d events",
				fname, got.NumRanks(), got.NumEvents())
		}
	}
	if err := WriteDirFormat(t.TempDir(), orig, "nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := LoadDir(t.TempDir(), "x"); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	f, _ := FormatByName("jsonl")
	if _, err := f.Parse(strings.NewReader("{not json\n"), 0); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := f.Parse(strings.NewReader(`{"t":1.0}`+"\n"), 0); err == nil {
		t.Fatal("missing op accepted")
	}
	// Blank lines are tolerated.
	rt, err := f.Parse(strings.NewReader("\n"+`{"op":"MPI_Wait","t":1}`+"\n\n"), 0)
	if err != nil || len(rt.Events) != 1 {
		t.Fatalf("blank-line handling: %v %d", err, len(rt.Events))
	}
}

func TestJSONLFileMatch(t *testing.T) {
	f, _ := FormatByName("jsonl")
	if r, ok := f.MatchFile("jsonl-App-0012.jsonl"); !ok || r != 12 {
		t.Fatalf("match = %d %v", r, ok)
	}
	if _, ok := f.MatchFile("dumpi-App-0012.txt"); ok {
		t.Fatal("jsonl matched a dumpi file")
	}
}
