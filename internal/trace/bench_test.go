package trace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"
)

// benchCacheTrace synthesizes a cache-sized workload: 32 ranks × 8k events
// with the name repetition and field ranges real DUMPI traces show.
func benchCacheTrace() *Trace {
	names := []struct {
		kind OpKind
		name string
	}{
		{OpRecv, "MPI_Irecv"},
		{OpSend, "MPI_Isend"},
		{OpProgress, "MPI_Waitall"},
		{OpCollective, "MPI_Allreduce"},
	}
	t := &Trace{App: "cache-bench", Ranks: make([]RankTrace, 32)}
	for r := range t.Ranks {
		t.Ranks[r].Rank = int32(r)
		events := make([]Event, 8192)
		for i := range events {
			n := names[i%len(names)]
			events[i] = Event{
				Kind:     n.kind,
				Name:     n.name,
				Peer:     int32((r + i) % 32),
				Tag:      int32(i % 97),
				Comm:     int32(i % 3),
				Count:    int32(64 + i%1024),
				Walltime: 100 + float64(i)*1e-5,
			}
		}
		t.Ranks[r].Events = events
	}
	return t
}

// BenchmarkCacheLoad compares decoding the §V-A binary cache in the legacy
// reflection-driven gob format against the versioned varint codec.
func BenchmarkCacheLoad(b *testing.B) {
	tr := benchCacheTrace()

	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(tr); err != nil {
		b.Fatal(err)
	}
	var binBuf bytes.Buffer
	if err := EncodeBinary(&binBuf, tr); err != nil {
		b.Fatal(err)
	}

	b.Run(fmt.Sprintf("gob-%dKiB", gobBuf.Len()/1024), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := new(Trace)
			if err := gob.NewDecoder(bytes.NewReader(gobBuf.Bytes())).Decode(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("binary-%dKiB", binBuf.Len()/1024), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBinary(binBuf.Bytes()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCacheSave(b *testing.B) {
	tr := benchCacheTrace()
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := EncodeBinary(&buf, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}
