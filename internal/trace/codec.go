package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
)

// Binary cache codec, version 1. The §V-A cache exists to make the re-run
// path fast ("parsing ... is the most time-consuming step"); gob's
// reflection-driven decode left most of that win on the table. The format
// here is a length-prefixed, varint-packed layout:
//
//	magic    8 bytes  "TRCBIN" + 0x00 + version
//	app      uvarint length + bytes
//	names    uvarint count, then per name: uvarint length + bytes
//	ranks    uvarint count, then per rank:
//	  rank       varint (zigzag)
//	  numEvents  uvarint
//	  blockLen   uvarint — byte length of the event block that follows
//	  block      per event: kind byte, name index uvarint, then
//	             peer/tag/comm/count varints and 8-byte LE float64 walltime
//
// Event names (MPI function names) repeat massively, so they are interned
// in one table. Rank blocks carry their byte length so a loader can slice
// the file into independent blocks and decode them in parallel, mirroring
// the per-destination-rank sharding of the analyzer. Bumping the version
// byte invalidates old caches cleanly: a reader seeing an unknown magic or
// version reports ErrNotBinaryCache and the caller re-parses.

// binMagic identifies version 1 of the binary cache format.
var binMagic = [8]byte{'T', 'R', 'C', 'B', 'I', 'N', 0, 1}

// ErrNotBinaryCache reports that the input does not start with a known
// binary-cache magic — it is some other file (e.g. a legacy gob cache) or
// a future version, and should be treated as a cache miss, not corruption.
var ErrNotBinaryCache = errors.New("trace: not a binary cache")

// EncodeBinary writes t in the binary cache format.
func EncodeBinary(w io.Writer, t *Trace) error {
	names := make([]string, 0, 32)
	nameIdx := make(map[string]uint64, 32)
	for ri := range t.Ranks {
		for _, e := range t.Ranks[ri].Events {
			if _, ok := nameIdx[e.Name]; !ok {
				nameIdx[e.Name] = uint64(len(names))
				names = append(names, e.Name)
			}
		}
	}

	buf := make([]byte, 0, 64+16*t.NumEvents())
	buf = append(buf, binMagic[:]...)
	buf = appendLenString(buf, t.App)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = appendLenString(buf, n)
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.Ranks)))

	var block []byte
	for ri := range t.Ranks {
		rt := &t.Ranks[ri]
		block = block[:0]
		for _, e := range rt.Events {
			block = append(block, byte(e.Kind))
			block = binary.AppendUvarint(block, nameIdx[e.Name])
			block = binary.AppendVarint(block, int64(e.Peer))
			block = binary.AppendVarint(block, int64(e.Tag))
			block = binary.AppendVarint(block, int64(e.Comm))
			block = binary.AppendVarint(block, int64(e.Count))
			block = binary.LittleEndian.AppendUint64(block, math.Float64bits(e.Walltime))
		}
		buf = binary.AppendVarint(buf, int64(rt.Rank))
		buf = binary.AppendUvarint(buf, uint64(len(rt.Events)))
		buf = binary.AppendUvarint(buf, uint64(len(block)))
		buf = append(buf, block...)
	}
	_, err := w.Write(buf)
	return err
}

func appendLenString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// byteReader walks an in-memory buffer with truncation checking.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: binary cache truncated at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: binary cache truncated at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.data)-r.off) {
		return nil, fmt.Errorf("trace: binary cache truncated at offset %d (need %d bytes)", r.off, n)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *byteReader) lenString() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DecodeBinary parses a binary cache image. Rank blocks are decoded in
// parallel on a GOMAXPROCS-wide pool. Inputs that do not carry the v1
// magic yield ErrNotBinaryCache.
func DecodeBinary(data []byte) (*Trace, error) {
	if len(data) < len(binMagic) || string(data[:len(binMagic)]) != string(binMagic[:]) {
		return nil, ErrNotBinaryCache
	}
	r := &byteReader{data: data, off: len(binMagic)}

	t := new(Trace)
	var err error
	if t.App, err = r.lenString(); err != nil {
		return nil, err
	}
	nNames, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nNames > uint64(len(data)) {
		return nil, fmt.Errorf("trace: binary cache corrupt: %d names", nNames)
	}
	names := make([]string, nNames)
	for i := range names {
		if names[i], err = r.lenString(); err != nil {
			return nil, err
		}
	}

	nRanks, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nRanks > uint64(len(data)) {
		return nil, fmt.Errorf("trace: binary cache corrupt: %d ranks", nRanks)
	}
	t.Ranks = make([]RankTrace, nRanks)
	type blockRef struct {
		events uint64
		data   []byte
	}
	blocks := make([]blockRef, nRanks)
	for i := range blocks {
		rank, err := r.varint()
		if err != nil {
			return nil, err
		}
		nEvents, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		blockLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		block, err := r.bytes(blockLen)
		if err != nil {
			return nil, err
		}
		t.Ranks[i].Rank = int32(rank)
		blocks[i] = blockRef{events: nEvents, data: block}
	}

	errs := make([]error, nRanks)
	runDecodePool(int(nRanks), func(i int) {
		t.Ranks[i].Events, errs[i] = decodeEventBlock(blocks[i].data, blocks[i].events, names)
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return t, nil
}

// decodeEventBlock parses one rank's event block.
func decodeEventBlock(block []byte, nEvents uint64, names []string) ([]Event, error) {
	if nEvents == 0 {
		return nil, nil
	}
	if nEvents > uint64(len(block)) {
		return nil, fmt.Errorf("trace: binary cache corrupt: %d events in %d-byte block", nEvents, len(block))
	}
	r := &byteReader{data: block}
	events := make([]Event, nEvents)
	for i := range events {
		e := &events[i]
		kind, err := r.bytes(1)
		if err != nil {
			return nil, err
		}
		e.Kind = OpKind(kind[0])
		nameIdx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nameIdx >= uint64(len(names)) {
			return nil, fmt.Errorf("trace: binary cache corrupt: name index %d of %d", nameIdx, len(names))
		}
		e.Name = names[nameIdx]
		fields := [4]*int32{&e.Peer, &e.Tag, &e.Comm, &e.Count}
		for _, f := range fields {
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			*f = int32(v)
		}
		wt, err := r.bytes(8)
		if err != nil {
			return nil, err
		}
		e.Walltime = math.Float64frombits(binary.LittleEndian.Uint64(wt))
	}
	return events, nil
}

// runDecodePool runs n independent decode tasks on up to GOMAXPROCS
// goroutines.
func runDecodePool(n int, task func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				task(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
