package trace

import (
	"strings"
	"testing"
)

// FuzzParseDUMPI hardens the trace parser against arbitrary input: it must
// never panic or report events with malformed classification.
func FuzzParseDUMPI(f *testing.F) {
	f.Add(sampleDUMPI)
	f.Add("")
	f.Add("MPI_Isend entering at walltime 1.0, cputime 0 seconds in thread 0.\n")
	f.Add("int dest=5\nint tag=-1\n")
	f.Add("MPI_Irecv entering at walltime 1e9, cputime 0 seconds in thread 0.\nint source=MPI_ANY_SOURCE\n")
	f.Add(strings.Repeat("MPI_Wait entering at walltime 2.0, cputime 0 seconds in thread 0.\n", 10))

	f.Fuzz(func(t *testing.T, input string) {
		rt, err := ParseDUMPI(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		for _, e := range rt.Events {
			if e.Name == "" {
				t.Fatal("event without a name")
			}
			if Classify(e.Name) != e.Kind {
				t.Fatalf("event %q classified %v, Classify says %v", e.Name, e.Kind, Classify(e.Name))
			}
		}
	})
}
