package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := map[string]OpKind{
		"MPI_Isend":     OpSend,
		"MPI_Send":      OpSend,
		"MPI_Irecv":     OpRecv,
		"MPI_Recv":      OpRecv,
		"MPI_Waitall":   OpProgress,
		"MPI_Test":      OpProgress,
		"MPI_Allreduce": OpCollective,
		"MPI_Barrier":   OpCollective,
		"MPI_Get":       OpOneSided,
		"MPI_Put":       OpOneSided,
		"MPI_Init":      OpOther,
		"MPI_Finalize":  OpOther,
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpSend: "send", OpRecv: "recv", OpProgress: "progress",
		OpCollective: "collective", OpOneSided: "one-sided", OpOther: "other",
		OpKind(99): "OpKind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d = %q", k, got)
		}
	}
}

const sampleDUMPI = `MPI_Init entering at walltime 100.0000001, cputime 0.01 seconds in thread 0.
int argc=1
MPI_Init returning at walltime 100.0000002, cputime 0.01 seconds in thread 0.
MPI_Irecv entering at walltime 100.1000000, cputime 0.02 seconds in thread 0.
int count=512
datatype datatype=2 (MPI_CHAR)
int source=3
int tag=77
comm comm=2 (MPI_COMM_WORLD)
request request=[12]
MPI_Irecv returning at walltime 100.1000100, cputime 0.02 seconds in thread 0.
MPI_Irecv entering at walltime 100.2000000, cputime 0.02 seconds in thread 0.
int count=16
datatype datatype=2 (MPI_CHAR)
int source=MPI_ANY_SOURCE
int tag=MPI_ANY_TAG
comm comm=0 (MPI_COMM_WORLD)
request request=[13]
MPI_Irecv returning at walltime 100.2000100, cputime 0.02 seconds in thread 0.
MPI_Isend entering at walltime 100.3000000, cputime 0.03 seconds in thread 0.
int count=512
datatype datatype=2 (MPI_CHAR)
int dest=5
int tag=77
comm comm=2 (MPI_COMM_WORLD)
request request=[14]
MPI_Isend returning at walltime 100.3000100, cputime 0.03 seconds in thread 0.
MPI_Waitall entering at walltime 100.4000000, cputime 0.04 seconds in thread 0.
int count=3
MPI_Waitall returning at walltime 100.4000100, cputime 0.04 seconds in thread 0.
MPI_Allreduce entering at walltime 100.5000000, cputime 0.05 seconds in thread 0.
int count=1
MPI_Allreduce returning at walltime 100.5000100, cputime 0.05 seconds in thread 0.
`

func TestParseDUMPI(t *testing.T) {
	rt, err := ParseDUMPI(strings.NewReader(sampleDUMPI), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Rank != 4 {
		t.Fatalf("rank = %d", rt.Rank)
	}
	if len(rt.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(rt.Events))
	}
	recv := rt.Events[1]
	if recv.Kind != OpRecv || recv.Peer != 3 || recv.Tag != 77 || recv.Comm != 2 || recv.Count != 512 {
		t.Fatalf("recv event = %+v", recv)
	}
	if recv.Walltime != 100.1 {
		t.Fatalf("walltime = %v", recv.Walltime)
	}
	wild := rt.Events[2]
	if wild.Peer != AnySource || wild.Tag != AnyTag {
		t.Fatalf("wildcard event = %+v", wild)
	}
	send := rt.Events[3]
	if send.Kind != OpSend || send.Peer != 5 || send.Tag != 77 {
		t.Fatalf("send event = %+v", send)
	}
	if rt.Events[4].Kind != OpProgress || rt.Events[5].Kind != OpCollective {
		t.Fatalf("tail events misclassified: %v %v", rt.Events[4].Kind, rt.Events[5].Kind)
	}
}

func TestParseDUMPIBadWalltime(t *testing.T) {
	_, err := ParseDUMPI(strings.NewReader("MPI_Send entering at walltime xx, cputime 0 seconds in thread 0.\n"), 0)
	// The regexp only matches numeric walltimes, so this line is simply not
	// an enter record; no events and no error.
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig := &RankTrace{Rank: 2, Events: []Event{
		{Kind: OpRecv, Name: "MPI_Irecv", Peer: AnySource, Tag: AnyTag, Comm: 1, Count: 64, Walltime: 1.5},
		{Kind: OpRecv, Name: "MPI_Irecv", Peer: 7, Tag: 3, Comm: 0, Count: 8, Walltime: 1.6},
		{Kind: OpSend, Name: "MPI_Isend", Peer: 7, Tag: 3, Comm: 0, Count: 8, Walltime: 1.7},
		{Kind: OpProgress, Name: "MPI_Waitall", Walltime: 1.8},
		{Kind: OpCollective, Name: "MPI_Allreduce", Walltime: 1.9},
	}}
	var buf bytes.Buffer
	if err := WriteDUMPI(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseDUMPI(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("round trip: %d events, want %d", len(got.Events), len(orig.Events))
	}
	for i, e := range got.Events {
		o := orig.Events[i]
		if e.Kind != o.Kind || e.Name != o.Name {
			t.Fatalf("event %d: %+v != %+v", i, e, o)
		}
		if e.Kind == OpSend || e.Kind == OpRecv {
			if e.Peer != o.Peer || e.Tag != o.Tag || e.Comm != o.Comm || e.Count != o.Count {
				t.Fatalf("event %d fields: %+v != %+v", i, e, o)
			}
		}
	}
}

func TestMix(t *testing.T) {
	tr := &Trace{Ranks: []RankTrace{{Events: []Event{
		{Kind: OpSend}, {Kind: OpRecv}, {Kind: OpProgress},
		{Kind: OpCollective}, {Kind: OpOneSided}, {Kind: OpOther},
	}}}}
	m := tr.Mix()
	if m.P2P != 2 || m.Progress != 1 || m.Collective != 1 || m.OneSided != 1 || m.Other != 1 {
		t.Fatalf("mix = %+v", m)
	}
	if m.Total() != 6 || m.CommTotal() != 4 {
		t.Fatalf("totals: %d %d", m.Total(), m.CommTotal())
	}
	if tr.NumRanks() != 1 || tr.NumEvents() != 6 {
		t.Fatalf("counters: %d %d", tr.NumRanks(), tr.NumEvents())
	}
}

func writeTraceDir(t *testing.T, dir string) {
	t.Helper()
	tr := &Trace{App: "test", Ranks: []RankTrace{
		{Rank: 0, Events: []Event{
			{Kind: OpSend, Name: "MPI_Isend", Peer: 1, Tag: 5, Count: 4, Walltime: 1.0},
		}},
		{Rank: 1, Events: []Event{
			{Kind: OpRecv, Name: "MPI_Irecv", Peer: 0, Tag: 5, Count: 4, Walltime: 0.9},
			{Kind: OpProgress, Name: "MPI_Wait", Walltime: 1.1},
		}},
	}}
	if err := WriteDir(dir, tr); err != nil {
		t.Fatal(err)
	}
}

func TestParseDir(t *testing.T) {
	dir := t.TempDir()
	writeTraceDir(t, dir)
	tr, err := ParseDir(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 2 {
		t.Fatalf("ranks = %d", tr.NumRanks())
	}
	if tr.Ranks[0].Rank != 0 || tr.Ranks[1].Rank != 1 {
		t.Fatal("rank order wrong")
	}
	if len(tr.Ranks[1].Events) != 2 {
		t.Fatalf("rank 1 events = %d", len(tr.Ranks[1].Events))
	}
}

func TestParseDirEmpty(t *testing.T) {
	if _, err := ParseDir(t.TempDir(), "x"); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := ParseDir("/nonexistent-path-zz", "x"); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeTraceDir(t, dir)

	// First load parses and drops a cache.
	tr, err := Load(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, cacheName)); err != nil {
		t.Fatal("cache file not written")
	}
	// Second load must come from the cache and be identical.
	tr2, err := Load(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumEvents() != tr.NumEvents() || tr2.NumRanks() != tr.NumRanks() {
		t.Fatal("cached trace differs")
	}

	// Touching a rank file must invalidate the cache.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if rankFileRe.MatchString(e.Name()) {
			now := os.Getpid() // arbitrary; just rewrite to bump mtime
			_ = now
			path := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(path)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			// Ensure mtime strictly after cache by setting it forward.
			fi, _ := os.Stat(filepath.Join(dir, cacheName))
			bump := fi.ModTime().Add(time.Millisecond)
			_ = os.Chtimes(path, bump, bump)
			break
		}
	}
	if _, ok, _ := LoadCache(dir); ok {
		t.Fatal("stale cache accepted")
	}
	// Load re-parses and refreshes (wait out the mtime bump so the fresh
	// cache is newer than the touched rank file).
	time.Sleep(5 * time.Millisecond)
	if _, err := Load(dir, "test"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := LoadCache(dir); !ok {
		t.Fatal("cache not refreshed")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("BoxLib CNS/2"); got != "BoxLib_CNS_2" {
		t.Fatalf("sanitize = %q", got)
	}
}
