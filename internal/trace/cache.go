package trace

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// cacheName is the binary cache file the parser drops next to a trace
// directory (§V-A: the parser "verifies the existence of a binary cache for
// the given input trace" and skips re-parsing when one is found).
const cacheName = ".trace-cache.gob"

// cachePath returns the cache location for a trace directory.
func cachePath(dir string) string { return filepath.Join(dir, cacheName) }

// SaveCache writes the binary cache for a parsed trace.
func SaveCache(dir string, t *Trace) error {
	f, err := os.Create(cachePath(dir))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(t); err != nil {
		return fmt.Errorf("trace: encoding cache: %w", err)
	}
	return nil
}

// LoadCache reads a binary cache if present and fresh (at least as new as
// every rank file in the directory). ok is false when the cache is absent
// or stale.
func LoadCache(dir string) (t *Trace, ok bool, err error) {
	st, err := os.Stat(cachePath(dir))
	if err != nil {
		return nil, false, nil // no cache
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false, err
	}
	for _, e := range entries {
		if e.IsDir() || !anyFormatFile(e.Name()) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, false, err
		}
		if fi.ModTime().After(st.ModTime()) {
			return nil, false, nil // stale
		}
	}
	f, err := os.Open(cachePath(dir))
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	t = new(Trace)
	if err := gob.NewDecoder(f).Decode(t); err != nil {
		return nil, false, fmt.Errorf("trace: decoding cache: %w", err)
	}
	return t, true, nil
}

// anyFormatFile reports whether name belongs to any registered format.
func anyFormatFile(name string) bool {
	for _, f := range Formats() {
		if _, ok := f.MatchFile(name); ok {
			return true
		}
	}
	return false
}

// Load parses the trace in dir (format auto-detected), consulting and
// refreshing the binary cache — the full §V-A parsing stage.
func Load(dir, app string) (*Trace, error) {
	if t, ok, err := LoadCache(dir); err == nil && ok {
		return t, nil
	} else if err != nil {
		return nil, err
	}
	t, err := LoadDir(dir, app)
	if err != nil {
		return nil, err
	}
	if err := SaveCache(dir, t); err != nil {
		return nil, err
	}
	return t, nil
}
