package trace

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Cache file names the parser drops next to a trace directory (§V-A: the
// parser "verifies the existence of a binary cache for the given input
// trace" and skips re-parsing when one is found). New caches are written
// in the versioned binary format (codec.go); legacy gob caches written by
// earlier versions are still read, never written.
const (
	cacheName    = ".trace-cache.bin"
	cacheGobName = ".trace-cache.gob"
)

// cachePath returns the binary cache location for a trace directory.
func cachePath(dir string) string { return filepath.Join(dir, cacheName) }

// SaveCache writes the binary cache for a parsed trace.
func SaveCache(dir string, t *Trace) error {
	f, err := os.Create(cachePath(dir))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := EncodeBinary(f, t); err != nil {
		return fmt.Errorf("trace: encoding cache: %w", err)
	}
	return nil
}

// statCache finds the freshest cache file for dir, preferring the binary
// format over a legacy gob. ok is false only when neither exists; any
// other stat failure (permissions, ENOTDIR, I/O) is a real error, not a
// cache miss.
func statCache(dir string) (path string, st os.FileInfo, ok bool, err error) {
	for _, name := range []string{cacheName, cacheGobName} {
		p := filepath.Join(dir, name)
		fi, err := os.Stat(p)
		if err == nil {
			return p, fi, true, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return "", nil, false, err
		}
	}
	return "", nil, false, nil
}

// LoadCache reads a binary cache if present and fresh (at least as new as
// every rank file in the directory). ok is false when the cache is absent
// or stale.
func LoadCache(dir string) (t *Trace, ok bool, err error) {
	path, st, ok, err := statCache(dir)
	if err != nil || !ok {
		return nil, false, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false, err
	}
	for _, e := range entries {
		if e.IsDir() || !anyFormatFile(e.Name()) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, false, err
		}
		if fi.ModTime().After(st.ModTime()) {
			return nil, false, nil // stale
		}
	}
	if filepath.Base(path) == cacheGobName {
		return loadGobCache(path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	t, err = DecodeBinary(data)
	if errors.Is(err, ErrNotBinaryCache) {
		return nil, false, nil // unknown version: re-parse and overwrite
	}
	if err != nil {
		return nil, false, fmt.Errorf("trace: decoding cache: %w", err)
	}
	return t, true, nil
}

// loadGobCache decodes a legacy gob cache.
func loadGobCache(path string) (*Trace, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	t := new(Trace)
	if err := gob.NewDecoder(f).Decode(t); err != nil {
		return nil, false, fmt.Errorf("trace: decoding cache: %w", err)
	}
	return t, true, nil
}

// saveGobCache writes a legacy-format cache. Kept only so tests and
// benchmarks can produce the caches earlier versions left behind.
func saveGobCache(dir string, t *Trace) error {
	f, err := os.Create(filepath.Join(dir, cacheGobName))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(t); err != nil {
		return fmt.Errorf("trace: encoding cache: %w", err)
	}
	return nil
}

// anyFormatFile reports whether name belongs to any registered format.
func anyFormatFile(name string) bool {
	for _, f := range Formats() {
		if _, ok := f.MatchFile(name); ok {
			return true
		}
	}
	return false
}

// Load parses the trace in dir (format auto-detected), consulting and
// refreshing the binary cache — the full §V-A parsing stage.
func Load(dir, app string) (*Trace, error) {
	if t, ok, err := LoadCache(dir); err == nil && ok {
		return t, nil
	} else if err != nil {
		return nil, err
	}
	t, err := LoadDir(dir, app)
	if err != nil {
		return nil, err
	}
	if err := SaveCache(dir, t); err != nil {
		return nil, err
	}
	return t, nil
}
