package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
)

// jsonlFormat is a compact native trace format: one JSON object per line,
// one file per rank (…-NNNN.jsonl). It exists both as a practical compact
// alternative to DUMPI text and as the demonstration of the §V-A claim
// that further formats slot into the parser easily.
type jsonlFormat struct{}

// jsonlEvent is the wire shape of one event.
type jsonlEvent struct {
	Op    string  `json:"op"`
	T     float64 `json:"t"`
	Peer  int32   `json:"peer,omitempty"`
	Tag   int32   `json:"tag,omitempty"`
	Comm  int32   `json:"comm,omitempty"`
	Count int32   `json:"count,omitempty"`
}

func (jsonlFormat) Name() string { return "jsonl" }

var jsonlFileRe = regexp.MustCompile(`-(\d+)\.jsonl$`)

func (jsonlFormat) MatchFile(name string) (int32, bool) {
	m := jsonlFileRe.FindStringSubmatch(name)
	if m == nil {
		return 0, false
	}
	r, err := strconv.Atoi(m[1])
	if err != nil {
		return 0, false
	}
	return int32(r), true
}

func (jsonlFormat) Parse(r io.Reader, rank int32) (*RankTrace, error) {
	rt := &RankTrace{Rank: rank}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		if je.Op == "" {
			return nil, fmt.Errorf("trace: jsonl line %d: missing op", line)
		}
		rt.Events = append(rt.Events, Event{
			Kind:     Classify(je.Op),
			Name:     je.Op,
			Peer:     je.Peer,
			Tag:      je.Tag,
			Comm:     je.Comm,
			Count:    je.Count,
			Walltime: je.T,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rt, nil
}

func (jsonlFormat) Write(w io.Writer, rt *RankTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range rt.Events {
		je := jsonlEvent{Op: e.Name, T: e.Walltime}
		if e.Kind == OpSend || e.Kind == OpRecv {
			je.Peer, je.Tag, je.Comm, je.Count = e.Peer, e.Tag, e.Comm, e.Count
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}
