package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The DUMPI ASCII format (the output of dumpi2ascii, the SST DUMPI trace
// library's converter) records each call as an enter/return pair with the
// call arguments as indented key=value lines:
//
//	MPI_Irecv entering at walltime 8207.0103, cputime 0.0486 seconds in thread 0.
//	int count=512
//	datatype datatype=2 (MPI_CHAR)
//	int source=1
//	int tag=100
//	comm comm=2 (MPI_COMM_WORLD)
//	request request=[12]
//	MPI_Irecv returning at walltime 8207.0104, cputime 0.0487 seconds in thread 0.
//
// The parser extracts the fields matching needs (peer, tag, comm, count,
// walltime) and classifies every call name; symbolic wildcard values
// (MPI_ANY_SOURCE, MPI_ANY_TAG) are accepted alongside numeric ones.

var (
	enterRe = regexp.MustCompile(`^(MPI_\w+) entering at walltime ([0-9.eE+-]+)`)
	fieldRe = regexp.MustCompile(`^\s*\w+ (\w+)=(\[?[-\w.]+\]?)`)
)

// ParseDUMPI reads one rank's DUMPI ASCII stream.
func ParseDUMPI(r io.Reader, rank int32) (*RankTrace, error) {
	rt := &RankTrace{Rank: rank}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var cur *Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if m := enterRe.FindStringSubmatch(line); m != nil {
			wt, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad walltime %q", lineNo, m[2])
			}
			kind := Classify(m[1])
			rt.Events = append(rt.Events, Event{
				Kind: kind, Name: m[1], Walltime: wt,
				Peer: -1, Tag: 0, Comm: 0,
			})
			cur = &rt.Events[len(rt.Events)-1]
			if kind != OpSend && kind != OpRecv {
				cur = nil // arguments only matter for p2p
			}
			continue
		}
		if strings.Contains(line, " returning at walltime ") {
			cur = nil
			continue
		}
		if cur == nil {
			continue
		}
		if m := fieldRe.FindStringSubmatch(line); m != nil {
			key, raw := m[1], strings.Trim(m[2], "[]")
			switch key {
			case "dest", "source":
				cur.Peer = parseRankValue(raw)
			case "tag":
				cur.Tag = parseTagValue(raw)
			case "comm":
				if v, err := strconv.ParseInt(raw, 10, 32); err == nil {
					cur.Comm = int32(v)
				}
			case "count":
				if v, err := strconv.ParseInt(raw, 10, 32); err == nil {
					cur.Count = int32(v)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: rank %d: %w", rank, err)
	}
	return rt, nil
}

func parseRankValue(raw string) int32 {
	if raw == "MPI_ANY_SOURCE" {
		return AnySource
	}
	if v, err := strconv.ParseInt(raw, 10, 32); err == nil {
		return int32(v)
	}
	return AnySource
}

func parseTagValue(raw string) int32 {
	if raw == "MPI_ANY_TAG" {
		return AnyTag
	}
	if v, err := strconv.ParseInt(raw, 10, 32); err == nil {
		return int32(v)
	}
	return AnyTag
}

// rankFileRe matches DUMPI per-rank trace files ("…-0007.txt").
var rankFileRe = regexp.MustCompile(`-(\d+)\.txt$`)

// ParseDir loads every per-rank DUMPI text file in dir, in parallel per
// rank (§V-A: "the parsing is done in parallel in a per-rank fashion").
func ParseDir(dir, app string) (*Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type rankFile struct {
		rank int32
		path string
	}
	var files []rankFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := rankFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		r, _ := strconv.Atoi(m[1])
		files = append(files, rankFile{rank: int32(r), path: filepath.Join(dir, e.Name())})
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("trace: no DUMPI rank files (*-NNNN.txt) in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].rank < files[j].rank })

	t := &Trace{App: app, Ranks: make([]RankTrace, len(files))}
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	for i, f := range files {
		wg.Add(1)
		go func(i int, f rankFile) {
			defer wg.Done()
			fh, err := os.Open(f.path)
			if err != nil {
				errs[i] = err
				return
			}
			defer fh.Close()
			rt, err := ParseDUMPI(fh, f.rank)
			if err != nil {
				errs[i] = err
				return
			}
			t.Ranks[i] = *rt
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteDUMPI emits a rank trace in DUMPI ASCII form, round-trippable
// through ParseDUMPI. Synthetic traces are written this way so the analyzer
// exercises the same parsing path real NERSC traces would.
func WriteDUMPI(w io.Writer, rt *RankTrace) error {
	bw := bufio.NewWriter(w)
	for _, e := range rt.Events {
		fmt.Fprintf(bw, "%s entering at walltime %.7f, cputime 0.0000000 seconds in thread 0.\n",
			e.Name, e.Walltime)
		switch e.Kind {
		case OpSend:
			fmt.Fprintf(bw, "int count=%d\n", e.Count)
			fmt.Fprintf(bw, "datatype datatype=2 (MPI_CHAR)\n")
			fmt.Fprintf(bw, "int dest=%d\n", e.Peer)
			fmt.Fprintf(bw, "int tag=%d\n", e.Tag)
			fmt.Fprintf(bw, "comm comm=%d (user)\n", e.Comm)
			fmt.Fprintf(bw, "request request=[0]\n")
		case OpRecv:
			fmt.Fprintf(bw, "int count=%d\n", e.Count)
			fmt.Fprintf(bw, "datatype datatype=2 (MPI_CHAR)\n")
			if e.Peer == AnySource {
				fmt.Fprintf(bw, "int source=MPI_ANY_SOURCE\n")
			} else {
				fmt.Fprintf(bw, "int source=%d\n", e.Peer)
			}
			if e.Tag == AnyTag {
				fmt.Fprintf(bw, "int tag=MPI_ANY_TAG\n")
			} else {
				fmt.Fprintf(bw, "int tag=%d\n", e.Tag)
			}
			fmt.Fprintf(bw, "comm comm=%d (user)\n", e.Comm)
			fmt.Fprintf(bw, "request request=[0]\n")
		}
		fmt.Fprintf(bw, "%s returning at walltime %.7f, cputime 0.0000000 seconds in thread 0.\n",
			e.Name, e.Walltime+1e-7)
	}
	return bw.Flush()
}

// WriteDir writes every rank of t as a DUMPI text file in dir, named
// dumpi-<app>-NNNN.txt.
func WriteDir(dir string, t *Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range t.Ranks {
		rt := &t.Ranks[i]
		name := fmt.Sprintf("dumpi-%s-%04d.txt", sanitize(t.App), rt.Rank)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := WriteDUMPI(f, rt); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}
