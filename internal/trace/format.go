package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Format is a per-rank trace file format. The paper's analyzer reads DUMPI
// text traces but notes that "the design of the application allows to
// easily add other formats" (§V-A); this interface is that seam. Formats
// self-register their file-name conventions; LoadDir picks the format by
// inspecting the directory.
type Format interface {
	// Name identifies the format ("dumpi", "jsonl", …).
	Name() string
	// MatchFile reports whether a file belongs to this format and, if so,
	// which rank it records.
	MatchFile(name string) (rank int32, ok bool)
	// Parse reads one rank's stream.
	Parse(r io.Reader, rank int32) (*RankTrace, error)
	// Write emits one rank's stream, round-trippable through Parse.
	Write(w io.Writer, rt *RankTrace) error
}

var (
	formatsMu sync.RWMutex
	formats   []Format
)

// RegisterFormat adds a format to the registry. Built-in formats register
// at init; external packages may add more.
func RegisterFormat(f Format) {
	formatsMu.Lock()
	defer formatsMu.Unlock()
	formats = append(formats, f)
}

// Formats returns the registered formats.
func Formats() []Format {
	formatsMu.RLock()
	defer formatsMu.RUnlock()
	return append([]Format(nil), formats...)
}

// FormatByName returns a registered format.
func FormatByName(name string) (Format, bool) {
	for _, f := range Formats() {
		if f.Name() == name {
			return f, true
		}
	}
	return nil, false
}

// detectFormat finds the format owning the most files in dir.
func detectFormat(entries []os.DirEntry) Format {
	best := Format(nil)
	bestN := 0
	for _, f := range Formats() {
		n := 0
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if _, ok := f.MatchFile(e.Name()); ok {
				n++
			}
		}
		if n > bestN {
			best, bestN = f, n
		}
	}
	return best
}

// LoadDir parses every per-rank trace file in dir with the auto-detected
// format, in parallel per rank (§V-A).
func LoadDir(dir, app string) (*Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	f := detectFormat(entries)
	if f == nil {
		return nil, fmt.Errorf("trace: no files of any registered format in %s", dir)
	}
	type rankFile struct {
		rank int32
		path string
	}
	var files []rankFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if rank, ok := f.MatchFile(e.Name()); ok {
			files = append(files, rankFile{rank: rank, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].rank < files[j].rank })

	t := &Trace{App: app, Ranks: make([]RankTrace, len(files))}
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	for i, rf := range files {
		wg.Add(1)
		go func(i int, rf rankFile) {
			defer wg.Done()
			fh, err := os.Open(rf.path)
			if err != nil {
				errs[i] = err
				return
			}
			defer fh.Close()
			rt, err := f.Parse(fh, rf.rank)
			if err != nil {
				errs[i] = err
				return
			}
			t.Ranks[i] = *rt
		}(i, rf)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteDirFormat writes every rank of t into dir using the named format.
func WriteDirFormat(dir string, t *Trace, formatName string) error {
	f, ok := FormatByName(formatName)
	if !ok {
		return fmt.Errorf("trace: unknown format %q", formatName)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range t.Ranks {
		rt := &t.Ranks[i]
		name := fmt.Sprintf("%s-%s-%04d%s", f.Name(), sanitize(t.App), rt.Rank, formatExt(f))
		fh, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := f.Write(fh, rt); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
	}
	return nil
}

func formatExt(f Format) string {
	switch f.Name() {
	case "jsonl":
		return ".jsonl"
	default:
		return ".txt"
	}
}

// dumpiFormat adapts the existing DUMPI reader/writer to the Format seam.
type dumpiFormat struct{}

func (dumpiFormat) Name() string { return "dumpi" }

func (dumpiFormat) MatchFile(name string) (int32, bool) {
	m := rankFileRe.FindStringSubmatch(name)
	if m == nil {
		return 0, false
	}
	r, err := strconv.Atoi(m[1])
	if err != nil {
		return 0, false
	}
	return int32(r), true
}

func (dumpiFormat) Parse(r io.Reader, rank int32) (*RankTrace, error) {
	return ParseDUMPI(r, rank)
}

func (dumpiFormat) Write(w io.Writer, rt *RankTrace) error {
	return WriteDUMPI(w, rt)
}

func init() {
	RegisterFormat(dumpiFormat{})
	RegisterFormat(jsonlFormat{})
}
