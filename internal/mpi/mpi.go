// Package mpi is a miniature MPI point-to-point layer built on the
// simulated RDMA fabric (package rdma) with pluggable message-matching
// engines: traditional on-host linked-list matching (the paper's MPI-CPU
// baseline), DPA-offloaded optimistic tag matching (the contribution,
// packages core + dpa), and a no-matching raw mode (the RDMA-CPU
// reference). It provides communicators, blocking and non-blocking
// send/receive with MPI wildcard semantics, and the eager and rendezvous
// protocols of §IV-B.
//
// A World is a set of in-process ranks fully connected by queue pairs.
// Incoming messages land in per-rank bounce buffers (NIC memory, §IV-A),
// are matched by the configured engine, and complete either by copying the
// eager payload into the user buffer or by issuing an RDMA read to the
// sender's registered buffer followed by an acknowledgement.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dpa"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// Wildcards, re-exported for the public API.
const (
	// AnySource accepts a message from any rank (MPI_ANY_SOURCE).
	AnySource = int(match.AnySource)
	// AnyTag accepts a message with any tag (MPI_ANY_TAG).
	AnyTag = int(match.AnyTag)
)

// internalComm carries library-internal traffic (barriers) and must not be
// used by applications.
const internalComm = match.CommID(-2)

// EngineKind selects the matching engine of a World.
type EngineKind int

const (
	// EngineHost matches on the host CPU with the traditional two-queue
	// linked-list algorithm — Fig. 8 "MPI-CPU".
	EngineHost EngineKind = iota
	// EngineOffload matches on the simulated DPA with optimistic tag
	// matching — Fig. 8 "Optimistic-DPA".
	EngineOffload
	// EngineRaw performs no matching: messages complete pending receives
	// in FIFO order — Fig. 8 "RDMA-CPU" reference. Only the eager protocol
	// and fully specified receives are meaningful in this mode.
	EngineRaw
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case EngineHost:
		return "host-list"
	case EngineOffload:
		return "offload-optimistic"
	case EngineRaw:
		return "raw-rdma"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// Options configures a World.
type Options struct {
	// Engine selects the matching engine (default EngineHost).
	Engine EngineKind
	// EagerLimit is the largest payload sent eagerly (default 1024 bytes);
	// larger messages use the rendezvous protocol.
	EagerLimit int
	// RecvDepth is the number of bounce buffers per rank (default 256).
	RecvDepth int
	// Matcher configures the offload engine (default core.DefaultConfig).
	Matcher core.Config
	// DPA configures the simulated accelerator (offload engine only).
	DPA dpa.Config
	// Cost is the fabric latency model.
	Cost rdma.Cost
	// Faults is the fabric fault plan. An active plan (rdma.FaultPlan
	// with any nonzero rate) arms deterministic fault injection on every
	// QP and enables the reliability sublayer (reliable.go): per-peer
	// sequence numbers, duplicate suppression, reordering repair, and
	// ack/retransmit with capped exponential backoff. The zero plan
	// leaves the fabric lossless and the hot path untouched.
	Faults rdma.FaultPlan
	// RetxTimeout is the reliability retransmission timeout (default
	// 2ms); backoff doubles per retry up to 16x. Only meaningful when
	// Faults is active.
	RetxTimeout time.Duration
	// CoalesceBytes and CoalesceMsgs arm sender-side adaptive coalescing
	// of eager messages (coalesce.go): consecutive eager sends toward one
	// destination are aggregated into a single kindEagerBatch wire frame,
	// flushed when the body reaches CoalesceBytes, when CoalesceMsgs
	// sub-messages are staged, at synchronization points (Wait, Barrier,
	// rendezvous, Close), or on the CoalesceTimeout staleness timer. Both
	// zero (the default) leaves coalescing off and the wire stream
	// byte-identical to earlier versions; arming either knob fills the
	// other with a default (4096 bytes / the frame's message cap).
	CoalesceBytes int
	CoalesceMsgs  int
	// CoalesceTimeout bounds how long a buffered eager message may wait
	// for company (default 200µs). Only meaningful when coalescing is on.
	CoalesceTimeout time.Duration
	// CommInfo declares communicator info objects (§IV-E / §VII) ahead of
	// time: matching assertions to propagate to the offloaded engine, and
	// offload opt-outs. Each offloaded declared communicator is budgeted
	// its own table footprint against DPA memory; a communicator that does
	// not fit falls back to software (host) matching, as §IV-E prescribes.
	CommInfo map[int32]CommInfo
	// Obs configures the world's observability sinks: one per rank (shared
	// by that rank's matching engine, datapath, and reliability sublayer)
	// plus one for the fabric's fault injectors. The zero value records
	// counters and histograms only; set Obs.TraceEvents (or use
	// obs.Options{}.Tracing()) to also capture event rings exportable as
	// Chrome trace JSON via ObsSinks + obs.WriteTrace.
	Obs obs.Options
}

// CommInfo mirrors an MPI communicator info object: matching assertions
// (mpi_assert_no_any_source / no_any_tag / allow_overtaking) plus an
// explicit offload opt-out.
type CommInfo struct {
	// Hints are propagated to the offloaded matching engine.
	Hints core.Hints
	// NoOffload forces software (host) tag matching for this communicator.
	NoOffload bool
}

func (o *Options) fill() {
	if o.EagerLimit == 0 {
		o.EagerLimit = 1024
	}
	if o.RecvDepth == 0 {
		o.RecvDepth = 256
	}
	if o.Matcher == (core.Config{}) {
		o.Matcher = core.DefaultConfig()
	}
	if o.coalesceArmed() {
		if o.CoalesceBytes <= 0 {
			o.CoalesceBytes = 4096
		}
		if o.CoalesceMsgs <= 1 {
			o.CoalesceMsgs = maxBatchMsgs
		}
		if o.CoalesceTimeout <= 0 {
			o.CoalesceTimeout = 200 * time.Microsecond
		}
	}
}

// coalesceArmed reports whether eager coalescing is on. A message count of
// 1 cannot batch anything, so only counts above 1 (or a byte threshold)
// arm it.
func (o *Options) coalesceArmed() bool {
	return o.CoalesceBytes > 0 || o.CoalesceMsgs > 1
}

// frameCap is the staged-frame (and bounce-buffer) capacity when
// coalescing is armed: at least the byte threshold, and always enough for
// one worst-case eager-limit sub-record so any eligible message fits an
// empty frame.
func (o *Options) frameCap() int {
	body := o.CoalesceBytes
	if min := subRecordSize(o.EagerLimit); body < min {
		body = min
	}
	return headerSize + body
}

// ErrTruncated is reported when a message is longer than the posted buffer.
var ErrTruncated = errors.New("mpi: message truncated (buffer too small)")

// ErrClosed is reported by operations on a closed World: a second Close, a
// Send/Isend/Recv/Irecv issued after Close, and any Wait still blocked when
// Close runs. Long-lived hosts (cmd/matchd) lean on this contract — a
// tenant job torn down mid-flight must observe a typed error, never a hang
// or a panic, and tearing the same world down twice must be harmless.
var ErrClosed = errors.New("mpi: world closed")

// World is a set of communicating ranks. NewWorld builds the classic
// in-process world: every rank lives in this process, fully connected by
// fabric QPs. NewNetWorld builds an out-of-process world: this process
// hosts exactly one rank and an rdma.Transport (e.g. netfabric TCP/UDP)
// carries the wire traffic to peer processes.
type World struct {
	opts Options
	n    int // job size (== len(procs) only for in-process worlds)

	// Exactly one of fabric/trans is non-nil: the in-process channel fabric
	// or the pluggable socket transport of a networked world.
	fabric *rdma.Fabric
	trans  rdma.Transport

	procs []*Proc

	// recvEPs holds the receive side of every in-process QP pair. Each end
	// of a pair runs its own delivery goroutine and only stops on its own
	// Close, so teardown must close both: the send ends via proc.sendEP and
	// these.
	recvEPs []*rdma.QP

	// envPool recycles matching envelopes across all ranks' arrival paths;
	// slab recycles every variable-length scratch buffer — eager/frame wire
	// staging, stabilized unexpected payloads, reliability retransmit
	// copies — through size-classed pools (slab.go). Together they make the
	// steady-state send and arrival paths allocation-free.
	envPool match.EnvelopePool
	slab    slab
	// recvs recycles the match.Recv records irecv hands to the engines.
	recvs sync.Pool

	closeOnce sync.Once
	// closed is closed at the top of Close, before teardown begins: new
	// operations observe it and return ErrClosed, and blocked Request.Wait
	// calls unblock through it instead of hanging on a request that will
	// never complete.
	closed chan struct{}
}

// NewWorld creates n fully connected ranks.
func NewWorld(n int, opts Options) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size must be >= 1, got %d", n)
	}
	opts.fill()
	w := &World{opts: opts, n: n, fabric: rdma.NewFabric(), closed: make(chan struct{})}
	w.fabric.SetObs(obs.New(opts.Obs)) // before ConnectPair: injectors capture the sink
	w.fabric.SetFaults(opts.Faults)    // before ConnectPair: QPs inherit injectors
	w.recvs.New = func() any { return new(match.Recv) }
	w.fabric.SetCost(opts.Cost)

	for rank := 0; rank < n; rank++ {
		p, err := newProc(w, rank, n)
		if err != nil {
			return nil, err
		}
		w.procs = append(w.procs, p)
	}
	// Full mesh of QPs, including self-loops for self-sends. The receiving
	// side of every pair feeds the receiver's shared bounce-buffer pool and
	// its receive CQ.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src, dst := w.procs[i], w.procs[j]
			sendEnd, recvEnd := w.fabric.ConnectPair(
				rdma.QPConfig{Depth: opts.RecvDepth},
				rdma.QPConfig{RecvCQ: dst.rawCQ, RQ: dst.srq, Depth: opts.RecvDepth},
			)
			src.sendEP[j] = sendEnd
			w.recvEPs = append(w.recvEPs, recvEnd)
		}
	}
	for _, p := range w.procs {
		if err := p.start(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Size returns the number of ranks in the job (across all processes for a
// networked world).
func (w *World) Size() int { return w.n }

// Proc returns the process object for a rank. In a networked world only
// the locally hosted rank is addressable.
func (w *World) Proc(rank int) *Proc {
	if w.trans != nil {
		p := w.procs[0]
		if rank != p.rank {
			panic(fmt.Sprintf("mpi: rank %d is not hosted by this process (local rank %d)", rank, p.rank))
		}
		return p
	}
	return w.procs[rank]
}

// LocalProcs returns the ranks hosted by this process: all of them for an
// in-process world, exactly one for a networked world.
func (w *World) LocalProcs() []*Proc { return w.procs }

// Hosts reports whether rank runs in this process.
func (w *World) Hosts(rank int) bool {
	if w.trans != nil {
		return rank == w.procs[0].rank
	}
	return rank >= 0 && rank < len(w.procs)
}

// relNeeded reports whether procs must interpose the reliability sublayer:
// under an injected fault plan, and always on a lossy transport (UDP),
// where the sublayer stops being test harness and becomes load-bearing.
func (w *World) relNeeded() bool {
	return w.opts.Faults.Active() || (w.trans != nil && !w.trans.Reliable())
}

// register, deregister and read dispatch the rendezvous protocol's
// one-sided memory operations to whichever dataplane the world runs on.
func (w *World) register(buf []byte) *rdma.MemoryRegion {
	if w.trans != nil {
		return w.trans.RegisterMemory(buf)
	}
	return w.fabric.RegisterMemory(buf)
}

func (w *World) deregister(mr *rdma.MemoryRegion) {
	if w.trans != nil {
		w.trans.Deregister(mr)
		return
	}
	w.fabric.Deregister(mr)
}

func (w *World) read(owner int, dst []byte, rkey uint64, offset, length int) error {
	if w.trans != nil {
		return w.trans.Read(owner, dst, rkey, offset, length)
	}
	return w.fabric.Read(dst, rkey, offset, length, nil, 0)
}

// fabricSink returns the dataplane's observability sink — the "fabric"
// domain of the world's export.
func (w *World) fabricSink() *obs.Sink {
	if w.trans != nil {
		return w.trans.Obs()
	}
	return w.fabric.Obs()
}

// Closed reports whether Close has begun. Operations issued afterwards
// return ErrClosed.
func (w *World) Closed() bool {
	select {
	case <-w.closed:
		return true
	default:
		return false
	}
}

// Done returns a channel closed when the world starts tearing down, for
// select-based waiters that must not outlive the world.
func (w *World) Done() <-chan struct{} { return w.closed }

// Close tears the world down. Call only after all outstanding traffic has
// completed (e.g. after Waitall/Barrier). The first call returns nil; every
// later call is a no-op returning ErrClosed. Requests still blocked in Wait
// when Close runs unblock with ErrClosed rather than hanging — the world
// will never complete them.
func (w *World) Close() error {
	err := ErrClosed
	w.closeOnce.Do(func() {
		err = nil
		close(w.closed)
		// Drain the coalescers first (stopping their staleness timers):
		// every buffered eager frame must reach the wire before the QPs
		// close under it.
		for _, p := range w.procs {
			if p.coal != nil {
				p.coal.shutdown()
			}
		}
		// Networked worlds: a peer process may still be waiting on this
		// rank's last reliable messages (its barrier release, a final ack) —
		// hold the wire open until everything pending is acked, bounded.
		// In-process worlds skip this: Close runs only after every rank's
		// traffic completed, so the windows are already settled.
		if w.trans != nil {
			for _, p := range w.procs {
				if p.rel != nil {
					p.rel.flush(relFlushTimeout)
				}
			}
		}
		for _, p := range w.procs {
			for _, ep := range p.sendEP {
				ep.Close()
			}
		}
		// The receive side of each in-process pair runs its own delivery
		// goroutine; close it too or every world leaks n² of them.
		for _, ep := range w.recvEPs {
			ep.Close()
		}
		// Stop the reliability filters before the engines: each filter
		// feeds its engine's CQ and must drain before that CQ closes.
		for _, p := range w.procs {
			if p.rel != nil {
				p.rel.shutdown()
			}
		}
		for _, p := range w.procs {
			p.engine.close()
		}
		// Networked worlds: tear the socket transport down last, releasing
		// the delivery goroutines (late peer traffic lands on closed CQs,
		// which absorb it harmlessly).
		if w.trans != nil {
			_ = w.trans.Close()
		}
	})
	return err
}

// FaultStats returns the dataplane's injected-fault counters.
func (w *World) FaultStats() rdma.FaultSnapshot {
	return rdma.FaultSnapshotOf(w.fabricSink())
}

// ReliabilityStats aggregates the reliability sublayer's counters across
// all ranks; the zero snapshot is returned when faults are inactive.
func (w *World) ReliabilityStats() ReliabilitySnapshot {
	var out ReliabilitySnapshot
	for _, p := range w.procs {
		if p.rel != nil {
			out = out.Add(p.rel.snapshot())
		}
	}
	return out
}

// ObsSinks returns every observability domain of the world — one named
// sink per rank plus the fabric's — ready for obs.WriteJSON or
// obs.WriteTrace.
func (w *World) ObsSinks() []obs.Named {
	out := make([]obs.Named, 0, len(w.procs)+1)
	for _, p := range w.procs {
		out = append(out, obs.Named{Name: fmt.Sprintf("rank%d", p.rank), Sink: p.obs})
	}
	out = append(out, obs.Named{Name: "fabric", Sink: w.fabricSink()})
	return out
}

// Proc is one rank of a World.
type Proc struct {
	w    *World
	rank int
	n    int

	sendEP []rdma.Endpoint
	// rawCQ receives fabric completions; recvCQ is what the engine
	// drains. They are the same queue on a lossless fabric; under an
	// active fault plan (or over a lossy transport) the reliability
	// filter sits between them.
	rawCQ  *rdma.CQ
	recvCQ *rdma.CQ
	srq    *rdma.RecvQueue

	engine engine
	rel    *reliability // non-nil only under an active fault plan
	coal   *coalescer   // non-nil only when coalescing is armed

	// obs is the rank's observability domain, shared by the matching
	// engine, the arrival datapath, and the reliability sublayer (disjoint
	// counter ranges). Always non-nil.
	obs *obs.Sink

	pendMu  sync.Mutex
	pending map[uint64]*pendingSend // rendezvous sends by rkey

	barrierRound atomic.Uint32 // per-proc barrier tag generator
}

// pendingSend tracks an in-flight rendezvous send until its ACK.
type pendingSend struct {
	req *Request
	mr  *rdma.MemoryRegion
	dst int
	tag int
}

func newProc(w *World, rank, n int) (*Proc, error) {
	p := &Proc{
		w:       w,
		rank:    rank,
		n:       n,
		sendEP:  make([]rdma.Endpoint, n),
		recvCQ:  rdma.NewCQ(),
		srq:     rdma.NewRecvQueue(w.opts.RecvDepth),
		pending: make(map[uint64]*pendingSend),
		obs:     obs.New(w.opts.Obs),
	}
	p.rawCQ = p.recvCQ
	if w.relNeeded() {
		// Interpose the reliability filter: the fabric fills rawCQ, the
		// filter republishes repaired streams onto recvCQ for the engine.
		p.rawCQ = rdma.NewCQ()
		p.rel = newReliability(p, w.opts.RetxTimeout)
		p.rel.obs = p.obs
	}
	// Stock the bounce-buffer pool (§IV-A: buffers live in NIC memory).
	// With coalescing armed, buffers must hold the largest batch frame.
	bufSize := headerSize + w.opts.EagerLimit
	if w.opts.coalesceArmed() {
		bufSize = w.opts.frameCap()
		p.coal = newCoalescer(p)
	}
	for i := 0; i < w.opts.RecvDepth; i++ {
		p.srq.Post(make([]byte, bufSize), uint64(i))
	}
	var err error
	switch w.opts.Engine {
	case EngineHost:
		p.engine, err = newHostEngine(p)
	case EngineOffload:
		p.engine, err = newOffloadEngine(p)
	case EngineRaw:
		p.engine, err = newRawEngine(p)
	default:
		err = fmt.Errorf("mpi: unknown engine %v", w.opts.Engine)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Proc) start() error {
	if p.rel != nil {
		p.rel.start()
	}
	if p.coal != nil {
		p.coal.start()
	}
	return p.engine.start()
}

// flushCoalesced pushes every buffered eager frame onto the wire. The
// request layer calls it at synchronization points (Wait and friends); it
// is one atomic load when coalescing is off or nothing is buffered.
func (p *Proc) flushCoalesced() {
	if p.coal != nil {
		_ = p.coal.flushAll(flushSync)
	}
}

// ReliabilityStats returns this rank's reliability counters; the zero
// snapshot when faults are inactive.
func (p *Proc) ReliabilityStats() ReliabilitySnapshot {
	if p.rel == nil {
		return ReliabilitySnapshot{}
	}
	return p.rel.snapshot()
}

// Obs returns the rank's observability sink.
func (p *Proc) Obs() *obs.Sink { return p.obs }

// Rank returns the process rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.n }

// Matcher exposes the offload engine's optimistic matcher for statistics
// and benchmarks; it is nil for other engines.
func (p *Proc) Matcher() *core.OptimisticMatcher {
	if e, ok := p.engine.(*offloadEngine); ok {
		return e.matcher
	}
	return nil
}

// FallbackComms returns the communicators the offload engine runs on
// software matching (§IV-E fallback); nil for other engines.
func (p *Proc) FallbackComms() []int32 {
	if e, ok := p.engine.(*offloadEngine); ok {
		return e.FallbackComms()
	}
	return nil
}

// HostStats exposes the host engine's matching statistics; the zero value
// is returned for other engines.
func (p *Proc) HostStats() match.Stats {
	if e, ok := p.engine.(*hostEngine); ok {
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.lm.Stats()
	}
	return match.Stats{}
}

// deliverMatch finishes a matched receive: eager payload copy or rendezvous
// RDMA read + acknowledgement. It runs on a DPA thread (offload engine), on
// the host progress goroutine, or on the posting goroutine when the match
// came from the unexpected store.
func (p *Proc) deliverMatch(r *match.Recv, env *match.Envelope) {
	req := r.User.(*Request)
	st := Status{Source: int(env.Source), Tag: int(env.Tag)}

	if env.SenderKey != 0 { // rendezvous (§IV-B)
		n := env.Size
		if n > len(r.Buffer) {
			req.complete(st, ErrTruncated)
			p.sendAck(int(env.Source), env.SenderKey)
			return
		}
		if err := p.w.read(int(env.Source), r.Buffer[:n], env.SenderKey, 0, n); err != nil {
			req.complete(st, err)
			return
		}
		st.Count = n
		p.sendAck(int(env.Source), env.SenderKey)
		req.complete(st, nil)
		return
	}

	// Eager: the payload is in the bounce buffer (arrival path) or in the
	// stabilized unexpected copy (posting path).
	if len(env.Data) > len(r.Buffer) {
		copy(r.Buffer, env.Data)
		req.complete(st, ErrTruncated)
		return
	}
	st.Count = copy(r.Buffer, env.Data)
	req.complete(st, nil)
}

// stabilizeUnexpected copies an eager payload out of the bounce buffer so
// the buffer can be reposted while the message waits in the unexpected
// store (§IV-C: "the message is stored for later match into an unexpected
// message buffer"). The copy lands in a pooled buffer sized to the eager
// limit; recycleUnexpected returns it once the message is delivered.
func (p *Proc) stabilizeUnexpected(env *match.Envelope) {
	if env.Data == nil {
		return
	}
	buf := p.w.slab.get(len(env.Data))
	copy(buf, env.Data)
	env.Data = buf
}

// recycleUnexpected returns a delivered unexpected envelope — and its
// stabilized payload buffer — to the world's pools. Only envelopes handed
// back by an engine's unexpected store may be recycled here: their Data is
// pool-owned, never a bounce-buffer alias.
func (p *Proc) recycleUnexpected(env *match.Envelope) {
	if env.Data != nil {
		p.w.slab.put(env.Data)
	}
	p.w.envPool.Put(env)
}

// recycleRecv returns a matched receive record to the world's pool. Only
// call it after deliverMatch: a consumed receive is never referenced by the
// matcher again, so the record can back a future irecv.
func (p *Proc) recycleRecv(r *match.Recv) {
	*r = match.Recv{}
	p.w.recvs.Put(r)
}

// sendWire pushes an encoded message toward dst, through the reliability
// sublayer when it is armed (which assigns the sequence number and owns
// retransmission) or straight onto the QP otherwise.
func (p *Proc) sendWire(dst int, wire []byte) error {
	if p.rel != nil {
		return p.rel.send(dst, wire)
	}
	return p.sendEP[dst].Send(wire, 0, 0)
}

// sendAck notifies a sender that its rendezvous data has been read.
func (p *Proc) sendAck(dst int, rkey uint64) {
	var buf [headerSize]byte
	h := header{kind: kindAck, src: int32(p.rank), rkey: rkey}
	h.encode(buf[:])
	// Best effort: a closed world drops the ack.
	_ = p.sendWire(dst, buf[:])
}

// handleAck completes a pending rendezvous send.
func (p *Proc) handleAck(h header) {
	p.pendMu.Lock()
	ps, ok := p.pending[h.rkey]
	delete(p.pending, h.rkey)
	p.pendMu.Unlock()
	if !ok {
		return
	}
	p.w.deregister(ps.mr)
	ps.req.complete(Status{Source: ps.dst, Tag: ps.tag, Count: len(ps.mr.Buf)}, nil)
}

// repost returns a bounce buffer to the shared pool at full capacity.
func (p *Proc) repost(buf []byte) {
	p.srq.Post(buf[:cap(buf)], 0)
}
