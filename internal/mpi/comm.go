package mpi

import (
	"fmt"

	"repro/internal/match"
)

// Comm is a communicator bound to one rank — the object all point-to-point
// operations go through, mirroring MPI's (communicator, rank) pairing.
type Comm struct {
	p  *Proc
	id match.CommID
}

// World returns the default communicator (MPI_COMM_WORLD) for this rank.
func (p *Proc) World() Comm { return Comm{p: p, id: match.WorldComm} }

// Comm returns a communicator with the given ID. IDs must be non-negative;
// negative IDs are reserved for library-internal traffic.
func (p *Proc) Comm(id int32) Comm {
	if id < 0 {
		panic(fmt.Sprintf("mpi: communicator id %d is reserved", id))
	}
	return Comm{p: p, id: match.CommID(id)}
}

// Rank returns the calling process's rank.
func (c Comm) Rank() int { return c.p.rank }

// Size returns the communicator size (the world size in this library).
func (c Comm) Size() int { return c.p.n }

// Isend starts a non-blocking send of data to rank dst with the given tag.
// Payloads up to the world's EagerLimit go eagerly (completing immediately,
// since the wire copies the payload); larger payloads use the rendezvous
// protocol and complete when the receiver's RDMA read is acknowledged —
// data must stay untouched until then.
func (c Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	if err := c.p.checkPeer(dst); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return c.p.isend(dst, tag, c.id, data)
}

// Send is the blocking form of Isend.
func (c Comm) Send(dst, tag int, data []byte) error {
	req, err := c.Isend(dst, tag, data)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// Irecv starts a non-blocking receive into buf from rank src (or AnySource)
// with the given tag (or AnyTag).
func (c Comm) Irecv(src, tag int, buf []byte) (*Request, error) {
	if src != AnySource {
		if err := c.p.checkPeer(src); err != nil {
			return nil, err
		}
	}
	if tag != AnyTag && tag < 0 {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return c.p.irecv(src, tag, c.id, buf)
}

// Recv is the blocking form of Irecv; it returns the completion status.
func (c Comm) Recv(src, tag int, buf []byte) (Status, error) {
	req, err := c.Irecv(src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// Sendrecv performs a combined send and receive, as MPI_Sendrecv.
func (c Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int, buf []byte) (Status, error) {
	rreq, err := c.Irecv(src, recvTag, buf)
	if err != nil {
		return Status{}, err
	}
	sreq, err := c.Isend(dst, sendTag, data)
	if err != nil {
		return Status{}, err
	}
	if _, err := sreq.Wait(); err != nil {
		return Status{}, err
	}
	return rreq.Wait()
}

func (p *Proc) checkPeer(rank int) error {
	if rank < 0 || rank >= p.n {
		return fmt.Errorf("mpi: rank %d outside world of size %d", rank, p.n)
	}
	return nil
}

// isend implements the send side of §IV-B.
func (p *Proc) isend(dst, tag int, comm match.CommID, data []byte) (*Request, error) {
	if p.w.Closed() {
		return nil, ErrClosed
	}
	req := newRequest(p)
	hashes := match.InlineHashes{
		SrcTag: match.HashSrcTag(match.Rank(p.rank), match.Tag(tag), comm),
		Tag:    match.HashTag(match.Tag(tag), comm),
		Src:    match.HashSrc(match.Rank(p.rank), comm),
	}

	if len(data) <= p.w.opts.EagerLimit {
		// Coalescing path: application-communicator eager sends are staged
		// into the destination's frame; the copy happens at add() time, so
		// the request completes immediately, like any buffered eager send.
		if p.coal != nil && comm >= 0 {
			if err := p.coal.add(dst, int32(tag), comm, hashes, data); err != nil {
				return nil, err
			}
			req.complete(Status{Source: dst, Tag: tag, Count: len(data)}, nil)
			return req, nil
		}
		if p.coal != nil {
			// Library-internal traffic (negative communicators: barriers,
			// collectives) bypasses the coalescer, which makes every such
			// send a synchronization point toward its destination: flush
			// first so the bypass cannot overtake buffered eager traffic.
			if err := p.coal.flushDst(dst, flushSync); err != nil {
				return nil, err
			}
		}
		// Stage header+payload in a slab buffer: QP.Send copies before
		// returning, so the buffer goes straight back to the slab.
		buf := p.w.slab.get(headerSize + len(data))
		h := header{kind: kindEager, src: int32(p.rank), tag: int32(tag),
			comm: int32(comm), size: uint32(len(data)), hashes: hashes}
		h.encode(buf)
		copy(buf[headerSize:], data)
		err := p.sendWire(dst, buf)
		p.w.slab.put(buf)
		if err != nil {
			return nil, err
		}
		// Eager sends complete locally once the payload is on the wire.
		req.complete(Status{Source: dst, Tag: tag, Count: len(data)}, nil)
		return req, nil
	}

	// Rendezvous: register the user buffer, send an RTS carrying its key,
	// and complete on the receiver's acknowledgement. The RTS is matchable
	// traffic, so buffered eager messages toward dst must go first.
	if p.coal != nil {
		if err := p.coal.flushDst(dst, flushSync); err != nil {
			return nil, err
		}
	}
	mr := p.w.register(data)
	p.pendMu.Lock()
	p.pending[mr.RKey] = &pendingSend{req: req, mr: mr, dst: dst, tag: tag}
	p.pendMu.Unlock()

	var buf [headerSize]byte
	h := header{kind: kindRTS, src: int32(p.rank), tag: int32(tag),
		comm: int32(comm), size: uint32(len(data)), rkey: mr.RKey, hashes: hashes}
	h.encode(buf[:])
	if err := p.sendWire(dst, buf[:]); err != nil {
		p.pendMu.Lock()
		delete(p.pending, mr.RKey)
		p.pendMu.Unlock()
		p.w.deregister(mr)
		return nil, err
	}
	return req, nil
}

// irecv posts a receive to the engine. The Recv record comes from the
// world's pool; whichever path delivers the match recycles it.
func (p *Proc) irecv(src, tag int, comm match.CommID, buf []byte) (*Request, error) {
	if p.w.Closed() {
		return nil, ErrClosed
	}
	req := newRequest(p)
	r := p.w.recvs.Get().(*match.Recv)
	*r = match.Recv{
		Source: match.Rank(src),
		Tag:    match.Tag(tag),
		Comm:   comm,
		Buffer: buf,
		User:   req,
	}
	if err := p.engine.post(r); err != nil {
		return nil, err
	}
	return req, nil
}

// Barrier blocks until every rank has entered it. All ranks must call
// Barrier the same number of times. The implementation is a centralized
// gather/release through the library-internal communicator, so it exercises
// the full matching path.
func (c Comm) Barrier() error {
	return c.p.barrier()
}

// barrier implements a central-coordinator barrier on internalComm.
func (p *Proc) barrier() error {
	tag := int(p.barrierRound.Add(1)) // per-proc monotonically increasing
	ic := Comm{p: p, id: internalComm}
	var token [1]byte
	if p.rank == 0 {
		for r := 1; r < p.n; r++ {
			if _, err := ic.recvInternal(r, tag); err != nil {
				return err
			}
		}
		for r := 1; r < p.n; r++ {
			if err := ic.sendInternal(r, tag, token[:]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := ic.sendInternal(0, tag, token[:]); err != nil {
		return err
	}
	_, err := ic.recvInternal(0, tag)
	return err
}

// sendInternal bypasses the public validation (internalComm is negative).
func (c Comm) sendInternal(dst, tag int, data []byte) error {
	req, err := c.p.isend(dst, tag, c.id, data)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func (c Comm) recvInternal(src, tag int) (Status, error) {
	var buf [1]byte
	req, err := c.p.irecv(src, tag, c.id, buf[:])
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}
