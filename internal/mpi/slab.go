package mpi

import (
	"math/bits"
	"sync"
)

// slab is a size-classed buffer allocator: one sync.Pool per power-of-two
// capacity class. It backs every variable-length scratch buffer of the
// send and arrival paths — eager wire staging, unexpected-payload
// stabilization, and the reliability layer's retained retransmit copies —
// so buffer reuse survives the size variance coalescing introduces (a
// frame can be forty times larger than a lone eager message) without
// falling back to make() and regressing the 0 allocs/op hot path.
type slab struct {
	pools [slabClasses]sync.Pool
}

const (
	// slabMinBits is the smallest class (64 bytes — one wire header).
	slabMinBits = 6
	// slabMaxBits is the largest class (1 MiB); larger requests are plain
	// allocations that put discards.
	slabMaxBits = 20
	slabClasses = slabMaxBits - slabMinBits + 1
)

// slabClass returns the pool index whose capacity holds n bytes, or -1
// when n exceeds the largest class.
func slabClass(n int) int {
	if n <= 1<<slabMinBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - slabMinBits
	if c >= slabClasses {
		return -1
	}
	return c
}

// get returns a buffer with len n from the matching class.
func (s *slab) get(n int) []byte {
	c := slabClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	if bp, ok := s.pools[c].Get().(*[]byte); ok {
		return (*bp)[:n]
	}
	return make([]byte, n, 1<<(c+slabMinBits))
}

// put recycles a buffer obtained from get. Buffers whose capacity is not
// an exact class size (oversize allocations, foreign slices) are dropped.
func (s *slab) put(buf []byte) {
	c := cap(buf)
	if c < 1<<slabMinBits || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1 - slabMinBits
	if cls >= slabClasses {
		return
	}
	buf = buf[:0]
	s.pools[cls].Put(&buf)
}
