package mpi

import (
	"bytes"
	"testing"
)

// FuzzDecodeHeader hardens the wire parser: arbitrary bytes must never
// panic, and every header that decodes must re-encode to the same bytes in
// the fields the engine consumes.
func FuzzDecodeHeader(f *testing.F) {
	var seed [headerSize]byte
	h := header{kind: kindEager, src: 3, tag: 9, comm: 1, size: 16}
	h.encode(seed[:])
	f.Add(seed[:])
	f.Add([]byte{})
	f.Add([]byte{kindAck})
	f.Add(bytes.Repeat([]byte{0xFF}, headerSize))
	f.Add(bytes.Repeat([]byte{0x00}, headerSize+32))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeHeader(data)
		if err != nil {
			return
		}
		if got.kind < kindEager || got.kind > kindSack {
			t.Fatalf("decode accepted kind %d", got.kind)
		}
		var buf [headerSize]byte
		got.encode(buf[:])
		round, err := decodeHeader(buf[:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if round != got {
			t.Fatalf("round trip: %+v != %+v", round, got)
		}
	})
}

// FuzzPayloadOf ensures payload slicing never exceeds the wire buffer.
func FuzzPayloadOf(f *testing.F) {
	var seed [headerSize + 8]byte
	h := header{kind: kindEager, size: 8}
	h.encode(seed[:])
	f.Add(seed[:], uint32(8))

	f.Fuzz(func(t *testing.T, data []byte, size uint32) {
		h, err := decodeHeader(data)
		if err != nil {
			return
		}
		// Simulate a hostile size field.
		h.size = size
		defer func() {
			if r := recover(); r != nil {
				// Out-of-range sizes may panic on slicing in payloadOf; the
				// engine only calls it on self-generated traffic, but
				// document the boundary here: sizes within the buffer never
				// panic.
				if int(h.size) <= len(data)-headerSize {
					t.Fatalf("in-range payload panicked: %v", r)
				}
			}
		}()
		p := payloadOf(h, data)
		if h.kind == kindEager && len(p) != int(h.size) {
			t.Fatalf("payload length %d, want %d", len(p), h.size)
		}
		if h.kind != kindEager && p != nil {
			t.Fatal("non-eager payload not nil")
		}
	})
}
