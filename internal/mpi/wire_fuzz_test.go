package mpi

import (
	"bytes"
	"testing"

	"repro/internal/match"
)

// FuzzDecodeHeader hardens the wire parser: arbitrary bytes must never
// panic, and every header that decodes must re-encode to the same bytes in
// the fields the engine consumes.
func FuzzDecodeHeader(f *testing.F) {
	var seed [headerSize]byte
	h := header{kind: kindEager, src: 3, tag: 9, comm: 1, size: 16}
	h.encode(seed[:])
	f.Add(seed[:])
	f.Add([]byte{})
	f.Add([]byte{kindAck})
	f.Add(bytes.Repeat([]byte{0xFF}, headerSize))
	f.Add(bytes.Repeat([]byte{0x00}, headerSize+32))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeHeader(data)
		if err != nil {
			return
		}
		if got.kind < kindEager || got.kind > kindEagerBatch {
			t.Fatalf("decode accepted kind %d", got.kind)
		}
		var buf [headerSize]byte
		got.encode(buf[:])
		round, err := decodeHeader(buf[:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if round != got {
			t.Fatalf("round trip: %+v != %+v", round, got)
		}
	})
}

// FuzzPayloadOf ensures payload slicing never exceeds the wire buffer.
func FuzzPayloadOf(f *testing.F) {
	var seed [headerSize + 8]byte
	h := header{kind: kindEager, size: 8}
	h.encode(seed[:])
	f.Add(seed[:], uint32(8))

	f.Fuzz(func(t *testing.T, data []byte, size uint32) {
		h, err := decodeHeader(data)
		if err != nil {
			return
		}
		// Simulate a hostile size field.
		h.size = size
		defer func() {
			if r := recover(); r != nil {
				// Out-of-range sizes may panic on slicing in payloadOf; the
				// engine only calls it on self-generated traffic, but
				// document the boundary here: sizes within the buffer never
				// panic.
				if int(h.size) <= len(data)-headerSize {
					t.Fatalf("in-range payload panicked: %v", r)
				}
			}
		}()
		p := payloadOf(h, data)
		if h.kind == kindEager && len(p) != int(h.size) {
			t.Fatalf("payload length %d, want %d", len(p), h.size)
		}
		if h.kind != kindEager && p != nil {
			t.Fatal("non-eager payload not nil")
		}
	})
}

// batchFrame assembles a valid kindEagerBatch wire message from payloads,
// mirroring what coalescer.flushLocked produces.
func batchFrame(payloads ...[]byte) []byte {
	body := make([]byte, headerSize)
	for i, p := range payloads {
		body = appendSubRecord(body, int32(i-1), match.InlineHashes{
			SrcTag: uint64(i), Tag: uint64(2 * i), Src: uint64(3 * i),
		}, p)
	}
	h := header{
		kind: kindEagerBatch, src: 1, comm: 0,
		size: uint32(len(body) - headerSize),
		rkey: uint64(len(payloads)),
	}
	h.encode(body[:headerSize])
	return body
}

// FuzzBatchFrame hardens the multi-message frame parser: arbitrary bodies,
// counts, and size fields must never panic or slice outside the wire
// buffer, and every frame the coalescer can legally emit must decode back
// to its inputs exactly.
func FuzzBatchFrame(f *testing.F) {
	// Well-formed frames: single message, zero-length payloads, mixed
	// sizes, and a max-count frame of empty payloads.
	f.Add(batchFrame([]byte("hello")))
	f.Add(batchFrame([]byte{}, []byte{}, []byte{}))
	f.Add(batchFrame([]byte{1}, bytes.Repeat([]byte{2}, 64), []byte{}))
	many := make([][]byte, maxBatchMsgs)
	for i := range many {
		many[i] = []byte{}
	}
	f.Add(batchFrame(many...))
	// Malformed: truncated sub-headers, hostile counts, trailing bytes.
	trunc := batchFrame([]byte("abcdefgh"))
	f.Add(trunc[:len(trunc)-9]) // cut into the payload
	f.Add(trunc[:headerSize+1]) // cut into the first sub-header
	hostile := batchFrame([]byte("x"))
	var hh header
	hh, _ = decodeHeader(hostile)
	hh.rkey = 1 << 40 // count far beyond maxBatchMsgs
	hh.encode(hostile[:headerSize])
	f.Add(hostile)
	f.Add(append(batchFrame([]byte("y")), 0xEE)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHeader(data)
		if err != nil || h.kind != kindEagerBatch {
			return
		}
		it, err := newBatchIter(h, data)
		if err != nil {
			return
		}
		seen := 0
		body := data[headerSize:]
		for {
			m, ok := it.next()
			if !ok {
				break
			}
			seen++
			if len(m.payload) > 0 {
				// The payload must alias the frame body, never beyond it.
				start := len(body) - len(it.body) - len(m.payload)
				if start < 0 || !bytes.Equal(m.payload, body[start:start+len(m.payload)]) {
					t.Fatalf("payload does not alias frame body")
				}
			}
			if seen > maxBatchMsgs {
				t.Fatalf("iterator yielded %d sub-messages, cap is %d", seen, maxBatchMsgs)
			}
		}
		if it.err == nil && seen != int(h.rkey) {
			t.Fatalf("clean iteration yielded %d sub-messages, header says %d", seen, h.rkey)
		}
	})
}

// FuzzBatchRoundTrip checks encode/decode symmetry: sub-records appended
// with arbitrary tags, hashes, and payload splits decode back identically.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(int32(0), uint64(1), []byte("payload"), []byte{})
	f.Add(int32(-3), uint64(0xDEADBEEF), []byte{}, []byte("second"))
	f.Add(int32(1<<30), uint64(1)<<63, bytes.Repeat([]byte{7}, 200), []byte{8})

	f.Fuzz(func(t *testing.T, tag int32, hash uint64, p1, p2 []byte) {
		hashes := match.InlineHashes{SrcTag: hash, Tag: hash ^ 1, Src: ^hash}
		body := make([]byte, headerSize)
		body = appendSubRecord(body, tag, hashes, p1)
		body = appendSubRecord(body, -tag, hashes, p2)
		h := header{kind: kindEagerBatch, size: uint32(len(body) - headerSize), rkey: 2}
		h.encode(body[:headerSize])

		it, err := newBatchIter(h, body)
		if err != nil {
			t.Fatalf("valid frame rejected: %v", err)
		}
		for i, want := range []struct {
			tag     int32
			payload []byte
		}{{tag, p1}, {-tag, p2}} {
			m, ok := it.next()
			if !ok {
				t.Fatalf("sub-message %d missing: %v", i, it.err)
			}
			if m.tag != want.tag || !bytes.Equal(m.payload, want.payload) || m.hashes != hashes {
				t.Fatalf("sub-message %d: got tag=%d len=%d, want tag=%d len=%d",
					i, m.tag, len(m.payload), want.tag, len(want.payload))
			}
		}
		if _, ok := it.next(); ok || it.err != nil {
			t.Fatalf("frame did not end cleanly: %v", it.err)
		}
	})
}
