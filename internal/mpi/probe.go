package mpi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/match"
)

// ErrProbeUnsupported is returned on engines without an unexpected store
// (the raw RDMA mode has no matching and therefore nothing to probe).
var ErrProbeUnsupported = errors.New("mpi: probe not supported on this engine")

// Iprobe checks, without blocking or consuming, whether a message matching
// (src, tag) is available to receive — MPI_Iprobe. It inspects only the
// unexpected store: a message that would complete an already-posted receive
// belongs to that receive.
func (c Comm) Iprobe(src, tag int) (Status, bool, error) {
	if src != AnySource {
		if err := c.p.checkPeer(src); err != nil {
			return Status{}, false, err
		}
	}
	if tag != AnyTag && tag < 0 {
		return Status{}, false, fmt.Errorf("mpi: negative tag %d", tag)
	}
	r := &match.Recv{Source: match.Rank(src), Tag: match.Tag(tag), Comm: c.id}

	var env *match.Envelope
	var ok bool
	switch e := c.p.engine.(type) {
	case *hostEngine:
		e.mu.Lock()
		env, ok = e.lm.PeekUnexpected(r)
		e.mu.Unlock()
	case *offloadEngine:
		if len(e.fallbackComms) != 0 && e.fallbackComms[c.id] {
			e.fbMu.Lock()
			env, ok = e.fallback.PeekUnexpected(r)
			e.fbMu.Unlock()
		} else {
			env, ok = e.matcher.PeekUnexpected(r)
		}
	default:
		return Status{}, false, ErrProbeUnsupported
	}
	if !ok {
		return Status{}, false, nil
	}
	st := Status{Source: int(env.Source), Tag: int(env.Tag), Count: env.Size}
	if env.SenderKey == 0 {
		st.Count = len(env.Data)
	}
	return st, true, nil
}

// Probe blocks until a message matching (src, tag) is available — the
// blocking MPI_Probe. The arrival path runs asynchronously, so Probe polls
// the unexpected store with a short backoff.
func (c Comm) Probe(src, tag int) (Status, error) {
	backoff := time.Microsecond
	for {
		st, ok, err := c.Iprobe(src, tag)
		if err != nil {
			return Status{}, err
		}
		if ok {
			return st, nil
		}
		time.Sleep(backoff)
		if backoff < 128*time.Microsecond {
			backoff *= 2
		}
	}
}
