package mpi

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/match"
	"repro/internal/obs"
)

// This file implements sender-side adaptive coalescing of eager messages.
// Consecutive eager sends toward one destination on one communicator are
// staged into a per-destination frame buffer and leave as a single
// kindEagerBatch wire message (wire.go), so the fabric, the receive CQ,
// and the reliability sublayer each pay their per-message cost once per
// frame instead of once per message — the fixed-overhead regime that
// bounds small-message rate in Figure 8.
//
// The flush policy is adaptive with four triggers:
//
//   - size: the frame body reached CoalesceBytes (or the next record
//     would not fit the staged buffer);
//   - count: the frame holds CoalesceMsgs sub-messages;
//   - sync: an ordering or progress point was reached — Request.Wait /
//     Waitall / Waitany, a bypass send to the same destination (rendezvous
//     RTS, internal/collective traffic on negative communicators, a
//     communicator switch), or world drain/Close;
//   - timeout: a staleness timer bounds how long a buffered message can
//     wait for company when the sender goes quiet without synchronizing.
//
// Sync flushes are what keep coalescing invisible to MPI semantics: no
// message can be stranded behind a blocked sender, and the non-overtaking
// order between a buffered eager message and any later matchable send to
// the same destination is preserved by flushing before the bypass.
//
// A send that is coalesced still completes its Request immediately — the
// payload is copied into the frame at add() time, exactly as QP.Send
// copies it for a lone eager message, so buffered-send semantics are
// unchanged.

// flushReason says which policy trigger flushed a frame. The values are
// the EvCoalesceFlush A-payload and must stay in sync with its comment.
type flushReason uint8

const (
	flushSize flushReason = iota
	flushCount
	flushSync
	flushTimeout
)

// reasonCounters maps flush reasons to their obs counters.
var reasonCounters = [...]obs.Counter{
	flushSize:    obs.CtrCoalesceFlushSize,
	flushCount:   obs.CtrCoalesceFlushCount,
	flushSync:    obs.CtrCoalesceFlushSync,
	flushTimeout: obs.CtrCoalesceFlushTimeout,
}

// coalescer is the per-rank coalescing state: one frame buffer per
// destination, a cheap armed/buffered fast path for the flush-everything
// probes Wait issues, and a background staleness timer.
type coalescer struct {
	p          *Proc
	bytesLimit int
	msgsLimit  int
	timeout    time.Duration

	dsts []coalesceBuf

	// buffered counts destinations with a non-empty frame, so flushAll —
	// called on every Wait — is a single atomic load when nothing is
	// pending.
	buffered atomic.Int32

	stop chan struct{}
	wg   sync.WaitGroup
}

// coalesceBuf is one destination's staged frame. The buffer is allocated
// once at world creation with capacity for the largest legal frame, so
// the steady-state coalescing path allocates nothing.
type coalesceBuf struct {
	mu    sync.Mutex
	frame []byte // header placeholder + staged body; cap fixed
	count int
	comm  int32
	since time.Time // when the oldest buffered message arrived
}

func newCoalescer(p *Proc) *coalescer {
	o := &p.w.opts
	c := &coalescer{
		p:          p,
		bytesLimit: o.CoalesceBytes,
		msgsLimit:  o.CoalesceMsgs,
		timeout:    o.CoalesceTimeout,
		dsts:       make([]coalesceBuf, p.n),
		stop:       make(chan struct{}),
	}
	if c.msgsLimit > maxBatchMsgs {
		c.msgsLimit = maxBatchMsgs
	}
	frameCap := o.frameCap()
	for i := range c.dsts {
		c.dsts[i].frame = make([]byte, headerSize, frameCap)
	}
	return c
}

// start launches the staleness timer.
func (c *coalescer) start() {
	c.wg.Add(1)
	go c.run()
}

// shutdown stops the timer and flushes every destination so no buffered
// message outlives the world's QPs.
func (c *coalescer) shutdown() {
	close(c.stop)
	c.wg.Wait()
	_ = c.flushAll(flushSync)
}

// add stages one eager message toward dst and applies the flush policy.
// The payload is copied, so the caller's buffer is free on return.
func (c *coalescer) add(dst int, tag int32, comm match.CommID, hashes match.InlineHashes, payload []byte) error {
	b := &c.dsts[dst]
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.count > 0 {
		// A frame carries one communicator (the offload engine routes
		// whole frames by it) and never grows past its staged buffer.
		if int32(comm) != b.comm {
			if err := c.flushLocked(b, dst, flushSync); err != nil {
				return err
			}
		} else if len(b.frame)+subRecordSize(len(payload)) > cap(b.frame) {
			if err := c.flushLocked(b, dst, flushSize); err != nil {
				return err
			}
		}
	}
	if b.count == 0 {
		b.comm = int32(comm)
		b.since = time.Now()
		c.buffered.Add(1)
	}
	b.frame = appendSubRecord(b.frame, tag, hashes, payload)
	b.count++
	switch {
	case b.count >= c.msgsLimit:
		return c.flushLocked(b, dst, flushCount)
	case len(b.frame)-headerSize >= c.bytesLimit:
		return c.flushLocked(b, dst, flushSize)
	}
	return nil
}

// flushDst flushes one destination's frame, if any. Bypass sends (RTS,
// negative-communicator traffic) call it before their own sendWire so the
// per-destination wire order matches program order.
func (c *coalescer) flushDst(dst int, reason flushReason) error {
	b := &c.dsts[dst]
	b.mu.Lock()
	defer b.mu.Unlock()
	return c.flushLocked(b, dst, reason)
}

// flushAll flushes every destination. It is the synchronization-point
// hook (Wait/Waitall/Waitany, world drain) and costs one atomic load when
// nothing is buffered.
func (c *coalescer) flushAll(reason flushReason) error {
	if c.buffered.Load() == 0 {
		return nil
	}
	var first error
	for dst := range c.dsts {
		if err := c.flushDst(dst, reason); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushLocked finalizes the staged frame header and pushes the frame onto
// the wire (through the reliability sublayer when armed, which assigns it
// one sequence number). Called with b.mu held.
func (c *coalescer) flushLocked(b *coalesceBuf, dst int, reason flushReason) error {
	if b.count == 0 {
		return nil
	}
	h := header{
		kind: kindEagerBatch,
		src:  int32(c.p.rank),
		comm: b.comm,
		size: uint32(len(b.frame) - headerSize),
		rkey: uint64(b.count),
	}
	h.encode(b.frame[:headerSize])
	width, bytes := b.count, len(b.frame)
	err := c.p.sendWire(dst, b.frame)
	b.count = 0
	b.frame = b.frame[:headerSize]
	c.buffered.Add(-1)

	s := c.p.obs
	s.Counters.Inc(reasonCounters[reason])
	s.Observe(obs.HistCoalesceWidth, uint64(width))
	if s.Enabled() {
		s.Event(obs.EvCoalesceFlush, dst, uint64(reason), uint64(width), uint64(bytes))
	}
	return err
}

// run is the staleness timer: it flushes any frame whose oldest message
// has waited longer than the timeout, covering senders that neither fill
// a frame nor reach a synchronization point.
func (c *coalescer) run() {
	defer c.wg.Done()
	period := c.timeout / 2
	if period < 50*time.Microsecond {
		period = 50 * time.Microsecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tick.C:
			if c.buffered.Load() == 0 {
				continue
			}
			for dst := range c.dsts {
				b := &c.dsts[dst]
				b.mu.Lock()
				if b.count > 0 && now.Sub(b.since) >= c.timeout {
					_ = c.flushLocked(b, dst, flushTimeout)
				}
				b.mu.Unlock()
			}
		}
	}
}
