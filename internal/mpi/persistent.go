package mpi

import (
	"fmt"
	"reflect"
)

// PersistentRequest is a reusable communication handle in the style of
// MPI_Send_init / MPI_Recv_init: the operation's arguments are bound once
// and each Start issues a fresh instance of the operation. Persistent
// requests matter to matching performance because they encourage long runs
// of identical (source, tag) receives — exactly the compatible sequences
// the fast path of §III-D3a exploits.
type PersistentRequest struct {
	c      Comm
	isSend bool
	peer   int
	tag    int
	buf    []byte // send payload or receive buffer

	active *Request
}

// SendInit binds a persistent send (MPI_Send_init).
func (c Comm) SendInit(dst, tag int, data []byte) (*PersistentRequest, error) {
	if err := c.p.checkPeer(dst); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return &PersistentRequest{c: c, isSend: true, peer: dst, tag: tag, buf: data}, nil
}

// RecvInit binds a persistent receive (MPI_Recv_init).
func (c Comm) RecvInit(src, tag int, buf []byte) (*PersistentRequest, error) {
	if src != AnySource {
		if err := c.p.checkPeer(src); err != nil {
			return nil, err
		}
	}
	if tag != AnyTag && tag < 0 {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return &PersistentRequest{c: c, peer: src, tag: tag, buf: buf}, nil
}

// Start issues one instance of the bound operation (MPI_Start). The
// previous instance must have completed.
func (p *PersistentRequest) Start() (*Request, error) {
	if p.active != nil {
		if _, done, _ := p.active.Test(); !done {
			return nil, fmt.Errorf("mpi: persistent request started while active")
		}
	}
	var req *Request
	var err error
	if p.isSend {
		req, err = p.c.Isend(p.peer, p.tag, p.buf)
	} else {
		req, err = p.c.Irecv(p.peer, p.tag, p.buf)
	}
	if err != nil {
		return nil, err
	}
	p.active = req
	return req, nil
}

// Wait blocks on the active instance.
func (p *PersistentRequest) Wait() (Status, error) {
	if p.active == nil {
		return Status{}, fmt.Errorf("mpi: persistent request not started")
	}
	return p.active.Wait()
}

// Startall starts a set of persistent requests (MPI_Startall).
func Startall(prs ...*PersistentRequest) ([]*Request, error) {
	out := make([]*Request, 0, len(prs))
	for _, pr := range prs {
		req, err := pr.Start()
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
	return out, nil
}

// Waitany blocks until any of the requests completes and returns its index
// and status (MPI_Waitany). Nil entries are ignored; if every entry is nil,
// index -1 is returned.
func Waitany(reqs ...*Request) (int, Status, error) {
	cases := make([]reflect.SelectCase, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, r := range reqs {
		if r == nil {
			continue
		}
		cases = append(cases, reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(r.doneChan()),
		})
		idx = append(idx, i)
	}
	if len(cases) == 0 {
		return -1, Status{}, nil
	}
	chosen, _, _ := reflect.Select(cases)
	i := idx[chosen]
	st, err := reqs[i].Wait() // already complete; collects status
	return i, st, err
}

// Testall reports whether all requests have completed, without blocking
// (MPI_Testall). Nil entries count as complete.
func Testall(reqs ...*Request) (bool, error) {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		_, done, err := r.Test()
		if err != nil {
			return done, err
		}
		if !done {
			return false, nil
		}
	}
	return true, nil
}
