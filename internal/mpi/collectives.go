package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/match"
)

// Collectives built on point-to-point operations. The paper's discussion
// (§VII) motivates offloaded tag matching precisely so that collectives —
// "normally built on top of point-to-point operations, and hence need
// matching to be performed in order to be offloaded" — can run entirely on
// the SmartNIC: every tree edge below goes through the configured matching
// engine.
//
// Collective traffic uses negative tags, which the public Isend/Irecv API
// rejects, so it can never collide with application messages. Successive
// collectives on one communicator may share a tag: the non-overtaking
// constraint (C2) keeps per-pair messages in program order.

// Internal collective tags.
const (
	tagBcast   = -10
	tagReduce  = -11
	tagGather  = -12
	tagA2A     = -13
	tagScatter = -14
)

// ReduceOp combines src into acc; both slices have equal length. The
// operation must be associative (as MPI requires).
type ReduceOp func(acc, src []byte)

// OpSumFloat64 adds vectors of float64 (MPI_SUM over MPI_DOUBLE).
func OpSumFloat64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		putF64(acc[i:], getF64(acc[i:])+getF64(src[i:]))
	}
}

// OpMaxFloat64 keeps the element-wise maximum (MPI_MAX over MPI_DOUBLE).
func OpMaxFloat64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		if s := getF64(src[i:]); s > getF64(acc[i:]) {
			putF64(acc[i:], s)
		}
	}
}

// OpBXor xors the buffers (MPI_BXOR over bytes).
func OpBXor(acc, src []byte) {
	for i := range acc {
		if i < len(src) {
			acc[i] ^= src[i]
		}
	}
}

// Bcast broadcasts root's buf to every rank over a binomial tree
// (MPI_Bcast). All ranks must pass equal-length buffers.
func (c Comm) Bcast(root int, buf []byte) error {
	if err := c.p.checkPeer(root); err != nil {
		return err
	}
	n := c.p.n
	if n == 1 {
		return nil
	}
	rel := (c.p.rank - root + n) % n

	// Receive from the parent (non-root ranks).
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root + n) % n
			if _, err := c.recvColl(parent, tagBcast, buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	// Forward to children in decreasing mask order.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel&mask == 0 && rel+mask < n {
			child := (rel + mask + root) % n
			if err := c.sendColl(child, tagBcast, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce combines every rank's data with op into out at root (MPI_Reduce).
// out is only written at root and must have len(data); data is not
// modified. All ranks must pass equal-length data.
func (c Comm) Reduce(root int, data []byte, op ReduceOp, out []byte) error {
	if err := c.p.checkPeer(root); err != nil {
		return err
	}
	if op == nil {
		return fmt.Errorf("mpi: Reduce requires an op")
	}
	n := c.p.n
	acc := append([]byte(nil), data...)
	if n > 1 {
		rel := (c.p.rank - root + n) % n
		tmp := make([]byte, len(data))
		for mask := 1; mask < n; mask <<= 1 {
			if rel&mask == 0 {
				peerRel := rel | mask
				if peerRel < n {
					peer := (peerRel + root) % n
					st, err := c.recvColl(peer, tagReduce, tmp)
					if err != nil {
						return err
					}
					if st.Count != len(acc) {
						return fmt.Errorf("mpi: Reduce length mismatch: %d vs %d", st.Count, len(acc))
					}
					op(acc, tmp)
				}
			} else {
				parent := (rel - mask + root + n) % n
				if err := c.sendColl(parent, tagReduce, acc); err != nil {
					return err
				}
				break
			}
		}
	}
	if c.p.rank == root {
		if len(out) < len(acc) {
			return ErrTruncated
		}
		copy(out, acc)
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast (MPI_Allreduce). out
// must have len(data) on every rank.
func (c Comm) Allreduce(data []byte, op ReduceOp, out []byte) error {
	if err := c.Reduce(0, data, op, out); err != nil {
		return err
	}
	if c.p.rank != 0 {
		if len(out) < len(data) {
			return ErrTruncated
		}
	}
	return c.Bcast(0, out[:len(data)])
}

// Gather collects every rank's data at root (MPI_Gather). At root, out
// must have one slice per rank, each large enough for that rank's
// contribution; elsewhere out is ignored.
func (c Comm) Gather(root int, data []byte, out [][]byte) error {
	if err := c.p.checkPeer(root); err != nil {
		return err
	}
	n := c.p.n
	if c.p.rank != root {
		return c.sendColl(root, tagGather, data)
	}
	if len(out) < n {
		return fmt.Errorf("mpi: Gather at root needs %d receive slices, got %d", n, len(out))
	}
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		if r == root {
			if len(out[r]) < len(data) {
				return ErrTruncated
			}
			copy(out[r], data)
			continue
		}
		req, err := c.p.irecv(r, tagGather, collContext(c.id), out[r])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return Waitall(reqs...)
}

// Alltoall exchanges data[i] from every rank to rank i (MPI_Alltoall).
// data and out must both have one slice per rank; out[i] receives rank i's
// contribution.
func (c Comm) Alltoall(data, out [][]byte) error {
	n := c.p.n
	if len(data) < n || len(out) < n {
		return fmt.Errorf("mpi: Alltoall needs %d slices each way", n)
	}
	reqs := make([]*Request, 0, 2*n)
	for r := 0; r < n; r++ {
		if r == c.p.rank {
			continue
		}
		req, err := c.p.irecv(r, tagA2A, collContext(c.id), out[r])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for r := 0; r < n; r++ {
		if r == c.p.rank {
			if len(out[r]) < len(data[r]) {
				return ErrTruncated
			}
			copy(out[r], data[r])
			continue
		}
		req, err := c.p.isend(r, tagA2A, collContext(c.id), data[r])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return Waitall(reqs...)
}

// Scatter distributes data[i] from root to rank i (MPI_Scatter). recv must
// be large enough for this rank's slice; at root, data must have one slice
// per rank.
func (c Comm) Scatter(root int, data [][]byte, recv []byte) error {
	if err := c.p.checkPeer(root); err != nil {
		return err
	}
	n := c.p.n
	if c.p.rank == root {
		if len(data) < n {
			return fmt.Errorf("mpi: Scatter at root needs %d send slices, got %d", n, len(data))
		}
		for r := 0; r < n; r++ {
			if r == root {
				if len(recv) < len(data[r]) {
					return ErrTruncated
				}
				copy(recv, data[r])
				continue
			}
			if err := c.sendColl(r, tagScatter, data[r]); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := c.recvColl(root, tagScatter, recv)
	return err
}

// Allgather collects every rank's data everywhere (MPI_Allgather): a Gather
// to rank 0 followed by a Bcast of the concatenation. out must have one
// slice per rank on every rank, each sized for that rank's contribution;
// all contributions must have equal length.
func (c Comm) Allgather(data []byte, out [][]byte) error {
	n := c.p.n
	if len(out) < n {
		return fmt.Errorf("mpi: Allgather needs %d receive slices, got %d", n, len(out))
	}
	if err := c.Gather(0, data, out); err != nil {
		return err
	}
	// Flatten, broadcast, scatter back into the slices.
	width := len(data)
	flat := make([]byte, n*width)
	if c.p.rank == 0 {
		for r := 0; r < n; r++ {
			copy(flat[r*width:], out[r])
		}
	}
	if err := c.Bcast(0, flat); err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		if len(out[r]) < width {
			return ErrTruncated
		}
		copy(out[r], flat[r*width:(r+1)*width])
	}
	return nil
}

// collContext derives the collective matching context of a communicator.
// Like real MPI implementations, collectives run in a context separate from
// point-to-point traffic, so an application's wildcard receives can never
// intercept tree messages. User communicators are non-negative, so the
// derived IDs never collide with them (or with internalComm).
func collContext(id match.CommID) match.CommID { return -1000 - id }

// sendColl / recvColl run on the collective context and bypass the public
// non-negative-tag validation for the reserved collective tags.
func (c Comm) sendColl(dst, tag int, data []byte) error {
	req, err := c.p.isend(dst, tag, collContext(c.id), data)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func (c Comm) recvColl(src, tag int, buf []byte) (Status, error) {
	req, err := c.p.irecv(src, tag, collContext(c.id), buf)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// float64 little-endian buffer helpers.
func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func putF64(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}

// Float64s view helpers for callers working in doubles.

// PackFloat64s encodes vs into a fresh byte buffer.
func PackFloat64s(vs []float64) []byte {
	b := make([]byte, 8*len(vs))
	for i, v := range vs {
		putF64(b[8*i:], v)
	}
	return b
}

// UnpackFloat64s decodes a buffer produced by PackFloat64s.
func UnpackFloat64s(b []byte) []float64 {
	vs := make([]float64, len(b)/8)
	for i := range vs {
		vs[i] = getF64(b[8*i:])
	}
	return vs
}
