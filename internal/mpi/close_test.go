package mpi

import (
	"errors"
	"testing"
	"time"
)

// TestCloseIdempotent pins re-Close behavior: the first Close returns nil,
// every later one returns ErrClosed without touching the (already torn
// down) world.
func TestCloseIdempotent(t *testing.T) {
	for _, engine := range []EngineKind{EngineHost, EngineOffload, EngineRaw} {
		w, err := NewWorld(2, Options{Engine: engine})
		if err != nil {
			t.Fatalf("%v: NewWorld: %v", engine, err)
		}
		if w.Closed() {
			t.Fatalf("%v: world reports closed before Close", engine)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%v: first Close: %v", engine, err)
		}
		if !w.Closed() {
			t.Fatalf("%v: world not closed after Close", engine)
		}
		for i := 0; i < 3; i++ {
			if err := w.Close(); !errors.Is(err, ErrClosed) {
				t.Fatalf("%v: re-Close %d: got %v, want ErrClosed", engine, i, err)
			}
		}
	}
}

// TestPostCloseOpsReturnErrClosed pins the post-Close surface: every
// point-to-point entry point returns ErrClosed instead of hanging on dead
// engines or panicking on closed queues.
func TestPostCloseOpsReturnErrClosed(t *testing.T) {
	for _, engine := range []EngineKind{EngineHost, EngineOffload, EngineRaw} {
		w, err := NewWorld(2, Options{Engine: engine})
		if err != nil {
			t.Fatalf("%v: NewWorld: %v", engine, err)
		}
		c := w.Proc(0).World()
		if err := w.Close(); err != nil {
			t.Fatalf("%v: Close: %v", engine, err)
		}

		buf := make([]byte, 8)
		if _, err := c.Isend(1, 1, buf); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: post-Close Isend: got %v, want ErrClosed", engine, err)
		}
		if err := c.Send(1, 1, buf); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: post-Close Send: got %v, want ErrClosed", engine, err)
		}
		if _, err := c.Irecv(1, 1, buf); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: post-Close Irecv: got %v, want ErrClosed", engine, err)
		}
		if _, err := c.Recv(1, 1, buf); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: post-Close Recv: got %v, want ErrClosed", engine, err)
		}
		if err := c.Barrier(); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: post-Close Barrier: got %v, want ErrClosed", engine, err)
		}
		// Rendezvous-sized payloads take the RTS path; it must be pinned too.
		big := make([]byte, 64<<10)
		if _, err := c.Isend(1, 1, big); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: post-Close rendezvous Isend: got %v, want ErrClosed", engine, err)
		}
	}
}

// TestCloseUnblocksPendingWait pins cancellation: a receive blocked in Wait
// when the world closes returns ErrClosed in bounded time instead of
// hanging on a request that will never complete.
func TestCloseUnblocksPendingWait(t *testing.T) {
	for _, engine := range []EngineKind{EngineHost, EngineOffload} {
		w, err := NewWorld(2, Options{Engine: engine})
		if err != nil {
			t.Fatalf("%v: NewWorld: %v", engine, err)
		}
		c := w.Proc(0).World()
		req, err := c.Irecv(1, 42, make([]byte, 8)) // nothing will ever send tag 42
		if err != nil {
			t.Fatalf("%v: Irecv: %v", engine, err)
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := req.Wait()
			errCh <- err
		}()
		// Give the waiter a moment to block, then pull the world down.
		time.Sleep(10 * time.Millisecond)
		if err := w.Close(); err != nil {
			t.Fatalf("%v: Close: %v", engine, err)
		}
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("%v: pending Wait: got %v, want ErrClosed", engine, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: pending Wait still blocked 5s after Close", engine)
		}
	}
}
