package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// runAll executes fn on every rank concurrently and fails on any error.
func runAll(t *testing.T, w *World, fn func(c Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, w.Size())
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.Proc(r).World())
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, kind := range matchingEngines() {
		for _, n := range []int{1, 2, 5, 8} {
			t.Run(fmt.Sprintf("%v/n=%d", kind, n), func(t *testing.T) {
				w := newTestWorld(t, n, kind)
				for root := 0; root < n; root++ {
					payload := []byte(fmt.Sprintf("bcast-from-%d", root))
					runAll(t, w, func(c Comm) error {
						buf := make([]byte, len(payload))
						if c.Rank() == root {
							copy(buf, payload)
						}
						if err := c.Bcast(root, buf); err != nil {
							return err
						}
						if !bytes.Equal(buf, payload) {
							return fmt.Errorf("rank %d got %q", c.Rank(), buf)
						}
						return nil
					})
				}
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 6
			w := newTestWorld(t, n, kind)
			// Every rank contributes [rank, 2*rank] as float64s.
			want0 := 0.0
			want1 := 0.0
			for r := 0; r < n; r++ {
				want0 += float64(r)
				want1 += 2 * float64(r)
			}
			runAll(t, w, func(c Comm) error {
				data := PackFloat64s([]float64{float64(c.Rank()), 2 * float64(c.Rank())})
				out := make([]byte, len(data))
				if err := c.Reduce(2, data, OpSumFloat64, out); err != nil {
					return err
				}
				if c.Rank() == 2 {
					vs := UnpackFloat64s(out)
					if vs[0] != want0 || vs[1] != want1 {
						return fmt.Errorf("reduce got %v, want [%v %v]", vs, want0, want1)
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceMax(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 7
			w := newTestWorld(t, n, kind)
			runAll(t, w, func(c Comm) error {
				data := PackFloat64s([]float64{float64(c.Rank() * 10)})
				out := make([]byte, len(data))
				if err := c.Allreduce(data, OpMaxFloat64, out); err != nil {
					return err
				}
				if got := UnpackFloat64s(out)[0]; got != float64((n-1)*10) {
					return fmt.Errorf("rank %d: allreduce max = %v", c.Rank(), got)
				}
				return nil
			})
		})
	}
}

func TestAllreduceRepeated(t *testing.T) {
	// Back-to-back collectives on one communicator must not cross-match
	// (per-pair FIFO keeps rounds ordered even with shared tags).
	w := newTestWorld(t, 4, EngineOffload)
	runAll(t, w, func(c Comm) error {
		for round := 1; round <= 5; round++ {
			data := PackFloat64s([]float64{float64(round)})
			out := make([]byte, len(data))
			if err := c.Allreduce(data, OpSumFloat64, out); err != nil {
				return err
			}
			if got := UnpackFloat64s(out)[0]; got != float64(4*round) {
				return fmt.Errorf("round %d: sum = %v, want %d", round, got, 4*round)
			}
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 5
			w := newTestWorld(t, n, kind)
			runAll(t, w, func(c Comm) error {
				data := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
				var out [][]byte
				if c.Rank() == 1 {
					out = make([][]byte, n)
					for i := range out {
						out[i] = make([]byte, 2)
					}
				}
				if err := c.Gather(1, data, out); err != nil {
					return err
				}
				if c.Rank() == 1 {
					for r := 0; r < n; r++ {
						if out[r][0] != byte(r) || out[r][1] != byte(2*r) {
							return fmt.Errorf("gather slot %d = %v", r, out[r])
						}
					}
				}
				return nil
			})
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 4
			w := newTestWorld(t, n, kind)
			runAll(t, w, func(c Comm) error {
				data := make([][]byte, n)
				out := make([][]byte, n)
				for i := 0; i < n; i++ {
					data[i] = []byte{byte(c.Rank()), byte(i)}
					out[i] = make([]byte, 2)
				}
				if err := c.Alltoall(data, out); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if out[i][0] != byte(i) || out[i][1] != byte(c.Rank()) {
						return fmt.Errorf("alltoall slot %d = %v", i, out[i])
					}
				}
				return nil
			})
		})
	}
}

func TestCollectivesDoNotLeakToWildcards(t *testing.T) {
	// A wildcard receive on the user context must never intercept
	// collective tree traffic.
	w := newTestWorld(t, 2, EngineHost)
	buf := make([]byte, 64)
	wildcard, err := w.Proc(1).World().Irecv(AnySource, AnyTag, buf)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, w, func(c Comm) error {
		b := []byte("collective")
		if c.Rank() != 0 {
			b = make([]byte, 10)
		}
		return c.Bcast(0, b)
	})
	if _, done, _ := wildcard.Test(); done {
		t.Fatal("wildcard receive matched collective traffic")
	}
	// Complete the wildcard receive with a real message so Close is clean.
	if err := w.Proc(0).World().Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := wildcard.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceValidation(t *testing.T) {
	w := newTestWorld(t, 2, EngineHost)
	c := w.Proc(0).World()
	if err := c.Reduce(0, []byte{1}, nil, make([]byte, 1)); err == nil {
		t.Error("nil op accepted")
	}
	if err := c.Reduce(9, []byte{1}, OpBXor, make([]byte, 1)); err == nil {
		t.Error("bad root accepted")
	}
	if err := c.Bcast(9, nil); err == nil {
		t.Error("bad bcast root accepted")
	}
	if err := c.Gather(9, nil, nil); err == nil {
		t.Error("bad gather root accepted")
	}
	if err := c.Alltoall(nil, nil); err == nil {
		t.Error("short alltoall slices accepted")
	}
	if err := c.Gather(0, []byte{1, 2}, [][]byte{}); err == nil {
		t.Error("short gather out accepted")
	}
}

func TestOpHelpers(t *testing.T) {
	a := PackFloat64s([]float64{1, 5})
	b := PackFloat64s([]float64{3, 2})
	OpSumFloat64(a, b)
	if vs := UnpackFloat64s(a); vs[0] != 4 || vs[1] != 7 {
		t.Fatalf("sum = %v", vs)
	}
	a = PackFloat64s([]float64{1, 5})
	OpMaxFloat64(a, b)
	if vs := UnpackFloat64s(a); vs[0] != 3 || vs[1] != 5 {
		t.Fatalf("max = %v", vs)
	}
	x := []byte{0xF0, 0x0F}
	OpBXor(x, []byte{0xFF, 0xFF})
	if x[0] != 0x0F || x[1] != 0xF0 {
		t.Fatalf("xor = %v", x)
	}
	// Uneven xor lengths are tolerated.
	y := []byte{1, 2, 3}
	OpBXor(y, []byte{1})
	if y[0] != 0 || y[1] != 2 {
		t.Fatalf("short xor = %v", y)
	}
}
