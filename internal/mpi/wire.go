package mpi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/match"
)

// Message kinds on the wire.
const (
	kindEager      uint8 = iota + 1 // header + full payload (§IV-B eager)
	kindRTS                         // rendezvous ready-to-send: header + rkey
	kindAck                         // rendezvous completion acknowledgement
	kindSack                        // reliability cumulative sequence ack (reliable.go)
	kindEagerBatch                  // coalesced multi-message eager frame (coalesce.go)
)

// headerSize is the fixed wire header length. The layout mirrors what the
// paper's prototype carries: the matching triple, the payload size, the
// per-peer reliability sequence number, the rendezvous memory key, and the
// three sender-computed hash values of the §IV-D "inline hash values"
// optimization.
const headerSize = 64

// header is the decoded wire header.
type header struct {
	kind uint8
	src  int32
	tag  int32
	comm int32
	size uint32
	seq  uint32 // reliability sequence number; for kindSack, the
	// cumulative ack (all sequences below it were delivered)
	rkey   uint64
	hashes match.InlineHashes
}

// encode writes the header into dst[:headerSize].
func (h *header) encode(dst []byte) {
	_ = dst[headerSize-1]
	dst[0] = h.kind
	dst[1], dst[2], dst[3] = 0, 0, 0
	le := binary.LittleEndian
	le.PutUint32(dst[4:], uint32(h.src))
	le.PutUint32(dst[8:], uint32(h.tag))
	le.PutUint32(dst[12:], uint32(h.comm))
	le.PutUint32(dst[16:], h.size)
	le.PutUint32(dst[20:], h.seq)
	le.PutUint64(dst[24:], h.rkey)
	le.PutUint64(dst[32:], h.hashes.SrcTag)
	le.PutUint64(dst[40:], h.hashes.Tag)
	le.PutUint64(dst[48:], h.hashes.Src)
}

// seqOffset locates the sequence-number field so the reliability layer can
// patch an already-encoded header without re-encoding it.
const seqOffset = 20

// decodeHeader parses a wire header.
func decodeHeader(b []byte) (header, error) {
	if len(b) < headerSize {
		return header{}, fmt.Errorf("mpi: short header: %d bytes", len(b))
	}
	le := binary.LittleEndian
	h := header{
		kind: b[0],
		src:  int32(le.Uint32(b[4:])),
		tag:  int32(le.Uint32(b[8:])),
		comm: int32(le.Uint32(b[12:])),
		size: le.Uint32(b[16:]),
		seq:  le.Uint32(b[20:]),
		rkey: le.Uint64(b[24:]),
		hashes: match.InlineHashes{
			SrcTag: le.Uint64(b[32:]),
			Tag:    le.Uint64(b[40:]),
			Src:    le.Uint64(b[48:]),
		},
	}
	if h.kind < kindEager || h.kind > kindEagerBatch {
		return header{}, fmt.Errorf("mpi: unknown message kind %d", h.kind)
	}
	return h, nil
}

// payloadOf returns the eager payload slice of a wire buffer, or nil for
// header-only messages (RTS, ACK).
func payloadOf(h header, wire []byte) []byte {
	if h.kind != kindEager {
		return nil
	}
	return wire[headerSize : headerSize+int(h.size)]
}

// ---------------------------------------------------------------------------
// Coalesced eager frames (kindEagerBatch).
//
// A frame aggregates consecutive eager sends toward one destination on one
// communicator into a single wire message, so the fabric, the completion
// queue, and the reliability sublayer all see one unit where they used to
// see N. The frame reuses the fixed 64-byte header — src and comm are
// shared by every sub-message, size is the body length, seq is the frame's
// single reliability sequence number, and rkey carries the sub-message
// count — followed by one variable-length sub-record per message:
//
//	tag     varint (zigzag; collective tags are negative)
//	size    uvarint payload bytes
//	hashes  3 × 8 bytes LE (the §IV-D sender-computed inline hash values)
//	payload size bytes
//
// The varint discipline mirrors internal/trace/codec.go: integers that are
// almost always small pay one byte, and the fixed-width hash words keep
// decoding branch-free. A typical 8-byte payload costs ~34 wire bytes in a
// frame versus 72 as a standalone eager message — but the real saving is
// the per-message doorbell, CQE, and sequencing overhead, which the frame
// pays once.

// subHdrMax bounds one sub-record's header: two max-length varints (10
// bytes each, though tags and sizes in practice fit in 1-2) plus the three
// 8-byte hash words.
const subHdrMax = 10 + 10 + 24

// maxBatchMsgs bounds the per-frame sub-message count: a hard cap that
// keeps hostile count fields from driving huge allocations during decode.
const maxBatchMsgs = 1 << 12

// zigzag maps signed to unsigned so small negative tags stay short.
func zigzag(v int32) uint64 { return uint64(uint32(v)<<1) ^ uint64(uint32(v>>31)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int32 { return int32(uint32(u)>>1) ^ -int32(uint32(u)&1) }

// appendSubRecord appends one sub-message record to a frame body.
func appendSubRecord(body []byte, tag int32, hashes match.InlineHashes, payload []byte) []byte {
	body = binary.AppendUvarint(body, zigzag(tag))
	body = binary.AppendUvarint(body, uint64(len(payload)))
	var h [24]byte
	le := binary.LittleEndian
	le.PutUint64(h[0:], hashes.SrcTag)
	le.PutUint64(h[8:], hashes.Tag)
	le.PutUint64(h[16:], hashes.Src)
	body = append(body, h[:]...)
	return append(body, payload...)
}

// subRecordSize is the encoded size of one sub-message record, used by the
// coalescer's size-threshold policy. It charges the worst-case varint
// widths so the policy check never under-reserves.
func subRecordSize(payload int) int { return subHdrMax + payload }

// subMsg is one decoded sub-message of a batch frame.
type subMsg struct {
	tag     int32
	hashes  match.InlineHashes
	payload []byte
}

// batchIter walks the sub-records of a batch frame body. Every length is
// validated against the remaining body, so arbitrary bytes can never panic
// or slice out of range.
type batchIter struct {
	body []byte
	left int // sub-messages remaining per the frame header
	err  error
}

// newBatchIter validates the frame-level invariants of a decoded batch
// header and returns an iterator over wire (the full header+body buffer).
func newBatchIter(h header, wire []byte) (batchIter, error) {
	if h.kind != kindEagerBatch {
		return batchIter{}, fmt.Errorf("mpi: not a batch frame (kind %d)", h.kind)
	}
	n := int(h.rkey)
	if n < 1 || n > maxBatchMsgs {
		return batchIter{}, fmt.Errorf("mpi: batch count %d outside [1,%d]", n, maxBatchMsgs)
	}
	if int(h.size) != len(wire)-headerSize {
		return batchIter{}, fmt.Errorf("mpi: batch body %d bytes, header says %d",
			len(wire)-headerSize, h.size)
	}
	return batchIter{body: wire[headerSize:], left: n}, nil
}

// next decodes the next sub-message. It returns false at the end of the
// frame or on a malformed record; check err afterwards.
func (it *batchIter) next() (subMsg, bool) {
	if it.err != nil || it.left == 0 {
		if it.left == 0 && len(it.body) != 0 && it.err == nil {
			it.err = fmt.Errorf("mpi: %d trailing bytes after last sub-message", len(it.body))
		}
		return subMsg{}, false
	}
	it.left--
	tagU, n := binary.Uvarint(it.body)
	if n <= 0 {
		it.err = fmt.Errorf("mpi: truncated sub-message tag")
		return subMsg{}, false
	}
	it.body = it.body[n:]
	size, n := binary.Uvarint(it.body)
	if n <= 0 {
		it.err = fmt.Errorf("mpi: truncated sub-message size")
		return subMsg{}, false
	}
	it.body = it.body[n:]
	if len(it.body) < 24+int(size) {
		it.err = fmt.Errorf("mpi: sub-message needs %d bytes, frame has %d", 24+size, len(it.body))
		return subMsg{}, false
	}
	le := binary.LittleEndian
	m := subMsg{
		tag: unzigzag(tagU),
		hashes: match.InlineHashes{
			SrcTag: le.Uint64(it.body[0:]),
			Tag:    le.Uint64(it.body[8:]),
			Src:    le.Uint64(it.body[16:]),
		},
		payload: it.body[24 : 24+size : 24+size],
	}
	it.body = it.body[24+size:]
	return m, true
}

// fillSubEnvelope populates a pooled envelope from one sub-message of a
// frame sent by src on comm. Like fillEnvelope it allocates nothing: the
// payload still aliases the bounce buffer and must be stabilized before the
// buffer is reposted if the message goes unexpected.
func fillSubEnvelope(env *match.Envelope, src, comm int32, m subMsg) *match.Envelope {
	env.Reset()
	env.Source = match.Rank(src)
	env.Tag = match.Tag(m.tag)
	env.Comm = match.CommID(comm)
	env.Size = len(m.payload)
	env.SetInline(m.hashes)
	env.Data = m.payload
	return env
}

// fillEnvelope populates env — typically drawn from an EnvelopePool — with
// the matching envelope of a decoded message, reusing env's InlineHashes
// backing so the hot path allocates nothing. For eager messages, data must
// be the payload (which may alias a bounce buffer — the unexpected path is
// responsible for stabilizing it). For RTS messages the envelope carries
// the sender's memory key instead.
func fillEnvelope(env *match.Envelope, h header, data []byte) *match.Envelope {
	env.Reset()
	env.Source = match.Rank(h.src)
	env.Tag = match.Tag(h.tag)
	env.Comm = match.CommID(h.comm)
	env.Size = int(h.size)
	env.SetInline(h.hashes)
	switch h.kind {
	case kindEager:
		env.Data = data
	case kindRTS:
		env.SenderKey = h.rkey
	}
	return env
}
