package mpi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/match"
)

// Message kinds on the wire.
const (
	kindEager uint8 = iota + 1 // header + full payload (§IV-B eager)
	kindRTS                    // rendezvous ready-to-send: header + rkey
	kindAck                    // rendezvous completion acknowledgement
	kindSack                   // reliability cumulative sequence ack (reliable.go)
)

// headerSize is the fixed wire header length. The layout mirrors what the
// paper's prototype carries: the matching triple, the payload size, the
// per-peer reliability sequence number, the rendezvous memory key, and the
// three sender-computed hash values of the §IV-D "inline hash values"
// optimization.
const headerSize = 64

// header is the decoded wire header.
type header struct {
	kind   uint8
	src    int32
	tag    int32
	comm   int32
	size   uint32
	seq    uint32 // reliability sequence number; for kindSack, the
	// cumulative ack (all sequences below it were delivered)
	rkey   uint64
	hashes match.InlineHashes
}

// encode writes the header into dst[:headerSize].
func (h *header) encode(dst []byte) {
	_ = dst[headerSize-1]
	dst[0] = h.kind
	dst[1], dst[2], dst[3] = 0, 0, 0
	le := binary.LittleEndian
	le.PutUint32(dst[4:], uint32(h.src))
	le.PutUint32(dst[8:], uint32(h.tag))
	le.PutUint32(dst[12:], uint32(h.comm))
	le.PutUint32(dst[16:], h.size)
	le.PutUint32(dst[20:], h.seq)
	le.PutUint64(dst[24:], h.rkey)
	le.PutUint64(dst[32:], h.hashes.SrcTag)
	le.PutUint64(dst[40:], h.hashes.Tag)
	le.PutUint64(dst[48:], h.hashes.Src)
}

// seqOffset locates the sequence-number field so the reliability layer can
// patch an already-encoded header without re-encoding it.
const seqOffset = 20

// decodeHeader parses a wire header.
func decodeHeader(b []byte) (header, error) {
	if len(b) < headerSize {
		return header{}, fmt.Errorf("mpi: short header: %d bytes", len(b))
	}
	le := binary.LittleEndian
	h := header{
		kind: b[0],
		src:  int32(le.Uint32(b[4:])),
		tag:  int32(le.Uint32(b[8:])),
		comm: int32(le.Uint32(b[12:])),
		size: le.Uint32(b[16:]),
		seq:  le.Uint32(b[20:]),
		rkey: le.Uint64(b[24:]),
		hashes: match.InlineHashes{
			SrcTag: le.Uint64(b[32:]),
			Tag:    le.Uint64(b[40:]),
			Src:    le.Uint64(b[48:]),
		},
	}
	if h.kind < kindEager || h.kind > kindSack {
		return header{}, fmt.Errorf("mpi: unknown message kind %d", h.kind)
	}
	return h, nil
}

// payloadOf returns the eager payload slice of a wire buffer, or nil for
// header-only messages (RTS, ACK).
func payloadOf(h header, wire []byte) []byte {
	if h.kind != kindEager {
		return nil
	}
	return wire[headerSize : headerSize+int(h.size)]
}

// fillEnvelope populates env — typically drawn from an EnvelopePool — with
// the matching envelope of a decoded message, reusing env's InlineHashes
// backing so the hot path allocates nothing. For eager messages, data must
// be the payload (which may alias a bounce buffer — the unexpected path is
// responsible for stabilizing it). For RTS messages the envelope carries
// the sender's memory key instead.
func fillEnvelope(env *match.Envelope, h header, data []byte) *match.Envelope {
	env.Reset()
	env.Source = match.Rank(h.src)
	env.Tag = match.Tag(h.tag)
	env.Comm = match.CommID(h.comm)
	env.Size = int(h.size)
	env.SetInline(h.hashes)
	switch h.kind {
	case kindEager:
		env.Data = data
	case kindRTS:
		env.SenderKey = h.rkey
	}
	return env
}
