package mpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// Fake-clock unit tests for the reliability sublayer's retransmit timer.
// newReliabilityCore exposes injectable seams (now, xmit, getBuf/putBuf),
// so the timeout and backoff behaviour is driven deterministically here —
// no fabric, no goroutines, no wall-clock sleeps.

// relHarness is a reliability core bound to a manual clock and an
// in-memory transmit log.
type relHarness struct {
	rel  *reliability
	t    time.Time
	log  []string // "dst/seq@offset" per transmission, in order
	freq map[uint32]int
	rets int // putBuf releases
}

func newRelHarness(peers int, timeout time.Duration) *relHarness {
	h := &relHarness{
		rel:  newReliabilityCore(peers, timeout),
		t:    time.Unix(1000, 0),
		freq: make(map[uint32]int),
	}
	base := h.t
	h.rel.now = func() time.Time { return h.t }
	h.rel.xmit = func(dst int, wire []byte) error {
		seq := uint32(wire[seqOffset]) | uint32(wire[seqOffset+1])<<8 |
			uint32(wire[seqOffset+2])<<16 | uint32(wire[seqOffset+3])<<24
		h.log = append(h.log, fmt.Sprintf("%d/%d@%v", dst, seq, h.t.Sub(base)))
		h.freq[seq]++
		return nil
	}
	h.rel.putBuf = func([]byte) { h.rets++ }
	return h
}

// advance moves the clock forward and runs one retransmit-timer pass.
func (h *relHarness) advance(d time.Duration) {
	h.t = h.t.Add(d)
	h.rel.scanRetransmits(h.t)
}

// pending returns the single pending entry toward dst (fails if not 1).
func (h *relHarness) pending(t *testing.T, dst int) *relPending {
	t.Helper()
	s := &h.rel.sends[dst]
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) != 1 {
		t.Fatalf("pending[%d] holds %d entries, want 1", dst, len(s.pending))
	}
	for _, pe := range s.pending {
		return pe
	}
	return nil
}

func TestRetransmitBackoffDoublesToCap(t *testing.T) {
	const timeout = 10 * time.Millisecond
	h := newRelHarness(2, timeout)
	if h.rel.retxMax != 16*timeout {
		t.Fatalf("retxMax = %v, want %v", h.rel.retxMax, 16*timeout)
	}

	wire := make([]byte, headerSize)
	if err := h.rel.send(1, wire); err != nil {
		t.Fatal(err)
	}
	if len(h.log) != 1 {
		t.Fatalf("first transmission log = %v", h.log)
	}

	// Before the deadline nothing fires.
	h.advance(timeout - time.Millisecond)
	if len(h.log) != 1 {
		t.Fatalf("premature retransmit: %v", h.log)
	}

	// Each overdue pass doubles the backoff: 10→20→40→80→160, then the
	// 16×timeout cap holds it at 160ms for every later pass.
	wantBackoffs := []time.Duration{
		2 * timeout, 4 * timeout, 8 * timeout, 16 * timeout,
		16 * timeout, 16 * timeout,
	}
	for i, want := range wantBackoffs {
		pe := h.pending(t, 1)
		h.t = pe.deadline // jump exactly to the deadline (inclusive: !Before)
		h.rel.scanRetransmits(h.t)
		if got := h.pending(t, 1).backoff; got != want {
			t.Fatalf("pass %d: backoff = %v, want %v", i, got, want)
		}
		if len(h.log) != 2+i {
			t.Fatalf("pass %d: %d transmissions, want %d", i, len(h.log), 2+i)
		}
	}

	snap := h.rel.snapshot()
	if snap.Sent != 1 || snap.Retransmits != uint64(len(wantBackoffs)) {
		t.Errorf("snapshot = %+v", snap)
	}
	// Every retransmission observed its post-doubling backoff.
	hist := h.rel.obs.Hist(obs.HistRetxBackoffNs)
	if hist.Count != uint64(len(wantBackoffs)) {
		t.Errorf("backoff histogram count = %d, want %d", hist.Count, len(wantBackoffs))
	}
	var wantSum uint64
	for _, b := range wantBackoffs {
		wantSum += uint64(b)
	}
	if hist.Sum != wantSum {
		t.Errorf("backoff histogram sum = %d, want %d", hist.Sum, wantSum)
	}
}

func TestAckStopsRetransmitsAndResetsBackoff(t *testing.T) {
	const timeout = 5 * time.Millisecond
	h := newRelHarness(3, timeout)

	if err := h.rel.send(2, make([]byte, headerSize)); err != nil {
		t.Fatal(err)
	}
	// Let it back off twice.
	h.advance(timeout)
	h.advance(2 * timeout)
	if got := h.pending(t, 2).backoff; got != 4*timeout {
		t.Fatalf("backoff before ack = %v, want %v", got, 4*timeout)
	}
	sent := len(h.log)

	// Cumulative sack from rank 2 covering seq 0 retires the entry and
	// releases its retained buffer.
	h.rel.handleSack(header{src: 2, seq: 1})
	if h.rets != 1 {
		t.Errorf("putBuf calls = %d, want 1", h.rets)
	}
	if n := len(h.rel.sends[2].pending); n != 0 {
		t.Fatalf("%d entries still pending after ack", n)
	}
	if snap := h.rel.snapshot(); snap.Acked != 1 {
		t.Errorf("Acked = %d, want 1", snap.Acked)
	}

	// The timer goes quiet: no matter how far the clock advances, nothing
	// is retransmitted.
	for i := 0; i < 5; i++ {
		h.advance(100 * timeout)
	}
	if len(h.log) != sent {
		t.Fatalf("retransmit after ack: %v", h.log[sent:])
	}

	// A fresh send starts back at the base backoff, not the backed-off one.
	if err := h.rel.send(2, make([]byte, headerSize)); err != nil {
		t.Fatal(err)
	}
	pe := h.pending(t, 2)
	if pe.backoff != timeout {
		t.Errorf("new send backoff = %v, want reset to %v", pe.backoff, timeout)
	}
	if want := h.t.Add(timeout); !pe.deadline.Equal(want) {
		t.Errorf("new send deadline = %v, want %v", pe.deadline, want)
	}
}

func TestStaleSackRetiresNothing(t *testing.T) {
	h := newRelHarness(2, 5*time.Millisecond)
	if err := h.rel.send(1, make([]byte, headerSize)); err != nil {
		t.Fatal(err)
	}
	// A sack at the sender's own sequence horizon (seq 0 not yet received)
	// covers nothing; the entry must survive.
	h.rel.handleSack(header{src: 1, seq: 0})
	if n := len(h.rel.sends[1].pending); n != 1 {
		t.Fatalf("pending = %d after stale sack, want 1", n)
	}
	if snap := h.rel.snapshot(); snap.Acked != 0 {
		t.Errorf("Acked = %d, want 0", snap.Acked)
	}
	// Out-of-range acker ranks are ignored, not a crash.
	h.rel.handleSack(header{src: 99, seq: 7})
	h.rel.handleSack(header{src: -1, seq: 7})
}

func TestRetransmitRNRCountedAndRetried(t *testing.T) {
	const timeout = 5 * time.Millisecond
	h := newRelHarness(2, timeout)
	refuse := true
	inner := h.rel.xmit
	h.rel.xmit = func(dst int, wire []byte) error {
		if refuse {
			return rdma.ErrNoReceive
		}
		return inner(dst, wire)
	}

	// A refused first transmission is not an error: the entry stays pending.
	if err := h.rel.send(1, make([]byte, headerSize)); err != nil {
		t.Fatal(err)
	}
	if snap := h.rel.snapshot(); snap.Sent != 1 || snap.SendRNR != 1 {
		t.Fatalf("snapshot after refused send = %+v", snap)
	}

	// A refused retransmission counts both ways and keeps backing off.
	h.advance(timeout)
	snap := h.rel.snapshot()
	if snap.Retransmits != 1 || snap.SendRNR != 2 {
		t.Fatalf("snapshot after refused retransmit = %+v", snap)
	}

	// Once the fabric accepts, the retransmission lands on the wire.
	refuse = false
	h.advance(2 * timeout)
	if len(h.log) != 1 {
		t.Fatalf("transmit log = %v, want exactly the accepted retransmit", h.log)
	}
}

// TestRetransmitScheduleDeterministic runs the identical fake-clock script
// on two fresh cores and demands byte-identical transmit logs and
// snapshots: the backoff schedule has no jitter and no hidden global
// state.
func TestRetransmitScheduleDeterministic(t *testing.T) {
	run := func() ([]string, ReliabilitySnapshot) {
		h := newRelHarness(4, 7*time.Millisecond)
		for dst := 1; dst < 4; dst++ {
			for k := 0; k < 3; k++ {
				if err := h.rel.send(dst, make([]byte, headerSize)); err != nil {
					t.Fatal(err)
				}
			}
		}
		steps := []time.Duration{3, 5, 8, 13, 21, 34, 55, 89}
		for _, ms := range steps {
			h.advance(time.Duration(ms) * time.Millisecond)
		}
		h.rel.handleSack(header{src: 2, seq: 3}) // retire dst 2 entirely
		for _, ms := range steps {
			h.advance(time.Duration(ms) * time.Millisecond)
		}
		return h.log, h.rel.snapshot()
	}

	log1, snap1 := run()
	log2, snap2 := run()
	if snap1 != snap2 {
		t.Fatalf("snapshots diverge:\n  %+v\n  %+v", snap1, snap2)
	}
	if len(log1) != len(log2) {
		t.Fatalf("transmit logs diverge in length: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("transmit logs diverge at %d: %q vs %q", i, log1[i], log2[i])
		}
	}
	if snap1.Acked != 3 || snap1.Sent != 9 || snap1.Retransmits == 0 {
		t.Errorf("schedule snapshot = %+v", snap1)
	}
}
