package mpi

import (
	"fmt"
	"sync"
	"testing"
)

// TestThreadMultiple exercises MPI_THREAD_MULTIPLE semantics (the paper's
// §I cites multithreaded matching as a pain point of lock-protected
// lists): several application threads per rank post receives and send
// concurrently. Every message must be delivered exactly once with the
// right payload, on both engines.
func TestThreadMultiple(t *testing.T) {
	const (
		threads = 4
		msgs    = 25
	)
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			var wg sync.WaitGroup

			// Receiver threads: each owns a tag range and posts its receives
			// concurrently with the others.
			recvErrs := make([]error, threads)
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					c := w.Proc(1).World()
					buf := make([]byte, 8)
					for i := 0; i < msgs; i++ {
						tag := th*1000 + i
						st, err := c.Recv(0, tag, buf)
						if err != nil {
							recvErrs[th] = err
							return
						}
						if st.Count != 2 || buf[0] != byte(th) || buf[1] != byte(i) {
							recvErrs[th] = fmt.Errorf("tag %d got (%d,%d)", tag, buf[0], buf[1])
							return
						}
					}
				}(th)
			}
			// Sender threads.
			sendErrs := make([]error, threads)
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					c := w.Proc(0).World()
					for i := 0; i < msgs; i++ {
						if err := c.Send(1, th*1000+i, []byte{byte(th), byte(i)}); err != nil {
							sendErrs[th] = err
							return
						}
					}
				}(th)
			}
			wg.Wait()
			for th := 0; th < threads; th++ {
				if recvErrs[th] != nil {
					t.Fatalf("recv thread %d: %v", th, recvErrs[th])
				}
				if sendErrs[th] != nil {
					t.Fatalf("send thread %d: %v", th, sendErrs[th])
				}
			}
		})
	}
}

// TestThreadMultipleWildcardDrain: concurrent wildcard receivers draining a
// multi-threaded sender flood — every message claimed exactly once.
func TestThreadMultipleWildcardDrain(t *testing.T) {
	const (
		senders = 3
		msgs    = 30
	)
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			var wg sync.WaitGroup
			for th := 0; th < senders; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					c := w.Proc(0).World()
					for i := 0; i < msgs; i++ {
						c.Send(1, 5, []byte{byte(th*msgs + i)})
					}
				}(th)
			}

			var mu sync.Mutex
			seen := make(map[byte]int)
			var drainWg sync.WaitGroup
			for th := 0; th < senders; th++ {
				drainWg.Add(1)
				go func() {
					defer drainWg.Done()
					c := w.Proc(1).World()
					buf := make([]byte, 1)
					for i := 0; i < msgs; i++ {
						if _, err := c.Recv(AnySource, AnyTag, buf); err != nil {
							t.Errorf("drain: %v", err)
							return
						}
						mu.Lock()
						seen[buf[0]]++
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			drainWg.Wait()
			if len(seen) != senders*msgs {
				t.Fatalf("drained %d distinct payloads, want %d", len(seen), senders*msgs)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("payload %d delivered %d times", v, n)
				}
			}
		})
	}
}
