package mpi

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dpa"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// cqDrainBatch is how many completions the host-side progress loops drain
// from the receive CQ per lock acquisition.
const cqDrainBatch = 64

// engine is a receiver-side matching engine: it owns the arrival path and
// accepts receive postings from the application.
type engine interface {
	// start launches the arrival-processing machinery.
	start() error
	// post presents a user receive; the engine completes it immediately
	// when a stored unexpected message matches.
	post(r *match.Recv) error
	// close shuts the arrival path down.
	close()
}

// ---------------------------------------------------------------------------
// Host engine: traditional on-CPU linked-list matching (Fig. 8 "MPI-CPU").

type hostEngine struct {
	p  *Proc
	mu sync.Mutex // guards lm: posts race with the progress goroutine
	lm *match.ListMatcher
	wg sync.WaitGroup
}

func newHostEngine(p *Proc) (*hostEngine, error) {
	return &hostEngine{p: p, lm: match.NewListMatcher()}, nil
}

func (e *hostEngine) start() error {
	e.wg.Add(1)
	go e.run()
	return nil
}

// run is the host progress loop: it drains the receive CQ sequentially —
// the serialization offloading removes. Completions are taken in batches
// (one CQ lock acquisition per batch) and envelopes come from the world's
// pool, so the steady-state loop allocates nothing.
func (e *hostEngine) run() {
	defer e.wg.Done()
	batch := make([]rdma.Completion, cqDrainBatch)
	for cursor := uint64(0); ; {
		n, ok := e.p.recvCQ.WaitBatch(cursor, batch)
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			c := batch[i]
			if c.Err != nil {
				// Error completion (e.g. rdma.ErrBufferSize): the posted
				// buffer is attached unfilled; recycle it and move on.
				e.p.repost(c.Data)
				continue
			}
			h, err := decodeHeader(c.Data)
			if err != nil || h.kind == kindSack {
				e.p.repost(c.Data)
				continue
			}
			if h.kind == kindAck {
				e.p.handleAck(h)
				e.p.repost(c.Data)
				continue
			}
			env := fillEnvelope(e.p.w.envPool.Get(), h, payloadOf(h, c.Data))
			e.mu.Lock()
			r, matched := e.lm.Arrive(env)
			if !matched {
				// Stabilize before releasing the lock: a concurrent post
				// could otherwise take the envelope while it still aliases
				// the bounce buffer.
				e.p.stabilizeUnexpected(env)
			}
			e.mu.Unlock()
			if matched {
				e.p.deliverMatch(r, env)
				e.p.w.envPool.Put(env)
				e.p.recycleRecv(r)
			}
			e.p.repost(c.Data)
		}
		cursor += uint64(n)
		e.p.recvCQ.Trim(cursor) // keep the window bounded
		e.p.obs.Counters.Inc(obs.CtrCQDrains)
		e.p.obs.Counters.Add(obs.CtrCQCompletions, uint64(n))
		e.p.obs.Observe(obs.HistDrainBatch, uint64(n))
		if e.p.obs.Enabled() {
			e.p.obs.Event(obs.EvCQDrain, 0, uint64(n), cursor, uint64(n))
		}
	}
}

func (e *hostEngine) post(r *match.Recv) error {
	e.mu.Lock()
	env, ok := e.lm.PostRecv(r)
	e.mu.Unlock()
	if ok {
		e.p.deliverMatch(r, env)
		e.p.recycleUnexpected(env)
		e.p.recycleRecv(r)
	}
	return nil
}

func (e *hostEngine) close() {
	e.p.recvCQ.Close()
	e.wg.Wait()
}

// ---------------------------------------------------------------------------
// Offload engine: optimistic tag matching on the simulated DPA
// (Fig. 8 "Optimistic-DPA").

type offloadEngine struct {
	p       *Proc
	acc     *dpa.Accelerator
	matcher *core.OptimisticMatcher
	pipe    *dpa.Pipeline

	// Software fallback (§IV-E): communicators that opted out or did not
	// fit in DPA memory are matched on the host with the traditional list
	// algorithm. Fallback arrivals are diverted out of the matching blocks
	// through the pipeline's control path.
	fbMu          sync.Mutex
	fallback      *match.ListMatcher
	fallbackComms map[match.CommID]bool
}

func newOffloadEngine(p *Proc) (*offloadEngine, error) {
	acc, err := dpa.New(p.w.opts.DPA)
	if err != nil {
		return nil, err
	}
	mcfg := p.w.opts.Matcher
	if mcfg.BlockSize > acc.Threads() {
		return nil, fmt.Errorf("mpi: matcher block size %d exceeds %d DPA threads",
			mcfg.BlockSize, acc.Threads())
	}
	matcher, err := core.New(mcfg)
	if err != nil {
		return nil, err
	}
	// The rank's sink becomes the matcher's observability domain, so the
	// engine's counters, the pipeline's CQ-drain accounting, and the
	// reliability sublayer all export through one Named sink per rank.
	matcher.SetObs(p.obs)
	// Budget the default matching tables against DPA memory (§IV-E);
	// failure to fit the base set is a setup error.
	fp := matcher.ModelFootprint()
	if _, err := acc.Arena().Alloc(fp.Total()); err != nil {
		return nil, fmt.Errorf("mpi: matching tables (%d B) exceed DPA memory: %w", fp.Total(), err)
	}
	e := &offloadEngine{
		p: p, acc: acc, matcher: matcher,
		fallback:      match.NewListMatcher(),
		fallbackComms: make(map[match.CommID]bool),
	}
	// Stabilize unexpected payloads inside the matcher, under the store
	// lock, before the message becomes visible to posts: with posts running
	// concurrently with arrival blocks, stabilizing any later would let a
	// post deliver an envelope that still aliases the bounce buffer.
	matcher.SetUnexpectedHook(p.stabilizeUnexpected)
	// Apply communicator info objects: hints propagate to the engine;
	// opted-out or unbudgetable communicators fall back to software.
	for id, info := range p.w.opts.CommInfo {
		comm := match.CommID(id)
		if info.NoOffload {
			e.fallbackComms[comm] = true
			continue
		}
		if _, err := acc.Arena().Alloc(fp.Total()); err != nil {
			// §IV-E: "If it is not possible to allocate DPA resources at
			// communicator creation time, the MPI implementation is
			// expected to fall back to software tag matching."
			e.fallbackComms[comm] = true
			continue
		}
		e.matcher.SetCommHints(comm, info.Hints)
	}
	e.pipe = dpa.NewPipeline(acc, matcher, p.recvCQ)
	e.pipe.Envelopes = &p.w.envPool // share one pool across pipeline and posts
	e.pipe.Decode = e.decode
	e.pipe.Handle = e.handle
	e.pipe.Classify = e.classify
	e.pipe.Control = e.control
	return e, nil
}

// classify routes completions: error completions, ACKs, sacks, and
// fallback-communicator messages bypass the matching blocks.
func (e *offloadEngine) classify(c rdma.Completion) bool {
	if c.Err != nil {
		return false
	}
	h, err := decodeHeader(c.Data)
	if err != nil || h.kind == kindAck || h.kind == kindSack {
		return false
	}
	if len(e.fallbackComms) != 0 && e.fallbackComms[match.CommID(h.comm)] {
		return false
	}
	return true
}

// FallbackComms reports which communicators run on software matching.
func (e *offloadEngine) FallbackComms() []int32 {
	out := make([]int32, 0, len(e.fallbackComms))
	for c := range e.fallbackComms {
		out = append(out, int32(c))
	}
	return out
}

func (e *offloadEngine) start() error {
	e.pipe.Start()
	return nil
}

// decode runs on a DPA thread: parse the header and fill the pooled
// envelope. The eager payload still aliases the bounce buffer here;
// handle() decides whether it must be stabilized.
func (e *offloadEngine) decode(c rdma.Completion, env *match.Envelope) *match.Envelope {
	h, err := decodeHeader(c.Data)
	if err != nil {
		// Malformed traffic cannot occur from our own wire layer; match it
		// to nothing by using an impossible communicator.
		env.Comm = -1
		return env
	}
	return fillEnvelope(env, h, payloadOf(h, c.Data))
}

// handle runs on a DPA thread after the optimistic match: protocol handling
// per §IV-B, then bounce-buffer recycling. Matched envelopes are recycled
// by the pipeline; unexpected ones were already stabilized by the matcher's
// unexpected hook (before becoming visible to posts) and live in the
// matcher's store until post() delivers and recycles them.
func (e *offloadEngine) handle(tid int, res core.Result, c rdma.Completion) {
	if !res.Unexpected {
		e.p.deliverMatch(res.Recv, res.Env)
		e.p.recycleRecv(res.Recv)
	}
	e.p.repost(c.Data)
}

// control handles error completions, rendezvous ACKs, and
// fallback-communicator arrivals without entering a matching block.
func (e *offloadEngine) control(c rdma.Completion) {
	if c.Err != nil {
		e.p.repost(c.Data)
		return
	}
	h, err := decodeHeader(c.Data)
	if err != nil || h.kind == kindSack {
		e.p.repost(c.Data)
		return
	}
	if h.kind == kindAck {
		e.p.handleAck(h)
		e.p.repost(c.Data)
		return
	}
	// Software-matched communicator: traditional list matching on the host.
	env := fillEnvelope(e.p.w.envPool.Get(), h, payloadOf(h, c.Data))
	e.fbMu.Lock()
	r, matched := e.fallback.Arrive(env)
	if !matched {
		e.p.stabilizeUnexpected(env)
	}
	e.fbMu.Unlock()
	if matched {
		e.p.deliverMatch(r, env)
		e.p.w.envPool.Put(env)
		e.p.recycleRecv(r)
	}
	e.p.repost(c.Data)
}

func (e *offloadEngine) post(r *match.Recv) error {
	if len(e.fallbackComms) != 0 && e.fallbackComms[r.Comm] {
		e.fbMu.Lock()
		env, ok := e.fallback.PostRecv(r)
		e.fbMu.Unlock()
		if ok {
			e.p.deliverMatch(r, env)
			e.p.recycleUnexpected(env)
			e.p.recycleRecv(r)
		}
		return nil
	}
	env, ok, err := e.matcher.PostRecv(r)
	if err != nil {
		return err
	}
	if ok {
		e.p.deliverMatch(r, env)
		e.p.recycleUnexpected(env)
		e.p.recycleRecv(r)
	}
	return nil
}

func (e *offloadEngine) close() {
	e.pipe.Stop()
	e.acc.Close()
}

// ---------------------------------------------------------------------------
// Raw engine: no matching at all (Fig. 8 "RDMA-CPU"). Arrivals complete
// pending receives in FIFO order; source and tag are ignored. Only the
// eager protocol is supported.

type rawEngine struct {
	p     *Proc
	posts chan *match.Recv
	done  chan struct{}
	wg    sync.WaitGroup
}

func newRawEngine(p *Proc) (*rawEngine, error) {
	return &rawEngine{p: p, posts: make(chan *match.Recv, 4096), done: make(chan struct{})}, nil
}

func (e *rawEngine) start() error {
	e.wg.Add(1)
	go e.run()
	return nil
}

func (e *rawEngine) run() {
	defer e.wg.Done()
	batch := make([]rdma.Completion, cqDrainBatch)
	for cursor := uint64(0); ; {
		n, ok := e.p.recvCQ.WaitBatch(cursor, batch)
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			c := batch[i]
			if c.Err != nil {
				e.p.repost(c.Data)
				continue
			}
			h, err := decodeHeader(c.Data)
			if err != nil || h.kind == kindSack {
				e.p.repost(c.Data)
				continue
			}
			if h.kind == kindAck {
				e.p.handleAck(h)
				e.p.repost(c.Data)
				continue
			}
			// Raw mode has no unexpected store: block until a receive is posted.
			var r *match.Recv
			select {
			case r = <-e.posts:
			case <-e.done:
				return
			}
			req := r.User.(*Request)
			nc := copy(r.Buffer, payloadOf(h, c.Data))
			req.complete(Status{Source: int(h.src), Tag: int(h.tag), Count: nc}, nil)
			e.p.recycleRecv(r)
			e.p.repost(c.Data)
		}
		cursor += uint64(n)
		e.p.recvCQ.Trim(cursor)
	}
}

func (e *rawEngine) post(r *match.Recv) error {
	e.posts <- r
	return nil
}

func (e *rawEngine) close() {
	close(e.done)
	e.p.recvCQ.Close()
	e.wg.Wait()
}
