package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dpa"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// cqDrainBatch is how many completions the host-side progress loops drain
// from the receive CQ per lock acquisition.
const cqDrainBatch = 64

// engine is a receiver-side matching engine: it owns the arrival path and
// accepts receive postings from the application.
type engine interface {
	// start launches the arrival-processing machinery.
	start() error
	// post presents a user receive; the engine completes it immediately
	// when a stored unexpected message matches.
	post(r *match.Recv) error
	// close shuts the arrival path down.
	close()
}

// ---------------------------------------------------------------------------
// Host engine: traditional on-CPU linked-list matching (Fig. 8 "MPI-CPU").

type hostEngine struct {
	p  *Proc
	mu sync.Mutex // guards lm: posts race with the progress goroutine
	lm *match.ListMatcher
	wg sync.WaitGroup
}

func newHostEngine(p *Proc) (*hostEngine, error) {
	return &hostEngine{p: p, lm: match.NewListMatcher()}, nil
}

func (e *hostEngine) start() error {
	e.wg.Add(1)
	go e.run()
	return nil
}

// run is the host progress loop: it drains the receive CQ sequentially —
// the serialization offloading removes. Completions are taken in batches
// (one CQ lock acquisition per batch) and envelopes come from the world's
// pool, so the steady-state loop allocates nothing.
func (e *hostEngine) run() {
	defer e.wg.Done()
	batch := make([]rdma.Completion, cqDrainBatch)
	for cursor := uint64(0); ; {
		n, ok := e.p.recvCQ.WaitBatch(cursor, batch)
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			c := batch[i]
			if c.Err != nil {
				// Error completion (e.g. rdma.ErrBufferSize): the posted
				// buffer is attached unfilled; recycle it and move on.
				e.p.repost(c.Data)
				continue
			}
			h, err := decodeHeader(c.Data)
			if err != nil || h.kind == kindSack {
				e.p.repost(c.Data)
				continue
			}
			if h.kind == kindAck {
				e.p.handleAck(h)
				e.p.repost(c.Data)
				continue
			}
			if h.kind == kindEagerBatch {
				// One frame, a burst of arrivals: every sub-message flows
				// through the matcher before the bounce buffer is reposted.
				if it, err := newBatchIter(h, c.Data); err == nil {
					for {
						m, ok := it.next()
						if !ok {
							break
						}
						e.arrive(fillSubEnvelope(e.p.w.envPool.Get(), h.src, h.comm, m))
					}
				}
				e.p.repost(c.Data)
				continue
			}
			e.arrive(fillEnvelope(e.p.w.envPool.Get(), h, payloadOf(h, c.Data)))
			e.p.repost(c.Data)
		}
		cursor += uint64(n)
		e.p.recvCQ.Trim(cursor) // keep the window bounded
		e.p.obs.Counters.Inc(obs.CtrCQDrains)
		e.p.obs.Counters.Add(obs.CtrCQCompletions, uint64(n))
		e.p.obs.Observe(obs.HistDrainBatch, uint64(n))
		if e.p.obs.Enabled() {
			e.p.obs.Event(obs.EvCQDrain, 0, uint64(n), cursor, uint64(n))
		}
	}
}

// arrive runs one envelope through the list matcher and delivers or
// stores it. The envelope's payload may alias a bounce buffer; it is
// stabilized under the lock when the message goes unexpected, so the
// caller may repost the buffer as soon as arrive returns.
func (e *hostEngine) arrive(env *match.Envelope) {
	e.mu.Lock()
	r, matched := e.lm.Arrive(env)
	if !matched {
		// Stabilize before releasing the lock: a concurrent post could
		// otherwise take the envelope while it still aliases the bounce
		// buffer.
		e.p.stabilizeUnexpected(env)
	}
	e.mu.Unlock()
	if matched {
		e.p.deliverMatch(r, env)
		e.p.w.envPool.Put(env)
		e.p.recycleRecv(r)
	}
}

func (e *hostEngine) post(r *match.Recv) error {
	e.mu.Lock()
	env, ok := e.lm.PostRecv(r)
	e.mu.Unlock()
	if ok {
		e.p.deliverMatch(r, env)
		e.p.recycleUnexpected(env)
		e.p.recycleRecv(r)
	}
	return nil
}

func (e *hostEngine) close() {
	e.p.recvCQ.Close()
	e.wg.Wait()
}

// ---------------------------------------------------------------------------
// Offload engine: optimistic tag matching on the simulated DPA
// (Fig. 8 "Optimistic-DPA").

type offloadEngine struct {
	p       *Proc
	acc     *dpa.Accelerator
	matcher *core.OptimisticMatcher
	pipe    *dpa.Pipeline

	// Software fallback (§IV-E): communicators that opted out or did not
	// fit in DPA memory are matched on the host with the traditional list
	// algorithm. Fallback arrivals are diverted out of the matching blocks
	// through the pipeline's control path.
	fbMu          sync.Mutex
	fallback      *match.ListMatcher
	fallbackComms map[match.CommID]bool
}

func newOffloadEngine(p *Proc) (*offloadEngine, error) {
	acc, err := dpa.New(p.w.opts.DPA)
	if err != nil {
		return nil, err
	}
	mcfg := p.w.opts.Matcher
	if mcfg.BlockSize > acc.Threads() {
		return nil, fmt.Errorf("mpi: matcher block size %d exceeds %d DPA threads",
			mcfg.BlockSize, acc.Threads())
	}
	matcher, err := core.New(mcfg)
	if err != nil {
		return nil, err
	}
	// The rank's sink becomes the matcher's observability domain, so the
	// engine's counters, the pipeline's CQ-drain accounting, and the
	// reliability sublayer all export through one Named sink per rank.
	matcher.SetObs(p.obs)
	// Budget the default matching tables against DPA memory (§IV-E);
	// failure to fit the base set is a setup error.
	fp := matcher.ModelFootprint()
	if _, err := acc.Arena().Alloc(fp.Total()); err != nil {
		return nil, fmt.Errorf("mpi: matching tables (%d B) exceed DPA memory: %w", fp.Total(), err)
	}
	e := &offloadEngine{
		p: p, acc: acc, matcher: matcher,
		fallback:      match.NewListMatcher(),
		fallbackComms: make(map[match.CommID]bool),
	}
	// Stabilize unexpected payloads inside the matcher, under the store
	// lock, before the message becomes visible to posts: with posts running
	// concurrently with arrival blocks, stabilizing any later would let a
	// post deliver an envelope that still aliases the bounce buffer.
	matcher.SetUnexpectedHook(p.stabilizeUnexpected)
	// Apply communicator info objects: hints propagate to the engine;
	// opted-out or unbudgetable communicators fall back to software.
	for id, info := range p.w.opts.CommInfo {
		comm := match.CommID(id)
		if info.NoOffload {
			e.fallbackComms[comm] = true
			continue
		}
		if _, err := acc.Arena().Alloc(fp.Total()); err != nil {
			// §IV-E: "If it is not possible to allocate DPA resources at
			// communicator creation time, the MPI implementation is
			// expected to fall back to software tag matching."
			e.fallbackComms[comm] = true
			continue
		}
		e.matcher.SetCommHints(comm, info.Hints)
	}
	e.pipe = dpa.NewPipeline(acc, matcher, p.recvCQ)
	e.pipe.Envelopes = &p.w.envPool // share one pool across pipeline and posts
	e.pipe.Decode = e.decode
	e.pipe.Handle = e.handle
	e.pipe.Classify = e.classify
	e.pipe.Control = e.control
	e.pipe.Expand = e.expand
	return e, nil
}

// subImm marks a completion synthesized by expand for one sub-message of
// a coalesced frame. The fabric always delivers imm 0 (this layer sends
// with imm 0 everywhere), so the marker cannot collide with real traffic.
const subImm uint32 = 1

// frameRef ties the sub-message completions of one expanded frame back to
// their shared bounce buffer. The last Handle to release its sub-message
// reposts the buffer; refs themselves are pooled so the unbatching path
// allocates nothing in steady state.
type frameRef struct {
	buf       []byte
	remaining atomic.Int32
}

var frameRefPool = sync.Pool{New: func() any { return new(frameRef) }}

// expand unbatches a coalesced frame into one completion per sub-message
// for block formation. Non-frame completions pass through unchanged. Each
// sub-completion carries the sub-record slice as Data, the frame's
// (src, comm) packed into WRID, the subImm marker, and a shared frameRef
// so the bounce buffer is reposted exactly once, after the last
// sub-message's protocol handling. A malformed frame (impossible from our
// own wire layer, but the decoder must not trust the wire) is dropped
// whole and its buffer reposted immediately.
func (e *offloadEngine) expand(c rdma.Completion, out []rdma.Completion) []rdma.Completion {
	h, err := decodeHeader(c.Data)
	if err != nil || h.kind != kindEagerBatch {
		return append(out, c)
	}
	it, err := newBatchIter(h, c.Data)
	if err != nil {
		e.p.repost(c.Data)
		return out
	}
	ref := frameRefPool.Get().(*frameRef)
	ref.buf = c.Data
	base := len(out)
	body := c.Data[headerSize:]
	wrid := uint64(uint32(h.src))<<32 | uint64(uint32(h.comm))
	for {
		start := len(body) - len(it.body)
		m, ok := it.next()
		if !ok {
			break
		}
		end := len(body) - len(it.body)
		out = append(out, rdma.Completion{
			Op:    c.Op,
			WRID:  wrid,
			Bytes: len(m.payload),
			Imm:   subImm,
			Data:  body[start:end:end],
			Aux:   ref,
		})
	}
	if it.err != nil {
		out = out[:base]
		ref.buf = nil
		frameRefPool.Put(ref)
		e.p.repost(c.Data)
		return out
	}
	ref.remaining.Store(int32(len(out) - base))
	return out
}

// release recycles a completion's bounce buffer after protocol handling:
// directly for lone messages, through the frame's reference count for
// expanded sub-messages.
func (e *offloadEngine) release(c rdma.Completion) {
	if ref, ok := c.Aux.(*frameRef); ok {
		if ref.remaining.Add(-1) == 0 {
			buf := ref.buf
			ref.buf = nil
			frameRefPool.Put(ref)
			e.p.repost(buf)
		}
		return
	}
	e.p.repost(c.Data)
}

// classify routes completions: error completions, ACKs, sacks, and
// fallback-communicator messages bypass the matching blocks.
func (e *offloadEngine) classify(c rdma.Completion) bool {
	if c.Err != nil {
		return false
	}
	h, err := decodeHeader(c.Data)
	if err != nil || h.kind == kindAck || h.kind == kindSack {
		return false
	}
	if len(e.fallbackComms) != 0 && e.fallbackComms[match.CommID(h.comm)] {
		return false
	}
	return true
}

// FallbackComms reports which communicators run on software matching.
func (e *offloadEngine) FallbackComms() []int32 {
	out := make([]int32, 0, len(e.fallbackComms))
	for c := range e.fallbackComms {
		out = append(out, int32(c))
	}
	return out
}

func (e *offloadEngine) start() error {
	e.pipe.Start()
	return nil
}

// decode runs on a DPA thread: parse the header and fill the pooled
// envelope. The eager payload still aliases the bounce buffer here;
// handle() decides whether it must be stabilized.
func (e *offloadEngine) decode(c rdma.Completion, env *match.Envelope) *match.Envelope {
	if c.Imm == subImm {
		// A sub-message expanded out of a coalesced frame: Data is one
		// sub-record, WRID carries the frame's (src, comm).
		it := batchIter{body: c.Data, left: 1}
		m, ok := it.next()
		if !ok {
			env.Reset()
			env.Comm = -1
			return env
		}
		return fillSubEnvelope(env, int32(c.WRID>>32), int32(uint32(c.WRID)), m)
	}
	h, err := decodeHeader(c.Data)
	if err != nil {
		// Malformed traffic cannot occur from our own wire layer; match it
		// to nothing by using an impossible communicator.
		env.Comm = -1
		return env
	}
	return fillEnvelope(env, h, payloadOf(h, c.Data))
}

// handle runs on a DPA thread after the optimistic match: protocol handling
// per §IV-B, then bounce-buffer recycling. Matched envelopes are recycled
// by the pipeline; unexpected ones were already stabilized by the matcher's
// unexpected hook (before becoming visible to posts) and live in the
// matcher's store until post() delivers and recycles them.
func (e *offloadEngine) handle(tid int, res core.Result, c rdma.Completion) {
	if !res.Unexpected {
		e.p.deliverMatch(res.Recv, res.Env)
		e.p.recycleRecv(res.Recv)
	}
	e.release(c)
}

// control handles error completions, rendezvous ACKs, and
// fallback-communicator arrivals without entering a matching block.
func (e *offloadEngine) control(c rdma.Completion) {
	if c.Err != nil {
		e.p.repost(c.Data)
		return
	}
	h, err := decodeHeader(c.Data)
	if err != nil || h.kind == kindSack {
		e.p.repost(c.Data)
		return
	}
	if h.kind == kindAck {
		e.p.handleAck(h)
		e.p.repost(c.Data)
		return
	}
	// Software-matched communicator: traditional list matching on the host.
	// A coalesced frame on a fallback communicator unbatches here — every
	// sub-message flows through the list matcher before the repost.
	if h.kind == kindEagerBatch {
		if it, err := newBatchIter(h, c.Data); err == nil {
			for {
				m, ok := it.next()
				if !ok {
					break
				}
				e.fbArrive(fillSubEnvelope(e.p.w.envPool.Get(), h.src, h.comm, m))
			}
		}
		e.p.repost(c.Data)
		return
	}
	e.fbArrive(fillEnvelope(e.p.w.envPool.Get(), h, payloadOf(h, c.Data)))
	e.p.repost(c.Data)
}

// fbArrive runs one envelope through the fallback list matcher, exactly
// like hostEngine.arrive: unexpected payloads are stabilized under the
// lock, so the caller may repost the bounce buffer on return.
func (e *offloadEngine) fbArrive(env *match.Envelope) {
	e.fbMu.Lock()
	r, matched := e.fallback.Arrive(env)
	if !matched {
		e.p.stabilizeUnexpected(env)
	}
	e.fbMu.Unlock()
	if matched {
		e.p.deliverMatch(r, env)
		e.p.w.envPool.Put(env)
		e.p.recycleRecv(r)
	}
}

func (e *offloadEngine) post(r *match.Recv) error {
	if len(e.fallbackComms) != 0 && e.fallbackComms[r.Comm] {
		e.fbMu.Lock()
		env, ok := e.fallback.PostRecv(r)
		e.fbMu.Unlock()
		if ok {
			e.p.deliverMatch(r, env)
			e.p.recycleUnexpected(env)
			e.p.recycleRecv(r)
		}
		return nil
	}
	env, ok, err := e.matcher.PostRecv(r)
	if err != nil {
		return err
	}
	if ok {
		e.p.deliverMatch(r, env)
		e.p.recycleUnexpected(env)
		e.p.recycleRecv(r)
	}
	return nil
}

func (e *offloadEngine) close() {
	e.pipe.Stop()
	e.acc.Close()
}

// ---------------------------------------------------------------------------
// Raw engine: no matching at all (Fig. 8 "RDMA-CPU"). Arrivals complete
// pending receives in FIFO order; source and tag are ignored. Only the
// eager protocol is supported.

type rawEngine struct {
	p     *Proc
	posts chan *match.Recv
	done  chan struct{}
	wg    sync.WaitGroup
}

func newRawEngine(p *Proc) (*rawEngine, error) {
	return &rawEngine{p: p, posts: make(chan *match.Recv, 4096), done: make(chan struct{})}, nil
}

func (e *rawEngine) start() error {
	e.wg.Add(1)
	go e.run()
	return nil
}

func (e *rawEngine) run() {
	defer e.wg.Done()
	batch := make([]rdma.Completion, cqDrainBatch)
	for cursor := uint64(0); ; {
		n, ok := e.p.recvCQ.WaitBatch(cursor, batch)
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			c := batch[i]
			if c.Err != nil {
				e.p.repost(c.Data)
				continue
			}
			h, err := decodeHeader(c.Data)
			if err != nil || h.kind == kindSack {
				e.p.repost(c.Data)
				continue
			}
			if h.kind == kindAck {
				e.p.handleAck(h)
				e.p.repost(c.Data)
				continue
			}
			if h.kind == kindEagerBatch {
				if it, err := newBatchIter(h, c.Data); err == nil {
					for {
						m, ok := it.next()
						if !ok {
							break
						}
						if !e.completeNext(int(h.src), int(m.tag), m.payload) {
							return
						}
					}
				}
				e.p.repost(c.Data)
				continue
			}
			if !e.completeNext(int(h.src), int(h.tag), payloadOf(h, c.Data)) {
				return
			}
			e.p.repost(c.Data)
		}
		cursor += uint64(n)
		e.p.recvCQ.Trim(cursor)
	}
}

// completeNext pairs one eager arrival with the next posted receive in
// FIFO order. It reports false when the engine is shutting down.
// Raw mode has no unexpected store: it blocks until a receive is posted.
func (e *rawEngine) completeNext(src, tag int, payload []byte) bool {
	var r *match.Recv
	select {
	case r = <-e.posts:
	case <-e.done:
		return false
	}
	req := r.User.(*Request)
	nc := copy(r.Buffer, payload)
	req.complete(Status{Source: src, Tag: tag, Count: nc}, nil)
	e.p.recycleRecv(r)
	return true
}

func (e *rawEngine) post(r *match.Recv) error {
	e.posts <- r
	return nil
}

func (e *rawEngine) close() {
	close(e.done)
	e.p.recvCQ.Close()
	e.wg.Wait()
}
