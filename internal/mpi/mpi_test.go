package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// engines under test: every behavioural test runs against both matching
// engines (raw is exercised separately since it ignores matching).
func matchingEngines() []EngineKind { return []EngineKind{EngineHost, EngineOffload} }

func newTestWorld(t *testing.T, n int, kind EngineKind) *World {
	t.Helper()
	w, err := NewWorld(n, Options{
		Engine: kind,
		Matcher: core.Config{
			Bins: 128, MaxReceives: 1024, BlockSize: 8,
			EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestEagerSendRecv(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			msg := []byte("hello, tag matching")
			done := make(chan error, 1)
			go func() {
				done <- w.Proc(0).World().Send(1, 7, msg)
			}()
			buf := make([]byte, 64)
			st, err := w.Proc(1).World().Recv(0, 7, buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if st.Source != 0 || st.Tag != 7 || st.Count != len(msg) {
				t.Fatalf("status = %+v", st)
			}
			if !bytes.Equal(buf[:st.Count], msg) {
				t.Fatalf("payload = %q", buf[:st.Count])
			}
		})
	}
}

func TestPreposted(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			buf := make([]byte, 16)
			req, err := w.Proc(1).World().Irecv(0, 3, buf)
			if err != nil {
				t.Fatal(err)
			}
			if _, done, _ := req.Test(); done {
				t.Fatal("receive completed before any send")
			}
			if err := w.Proc(0).World().Send(1, 3, []byte("pre")); err != nil {
				t.Fatal(err)
			}
			st, err := req.Wait()
			if err != nil || st.Count != 3 {
				t.Fatalf("st=%+v err=%v", st, err)
			}
		})
	}
}

func TestUnexpectedThenPost(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			// Send first: the message must wait in the unexpected store.
			if err := w.Proc(0).World().Send(1, 9, []byte("early")); err != nil {
				t.Fatal(err)
			}
			// Give the arrival time to land in the unexpected store, then post.
			buf := make([]byte, 16)
			st, err := w.Proc(1).World().Recv(0, 9, buf)
			if err != nil {
				t.Fatal(err)
			}
			if string(buf[:st.Count]) != "early" {
				t.Fatalf("payload = %q", buf[:st.Count])
			}
		})
	}
}

func TestWildcards(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 3, kind)
			if err := w.Proc(2).World().Send(0, 42, []byte("any")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			st, err := w.Proc(0).World().Recv(AnySource, AnyTag, buf)
			if err != nil {
				t.Fatal(err)
			}
			if st.Source != 2 || st.Tag != 42 {
				t.Fatalf("status = %+v", st)
			}
		})
	}
}

func TestNonOvertakingSameSender(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			const n = 50
			go func() {
				for i := 0; i < n; i++ {
					w.Proc(0).World().Send(1, 5, []byte{byte(i)})
				}
			}()
			buf := make([]byte, 1)
			for i := 0; i < n; i++ {
				if _, err := w.Proc(1).World().Recv(0, 5, buf); err != nil {
					t.Fatal(err)
				}
				if buf[0] != byte(i) {
					t.Fatalf("message %d overtaken by %d", i, buf[0])
				}
			}
		})
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			big := make([]byte, 64*1024) // well above the 1 KiB eager limit
			for i := range big {
				big[i] = byte(i * 7)
			}
			var sendErr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				sendErr = w.Proc(0).World().Send(1, 11, big)
			}()
			buf := make([]byte, len(big))
			st, err := w.Proc(1).World().Recv(0, 11, buf)
			wg.Wait()
			if err != nil || sendErr != nil {
				t.Fatalf("recv err=%v send err=%v", err, sendErr)
			}
			if st.Count != len(big) || !bytes.Equal(buf, big) {
				t.Fatalf("rendezvous payload corrupted (count=%d)", st.Count)
			}
		})
	}
}

func TestRendezvousUnexpected(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			big := bytes.Repeat([]byte("xyz"), 10000)
			var wg sync.WaitGroup
			wg.Add(1)
			var sendErr error
			go func() {
				defer wg.Done()
				sendErr = w.Proc(0).World().Send(1, 1, big)
			}()
			// The RTS arrives before the receive is posted; the receive must
			// find it in the unexpected store and pull the data.
			buf := make([]byte, len(big))
			st, err := w.Proc(1).World().Recv(0, 1, buf)
			wg.Wait()
			if err != nil || sendErr != nil {
				t.Fatalf("recv err=%v send err=%v", err, sendErr)
			}
			if !bytes.Equal(buf[:st.Count], big) {
				t.Fatal("unexpected rendezvous payload corrupted")
			}
		})
	}
}

func TestManyToOneGatherPattern(t *testing.T) {
	// The matching-misery motivator: every rank sends to rank 0.
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 8
			w := newTestWorld(t, n, kind)
			var wg sync.WaitGroup
			for r := 1; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					w.Proc(r).World().Send(0, r, []byte(fmt.Sprintf("from-%d", r)))
				}(r)
			}
			got := map[int]string{}
			buf := make([]byte, 32)
			for i := 1; i < n; i++ {
				st, err := w.Proc(0).World().Recv(AnySource, AnyTag, buf)
				if err != nil {
					t.Fatal(err)
				}
				got[st.Source] = string(buf[:st.Count])
			}
			wg.Wait()
			for r := 1; r < n; r++ {
				if got[r] != fmt.Sprintf("from-%d", r) {
					t.Fatalf("rank %d: got %q", r, got[r])
				}
			}
		})
	}
}

func TestCommunicatorIsolation(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			// Same source and tag on two communicators must not cross.
			if err := w.Proc(0).Comm(1).Send(1, 5, []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := w.Proc(0).Comm(2).Send(1, 5, []byte("two")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			st, err := w.Proc(1).Comm(2).Recv(0, 5, buf)
			if err != nil || string(buf[:st.Count]) != "two" {
				t.Fatalf("comm 2 got %q err=%v", buf[:st.Count], err)
			}
			st, err = w.Proc(1).Comm(1).Recv(0, 5, buf)
			if err != nil || string(buf[:st.Count]) != "one" {
				t.Fatalf("comm 1 got %q err=%v", buf[:st.Count], err)
			}
		})
	}
}

func TestSelfSend(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 1, kind)
			req, err := w.Proc(0).World().Isend(0, 1, []byte("self"))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			st, err := w.Proc(0).World().Recv(0, 1, buf)
			if err != nil || string(buf[:st.Count]) != "self" {
				t.Fatalf("self-send got %q err=%v", buf[:st.Count], err)
			}
			if _, err := req.Wait(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSendrecvExchange(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			var wg sync.WaitGroup
			bufs := [2][]byte{make([]byte, 8), make([]byte, 8)}
			errs := [2]error{}
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					peer := 1 - r
					_, errs[r] = w.Proc(r).World().Sendrecv(
						peer, 1, []byte(fmt.Sprintf("r%d", r)),
						peer, 1, bufs[r])
				}(r)
			}
			wg.Wait()
			for r := 0; r < 2; r++ {
				if errs[r] != nil {
					t.Fatal(errs[r])
				}
				want := fmt.Sprintf("r%d", 1-r)
				if string(bufs[r][:2]) != want {
					t.Fatalf("rank %d got %q, want %q", r, bufs[r][:2], want)
				}
			}
		})
	}
}

func TestBarrier(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 4
			w := newTestWorld(t, n, kind)
			var counter int32
			var mu sync.Mutex
			var wg sync.WaitGroup
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for round := 0; round < 3; round++ {
						mu.Lock()
						counter++
						mu.Unlock()
						if err := w.Proc(r).World().Barrier(); err != nil {
							t.Errorf("rank %d barrier: %v", r, err)
							return
						}
						mu.Lock()
						c := counter
						mu.Unlock()
						if c < int32((round+1)*n) {
							t.Errorf("rank %d passed barrier %d with counter %d", r, round, c)
							return
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

func TestTruncation(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			if err := w.Proc(0).World().Send(1, 2, []byte("longer than buf")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 4)
			_, err := w.Proc(1).World().Recv(0, 2, buf)
			if err != ErrTruncated {
				t.Fatalf("err = %v, want ErrTruncated", err)
			}
			if string(buf) != "long" {
				t.Fatalf("partial payload = %q", buf)
			}
		})
	}
}

func TestRawEngineFIFO(t *testing.T) {
	w := newTestWorld(t, 2, EngineRaw)
	const n = 20
	go func() {
		for i := 0; i < n; i++ {
			w.Proc(0).World().Send(1, i, []byte{byte(i)})
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < n; i++ {
		// Raw mode ignores source and tag: any receive takes the next message.
		st, err := w.Proc(1).World().Recv(0, 999, buf)
		if err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) || st.Tag != i {
			t.Fatalf("raw FIFO broken at %d: got %d (tag %d)", i, buf[0], st.Tag)
		}
	}
}

func TestArgumentValidation(t *testing.T) {
	w := newTestWorld(t, 2, EngineHost)
	c := w.Proc(0).World()
	if _, err := c.Isend(5, 0, nil); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := c.Isend(1, -3, nil); err == nil {
		t.Error("negative tag accepted")
	}
	if _, err := c.Irecv(9, 0, nil); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := c.Irecv(0, -7, nil); err == nil {
		t.Error("negative non-wildcard tag accepted")
	}
	if _, err := NewWorld(0, Options{}); err == nil {
		t.Error("empty world accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("reserved communicator id accepted")
		}
	}()
	w.Proc(0).Comm(-1)
}

func TestOffloadStatsVisible(t *testing.T) {
	w := newTestWorld(t, 2, EngineOffload)
	if w.Proc(1).Matcher() == nil {
		t.Fatal("offload engine must expose its matcher")
	}
	if w.Proc(1).Matcher().Stats().Messages != 0 {
		t.Fatal("fresh matcher has traffic")
	}
	if err := w.Proc(0).World().Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := w.Proc(1).World().Recv(0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if w.Proc(1).Matcher().Stats().Messages == 0 {
		t.Fatal("matcher saw no messages")
	}
	// Host stats only meaningful on the host engine.
	if w.Proc(1).HostStats().Matched != 0 {
		t.Fatal("host stats nonzero on offload engine")
	}
	if w.Proc(0).Matcher() == nil {
		t.Fatal("sender matcher missing")
	}
}

func TestHostStatsVisible(t *testing.T) {
	w := newTestWorld(t, 2, EngineHost)
	if err := w.Proc(0).World().Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := w.Proc(1).World().Recv(0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if w.Proc(1).HostStats().Matched == 0 {
		t.Fatal("host engine recorded no matches")
	}
	if w.Proc(1).Matcher() != nil {
		t.Fatal("host engine must not expose an optimistic matcher")
	}
}

func TestEngineKindString(t *testing.T) {
	names := map[EngineKind]string{
		EngineHost:     "host-list",
		EngineOffload:  "offload-optimistic",
		EngineRaw:      "raw-rdma",
		EngineKind(42): "EngineKind(42)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d = %q, want %q", k, got, want)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := header{kind: kindRTS, src: 3, tag: 99, comm: 2, size: 4096, rkey: 0xdeadbeef}
	h.hashes.SrcTag, h.hashes.Tag, h.hashes.Src = 1, 2, 3
	var buf [headerSize]byte
	h.encode(buf[:])
	got, err := decodeHeader(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
	if _, err := decodeHeader(buf[:10]); err == nil {
		t.Fatal("short header accepted")
	}
	buf[0] = 99
	if _, err := decodeHeader(buf[:]); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestWaitallAndTest(t *testing.T) {
	w := newTestWorld(t, 2, EngineHost)
	var reqs []*Request
	for i := 0; i < 5; i++ {
		req, err := w.Proc(0).World().Isend(1, i, []byte("m"))
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
	}
	reqs = append(reqs, nil) // tolerated
	if err := Waitall(reqs...); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	for i := 0; i < 5; i++ {
		if _, err := w.Proc(1).World().Recv(0, i, buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestManyCommunicatorsStress(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			const comms, msgs = 4, 16
			var wg sync.WaitGroup
			for cid := int32(0); cid < comms; cid++ {
				wg.Add(1)
				go func(cid int32) {
					defer wg.Done()
					for i := 0; i < msgs; i++ {
						if err := w.Proc(0).Comm(cid).Send(1, i, []byte{byte(cid), byte(i)}); err != nil {
							t.Errorf("send comm %d: %v", cid, err)
							return
						}
					}
				}(cid)
			}
			for cid := int32(0); cid < comms; cid++ {
				wg.Add(1)
				go func(cid int32) {
					defer wg.Done()
					buf := make([]byte, 2)
					for i := 0; i < msgs; i++ {
						st, err := w.Proc(1).Comm(cid).Recv(0, i, buf)
						if err != nil {
							t.Errorf("recv comm %d: %v", cid, err)
							return
						}
						if buf[0] != byte(cid) || buf[1] != byte(i) || st.Tag != i {
							t.Errorf("comm %d msg %d: got (%d,%d)", cid, i, buf[0], buf[1])
							return
						}
					}
				}(cid)
			}
			wg.Wait()
		})
	}
}
