package mpi

import (
	"fmt"

	"repro/internal/match"
	"repro/internal/rdma"
)

// NewNetWorld creates the local member of an out-of-process world: this
// process hosts exactly one rank (t.Rank() of t.Size()) and all wire
// traffic — eager messages, coalesced kindEagerBatch frames, RTS/ACK
// rendezvous control, reliability sacks — crosses the given transport
// unchanged, byte-for-byte identical to what the in-process fabric carries.
//
// Over an unreliable transport (t.Reliable() == false, i.e. UDP) the
// reliability sublayer is always armed as the delivery filter: per-peer
// sequencing, duplicate suppression, reorder repair, and retransmission
// stop being fault-injection test gear and become load-bearing. Options.
// Faults additionally arms it on a reliable transport, but deterministic
// fault injection itself lives in the transport (netfabric.Config.Faults),
// not in the world.
//
// The world must quiesce before Close — run a final Barrier so no peer
// still expects acknowledgements, exactly as with in-process worlds.
func NewNetWorld(t rdma.Transport, opts Options) (*World, error) {
	if t == nil {
		return nil, fmt.Errorf("mpi: nil transport")
	}
	n, rank := t.Size(), t.Rank()
	if n < 1 || rank < 0 || rank >= n {
		return nil, fmt.Errorf("mpi: transport rank %d of %d out of range", rank, n)
	}
	opts.fill()
	w := &World{opts: opts, n: n, trans: t, closed: make(chan struct{})}
	w.recvs.New = func() any { return new(match.Recv) }

	p, err := newProc(w, rank, n)
	if err != nil {
		return nil, err
	}
	for j := 0; j < n; j++ {
		p.sendEP[j] = t.Endpoint(j)
	}
	w.procs = []*Proc{p}
	// Attach the receive datapath: inbound messages consume the rank's
	// bounce buffers and complete on its raw CQ, exactly like the QP
	// delivery engines of an in-process world.
	if err := t.Start(p.srq, p.rawCQ); err != nil {
		return nil, err
	}
	if err := p.start(); err != nil {
		return nil, err
	}
	return w, nil
}
