package mpi

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dpa"
)

func infoWorld(t *testing.T, info map[int32]CommInfo, mutate func(*Options)) *World {
	t.Helper()
	opts := Options{
		Engine: EngineOffload,
		Matcher: core.Config{
			Bins: 64, MaxReceives: 256, BlockSize: 8,
			EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
		},
		CommInfo: info,
	}
	if mutate != nil {
		mutate(&opts)
	}
	w, err := NewWorld(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestCommInfoHintsPropagate(t *testing.T) {
	w := infoWorld(t, map[int32]CommInfo{
		4: {Hints: core.Hints{NoAnySource: true, NoAnyTag: true}},
	}, nil)
	h := w.Proc(1).Matcher().CommHints(4)
	if !h.NoAnySource || !h.NoAnyTag {
		t.Fatalf("hints not propagated: %+v", h)
	}
	// A wildcard receive on the asserted communicator is erroneous.
	if _, err := w.Proc(1).Comm(4).Irecv(AnySource, 1, make([]byte, 4)); !errors.Is(err, core.ErrHintViolation) {
		t.Fatalf("hint violation not surfaced: %v", err)
	}
	// Fully specified traffic on the hinted communicator works.
	if err := w.Proc(0).Comm(4).Send(1, 1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if st, err := w.Proc(1).Comm(4).Recv(0, 1, buf); err != nil || st.Count != 2 {
		t.Fatalf("hinted comm traffic failed: %v %+v", err, st)
	}
}

func TestCommInfoNoOffloadFallback(t *testing.T) {
	w := infoWorld(t, map[int32]CommInfo{
		7: {NoOffload: true},
	}, nil)
	fb := w.Proc(1).FallbackComms()
	if len(fb) != 1 || fb[0] != 7 {
		t.Fatalf("fallback comms = %v, want [7]", fb)
	}

	// Traffic on the fallback communicator must flow (software matched)…
	if err := w.Proc(0).Comm(7).Send(1, 3, []byte("sw")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	st, err := w.Proc(1).Comm(7).Recv(0, 3, buf)
	if err != nil || string(buf[:st.Count]) != "sw" {
		t.Fatalf("fallback recv: %v %q", err, buf[:st.Count])
	}
	// …without touching the offloaded matcher.
	if got := w.Proc(1).Matcher().Stats().Messages; got != 0 {
		t.Fatalf("offloaded matcher saw %d messages for a fallback comm", got)
	}

	// The default communicator still goes through the DPA.
	if err := w.Proc(0).World().Send(1, 3, []byte("hw")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Proc(1).World().Recv(0, 3, buf); err != nil {
		t.Fatal(err)
	}
	if got := w.Proc(1).Matcher().Stats().Messages; got == 0 {
		t.Fatal("offloaded matcher idle for the default comm")
	}
}

func TestCommInfoFallbackUnexpected(t *testing.T) {
	// Unexpected handling on the software path: send first, post later.
	w := infoWorld(t, map[int32]CommInfo{9: {NoOffload: true}}, nil)
	if err := w.Proc(0).Comm(9).Send(1, 5, []byte("early")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	st, err := w.Proc(1).Comm(9).Recv(0, 5, buf)
	if err != nil || string(buf[:st.Count]) != "early" {
		t.Fatalf("fallback unexpected path: %v %q", err, buf[:st.Count])
	}
}

func TestCommInfoArenaExhaustionFallsBack(t *testing.T) {
	// Declare more communicators than DPA memory can host: the overflow
	// must fall back rather than fail.
	info := map[int32]CommInfo{}
	for id := int32(1); id <= 8; id++ {
		info[id] = CommInfo{}
	}
	w := infoWorld(t, info, func(o *Options) {
		// Base tables ≈ 64 bins ×3×20B + 256×64B ≈ 20 KiB. Room for the
		// base set plus roughly two declared comms.
		o.DPA = dpa.Config{Threads: 8, MemoryBytes: 64 * 1024}
	})
	fb := w.Proc(0).FallbackComms()
	if len(fb) == 0 {
		t.Fatal("no communicator fell back despite exhausted DPA memory")
	}
	if len(fb) == 8 {
		t.Fatal("every communicator fell back; expected some to fit")
	}
	// Fallback comms still deliver.
	id := fb[0]
	if err := w.Proc(0).Comm(id).Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := w.Proc(1).Comm(id).Recv(0, 1, buf); err != nil {
		t.Fatal(err)
	}
}

func TestAllowOvertakingEndToEnd(t *testing.T) {
	// allow_overtaking: messages still all arrive, pairing unconstrained.
	w := infoWorld(t, map[int32]CommInfo{
		2: {Hints: core.Hints{AllowOvertaking: true}},
	}, nil)
	c0, c1 := w.Proc(0).Comm(2), w.Proc(1).Comm(2)
	const n = 24
	go func() {
		for i := 0; i < n; i++ {
			c0.Send(1, 5, []byte{byte(i)})
		}
	}()
	seen := make(map[byte]bool)
	buf := make([]byte, 1)
	for i := 0; i < n; i++ {
		if _, err := c1.Recv(0, 5, buf); err != nil {
			t.Fatal(err)
		}
		if seen[buf[0]] {
			t.Fatalf("payload %d delivered twice", buf[0])
		}
		seen[buf[0]] = true
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct payloads, want %d", len(seen), n)
	}
	if w.Proc(1).Matcher().Stats().Relaxed == 0 {
		t.Fatal("relaxed path never used")
	}
}
