package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rdma"
)

// testFaultPlan is the fixed-seed schedule the acceptance criteria name:
// 5% drop, 2% duplication, plus mild reordering and RNR pressure.
func testFaultPlan() rdma.FaultPlan {
	return rdma.FaultPlan{
		Seed: 42,
		FaultRates: rdma.FaultRates{
			Drop:      0.05,
			Duplicate: 0.02,
			Delay:     0.02,
			RNR:       0.02,
		},
	}
}

// newFaultWorld builds a world with a short retransmit timeout so faulty
// runs converge quickly.
func newFaultWorld(t *testing.T, n int, kind EngineKind, plan rdma.FaultPlan) *World {
	t.Helper()
	w, err := NewWorld(n, Options{
		Engine:     kind,
		EagerLimit: 64,
		Matcher: core.Config{
			Bins: 128, MaxReceives: 1024, BlockSize: 8,
			EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
		},
		Faults:      plan,
		RetxTimeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// recvRecord is one completed receive as the application observed it.
type recvRecord struct {
	Source  int
	Tag     int
	Count   int
	Payload string
}

// workPayload is the deterministic byte pattern for message i from s to d;
// every third message exceeds the 64-byte eager limit and rides the
// rendezvous protocol.
func workPayload(s, d, i int) []byte {
	size := 1 + (i % 48)
	if i%3 == 2 {
		size = 160
	}
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(7*s + 13*d + 31*i + j)
	}
	return b
}

// runPairWorkload drives K fully-specified messages along every ordered
// rank pair concurrently and returns, per rank, the in-order receive
// records from each source — the matcher-visible outcome. Fully-specified
// receives make the pairing deterministic, so the outcome is comparable
// across runs regardless of fault schedule.
func runPairWorkload(t *testing.T, w *World, k int) [][][]recvRecord {
	t.Helper()
	n := w.Size()
	out := make([][][]recvRecord, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		out[r] = make([][]recvRecord, n)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Proc(r).World()
			var sends []*Request
			var recvs []*Request
			bufs := make(map[[2]int][]byte)
			// Post all receives first (some traffic arrives unexpected
			// anyway, exercising both matcher queues).
			for s := 0; s < n; s++ {
				if s == r {
					continue
				}
				for i := 0; i < k; i++ {
					buf := make([]byte, 256)
					bufs[[2]int{s, i}] = buf
					req, err := c.Irecv(s, s*k+i, buf)
					if err != nil {
						errs[r] = err
						return
					}
					recvs = append(recvs, req)
				}
			}
			for d := 0; d < n; d++ {
				if d == r {
					continue
				}
				for i := 0; i < k; i++ {
					req, err := c.Isend(d, r*k+i, workPayload(r, d, i))
					if err != nil {
						errs[r] = err
						return
					}
					sends = append(sends, req)
				}
			}
			if err := Waitall(sends...); err != nil {
				errs[r] = err
				return
			}
			idx := 0
			for s := 0; s < n; s++ {
				if s == r {
					continue
				}
				for i := 0; i < k; i++ {
					st, err := recvs[idx].Wait()
					idx++
					if err != nil {
						errs[r] = fmt.Errorf("recv (src=%d i=%d): %w", s, i, err)
						return
					}
					buf := bufs[[2]int{s, i}]
					out[r][s] = append(out[r][s], recvRecord{
						Source:  st.Source,
						Tag:     st.Tag,
						Count:   st.Count,
						Payload: string(buf[:st.Count]),
					})
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return out
}

// verifyWorkload checks every record against the deterministic pattern.
func verifyWorkload(t *testing.T, out [][][]recvRecord, k int) {
	t.Helper()
	for r := range out {
		for s := range out[r] {
			if s == r || len(out[r][s]) == 0 {
				continue
			}
			for i, rec := range out[r][s] {
				want := workPayload(s, r, i)
				if rec.Source != s || rec.Tag != s*k+i || rec.Count != len(want) ||
					rec.Payload != string(want) {
					t.Fatalf("rank %d src %d msg %d: got {src=%d tag=%d n=%d}, want {src=%d tag=%d n=%d}",
						r, s, i, rec.Source, rec.Tag, rec.Count, s, s*k+i, len(want))
				}
			}
		}
	}
}

// TestGoldenEquivalenceUnderFaults is the acceptance criterion: with the
// fixed-seed 5%-drop/2%-dup plan, matcher-visible outcomes are identical
// to the fault-free run, and the repair machinery demonstrably worked.
func TestGoldenEquivalenceUnderFaults(t *testing.T) {
	const k = 30
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			golden := runPairWorkload(t, newFaultWorld(t, 4, kind, rdma.FaultPlan{}), k)
			verifyWorkload(t, golden, k)

			w := newFaultWorld(t, 4, kind, testFaultPlan())
			faulty := runPairWorkload(t, w, k)
			if !reflect.DeepEqual(golden, faulty) {
				t.Fatal("matching outcomes differ between fault-free and faulty runs")
			}
			fs := w.FaultStats()
			if fs.Dropped == 0 && fs.Duplicated == 0 {
				t.Fatalf("fault plan injected nothing: %v", fs)
			}
			rs := w.ReliabilityStats()
			if rs.Retransmits == 0 {
				t.Fatalf("drops were never repaired: %+v", rs)
			}
			if rs.DupDropped == 0 {
				t.Fatalf("no duplicate was suppressed: %+v", rs)
			}
		})
	}
}

// TestPingPongUnderFaults runs a strict request-reply ping-pong through
// the faulty fabric: every reply must echo the request bytes exactly.
func TestPingPongUnderFaults(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newFaultWorld(t, 2, kind, testFaultPlan())
			const rounds = 200
			done := make(chan error, 1)
			go func() {
				c := w.Proc(1).World()
				buf := make([]byte, 256)
				for i := 0; i < rounds; i++ {
					st, err := c.Recv(0, i, buf)
					if err != nil {
						done <- err
						return
					}
					if err := c.Send(0, i, buf[:st.Count]); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			c := w.Proc(0).World()
			echo := make([]byte, 256)
			for i := 0; i < rounds; i++ {
				msg := workPayload(0, 1, i)
				if err := c.Send(1, i, msg); err != nil {
					t.Fatal(err)
				}
				st, err := c.Recv(1, i, echo)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(echo[:st.Count], msg) {
					t.Fatalf("round %d: echo mismatch (%d vs %d bytes)", i, st.Count, len(msg))
				}
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if rs := w.ReliabilityStats(); rs.Sent == 0 {
				t.Fatal("reliability layer saw no traffic")
			}
		})
	}
}

// TestCollectivesUnderFaults runs the collectives over the faulty fabric
// and checks their results against the closed-form answers.
func TestCollectivesUnderFaults(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 5
			w := newFaultWorld(t, n, kind, testFaultPlan())
			// Bcast from every root.
			for root := 0; root < n; root++ {
				payload := []byte(fmt.Sprintf("bcast-from-%d", root))
				runAll(t, w, func(c Comm) error {
					buf := make([]byte, len(payload))
					if c.Rank() == root {
						copy(buf, payload)
					}
					if err := c.Bcast(root, buf); err != nil {
						return err
					}
					if !bytes.Equal(buf, payload) {
						return fmt.Errorf("rank %d got %q", c.Rank(), buf)
					}
					return nil
				})
			}
			// Allreduce sum of ranks.
			want := float64(n*(n-1)) / 2
			runAll(t, w, func(c Comm) error {
				out := make([]byte, 8)
				if err := c.Allreduce(PackFloat64s([]float64{float64(c.Rank())}), OpSumFloat64, out); err != nil {
					return err
				}
				if got := UnpackFloat64s(out)[0]; got != want {
					return fmt.Errorf("rank %d: allreduce = %v, want %v", c.Rank(), got, want)
				}
				return nil
			})
			// Alltoall with rank-pair-tagged payloads.
			runAll(t, w, func(c Comm) error {
				data := make([][]byte, n)
				out := make([][]byte, n)
				for i := range data {
					data[i] = []byte{byte(c.Rank()), byte(i)}
					out[i] = make([]byte, 2)
				}
				if err := c.Alltoall(data, out); err != nil {
					return err
				}
				for i := range out {
					if out[i][0] != byte(i) || out[i][1] != byte(c.Rank()) {
						return fmt.Errorf("rank %d slot %d: %v", c.Rank(), i, out[i])
					}
				}
				return nil
			})
		})
	}
}

// TestFaultPropertyRandomSeeds is the property test: across random seeds
// and random rate mixes, every payload still arrives intact, in order,
// exactly once. Run under -race in CI.
func TestFaultPropertyRandomSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	const k = 15
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		plan := rdma.FaultPlan{
			Seed: rng.Uint64(),
			FaultRates: rdma.FaultRates{
				Drop:      rng.Float64() * 0.08,
				Duplicate: rng.Float64() * 0.05,
				Delay:     rng.Float64() * 0.05,
				DelaySpan: 1 + rng.Intn(3),
				RNR:       rng.Float64() * 0.05,
				Stall:     rng.Float64() * 0.02,
			},
		}
		kind := matchingEngines()[trial%len(matchingEngines())]
		t.Run(fmt.Sprintf("trial=%d/%v", trial, kind), func(t *testing.T) {
			w := newFaultWorld(t, 3, kind, plan)
			out := runPairWorkload(t, w, k)
			verifyWorkload(t, out, k)
		})
	}
}
