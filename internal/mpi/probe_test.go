package mpi

import (
	"testing"
)

func TestIprobe(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			c := w.Proc(1).World()

			// Nothing there yet.
			if _, ok, err := c.Iprobe(0, 5); err != nil || ok {
				t.Fatalf("empty probe: ok=%v err=%v", ok, err)
			}

			// An unexpected eager message becomes probeable.
			if err := w.Proc(0).World().Send(1, 5, []byte("probe-me")); err != nil {
				t.Fatal(err)
			}
			st, err := c.Probe(0, 5)
			if err != nil {
				t.Fatal(err)
			}
			if st.Source != 0 || st.Tag != 5 || st.Count != 8 {
				t.Fatalf("probe status = %+v", st)
			}

			// Probing does not consume: probing again still succeeds, and the
			// message is still receivable.
			if _, ok, err := c.Iprobe(AnySource, AnyTag); err != nil || !ok {
				t.Fatalf("re-probe: ok=%v err=%v", ok, err)
			}
			buf := make([]byte, 16)
			if st, err := c.Recv(0, 5, buf); err != nil || string(buf[:st.Count]) != "probe-me" {
				t.Fatalf("recv after probe: %v %q", err, buf[:st.Count])
			}
			// Consumed now.
			if _, ok, _ := c.Iprobe(0, 5); ok {
				t.Fatal("probe found a consumed message")
			}
		})
	}
}

func TestIprobeRendezvousCount(t *testing.T) {
	w := newTestWorld(t, 2, EngineOffload)
	big := make([]byte, 50_000)
	done := make(chan error, 1)
	go func() { done <- w.Proc(0).World().Send(1, 9, big) }()

	c := w.Proc(1).World()
	st, err := c.Probe(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != len(big) {
		t.Fatalf("probe count = %d, want %d (RTS carries the full size)", st.Count, len(big))
	}
	buf := make([]byte, len(big))
	if _, err := c.Recv(0, 9, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestIprobeValidation(t *testing.T) {
	w := newTestWorld(t, 2, EngineHost)
	c := w.Proc(0).World()
	if _, _, err := c.Iprobe(9, 0); err == nil {
		t.Error("bad source accepted")
	}
	if _, _, err := c.Iprobe(0, -3); err == nil {
		t.Error("negative tag accepted")
	}
}

func TestIprobeRawUnsupported(t *testing.T) {
	w := newTestWorld(t, 2, EngineRaw)
	if _, _, err := w.Proc(0).World().Iprobe(1, 0); err != ErrProbeUnsupported {
		t.Fatalf("err = %v, want ErrProbeUnsupported", err)
	}
}

func TestIprobeFallbackComm(t *testing.T) {
	w := infoWorld(t, map[int32]CommInfo{3: {NoOffload: true}}, nil)
	if err := w.Proc(0).Comm(3).Send(1, 2, []byte("sw")); err != nil {
		t.Fatal(err)
	}
	st, err := w.Proc(1).Comm(3).Probe(0, 2)
	if err != nil || st.Count != 2 {
		t.Fatalf("fallback probe: %+v %v", st, err)
	}
	buf := make([]byte, 4)
	if _, err := w.Proc(1).Comm(3).Recv(0, 2, buf); err != nil {
		t.Fatal(err)
	}
}
