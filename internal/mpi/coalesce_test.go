package mpi

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// newCoalesceWorld builds a world with eager coalescing armed: frames close
// at eight sub-messages or 1 KiB of body, with a short staleness timeout so
// quiet-sender tests converge quickly.
func newCoalesceWorld(t *testing.T, n int, kind EngineKind, plan rdma.FaultPlan) *World {
	t.Helper()
	w, err := NewWorld(n, Options{
		Engine:     kind,
		EagerLimit: 64,
		Matcher: core.Config{
			Bins: 128, MaxReceives: 1024, BlockSize: 8,
			EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
		},
		Faults:          plan,
		RetxTimeout:     time.Millisecond,
		CoalesceBytes:   1024,
		CoalesceMsgs:    8,
		CoalesceTimeout: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// coalesceFlushes sums the four flush-reason counters across all ranks and
// returns them alongside the merged width histogram.
func coalesceFlushes(w *World) (flushes uint64, frames, msgs uint64) {
	for r := 0; r < w.Size(); r++ {
		s := w.Proc(r).Obs()
		for _, c := range []obs.Counter{
			obs.CtrCoalesceFlushSize, obs.CtrCoalesceFlushCount,
			obs.CtrCoalesceFlushSync, obs.CtrCoalesceFlushTimeout,
		} {
			flushes += s.Counters.Load(c)
		}
		h := s.Hist(obs.HistCoalesceWidth)
		frames += h.Count
		msgs += h.Sum
	}
	return flushes, frames, msgs
}

// TestCoalesceGoldenEquivalence is the tentpole acceptance check: with
// coalescing armed, the matcher-visible outcome of the pair workload is
// identical to the coalescing-off run, on both matching engines — and
// frames demonstrably carried more than one message each.
func TestCoalesceGoldenEquivalence(t *testing.T) {
	const k = 30
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			golden := runPairWorkload(t, newFaultWorld(t, 4, kind, rdma.FaultPlan{}), k)
			verifyWorkload(t, golden, k)

			w := newCoalesceWorld(t, 4, kind, rdma.FaultPlan{})
			got := runPairWorkload(t, w, k)
			if !reflect.DeepEqual(golden, got) {
				t.Fatal("matching outcomes differ between coalescing off and on")
			}
			flushes, frames, msgs := coalesceFlushes(w)
			if flushes == 0 || frames == 0 {
				t.Fatalf("coalescer never flushed: flushes=%d frames=%d", flushes, frames)
			}
			if flushes != frames {
				t.Fatalf("flush counters (%d) disagree with width histogram (%d frames)", flushes, frames)
			}
			if msgs <= frames {
				t.Fatalf("no frame carried more than one message: %d msgs in %d frames", msgs, frames)
			}
		})
	}
}

// TestCoalesceGoldenEquivalenceUnderFaults layers the fixed-seed 5%-drop
// plan on top of coalescing: whole frames are dropped, retransmitted, and
// deduplicated as single reliability units, and the outcome still matches
// the fault-free, coalescing-off golden run.
func TestCoalesceGoldenEquivalenceUnderFaults(t *testing.T) {
	const k = 30
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			golden := runPairWorkload(t, newFaultWorld(t, 4, kind, rdma.FaultPlan{}), k)
			verifyWorkload(t, golden, k)

			w := newCoalesceWorld(t, 4, kind, testFaultPlan())
			got := runPairWorkload(t, w, k)
			if !reflect.DeepEqual(golden, got) {
				t.Fatal("coalesced outcomes differ from golden under faults")
			}
			if flushes, _, _ := coalesceFlushes(w); flushes == 0 {
				t.Fatal("coalescer never flushed")
			}
			fs := w.FaultStats()
			if fs.Dropped == 0 {
				t.Fatalf("fault plan injected nothing: %v", fs)
			}
			rs := w.ReliabilityStats()
			if rs.Retransmits == 0 {
				t.Fatalf("dropped frames were never repaired: %+v", rs)
			}
		})
	}
}

// TestCoalesceDisabledIsIdentity checks the off switch: without coalesce
// options no coalescer exists, no batch frame is ever formed, and none of
// the coalescing counters move.
func TestCoalesceDisabledIsIdentity(t *testing.T) {
	const k = 12
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newFaultWorld(t, 3, kind, rdma.FaultPlan{})
			for r := 0; r < w.Size(); r++ {
				if w.Proc(r).coal != nil {
					t.Fatalf("rank %d has a coalescer with coalescing off", r)
				}
			}
			out := runPairWorkload(t, w, k)
			verifyWorkload(t, out, k)
			if flushes, frames, _ := coalesceFlushes(w); flushes != 0 || frames != 0 {
				t.Fatalf("coalesce activity with coalescing off: flushes=%d frames=%d", flushes, frames)
			}
		})
	}
}

// TestCoalesceAcrossDepths runs the coalesced workload at in-flight block
// depths 1, 4, and 8 and demands identical application-visible outcomes:
// unbatched bursts must respect block formation and the retire frontier at
// every pipeline depth.
func TestCoalesceAcrossDepths(t *testing.T) {
	const k = 24
	var golden [][][]recvRecord
	for _, depth := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			w, err := NewWorld(3, Options{
				Engine:     EngineOffload,
				EagerLimit: 64,
				Matcher: core.Config{
					Bins: 128, MaxReceives: 1024, BlockSize: 8,
					InFlightBlocks:    depth,
					EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
				},
				CoalesceBytes: 1024,
				CoalesceMsgs:  8,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { w.Close() })
			out := runPairWorkload(t, w, k)
			verifyWorkload(t, out, k)
			if golden == nil {
				golden = out
			} else if !reflect.DeepEqual(golden, out) {
				t.Fatalf("depth %d outcome differs from depth 1", depth)
			}
		})
	}
}

// TestCoalesceTimeoutFlush covers the staleness trigger: a lone buffered
// message with no later synchronization point on the sender still reaches a
// blocked receiver, via the timer.
func TestCoalesceTimeoutFlush(t *testing.T) {
	w := newCoalesceWorld(t, 2, EngineHost, rdma.FaultPlan{})
	payload := []byte("stale-but-not-stranded")
	// The Isend completes immediately (buffered-send semantics) and rank 0
	// never waits on anything, so only the staleness timer can flush.
	if _, err := w.Proc(0).World().Isend(1, 7, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	st, err := w.Proc(1).World().Recv(0, 7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:st.Count], payload) {
		t.Fatalf("got %q, want %q", buf[:st.Count], payload)
	}
	s := w.Proc(0).Obs()
	if s.Counters.Load(obs.CtrCoalesceFlushTimeout) == 0 {
		t.Fatal("staleness timer never fired")
	}
}

// TestCoalesceCollectives runs the collectives with coalescing armed; their
// internal traffic rides negative communicators and must bypass (and flush)
// the coalescer without deadlock or corruption.
func TestCoalesceCollectives(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 5
			w := newCoalesceWorld(t, n, kind, rdma.FaultPlan{})
			for root := 0; root < n; root++ {
				payload := []byte(fmt.Sprintf("bcast-from-%d", root))
				runAll(t, w, func(c Comm) error {
					buf := make([]byte, len(payload))
					if c.Rank() == root {
						copy(buf, payload)
					}
					if err := c.Bcast(root, buf); err != nil {
						return err
					}
					if !bytes.Equal(buf, payload) {
						return fmt.Errorf("rank %d got %q", c.Rank(), buf)
					}
					return nil
				})
			}
			want := float64(n*(n-1)) / 2
			runAll(t, w, func(c Comm) error {
				out := make([]byte, 8)
				if err := c.Allreduce(PackFloat64s([]float64{float64(c.Rank())}), OpSumFloat64, out); err != nil {
					return err
				}
				if got := UnpackFloat64s(out)[0]; got != want {
					return fmt.Errorf("rank %d: allreduce = %v, want %v", c.Rank(), got, want)
				}
				return nil
			})
		})
	}
}

// TestCoalesceRawEngine drives coalesced sends through the no-matching raw
// engine: frame unbatching must preserve the per-pair FIFO order raw mode
// promises.
func TestCoalesceRawEngine(t *testing.T) {
	w := newCoalesceWorld(t, 2, EngineRaw, rdma.FaultPlan{})
	const k = 20
	rawMsg := func(i int) []byte { return []byte(fmt.Sprintf("raw-msg-%02d", i)) }
	done := make(chan error, 1)
	go func() {
		c := w.Proc(1).World()
		buf := make([]byte, 64)
		for i := 0; i < k; i++ {
			st, err := c.Recv(0, 0, buf)
			if err != nil {
				done <- err
				return
			}
			if want := rawMsg(i); !bytes.Equal(buf[:st.Count], want) {
				done <- fmt.Errorf("msg %d: got %q, want %q", i, buf[:st.Count], want)
				return
			}
		}
		done <- nil
	}()
	c := w.Proc(0).World()
	var reqs []*Request
	for i := 0; i < k; i++ {
		req, err := c.Isend(1, 0, rawMsg(i))
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
	}
	if err := Waitall(reqs...); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
