package mpi

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// This file implements the reliability sublayer that sits between the
// (possibly faulty) fabric and the matching engines. On real BlueField
// hardware the RC transport retransmits below the NIC's matching unit;
// our simulated fabric instead exposes its faults (drop, duplication,
// reordering, RNR NAKs — rdma.FaultPlan) and this layer repairs them, so
// the engines above observe exactly the per-peer in-order, exactly-once
// message streams they would see on a lossless run. Matching outcomes are
// therefore identical with and without injected faults.
//
// Protocol: every reliable message (eager, RTS, rendezvous ACK) carries a
// per-(sender, destination) sequence number. The receiver delivers only
// in sequence order, buffering out-of-order arrivals and discarding
// duplicates, and acknowledges with a cumulative kindSack control message
// (exempt from fault injection, but loss-tolerant: every later arrival
// re-acks). The sender retains a copy of each unacked message and
// retransmits on a timeout that backs off exponentially up to a cap.

// reliability is the per-rank instance of the sublayer.
type reliability struct {
	p *Proc

	// send side: one state per destination rank, created at start.
	sends []relSend

	// receive side: one state per source rank; touched only by the run
	// goroutine, so unlocked.
	recvs []relRecv

	// sackBuf reuses one header buffer for outgoing acks (run goroutine
	// only); sackDirty collects the sources to ack after each CQ batch so
	// acks coalesce instead of doubling the message count.
	sackBuf   [headerSize]byte
	sackDirty []bool

	retxTimeout time.Duration
	retxMax     time.Duration

	// Injectable seams. Production wiring (newReliability) binds them to
	// the wall clock and the proc's QPs; the fake-clock unit tests bind
	// them to a manual clock and in-memory transmit logs, so timeout and
	// backoff behaviour is testable without a fabric or goroutines.
	now         func() time.Time
	xmit        func(dst int, wire []byte) error // data-plane send (faultable)
	xmitControl func(dst int, wire []byte) error // control-plane send (sacks)
	getBuf      func(n int) []byte               // retained-copy allocation
	putBuf      func([]byte)                     // retained-copy release

	// obs carries the sublayer's counters (obs.CtrRel*) and repair events;
	// always non-nil (newProc injects the rank's shared sink).
	obs *obs.Sink

	stop chan struct{}
	wg   sync.WaitGroup
}

// relSend tracks the unacked window toward one destination.
type relSend struct {
	mu      sync.Mutex
	nextSeq uint32
	pending map[uint32]*relPending
}

// relPending is one retained in-flight message.
type relPending struct {
	wire     []byte // full header+payload copy, pool-backed
	deadline time.Time
	backoff  time.Duration
}

// relRecv tracks the in-order delivery cursor from one source.
type relRecv struct {
	expected uint32
	buffered map[uint32]rdma.Completion // future sequences, bounce buffers held
}

// ReliabilitySnapshot is a point-in-time copy of the sublayer's counters,
// read from its observability sink (obs.CtrRel*).
type ReliabilitySnapshot struct {
	Sent        uint64 // reliable messages first-sent
	Retransmits uint64 // timeout-driven re-sends
	Acked       uint64 // pending entries retired by a sack
	Sacks       uint64 // cumulative acks transmitted
	DupDropped  uint64 // duplicate arrivals suppressed
	OutOfOrder  uint64 // arrivals buffered for reordering
	SendRNR     uint64 // sends refused by the fabric (retried later)
}

// snapshot reads the sublayer's counters out of its sink.
func (rel *reliability) snapshot() ReliabilitySnapshot {
	c := &rel.obs.Counters
	return ReliabilitySnapshot{
		Sent:        c.Load(obs.CtrRelSent),
		Retransmits: c.Load(obs.CtrRelRetransmits),
		Acked:       c.Load(obs.CtrRelAcked),
		Sacks:       c.Load(obs.CtrRelSacks),
		DupDropped:  c.Load(obs.CtrRelDupDropped),
		OutOfOrder:  c.Load(obs.CtrRelOutOfOrder),
		SendRNR:     c.Load(obs.CtrRelSendRNR),
	}
}

// Add folds another snapshot into s, for world-wide aggregation.
func (s ReliabilitySnapshot) Add(t ReliabilitySnapshot) ReliabilitySnapshot {
	s.Sent += t.Sent
	s.Retransmits += t.Retransmits
	s.Acked += t.Acked
	s.Sacks += t.Sacks
	s.DupDropped += t.DupDropped
	s.OutOfOrder += t.OutOfOrder
	s.SendRNR += t.SendRNR
	return s
}

// newReliabilityCore builds the sublayer's state machine for n peers with
// all seams at their test defaults: wall clock, no transport, a private
// counters-only sink, and plain make/discard buffer management. Unit tests
// use it directly and bind xmit/xmitControl/now to fakes.
func newReliabilityCore(n int, timeout time.Duration) *reliability {
	if timeout <= 0 {
		timeout = 2 * time.Millisecond
	}
	rel := &reliability{
		sends:       make([]relSend, n),
		recvs:       make([]relRecv, n),
		sackDirty:   make([]bool, n),
		retxTimeout: timeout,
		retxMax:     16 * timeout,
		now:         time.Now,
		getBuf:      func(n int) []byte { return make([]byte, n) },
		putBuf:      func([]byte) {},
		obs:         obs.New(obs.Options{}),
		stop:        make(chan struct{}),
	}
	for i := range rel.sends {
		rel.sends[i].pending = make(map[uint32]*relPending)
	}
	for i := range rel.recvs {
		rel.recvs[i].buffered = make(map[uint32]rdma.Completion)
	}
	return rel
}

func newReliability(p *Proc, timeout time.Duration) *reliability {
	rel := newReliabilityCore(p.n, timeout)
	rel.p = p
	rel.xmit = func(dst int, wire []byte) error {
		return p.sendEP[dst].Send(wire, 0, 0)
	}
	rel.xmitControl = func(dst int, wire []byte) error {
		return p.sendEP[dst].SendControl(wire, 0, 0)
	}
	// Retained retransmit copies come from the size-classed slab: frames
	// can be far larger than a lone eager message, and the slab keeps the
	// under-faults send path allocation-free across that size variance.
	rel.getBuf = p.w.slab.get
	rel.putBuf = p.w.slab.put
	return rel
}

// start launches the receive filter and the retransmit timer.
func (rel *reliability) start() {
	rel.wg.Add(2)
	go rel.run()
	go rel.retransmitLoop()
}

// shutdown stops both goroutines. The raw CQ must be closed first so run
// drains and exits; pending unacked messages are abandoned — for an
// in-process world every rank has completed its traffic by Close, and a
// networked world runs flush first (World.Close) so abandonment only
// happens after the flush bound expires.
func (rel *reliability) shutdown() {
	rel.p.rawCQ.Close()
	close(rel.stop)
	rel.wg.Wait()
}

// relFlushTimeout bounds how long a networked world's Close keeps the
// repair machinery alive waiting for peers to ack the rank's final sends.
const relFlushTimeout = 2 * time.Second

// flush blocks until every retained reliable send has been acked, or the
// bound expires (reporting false). A single-rank networked world must run
// this before tearing its endpoints down: the local rank completing its
// traffic says nothing about delivery to peer processes — its last message
// (typically a barrier release) may have been dropped, and only this
// rank's retransmit timer can repair that. The retransmit and receive
// goroutines are still running here, so the loop just polls the windows.
func (rel *reliability) flush(bound time.Duration) bool {
	deadline := rel.now().Add(bound)
	step := rel.retxTimeout / 2
	if step < time.Millisecond {
		step = time.Millisecond
	}
	for {
		empty := true
		for i := range rel.sends {
			s := &rel.sends[i]
			s.mu.Lock()
			pending := len(s.pending)
			s.mu.Unlock()
			if pending > 0 {
				empty = false
				break
			}
		}
		if empty {
			return true
		}
		if !rel.now().Before(deadline) {
			return false
		}
		time.Sleep(step)
	}
}

// seqBefore reports a < b in wraparound-safe sequence arithmetic.
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// send transmits one reliable message: it assigns the next sequence
// number toward dst, patches it into the encoded header, retains a copy
// for retransmission, and pushes the message onto the wire. Fabric
// refusals (RNR NAK, full wire) are not errors — the retransmit timer
// repairs them — so send only fails once the world is closed.
func (rel *reliability) send(dst int, wire []byte) error {
	s := &rel.sends[dst]
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	putSeq(wire, seq)

	// Retain a pool-backed copy until the ack arrives.
	keep := rel.getBuf(len(wire))
	copy(keep, wire)
	s.pending[seq] = &relPending{
		wire:     keep,
		deadline: rel.now().Add(rel.retxTimeout),
		backoff:  rel.retxTimeout,
	}

	// First transmission attempt, inside the lock so the per-QP wire
	// order (and thus the fault schedule) follows sequence order.
	err := rel.xmit(dst, wire)
	s.mu.Unlock()
	rel.obs.Counters.Inc(obs.CtrRelSent)
	if err == rdma.ErrNoReceive {
		rel.obs.Counters.Inc(obs.CtrRelSendRNR)
		err = nil
	}
	if err == rdma.ErrClosed {
		return err
	}
	return nil
}

// putSeq patches the sequence field of an encoded header.
func putSeq(wire []byte, seq uint32) {
	wire[seqOffset] = byte(seq)
	wire[seqOffset+1] = byte(seq >> 8)
	wire[seqOffset+2] = byte(seq >> 16)
	wire[seqOffset+3] = byte(seq >> 24)
}

// retransmitLoop re-sends unacked messages whose deadline passed, backing
// off exponentially per message up to retxMax.
func (rel *reliability) retransmitLoop() {
	defer rel.wg.Done()
	tick := time.NewTicker(rel.retxTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-rel.stop:
			return
		case now := <-tick.C:
			rel.scanRetransmits(now)
		}
	}
}

// scanRetransmits is one retransmit-timer pass at time now: every pending
// entry whose deadline has passed is re-sent and its backoff doubles, up to
// the retxMax cap. Factored out of retransmitLoop so the fake-clock tests
// drive the timer directly. Overdue entries are re-sent in sequence order
// (not map order) so the retransmit schedule is fully deterministic.
func (rel *reliability) scanRetransmits(now time.Time) {
	var seqs []uint32
	for dst := range rel.sends {
		s := &rel.sends[dst]
		s.mu.Lock()
		seqs = seqs[:0]
		for seq, pe := range s.pending {
			if !now.Before(pe.deadline) {
				seqs = append(seqs, seq)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqBefore(seqs[i], seqs[j]) })
		for _, seq := range seqs {
			pe := s.pending[seq]
			if err := rel.xmit(dst, pe.wire); err == rdma.ErrNoReceive {
				rel.obs.Counters.Inc(obs.CtrRelSendRNR)
			}
			rel.obs.Counters.Inc(obs.CtrRelRetransmits)
			pe.backoff *= 2
			if pe.backoff > rel.retxMax {
				pe.backoff = rel.retxMax
			}
			pe.deadline = now.Add(pe.backoff)
			rel.obs.Observe(obs.HistRetxBackoffNs, uint64(pe.backoff))
			if rel.obs.Enabled() {
				rel.obs.Event(obs.EvRetransmit, dst, uint64(dst), uint64(seq), uint64(pe.backoff))
			}
		}
		s.mu.Unlock()
	}
}

// handleSack retires every pending entry below the cumulative ack.
func (rel *reliability) handleSack(h header) {
	dst := int(h.src) // the acker is our destination
	if dst < 0 || dst >= len(rel.sends) {
		return
	}
	s := &rel.sends[dst]
	var retired uint64
	s.mu.Lock()
	for seq, pe := range s.pending {
		if seqBefore(seq, h.seq) {
			rel.putBuf(pe.wire)
			delete(s.pending, seq)
			retired++
		}
	}
	s.mu.Unlock()
	rel.obs.Counters.Add(obs.CtrRelAcked, retired)
	if retired > 0 && rel.obs.Enabled() {
		rel.obs.Event(obs.EvAck, dst, uint64(dst), uint64(h.seq), retired)
	}
}

// run is the receive filter: it drains the raw fabric CQ, repairs the
// stream (dedup, reorder, ack), and republishes engine-ready completions
// onto p.recvCQ in per-source sequence order. Bounce-buffer accounting is
// exact: every buffer is either reposted here (duplicates, acks, errors)
// or forwarded downstream exactly once for the engine to repost.
func (rel *reliability) run() {
	defer rel.wg.Done()
	p := rel.p
	batch := make([]rdma.Completion, cqDrainBatch)
	for cursor := uint64(0); ; {
		n, ok := p.rawCQ.WaitBatch(cursor, batch)
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			c := batch[i]
			if c.Err != nil {
				// Error completion (e.g. ErrBufferSize): the posted buffer
				// is attached unfilled; recycle it and move on.
				p.repost(c.Data)
				continue
			}
			h, err := decodeHeader(c.Data)
			if err != nil {
				p.repost(c.Data)
				continue
			}
			if h.kind == kindSack {
				rel.handleSack(h)
				p.repost(c.Data)
				continue
			}
			rel.admit(h, c)
		}
		cursor += uint64(n)
		p.rawCQ.Trim(cursor)
		rel.flushSacks()
	}
}

// admit applies the go-back-window acceptance rule to one arrival.
func (rel *reliability) admit(h header, c rdma.Completion) {
	src := int(h.src)
	if src < 0 || src >= len(rel.recvs) {
		rel.p.repost(c.Data)
		return
	}
	r := &rel.recvs[src]
	switch {
	case h.seq == r.expected:
		r.expected++
		rel.p.recvCQ.Push(c)
		// Drain any buffered successors that are now in order.
		for {
			bc, ok := r.buffered[r.expected]
			if !ok {
				break
			}
			delete(r.buffered, r.expected)
			r.expected++
			rel.p.recvCQ.Push(bc)
		}
	case seqBefore(r.expected, h.seq):
		// Future sequence: hold the bounce buffer until the gap fills.
		// A retransmission may duplicate a buffered message; drop those.
		if _, dup := r.buffered[h.seq]; dup {
			rel.repair(obs.CtrRelDupDropped, src, h.seq, 0)
			rel.p.repost(c.Data)
		} else {
			rel.repair(obs.CtrRelOutOfOrder, src, h.seq, 1)
			r.buffered[h.seq] = c
		}
	default:
		// Already delivered: a duplicate or a retransmission that crossed
		// our sack. Re-ack so the sender stops retransmitting.
		rel.repair(obs.CtrRelDupDropped, src, h.seq, 0)
		rel.p.repost(c.Data)
	}
	rel.sackDirty[src] = true
}

// repair tallies one stream repair and, when tracing, records an
// EvFaultRepair event (code 0 = duplicate dropped, 1 = buffered
// out-of-order).
func (rel *reliability) repair(ctr obs.Counter, src int, seq uint32, code uint64) {
	rel.obs.Counters.Inc(ctr)
	if rel.obs.Enabled() {
		rel.obs.Event(obs.EvFaultRepair, src, uint64(src), uint64(seq), code)
	}
}

// flushSacks sends one cumulative ack to every source that had traffic in
// the last batch. Sacks ride SendControl: exempt from fault injection and
// dropped rather than blocking when the wire is full — the next arrival
// or retransmission re-triggers them.
func (rel *reliability) flushSacks() {
	for src, dirty := range rel.sackDirty {
		if !dirty {
			continue
		}
		rel.sackDirty[src] = false
		h := header{kind: kindSack, src: int32(rel.p.rank), seq: rel.recvs[src].expected}
		h.encode(rel.sackBuf[:])
		_ = rel.xmitControl(src, rel.sackBuf[:])
		rel.obs.Counters.Inc(obs.CtrRelSacks)
	}
}
