package mpi

import (
	"sync"
	"sync/atomic"
)

// Status describes a completed point-to-point operation, mirroring
// MPI_Status: the matched source rank, tag, and received byte count.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Request is a non-blocking operation handle, as returned by Isend and
// Irecv. Wait blocks until completion.
//
// The completion channel is created lazily, only when a waiter arrives
// before the operation finishes: eager sends and already-matched receives
// complete before the caller can block, so the common hot path pays one
// small allocation per request and no channel.
type Request struct {
	p      *Proc // issuing rank, for synchronization-point flushes
	mu     sync.Mutex
	done   chan struct{} // created by the first early waiter
	state  atomic.Uint32 // 0 = pending, 1 = complete
	status Status
	err    error
}

func newRequest(p *Proc) *Request {
	return &Request{p: p}
}

// complete finishes the request exactly once; later calls are no-ops.
func (r *Request) complete(st Status, err error) {
	r.mu.Lock()
	if r.state.Load() == 0 {
		r.status = st
		r.err = err
		r.state.Store(1)
		if r.done != nil {
			close(r.done)
		}
	}
	r.mu.Unlock()
}

// Wait blocks until the operation completes and returns its status. Wait
// is a synchronization point: any eager messages buffered by the rank's
// coalescer are flushed, so a peer blocked on this rank's sends always
// makes progress (and a pending receive here cannot deadlock on our own
// unflushed traffic the peer is waiting for).
//
// A Wait still pending when the world closes returns ErrClosed: a closed
// world will never complete the request, and a long-lived host canceling a
// job must be able to unblock its workers by closing their world.
func (r *Request) Wait() (Status, error) {
	if r.p != nil {
		r.p.flushCoalesced()
	}
	if r.state.Load() == 1 {
		return r.status, r.err
	}
	r.mu.Lock()
	if r.state.Load() == 1 {
		r.mu.Unlock()
		return r.status, r.err
	}
	if r.done == nil {
		r.done = make(chan struct{})
	}
	ch := r.done
	r.mu.Unlock()
	var closed <-chan struct{}
	if r.p != nil {
		closed = r.p.w.closed
	}
	select {
	case <-ch:
	case <-closed:
		// The world is tearing down. The completion may still have raced
		// ahead of the close; prefer it when it did.
		if r.state.Load() != 1 {
			return Status{}, ErrClosed
		}
	}
	return r.status, r.err
}

// doneChan materializes the completion channel for select-based waiters
// (Waitany). It is closed if the request already completed. Like Wait, it
// is a synchronization point for the rank's coalescer.
func (r *Request) doneChan() <-chan struct{} {
	if r.p != nil {
		r.p.flushCoalesced()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done == nil {
		r.done = make(chan struct{})
		if r.state.Load() == 1 {
			close(r.done)
		}
	}
	return r.done
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() (Status, bool, error) {
	if r.state.Load() == 1 {
		return r.status, true, r.err
	}
	return Status{}, false, nil
}

// Waitall waits on all requests and returns the first error encountered.
func Waitall(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
