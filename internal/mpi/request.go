package mpi

import "sync"

// Status describes a completed point-to-point operation, mirroring
// MPI_Status: the matched source rank, tag, and received byte count.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Request is a non-blocking operation handle, as returned by Isend and
// Irecv. Wait blocks until completion.
type Request struct {
	done   chan struct{}
	once   sync.Once
	status Status
	err    error
}

func newRequest() *Request {
	return &Request{done: make(chan struct{})}
}

// complete finishes the request exactly once.
func (r *Request) complete(st Status, err error) {
	r.once.Do(func() {
		r.status = st
		r.err = err
		close(r.done)
	})
}

// Wait blocks until the operation completes and returns its status.
func (r *Request) Wait() (Status, error) {
	<-r.done
	return r.status, r.err
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() (Status, bool, error) {
	select {
	case <-r.done:
		return r.status, true, r.err
	default:
		return Status{}, false, nil
	}
}

// Waitall waits on all requests and returns the first error encountered.
func Waitall(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
