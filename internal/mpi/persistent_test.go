package mpi

import (
	"fmt"
	"testing"
	"time"
)

func TestPersistentRequests(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			w := newTestWorld(t, 2, kind)
			const rounds = 10

			buf := make([]byte, 8)
			precv, err := w.Proc(1).World().RecvInit(0, 4, buf)
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 8)
			psend, err := w.Proc(0).World().SendInit(1, 4, payload)
			if err != nil {
				t.Fatal(err)
			}

			for round := 0; round < rounds; round++ {
				payload[0] = byte(round)
				if _, err := precv.Start(); err != nil {
					t.Fatal(err)
				}
				if _, err := psend.Start(); err != nil {
					t.Fatal(err)
				}
				if _, err := psend.Wait(); err != nil {
					t.Fatal(err)
				}
				st, err := precv.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if st.Count != 8 || buf[0] != byte(round) {
					t.Fatalf("round %d: got %v (%+v)", round, buf[0], st)
				}
			}
			// Persistent receives with constant (source, tag) form compatible
			// sequences; on the offload engine they flow conflict-free.
			if kind == EngineOffload {
				if st := w.Proc(1).Matcher().Stats(); st.Messages == 0 {
					t.Fatal("persistent traffic bypassed the matcher")
				}
			}
		})
	}
}

func TestPersistentValidation(t *testing.T) {
	w := newTestWorld(t, 2, EngineHost)
	c := w.Proc(0).World()
	if _, err := c.SendInit(9, 0, nil); err == nil {
		t.Error("bad dest accepted")
	}
	if _, err := c.SendInit(1, -1, nil); err == nil {
		t.Error("negative tag accepted")
	}
	if _, err := c.RecvInit(9, 0, nil); err == nil {
		t.Error("bad src accepted")
	}
	if _, err := c.RecvInit(0, -2, nil); err == nil {
		t.Error("negative tag accepted")
	}
	pr, err := c.RecvInit(1, 1, make([]byte, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Wait(); err == nil {
		t.Error("wait before start accepted")
	}
	if _, err := pr.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Start(); err == nil {
		t.Error("double start of an active request accepted")
	}
	// Complete it so Close drains.
	if err := w.Proc(1).World().Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestStartallAndWaitany(t *testing.T) {
	w := newTestWorld(t, 2, EngineHost)
	recvs := make([]*PersistentRequest, 3)
	bufs := make([][]byte, 3)
	for i := range recvs {
		bufs[i] = make([]byte, 4)
		pr, err := w.Proc(1).World().RecvInit(0, i, bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		recvs[i] = pr
	}
	reqs, err := Startall(recvs...)
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := Testall(reqs...); done {
		t.Fatal("Testall true before any send")
	}

	// Complete tag 2 first; Waitany must report index 2.
	if err := w.Proc(0).World().Send(1, 2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	i, st, err := Waitany(reqs...)
	if err != nil || i != 2 || st.Tag != 2 {
		t.Fatalf("Waitany = (%d, %+v, %v), want index 2", i, st, err)
	}

	// Finish the rest.
	for _, tag := range []int{0, 1} {
		if err := w.Proc(0).World().Send(1, tag, []byte("hi")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done, err := Testall(reqs...)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Testall never completed")
		}
	}
	// Degenerate inputs.
	if i, _, _ := Waitany(nil, nil); i != -1 {
		t.Fatalf("all-nil Waitany = %d", i)
	}
	if done, _ := Testall(nil, nil); !done {
		t.Fatal("all-nil Testall should be done")
	}
}

func TestScatter(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 5
			w := newTestWorld(t, n, kind)
			runAll(t, w, func(c Comm) error {
				var data [][]byte
				if c.Rank() == 2 {
					data = make([][]byte, n)
					for i := range data {
						data[i] = []byte{byte(i), byte(i * 3)}
					}
				}
				recv := make([]byte, 2)
				if err := c.Scatter(2, data, recv); err != nil {
					return err
				}
				if recv[0] != byte(c.Rank()) || recv[1] != byte(c.Rank()*3) {
					return fmt.Errorf("rank %d got %v", c.Rank(), recv)
				}
				return nil
			})
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, kind := range matchingEngines() {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 6
			w := newTestWorld(t, n, kind)
			runAll(t, w, func(c Comm) error {
				data := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
				out := make([][]byte, n)
				for i := range out {
					out[i] = make([]byte, 2)
				}
				if err := c.Allgather(data, out); err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					if out[r][0] != byte(r) || out[r][1] != byte(2*r) {
						return fmt.Errorf("rank %d slot %d = %v", c.Rank(), r, out[r])
					}
				}
				return nil
			})
		})
	}
}

func TestScatterValidation(t *testing.T) {
	w := newTestWorld(t, 2, EngineHost)
	c := w.Proc(0).World()
	if err := c.Scatter(9, nil, nil); err == nil {
		t.Error("bad root accepted")
	}
	if err := c.Scatter(0, [][]byte{}, nil); err == nil {
		t.Error("short scatter data accepted")
	}
	if err := c.Allgather([]byte{1}, [][]byte{}); err == nil {
		t.Error("short allgather out accepted")
	}
}
