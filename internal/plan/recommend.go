package plan

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Dimension ladders: every value a recommendation may visit, in ascending
// order. The coarse grid samples a subset; refinement moves one rung at a
// time around the leaders.
var (
	binsLadder     = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	blockLadder    = []int{4, 8, 16, 32}
	inFlightLadder = []int{1, 2, 4, 8}
	threadsLadder  = []int{32, 64, 128, 256}
	// coalesceLadder pairs (bytes, msgs); index 0 is off.
	coalesceLadder = [][2]int{{0, 0}, {2048, 4}, {4096, 8}, {8192, 16}}
)

// Coarse-grid sample indices into the ladders.
var (
	binsCoarse     = []int{0, 3, 6} // 64, 512, 4096
	blockCoarse    = []int{1, 3}    // 8, 32
	inFlightCoarse = []int{0, 2}    // 1, 4
	threadsCoarse  = []int{0, 2}    // 32, 128
	coalesceCoarse = []int{0, 2}    // off, 4096B/8
)

// ladderIndex is a candidate's position on each dimension ladder.
type ladderIndex struct {
	bins, block, inFlight, threads, coalesce int
}

func (li ladderIndex) candidate() Candidate {
	return Candidate{
		Bins:          binsLadder[li.bins],
		BlockSize:     blockLadder[li.block],
		InFlight:      inFlightLadder[li.inFlight],
		Threads:       threadsLadder[li.threads],
		CoalesceBytes: coalesceLadder[li.coalesce][0],
		CoalesceMsgs:  coalesceLadder[li.coalesce][1],
	}
}

// neighbors yields the one-rung moves along each dimension, in a fixed
// order (dimension by dimension, down before up) so refinement is
// deterministic.
func (li ladderIndex) neighbors() []ladderIndex {
	out := make([]ladderIndex, 0, 10)
	step := func(set func(*ladderIndex, int), cur, max int) {
		if cur > 0 {
			n := li
			set(&n, cur-1)
			out = append(out, n)
		}
		if cur < max-1 {
			n := li
			set(&n, cur+1)
			out = append(out, n)
		}
	}
	step(func(n *ladderIndex, v int) { n.bins = v }, li.bins, len(binsLadder))
	step(func(n *ladderIndex, v int) { n.block = v }, li.block, len(blockLadder))
	step(func(n *ladderIndex, v int) { n.inFlight = v }, li.inFlight, len(inFlightLadder))
	step(func(n *ladderIndex, v int) { n.threads = v }, li.threads, len(threadsLadder))
	step(func(n *ladderIndex, v int) { n.coalesce = v }, li.coalesce, len(coalesceLadder))
	return out
}

// RecommendConfig tunes the search.
type RecommendConfig struct {
	// TopN is the number of ranked recommendations to return (default 3).
	TopN int
	// Leaders is how many leaders seed each refinement round (default 3).
	Leaders int
	// RefineRounds is the number of local-refinement rounds around the
	// leaders (default 2; 0 disables refinement).
	RefineRounds int
}

func (rc *RecommendConfig) fill() {
	if rc.TopN == 0 {
		rc.TopN = 3
	}
	if rc.Leaders == 0 {
		rc.Leaders = 3
	}
	if rc.RefineRounds == 0 {
		rc.RefineRounds = 2
	}
	if rc.RefineRounds < 0 {
		rc.RefineRounds = 0
	}
}

// Result is one recommendation run's outcome.
type Result struct {
	Features Features
	// Baseline is the current default configuration's estimate.
	Baseline Estimate
	// Entries are the budget-feasible candidates, ranked best first.
	Entries []Estimate
	// Evaluated / Rejected count all candidates priced and those rejected
	// as infeasible (over budget or posted-receive overflow).
	Evaluated int
	Rejected  int
}

// rankLess is the total ranking order: modeled rate descending, then a
// full lexicographic tie-break over footprint and every configuration
// dimension, so rankings are byte-identical run to run.
func rankLess(a, b Estimate) bool {
	if a.Offload.MsgPerSec != b.Offload.MsgPerSec {
		return a.Offload.MsgPerSec > b.Offload.MsgPerSec
	}
	if a.FootprintBytes != b.FootprintBytes {
		return a.FootprintBytes < b.FootprintBytes
	}
	ca, cb := a.Candidate, b.Candidate
	if ca.Bins != cb.Bins {
		return ca.Bins < cb.Bins
	}
	if ca.BlockSize != cb.BlockSize {
		return ca.BlockSize < cb.BlockSize
	}
	if ca.InFlight != cb.InFlight {
		return ca.InFlight < cb.InFlight
	}
	if ca.Threads != cb.Threads {
		return ca.Threads < cb.Threads
	}
	if ca.CoalesceBytes != cb.CoalesceBytes {
		return ca.CoalesceBytes < cb.CoalesceBytes
	}
	return ca.CoalesceMsgs < cb.CoalesceMsgs
}

// Recommend searches the configuration space: a coarse grid over the
// dimension ladders, then RefineRounds rounds of one-rung moves around
// the leaders. Every distinct bin count's replay is batched through
// Prefetch so the analyzer pool fans out once per round, and the final
// ranking is fully deterministic (rankLess is a total order).
func (p *Planner) Recommend(rc RecommendConfig) (*Result, error) {
	rc.fill()

	// Coarse grid, in fixed nested order.
	frontier := make([]ladderIndex, 0,
		len(binsCoarse)*len(blockCoarse)*len(inFlightCoarse)*len(threadsCoarse)*len(coalesceCoarse))
	for _, bi := range binsCoarse {
		for _, bl := range blockCoarse {
			for _, k := range inFlightCoarse {
				for _, th := range threadsCoarse {
					for _, co := range coalesceCoarse {
						frontier = append(frontier, ladderIndex{bins: bi, block: bl, inFlight: k, threads: th, coalesce: co})
					}
				}
			}
		}
	}

	res := &Result{Features: p.feats}
	visited := make(map[ladderIndex]bool)
	var feasible []Estimate
	phase := PhaseGrid

	for round := 0; round <= rc.RefineRounds; round++ {
		fresh := make([]ladderIndex, 0, len(frontier))
		for _, li := range frontier {
			if !visited[li] {
				visited[li] = true
				fresh = append(fresh, li)
			}
		}
		if len(fresh) == 0 {
			break
		}
		start := p.cfg.Obs.Now()

		// Batch this round's replays into one pool fan-out.
		bins := make([]int, 0, len(fresh))
		for _, li := range fresh {
			bins = append(bins, binsLadder[li.bins])
		}
		if err := p.Prefetch(bins); err != nil {
			return nil, err
		}

		for _, li := range fresh {
			est, err := p.Estimate(li.candidate())
			if err != nil {
				return nil, err
			}
			res.Evaluated++
			if est.Reject != "" {
				res.Rejected++
				continue
			}
			if !est.Offload.Valid() {
				continue
			}
			feasible = append(feasible, est)
		}
		if p.cfg.Obs.Enabled() {
			p.cfg.Obs.Event(obs.EvPlanPhase, 0, phase,
				uint64(p.cfg.Obs.Now()-start), uint64(len(fresh)))
		}
		phase = PhaseRefine

		if round == rc.RefineRounds {
			break
		}
		// Next frontier: one-rung moves around the current leaders.
		sort.SliceStable(feasible, func(i, j int) bool { return rankLess(feasible[i], feasible[j]) })
		frontier = frontier[:0]
		leaders := rc.Leaders
		if leaders > len(feasible) {
			leaders = len(feasible)
		}
		for _, lead := range feasible[:leaders] {
			li, ok := indexOf(lead.Candidate)
			if !ok {
				continue
			}
			frontier = append(frontier, li.neighbors()...)
		}
	}

	if len(feasible) == 0 {
		if res.Rejected > 0 {
			return nil, fmt.Errorf("plan: all %d candidates rejected (budget %d bytes)", res.Rejected, p.cfg.BudgetBytes)
		}
		return nil, fmt.Errorf("plan: no candidate produced a valid modeled rate")
	}

	rankStart := p.cfg.Obs.Now()
	sort.SliceStable(feasible, func(i, j int) bool { return rankLess(feasible[i], feasible[j]) })
	if len(feasible) > rc.TopN {
		feasible = feasible[:rc.TopN]
	}
	res.Entries = feasible
	if p.cfg.Obs.Enabled() {
		p.cfg.Obs.Event(obs.EvPlanPhase, 0, PhaseRank,
			uint64(p.cfg.Obs.Now()-rankStart), uint64(len(feasible)))
	}

	base, err := p.Estimate(DefaultCandidate())
	if err != nil {
		return nil, err
	}
	res.Baseline = base
	return res, nil
}

// indexOf maps a ladder-valued candidate back to its ladder position.
func indexOf(c Candidate) (ladderIndex, bool) {
	var li ladderIndex
	var ok bool
	if li.bins, ok = find(binsLadder, c.Bins); !ok {
		return li, false
	}
	if li.block, ok = find(blockLadder, c.BlockSize); !ok {
		return li, false
	}
	if li.inFlight, ok = find(inFlightLadder, c.InFlight); !ok {
		return li, false
	}
	if li.threads, ok = find(threadsLadder, c.Threads); !ok {
		return li, false
	}
	for i, pair := range coalesceLadder {
		if pair[0] == c.CoalesceBytes && pair[1] == c.CoalesceMsgs {
			li.coalesce = i
			return li, true
		}
	}
	return li, false
}

func find(ladder []int, v int) (int, bool) {
	for i, x := range ladder {
		if x == v {
			return i, true
		}
	}
	return 0, false
}
