// Package plan is the capacity planner over the calibrated cost model:
// given an application trace and a memory budget, it prices candidate
// matcher configurations — bin count, block size, in-flight window,
// DPA threads, eager-coalescing thresholds — without running the full
// engine for each one.
//
// The split mirrors what actually varies: the *search-depth profile* of a
// workload depends only on the bin count (and engine), so the planner
// replays the trace through the analyzer once per distinct bin count
// (analyzer.Schedule.SweepConfigs, one shared worker pool) and prices
// every other dimension analytically from trace features:
//
//   - the block stage from the arrival-burst length (blocks per message is
//     exactly ceil(burst/BlockSize)/burst — block formation packs a burst
//     into full blocks plus one remainder),
//   - the wire stage from the achievable coalesce width
//     min(burst, CoalesceMsgs, CoalesceBytes/payload),
//   - the memory footprint from the bench.ModelFootprintBytes accounting
//     model, priced against the planner's posted-receive capacity and the
//     per-peer coalescer buffers.
//
// Everything the planner emits is finite by construction: rates flow
// through bench.CostModel (whose rate() guard never yields Inf/NaN) and
// Doc.Validate rejects any non-finite field before a document is written.
package plan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dpa"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Candidate is one matcher configuration under evaluation.
type Candidate struct {
	// Bins per hash table (power of two).
	Bins int
	// BlockSize is the arrival-block width (1..core.MaxBlockSize).
	BlockSize int
	// InFlight is the in-flight block window K (1..core.MaxInFlightBlocks).
	InFlight int
	// Threads is the DPA parallel width (1..dpa.MaxThreads).
	Threads int
	// CoalesceBytes / CoalesceMsgs arm sender-side eager coalescing
	// (both zero = off).
	CoalesceBytes int
	CoalesceMsgs  int
}

// DefaultCandidate is the current default: the paper's §VI prototype
// geometry with coalescing off.
func DefaultCandidate() Candidate {
	pc := bench.PaperMatcherConfig()
	return Candidate{
		Bins:      pc.Bins,
		BlockSize: pc.BlockSize,
		InFlight:  1,
		Threads:   dpa.DefaultThreads,
	}
}

// String renders the candidate compactly.
func (c Candidate) String() string {
	s := fmt.Sprintf("bins=%d block=%d K=%d threads=%d", c.Bins, c.BlockSize, c.InFlight, c.Threads)
	if c.CoalesceBytes > 0 || c.CoalesceMsgs > 0 {
		s += fmt.Sprintf(" coalesce=%dB/%d", c.CoalesceBytes, c.CoalesceMsgs)
	}
	return s
}

// Validate checks the candidate against the engine's hard limits.
func (c Candidate) Validate() error {
	if c.Bins < 1 || c.Bins&(c.Bins-1) != 0 {
		return fmt.Errorf("plan: Bins must be a power of two >= 1, got %d", c.Bins)
	}
	if c.BlockSize < 1 || c.BlockSize > core.MaxBlockSize {
		return fmt.Errorf("plan: BlockSize must be in [1,%d], got %d", core.MaxBlockSize, c.BlockSize)
	}
	if c.InFlight < 1 || c.InFlight > core.MaxInFlightBlocks {
		return fmt.Errorf("plan: InFlight must be in [1,%d], got %d", core.MaxInFlightBlocks, c.InFlight)
	}
	if c.Threads < 1 || c.Threads > dpa.MaxThreads {
		return fmt.Errorf("plan: Threads must be in [1,%d], got %d", dpa.MaxThreads, c.Threads)
	}
	if c.CoalesceBytes < 0 || c.CoalesceMsgs < 0 {
		return fmt.Errorf("plan: negative coalesce thresholds")
	}
	return nil
}

// Features are the trace-derived quantities the analytic stages price
// against. They are independent of any candidate configuration.
type Features struct {
	App   string
	Procs int
	// Sends is the total eager send count across ranks.
	Sends int
	// MeanBurst is the mean arrival-run length at a destination: the
	// number of consecutive inbound messages between progress calls, which
	// bounds both block fill and achievable coalesce width.
	MeanBurst float64
	// MaxBurst is the longest single arrival run.
	MaxBurst int
	// AvgPayloadBytes approximates the mean eager payload from the
	// trace's element counts.
	AvgPayloadBytes float64
	// MeanPeers / MaxPeers count distinct send destinations per rank —
	// the coalescer holds one staging buffer per peer.
	MeanPeers float64
	MaxPeers  int
}

// Config parameterizes a Planner.
type Config struct {
	// Cost is the calibrated cost model (zero value: DefaultCostModel).
	// The per-candidate fields (Threads, InFlight, BatchWidth) are
	// overwritten for every estimate.
	Cost bench.CostModel
	// MaxReceives is the posted-receive table capacity the plan assumes
	// (default: the paper configuration's). It prices the descriptor pool
	// and bounds feasibility against the trace's peak posted depth.
	MaxReceives int
	// BudgetBytes caps the modeled per-rank memory footprint; candidates
	// above it are rejected. 0 = unlimited.
	BudgetBytes int64
	// Workers bounds the analyzer replay pool (0 = GOMAXPROCS).
	Workers int
	// Obs, when non-nil, receives planner counters and phase events.
	Obs *obs.Sink
}

func (c *Config) fill() {
	if c.Cost == (bench.CostModel{}) {
		c.Cost = bench.DefaultCostModel()
	}
	if c.MaxReceives == 0 {
		c.MaxReceives = bench.PaperMatcherConfig().MaxReceives
	}
}

// Estimate is one candidate's predicted behaviour on the planned trace.
type Estimate struct {
	Candidate Candidate

	// Offload / Host are the modeled rates for the offloaded engine and
	// the host list-matching baseline on this workload.
	Offload bench.ModeledRate
	Host    bench.ModeledRate
	// Stages decomposes the offload pipeline (whatif's delta view).
	Stages bench.OffloadStages

	// QueueMean / QueueMax are the replayed search-depth statistics at
	// the candidate's bin count (the Figure 7 quantities).
	QueueMean float64
	QueueMax  uint64
	// PostedMax is the replay's peak posted-receive queue length.
	PostedMax int

	// BinConflictProb is the probability that a message shares a key or a
	// bin with another message of its arrival block (pairwise collision
	// compounded over the block fill).
	BinConflictProb float64
	// BatchWidth is the predicted mean messages per coalesced wire frame
	// (0 when coalescing is off).
	BatchWidth float64
	// BlocksPerMsg and ProbesPerMsg are the priced per-message work items.
	BlocksPerMsg float64
	ProbesPerMsg float64

	// FootprintBytes is the modeled per-rank memory footprint.
	FootprintBytes int
	// Reject is non-empty when the candidate is infeasible: "over-budget"
	// (footprint above Config.BudgetBytes) or "posted-overflow" (the
	// trace's peak posted depth exceeds Config.MaxReceives).
	Reject string
}

// Speedup returns the candidate's modeled rate relative to base (1.0 =
// equal). Zero when either rate is invalid.
func (e Estimate) Speedup(base Estimate) float64 {
	if !e.Offload.Valid() || !base.Offload.Valid() {
		return 0
	}
	return e.Offload.MsgPerSec / base.Offload.MsgPerSec
}

// Planner prices candidates against one trace. Replay reports are cached
// per bin count, so a whole recommendation run replays the trace only a
// handful of times regardless of how many candidates it prices.
type Planner struct {
	cfg     Config
	sched   *analyzer.Schedule
	feats   Features
	reports map[int]*analyzer.Report
}

// Planner phase codes carried by obs.EvPlanPhase (A payload word).
const (
	PhaseFeatures uint64 = iota
	PhaseReplay
	PhaseGrid
	PhaseRefine
	PhaseRank
)

// New builds a planner over tr: one replay schedule (shared by every bin
// count) plus the candidate-independent trace features. Replays run at
// the analyzer's default posted-receive bound (not the planned capacity):
// feasibility against Config.MaxReceives is judged from the replay's
// measured PostedMax instead of by aborting the replay.
func New(tr *trace.Trace, cfg Config) *Planner {
	cfg.fill()
	start := cfg.Obs.Now()
	acfg := analyzer.Config{
		Workers: cfg.Workers,
		Obs:     cfg.Obs,
	}
	p := &Planner{
		cfg:     cfg,
		sched:   analyzer.BuildSchedule(tr, acfg),
		feats:   extractFeatures(tr),
		reports: make(map[int]*analyzer.Report),
	}
	if cfg.Obs.Enabled() {
		cfg.Obs.Event(obs.EvPlanPhase, 0, PhaseFeatures, uint64(cfg.Obs.Now()-start), 0)
	}
	return p
}

// Features returns the trace-derived quantities the planner prices with.
func (p *Planner) Features() Features { return p.feats }

// Prefetch replays every uncached bin count in bins over the one shared
// worker pool. Estimate calls it implicitly for single counts; Recommend
// batches a whole grid's worth into one fan-out.
func (p *Planner) Prefetch(bins []int) error {
	missing := make([]int, 0, len(bins))
	seen := make(map[int]bool, len(bins))
	for _, b := range bins {
		if _, ok := p.reports[b]; !ok && !seen[b] {
			seen[b] = true
			missing = append(missing, b)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	start := p.cfg.Obs.Now()
	cfgs := make([]analyzer.Config, len(missing))
	for i, b := range missing {
		cfgs[i] = analyzer.Config{Bins: b}
	}
	pool := analyzer.Config{Workers: p.cfg.Workers, Obs: p.cfg.Obs}
	reps, err := p.sched.SweepConfigs(cfgs, pool)
	if err != nil {
		return err
	}
	for i, b := range missing {
		p.reports[b] = reps[i]
	}
	p.cfg.Obs.CounterAdd(obs.CtrPlanReplays, uint64(len(missing)))
	if p.cfg.Obs.Enabled() {
		p.cfg.Obs.Event(obs.EvPlanPhase, 0, PhaseReplay,
			uint64(p.cfg.Obs.Now()-start), uint64(len(missing)))
	}
	return nil
}

func (p *Planner) report(bins int) (*analyzer.Report, error) {
	if rep, ok := p.reports[bins]; ok {
		return rep, nil
	}
	if err := p.Prefetch([]int{bins}); err != nil {
		return nil, err
	}
	return p.reports[bins], nil
}

// batchWidth predicts the mean coalesced frame width for a candidate:
// frames can grow no wider than the arrival burst, the message-count
// threshold, or the byte threshold divided by the mean payload.
func (p *Planner) batchWidth(c Candidate) float64 {
	if c.CoalesceBytes <= 0 && c.CoalesceMsgs <= 0 {
		return 0
	}
	w := p.feats.MeanBurst
	if c.CoalesceMsgs > 0 && float64(c.CoalesceMsgs) < w {
		w = float64(c.CoalesceMsgs)
	}
	if c.CoalesceBytes > 0 && p.feats.AvgPayloadBytes > 0 {
		if byBytes := float64(c.CoalesceBytes) / p.feats.AvgPayloadBytes; byBytes < w {
			w = byBytes
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Estimate prices one candidate: an analyzer replay at its bin count
// (cached) plus the analytic block, wire, and footprint stages.
func (p *Planner) Estimate(c Candidate) (Estimate, error) {
	if err := c.Validate(); err != nil {
		return Estimate{}, err
	}
	rep, err := p.report(c.Bins)
	if err != nil {
		return Estimate{}, err
	}
	p.cfg.Obs.CounterInc(obs.CtrPlanCandidates)

	est := Estimate{
		Candidate: c,
		QueueMean: rep.Depth.AvgArriveDepth(),
		QueueMax:  rep.Depth.ArriveMaxDepth,
		PostedMax: rep.PostedMax,
	}

	msgs := rep.Depth.Delivered()
	// Block formation packs each arrival burst into full blocks plus one
	// remainder: blocks per message is exactly ceil(burst/BlockSize)/burst.
	burst := p.feats.MeanBurst
	if burst < 1 {
		burst = 1
	}
	blocksPerBurst := math.Ceil(burst / float64(c.BlockSize))
	est.BlocksPerMsg = blocksPerBurst / burst
	fill := burst / blocksPerBurst
	if msgs > 0 {
		est.ProbesPerMsg = float64(rep.Depth.ArriveTraversed) / float64(msgs)
	}
	est.BatchWidth = p.batchWidth(c)

	// Pairwise collision inside a block: same key (1/UniqueKeys) or,
	// failing that, same bin; compounded over the block's other fill-1
	// occupants.
	pk := 0.0
	if rep.UniqueKeys > 0 {
		pk = 1 / float64(rep.UniqueKeys)
	}
	pPair := pk + (1-pk)/float64(c.Bins)
	est.BinConflictProb = 1 - math.Pow(1-pPair, fill-1)

	// The engine cannot overlap more blocks than it has threads to run:
	// clamp the priced in-flight window to Threads/BlockSize.
	effInFlight := c.InFlight
	if byThreads := c.Threads / c.BlockSize; byThreads >= 1 && byThreads < effInFlight {
		effInFlight = byThreads
	}

	cm := p.cfg.Cost
	cm.Threads = c.Threads
	cm.InFlight = effInFlight
	cm.BatchWidth = est.BatchWidth

	blocks := uint64(math.Round(float64(msgs) * est.BlocksPerMsg))
	if msgs > 0 && blocks == 0 {
		blocks = 1
	}
	st := core.EngineStats{Messages: msgs, Blocks: blocks}
	est.Offload = cm.ModelOffload(c.String(), st, rep.Depth)
	est.Stages, _ = cm.OffloadStages(st, rep.Depth)
	est.Host = cm.ModelHost("host "+c.String(), rep.Depth)

	peers := int(math.Ceil(p.feats.MeanPeers))
	est.FootprintBytes = bench.ModelFootprintBytes(bench.FootprintConfig{
		Bins:          c.Bins,
		MaxReceives:   p.cfg.MaxReceives,
		BlockSize:     c.BlockSize,
		InFlight:      c.InFlight,
		CoalesceBytes: c.CoalesceBytes,
		Peers:         peers,
	})

	switch {
	case rep.PostedMax > p.cfg.MaxReceives:
		est.Reject = "posted-overflow"
	case p.cfg.BudgetBytes > 0 && int64(est.FootprintBytes) > p.cfg.BudgetBytes:
		est.Reject = "over-budget"
	}
	if est.Reject != "" {
		p.cfg.Obs.CounterInc(obs.CtrPlanRejected)
	}
	return est, nil
}

// extractFeatures walks the trace once per destination rank: inbound
// sends (shifted by the analyzer's base delivery latency) merge with the
// destination's progress calls, and maximal runs of consecutive arrivals
// form the burst statistic. Payload and peer statistics come from the
// send side.
func extractFeatures(tr *trace.Trace) Features {
	f := Features{App: tr.App, Procs: tr.NumRanks()}
	const latency = 1e-4 // analyzer.Config default

	type tick struct {
		time    float64
		seq     int
		arrival bool
	}
	byDest := make(map[int32][]tick, tr.NumRanks())
	peers := make(map[int32]map[int32]struct{})
	var payloadSum float64

	seq := 0
	for ri := range tr.Ranks {
		rank := tr.Ranks[ri].Rank
		for _, e := range tr.Ranks[ri].Events {
			switch e.Kind {
			case trace.OpSend:
				byDest[e.Peer] = append(byDest[e.Peer],
					tick{time: e.Walltime + latency, seq: seq, arrival: true})
				if peers[rank] == nil {
					peers[rank] = make(map[int32]struct{})
				}
				peers[rank][e.Peer] = struct{}{}
				f.Sends++
				payloadSum += float64(e.Count)
			case trace.OpProgress:
				byDest[rank] = append(byDest[rank], tick{time: e.Walltime, seq: seq})
			}
			seq++
		}
	}
	if f.Sends > 0 {
		f.AvgPayloadBytes = payloadSum / float64(f.Sends)
	}

	var runSum, runCount int
	// Deterministic destination order.
	dests := make([]int32, 0, len(byDest))
	for d := range byDest {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, d := range dests {
		ticks := byDest[d]
		sort.Slice(ticks, func(i, j int) bool {
			if ticks[i].time != ticks[j].time {
				return ticks[i].time < ticks[j].time
			}
			return ticks[i].seq < ticks[j].seq
		})
		run := 0
		flush := func() {
			if run > 0 {
				runSum += run
				runCount++
				if run > f.MaxBurst {
					f.MaxBurst = run
				}
				run = 0
			}
		}
		for _, t := range ticks {
			if t.arrival {
				run++
			} else {
				flush()
			}
		}
		flush()
	}
	if runCount > 0 {
		f.MeanBurst = float64(runSum) / float64(runCount)
	}

	var peerSum int
	for _, set := range peers {
		peerSum += len(set)
		if len(set) > f.MaxPeers {
			f.MaxPeers = len(set)
		}
	}
	if len(peers) > 0 {
		f.MeanPeers = float64(peerSum) / float64(len(peers))
	}
	return f
}
