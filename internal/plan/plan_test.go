package plan

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/mpi"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// pingPongTrace reproduces the §VI message-rate workload as a trace: per
// repetition the receiver pre-posts k distinct-tag receives, progresses,
// and the sender fires the k-message sequence back to back. Its arrival
// bursts are exactly k long, which makes every analytic stage of the
// planner checkable against the real engine.
func pingPongTrace(k, reps int) *trace.Trace {
	tr := &trace.Trace{App: "pingpong", Ranks: []trace.RankTrace{{Rank: 0}, {Rank: 1}}}
	for rep := 0; rep < reps; rep++ {
		base := float64(rep)
		for i := 0; i < k; i++ {
			tr.Ranks[1].Events = append(tr.Ranks[1].Events, trace.Event{
				Kind: trace.OpRecv, Name: "MPI_Irecv", Peer: 0, Tag: int32(i),
				Count: 8, Walltime: base + 0.1 + float64(i)*1e-6})
		}
		tr.Ranks[1].Events = append(tr.Ranks[1].Events, trace.Event{
			Kind: trace.OpProgress, Name: "MPI_Waitall", Walltime: base + 0.2})
		for i := 0; i < k; i++ {
			tr.Ranks[0].Events = append(tr.Ranks[0].Events, trace.Event{
				Kind: trace.OpSend, Name: "MPI_Isend", Peer: 1, Tag: int32(i),
				Count: 8, Walltime: base + 0.3 + float64(i)*1e-6})
		}
	}
	return tr
}

func TestFeaturesPingPong(t *testing.T) {
	const k, reps = 24, 10
	p := New(pingPongTrace(k, reps), Config{})
	f := p.Features()
	if f.Sends != k*reps {
		t.Errorf("Sends = %d, want %d", f.Sends, k*reps)
	}
	if f.MeanBurst != k {
		t.Errorf("MeanBurst = %v, want %d", f.MeanBurst, k)
	}
	if f.MaxBurst != k {
		t.Errorf("MaxBurst = %d, want %d", f.MaxBurst, k)
	}
	if f.AvgPayloadBytes != 8 {
		t.Errorf("AvgPayloadBytes = %v, want 8", f.AvgPayloadBytes)
	}
	if f.MeanPeers != 1 || f.MaxPeers != 1 {
		t.Errorf("peers = %v/%d, want 1/1", f.MeanPeers, f.MaxPeers)
	}
}

func TestCandidateValidate(t *testing.T) {
	if err := DefaultCandidate().Validate(); err != nil {
		t.Fatalf("default candidate invalid: %v", err)
	}
	bad := []Candidate{
		{Bins: 3, BlockSize: 32, InFlight: 1, Threads: 32},
		{Bins: 0, BlockSize: 32, InFlight: 1, Threads: 32},
		{Bins: 64, BlockSize: 0, InFlight: 1, Threads: 32},
		{Bins: 64, BlockSize: 64, InFlight: 1, Threads: 32},
		{Bins: 64, BlockSize: 32, InFlight: 9, Threads: 32},
		{Bins: 64, BlockSize: 32, InFlight: 1, Threads: 512},
		{Bins: 64, BlockSize: 32, InFlight: 1, Threads: 32, CoalesceBytes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad[%d] %+v accepted", i, c)
		}
	}
}

func TestEstimateRejections(t *testing.T) {
	tr := pingPongTrace(64, 5)

	// Footprint over budget.
	tight := New(tr, Config{BudgetBytes: 10 * 1024})
	est, err := tight.Estimate(DefaultCandidate())
	if err != nil {
		t.Fatal(err)
	}
	if est.Reject != "over-budget" {
		t.Errorf("10KiB budget: Reject = %q, want over-budget (footprint %d)", est.Reject, est.FootprintBytes)
	}

	// Peak posted depth above the planned capacity: the workload pre-posts
	// 64 receives, the plan allows 16.
	shallow := New(tr, Config{MaxReceives: 16})
	est, err = shallow.Estimate(DefaultCandidate())
	if err != nil {
		t.Fatal(err)
	}
	if est.Reject != "posted-overflow" {
		t.Errorf("MaxReceives=16: Reject = %q, want posted-overflow (PostedMax %d)", est.Reject, est.PostedMax)
	}

	// A roomy plan accepts the same candidate.
	roomy := New(tr, Config{BudgetBytes: 8 << 20})
	est, err = roomy.Estimate(DefaultCandidate())
	if err != nil {
		t.Fatal(err)
	}
	if est.Reject != "" {
		t.Errorf("8MiB budget: rejected with %q", est.Reject)
	}
	if !est.Offload.Valid() || !est.Host.Valid() {
		t.Errorf("estimate rates invalid: %+v / %+v", est.Offload, est.Host)
	}
}

// TestRecommendDeterminism is the ranking's reproducibility pin: the
// emitted document must be byte-identical across repeated runs and across
// replay worker-pool widths (the analyzer guarantees byte-identical
// reports at any width; the ranking adds a total order on top).
func TestRecommendDeterminism(t *testing.T) {
	app, _ := tracegen.ByName("AMG")
	tr := app.Generate(tracegen.Config{Scale: 10})

	docJSON := func(workers int) []byte {
		p := New(tr, Config{Workers: workers, BudgetBytes: 4 << 20})
		res, err := p.Recommend(RecommendConfig{TopN: 5})
		if err != nil {
			t.Fatal(err)
		}
		doc := DocFromResult(res, 4<<20)
		if err := doc.Validate(); err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	first := docJSON(1)
	again := docJSON(1)
	wide := docJSON(16)
	if string(first) != string(again) {
		t.Error("two identical runs produced different documents")
	}
	if string(first) != string(wide) {
		t.Error("-parallel 1 and 16 produced different documents")
	}
}

// TestPlanAccuracyVsMeasured is the planner's calibration pin: on the
// workload the trace reproduces exactly, the planner's predicted rate for
// the recommended top configuration must land within ±15% of the rate the
// cost model assigns to a real engine run of that same configuration (the
// msgrate -modeled semantics).
func TestPlanAccuracyVsMeasured(t *testing.T) {
	const k, reps = 100, 40
	p := New(pingPongTrace(k, reps), Config{})

	res, err := p.Recommend(RecommendConfig{TopN: 1})
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, est Estimate) {
		c := est.Candidate
		matcher := bench.PaperMatcherConfig()
		matcher.Bins = c.Bins
		matcher.BlockSize = c.BlockSize
		matcher.InFlightBlocks = c.InFlight
		run, err := bench.RunMsgRate(bench.MsgRateConfig{
			Label: label, Engine: mpi.EngineOffload,
			K: k, Reps: reps, Matcher: matcher,
			Threads: c.Threads, InFlight: c.InFlight,
			CoalesceBytes: c.CoalesceBytes, CoalesceMsgs: c.CoalesceMsgs,
		})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cm := bench.DefaultCostModel()
		cm.Threads = c.Threads
		cm.InFlight = c.InFlight
		cm.BatchWidth = run.BatchWidth
		measured := cm.ModelOffload(label, run.MatchStats, run.Depth)
		if !measured.Valid() || !est.Offload.Valid() {
			t.Fatalf("%s: invalid rate (measured %+v, predicted %+v)", label, measured, est.Offload)
		}
		rel := math.Abs(est.Offload.MsgPerSec-measured.MsgPerSec) / measured.MsgPerSec
		t.Logf("%s (%s): predicted %.0f msg/s, measured-modeled %.0f msg/s (%.1f%% off)",
			label, c, est.Offload.MsgPerSec, measured.MsgPerSec, 100*rel)
		if rel > 0.15 {
			t.Errorf("%s: prediction off by %.1f%% (> 15%%)", label, 100*rel)
		}
	}
	check("top", res.Entries[0])
	check("baseline", res.Baseline)
}

func TestDocValidate(t *testing.T) {
	goodEntry := Entry{
		Bins: 512, BlockSize: 32, InFlight: 1, Threads: 32,
		MsgPerSec: 1e6, NSPerMsg: 1000, QueueMean: 0.5, QueueMax: 3,
		BinConflictProb: 0.1, FootprintBytes: 100_000, Speedup: 1.0,
	}
	good := func() *Doc {
		e2 := goodEntry
		e2.MsgPerSec = 0.9e6
		return &Doc{
			Schema: Schema, App: "x", Procs: 2, MeanBurst: 10,
			Evaluated: 2, Baseline: goodEntry, Entries: []Entry{goodEntry, e2},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good doc rejected: %v", err)
	}

	cases := map[string]func(*Doc){
		"schema":     func(d *Doc) { d.Schema = "repro/plan/v0" },
		"no entries": func(d *Doc) { d.Entries = nil },
		"inf rate":   func(d *Doc) { d.Entries[0].MsgPerSec = math.Inf(1) },
		"nan queue":  func(d *Doc) { d.Entries[1].QueueMean = math.NaN() },
		"unsorted":   func(d *Doc) { d.Entries[1].MsgPerSec = 2e6 },
		"bins":       func(d *Doc) { d.Entries[0].Bins = 100 },
		"zero rate":  func(d *Doc) { d.Entries[1].MsgPerSec = 0 },
		"overbudget": func(d *Doc) { d.BudgetBytes = 50_000 },
		"baseline":   func(d *Doc) { d.Baseline.NSPerMsg = math.Inf(1) },
	}
	for name, corrupt := range cases {
		d := good()
		corrupt(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: corrupted doc accepted", name)
		}
	}
}

// TestDocRoundTrip pins Write/Read symmetry and that a written document
// never contains the tokens encoding/json would need for Inf/NaN.
func TestDocRoundTrip(t *testing.T) {
	p := New(pingPongTrace(32, 5), Config{})
	res, err := p.Recommend(RecommendConfig{TopN: 3, RefineRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc := DocFromResult(res, 0)
	path := t.TempDir() + "/plan.json"
	if err := WriteDoc(path, doc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(doc.Entries) || back.App != doc.App {
		t.Errorf("round trip lost data: %+v", back)
	}
}
