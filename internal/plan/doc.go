package plan

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Schema identifies the machine-readable recommendation format. Consumers
// (cmd/obscheck -plan, CI artifact checks) must reject documents with any
// other schema string.
const Schema = "repro/plan/v1"

// Doc is the whatif/recommend output document: the workload identity, the
// budget the search ran under, the baseline estimate, and the ranked
// recommendations.
type Doc struct {
	Schema      string  `json:"schema"`
	App         string  `json:"app"`
	Procs       int     `json:"procs"`
	BudgetBytes int64   `json:"budget_bytes,omitempty"`
	MeanBurst   float64 `json:"mean_burst"`
	Evaluated   int     `json:"candidates_evaluated"`
	Rejected    int     `json:"rejected"`
	Baseline    Entry   `json:"baseline"`
	Entries     []Entry `json:"recommendations"`
}

// Entry is one configuration's predicted behaviour.
type Entry struct {
	Bins          int `json:"bins"`
	BlockSize     int `json:"block_size"`
	InFlight      int `json:"inflight"`
	Threads       int `json:"threads"`
	CoalesceBytes int `json:"coalesce_bytes,omitempty"`
	CoalesceMsgs  int `json:"coalesce_msgs,omitempty"`

	MsgPerSec       float64 `json:"msg_per_sec"`
	NSPerMsg        float64 `json:"ns_per_msg"`
	QueueMean       float64 `json:"queue_mean"`
	QueueMax        uint64  `json:"queue_max"`
	BinConflictProb float64 `json:"bin_conflict_prob"`
	BatchWidth      float64 `json:"batch_width,omitempty"`
	FootprintBytes  int     `json:"footprint_bytes"`
	// Speedup is this entry's modeled rate over the baseline's (1.0 =
	// equal; 0 when either rate is invalid).
	Speedup float64 `json:"speedup_vs_baseline,omitempty"`
}

// EntryFromEstimate converts a planner estimate (with baseline for the
// speedup column) into its document form.
func EntryFromEstimate(e, baseline Estimate) Entry {
	return Entry{
		Bins:            e.Candidate.Bins,
		BlockSize:       e.Candidate.BlockSize,
		InFlight:        e.Candidate.InFlight,
		Threads:         e.Candidate.Threads,
		CoalesceBytes:   e.Candidate.CoalesceBytes,
		CoalesceMsgs:    e.Candidate.CoalesceMsgs,
		MsgPerSec:       e.Offload.MsgPerSec,
		NSPerMsg:        e.Offload.NSPerMsg,
		QueueMean:       e.QueueMean,
		QueueMax:        e.QueueMax,
		BinConflictProb: e.BinConflictProb,
		BatchWidth:      e.BatchWidth,
		FootprintBytes:  e.FootprintBytes,
		Speedup:         e.Speedup(baseline),
	}
}

// DocFromResult assembles the full document for one recommendation run.
func DocFromResult(res *Result, budgetBytes int64) *Doc {
	d := &Doc{
		Schema:      Schema,
		App:         res.Features.App,
		Procs:       res.Features.Procs,
		BudgetBytes: budgetBytes,
		MeanBurst:   res.Features.MeanBurst,
		Evaluated:   res.Evaluated,
		Rejected:    res.Rejected,
		Baseline:    EntryFromEstimate(res.Baseline, res.Baseline),
	}
	for _, e := range res.Entries {
		d.Entries = append(d.Entries, EntryFromEstimate(e, res.Baseline))
	}
	return d
}

// finite rejects the values encoding/json cannot represent and rankings
// cannot order.
func finite(vals ...float64) error {
	for _, v := range vals {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("non-finite value %v", v)
		}
	}
	return nil
}

func (e *Entry) validate(budget int64) error {
	if err := finite(e.MsgPerSec, e.NSPerMsg, e.QueueMean, e.BinConflictProb, e.BatchWidth, e.Speedup); err != nil {
		return err
	}
	if e.Bins < 1 || e.Bins&(e.Bins-1) != 0 {
		return fmt.Errorf("bins %d not a power of two", e.Bins)
	}
	if e.BlockSize < 1 || e.InFlight < 1 || e.Threads < 1 {
		return fmt.Errorf("non-positive configuration dimension")
	}
	if e.MsgPerSec < 0 || e.BinConflictProb < 0 || e.BinConflictProb > 1 {
		return fmt.Errorf("metric out of range")
	}
	if e.FootprintBytes <= 0 {
		return fmt.Errorf("non-positive footprint %d", e.FootprintBytes)
	}
	if budget > 0 && int64(e.FootprintBytes) > budget {
		return fmt.Errorf("footprint %d over budget %d", e.FootprintBytes, budget)
	}
	return nil
}

// Validate checks the structural invariants downstream tooling relies on:
// the schema string, finiteness of every metric (no Inf/NaN ever reaches
// a document), power-of-two bin counts, recommendations sorted by rate
// descending, and every recommendation inside the stated budget.
func (d *Doc) Validate() error {
	if d.Schema != Schema {
		return fmt.Errorf("plan: schema %q, want %q", d.Schema, Schema)
	}
	if d.App == "" {
		return fmt.Errorf("plan: missing app")
	}
	if len(d.Entries) == 0 {
		return fmt.Errorf("plan: no recommendations")
	}
	if err := finite(d.MeanBurst); err != nil {
		return fmt.Errorf("plan: mean_burst: %w", err)
	}
	// The baseline is informational and exempt from the budget check: a
	// budget-constrained plan exists precisely because the default may not
	// fit.
	if err := d.Baseline.validate(0); err != nil {
		return fmt.Errorf("plan: baseline: %w", err)
	}
	for i := range d.Entries {
		if err := d.Entries[i].validate(d.BudgetBytes); err != nil {
			return fmt.Errorf("plan: recommendations[%d]: %w", i, err)
		}
		if d.Entries[i].MsgPerSec <= 0 {
			return fmt.Errorf("plan: recommendations[%d]: msg_per_sec %v, want > 0", i, d.Entries[i].MsgPerSec)
		}
		if i > 0 && d.Entries[i].MsgPerSec > d.Entries[i-1].MsgPerSec {
			return fmt.Errorf("plan: recommendations[%d]: not sorted by rate descending", i)
		}
	}
	return nil
}

// WriteDoc validates doc and writes it to path, indented.
func WriteDoc(path string, doc *Doc) error {
	doc.Schema = Schema
	if err := doc.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadDoc loads and validates a recommendation document.
func ReadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}
