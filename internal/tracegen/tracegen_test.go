package tracegen

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

var small = Config{Scale: 10}

func TestTableIIApplicationSet(t *testing.T) {
	apps := Apps()
	if len(apps) != 16 {
		t.Fatalf("apps = %d, want 16 (Table II)", len(apps))
	}
	wantProcs := map[string]int{
		"AMG": 8, "AMR MiniApp": 64, "BigFFT": 1024, "BoxLib CNS": 64,
		"BoxLib MultiGrid": 64, "CrystalRouter": 100, "FillBoundary": 1000,
		"HILO": 256, "HILO 2D": 256, "LULESH": 64, "MiniFe": 1152,
		"MOCFE": 64, "MultiGrid": 1000, "Nekbone": 64, "PARTISN": 168, "SNAP": 168,
	}
	for _, a := range apps {
		if wantProcs[a.Name] != a.Procs {
			t.Errorf("%s: procs = %d, want %d", a.Name, a.Procs, wantProcs[a.Name])
		}
	}
}

func TestByName(t *testing.T) {
	if a, ok := ByName("LULESH"); !ok || a.Procs != 64 {
		t.Fatal("ByName(LULESH) failed")
	}
	if _, ok := ByName("NoSuchApp"); ok {
		t.Fatal("ByName invented an app")
	}
}

func TestAllGeneratorsProduceValidTraces(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			tr := a.Generate(small)
			if tr.App != a.Name {
				t.Fatalf("trace app = %q", tr.App)
			}
			if tr.NumRanks() != a.Procs {
				t.Fatalf("ranks = %d, want %d", tr.NumRanks(), a.Procs)
			}
			if tr.NumEvents() == 0 {
				t.Fatal("empty trace")
			}
			sends, recvs := 0, 0
			for ri := range tr.Ranks {
				last := -1.0
				for _, e := range tr.Ranks[ri].Events {
					if e.Walltime < last {
						t.Fatalf("rank %d: time goes backwards (%f after %f)", ri, e.Walltime, last)
					}
					last = e.Walltime
					switch e.Kind {
					case trace.OpSend:
						sends++
						if e.Peer < 0 || int(e.Peer) >= a.Procs {
							t.Fatalf("send to invalid rank %d", e.Peer)
						}
						if e.Tag < 0 {
							t.Fatal("send with wildcard tag")
						}
					case trace.OpRecv:
						recvs++
						if e.Peer != trace.AnySource && (e.Peer < 0 || int(e.Peer) >= a.Procs) {
							t.Fatalf("recv from invalid rank %d", e.Peer)
						}
					}
				}
			}
			if sends != recvs {
				t.Fatalf("sends (%d) != recvs (%d): matching cannot balance", sends, recvs)
			}
		})
	}
}

func TestCallMixShape(t *testing.T) {
	// Figure 6 structure: p2p-only apps, collectives-only apps, and mixed.
	p2pOnly := map[string]bool{"BigFFT": true, "CrystalRouter": true, "FillBoundary": true, "MultiGrid": true}
	collOnly := map[string]bool{"HILO": true, "HILO 2D": true}
	for _, a := range Apps() {
		// Scale 50 keeps runtime modest while giving modulo-gated collective
		// phases (every Nth iteration) a chance to fire.
		tr := a.Generate(Config{Scale: 50})
		m := tr.Mix()
		if m.OneSided != 0 {
			t.Errorf("%s: uses one-sided ops (none of the paper's apps do)", a.Name)
		}
		switch {
		case p2pOnly[a.Name]:
			if m.Collective != 0 {
				t.Errorf("%s: should be p2p-only, has %d collectives", a.Name, m.Collective)
			}
			if m.P2P == 0 {
				t.Errorf("%s: no p2p", a.Name)
			}
		case collOnly[a.Name]:
			if m.P2P != 0 {
				t.Errorf("%s: should be collectives-only, has %d p2p", a.Name, m.P2P)
			}
			if m.Collective == 0 {
				t.Errorf("%s: no collectives", a.Name)
			}
		default:
			if m.P2P == 0 || m.Collective == 0 {
				t.Errorf("%s: expected mixed profile, got %+v", a.Name, m)
			}
			if m.P2P <= m.Collective {
				t.Errorf("%s: p2p (%d) should dominate collectives (%d)", a.Name, m.P2P, m.Collective)
			}
		}
	}
}

func TestCNSDeepQueues(t *testing.T) {
	// BoxLib CNS posts a full 27-point stencil of receives per iteration —
	// the deepest queues in the set (paper: max depth 25 at one bin).
	tr, _ := ByName("BoxLib CNS")
	got := tr.Generate(small)
	// Count consecutive receives posted by rank 0 before its first send.
	pending := 0
	for _, e := range got.Ranks[0].Events {
		if e.Kind == trace.OpRecv {
			pending++
		}
		if e.Kind == trace.OpSend {
			break
		}
	}
	if pending < 20 {
		t.Fatalf("CNS pre-posts %d receives, want >= 20 for deep queues", pending)
	}
}

func TestSweepCompatibleSequences(t *testing.T) {
	// PARTISN/SNAP post long runs of receives with identical (source, tag):
	// the compatible sequences the fast path exploits.
	for _, name := range []string{"PARTISN", "SNAP"} {
		app, _ := ByName(name)
		tr := app.Generate(Config{Scale: 100})
		// Find the longest same-(peer,tag) run of receives on some rank.
		longest := 0
		for ri := range tr.Ranks {
			run, lastPeer, lastTag := 0, int32(-2), int32(-2)
			for _, e := range tr.Ranks[ri].Events {
				if e.Kind != trace.OpRecv {
					continue
				}
				if e.Peer == lastPeer && e.Tag == lastTag {
					run++
				} else {
					run = 1
					lastPeer, lastTag = e.Peer, e.Tag
				}
				if run > longest {
					longest = run
				}
			}
		}
		if longest < 8 {
			t.Errorf("%s: longest compatible sequence %d, want >= 8", name, longest)
		}
	}
}

func TestCrystalRouterUnexpectedHeavy(t *testing.T) {
	// CrystalRouter sends before the receives are posted: on every stage the
	// send timestamps precede the receive timestamps.
	app, _ := ByName("CrystalRouter")
	tr := app.Generate(small)
	var firstSend, firstRecv float64 = -1, -1
	for _, e := range tr.Ranks[0].Events {
		if e.Kind == trace.OpSend && firstSend < 0 {
			firstSend = e.Walltime
		}
		if e.Kind == trace.OpRecv && firstRecv < 0 {
			firstRecv = e.Walltime
		}
	}
	if firstSend < 0 || firstRecv < 0 || firstSend >= firstRecv {
		t.Fatalf("sends (%f) must precede receives (%f)", firstSend, firstRecv)
	}
}

func TestMOCFEUsesWildcards(t *testing.T) {
	app, _ := ByName("MOCFE")
	tr := app.Generate(small)
	wild := 0
	for ri := range tr.Ranks {
		for _, e := range tr.Ranks[ri].Events {
			if e.Kind == trace.OpRecv && e.Peer == trace.AnySource {
				wild++
			}
		}
	}
	if wild == 0 {
		t.Fatal("MOCFE generates no wildcard receives")
	}
}

func TestScaleControlsVolume(t *testing.T) {
	app, _ := ByName("LULESH")
	smallTr := app.Generate(Config{Scale: 10})
	fullTr := app.Generate(Config{Scale: 100})
	if smallTr.NumEvents() >= fullTr.NumEvents() {
		t.Fatalf("scale 10 (%d events) not smaller than scale 100 (%d)",
			smallTr.NumEvents(), fullTr.NumEvents())
	}
	// Determinism: same config, same trace.
	again := app.Generate(Config{Scale: 10})
	if again.NumEvents() != smallTr.NumEvents() {
		t.Fatal("generation is not deterministic")
	}
}

func TestTableIIRendering(t *testing.T) {
	out := TableII()
	for _, a := range Apps() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("table missing %s", a.Name)
		}
	}
	if !strings.Contains(out, "1152") {
		t.Error("table missing MiniFe process count")
	}
}

func TestGridTopology(t *testing.T) {
	g := grid3{4, 4, 4}
	if g.size() != 64 {
		t.Fatalf("size = %d", g.size())
	}
	for r := 0; r < g.size(); r++ {
		x, y, z := g.coords(r)
		if g.rank(x, y, z) != r {
			t.Fatalf("coords/rank not inverse at %d", r)
		}
		face := g.faceNeighbors(r)
		if len(face) != 6 {
			t.Fatalf("rank %d: %d face neighbors, want 6", r, len(face))
		}
		full := g.fullNeighbors(r)
		if len(full) != 26 {
			t.Fatalf("rank %d: %d full neighbors, want 26", r, len(full))
		}
		for _, nb := range append(face, full...) {
			if nb == r || nb < 0 || nb >= g.size() {
				t.Fatalf("rank %d: bad neighbor %d", r, nb)
			}
		}
	}
	// Degenerate grid: neighbors must deduplicate.
	g2 := grid3{2, 1, 1}
	if n := g2.faceNeighbors(0); len(n) != 1 || n[0] != 1 {
		t.Fatalf("2x1x1 neighbors = %v", n)
	}
}
