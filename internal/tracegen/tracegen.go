// Package tracegen synthesizes MPI application traces reproducing the
// matching-relevant communication patterns of the sixteen DOE mini-apps of
// the paper's Table II.
//
// Substitution note (see DESIGN.md): the paper analyzes NERSC's
// "Characterization of DOE mini-apps" DUMPI traces, which are not
// redistributable here. Figures 6 and 7 depend only on each application's
// matching footprint — the mix of call types, the (source, tag) diversity
// of posted receives, posting order, and receive depth — so each generator
// reproduces the pattern the paper's §V names for its application (halo
// exchanges, FFT transposes, sweep pipelines, crystal-router staging,
// collectives-only solvers) at the Table II process counts. Absolute
// message counts are scaled down; the shapes are what matter.
package tracegen

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Config controls generation volume.
type Config struct {
	// Scale is the percentage of full iteration counts to generate
	// (default 100). Tests use small scales.
	Scale int
}

func (c Config) iters(base int) int {
	s := c.Scale
	if s <= 0 {
		s = 100
	}
	n := base * s / 100
	if n < 1 {
		n = 1
	}
	return n
}

// App is one Table II application.
type App struct {
	Name        string
	Description string
	Procs       int
	Generate    func(cfg Config) *trace.Trace
}

// Apps returns the sixteen Table II applications in the paper's order.
func Apps() []App {
	return []App{
		{"AMG", "Algebraic MultiGrid. Linear equation solver", 8, genAMG},
		{"AMR MiniApp", "Single step AMR for hydrodynamics", 64, genAMR},
		{"BigFFT", "Distributed Fast Fourier Transform", 1024, genBigFFT},
		{"BoxLib CNS", "Compressible Navier Stokes equations integrator", 64, genBoxLibCNS},
		{"BoxLib MultiGrid", "Single step BoxLib linear solver", 64, genBoxLibMG},
		{"CrystalRouter", "Proxy application for the Nek5000 scalable communication pattern", 100, genCrystalRouter},
		{"FillBoundary", "Proxy application for ghost cell exchange using MultiFabs", 1000, genFillBoundary},
		{"HILO", "Modeling of Neutron Transport Evaluation and Test Suite", 256, genHILO},
		{"HILO 2D", "Modeling of Neutron Transport Evaluation and Test Suite in 2D multinode", 256, genHILO2D},
		{"LULESH", "Proxy application for hydrodynamic codes", 64, genLULESH},
		{"MiniFe", "Proxy application for finite elements codes", 1152, genMiniFE},
		{"MOCFE", "Proxy application for Method of Characteristics (MOC) reactor simulator", 64, genMOCFE},
		{"MultiGrid", "MultiGrid solver based on BoxLib", 1000, genMultiGrid},
		{"Nekbone", "Proxy application for the Nek5000 poison equation solver", 64, genNekbone},
		{"PARTISN", "Discrete-ordinates neutral-particle transport equation solver", 168, genPARTISN},
		{"SNAP", "Proxy application for the PARTISN communication pattern", 168, genSNAP},
	}
}

// ByName returns the application with the given name.
func ByName(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// ---------------------------------------------------------------------------
// Emission helpers.

// emitter builds a trace with one clock per rank; each phase of an
// iteration occupies a disjoint time window so receives posted in the post
// window land before the sends of the send window — the pre-posting
// behaviour real halo codes exhibit.
type emitter struct {
	t *trace.Trace
}

func newEmitter(app string, procs int) *emitter {
	t := &trace.Trace{App: app, Ranks: make([]trace.RankTrace, procs)}
	for r := range t.Ranks {
		t.Ranks[r].Rank = int32(r)
	}
	return &emitter{t: t}
}

// at computes a deterministic timestamp: iteration window + phase offset +
// a small per-rank, per-call jitter that makes global ordering total.
func at(iter int, phase float64, rank, k int) float64 {
	return float64(iter) + phase + float64(rank)*1e-6 + float64(k)*1e-8
}

func (e *emitter) add(rank int, ev trace.Event) {
	rt := &e.t.Ranks[rank]
	rt.Events = append(rt.Events, ev)
}

func (e *emitter) irecv(rank, src, tag, comm, count int, wt float64) {
	e.add(rank, trace.Event{Kind: trace.OpRecv, Name: "MPI_Irecv",
		Peer: int32(src), Tag: int32(tag), Comm: int32(comm), Count: int32(count), Walltime: wt})
}

func (e *emitter) isend(rank, dst, tag, comm, count int, wt float64) {
	e.add(rank, trace.Event{Kind: trace.OpSend, Name: "MPI_Isend",
		Peer: int32(dst), Tag: int32(tag), Comm: int32(comm), Count: int32(count), Walltime: wt})
}

func (e *emitter) waitall(rank int, wt float64) {
	e.add(rank, trace.Event{Kind: trace.OpProgress, Name: "MPI_Waitall", Walltime: wt})
}

func (e *emitter) collective(rank int, name string, wt float64) {
	e.add(rank, trace.Event{Kind: trace.OpCollective, Name: name, Walltime: wt})
}

// ---------------------------------------------------------------------------
// Topology helpers.

// grid3 is a 3-D cartesian decomposition with periodic boundaries.
type grid3 struct{ nx, ny, nz int }

func (g grid3) size() int { return g.nx * g.ny * g.nz }

func (g grid3) coords(rank int) (x, y, z int) {
	x = rank % g.nx
	y = (rank / g.nx) % g.ny
	z = rank / (g.nx * g.ny)
	return
}

func (g grid3) rank(x, y, z int) int {
	x = (x%g.nx + g.nx) % g.nx
	y = (y%g.ny + g.ny) % g.ny
	z = (z%g.nz + g.nz) % g.nz
	return x + y*g.nx + z*g.nx*g.ny
}

// faceNeighbors returns the 6 face neighbors (deduplicated, self excluded).
func (g grid3) faceNeighbors(rank int) []int {
	x, y, z := g.coords(rank)
	cand := []int{
		g.rank(x-1, y, z), g.rank(x+1, y, z),
		g.rank(x, y-1, z), g.rank(x, y+1, z),
		g.rank(x, y, z-1), g.rank(x, y, z+1),
	}
	return dedupe(rank, cand)
}

// fullNeighbors returns up to 26 neighbors of the 27-point stencil.
func (g grid3) fullNeighbors(rank int) []int {
	x, y, z := g.coords(rank)
	var cand []int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				cand = append(cand, g.rank(x+dx, y+dy, z+dz))
			}
		}
	}
	return dedupe(rank, cand)
}

func dedupe(self int, cand []int) []int {
	seen := map[int]bool{self: true}
	var out []int
	for _, c := range cand {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// halo emits one pre-posted halo exchange iteration: every rank posts
// receives from all neighbors, then sends to all neighbors, then waits.
// A message from A to B carries tag(i) where i is B's index in A's neighbor
// list; the receiver computes the sender-side index so tags always pair,
// letting callers model per-direction tags (spread keys) or a constant tag
// (compatible sequences).
func halo(e *emitter, iter int, procs int, neighbors func(int) []int, tag func(dirIdx int) int, comm, count int) {
	for r := 0; r < procs; r++ {
		for i, nb := range neighbors(r) {
			j := indexOf(neighbors(nb), r) // direction the sender will use
			e.irecv(r, nb, tag(j), comm, count, at(iter, 0.1, r, i))
		}
	}
	for r := 0; r < procs; r++ {
		for k, i := range jitterOrder(r, neighbors(r)) {
			e.isend(r, neighbors(r)[i], tag(i), comm, count, at(iter, 0.5, r, k))
		}
	}
	// Waitalls land while the exchange is still in flight (real codes call
	// MPI_Waitall right after the last send), so progress-time sampling of
	// occupancy and posted depth sees live queues.
	for r := 0; r < procs; r++ {
		e.waitall(r, at(iter, 0.51, r, 0))
	}
}

// jitterOrder returns neighbor indexes in the pseudo-random order a real
// fabric would complete concurrent sends, keeping each rank's event clock
// monotonic while decorrelating arrival order from posting order.
func jitterOrder(r int, nbs []int) []int {
	idx := make([]int, len(nbs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ja, jb := pairJitter(r, nbs[idx[a]]), pairJitter(r, nbs[idx[b]])
		if ja != jb {
			return ja < jb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// indexOf returns the position of v in s (-1 if absent).
func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// pairJitter decorrelates arrival order from posting order: real fabrics
// deliver concurrent messages from different senders in effectively random
// order, which is what makes 1-bin queues deep. The jitter is a pure
// function of the (sender, receiver) pair, so messages between one pair
// keep their relative order (the trace-level analogue of per-QP FIFO).
func pairJitter(sender, receiver int) float64 {
	h := uint32(sender)*2654435761 ^ uint32(receiver)*40503
	h ^= h >> 13
	return float64(h%1024) / 1024 * 0.04
}

// allCollective emits one collective call on every rank.
func allCollective(e *emitter, iter int, procs int, name string, phase float64) {
	for r := 0; r < procs; r++ {
		e.collective(r, name, at(iter, phase, r, 0))
	}
}

// ---------------------------------------------------------------------------
// Application generators.

// genAMG: algebraic multigrid — face-neighbor halo per level plus reduction
// collectives; moderate p2p with a visible collective share.
func genAMG(cfg Config) *trace.Trace {
	const procs = 8
	g := grid3{2, 2, 2}
	e := newEmitter("AMG", procs)
	for it := 0; it < cfg.iters(24); it++ {
		level := it % 4
		halo(e, it, procs, g.faceNeighbors,
			func(i int) int { return 100 + level }, 0, 1024>>level)
		allCollective(e, it, procs, "MPI_Allreduce", 0.95)
	}
	return e.t
}

// genAMR: block-structured AMR — face halo plus a regrid phase where every
// rank reports to rank 0 (many-to-one with wildcard receives at the root).
func genAMR(cfg Config) *trace.Trace {
	const procs = 64
	g := grid3{4, 4, 4}
	e := newEmitter("AMR MiniApp", procs)
	for it := 0; it < cfg.iters(10); it++ {
		halo(e, it, procs, g.faceNeighbors,
			func(i int) int { return 7 }, 0, 512)
		if it%3 == 2 { // regrid: gather load info at root
			for r := 1; r < procs; r++ {
				e.irecv(0, int(trace.AnySource), 99, 0, 8, at(it, 0.92, r, 0))
			}
			for r := 1; r < procs; r++ {
				e.isend(r, 0, 99, 0, 8, at(it, 0.94, r, 0))
			}
			e.waitall(0, at(it, 0.96, 0, 0))
			allCollective(e, it, procs, "MPI_Bcast", 0.98)
		}
	}
	return e.t
}

// genBigFFT: 2-D decomposed FFT — row transpose then column transpose,
// pure point-to-point (one of the paper's p2p-only applications).
func genBigFFT(cfg Config) *trace.Trace {
	const procs, side = 1024, 32
	e := newEmitter("BigFFT", procs)
	for it := 0; it < cfg.iters(2); it++ {
		// Row transpose: exchange with every rank in the same row.
		for r := 0; r < procs; r++ {
			row := r / side
			for k := 0; k < side; k++ {
				peer := row*side + k
				if peer == r {
					continue
				}
				e.irecv(r, peer, 1000+it, 0, 4096, at(it, 0.05, r, k))
			}
		}
		for r := 0; r < procs; r++ {
			row := r / side
			for k := 0; k < side; k++ {
				peer := row*side + k
				if peer == r {
					continue
				}
				e.isend(r, peer, 1000+it, 0, 4096, at(it, 0.3, r, k))
			}
		}
		for r := 0; r < procs; r++ {
			e.waitall(r, at(it, 0.45, r, 0))
		}
		// Column transpose.
		for r := 0; r < procs; r++ {
			col := r % side
			for k := 0; k < side; k++ {
				peer := k*side + col
				if peer == r {
					continue
				}
				e.irecv(r, peer, 2000+it, 0, 4096, at(it, 0.55, r, k))
			}
		}
		for r := 0; r < procs; r++ {
			col := r % side
			for k := 0; k < side; k++ {
				peer := k*side + col
				if peer == r {
					continue
				}
				e.isend(r, peer, 2000+it, 0, 4096, at(it, 0.8, r, k))
			}
		}
		for r := 0; r < procs; r++ {
			e.waitall(r, at(it, 0.95, r, 0))
		}
	}
	return e.t
}

// genBoxLibCNS: compressible Navier-Stokes — deep 27-point-stencil ghost
// exchange; 26 receives pending per rank gives the deepest queues of the
// application set (the paper reports a maximum depth of 25 at one bin).
func genBoxLibCNS(cfg Config) *trace.Trace {
	const procs = 64
	g := grid3{4, 4, 4}
	e := newEmitter("BoxLib CNS", procs)
	for it := 0; it < cfg.iters(12); it++ {
		// Per-neighbor tags: keys spread across bins.
		halo(e, it, procs, g.fullNeighbors,
			func(i int) int { return 300 + i }, 0, 2048)
		if it%5 == 4 {
			allCollective(e, it, procs, "MPI_Allreduce", 0.97)
		}
	}
	return e.t
}

// genBoxLibMG: BoxLib linear solver — V-cycles of face halos across levels.
func genBoxLibMG(cfg Config) *trace.Trace {
	const procs = 64
	g := grid3{4, 4, 4}
	e := newEmitter("BoxLib MultiGrid", procs)
	it := 0
	for cycle := 0; cycle < cfg.iters(6); cycle++ {
		for _, level := range []int{0, 1, 2, 3, 2, 1, 0} { // V-cycle
			halo(e, it, procs, g.faceNeighbors,
				func(i int) int { return 500 + level }, 0, 1024>>level)
			it++
		}
		allCollective(e, it-1, procs, "MPI_Allreduce", 0.99)
	}
	return e.t
}

// genCrystalRouter: the Nek5000 staged-routing pattern — hypercube stages
// where bursts of same-(source,tag) messages arrive before their receives
// are posted: unexpected-heavy with long compatible sequences. Pure p2p.
func genCrystalRouter(cfg Config) *trace.Trace {
	const procs = 100
	const burst = 6
	e := newEmitter("CrystalRouter", procs)
	for it := 0; it < cfg.iters(8); it++ {
		for stage := 0; stage < 7; stage++ { // ceil(log2(100)) stages
			partner := func(r int) int { return r ^ (1 << stage) }
			// Sends go out first: the receiver posts afterwards, so these
			// messages are unexpected (crystal-router forwards eagerly).
			for r := 0; r < procs; r++ {
				p := partner(r)
				if p >= procs {
					continue
				}
				for b := 0; b < burst; b++ {
					e.isend(r, p, 40+stage, 0, 256, at(it, 0.1+0.1*float64(stage), r, b))
				}
			}
			for r := 0; r < procs; r++ {
				p := partner(r)
				if p >= procs {
					continue
				}
				for b := 0; b < burst; b++ {
					e.irecv(r, p, 40+stage, 0, 256, at(it, 0.15+0.1*float64(stage), r, b))
				}
				e.waitall(r, at(it, 0.17+0.1*float64(stage), r, 0))
			}
		}
	}
	return e.t
}

// genFillBoundary: MultiFab ghost-cell exchange at 1000 ranks — full-
// stencil halo, pure p2p.
func genFillBoundary(cfg Config) *trace.Trace {
	const procs = 1000
	g := grid3{10, 10, 10}
	e := newEmitter("FillBoundary", procs)
	for it := 0; it < cfg.iters(3); it++ {
		halo(e, it, procs, g.fullNeighbors,
			func(i int) int { return 600 + i%8 }, 0, 1024)
	}
	return e.t
}

// genHILO: neutron-transport test suite — entirely collectives (one of the
// paper's two collectives-only applications).
func genHILO(cfg Config) *trace.Trace {
	const procs = 256
	e := newEmitter("HILO", procs)
	for it := 0; it < cfg.iters(40); it++ {
		allCollective(e, it, procs, "MPI_Allreduce", 0.2)
		allCollective(e, it, procs, "MPI_Bcast", 0.5)
		if it%10 == 9 {
			allCollective(e, it, procs, "MPI_Barrier", 0.9)
		}
	}
	return e.t
}

// genHILO2D: the 2-D multinode variant, also collectives-only.
func genHILO2D(cfg Config) *trace.Trace {
	const procs = 256
	e := newEmitter("HILO 2D", procs)
	for it := 0; it < cfg.iters(40); it++ {
		allCollective(e, it, procs, "MPI_Allreduce", 0.3)
		allCollective(e, it, procs, "MPI_Reduce", 0.6)
	}
	return e.t
}

// genLULESH: hydrodynamics proxy — 27-point stencil with three distinct
// communication phases per step, plus a time-constraint reduction.
func genLULESH(cfg Config) *trace.Trace {
	const procs = 64
	g := grid3{4, 4, 4}
	e := newEmitter("LULESH", procs)
	it := 0
	for step := 0; step < cfg.iters(6); step++ {
		for phase := 0; phase < 3; phase++ {
			halo(e, it, procs, g.fullNeighbors,
				func(i int) int { return 700 + phase }, 0, 4096)
			it++
		}
		allCollective(e, it-1, procs, "MPI_Allreduce", 0.99)
	}
	return e.t
}

// genMiniFE: finite elements — shallow face-neighbor halos inside a CG
// solve with two dot-product reductions per iteration.
func genMiniFE(cfg Config) *trace.Trace {
	const procs = 1152
	g := grid3{8, 12, 12}
	e := newEmitter("MiniFe", procs)
	for it := 0; it < cfg.iters(5); it++ {
		halo(e, it, procs, g.faceNeighbors,
			func(i int) int { return 800 }, 0, 512)
		allCollective(e, it, procs, "MPI_Allreduce", 0.93)
		allCollective(e, it, procs, "MPI_Allreduce", 0.96)
	}
	return e.t
}

// genMOCFE: method-of-characteristics reactor sweep — angular pipelines
// with wildcard-source receives (trajectory order is data dependent).
func genMOCFE(cfg Config) *trace.Trace {
	const procs = 64
	g := grid3{4, 4, 4}
	e := newEmitter("MOCFE", procs)
	for it := 0; it < cfg.iters(10); it++ {
		for angle := 0; angle < 4; angle++ {
			// Each rank forwards along the sweep direction and receives from
			// whichever upstream trajectory finishes first.
			for r := 0; r < procs; r++ {
				e.irecv(r, int(trace.AnySource), 900+angle, 0, 128, at(it, 0.1+0.2*float64(angle), r, 0))
			}
			for r := 0; r < procs; r++ {
				x, y, z := g.coords(r)
				dst := g.rank(x+1, y+angle%2, z)
				e.isend(r, dst, 900+angle, 0, 128, at(it, 0.15+0.2*float64(angle), r, 0))
			}
			for r := 0; r < procs; r++ {
				e.waitall(r, at(it, 0.18+0.2*float64(angle), r, 0))
			}
		}
		allCollective(e, it, procs, "MPI_Allreduce", 0.95)
	}
	return e.t
}

// genMultiGrid: BoxLib multigrid at 1000 ranks — level-wise face halos.
func genMultiGrid(cfg Config) *trace.Trace {
	const procs = 1000
	g := grid3{10, 10, 10}
	e := newEmitter("MultiGrid", procs)
	it := 0
	for cycle := 0; cycle < cfg.iters(3); cycle++ {
		for _, level := range []int{0, 1, 2, 1, 0} {
			halo(e, it, procs, g.faceNeighbors,
				func(i int) int { return 110 + level }, 0, 2048>>level)
			it++
		}
	}
	return e.t
}

// genNekbone: Nek5000 Poisson proxy — irregular gather-scatter neighbor
// exchange plus CG reductions; pure p2p apart from the reductions.
func genNekbone(cfg Config) *trace.Trace {
	const procs = 64
	g := grid3{4, 4, 4}
	e := newEmitter("Nekbone", procs)
	neighbors := func(r int) []int {
		full := g.fullNeighbors(r)
		// Gather-scatter touches an irregular subset of the stencil. The
		// keep predicate is symmetric in the pair, so the exchange stays
		// balanced: every posted receive has a matching send.
		out := make([]int, 0, 18)
		for _, nb := range full {
			lo, hi := r, nb
			if lo > hi {
				lo, hi = hi, lo
			}
			if (lo*31+hi)%3 == 0 {
				continue
			}
			out = append(out, nb)
		}
		return out
	}
	for it := 0; it < cfg.iters(10); it++ {
		halo(e, it, procs, neighbors,
			func(i int) int { return 210 }, 0, 256)
		allCollective(e, it, procs, "MPI_Allreduce", 0.94)
	}
	return e.t
}

// sweep is the PARTISN/SNAP KBA wavefront: long pipelines of messages with
// identical (source, tag) — the compatible-sequence case of §III-D3a.
func sweep(app string, procs, planes, tagBase int, cfg Config) *trace.Trace {
	const nx, ny = 12, 14
	e := newEmitter(app, procs)
	coords := func(r int) (int, int) { return r % nx, r / nx }
	rank := func(x, y int) int { return x + y*nx }
	for it := 0; it < cfg.iters(2); it++ {
		np := cfg.iters(planes)
		// Downstream receives: a long run of same-(source,tag) receives per
		// direction, posted up front — a textbook compatible sequence.
		for r := 0; r < procs; r++ {
			x, y := coords(r)
			for p := 0; p < np; p++ {
				if x > 0 {
					e.irecv(r, rank(x-1, y), tagBase, 0, 64, at(it, 0.05, r, 2*p))
				}
				if y > 0 {
					e.irecv(r, rank(x, y-1), tagBase+1, 0, 64, at(it, 0.05, r, 2*p+1))
				}
			}
		}
		for r := 0; r < procs; r++ {
			x, y := coords(r)
			for p := 0; p < np; p++ {
				if x < nx-1 {
					e.isend(r, rank(x+1, y), tagBase, 0, 64, at(it, 0.4, r, 2*p))
				}
				if y < ny-1 {
					e.isend(r, rank(x, y+1), tagBase+1, 0, 64, at(it, 0.4, r, 2*p+1))
				}
			}
		}
		for r := 0; r < procs; r++ {
			e.waitall(r, at(it, 0.9, r, 0))
		}
		allCollective(e, it, procs, "MPI_Allreduce", 0.95)
	}
	return e.t
}

// genPARTISN: discrete-ordinates transport sweep.
func genPARTISN(cfg Config) *trace.Trace {
	return sweep("PARTISN", 168, 24, 20, cfg)
}

// genSNAP: the PARTISN communication-pattern proxy.
func genSNAP(cfg Config) *trace.Trace {
	return sweep("SNAP", 168, 32, 30, cfg)
}

// TableII renders the application table (name, description, processes).
func TableII() string {
	out := fmt.Sprintf("%-18s %-72s %s\n", "Application", "Description", "Processes")
	for _, a := range Apps() {
		out += fmt.Sprintf("%-18s %-72s %d\n", a.Name, a.Description, a.Procs)
	}
	return out
}
