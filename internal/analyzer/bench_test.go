package analyzer

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// benchTrace is a 64-rank BoxLib CNS workload — the paper's headline
// Figure 7 application, large enough that sharding has real work per rank.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	app, ok := tracegen.ByName("BoxLib CNS")
	if !ok {
		b.Fatal("BoxLib CNS missing")
	}
	return app.Generate(tracegen.Config{Scale: 25})
}

func BenchmarkAnalyze(b *testing.B) {
	tr := benchTrace(b)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeSerial(tr, Config{Bins: 32}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Analyze(tr, Config{Bins: 32}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweep compares the pre-PR sweep shape (a fresh schedule derived
// and sorted per bin count, replayed serially) against the shared-schedule
// fan-out over the artifact's full 1…256 sweep.
func BenchmarkSweep(b *testing.B) {
	tr := benchTrace(b)
	bins := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	b.Run("per-bin-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, bin := range bins {
				if _, err := AnalyzeSerial(tr, Config{Bins: bin}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("shared-schedule", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Sweep(tr, bins, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBuildSchedule(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildSchedule(tr, Config{})
	}
}
