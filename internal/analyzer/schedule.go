package analyzer

import (
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Schedule is the replay plan derived from one trace: per-destination-rank
// step streams plus the trace-level statistics every Report carries. Every
// scheduled step touches only the matching structures of its destination
// rank, so the streams are independent — the replay is embarrassingly
// parallel by destination rank. A Schedule is immutable once built and can
// be replayed many times (Sweep reuses one Schedule across the whole
// 1…256 bin sweep instead of re-deriving and re-sorting the step list per
// bin count).
//
// Step placement depends on Config.Latency and Config.LatencySpread (they
// decide when a send arrives at its destination), so those fields are
// frozen at build time; Bins, Engine, MaxReceives and RecordSeries remain
// free per replay.
type Schedule struct {
	app   string
	procs int
	mix   trace.CallMix

	shards []shard
}

// shard is the time-ordered step stream of one destination rank.
type shard struct {
	rank  int32
	steps []step
}

// BuildSchedule partitions t's events into per-destination-rank step
// streams. Receives and progress operations stay on their own rank; a send
// becomes an arrival at its destination after the pair's delivery latency,
// exactly as in the serial path. Sends addressed to ranks outside the
// trace are dropped (the serial path skips them at replay time). Each
// shard is sorted by (time, seq) — the same comparator the serial path
// applies to the global list, so a shard's order equals the global order
// restricted to that rank.
func BuildSchedule(t *trace.Trace, cfg Config) *Schedule {
	cfg.fill()
	start := cfg.Obs.Now()
	sc := &Schedule{app: t.App, procs: t.NumRanks(), mix: t.Mix()}

	sc.shards = make([]shard, len(t.Ranks))
	idx := make(map[int32]int, len(t.Ranks))
	for ri := range t.Ranks {
		sc.shards[ri].rank = t.Ranks[ri].Rank
		idx[t.Ranks[ri].Rank] = ri
	}

	// seq numbers every trace event in emission order (including kinds
	// that schedule nothing) so ties resolve identically to the serial
	// path's global sort.
	seq := 0
	for ri := range t.Ranks {
		rank := t.Ranks[ri].Rank
		for _, e := range t.Ranks[ri].Events {
			switch e.Kind {
			case trace.OpRecv:
				sc.shards[ri].steps = append(sc.shards[ri].steps, step{
					time: e.Walltime, seq: seq, rank: rank,
					kind: trace.OpRecv, peer: e.Peer, tag: e.Tag, comm: e.Comm})
			case trace.OpSend:
				if di, ok := idx[e.Peer]; ok {
					delay := cfg.Latency + cfg.LatencySpread*pairSpread(rank, e.Peer)
					sc.shards[di].steps = append(sc.shards[di].steps, step{
						time: e.Walltime + delay, seq: seq, rank: e.Peer,
						kind: trace.OpSend, peer: rank, tag: e.Tag, comm: e.Comm})
				}
			case trace.OpProgress:
				sc.shards[ri].steps = append(sc.shards[ri].steps, step{
					time: e.Walltime, seq: seq, rank: rank, kind: trace.OpProgress})
			}
			seq++
		}
	}

	// Sort shards concurrently: many small O(s log s) sorts replace the
	// serial path's one global O(E log E) sort.
	var wg sync.WaitGroup
	for i := range sc.shards {
		wg.Add(1)
		go func(steps []step) {
			defer wg.Done()
			sort.Slice(steps, func(a, b int) bool {
				if steps[a].time != steps[b].time {
					return steps[a].time < steps[b].time
				}
				return steps[a].seq < steps[b].seq
			})
		}(sc.shards[i].steps)
	}
	wg.Wait()
	if cfg.Obs.Enabled() {
		cfg.Obs.Event(obs.EvAnalyzerPhase, 0, phaseSchedule, uint64(cfg.Obs.Now()-start), 0)
	}
	return sc
}

// NumShards returns the number of per-rank replay shards.
func (sc *Schedule) NumShards() int { return len(sc.shards) }

// NumSteps returns the total scheduled step count across shards.
func (sc *Schedule) NumSteps() int {
	n := 0
	for i := range sc.shards {
		n += len(sc.shards[i].steps)
	}
	return n
}
