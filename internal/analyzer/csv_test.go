package analyzer

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := twoRankTrace([]int32{1, 2, 3})
	rep, err := Analyze(tr, Config{Bins: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	app, bins, avg, max, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if app != "mini" || bins != 32 {
		t.Fatalf("round trip meta: %q %d", app, bins)
	}
	if avg != rep.AvgDepth() || max != rep.MaxDepth() {
		t.Fatalf("round trip depth: %v/%v vs %v/%v", avg, max, rep.AvgDepth(), rep.MaxDepth())
	}
}

func TestReadCSVMalformed(t *testing.T) {
	if _, _, _, _, err := ReadCSV(strings.NewReader("just,one,line\n")); err == nil {
		t.Fatal("malformed CSV accepted")
	}
	if _, _, _, _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
}

func TestWriteTreeArtifactLayout(t *testing.T) {
	tr := twoRankTrace([]int32{1, 2})
	reps, err := Sweep(tr, []int{1, 32}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := WriteTree(root, reps); err != nil {
		t.Fatal(err)
	}
	for _, bins := range []string{"1", "32"} {
		path := filepath.Join(root, "mini", bins, "stats.csv")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("missing artifact file: %v", err)
		}
		app, b, _, _, err := ReadCSV(f)
		f.Close()
		if err != nil || app != "mini" || b == 0 {
			t.Fatalf("artifact file %s unreadable: %v", path, err)
		}
	}
}

func TestRecordSeries(t *testing.T) {
	tr := twoRankTrace([]int32{1, 2, 3})
	// Sample mid-stream so the data points carry live state.
	tr.Ranks[1].Events[3].Walltime = 0.3
	rep, err := Analyze(tr, Config{Bins: 8, RecordSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) == 0 {
		t.Fatal("no data points recorded")
	}
	p := rep.Series[0]
	if p.Rank != 1 || p.Posted != 3 {
		t.Fatalf("data point = %+v, want rank 1 with 3 posted", p)
	}
	if p.TotalBins == 0 {
		t.Fatal("occupancy missing from data point")
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "posted") || len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 1+len(rep.Series) {
		t.Fatalf("series CSV malformed:\n%s", buf.String())
	}
	// Without the flag, no series is kept.
	rep2, _ := Analyze(tr, Config{Bins: 8})
	if len(rep2.Series) != 0 {
		t.Fatal("series recorded without RecordSeries")
	}
}
