package analyzer

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CSV output mirroring the paper's artifact A2, which "generates a folder
// for each application in the analysis, and, for each application, it
// generates [a folder per] number of bins used"; the plot scripts then join
// the per-run statistics. WriteCSV emits one run's statistics; WriteTree
// lays the runs out in the artifact's directory structure.

// csvHeader lists the emitted columns.
var csvHeader = []string{
	"app", "procs", "bins",
	"p2p_calls", "collective_calls", "onesided_calls", "progress_calls",
	"avg_queue_depth", "max_queue_depth",
	"avg_post_depth", "max_post_depth",
	"posted_avg", "posted_max", "empty_bin_pct",
	"tags_used", "unique_keys", "wildcard_recvs",
	"matched", "unexpected",
}

// WriteCSV writes one report as a two-line CSV (header + values).
func WriteCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := []string{
		rep.App,
		strconv.Itoa(rep.Procs),
		strconv.Itoa(rep.Bins),
		strconv.Itoa(rep.Mix.P2P),
		strconv.Itoa(rep.Mix.Collective),
		strconv.Itoa(rep.Mix.OneSided),
		strconv.Itoa(rep.Mix.Progress),
		fmt.Sprintf("%.6f", rep.AvgDepth()),
		strconv.FormatUint(rep.MaxDepth(), 10),
		fmt.Sprintf("%.6f", rep.Depth.AvgPostDepth()),
		strconv.FormatUint(rep.Depth.PostMaxDepth, 10),
		fmt.Sprintf("%.6f", rep.PostedAvg),
		strconv.Itoa(rep.PostedMax),
		fmt.Sprintf("%.3f", rep.EmptyBinPct),
		strconv.Itoa(rep.TagsUsed),
		strconv.Itoa(rep.UniqueKeys),
		strconv.Itoa(rep.WildcardRecvs),
		strconv.FormatUint(rep.Matched, 10),
		strconv.FormatUint(rep.Unexpected, 10),
	}
	if err := cw.Write(row); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a file written by WriteCSV back into the fields the plot
// pipeline consumes (app, bins, avg/max depth).
func ReadCSV(r io.Reader) (app string, bins int, avg float64, max uint64, err error) {
	records, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return "", 0, 0, 0, err
	}
	if len(records) != 2 || len(records[1]) != len(csvHeader) {
		return "", 0, 0, 0, fmt.Errorf("analyzer: malformed stats CSV")
	}
	row := records[1]
	app = row[0]
	if bins, err = strconv.Atoi(row[2]); err != nil {
		return "", 0, 0, 0, err
	}
	if avg, err = strconv.ParseFloat(row[7], 64); err != nil {
		return "", 0, 0, 0, err
	}
	if max, err = strconv.ParseUint(row[8], 10, 64); err != nil {
		return "", 0, 0, 0, err
	}
	return app, bins, avg, max, nil
}

// WriteTree writes reports under root in the artifact layout:
// root/<app>/<bins>/stats.csv.
func WriteTree(root string, reports []*Report) error {
	for _, rep := range reports {
		dir := filepath.Join(root, sanitizeName(rep.App), strconv.Itoa(rep.Bins))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, "stats.csv"))
		if err != nil {
			return err
		}
		if err := WriteCSV(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV emits the §V-A per-progress data points of a report as
// CSV (one row per progress sample).
func WriteSeriesCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "rank", "posted", "unexpected", "empty_bins", "total_bins"}); err != nil {
		return err
	}
	for _, p := range rep.Series {
		row := []string{
			fmt.Sprintf("%.7f", p.Time),
			strconv.Itoa(int(p.Rank)),
			strconv.Itoa(p.Posted),
			strconv.Itoa(p.Unexpected),
			strconv.Itoa(p.EmptyBins),
			strconv.Itoa(p.TotalBins),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}
