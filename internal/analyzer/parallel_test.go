package analyzer

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// mustEqualReports fails unless the two reports are deeply (and for floats
// exactly) equal — the sharded path promises byte-identical output, not
// just statistically equivalent output.
func mustEqualReports(t *testing.T, label string, serial, parallel *Report) {
	t.Helper()
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("%s: parallel report diverges from serial\nserial:   %+v\nparallel: %+v", label, serial, parallel)
	}
}

func TestParallelEquivalenceOnGenerators(t *testing.T) {
	engines := []Engine{EngineOptimistic, EngineList, EngineBin, EngineRank, EngineAdaptive}
	for _, name := range []string{"AMG", "BoxLib CNS", "CrystalRouter", "PARTISN"} {
		app, ok := tracegen.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		tr := app.Generate(tracegen.Config{Scale: 10})
		for _, eng := range engines {
			cfg := Config{Engine: eng, Bins: 16, RecordSeries: true}
			serial, err := AnalyzeSerial(tr, cfg)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", name, eng, err)
			}
			for _, workers := range []int{1, 3, 16} {
				c := cfg
				c.Workers = workers
				par, err := Analyze(tr, c)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", name, eng, workers, err)
				}
				mustEqualReports(t, name+"/"+string(eng), serial, par)
			}
		}
	}
}

func TestParallelEquivalenceEdgeCases(t *testing.T) {
	// Wildcards, unexpected arrivals, sends to a rank outside the trace,
	// and same-walltime ties that only seq can break.
	tr := &trace.Trace{App: "edges", Ranks: []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.OpSend, Name: "MPI_Isend", Peer: 1, Tag: 5, Walltime: 0.1},  // unexpected at 1
			{Kind: trace.OpSend, Name: "MPI_Isend", Peer: 99, Tag: 9, Walltime: 0.2}, // rank not traced
			{Kind: trace.OpSend, Name: "MPI_Isend", Peer: 1, Tag: 6, Walltime: 0.6},
			{Kind: trace.OpProgress, Name: "MPI_Wait", Walltime: 0.9},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.OpRecv, Name: "MPI_Irecv", Peer: 0, Tag: 5, Walltime: 0.5},
			{Kind: trace.OpRecv, Name: "MPI_Irecv", Peer: trace.AnySource, Tag: trace.AnyTag, Walltime: 0.5},
			{Kind: trace.OpProgress, Name: "MPI_Waitall", Walltime: 0.9},
		}},
	}}
	cfg := Config{Bins: 8, RecordSeries: true, Workers: 4}
	serial, err := AnalyzeSerial(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analyze(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualReports(t, "edges", serial, par)
	if par.Unexpected != 1 || par.WildcardRecvs != 1 {
		t.Fatalf("edge semantics: %+v", par)
	}
}

func TestSweepEquivalence(t *testing.T) {
	app, _ := tracegen.ByName("BoxLib CNS")
	tr := app.Generate(tracegen.Config{Scale: 10})
	bins := []int{1, 4, 32, 128}
	cfg := Config{RecordSeries: true, Workers: 8}

	reps, err := Sweep(tr, bins, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(bins) {
		t.Fatalf("got %d reports for %d bins", len(reps), len(bins))
	}
	for i, b := range bins {
		c := cfg
		c.Bins = b
		serial, err := AnalyzeSerial(tr, c)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualReports(t, app.Name, serial, reps[i])
	}
}

func TestScheduleReuse(t *testing.T) {
	app, _ := tracegen.ByName("AMG")
	tr := app.Generate(tracegen.Config{Scale: 10})
	cfg := Config{RecordSeries: true}
	sched := BuildSchedule(tr, cfg)
	if sched.NumShards() != tr.NumRanks() {
		t.Fatalf("shards = %d, ranks = %d", sched.NumShards(), tr.NumRanks())
	}
	if sched.NumSteps() == 0 {
		t.Fatal("empty schedule for a p2p app")
	}
	// One schedule replayed at two bin counts must equal fresh analyses.
	for _, b := range []int{1, 32} {
		c := cfg
		c.Bins = b
		fromSched, err := sched.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := AnalyzeSerial(tr, c)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualReports(t, "reuse", fresh, fromSched)
	}
}

func TestParallelValidationAndErrors(t *testing.T) {
	tr := twoRankTrace([]int32{1})
	if _, err := Analyze(tr, Config{Bins: 0}); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := Sweep(tr, []int{4, 0}, Config{}); err == nil {
		t.Fatal("zero bins accepted in sweep")
	}
	big := make([]int32, 64)
	for i := range big {
		big[i] = int32(i)
	}
	over := twoRankTrace(big)
	_, err := Analyze(over, Config{Bins: 4, MaxReceives: 8, Workers: 4})
	if err == nil {
		t.Fatal("table overflow not reported by parallel path")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("overflow error lost its rank: %v", err)
	}
	if _, err := Sweep(over, []int{4, 8}, Config{MaxReceives: 8, Workers: 4}); err == nil {
		t.Fatal("table overflow not reported by sweep")
	}
}

func TestParallelEmptyTrace(t *testing.T) {
	tr := &trace.Trace{App: "empty"}
	rep, err := Analyze(tr, Config{Bins: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := AnalyzeSerial(tr, Config{Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualReports(t, "empty", serial, rep)
}
