package analyzer

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// mustEqualReports fails unless the two reports are deeply (and for floats
// exactly) equal — the sharded path promises byte-identical output, not
// just statistically equivalent output.
func mustEqualReports(t *testing.T, label string, serial, parallel *Report) {
	t.Helper()
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("%s: parallel report diverges from serial\nserial:   %+v\nparallel: %+v", label, serial, parallel)
	}
}

func TestParallelEquivalenceOnGenerators(t *testing.T) {
	engines := []Engine{EngineOptimistic, EngineList, EngineBin, EngineRank, EngineAdaptive}
	for _, name := range []string{"AMG", "BoxLib CNS", "CrystalRouter", "PARTISN"} {
		app, ok := tracegen.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		tr := app.Generate(tracegen.Config{Scale: 10})
		for _, eng := range engines {
			cfg := Config{Engine: eng, Bins: 16, RecordSeries: true}
			serial, err := AnalyzeSerial(tr, cfg)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", name, eng, err)
			}
			for _, workers := range []int{1, 3, 16} {
				c := cfg
				c.Workers = workers
				par, err := Analyze(tr, c)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", name, eng, workers, err)
				}
				mustEqualReports(t, name+"/"+string(eng), serial, par)
			}
		}
	}
}

func TestParallelEquivalenceEdgeCases(t *testing.T) {
	// Wildcards, unexpected arrivals, sends to a rank outside the trace,
	// and same-walltime ties that only seq can break.
	tr := &trace.Trace{App: "edges", Ranks: []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.OpSend, Name: "MPI_Isend", Peer: 1, Tag: 5, Walltime: 0.1},  // unexpected at 1
			{Kind: trace.OpSend, Name: "MPI_Isend", Peer: 99, Tag: 9, Walltime: 0.2}, // rank not traced
			{Kind: trace.OpSend, Name: "MPI_Isend", Peer: 1, Tag: 6, Walltime: 0.6},
			{Kind: trace.OpProgress, Name: "MPI_Wait", Walltime: 0.9},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.OpRecv, Name: "MPI_Irecv", Peer: 0, Tag: 5, Walltime: 0.5},
			{Kind: trace.OpRecv, Name: "MPI_Irecv", Peer: trace.AnySource, Tag: trace.AnyTag, Walltime: 0.5},
			{Kind: trace.OpProgress, Name: "MPI_Waitall", Walltime: 0.9},
		}},
	}}
	cfg := Config{Bins: 8, RecordSeries: true, Workers: 4}
	serial, err := AnalyzeSerial(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analyze(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualReports(t, "edges", serial, par)
	if par.Unexpected != 1 || par.WildcardRecvs != 1 {
		t.Fatalf("edge semantics: %+v", par)
	}
}

func TestSweepEquivalence(t *testing.T) {
	app, _ := tracegen.ByName("BoxLib CNS")
	tr := app.Generate(tracegen.Config{Scale: 10})
	bins := []int{1, 4, 32, 128}
	cfg := Config{RecordSeries: true, Workers: 8}

	reps, err := Sweep(tr, bins, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(bins) {
		t.Fatalf("got %d reports for %d bins", len(reps), len(bins))
	}
	for i, b := range bins {
		c := cfg
		c.Bins = b
		serial, err := AnalyzeSerial(tr, c)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualReports(t, app.Name, serial, reps[i])
	}
}

func TestScheduleReuse(t *testing.T) {
	app, _ := tracegen.ByName("AMG")
	tr := app.Generate(tracegen.Config{Scale: 10})
	cfg := Config{RecordSeries: true}
	sched := BuildSchedule(tr, cfg)
	if sched.NumShards() != tr.NumRanks() {
		t.Fatalf("shards = %d, ranks = %d", sched.NumShards(), tr.NumRanks())
	}
	if sched.NumSteps() == 0 {
		t.Fatal("empty schedule for a p2p app")
	}
	// One schedule replayed at two bin counts must equal fresh analyses.
	for _, b := range []int{1, 32} {
		c := cfg
		c.Bins = b
		fromSched, err := sched.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := AnalyzeSerial(tr, c)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualReports(t, "reuse", fresh, fromSched)
	}
}

func TestParallelValidationAndErrors(t *testing.T) {
	tr := twoRankTrace([]int32{1})
	if _, err := Analyze(tr, Config{Bins: 0}); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := Sweep(tr, []int{4, 0}, Config{}); err == nil {
		t.Fatal("zero bins accepted in sweep")
	}
	big := make([]int32, 64)
	for i := range big {
		big[i] = int32(i)
	}
	over := twoRankTrace(big)
	_, err := Analyze(over, Config{Bins: 4, MaxReceives: 8, Workers: 4})
	if err == nil {
		t.Fatal("table overflow not reported by parallel path")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("overflow error lost its rank: %v", err)
	}
	if _, err := Sweep(over, []int{4, 8}, Config{MaxReceives: 8, Workers: 4}); err == nil {
		t.Fatal("table overflow not reported by sweep")
	}
}

func TestSweepValidatesUpFront(t *testing.T) {
	app, _ := tracegen.ByName("AMG")
	tr := app.Generate(tracegen.Config{Scale: 5})

	// Non-power-of-two bin counts fail before any shard runs, with one
	// clear error naming the offending count.
	_, err := Sweep(tr, []int{4, 3}, Config{})
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("non-power-of-two sweep: %v", err)
	}
	if _, err := Analyze(tr, Config{Bins: 3}); err == nil {
		t.Fatal("single-report path accepted non-power-of-two bins")
	}
	if _, err := AnalyzeSerial(tr, Config{Bins: 6}); err == nil {
		t.Fatal("serial path accepted non-power-of-two bins")
	}

	// Duplicates dedupe (first occurrence wins) instead of replaying twice.
	reps, err := Sweep(tr, []int{1, 32, 1, 32, 32}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Bins != 1 || reps[1].Bins != 32 {
		t.Fatalf("dedupe failed: %d reports", len(reps))
	}

	if _, err := Sweep(tr, nil, Config{}); err == nil {
		t.Fatal("empty sweep accepted")
	}

	if got, err := NormalizeBins([]int{8, 2, 8, 1}); err != nil || !reflect.DeepEqual(got, []int{8, 2, 1}) {
		t.Fatalf("NormalizeBins = %v, %v", got, err)
	}
}

func TestSweepConfigs(t *testing.T) {
	app, _ := tracegen.ByName("BoxLib CNS")
	tr := app.Generate(tracegen.Config{Scale: 10})
	pool := Config{Workers: 8}
	sched := BuildSchedule(tr, pool)

	// A multi-dimension sweep: engine and bins vary per entry; every report
	// must equal a fresh serial analysis at that entry's configuration.
	cfgs := []Config{
		{Engine: EngineOptimistic, Bins: 1},
		{Engine: EngineOptimistic, Bins: 64, RecordSeries: true},
		{Engine: EngineList, Bins: 1},
		{Engine: EngineBin, Bins: 32},
	}
	reps, err := sched.SweepConfigs(cfgs, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(cfgs) {
		t.Fatalf("got %d reports for %d configs", len(reps), len(cfgs))
	}
	for i, c := range cfgs {
		serial, err := AnalyzeSerial(tr, c)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualReports(t, "sweepconfigs", serial, reps[i])
	}

	// Bad entries fail up front with the entry's index.
	_, err = sched.SweepConfigs([]Config{{Bins: 32}, {Bins: 5}}, pool)
	if err == nil || !strings.Contains(err.Error(), "configs[1]") {
		t.Fatalf("bad bins entry: %v", err)
	}
	_, err = sched.SweepConfigs([]Config{{Engine: "nope", Bins: 4}}, pool)
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("bad engine entry: %v", err)
	}
	if _, err := sched.SweepConfigs(nil, pool); err == nil {
		t.Fatal("empty config sweep accepted")
	}
}

func TestParallelEmptyTrace(t *testing.T) {
	tr := &trace.Trace{App: "empty"}
	rep, err := Analyze(tr, Config{Bins: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := AnalyzeSerial(tr, Config{Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualReports(t, "empty", serial, rep)
}
