package analyzer

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

// twoRankTrace builds a minimal trace: rank 1 posts n receives from rank 0
// with the given tags, then rank 0 sends n messages matching them in order.
func twoRankTrace(tags []int32) *trace.Trace {
	t := &trace.Trace{App: "mini", Ranks: []trace.RankTrace{{Rank: 0}, {Rank: 1}}}
	for i, tag := range tags {
		t.Ranks[1].Events = append(t.Ranks[1].Events, trace.Event{
			Kind: trace.OpRecv, Name: "MPI_Irecv", Peer: 0, Tag: tag,
			Walltime: 0.1 + float64(i)*1e-3,
		})
	}
	for i, tag := range tags {
		t.Ranks[0].Events = append(t.Ranks[0].Events, trace.Event{
			Kind: trace.OpSend, Name: "MPI_Isend", Peer: 1, Tag: tag,
			Walltime: 0.5 + float64(i)*1e-3,
		})
	}
	t.Ranks[1].Events = append(t.Ranks[1].Events, trace.Event{
		Kind: trace.OpProgress, Name: "MPI_Waitall", Walltime: 0.9,
	})
	return t
}

func TestAnalyzeMatchesEverything(t *testing.T) {
	tr := twoRankTrace([]int32{1, 2, 3, 4})
	rep, err := Analyze(tr, Config{Bins: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 4 {
		t.Fatalf("matched = %d, want 4", rep.Matched)
	}
	if rep.Unexpected != 0 {
		t.Fatalf("unexpected = %d, want 0", rep.Unexpected)
	}
	if rep.TagsUsed != 4 || rep.UniqueKeys != 4 {
		t.Fatalf("tags=%d keys=%d", rep.TagsUsed, rep.UniqueKeys)
	}
	if rep.Procs != 2 || rep.Bins != 16 {
		t.Fatalf("report meta: %+v", rep)
	}
}

func TestAnalyzeDepthShrinksWithBins(t *testing.T) {
	// 32 distinct tags posted at once: with one bin arrivals walk a long
	// chain; with many bins the chains collapse — the Figure 7 effect.
	tags := make([]int32, 32)
	for i := range tags {
		tags[i] = int32(i)
	}
	// Reverse send order maximizes the 1-bin walk.
	tr := twoRankTrace(tags)
	sends := tr.Ranks[0].Events
	for i, j := 0, len(sends)-1; i < j; i, j = i+1, j-1 {
		sends[i].Tag, sends[j].Tag = sends[j].Tag, sends[i].Tag
	}

	reps, err := Sweep(tr, []int{1, 32, 128}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d1, d32, d128 := reps[0].AvgDepth(), reps[1].AvgDepth(), reps[2].AvgDepth()
	if d32 >= d1/2 {
		t.Fatalf("32 bins: depth %.2f did not collapse from %.2f", d32, d1)
	}
	if d128 > d32 {
		t.Fatalf("128 bins (%.2f) worse than 32 (%.2f)", d128, d32)
	}
	if reps[0].MaxDepth() < 16 {
		t.Fatalf("1-bin max depth %d unexpectedly small", reps[0].MaxDepth())
	}
}

func TestAnalyzeUnexpectedPath(t *testing.T) {
	// Send before the receive is posted: the message must be counted as
	// unexpected and still match when the receive arrives.
	tr := &trace.Trace{App: "unexp", Ranks: []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.OpSend, Name: "MPI_Isend", Peer: 1, Tag: 5, Walltime: 0.1},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.OpRecv, Name: "MPI_Irecv", Peer: 0, Tag: 5, Walltime: 0.5},
			{Kind: trace.OpProgress, Name: "MPI_Wait", Walltime: 0.9},
		}},
	}}
	rep, err := Analyze(tr, Config{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unexpected != 1 || rep.Matched != 1 {
		t.Fatalf("unexpected=%d matched=%d, want 1/1", rep.Unexpected, rep.Matched)
	}
}

func TestAnalyzeWildcardCounting(t *testing.T) {
	tr := &trace.Trace{App: "wild", Ranks: []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.OpSend, Name: "MPI_Isend", Peer: 1, Tag: 5, Walltime: 0.5},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.OpRecv, Name: "MPI_Irecv", Peer: trace.AnySource, Tag: trace.AnyTag, Walltime: 0.1},
		}},
	}}
	rep, err := Analyze(tr, Config{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WildcardRecvs != 1 {
		t.Fatalf("wildcard receives = %d", rep.WildcardRecvs)
	}
	if rep.Matched != 1 {
		t.Fatalf("matched = %d", rep.Matched)
	}
	if rep.TagsUsed != 0 {
		t.Fatalf("AnyTag counted as a tag: %d", rep.TagsUsed)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	tr := twoRankTrace([]int32{1})
	if _, err := Analyze(tr, Config{Bins: 0}); err == nil {
		t.Fatal("zero bins accepted")
	}
	// Overflowing the descriptor table must error, not panic.
	big := make([]int32, 64)
	for i := range big {
		big[i] = int32(i)
	}
	if _, err := Analyze(twoRankTrace(big), Config{Bins: 4, MaxReceives: 8}); err == nil {
		t.Fatal("table overflow not reported")
	}
}

func TestAnalyzeProgressSampling(t *testing.T) {
	tr := twoRankTrace([]int32{1, 2, 3})
	// Move the progress op before the sends so posted depth is sampled > 0.
	tr.Ranks[1].Events[3].Walltime = 0.3
	rep, err := Analyze(tr, Config{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PostedAvg < 3 || rep.PostedMax < 3 {
		t.Fatalf("posted sampling: avg=%.1f max=%d, want >= 3", rep.PostedAvg, rep.PostedMax)
	}
	if rep.EmptyBinPct <= 0 || rep.EmptyBinPct >= 100 {
		t.Fatalf("empty bin pct = %.1f", rep.EmptyBinPct)
	}
}

func TestAnalyzeRealGenerators(t *testing.T) {
	// End-to-end over a few representative generated applications.
	for _, name := range []string{"AMG", "BoxLib CNS", "CrystalRouter", "PARTISN", "HILO"} {
		app, ok := tracegen.ByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		tr := app.Generate(tracegen.Config{Scale: 10})
		rep, err := Analyze(tr, Config{Bins: 32})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mix := tr.Mix()
		if mix.P2P > 0 {
			if rep.Matched == 0 {
				t.Errorf("%s: no matches despite p2p traffic", name)
			}
			// Every send must eventually pair with a receive: the generators
			// emit balanced traffic.
			if rep.Matched*2 != uint64(mix.P2P) {
				t.Errorf("%s: matched %d of %d p2p ops", name, rep.Matched*2, mix.P2P)
			}
		} else if rep.Matched != 0 {
			t.Errorf("%s: collectives-only app produced matches", name)
		}
	}
}

func TestFigure7ShapeOnCNS(t *testing.T) {
	// The headline Figure 7 claim in miniature: BoxLib CNS queue depth
	// collapses by roughly 90% from 1 bin to 32 bins.
	app, _ := tracegen.ByName("BoxLib CNS")
	tr := app.Generate(tracegen.Config{Scale: 25})
	reps, err := Sweep(tr, []int{1, 32, 128}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d1, d32, d128 := reps[0].AvgDepth(), reps[1].AvgDepth(), reps[2].AvgDepth()
	if d1 < 5 {
		t.Fatalf("1-bin depth %.2f too shallow for CNS", d1)
	}
	if d32 > d1*0.25 {
		t.Errorf("32 bins: depth %.2f vs %.2f — expected a collapse", d32, d1)
	}
	if d128 > d32 {
		t.Errorf("128 bins (%.3f) worse than 32 (%.3f)", d128, d32)
	}
	if reps[0].MaxDepth() < 20 {
		t.Errorf("CNS 1-bin max depth %d, paper reports ~25", reps[0].MaxDepth())
	}
	if reps[2].MaxDepth() > 6 {
		t.Errorf("CNS 128-bin max depth %d, paper reports ~1", reps[2].MaxDepth())
	}
}

func TestFormatting(t *testing.T) {
	tr := twoRankTrace([]int32{1, 2})
	reps, err := Sweep(tr, []int{1, 32}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mix := FormatCallMix(reps[:1])
	if !strings.Contains(mix, "mini") || !strings.Contains(mix, "p2p%") {
		t.Fatalf("call mix table:\n%s", mix)
	}
	qd := FormatQueueDepth("mini", reps)
	if !strings.Contains(qd, "avg depth") || !strings.Contains(qd, "32") {
		t.Fatalf("queue depth table:\n%s", qd)
	}
	sum := FormatFigure7Summary(map[string][]*Report{"mini": reps}, []int{1, 32})
	if !strings.Contains(sum, "AVERAGE") {
		t.Fatalf("summary:\n%s", sum)
	}
	tags := FormatTagUsage(reps[:1])
	if !strings.Contains(tags, "unique keys") || !strings.Contains(tags, "mini") {
		t.Fatalf("tag usage:\n%s", tags)
	}
}
