package analyzer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/match"
)

// instance is one rank's matching-engine state during a replay, abstracting
// over the optimistic engine and the Table I baselines.
type instance interface {
	// post presents a receive (may complete against the unexpected store).
	post(r *match.Recv) error
	// arrive presents an incoming message.
	arrive(e *match.Envelope)
	// posted returns the live posted-receive count.
	posted() int
	// occupancy samples empty/total bins; ok is false when the engine has
	// no bin structure to sample.
	occupancy() (empty, total int, ok bool)
	// depth returns cumulative search statistics.
	depth() match.Stats
	// unexpectedTotal returns the cumulative unexpected-message count.
	unexpectedTotal() uint64
	// unexpectedNow returns the live unexpected-store depth.
	unexpectedNow() int
}

// validEngine reports whether e names a known matching strategy, so sweep
// paths can reject a bad selection up front instead of failing once per
// shard mid-replay.
func validEngine(e Engine) error {
	switch e {
	case "", EngineOptimistic, EngineList, EngineBin, EngineRank, EngineAdaptive:
		return nil
	}
	return fmt.Errorf("analyzer: unknown engine %q", e)
}

// newInstance builds the engine selected by cfg.
func newInstance(cfg Config) (instance, error) {
	switch cfg.Engine {
	case "", EngineOptimistic:
		m, err := core.New(core.Config{
			Bins:              cfg.Bins,
			MaxReceives:       cfg.MaxReceives,
			BlockSize:         1,
			EarlyBookingCheck: true,
			LazyRemoval:       true,
			UseInlineHashes:   true,
		})
		if err != nil {
			return nil, err
		}
		return &optimisticInstance{m: m}, nil
	case EngineList:
		return &genericInstance{m: match.NewListMatcher()}, nil
	case EngineBin:
		return &genericInstance{m: match.NewBinMatcher(cfg.Bins)}, nil
	case EngineRank:
		return &genericInstance{m: match.NewRankMatcher()}, nil
	case EngineAdaptive:
		// A short policy window so migration can trigger within one rank's
		// share of a trace.
		return &genericInstance{m: match.NewAdaptiveMatcher(match.AdaptiveConfig{Bins: cfg.Bins, Window: 16})}, nil
	default:
		return nil, fmt.Errorf("analyzer: unknown engine %q", cfg.Engine)
	}
}

// optimisticInstance wraps the paper's engine.
type optimisticInstance struct {
	m *core.OptimisticMatcher
}

func (o *optimisticInstance) post(r *match.Recv) error {
	_, _, err := o.m.PostRecv(r)
	return err
}

func (o *optimisticInstance) arrive(e *match.Envelope) { o.m.Arrive(e) }

func (o *optimisticInstance) posted() int { return o.m.PostedDepth() }

func (o *optimisticInstance) occupancy() (int, int, bool) {
	empty, total, _ := o.m.Occupancy()
	return empty, total, true
}

func (o *optimisticInstance) depth() match.Stats { return o.m.DepthStats() }

func (o *optimisticInstance) unexpectedTotal() uint64 { return o.m.Stats().Unexpected }

func (o *optimisticInstance) unexpectedNow() int { return o.m.UnexpectedDepth() }

// genericInstance wraps any match.Matcher baseline.
type genericInstance struct {
	m match.Matcher
}

func (g *genericInstance) post(r *match.Recv) error {
	g.m.PostRecv(r)
	return nil
}

func (g *genericInstance) arrive(e *match.Envelope) { g.m.Arrive(e) }

func (g *genericInstance) posted() int { return g.m.PostedDepth() }

func (g *genericInstance) occupancy() (int, int, bool) {
	if bm, ok := g.m.(*match.BinMatcher); ok {
		empty, _ := bm.BinOccupancy()
		return empty, bm.Bins(), true
	}
	return 0, 0, false
}

func (g *genericInstance) depth() match.Stats { return g.m.Stats() }

func (g *genericInstance) unexpectedTotal() uint64 { return g.m.Stats().Unexpected }

func (g *genericInstance) unexpectedNow() int { return g.m.UnexpectedDepth() }
