package analyzer

import (
	"testing"

	"repro/internal/tracegen"
)

// TestEnginesAgreeOnOutcomes: every analyzer engine emulates the same MPI
// semantics, so matched/unexpected totals must be identical on one trace —
// only the search costs differ.
func TestEnginesAgreeOnOutcomes(t *testing.T) {
	app, _ := tracegen.ByName("BoxLib CNS")
	tr := app.Generate(tracegen.Config{Scale: 10})

	engines := []Engine{EngineOptimistic, EngineList, EngineBin, EngineRank, EngineAdaptive}
	var matched, unexpected uint64
	for i, eng := range engines {
		rep, err := Analyze(tr, Config{Engine: eng, Bins: 32})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if i == 0 {
			matched, unexpected = rep.Matched, rep.Unexpected
			continue
		}
		if rep.Matched != matched || rep.Unexpected != unexpected {
			t.Errorf("%s: matched/unexpected %d/%d, want %d/%d",
				eng, rep.Matched, rep.Unexpected, matched, unexpected)
		}
	}
}

// TestEngineCostOrdering: on a direction-tagged stencil the binned engines
// must search far less than the list, and the per-rank partitions land in
// between (many senders share tags, but each partition is shallow).
func TestEngineCostOrdering(t *testing.T) {
	app, _ := tracegen.ByName("BoxLib CNS")
	tr := app.Generate(tracegen.Config{Scale: 10})

	depth := func(eng Engine) float64 {
		rep, err := Analyze(tr, Config{Engine: eng, Bins: 64})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		return rep.AvgDepth()
	}
	list := depth(EngineList)
	bin := depth(EngineBin)
	opt := depth(EngineOptimistic)
	rank := depth(EngineRank)

	if bin >= list/2 {
		t.Errorf("bin depth %.3f did not improve on list %.3f", bin, list)
	}
	if opt >= list/2 {
		t.Errorf("optimistic depth %.3f did not improve on list %.3f", opt, list)
	}
	if rank >= list {
		t.Errorf("rank depth %.3f worse than list %.3f", rank, list)
	}
}

// TestEngineAdaptiveMigratesOnDeepTrace: the dynamic baseline must end up
// on the binned structure for a queue-heavy application.
func TestEngineAdaptiveMigratesOnDeepTrace(t *testing.T) {
	app, _ := tracegen.ByName("BoxLib CNS")
	tr := app.Generate(tracegen.Config{Scale: 10})
	listRep, err := Analyze(tr, Config{Engine: EngineList, Bins: 1})
	if err != nil {
		t.Fatal(err)
	}
	adaptRep, err := Analyze(tr, Config{Engine: EngineAdaptive, Bins: 64})
	if err != nil {
		t.Fatal(err)
	}
	if adaptRep.AvgDepth() >= listRep.AvgDepth() {
		t.Errorf("adaptive depth %.3f did not improve on list %.3f",
			adaptRep.AvgDepth(), listRep.AvgDepth())
	}
}

func TestEngineUnknown(t *testing.T) {
	tr := twoRankTrace([]int32{1})
	if _, err := Analyze(tr, Config{Engine: "nope", Bins: 4}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
