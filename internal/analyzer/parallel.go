package analyzer

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/trace"
)

// progressSample is one shard-local OpProgress observation. Samples are
// kept raw (integers plus the step's time/seq identity) so the merge step
// can fold them into the Report's floating-point aggregates in exactly the
// global (time, seq) order the serial path uses — float addition is not
// associative, and byte-identical reports require an identical reduction
// order, not just an equivalent one.
type progressSample struct {
	time       float64
	seq        int
	rank       int32
	posted     int
	unexpected int
	empty      int
	total      int
	occOK      bool
}

// shardResult is everything one rank's replay contributes to a Report.
type shardResult struct {
	tags          map[int32]struct{}
	keys          map[[3]int32]struct{}
	wildcardRecvs int
	samples       []progressSample
	depth         match.Stats
	unexpected    uint64
	err           error
}

// runShard replays one rank's step stream through a fresh engine instance.
// It is the per-rank slice of the serial loop in AnalyzeSerial; the two
// must stay in lockstep.
func runShard(sh *shard, cfg Config) shardResult {
	res := shardResult{
		tags: make(map[int32]struct{}),
		keys: make(map[[3]int32]struct{}),
	}
	start := cfg.Obs.Now()
	m, err := newInstance(cfg)
	if err != nil {
		res.err = err
		return res
	}
	for _, s := range sh.steps {
		switch s.kind {
		case trace.OpRecv:
			r := &match.Recv{Source: match.Rank(s.peer), Tag: match.Tag(s.tag), Comm: match.CommID(s.comm)}
			if r.Class() != match.ClassNone {
				res.wildcardRecvs++
			}
			if s.tag != trace.AnyTag {
				res.tags[s.tag] = struct{}{}
			}
			res.keys[[3]int32{s.peer, s.tag, s.comm}] = struct{}{}
			if err := m.post(r); err != nil {
				res.err = fmt.Errorf("analyzer: rank %d: %w (raise MaxReceives)", s.rank, err)
				return res
			}
		case trace.OpSend:
			env := &match.Envelope{Source: match.Rank(s.peer), Tag: match.Tag(s.tag), Comm: match.CommID(s.comm)}
			m.arrive(env)
		case trace.OpProgress:
			empty, total, ok := m.occupancy()
			res.samples = append(res.samples, progressSample{
				time:       s.time,
				seq:        s.seq,
				rank:       s.rank,
				posted:     m.posted(),
				unexpected: m.unexpectedNow(),
				empty:      empty,
				total:      total,
				occOK:      ok,
			})
		}
	}
	res.depth = m.depth()
	res.unexpected = m.unexpectedTotal()
	cfg.Obs.CounterInc(obs.CtrAnalyzerShards)
	cfg.Obs.CounterAdd(obs.CtrAnalyzerEvents, uint64(len(sh.steps)))
	if cfg.Obs.Enabled() {
		cfg.Obs.Event(obs.EvAnalyzerShard, int(sh.rank),
			uint64(sh.rank), uint64(len(sh.steps)), uint64(cfg.Obs.Now()-start))
	}
	return res
}

// workerCount resolves the pool width: Config.Workers, defaulting to
// GOMAXPROCS, clamped to the task count.
func (c Config) workerCount(tasks int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runPool executes n tasks on a bounded worker pool.
func runPool(n, workers int, task func(i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				task(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// merge folds per-shard results into one Report. Progress samples from all
// shards are re-ordered by (time, seq) — the global replay order — and the
// floating-point aggregates (PostedAvg, EmptyBinPct) are accumulated in
// that order, so the merged Report is byte-identical to AnalyzeSerial's.
// Counter merges (depth stats, unexpected totals, tag/key unions) are
// order-independent.
func (sc *Schedule) merge(results []shardResult, cfg Config) (*Report, error) {
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
	}

	rep := &Report{App: sc.app, Procs: sc.procs, Bins: cfg.Bins, Mix: sc.mix}

	tags := make(map[int32]struct{})
	keys := make(map[[3]int32]struct{})
	nSamples := 0
	for i := range results {
		r := &results[i]
		rep.WildcardRecvs += r.wildcardRecvs
		rep.Depth = rep.Depth.Add(r.depth)
		rep.Unexpected += r.unexpected
		for t := range r.tags {
			tags[t] = struct{}{}
		}
		for k := range r.keys {
			keys[k] = struct{}{}
		}
		nSamples += len(r.samples)
	}
	rep.Matched = rep.Depth.Matched
	rep.TagsUsed = len(tags)
	rep.UniqueKeys = len(keys)

	samples := make([]progressSample, 0, nSamples)
	for i := range results {
		samples = append(samples, results[i].samples...)
	}
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].time != samples[j].time {
			return samples[i].time < samples[j].time
		}
		return samples[i].seq < samples[j].seq
	})

	var postedSamples, emptySamples int
	var postedSum, emptySum float64
	for _, s := range samples {
		postedSum += float64(s.posted)
		if s.posted > rep.PostedMax {
			rep.PostedMax = s.posted
		}
		postedSamples++
		if s.occOK && s.total > 0 {
			emptySum += 100 * float64(s.empty) / float64(s.total)
			emptySamples++
		}
		if cfg.RecordSeries {
			rep.Series = append(rep.Series, DataPoint{
				Time:       s.time,
				Rank:       s.rank,
				Posted:     s.posted,
				Unexpected: s.unexpected,
				EmptyBins:  s.empty,
				TotalBins:  s.total,
			})
		}
	}
	if postedSamples > 0 {
		rep.PostedAvg = postedSum / float64(postedSamples)
	}
	if emptySamples > 0 {
		rep.EmptyBinPct = emptySum / float64(emptySamples)
	}
	return rep, nil
}

// Analyze replays the schedule at one configuration, running shards on a
// bounded worker pool (Config.Workers wide, default GOMAXPROCS).
func (sc *Schedule) Analyze(cfg Config) (*Report, error) {
	cfg.fill()
	if err := validateBins(cfg.Bins); err != nil {
		return nil, err
	}
	results := make([]shardResult, len(sc.shards))
	replayStart := cfg.Obs.Now()
	runPool(len(sc.shards), cfg.workerCount(len(sc.shards)), func(i int) {
		results[i] = runShard(&sc.shards[i], cfg)
	})
	if cfg.Obs.Enabled() {
		cfg.Obs.Event(obs.EvAnalyzerPhase, 0, phaseReplay, uint64(cfg.Obs.Now()-replayStart), 0)
	}
	mergeStart := cfg.Obs.Now()
	rep, err := sc.merge(results, cfg)
	if cfg.Obs.Enabled() {
		cfg.Obs.Event(obs.EvAnalyzerPhase, 0, phaseMerge, uint64(cfg.Obs.Now()-mergeStart), 0)
	}
	return rep, err
}

// Phase codes carried by EvAnalyzerPhase events (A payload word).
const (
	phaseSchedule uint64 = iota
	phaseReplay
	phaseMerge
)

// validateBins rejects the bin counts every replay path refuses: zero or
// negative counts, and counts that are not powers of two (the paper sweeps
// 1…256 in powers of two and the msgrate CLI enforces the same contract).
// Validating up front turns what used to be divergent per-bin failures
// mid-sweep into one clear error before any shard runs.
func validateBins(b int) error {
	if b < 1 {
		return fmt.Errorf("analyzer: Bins must be >= 1, got %d", b)
	}
	if b&(b-1) != 0 {
		return fmt.Errorf("analyzer: Bins must be a power of two, got %d", b)
	}
	return nil
}

// NormalizeBins validates a sweep's bin counts once up front and dedupes
// repeats (first occurrence wins, order preserved). An empty sweep is an
// error.
func NormalizeBins(bins []int) ([]int, error) {
	if len(bins) == 0 {
		return nil, fmt.Errorf("analyzer: empty bin sweep")
	}
	seen := make(map[int]bool, len(bins))
	out := make([]int, 0, len(bins))
	for _, b := range bins {
		if err := validateBins(b); err != nil {
			return nil, err
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	return out, nil
}

// Sweep replays the schedule once per bin count, fanning every
// (bin count × shard) replay out over one shared worker pool. The step
// streams are built and sorted exactly once for the whole sweep. Bin
// counts are validated and deduplicated up front (NormalizeBins): the
// returned reports align with the deduplicated list.
func (sc *Schedule) Sweep(bins []int, cfg Config) ([]*Report, error) {
	bins, err := NormalizeBins(bins)
	if err != nil {
		return nil, err
	}
	cfgs := make([]Config, len(bins))
	for i, b := range bins {
		cfgs[i] = cfg
		cfgs[i].Bins = b
	}
	return sc.SweepConfigs(cfgs, cfg)
}

// SweepConfigs generalizes Sweep to arbitrary per-replay configurations:
// the schedule is replayed once per entry of cfgs, and every
// (config × shard) replay fans out over the one worker pool sized by
// pool.Workers. Any replay-free field may vary between entries (Bins,
// Engine, MaxReceives, RecordSeries); the schedule-frozen fields (Latency,
// LatencySpread) were fixed at BuildSchedule time and entries' values are
// ignored. Reports align with cfgs. Every configuration is validated up
// front so a bad entry fails before any shard runs.
func (sc *Schedule) SweepConfigs(cfgs []Config, pool Config) ([]*Report, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("analyzer: empty configuration sweep")
	}
	pool.fill()
	for i := range cfgs {
		cfgs[i].fill()
		cfgs[i].Workers = pool.Workers
		cfgs[i].Obs = pool.Obs
		if err := validateBins(cfgs[i].Bins); err != nil {
			return nil, fmt.Errorf("configs[%d]: %w", i, err)
		}
		if err := validEngine(cfgs[i].Engine); err != nil {
			return nil, fmt.Errorf("configs[%d]: %w", i, err)
		}
	}
	nc, ns := len(cfgs), len(sc.shards)
	results := make([][]shardResult, nc)
	for ci := range results {
		results[ci] = make([]shardResult, ns)
	}
	runPool(nc*ns, pool.workerCount(nc*ns), func(i int) {
		ci, si := i/max(ns, 1), i%max(ns, 1)
		results[ci][si] = runShard(&sc.shards[si], cfgs[ci])
	})
	out := make([]*Report, 0, nc)
	for ci := range results {
		rep, err := sc.merge(results[ci], cfgs[ci])
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
