package analyzer

import (
	"fmt"
	"strings"
)

// FormatCallMix renders the Figure 6 table: per-application shares of
// point-to-point, collective, and one-sided communication calls.
func FormatCallMix(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %10s\n", "Application", "p2p%", "coll%", "1sided%", "comm calls")
	for _, r := range reports {
		total := r.Mix.CommTotal()
		pct := func(n int) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(n) / float64(total)
		}
		fmt.Fprintf(&b, "%-18s %8.1f %8.1f %8.1f %10d\n",
			r.App, pct(r.Mix.P2P), pct(r.Mix.Collective), pct(r.Mix.OneSided), total)
	}
	return b.String()
}

// FormatQueueDepth renders the Figure 7 table for one application: average
// and maximum queue depth at each analyzed bin count.
func FormatQueueDepth(app string, reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", app)
	fmt.Fprintf(&b, "  %6s %10s %10s %12s %10s\n", "bins", "avg depth", "max depth", "unexpected", "empty bin%")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %6d %10.3f %10d %12d %10.1f\n",
			r.Bins, r.AvgDepth(), r.MaxDepth(), r.Unexpected, r.EmptyBinPct)
	}
	return b.String()
}

// FormatTagUsage renders the §V tag-usage statistics: distinct tags and
// (source, tag) keys per application, plus wildcard share — the evidence
// behind the paper's conclusion that "the number of unique source/tag
// posted receives is low, indicating that the receives are well spread in
// the hash tables".
func FormatTagUsage(reports []*Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %12s %10s %14s\n",
		"Application", "tags", "unique keys", "wildcards", "keys/process")
	for _, r := range reports {
		perProc := 0.0
		if r.Procs > 0 {
			perProc = float64(r.UniqueKeys) / float64(r.Procs)
		}
		fmt.Fprintf(&b, "%-18s %8d %12d %10d %14.2f\n",
			r.App, r.TagsUsed, r.UniqueKeys, r.WildcardRecvs, perProc)
	}
	return b.String()
}

// FormatFigure7Summary renders the cross-application view of Figure 7: for
// each bin count, the average of per-application average depths (the red
// line in the paper's plots) plus each app's avg/max.
func FormatFigure7Summary(byApp map[string][]*Report, bins []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "Application")
	for _, bin := range bins {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("avg@%d", bin))
	}
	for _, bin := range bins {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("max@%d", bin))
	}
	fmt.Fprintln(&b)

	sums := make([]float64, len(bins))
	apps := 0
	for app, reps := range byApp {
		fmt.Fprintf(&b, "%-18s", app)
		for i := range bins {
			fmt.Fprintf(&b, " %8.3f", reps[i].AvgDepth())
		}
		for i := range bins {
			fmt.Fprintf(&b, " %8d", reps[i].MaxDepth())
		}
		fmt.Fprintln(&b)
		for i := range bins {
			sums[i] += reps[i].AvgDepth()
		}
		apps++
	}
	if apps > 0 {
		fmt.Fprintf(&b, "%-18s", "AVERAGE")
		for i := range bins {
			fmt.Fprintf(&b, " %8.3f", sums[i]/float64(apps))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
