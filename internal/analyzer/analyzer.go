// Package analyzer is the paper's contribution C2: the trace processing
// stage that replays an MPI application trace through the optimistic
// matching data structures and gathers matching-behaviour statistics
// (§V-A). Each rank owns one set of matching structures; sends become
// arrivals at their destination rank after a small latency; receives are
// posted against the unexpected store first, exactly as the engine does;
// progress operations sample structure state. Collective and one-sided
// operations only contribute to the call-mix statistics (Figure 6).
package analyzer

import (
	"fmt"
	"sort"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Engine selects which matching strategy the analyzer emulates — the
// optimistic engine by default, or one of the Table I baselines for
// cross-strategy comparison on identical traces.
type Engine string

// Analyzer engines.
const (
	// EngineOptimistic replays through the paper's optimistic structures
	// (the default; bin count from Config.Bins).
	EngineOptimistic Engine = "optimistic"
	// EngineList is the traditional two-queue linked-list algorithm.
	EngineList Engine = "list"
	// EngineBin is the Flajslik-style binned baseline.
	EngineBin Engine = "bin"
	// EngineRank is the Dózsa-style per-source-rank baseline.
	EngineRank Engine = "rank"
	// EngineAdaptive is the Bayatpour-style dynamic baseline.
	EngineAdaptive Engine = "adaptive"
)

// Config parameterizes one analysis pass.
type Config struct {
	// Engine selects the matching strategy (default EngineOptimistic).
	Engine Engine
	// Bins per hash table; 1 emulates traditional list matching (the
	// Figure 7 baseline), the paper sweeps 1…256 in powers of two.
	Bins int
	// MaxReceives bounds outstanding posted receives per rank
	// (default 4096). Exceeding it aborts the analysis with an error, the
	// software-fallback condition of §III-B.
	MaxReceives int
	// Latency is the base send→arrival delay in trace-time seconds
	// (default 1e-4): long enough that a pre-posted receive beats the
	// matching send, short enough to stay within the iteration's window.
	Latency float64
	// RecordSeries captures a data-point entry at every progress operation
	// (§V-A: "this compilation of information forms a data-point entry,
	// encapsulating all progress achieved since the last recorded entry"),
	// exposed as Report.Series.
	RecordSeries bool
	// LatencySpread is the amplitude of the per-(sender, receiver) latency
	// variation (default 0.02 trace seconds). Real fabrics deliver
	// concurrent messages from different senders in effectively arbitrary
	// order; the spread is a pure function of the pair, so messages between
	// one pair keep their send order (per-QP FIFO, constraint C2). Set it
	// negative to disable.
	LatencySpread float64
	// Workers bounds the replay worker pool (default GOMAXPROCS). Every
	// width produces byte-identical reports; 1 still uses the sharded path
	// on a single goroutine — AnalyzeSerial is the unsharded reference.
	Workers int
	// Obs, when non-nil, receives the analyzer's counters (shards run,
	// events replayed) and — when the sink is tracing — per-shard and
	// per-phase events for Chrome trace export. A nil sink costs nothing.
	Obs *obs.Sink
}

func (c *Config) fill() {
	if c.MaxReceives == 0 {
		c.MaxReceives = 4096
	}
	if c.Latency == 0 {
		c.Latency = 1e-4
	}
	if c.LatencySpread == 0 {
		c.LatencySpread = 0.02
	}
	if c.LatencySpread < 0 {
		c.LatencySpread = 0
	}
}

// pairSpread returns a deterministic value in [0, 1) for a sender/receiver
// pair.
func pairSpread(sender, receiver int32) float64 {
	h := uint32(sender)*2654435761 ^ uint32(receiver)*40503
	h ^= h >> 13
	h *= 0x9e3779b1
	h ^= h >> 16
	return float64(h%4096) / 4096
}

// Report is the outcome of analyzing one application at one bin count.
type Report struct {
	App   string
	Procs int
	Bins  int

	// Mix is the Figure 6 call distribution.
	Mix trace.CallMix

	// Depth aggregates search-depth statistics over every rank — the
	// Figure 7 "queue depth": the number of queue elements examined per
	// matching attempt.
	Depth match.Stats

	// PostedAvg and PostedMax describe the live posted-receive queue
	// length sampled at progress operations.
	PostedAvg float64
	PostedMax int

	// EmptyBinPct is the mean percentage of empty bins sampled at progress
	// operations (§V-A).
	EmptyBinPct float64

	// TagsUsed is the number of distinct tags posted; UniqueKeys the
	// number of distinct (source, tag, comm) receive keys; WildcardRecvs
	// the number of receives using any wildcard.
	TagsUsed      int
	UniqueKeys    int
	WildcardRecvs int

	// Matched / Unexpected are totals across ranks.
	Matched    uint64
	Unexpected uint64

	// Series holds per-progress data points when Config.RecordSeries is
	// set, in trace-time order.
	Series []DataPoint
}

// DataPoint is one §V-A progress-time sample.
type DataPoint struct {
	Time       float64 // trace walltime of the progress call
	Rank       int32   // sampling rank
	Posted     int     // live posted receives at that rank
	Unexpected int     // stored unexpected messages at that rank
	EmptyBins  int     // empty bins across the rank's tables (optimistic/bin)
	TotalBins  int
}

// AvgDepth returns the Figure 7 scalar: the mean number of posted-receive
// entries examined per arriving message. Post-side (unexpected store)
// searches are reported separately in Depth — in pre-posting applications
// they are near zero and would only dilute the queue-depth signal.
func (r *Report) AvgDepth() float64 { return r.Depth.AvgArriveDepth() }

// MaxDepth returns the deepest single posted-receive search.
func (r *Report) MaxDepth() uint64 { return r.Depth.ArriveMaxDepth }

// step is one schedulable action derived from a trace event.
type step struct {
	time float64
	seq  int // stable tie-break: global emission order
	rank int32
	kind trace.OpKind
	peer int32
	tag  int32
	comm int32
}

// Analyze replays t through per-rank matching structures, sharded by
// destination rank over a bounded worker pool (see Schedule). The report
// is byte-identical to AnalyzeSerial's.
func Analyze(t *trace.Trace, cfg Config) (*Report, error) {
	return BuildSchedule(t, cfg).Analyze(cfg)
}

// AnalyzeSerial is the unsharded reference implementation: one global
// (time, seq)-sorted step list replayed on the calling goroutine. It
// defines the semantics the sharded path must reproduce exactly and backs
// the equivalence tests; production callers want Analyze.
func AnalyzeSerial(t *trace.Trace, cfg Config) (*Report, error) {
	cfg.fill()
	if err := validateBins(cfg.Bins); err != nil {
		return nil, err
	}

	rep := &Report{App: t.App, Procs: t.NumRanks(), Bins: cfg.Bins, Mix: t.Mix()}

	// Build the global schedule.
	steps := make([]step, 0, t.NumEvents())
	seq := 0
	for ri := range t.Ranks {
		rank := t.Ranks[ri].Rank
		for _, e := range t.Ranks[ri].Events {
			switch e.Kind {
			case trace.OpRecv:
				steps = append(steps, step{time: e.Walltime, seq: seq, rank: rank,
					kind: trace.OpRecv, peer: e.Peer, tag: e.Tag, comm: e.Comm})
			case trace.OpSend:
				// The send becomes an arrival at the destination after the
				// pair's delivery latency.
				delay := cfg.Latency + cfg.LatencySpread*pairSpread(rank, e.Peer)
				steps = append(steps, step{time: e.Walltime + delay, seq: seq,
					rank: e.Peer, kind: trace.OpSend, peer: rank, tag: e.Tag, comm: e.Comm})
			case trace.OpProgress:
				steps = append(steps, step{time: e.Walltime, seq: seq, rank: rank,
					kind: trace.OpProgress})
			}
			seq++
		}
	}
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].time != steps[j].time {
			return steps[i].time < steps[j].time
		}
		return steps[i].seq < steps[j].seq
	})

	// One matching-engine instance per rank, indexed by rank id.
	matchers := make(map[int32]instance, t.NumRanks())
	for ri := range t.Ranks {
		m, err := newInstance(cfg)
		if err != nil {
			return nil, err
		}
		matchers[t.Ranks[ri].Rank] = m
	}

	tags := make(map[int32]struct{})
	keys := make(map[[3]int32]struct{})
	var postedSamples, emptySamples int
	var postedSum float64
	var emptySum float64

	for _, s := range steps {
		m := matchers[s.rank]
		if m == nil {
			continue // send to a rank outside the trace
		}
		switch s.kind {
		case trace.OpRecv:
			r := &match.Recv{Source: match.Rank(s.peer), Tag: match.Tag(s.tag), Comm: match.CommID(s.comm)}
			if r.Class() != match.ClassNone {
				rep.WildcardRecvs++
			}
			if s.tag != trace.AnyTag {
				tags[s.tag] = struct{}{}
			}
			keys[[3]int32{s.peer, s.tag, s.comm}] = struct{}{}
			if err := m.post(r); err != nil {
				return nil, fmt.Errorf("analyzer: rank %d: %w (raise MaxReceives)", s.rank, err)
			}
		case trace.OpSend:
			env := &match.Envelope{Source: match.Rank(s.peer), Tag: match.Tag(s.tag), Comm: match.CommID(s.comm)}
			m.arrive(env)
		case trace.OpProgress:
			d := m.posted()
			postedSum += float64(d)
			if d > rep.PostedMax {
				rep.PostedMax = d
			}
			postedSamples++
			empty, total, ok := m.occupancy()
			if ok && total > 0 {
				emptySum += 100 * float64(empty) / float64(total)
				emptySamples++
			}
			if cfg.RecordSeries {
				rep.Series = append(rep.Series, DataPoint{
					Time:       s.time,
					Rank:       s.rank,
					Posted:     d,
					Unexpected: m.unexpectedNow(),
					EmptyBins:  empty,
					TotalBins:  total,
				})
			}
		}
	}

	for _, m := range matchers {
		rep.Depth = rep.Depth.Add(m.depth())
		rep.Unexpected += m.unexpectedTotal()
	}
	rep.Matched = rep.Depth.Matched
	if postedSamples > 0 {
		rep.PostedAvg = postedSum / float64(postedSamples)
	}
	if emptySamples > 0 {
		rep.EmptyBinPct = emptySum / float64(emptySamples)
	}
	rep.TagsUsed = len(tags)
	rep.UniqueKeys = len(keys)
	return rep, nil
}

// Sweep analyzes t at each bin count and returns reports in order. The
// replay schedule is built once and every (bin count × shard) replay fans
// out over one shared worker pool; re-analyzing per bin count from scratch
// re-derives and re-sorts the identical step list.
func Sweep(t *trace.Trace, bins []int, cfg Config) ([]*Report, error) {
	return BuildSchedule(t, cfg).Sweep(bins, cfg)
}
