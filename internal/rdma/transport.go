package rdma

import "repro/internal/obs"

// This file extracts the fabric's service contract into interfaces so a
// rank can run over something other than the in-process channel fabric —
// concretely, the real-socket transports of internal/rdma/netfabric. The
// split follows what the MPI layer actually consumes:
//
//   - Endpoint: the per-peer send side (QP.Send / QP.SendControl).
//   - Transport: the per-rank view of the whole fabric — endpoint lookup,
//     inbound delivery into a RecvQueue/CQ pair, and the one-sided memory
//     operations the rendezvous protocol needs (register, deregister, read).
//
// *QP satisfies Endpoint as-is, so the in-process fabric keeps its exact
// wire and completion behaviour; mpi.NewWorld still connects QPs directly
// and stays bit-identical. mpi.NewNetWorld accepts any Transport instead.

// Endpoint is the send side of one connected peer link. It mirrors the
// QP's contract exactly:
//
//   - Send carries data-plane traffic. It may block on backpressure on a
//     reliable link; on a lossy or faulty one it must not block and instead
//     surfaces ErrNoReceive for the reliability sublayer to retry through.
//   - SendControl carries control-plane traffic (reliability sacks). It
//     never blocks: when the link is saturated the message is dropped and
//     ErrNoReceive returned — control traffic must be idempotent.
//   - Close releases the endpoint; subsequent sends fail with ErrClosed.
type Endpoint interface {
	Send(data []byte, imm uint32, wrID uint64) error
	SendControl(data []byte, imm uint32, wrID uint64) error
	Close()
}

// QP implements Endpoint.
var _ Endpoint = (*QP)(nil)

// Transport is one rank's connection to a message fabric: the factory for
// per-peer endpoints plus the receive datapath and the registered-memory
// operations of the rendezvous protocol. A Transport delivers inbound
// messages exactly like a QP's delivery engine does — each message consumes
// a posted buffer from the RecvQueue and produces an OpRecv Completion on
// the CQ (oversized messages produce an error completion carrying
// ErrBufferSize with the unfilled buffer attached).
type Transport interface {
	// Rank and Size identify this endpoint within the job.
	Rank() int
	Size() int

	// Start attaches the receive datapath: every inbound message takes a
	// buffer from rq and completes on cq. Peer links are established here
	// (the address book is exchanged at construction time), so Start only
	// returns once traffic can flow in both directions.
	Start(rq *RecvQueue, cq *CQ) error

	// Endpoint returns the send side toward peer (self included: transports
	// must loop self-sends back locally).
	Endpoint(peer int) Endpoint

	// Reliable reports whether the transport guarantees in-order,
	// exactly-once delivery. When false the MPI layer arms its reliability
	// sublayer (sequencing, dedup, retransmit) as the delivery filter.
	Reliable() bool

	// RegisterMemory exposes buf for remote Read under the returned region's
	// RKey; Deregister revokes it. Keys are scoped to this transport.
	RegisterMemory(buf []byte) *MemoryRegion
	Deregister(mr *MemoryRegion)

	// Read copies length bytes from the region (rkey, offset) registered by
	// rank owner into dst — the one-sided RDMA READ of the rendezvous
	// protocol. Unlike the in-process fabric, a networked transport needs
	// the owner rank to route the request.
	Read(owner int, dst []byte, rkey uint64, offset, length int) error

	// Obs returns the transport's observability sink (the "fabric" domain
	// of the world's export: obs.CtrNet* counters, fault tallies).
	Obs() *obs.Sink

	// Close tears down every link. Outstanding traffic must already have
	// quiesced (the MPI layer closes only after a final barrier).
	Close() error
}

// Take removes one posted receive buffer, blocking until a buffer is
// posted or cancel closes. It is the consuming counterpart of Post for
// external delivery engines (netfabric transports); the in-process QP
// delivery engine reads the queue directly.
func (rq *RecvQueue) Take(cancel <-chan struct{}) (buf []byte, wrID uint64, ok bool) {
	select {
	case wr := <-rq.ch:
		return wr.buf, wr.wrID, true
	case <-cancel:
		return nil, 0, false
	}
}
