package rdma

import "testing"

// BenchmarkSendRecv measures one two-sided message through the simulated
// fabric, including delivery and completion.
func BenchmarkSendRecv(b *testing.B) {
	f := NewFabric()
	recvCQ := NewCQ()
	a, peer := f.ConnectPair(
		QPConfig{},
		QPConfig{RecvCQ: recvCQ},
	)
	defer a.Close()
	defer peer.Close()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peer.PostRecv(make([]byte, 64), uint64(i))
		if err := a.Send(payload, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, ok := recvCQ.WaitIndex(uint64(i)); !ok {
			b.Fatal("missing completion")
		}
	}
}

// BenchmarkRDMARead measures a one-sided read (the rendezvous data pull).
func BenchmarkRDMARead(b *testing.B) {
	f := NewFabric()
	src := make([]byte, 4096)
	mr := f.RegisterMemory(src)
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Read(dst, mr.RKey, 0, 4096, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCQPush measures completion production and strided consumption.
func BenchmarkCQPush(b *testing.B) {
	q := NewCQ()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(Completion{WRID: uint64(i)})
		if _, ok := q.Poll(uint64(i)); !ok {
			b.Fatal("lost completion")
		}
		if i%1024 == 1023 {
			q.Trim(uint64(i))
		}
	}
}
