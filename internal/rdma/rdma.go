// Package rdma simulates the RDMA fabric the paper's prototype runs on:
// queue pairs carrying two-sided SEND/RECV traffic with completion queues,
// registered memory regions addressable by rkey, and one-sided READ/WRITE
// operations used by the rendezvous protocol (§IV-B).
//
// The simulation is in-process: endpoints are wired through buffered
// channels, which gives the two properties the matching pipeline actually
// depends on — per-QP ordered delivery and completion notifications — while
// remaining deterministic and testable. Per-operation latency is pluggable
// through a Cost model so protocol crossovers can be explored.
package rdma

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Errors returned by fabric operations.
var (
	ErrNoReceive  = errors.New("rdma: receiver has no posted receive (RNR)")
	ErrBadKey     = errors.New("rdma: invalid remote key")
	ErrBounds     = errors.New("rdma: remote access out of bounds")
	ErrClosed     = errors.New("rdma: queue pair closed")
	ErrBufferSize = errors.New("rdma: receive buffer too small")
)

// OpType labels a completion entry.
type OpType uint8

const (
	// OpSend completes a two-sided send on the sender.
	OpSend OpType = iota
	// OpRecv completes a two-sided receive on the receiver.
	OpRecv
	// OpRead completes a one-sided read on the initiator.
	OpRead
	// OpWrite completes a one-sided write on the initiator.
	OpWrite
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	}
	return fmt.Sprintf("OpType(%d)", uint8(o))
}

// Cost models per-operation overheads in wall-clock time. Zero values mean
// free operations; the message-rate benchmark uses small non-zero values to
// model PCIe and wire costs.
type Cost struct {
	// SendWire is charged once per two-sided message.
	SendWire time.Duration
	// ReadRTT is charged once per one-sided read (rendezvous data fetch).
	ReadRTT time.Duration
	// PerKiB is charged per KiB of payload on any data movement.
	PerKiB time.Duration
}

// charge busy-waits for the modeled duration. Sleeping is too coarse for
// sub-microsecond costs, so a monotonic spin is used.
func charge(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func (c Cost) data(n int) time.Duration {
	return time.Duration(n) * c.PerKiB / 1024
}

// Fabric is the in-process RDMA network: a registry of memory regions and
// the factory for connected queue pairs.
type Fabric struct {
	mu      sync.Mutex
	mrs     map[uint64]*MemoryRegion
	nextKey uint64
	cost    Cost

	// Fault injection (fault.go): the installed plan, a fast activity
	// flag, and the QP-creation counter that keys per-QP rate overrides
	// and decision streams. Fault tallies live in the fabric's obs sink.
	faults   FaultPlan
	faultsOn bool
	nextQP   int

	// obs is the fabric's observability domain (fault-injection counters
	// and events). Always non-nil; SetObs swaps in a shared/tracing sink.
	obs *obs.Sink

	// wirePool recycles the in-flight copies QP.Send stages: a wire buffer
	// lives only from Send until the peer's delivery engine copies it into
	// a posted receive buffer, so a small pool serves any traffic volume.
	wirePool sync.Pool
}

// wireCopy stages data in a pooled buffer for in-flight transfer.
func (f *Fabric) wireCopy(data []byte) []byte {
	var buf []byte
	if bp, ok := f.wirePool.Get().(*[]byte); ok && cap(*bp) >= len(data) {
		buf = (*bp)[:len(data)]
	} else {
		buf = make([]byte, len(data))
	}
	copy(buf, data)
	return buf
}

// wireRecycle returns a staged buffer once its contents have been consumed.
func (f *Fabric) wireRecycle(buf []byte) {
	b := buf[:0]
	f.wirePool.Put(&b)
}

// NewFabric returns an empty fabric with free operations.
func NewFabric() *Fabric {
	return &Fabric{
		mrs:     make(map[uint64]*MemoryRegion),
		nextKey: 1,
		obs:     obs.New(obs.Options{}),
	}
}

// SetObs replaces the fabric's observability sink (e.g. with a tracing
// one). Call before ConnectPair: injectors capture the sink at creation.
func (f *Fabric) SetObs(s *obs.Sink) {
	if s != nil {
		f.obs = s
	}
}

// Obs returns the fabric's observability sink.
func (f *Fabric) Obs() *obs.Sink { return f.obs }

// SetCost installs the latency model. Call before traffic starts.
func (f *Fabric) SetCost(c Cost) { f.cost = c }

// MemoryRegion is a registered buffer remotely addressable by RKey.
type MemoryRegion struct {
	Buf  []byte
	RKey uint64
}

// RegisterMemory registers buf and returns its region handle.
func (f *Fabric) RegisterMemory(buf []byte) *MemoryRegion {
	f.mu.Lock()
	defer f.mu.Unlock()
	mr := &MemoryRegion{Buf: buf, RKey: f.nextKey}
	f.nextKey++
	f.mrs[mr.RKey] = mr
	return mr
}

// Deregister removes a region; subsequent remote access fails with ErrBadKey.
func (f *Fabric) Deregister(mr *MemoryRegion) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.mrs, mr.RKey)
}

func (f *Fabric) region(key uint64) (*MemoryRegion, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mr, ok := f.mrs[key]
	return mr, ok
}

// Read copies length bytes from the registered region (rkey, offset) into
// dst — the one-sided RDMA READ used by rendezvous. It completes inline and
// posts an OpRead completion to cq when cq is non-nil.
func (f *Fabric) Read(dst []byte, rkey uint64, offset, length int, cq *CQ, wrID uint64) error {
	mr, ok := f.region(rkey)
	if !ok {
		return ErrBadKey
	}
	if offset < 0 || length < 0 || offset+length > len(mr.Buf) {
		return ErrBounds
	}
	if length > len(dst) {
		return ErrBufferSize
	}
	charge(f.cost.ReadRTT + f.cost.data(length))
	copy(dst, mr.Buf[offset:offset+length])
	if cq != nil {
		cq.Push(Completion{Op: OpRead, WRID: wrID, Bytes: length})
	}
	return nil
}

// Write copies src into the registered region (rkey, offset) — one-sided
// RDMA WRITE. It posts an OpWrite completion to cq when cq is non-nil.
func (f *Fabric) Write(src []byte, rkey uint64, offset int, cq *CQ, wrID uint64) error {
	mr, ok := f.region(rkey)
	if !ok {
		return ErrBadKey
	}
	if offset < 0 || offset+len(src) > len(mr.Buf) {
		return ErrBounds
	}
	charge(f.cost.ReadRTT + f.cost.data(len(src)))
	copy(mr.Buf[offset:], src)
	if cq != nil {
		cq.Push(Completion{Op: OpWrite, WRID: wrID, Bytes: len(src)})
	}
	return nil
}
