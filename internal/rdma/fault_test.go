package rdma

import (
	"testing"
	"time"
)

// faultyPair wires one QP pair on a fabric with the given plan and posts
// nothing; callers post receives and send as needed.
func faultyPair(t *testing.T, plan FaultPlan) (*QP, *QP, *CQ, *CQ) {
	t.Helper()
	f := NewFabric()
	f.SetFaults(plan)
	cqA, cqB := NewCQ(), NewCQ()
	a, b := f.ConnectPair(
		QPConfig{SendCQ: NewCQ(), RecvCQ: cqA, Depth: 1024},
		QPConfig{SendCQ: NewCQ(), RecvCQ: cqB, Depth: 1024},
	)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, cqA, cqB
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("seed=7,drop=0.05,dup=0.02,delay=0.01,delayspan=3,rnr=0.04,stall=0.5,stalltime=2us")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Drop != 0.05 || p.Duplicate != 0.02 || p.Delay != 0.01 ||
		p.DelaySpan != 3 || p.RNR != 0.04 || p.Stall != 0.5 || p.StallTime != 2*time.Microsecond {
		t.Fatalf("parsed plan = %+v", p)
	}
	if !p.Active() {
		t.Fatal("parsed plan inactive")
	}
	if p, err := ParseFaultPlan(""); err != nil || p.Active() {
		t.Fatalf("empty plan: %+v err=%v", p, err)
	}
	for _, bad := range []string{"drop", "drop=x", "unknown=1"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Fatalf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestZeroPlanIsInactive(t *testing.T) {
	if (FaultPlan{}).Active() {
		t.Fatal("zero plan active")
	}
	if (FaultPlan{Seed: 99}).Active() {
		t.Fatal("seed-only plan active")
	}
	f := NewFabric()
	f.SetFaults(FaultPlan{Seed: 99})
	a, b := f.ConnectPair(QPConfig{RecvCQ: NewCQ()}, QPConfig{RecvCQ: NewCQ()})
	defer a.Close()
	defer b.Close()
	if a.inj != nil || b.inj != nil {
		t.Fatal("inactive plan armed injectors")
	}
}

func TestDropInjection(t *testing.T) {
	a, b, _, cqB := faultyPair(t, FaultPlan{Seed: 1, FaultRates: FaultRates{Drop: 1}})
	_ = b
	const n = 32
	for i := 0; i < n; i++ {
		b.PostRecv(make([]byte, 8), uint64(i))
		if err := a.Send([]byte{byte(i)}, uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := cqB.Poll(0); ok {
		t.Fatal("dropped message was delivered")
	}
	if got := a.fabric.FaultStats().Dropped; got != n {
		t.Fatalf("Dropped = %d, want %d", got, n)
	}
}

func TestDuplicateInjection(t *testing.T) {
	a, b, _, cqB := faultyPair(t, FaultPlan{Seed: 1, FaultRates: FaultRates{Duplicate: 1}})
	const n = 8
	for i := 0; i < 2*n; i++ {
		b.PostRecv(make([]byte, 8), uint64(i))
	}
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}, uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 2*n; i++ {
		c, ok := cqB.WaitIndex(i)
		if !ok {
			t.Fatalf("missing completion %d", i)
		}
		if want := uint32(i / 2); c.Imm != want {
			t.Fatalf("completion %d: imm = %d, want %d (each message twice, in order)", i, c.Imm, want)
		}
	}
	if got := a.fabric.FaultStats().Duplicated; got != n {
		t.Fatalf("Duplicated = %d, want %d", got, n)
	}
}

func TestRNRInjection(t *testing.T) {
	a, b, _, _ := faultyPair(t, FaultPlan{Seed: 1, FaultRates: FaultRates{RNR: 1}})
	b.PostRecv(make([]byte, 8), 0)
	for i := 0; i < 4; i++ {
		if err := a.Send([]byte("x"), 0, 0); err != ErrNoReceive {
			t.Fatalf("send %d: err = %v, want ErrNoReceive", i, err)
		}
	}
	if got := a.fabric.FaultStats().RNRs; got != 4 {
		t.Fatalf("RNRs = %d, want 4", got)
	}
}

func TestDelayReordersDelivery(t *testing.T) {
	// delay=1, span=1: message 0 is held and overtaken by message 1, then
	// released; message 2 is held next, and so on — pairwise swaps.
	a, b, _, cqB := faultyPair(t, FaultPlan{Seed: 1, FaultRates: FaultRates{Delay: 1, DelaySpan: 1}})
	const n = 8
	for i := 0; i < n; i++ {
		b.PostRecv(make([]byte, 8), uint64(i))
	}
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}, uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint32{1, 0, 3, 2, 5, 4, 7, 6}
	for i := uint64(0); i < n; i++ {
		c, ok := cqB.WaitIndex(i)
		if !ok {
			t.Fatalf("missing completion %d", i)
		}
		if c.Imm != want[i] {
			t.Fatalf("delivery %d: imm = %d, want %d", i, c.Imm, want[i])
		}
	}
	if got := a.fabric.FaultStats().Delayed; got == 0 {
		t.Fatal("Delayed = 0")
	}
}

// collectImms drives a plan over one QP pair and returns the delivered
// immediate values in completion order.
func collectImms(t *testing.T, plan FaultPlan, n int) []uint32 {
	t.Helper()
	a, b, _, cqB := faultyPair(t, plan)
	for i := 0; i < 2*n; i++ {
		b.PostRecv(make([]byte, 8), uint64(i))
	}
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}, uint32(i), uint64(i)); err != nil && err != ErrNoReceive {
			t.Fatal(err)
		}
	}
	// Delivery is asynchronous: wait until the completion count stops
	// moving, then collect everything delivered.
	for {
		before := cqB.Ready()
		time.Sleep(20 * time.Millisecond)
		if cqB.Ready() == before {
			break
		}
	}
	var out []uint32
	for i := uint64(0); ; i++ {
		c, ok := cqB.Poll(i)
		if !ok {
			break
		}
		out = append(out, c.Imm)
	}
	return out
}

func TestFaultScheduleDeterministicPerSeed(t *testing.T) {
	plan := FaultPlan{Seed: 1234, FaultRates: FaultRates{Drop: 0.2, Duplicate: 0.1, Delay: 0.1, RNR: 0.05}}
	const n = 256
	first := collectImms(t, plan, n)
	second := collectImms(t, plan, n)
	if len(first) != len(second) {
		t.Fatalf("runs delivered %d vs %d messages", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("delivery %d differs: %d vs %d", i, first[i], second[i])
		}
	}
	otherSeed := plan
	otherSeed.Seed = 5678
	third := collectImms(t, otherSeed, n)
	same := len(third) == len(first)
	if same {
		for i := range first {
			if first[i] != third[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPerQPOverrides(t *testing.T) {
	// QP 0 (first endpoint of the first pair) drops everything; QP 1 —
	// the reverse direction — is explicitly lossless.
	plan := FaultPlan{
		Seed:       9,
		FaultRates: FaultRates{Drop: 1},
		PerQP:      map[int]FaultRates{1: {}},
	}
	a, b, cqA, cqB := faultyPair(t, plan)
	a.PostRecv(make([]byte, 8), 0)
	b.PostRecv(make([]byte, 8), 0)
	if err := a.Send([]byte("x"), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte("y"), 2, 0); err != nil {
		t.Fatal(err)
	}
	if c, ok := cqA.WaitIndex(0); !ok || c.Imm != 2 {
		t.Fatalf("lossless direction lost its message: %+v ok=%v", c, ok)
	}
	if _, ok := cqB.Poll(0); ok {
		t.Fatal("dropping direction delivered")
	}
}

func TestSendControlBypassesFaults(t *testing.T) {
	a, b, _, cqB := faultyPair(t, FaultPlan{Seed: 1, FaultRates: FaultRates{Drop: 1, RNR: 1}})
	b.PostRecv(make([]byte, 8), 3)
	if err := a.SendControl([]byte("ok"), 7, 0); err != nil {
		t.Fatal(err)
	}
	if c, ok := cqB.WaitIndex(0); !ok || c.Imm != 7 || string(c.Data) != "ok" {
		t.Fatalf("control message corrupted: %+v ok=%v", c, ok)
	}
}

func TestOversizedMessageErrorCompletion(t *testing.T) {
	a, b, _, cqB := pair(t)
	_ = b
	b.PostRecv(make([]byte, 4), 11)
	if err := a.Send([]byte("eight by"), 0, 0); err != nil {
		t.Fatal(err)
	}
	c, ok := cqB.WaitIndex(0)
	if !ok {
		t.Fatal("no completion")
	}
	if c.Err != ErrBufferSize {
		t.Fatalf("Err = %v, want ErrBufferSize", c.Err)
	}
	if c.Bytes != 8 {
		t.Fatalf("Bytes = %d, want the needed length 8", c.Bytes)
	}
	if len(c.Data) != 0 || cap(c.Data) != 4 {
		t.Fatalf("Data len=%d cap=%d, want the unfilled posted buffer", len(c.Data), cap(c.Data))
	}
	// The stream continues undisturbed after the error completion.
	b.PostRecv(make([]byte, 16), 12)
	if err := a.Send([]byte("fits"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if c, ok := cqB.WaitIndex(1); !ok || c.Err != nil || string(c.Data) != "fits" {
		t.Fatalf("follow-up delivery broken: %+v ok=%v", c, ok)
	}
}
