package rdma

import (
	"sync"
)

// wireMsg is a two-sided message in flight.
type wireMsg struct {
	data []byte
	imm  uint32
}

// recvWR is a posted receive work request: a buffer waiting for a message.
type recvWR struct {
	buf  []byte
	wrID uint64
}

// RecvQueue is a pool of posted receive buffers. It can be private to one
// QP or shared among several (the shared-receive-queue pattern the MPI
// layer uses: all senders of a rank feed one pool of bounce buffers).
type RecvQueue struct {
	ch chan recvWR
}

// NewRecvQueue returns a pool with the given depth. Posting beyond the
// depth blocks, which models receiver-not-ready backpressure.
func NewRecvQueue(depth int) *RecvQueue {
	return &RecvQueue{ch: make(chan recvWR, depth)}
}

// Post adds a receive buffer to the pool.
func (rq *RecvQueue) Post(buf []byte, wrID uint64) {
	rq.ch <- recvWR{buf: buf, wrID: wrID}
}

// QP is one endpoint of a connected queue pair. Sends complete locally on
// the send CQ; inbound messages consume buffers from the receive queue and
// complete on the receive CQ, in per-QP FIFO order.
type QP struct {
	fabric *Fabric
	sendCQ *CQ
	recvCQ *CQ
	rq     *RecvQueue

	peer *QP
	wire chan wireMsg

	done      chan struct{}
	closeOnce sync.Once
}

// QPConfig describes one endpoint of a pair.
type QPConfig struct {
	SendCQ *CQ        // completions for outbound sends (may be nil)
	RecvCQ *CQ        // completions for inbound messages
	RQ     *RecvQueue // posted receive buffers
	Depth  int        // wire depth (in-flight messages); default 64
}

// ConnectPair creates two connected QPs on the fabric and starts their
// delivery engines.
func (f *Fabric) ConnectPair(a, b QPConfig) (*QP, *QP) {
	qa := newQP(f, a)
	qb := newQP(f, b)
	qa.peer, qb.peer = qb, qa
	go qa.deliver()
	go qb.deliver()
	return qa, qb
}

func newQP(f *Fabric, cfg QPConfig) *QP {
	depth := cfg.Depth
	if depth <= 0 {
		depth = 64
	}
	rq := cfg.RQ
	if rq == nil {
		rq = NewRecvQueue(depth)
	}
	return &QP{
		fabric: f,
		sendCQ: cfg.SendCQ,
		recvCQ: cfg.RecvCQ,
		rq:     rq,
		wire:   make(chan wireMsg, depth),
		done:   make(chan struct{}),
	}
}

// Send transmits data with immediate value imm. The payload is copied, so
// the caller may reuse data immediately; the send completion is posted to
// the send CQ. Returns ErrClosed after Close.
func (q *QP) Send(data []byte, imm uint32, wrID uint64) error {
	charge(q.fabric.cost.SendWire + q.fabric.cost.data(len(data)))
	msg := wireMsg{data: q.fabric.wireCopy(data), imm: imm}
	select {
	case q.peer.wire <- msg:
	case <-q.peer.done:
		return ErrClosed
	}
	if q.sendCQ != nil {
		q.sendCQ.Push(Completion{Op: OpSend, WRID: wrID, Bytes: len(data), Imm: imm})
	}
	return nil
}

// PostRecv adds a receive buffer to this endpoint's receive queue.
func (q *QP) PostRecv(buf []byte, wrID uint64) { q.rq.Post(buf, wrID) }

// deliver pairs inbound messages with posted receive buffers in FIFO order
// and pushes receive completions.
func (q *QP) deliver() {
	for {
		var msg wireMsg
		select {
		case msg = <-q.wire:
		case <-q.done:
			return
		}
		var wr recvWR
		select {
		case wr = <-q.rq.ch:
		case <-q.done:
			return
		}
		n := copy(wr.buf, msg.data)
		q.fabric.wireRecycle(msg.data)
		q.recvCQ.Push(Completion{
			Op:    OpRecv,
			WRID:  wr.wrID,
			Bytes: n,
			Imm:   msg.imm,
			Data:  wr.buf[:n],
		})
	}
}

// Close shuts down the endpoint's delivery engine.
func (q *QP) Close() {
	q.closeOnce.Do(func() { close(q.done) })
}

// Fabric returns the fabric the QP belongs to.
func (q *QP) Fabric() *Fabric { return q.fabric }
