package rdma

import (
	"sync"

	"repro/internal/obs"
)

// wireMsg is a two-sided message in flight.
type wireMsg struct {
	data []byte
	imm  uint32
}

// recvWR is a posted receive work request: a buffer waiting for a message.
type recvWR struct {
	buf  []byte
	wrID uint64
}

// RecvQueue is a pool of posted receive buffers. It can be private to one
// QP or shared among several (the shared-receive-queue pattern the MPI
// layer uses: all senders of a rank feed one pool of bounce buffers).
type RecvQueue struct {
	ch chan recvWR
}

// NewRecvQueue returns a pool with the given depth. Posting beyond the
// depth blocks, which models receiver-not-ready backpressure.
func NewRecvQueue(depth int) *RecvQueue {
	return &RecvQueue{ch: make(chan recvWR, depth)}
}

// Post adds a receive buffer to the pool.
func (rq *RecvQueue) Post(buf []byte, wrID uint64) {
	rq.ch <- recvWR{buf: buf, wrID: wrID}
}

// QP is one endpoint of a connected queue pair. Sends complete locally on
// the send CQ; inbound messages consume buffers from the receive queue and
// complete on the receive CQ, in per-QP FIFO order.
type QP struct {
	fabric *Fabric
	sendCQ *CQ
	recvCQ *CQ
	rq     *RecvQueue

	peer *QP
	wire chan wireMsg

	// inj is the QP's deterministic fault stream; nil on a lossless
	// fabric, in which case Send keeps its blocking semantics.
	inj *injector

	done      chan struct{}
	closeOnce sync.Once
}

// QPConfig describes one endpoint of a pair.
type QPConfig struct {
	SendCQ *CQ        // completions for outbound sends (may be nil)
	RecvCQ *CQ        // completions for inbound messages
	RQ     *RecvQueue // posted receive buffers
	Depth  int        // wire depth (in-flight messages); default 64
}

// ConnectPair creates two connected QPs on the fabric and starts their
// delivery engines. Under an active fault plan the QPs are assigned
// consecutive creation indices (2k and 2k+1 for the k-th pair) that key
// their fault-decision streams and any per-QP rate overrides.
func (f *Fabric) ConnectPair(a, b QPConfig) (*QP, *QP) {
	qa := newQP(f, a)
	qb := newQP(f, b)
	f.mu.Lock()
	ida, idb := f.nextQP, f.nextQP+1
	f.nextQP += 2
	f.mu.Unlock()
	qa.inj = f.newInjector(ida)
	qb.inj = f.newInjector(idb)
	qa.peer, qb.peer = qb, qa
	go qa.deliver()
	go qb.deliver()
	return qa, qb
}

func newQP(f *Fabric, cfg QPConfig) *QP {
	depth := cfg.Depth
	if depth <= 0 {
		depth = 64
	}
	rq := cfg.RQ
	if rq == nil {
		rq = NewRecvQueue(depth)
	}
	return &QP{
		fabric: f,
		sendCQ: cfg.SendCQ,
		recvCQ: cfg.RecvCQ,
		rq:     rq,
		wire:   make(chan wireMsg, depth),
		done:   make(chan struct{}),
	}
}

// Send transmits data with immediate value imm. The payload is copied, so
// the caller may reuse data immediately; the send completion is posted to
// the send CQ. Returns ErrClosed after Close.
//
// On a lossless fabric Send blocks while the wire is full. Under an
// active fault plan it never blocks: a full wire surfaces ErrNoReceive
// (the RNR NAK a reliability layer must retry through), and the QP's
// injector may additionally drop, duplicate, delay, or stall the message,
// or fail the send with an injected RNR.
func (q *QP) Send(data []byte, imm uint32, wrID uint64) error {
	charge(q.fabric.cost.SendWire + q.fabric.cost.data(len(data)))
	if q.inj != nil {
		return q.sendFaulty(data, imm, wrID)
	}
	msg := wireMsg{data: q.fabric.wireCopy(data), imm: imm}
	select {
	case q.peer.wire <- msg:
	case <-q.peer.done:
		return ErrClosed
	}
	q.completeSend(wrID, len(data), imm)
	return nil
}

// sendFaulty is the injected-fault send path. All PRNG draws happen under
// the injector lock in send order, so the schedule is a deterministic
// function of (seed, QP id, send ordinal) alone.
func (q *QP) sendFaulty(data []byte, imm uint32, wrID uint64) error {
	in := q.inj
	in.mu.Lock()
	d := in.decide()
	if d.rnr {
		// Receiver-not-ready NAK: the message never left; no completion.
		q.releaseHeld()
		in.mu.Unlock()
		in.note(obs.CtrFaultRNR, faultCodeRNR)
		return ErrNoReceive
	}
	if d.stall {
		in.note(obs.CtrFaultStalls, faultCodeStall)
		charge(in.rates.StallTime) // CQ backpressure stalls the pipeline
	}
	switch {
	case d.drop:
		// Lost on the wire after the NIC accepted it: the sender still
		// sees a send completion, the receiver sees nothing.
		q.releaseHeld()
		in.mu.Unlock()
		in.note(obs.CtrFaultDropped, faultCodeDrop)
		q.completeSend(wrID, len(data), imm)
		return nil
	case d.delay && in.held == nil:
		// Hold the message back; the next DelaySpan sends overtake it.
		in.held = &wireMsg{data: q.fabric.wireCopy(data), imm: imm}
		in.heldSpan = in.rates.DelaySpan
		in.mu.Unlock()
		in.note(obs.CtrFaultDelayed, faultCodeDelay)
		q.completeSend(wrID, len(data), imm)
		return nil
	}
	msg := wireMsg{data: q.fabric.wireCopy(data), imm: imm}
	if !q.enqueue(msg) {
		in.mu.Unlock()
		in.note(obs.CtrFaultRNR, faultCodeRNR)
		return ErrNoReceive // wire full: surfaced instead of blocking
	}
	if d.dup {
		// A retransmission race delivers the message twice; if the wire
		// is full the duplicate is simply lost.
		if q.enqueue(wireMsg{data: q.fabric.wireCopy(data), imm: imm}) {
			in.note(obs.CtrFaultDuplicated, faultCodeDup)
		}
	}
	q.releaseHeld()
	in.mu.Unlock()
	q.completeSend(wrID, len(data), imm)
	return nil
}

// releaseHeld re-injects the delayed message once enough later sends have
// overtaken it; if the wire is full at that moment the delayed message is
// lost (equivalent to a drop, which the reliability layer repairs).
// Called with the injector lock held.
func (q *QP) releaseHeld() {
	in := q.inj
	if in.held == nil {
		return
	}
	in.heldSpan--
	if in.heldSpan > 0 {
		return
	}
	msg := *in.held
	in.held = nil
	if !q.enqueue(msg) {
		in.note(obs.CtrFaultDropped, faultCodeDrop)
	}
}

// enqueue attempts a non-blocking wire transfer; it recycles the staged
// copy and reports false when the wire is full or the peer closed.
func (q *QP) enqueue(msg wireMsg) bool {
	select {
	case q.peer.wire <- msg:
		return true
	default:
	}
	select {
	case q.peer.wire <- msg:
		return true
	case <-q.peer.done:
	default:
	}
	q.fabric.wireRecycle(msg.data)
	return false
}

// completeSend posts the local send completion.
func (q *QP) completeSend(wrID uint64, n int, imm uint32) {
	if q.sendCQ != nil {
		q.sendCQ.Push(Completion{Op: OpSend, WRID: wrID, Bytes: n, Imm: imm})
	}
}

// SendControl transmits control-plane traffic exempt from fault injection
// (reliability acknowledgements repair the data plane, so injecting into
// them would couple the two PRNG streams and break schedule determinism).
// It never blocks: a full wire drops the message — control traffic must be
// idempotent and repairable — and reports ErrNoReceive.
func (q *QP) SendControl(data []byte, imm uint32, wrID uint64) error {
	charge(q.fabric.cost.SendWire + q.fabric.cost.data(len(data)))
	if !q.enqueue(wireMsg{data: q.fabric.wireCopy(data), imm: imm}) {
		return ErrNoReceive
	}
	q.completeSend(wrID, len(data), imm)
	return nil
}

// PostRecv adds a receive buffer to this endpoint's receive queue.
func (q *QP) PostRecv(buf []byte, wrID uint64) { q.rq.Post(buf, wrID) }

// deliver pairs inbound messages with posted receive buffers in FIFO order
// and pushes receive completions. A message larger than its receive buffer
// produces an error completion carrying ErrBufferSize — never a silent
// truncation — with the posted buffer attached for recycling.
func (q *QP) deliver() {
	for {
		var msg wireMsg
		select {
		case msg = <-q.wire:
		case <-q.done:
			return
		}
		var wr recvWR
		select {
		case wr = <-q.rq.ch:
		case <-q.done:
			// The message was already dequeued: recycle its staged copy
			// so closing the QP does not leak wire-pool entries.
			q.fabric.wireRecycle(msg.data)
			return
		}
		if len(msg.data) > len(wr.buf) {
			need := len(msg.data)
			q.fabric.wireRecycle(msg.data)
			q.recvCQ.Push(Completion{
				Op:    OpRecv,
				WRID:  wr.wrID,
				Bytes: need,
				Imm:   msg.imm,
				Data:  wr.buf[:0],
				Err:   ErrBufferSize,
			})
			continue
		}
		n := copy(wr.buf, msg.data)
		q.fabric.wireRecycle(msg.data)
		q.recvCQ.Push(Completion{
			Op:    OpRecv,
			WRID:  wr.wrID,
			Bytes: n,
			Imm:   msg.imm,
			Data:  wr.buf[:n],
		})
	}
}

// Close shuts down the endpoint's delivery engine and recycles any
// delayed message still held by the fault injector.
func (q *QP) Close() {
	q.closeOnce.Do(func() {
		close(q.done)
		if q.inj != nil {
			q.inj.mu.Lock()
			if q.inj.held != nil {
				q.fabric.wireRecycle(q.inj.held.data)
				q.inj.held = nil
			}
			q.inj.mu.Unlock()
		}
	})
}

// Fabric returns the fabric the QP belongs to.
func (q *QP) Fabric() *Fabric { return q.fabric }
