package netfabric

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// tcpTransport carries the world over one TCP connection per unordered
// rank pair. The stream gives ordered exactly-once delivery, so it
// reports Reliable() and the MPI layer treats it like the in-process
// fabric. Each peer gets a dedicated writer goroutine draining a send
// queue into batched writev flushes (net.Buffers), and each connection a
// reader goroutine that parses frames straight into posted bounce
// buffers — the steady-state receive path performs one copy and no
// allocation.
type tcpTransport struct {
	base
	cfg   Config
	ln    net.Listener
	addrs []string
	peers []*tcpPeer // nil at [rank]
	loop  *loopEndpoint
	// Writers and readers tear down in two phases: Close waits for the
	// writers to drain their queues before it closes the connections the
	// readers block on — an eager send "completes" once staged, so the
	// final frames of a quiescing world (e.g. the closing barrier's
	// release tokens) are still in flight when Close is called.
	wgWriters sync.WaitGroup
	wgReaders sync.WaitGroup
}

// tcpPeer is one remote rank's link: the connection, its buffered reader,
// and the outbound frame queue its writer goroutine drains.
type tcpPeer struct {
	t     *tcpTransport
	rank  int
	conn  net.Conn
	br    *frameReader
	sendq chan []byte
}

// frameReader is a minimal buffered reader exposing exactly what the frame
// parser needs (ReadByte for uvarints, ReadFull into bounce buffers,
// Discard for oversize payloads), so the hot path stays inlineable.
type frameReader struct {
	r   io.Reader
	buf []byte
	pos int
	end int
}

func newBufReader(r io.Reader) *frameReader { return &frameReader{r: r, buf: make([]byte, 64<<10)} }

func (b *frameReader) fill() error {
	if b.pos < b.end {
		return nil
	}
	n, err := b.r.Read(b.buf)
	if n > 0 {
		b.pos, b.end = 0, n
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

func (b *frameReader) ReadByte() (byte, error) {
	if err := b.fill(); err != nil {
		return 0, err
	}
	c := b.buf[b.pos]
	b.pos++
	return c, nil
}

// ReadFull fills p from the buffered bytes first, then the connection.
func (b *frameReader) ReadFull(p []byte) error {
	n := copy(p, b.buf[b.pos:b.end])
	b.pos += n
	if n == len(p) {
		return nil
	}
	_, err := io.ReadFull(b.r, p[n:])
	return err
}

// Discard skips n bytes.
func (b *frameReader) Discard(n int) error {
	buffered := b.end - b.pos
	if n <= buffered {
		b.pos += n
		return nil
	}
	b.pos = b.end
	_, err := io.CopyN(io.Discard, b.r, int64(n-buffered))
	return err
}

func newTCP(cfg Config) (rdma.Transport, error) {
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netfabric: listen: %w", err)
	}
	addrs, err := registerWithCoord(cfg.Coord, cfg.Rank, cfg.Ranks, ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, err
	}
	return newTCPFrom(cfg, ln, addrs), nil
}

// newTCPFrom assembles the transport around an already-bound listener and
// an already-exchanged address book — the hybrid transport registers with
// the coordinator once (carrying host and shm info alongside the TCP
// address) and builds its TCP leg through here.
func newTCPFrom(cfg Config, ln net.Listener, addrs []string) *tcpTransport {
	t := &tcpTransport{base: newBase(cfg), cfg: cfg, ln: ln, addrs: addrs}
	// Peer structs (and their send queues) exist from construction so
	// endpoints can be handed out before Start meshes the connections;
	// frames staged early simply wait for the writer goroutine.
	t.peers = make([]*tcpPeer, cfg.Ranks)
	for j := range t.peers {
		if j == cfg.Rank {
			continue
		}
		t.peers[j] = &tcpPeer{t: t, rank: j, sendq: make(chan []byte, cfg.SendQueue)}
	}
	t.loop = newLoopback(&t.base, true, cfg.SendQueue)
	return t
}

func (t *tcpTransport) Reliable() bool { return true }

func (t *tcpTransport) Endpoint(peer int) rdma.Endpoint {
	if peer == t.rank {
		return t.loop
	}
	return t.peers[peer]
}

// Start meshes the job — rank i dials every j > i and accepts exactly i
// inbound links, each opened by a frHello identifying the dialer — then
// launches the per-connection readers and per-peer writers.
func (t *tcpTransport) Start(rq *rdma.RecvQueue, cq *rdma.CQ) error {
	t.rq, t.cq = rq, cq

	acceptErr := make(chan error, 1)
	go func() { acceptErr <- t.acceptPeers() }()
	for j := t.rank + 1; j < t.n; j++ {
		conn, err := net.Dial("tcp", t.addrs[j])
		if err != nil {
			return fmt.Errorf("netfabric: dial rank %d: %w", j, err)
		}
		hello := appendFrame(nil, frHello, t.rank, nil)
		if _, err := conn.Write(hello); err != nil {
			return fmt.Errorf("netfabric: hello to rank %d: %w", j, err)
		}
		t.attach(j, conn, newBufReader(conn))
	}
	if err := <-acceptErr; err != nil {
		return err
	}

	t.wgReaders.Add(1)
	go func() { defer t.wgReaders.Done(); t.loop.run() }()
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		t.wgWriters.Add(1)
		t.wgReaders.Add(1)
		go func(p *tcpPeer) { defer t.wgWriters.Done(); p.writer() }(p)
		go func(p *tcpPeer) { defer t.wgReaders.Done(); p.reader() }(p)
	}
	return nil
}

// acceptPeers collects the inbound half of the mesh: one connection from
// every lower rank, identified by its hello frame.
func (t *tcpTransport) acceptPeers() error {
	for got := 0; got < t.rank; got++ {
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("netfabric: accept: %w", err)
		}
		// The hello's reader must become the link's reader: data frames
		// may already sit buffered behind the hello bytes.
		br := newBufReader(conn)
		f, err := br.readFrameHeader()
		if err != nil || f.kind != frHello {
			conn.Close()
			return fmt.Errorf("netfabric: bad hello on inbound link: %v", err)
		}
		if f.src < 0 || f.src >= t.n || f.src == t.rank || t.peers[f.src].conn != nil {
			conn.Close()
			return fmt.Errorf("netfabric: hello from unexpected rank %d", f.src)
		}
		if err := br.Discard(f.payloadLen); err != nil {
			conn.Close()
			return fmt.Errorf("netfabric: hello from rank %d: %v", f.src, err)
		}
		t.attach(f.src, conn, br)
	}
	return nil
}

// attach binds an established connection (and its buffered reader) to the
// pre-allocated peer struct.
func (t *tcpTransport) attach(rank int, conn net.Conn, br *frameReader) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p := t.peers[rank]
	p.conn, p.br = conn, br
}

// frameHeader is a frame's prefix as parsed off the stream: the payload
// stays unread so frData bytes can land directly in a bounce buffer.
type frameHeader struct {
	kind       byte
	src        int
	payloadLen int
}

// readFrameHeader parses the next frame's length, kind, and src off the
// stream, leaving payloadLen bytes unread.
func (b *frameReader) readFrameHeader() (frameHeader, error) {
	body, err := binary.ReadUvarint(b)
	if err != nil {
		return frameHeader{}, err
	}
	if body < 2 || body > maxFramePayload+16 {
		return frameHeader{}, fmt.Errorf("netfabric: frame body %d out of range", body)
	}
	kind, err := b.ReadByte()
	if err != nil {
		return frameHeader{}, err
	}
	if kind < frData || kind > frReadResp {
		return frameHeader{}, fmt.Errorf("netfabric: unknown frame kind %d", kind)
	}
	src, err := binary.ReadUvarint(b)
	if err != nil {
		return frameHeader{}, err
	}
	payload := int(body) - 1 - uvarintLen(src)
	if payload < 0 || payload > maxFramePayload {
		return frameHeader{}, fmt.Errorf("netfabric: frame payload %d out of range", payload)
	}
	return frameHeader{kind: kind, src: int(src), payloadLen: payload}, nil
}

// reader drains the connection: frData payloads stream directly into the
// rank's posted bounce buffers; read requests and responses go through
// the region and pending-read tables.
func (p *tcpPeer) reader() {
	t := p.t
	for {
		f, err := p.br.readFrameHeader()
		if err != nil {
			// Connection torn down (peer closed or we closed). Nothing to
			// repair on a reliable transport: the world is quiescing.
			return
		}
		t.sink.Counters.Inc(obs.CtrNetRxFrames)
		t.sink.Counters.Add(obs.CtrNetRxBytes, uint64(f.payloadLen))
		switch f.kind {
		case frData:
			buf, wrID, ok := t.rq.Take(t.done)
			if !ok {
				return
			}
			if f.payloadLen > len(buf) {
				// Mirror QP.deliver: consume the message, complete with
				// ErrBufferSize, never truncate silently.
				if err := p.br.Discard(f.payloadLen); err != nil {
					return
				}
				t.cq.Push(rdma.Completion{Op: rdma.OpRecv, WRID: wrID,
					Bytes: f.payloadLen, Data: buf[:0], Err: rdma.ErrBufferSize})
				continue
			}
			if err := p.br.ReadFull(buf[:f.payloadLen]); err != nil {
				return
			}
			t.cq.Push(rdma.Completion{Op: rdma.OpRecv, WRID: wrID,
				Bytes: f.payloadLen, Data: buf[:f.payloadLen]})
		case frReadReq:
			scratch := t.frameBuf(f.payloadLen)[:f.payloadLen]
			if err := p.br.ReadFull(scratch); err != nil {
				return
			}
			resp, ok := t.serveReadPayload(scratch, 0)
			t.frameRecycle(scratch)
			if ok {
				p.enqueueFrame(frReadResp, resp)
				t.frameRecycle(resp)
			}
		case frReadResp:
			scratch := t.frameBuf(f.payloadLen)[:f.payloadLen]
			if err := p.br.ReadFull(scratch); err != nil {
				return
			}
			t.completeRead(scratch)
			t.frameRecycle(scratch)
		default: // frHello mid-stream: ignore
			if err := p.br.Discard(f.payloadLen); err != nil {
				return
			}
		}
	}
}

// enqueueFrame stages an encoded frame for the writer without ever
// blocking the calling reader goroutine (a reader blocked on a full
// outbound queue could deadlock two mutually-stalled ranks).
func (p *tcpPeer) enqueueFrame(kind byte, payload []byte) {
	buf := appendFrame(p.t.frameBuf(frameSize(p.t.rank, len(payload))), kind, p.t.rank, payload)
	select {
	case p.sendq <- buf:
	default:
		go func() {
			select {
			case p.sendq <- buf:
			case <-p.t.done:
				p.t.frameRecycle(buf)
			}
		}()
	}
}

// writer drains the send queue into the connection. Frames already queued
// behind the first are flushed in one writev (net.Buffers), so a burst of
// eager sends costs one syscall, not one per message.
func (p *tcpPeer) writer() {
	t := p.t
	maxBatch := 64
	owned := make([][]byte, 0, maxBatch)
	var bufs net.Buffers
	dead := false
	for {
		var first []byte
		select {
		case first = <-p.sendq:
		case <-t.done:
			// Shutdown: flush whatever the quiescing world staged before
			// Close (its final control tokens), then exit. Frames already
			// in the queue were sent before Close and must reach the peer.
			for {
				select {
				case f := <-p.sendq:
					if !dead {
						if _, err := p.conn.Write(f); err != nil {
							dead = true
						}
					}
					t.frameRecycle(f)
				default:
					return
				}
			}
		}
		owned = append(owned[:0], first)
	drain:
		for len(owned) < maxBatch {
			select {
			case f := <-p.sendq:
				owned = append(owned, f)
			default:
				break drain
			}
		}
		if !dead {
			total := 0
			bufs = bufs[:0]
			for _, f := range owned {
				total += len(f)
				bufs = append(bufs, f)
			}
			if _, err := (&bufs).WriteTo(p.conn); err != nil {
				// Peer gone (normal during teardown): keep draining the
				// queue so senders never block on a dead link.
				dead = true
			} else {
				t.sink.Counters.Add(obs.CtrNetTxFrames, uint64(len(owned)))
				t.sink.Counters.Add(obs.CtrNetTxBytes, uint64(total))
				t.sink.Counters.Inc(obs.CtrNetFlushes)
			}
		}
		for i, f := range owned {
			t.frameRecycle(f)
			owned[i] = nil
		}
	}
}

// Send stages one data frame. When the peer's queue is full the call
// stalls (tallied as CtrNetStalls) until the writer drains — TCP
// backpressure surfaces as latency, never loss.
func (p *tcpPeer) Send(data []byte, imm uint32, wrID uint64) error {
	buf := appendFrame(p.t.frameBuf(frameSize(p.t.rank, len(data))), frData, p.t.rank, data)
	select {
	case p.sendq <- buf:
		return nil
	case <-p.t.done:
		p.t.frameRecycle(buf)
		return rdma.ErrClosed
	default:
	}
	p.t.noteStall(p.rank, len(data))
	select {
	case p.sendq <- buf:
		return nil
	case <-p.t.done:
		p.t.frameRecycle(buf)
		return rdma.ErrClosed
	}
}

// SendControl stages a control frame without ever blocking: a full queue
// drops it with ErrNoReceive, the contract control traffic already
// tolerates on the in-process fabric.
func (p *tcpPeer) SendControl(data []byte, imm uint32, wrID uint64) error {
	buf := appendFrame(p.t.frameBuf(frameSize(p.t.rank, len(data))), frData, p.t.rank, data)
	select {
	case p.sendq <- buf:
		return nil
	default:
		p.t.frameRecycle(buf)
		return rdma.ErrNoReceive
	}
}

// Close of one endpoint is a no-op; links die with the transport.
func (p *tcpPeer) Close() {}

// maxTCPReadChunk bounds one rendezvous sub-read so its frReadResp frame
// (payload plus reqID/status framing) stays under the frame cap.
const maxTCPReadChunk = maxFramePayload - 64

// Read satisfies a rendezvous read: owner-local regions copy directly,
// remote ones round-trip frReadReq exchanges. Requests larger than the
// frame cap are split into pipelined sub-reads — every chunk's request is
// staged before the first response is awaited, so a large read costs one
// round-trip plus streaming, not a round-trip per chunk. The stream is
// reliable, so each request is sent once and the only failure modes are
// the owner's verdict or transport shutdown.
func (t *tcpTransport) Read(owner int, dst []byte, rkey uint64, offset, length int) error {
	if length != len(dst) {
		return rdma.ErrBounds
	}
	if owner == t.rank {
		return t.localRead(dst, rkey, offset, length)
	}
	if owner < 0 || owner >= t.n {
		return rdma.ErrBadKey
	}
	p := t.peers[owner]
	type chunk struct {
		id uint64
		pr *pendingRead
	}
	var chunks []chunk
	for off := 0; ; {
		n := min(length-off, maxTCPReadChunk)
		id, pr := t.newPendingRead(dst[off : off+n])
		req := appendReadReq(t.frameBuf(40), id, rkey, offset+off, n)
		t.sink.Counters.Inc(obs.CtrNetReadReqs)
		p.enqueueFrame(frReadReq, req)
		t.frameRecycle(req)
		chunks = append(chunks, chunk{id, pr})
		off += n
		if off >= length {
			break
		}
	}
	var firstErr error
	for _, c := range chunks {
		select {
		case err := <-c.pr.done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-t.done:
			t.dropPendingRead(c.id)
			if firstErr == nil {
				firstErr = rdma.ErrClosed
			}
		}
	}
	return firstErr
}

// Close tears the mesh down in two phases: writers drain and exit first
// (so every frame staged before Close reaches the wire), then the
// connections close under the readers.
func (t *tcpTransport) Close() error {
	if !t.markClosed() {
		return nil
	}
	t.wgWriters.Wait()
	t.ln.Close()
	for _, p := range t.peers {
		if p != nil && p.conn != nil {
			p.conn.Close()
		}
	}
	t.wgReaders.Wait()
	return nil
}
