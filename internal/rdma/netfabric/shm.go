package netfabric

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// The shm transport carries co-located ranks over mmap'd shared memory
// instead of loopback sockets. Each rank owns one segment file:
//
//	header    | 4 KiB: magic, version, geometry — validated on attach
//	rings     | n × (128 B control + ShmRing data): inbound SPSC ring j
//	          |   is written by rank j's process and drained only by the
//	          |   owner's poll goroutine (shmring.go)
//	regions   | 1024 × 24 B slots {rkey, offset, length}: the published
//	          |   rendezvous region table
//	arena     | ShmArena bytes: rendezvous payload staging
//
// Sends stage an encoded frame (the TCP/UDP codec, frame.go) into the
// destination's ring for this sender; the destination's poll goroutine
// spins over its inbound rings with a bounded busy-poll and falls back to
// timed sleeps when idle (the spin-then-park protocol — on a time-shared
// core a hot spin would starve the very peer it is waiting for).
//
// RegisterMemory copies the rendezvous buffer into the owner's arena and
// publishes {rkey, offset, length} in the region table, rkey last with a
// release store. A peer's Read then resolves the rkey directly against
// the owner's mapped segment and memcpys the bytes out — the READ RPC
// round-trip disappears. Deregister unpublishes the rkey before freeing
// the arena span, and re-checks after reading the geometry, so a torn
// lookup can only miss (ErrBadKey), never read freed bytes as valid.
type shmTransport struct {
	base
	cfg Config

	seg      *shmSegment   // this rank's own segment
	peerSegs []*shmSegment // peer segments by rank; nil = self or non-shm peer
	peers    []*shmEndpoint
	loop     *loopEndpoint

	// mapMu guards the mappings against munmap: Send/Read hold it shared,
	// Close takes it exclusively after the done channel stops new work.
	mapMu sync.RWMutex

	// Arena + region-table bookkeeping for this rank's own registrations.
	regMu     sync.Mutex
	arenaFree []arenaSpan
	slotUsed  []bool
	slotNext  int
	regions   map[uint64]shmRegion
	rkeys     atomic.Uint64

	wg sync.WaitGroup
}

// shmRegion remembers where a registration landed. Heap regions are
// oversize/overflow fallbacks that never hit the arena; pure-shm peers
// cannot read them (hybrid falls back to the TCP READ RPC).
type shmRegion struct {
	slot, off, n int
	heap         bool
}

type arenaSpan struct{ off, n int }

const (
	shmMagic        = 0x524550524f53484d // "REPROSHM"
	shmVersion      = 1
	shmHeaderBytes  = 4096
	regionSlots     = 1024
	regionSlotBytes = 24

	// shmSpinBudget bounds the busy-poll phase (spinYield iterations) of
	// both the poll loop and a full-ring sender before they fall back to
	// timed sleeps.
	shmSpinBudget = 512
	// parkMin/parkMax bound the timed-sleep backoff once parked.
	shmParkMin = 50 * time.Microsecond
	shmParkMax = time.Millisecond
	// shmArenaWait bounds how long RegisterMemory waits for arena space
	// before falling back to a heap region.
	shmArenaWait = 2 * time.Second
)

// spinYield is one iteration of the busy-poll phase: an in-process
// Gosched first (this process's own engine goroutines share one P with
// the poller and must keep running), then a kernel sched_yield so a peer
// rank *process* time-sharing the core gets scheduled too. Gosched alone
// returns immediately once this process has nothing else runnable and
// would burn the whole kernel timeslice without ever letting the peer
// run; the sched_yield hands the core over, and the caller resumes as
// soon as the peer blocks or yields in turn — futex-like wakeup latency
// without a futex.
func spinYield(int) {
	runtime.Gosched()
	syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0)
}

// ---------------------------------------------------------------------------
// Segment: create / attach / layout

type shmSegment struct {
	path                     string
	mem                      []byte
	owner                    bool
	n, ringBytes, arenaBytes int
}

func shmSegmentSize(n, ringBytes, arenaBytes int) int {
	return shmHeaderBytes + n*(ringCtrlBytes+ringBytes) + regionSlots*regionSlotBytes + arenaBytes
}

// createShmSegment builds and maps this rank's own segment file. The file
// is sized with Truncate, so it is sparse: pages cost memory only once
// touched.
func createShmSegment(dir string, rank, n, ringBytes, arenaBytes int) (*shmSegment, error) {
	f, err := os.CreateTemp(dir, fmt.Sprintf("repro-shm-r%d-*.seg", rank))
	if err != nil {
		return nil, fmt.Errorf("netfabric: create shm segment: %w", err)
	}
	path := f.Name()
	size := shmSegmentSize(n, ringBytes, arenaBytes)
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("netfabric: size shm segment: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close() // the mapping keeps the pages; the fd is no longer needed
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("netfabric: mmap shm segment: %w", err)
	}
	s := &shmSegment{path: path, mem: mem, owner: true, n: n, ringBytes: ringBytes, arenaBytes: arenaBytes}
	hdr := [5]uint64{shmMagic, shmVersion, uint64(n), uint64(ringBytes), uint64(arenaBytes)}
	for i, v := range hdr {
		binary.LittleEndian.PutUint64(mem[i*8:], v)
	}
	return s, nil
}

// openShmSegment attaches to a peer's segment, validating the geometry
// this rank expects against the header the owner wrote before
// registering with the coordinator.
func openShmSegment(path string, n, ringBytes, arenaBytes int) (*shmSegment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("netfabric: open peer shm segment: %w", err)
	}
	size := shmSegmentSize(n, ringBytes, arenaBytes)
	st, err := f.Stat()
	if err == nil && st.Size() != int64(size) {
		err = fmt.Errorf("netfabric: peer shm segment %s is %d bytes, want %d", path, st.Size(), size)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	mem, merr := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if merr != nil {
		return nil, fmt.Errorf("netfabric: mmap peer shm segment: %w", merr)
	}
	want := [5]uint64{shmMagic, shmVersion, uint64(n), uint64(ringBytes), uint64(arenaBytes)}
	for i, w := range want {
		if got := binary.LittleEndian.Uint64(mem[i*8:]); got != w {
			syscall.Munmap(mem)
			return nil, fmt.Errorf("netfabric: peer shm segment %s header[%d]=%#x, want %#x", path, i, got, w)
		}
	}
	return &shmSegment{path: path, mem: mem, n: n, ringBytes: ringBytes, arenaBytes: arenaBytes}, nil
}

// ring returns the inbound ring written by sender (laid over this
// segment's memory).
func (s *shmSegment) ring(sender int) (*shmRing, error) {
	off := shmHeaderBytes + sender*(ringCtrlBytes+s.ringBytes)
	return ringAt(s.mem[off : off+ringCtrlBytes+s.ringBytes])
}

// regionSlot is one published rendezvous region: rkey, arena offset,
// length, each a cross-process atomic.
type regionSlot struct{ key, off, size *atomic.Uint64 }

func (s *shmSegment) slot(i int) regionSlot {
	base := shmHeaderBytes + s.n*(ringCtrlBytes+s.ringBytes) + i*regionSlotBytes
	return regionSlot{
		key:  (*atomic.Uint64)(unsafe.Pointer(&s.mem[base])),
		off:  (*atomic.Uint64)(unsafe.Pointer(&s.mem[base+8])),
		size: (*atomic.Uint64)(unsafe.Pointer(&s.mem[base+16])),
	}
}

func (s *shmSegment) arena() []byte {
	start := shmHeaderBytes + s.n*(ringCtrlBytes+s.ringBytes) + regionSlots*regionSlotBytes
	return s.mem[start : start+s.arenaBytes]
}

// readRegion serves a zero-round-trip rendezvous read against this
// segment's published region table: find the rkey, bounds-check, memcpy.
// The rkey is re-checked after the geometry loads so a concurrent
// deregister can only turn into ErrBadKey, never a stale-bytes success
// presented as current.
func (s *shmSegment) readRegion(dst []byte, rkey uint64, offset, length int) error {
	if rkey == 0 {
		return rdma.ErrBadKey
	}
	if offset < 0 || length < 0 {
		return rdma.ErrBounds
	}
	arena := s.arena()
	for i := 0; i < regionSlots; i++ {
		sl := s.slot(i)
		if sl.key.Load() != rkey {
			continue
		}
		roff, rlen := sl.off.Load(), sl.size.Load()
		if sl.key.Load() != rkey {
			return rdma.ErrBadKey // deregistered mid-lookup
		}
		if uint64(offset)+uint64(length) > rlen {
			return rdma.ErrBounds
		}
		start := roff + uint64(offset)
		if start+uint64(length) > uint64(len(arena)) {
			return rdma.ErrBounds
		}
		copy(dst, arena[start:start+uint64(length)])
		return nil
	}
	return rdma.ErrBadKey
}

func (s *shmSegment) close() {
	syscall.Munmap(s.mem)
	s.mem = nil
	if s.owner {
		os.Remove(s.path)
	}
}

// ---------------------------------------------------------------------------
// Transport

// newShm builds the pure shared-memory transport: create own segment,
// rendezvous segment paths through the coordinator, attach every peer.
func newShm(cfg Config) (rdma.Transport, error) {
	seg, err := createShmSegment(cfg.ShmDir, cfg.Rank, cfg.Ranks, cfg.ShmRing, cfg.ShmArena)
	if err != nil {
		return nil, err
	}
	book, err := registerHello(cfg.Coord, coordHello{
		Rank: cfg.Rank, Ranks: cfg.Ranks, Addr: seg.path, Shm: seg.path,
	})
	if err != nil {
		seg.close()
		return nil, err
	}
	return newShmFrom(cfg, seg, book.Shms, nil)
}

// newShmFrom assembles the transport around an already-registered own
// segment. mask, when non-nil, limits which peers are attached over shm
// (the hybrid transport passes its same-host map).
func newShmFrom(cfg Config, seg *shmSegment, paths []string, mask []bool) (*shmTransport, error) {
	t := &shmTransport{
		base:      newBase(cfg),
		cfg:       cfg,
		seg:       seg,
		peerSegs:  make([]*shmSegment, cfg.Ranks),
		peers:     make([]*shmEndpoint, cfg.Ranks),
		arenaFree: []arenaSpan{{0, cfg.ShmArena}},
		slotUsed:  make([]bool, regionSlots),
		regions:   make(map[uint64]shmRegion),
	}
	fail := func(err error) (*shmTransport, error) {
		for _, ps := range t.peerSegs {
			if ps != nil {
				ps.close()
			}
		}
		seg.close()
		return nil, err
	}
	if len(paths) != cfg.Ranks {
		return fail(fmt.Errorf("netfabric: shm book has %d segments, want %d", len(paths), cfg.Ranks))
	}
	for j, path := range paths {
		if j == cfg.Rank || (mask != nil && !mask[j]) {
			continue
		}
		if path == "" {
			return fail(fmt.Errorf("netfabric: rank %d announced no shm segment", j))
		}
		ps, err := openShmSegment(path, cfg.Ranks, cfg.ShmRing, cfg.ShmArena)
		if err != nil {
			return fail(err)
		}
		t.peerSegs[j] = ps
		ring, err := ps.ring(cfg.Rank)
		if err != nil {
			return fail(err)
		}
		t.peers[j] = &shmEndpoint{t: t, peer: j, ring: ring}
	}
	t.loop = newLoopback(&t.base, true, cfg.SendQueue)
	return t, nil
}

func (t *shmTransport) Reliable() bool { return true }

func (t *shmTransport) Start(rq *rdma.RecvQueue, cq *rdma.CQ) error {
	t.rq, t.cq = rq, cq
	t.wg.Add(2)
	go func() { defer t.wg.Done(); t.loop.run() }()
	go func() { defer t.wg.Done(); t.poll() }()
	return nil
}

func (t *shmTransport) Endpoint(peer int) rdma.Endpoint {
	if peer == t.rank {
		return t.loop
	}
	if peer < 0 || peer >= t.n || t.peers[peer] == nil {
		return nil
	}
	return t.peers[peer]
}

// poll is the consumer side: it drains every inbound ring of this rank's
// own segment, spinning while work arrives and parking (timed sleeps with
// doubling backoff) when all rings stay empty past the spin budget.
func (t *shmTransport) poll() {
	scratch := make([]byte, t.cfg.ShmRing)
	var rings []*shmRing
	for j := 0; j < t.n; j++ {
		if j == t.rank || t.peers[j] == nil {
			continue
		}
		r, err := t.seg.ring(j)
		if err != nil {
			return // geometry was validated at construction; unreachable
		}
		rings = append(rings, r)
	}
	idle, parked := 0, false
	sleep := shmParkMin
	for {
		progress := false
		for _, r := range rings {
			for {
				rec, ok, err := r.tryRead(scratch)
				if err != nil || !ok {
					break // torn records are unreachable with well-behaved peers
				}
				progress = true
				f, _, derr := decodeFrame(rec)
				if derr != nil || f.kind != frData {
					continue
				}
				t.sink.Counters.Inc(obs.CtrShmRxFrames)
				t.sink.Counters.Add(obs.CtrShmRxBytes, uint64(len(f.payload)))
				if !t.deliverBytes(f.payload) {
					return
				}
			}
		}
		if progress {
			if idle > 0 && !parked {
				t.sink.Counters.Inc(obs.CtrShmSpinWakes)
			}
			idle, parked, sleep = 0, false, shmParkMin
			continue
		}
		select {
		case <-t.done:
			return
		default:
		}
		idle++
		if idle <= shmSpinBudget {
			spinYield(idle)
			continue
		}
		if !parked {
			parked = true
			t.sink.Counters.Inc(obs.CtrShmParks)
		}
		time.Sleep(sleep)
		if sleep < shmParkMax {
			sleep *= 2
		}
	}
}

// ---------------------------------------------------------------------------
// Rendezvous: arena registration and zero-round-trip reads

// RegisterMemory copies buf into this rank's shared arena and publishes
// it in the segment's region table, shadowing base.RegisterMemory. The
// copy is safe because rendezvous buffers are stable between Isend's
// registration and the completing ACK; returning the arena slice as
// mr.Buf keeps the MPI layer's len(mr.Buf) accounting exact. Oversize
// buffers (or a full arena after shmArenaWait) fall back to a plain heap
// region — the hybrid transport serves those over the TCP READ RPC.
func (t *shmTransport) RegisterMemory(buf []byte) *rdma.MemoryRegion {
	rkey := t.rkeys.Add(1)
	n := len(buf)
	off, slot, ok := t.reserve(n)
	if !ok {
		t.regMu.Lock()
		t.regions[rkey] = shmRegion{heap: true}
		t.regMu.Unlock()
		return &rdma.MemoryRegion{Buf: buf, RKey: rkey}
	}
	arena := t.seg.arena()
	copy(arena[off:off+n], buf)
	sl := t.seg.slot(slot)
	sl.off.Store(uint64(off))
	sl.size.Store(uint64(n))
	sl.key.Store(rkey) // release: publish last, so readers see full geometry
	t.regMu.Lock()
	t.regions[rkey] = shmRegion{slot: slot, off: off, n: n}
	t.regMu.Unlock()
	return &rdma.MemoryRegion{Buf: arena[off : off+n : off+n], RKey: rkey}
}

// reserve carves n bytes from the arena and claims a region slot,
// waiting (in 1ms ticks, bounded by shmArenaWait) for space held by
// in-flight rendezvous to free up.
func (t *shmTransport) reserve(n int) (off, slot int, ok bool) {
	if n > t.cfg.ShmArena {
		return 0, 0, false
	}
	deadline := time.Now().Add(shmArenaWait)
	for {
		t.regMu.Lock()
		if off, ok = t.arenaAlloc(n); ok {
			if slot, ok = t.takeSlot(); ok {
				t.regMu.Unlock()
				return off, slot, true
			}
			t.arenaRelease(off, n)
		}
		t.regMu.Unlock()
		select {
		case <-t.done:
			return 0, 0, false
		default:
		}
		if time.Now().After(deadline) {
			return 0, 0, false
		}
		time.Sleep(time.Millisecond)
	}
}

// arenaAlloc is a first-fit allocator over the sorted free-span list.
// Spans are 8-byte aligned so arena slices inherit usable alignment.
// Callers hold regMu.
func (t *shmTransport) arenaAlloc(n int) (int, bool) {
	need := (n + 7) &^ 7
	if need == 0 {
		need = 8
	}
	for i, sp := range t.arenaFree {
		if sp.n < need {
			continue
		}
		off := sp.off
		if sp.n == need {
			t.arenaFree = append(t.arenaFree[:i], t.arenaFree[i+1:]...)
		} else {
			t.arenaFree[i] = arenaSpan{sp.off + need, sp.n - need}
		}
		return off, true
	}
	return 0, false
}

// arenaRelease returns a span, coalescing with neighbors. Callers hold
// regMu and pass the original length (alignment is re-applied here).
func (t *shmTransport) arenaRelease(off, n int) {
	need := (n + 7) &^ 7
	if need == 0 {
		need = 8
	}
	i := 0
	for i < len(t.arenaFree) && t.arenaFree[i].off < off {
		i++
	}
	t.arenaFree = append(t.arenaFree, arenaSpan{})
	copy(t.arenaFree[i+1:], t.arenaFree[i:])
	t.arenaFree[i] = arenaSpan{off, need}
	if i+1 < len(t.arenaFree) && off+need == t.arenaFree[i+1].off {
		t.arenaFree[i].n += t.arenaFree[i+1].n
		t.arenaFree = append(t.arenaFree[:i+1], t.arenaFree[i+2:]...)
	}
	if i > 0 && t.arenaFree[i-1].off+t.arenaFree[i-1].n == off {
		t.arenaFree[i-1].n += t.arenaFree[i].n
		t.arenaFree = append(t.arenaFree[:i], t.arenaFree[i+1:]...)
	}
}

// takeSlot claims a free region-table slot. Callers hold regMu.
func (t *shmTransport) takeSlot() (int, bool) {
	for i := 0; i < regionSlots; i++ {
		s := (t.slotNext + i) % regionSlots
		if !t.slotUsed[s] {
			t.slotUsed[s] = true
			t.slotNext = s + 1
			return s, true
		}
	}
	return 0, false
}

// Deregister unpublishes the rkey first (peers immediately see ErrBadKey)
// and only then frees the arena span for reuse.
func (t *shmTransport) Deregister(mr *rdma.MemoryRegion) {
	t.regMu.Lock()
	reg, ok := t.regions[mr.RKey]
	delete(t.regions, mr.RKey)
	t.regMu.Unlock()
	if !ok || reg.heap {
		return
	}
	t.seg.slot(reg.slot).key.Store(0)
	t.regMu.Lock()
	t.arenaRelease(reg.off, reg.n)
	t.slotUsed[reg.slot] = false
	t.regMu.Unlock()
}

// Read resolves (owner, rkey) directly against the owner's mapped
// segment — same host, so the "remote" arena is plain addressable memory
// and the whole rendezvous READ is one bounds-checked memcpy.
func (t *shmTransport) Read(owner int, dst []byte, rkey uint64, offset, length int) error {
	if length != len(dst) {
		return rdma.ErrBounds
	}
	if owner < 0 || owner >= t.n {
		return rdma.ErrBadKey
	}
	t.mapMu.RLock()
	defer t.mapMu.RUnlock()
	select {
	case <-t.done:
		return rdma.ErrClosed
	default:
	}
	seg := t.seg
	if owner != t.rank {
		seg = t.peerSegs[owner]
	}
	if seg == nil {
		return rdma.ErrBadKey
	}
	if err := seg.readRegion(dst, rkey, offset, length); err != nil {
		return err
	}
	t.sink.Counters.Inc(obs.CtrShmReads)
	return nil
}

func (t *shmTransport) Close() error {
	if !t.markClosed() {
		return nil
	}
	t.wg.Wait()
	t.mapMu.Lock()
	defer t.mapMu.Unlock()
	for _, ps := range t.peerSegs {
		if ps != nil {
			ps.close()
		}
	}
	t.seg.close()
	return nil
}

// ---------------------------------------------------------------------------
// Endpoint: the producer side of one peer's inbound ring

type shmEndpoint struct {
	t    *shmTransport
	peer int
	ring *shmRing

	// mu serializes this rank's senders onto the SPSC ring (the ring's
	// single-producer contract is per process, not per goroutine).
	mu sync.Mutex
}

func (ep *shmEndpoint) Send(data []byte, imm uint32, wrID uint64) error {
	return ep.send(data, false)
}

// SendControl must not block: on a full ring it reports ErrNoReceive
// instead of entering the spin-park wait.
func (ep *shmEndpoint) SendControl(data []byte, imm uint32, wrID uint64) error {
	return ep.send(data, true)
}

func (ep *shmEndpoint) send(data []byte, control bool) error {
	t := ep.t
	size := frameSize(t.rank, len(data))
	if !ep.ring.fits(size) {
		return fmt.Errorf("netfabric: %d-byte frame exceeds shm ring capacity", size)
	}
	buf := appendFrame(t.frameBuf(size), frData, t.rank, data)
	defer t.frameRecycle(buf)

	t.mapMu.RLock()
	defer t.mapMu.RUnlock()
	select {
	case <-t.done:
		return rdma.ErrClosed
	default:
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.ring.tryWrite(buf) {
		t.noteTx(len(buf))
		return nil
	}
	if control {
		return rdma.ErrNoReceive
	}
	// Ring full: the consumer is behind. Spin briefly, then park — the
	// same adaptive wait the poll loop uses, because on a shared core the
	// consumer needs this core to drain the ring.
	t.sink.Counters.Inc(obs.CtrShmRingFull)
	spins := 0
	sleep := shmParkMin
	for {
		select {
		case <-t.done:
			return rdma.ErrClosed
		default:
		}
		if ep.ring.tryWrite(buf) {
			t.noteTx(len(buf))
			return nil
		}
		if spins < shmSpinBudget {
			spins++
			spinYield(spins)
			continue
		}
		time.Sleep(sleep)
		if sleep < shmParkMax {
			sleep *= 2
		}
	}
}

func (t *shmTransport) noteTx(encoded int) {
	t.sink.Counters.Inc(obs.CtrShmTxFrames)
	t.sink.Counters.Add(obs.CtrShmTxBytes, uint64(encoded))
}

func (ep *shmEndpoint) Close() {}
