package netfabric

import (
	"bytes"
	"runtime"
	"testing"
)

// TestShmRingWraparound drives records across the ring edge single-
// threaded: sizes are chosen so both the u32 prefix and the payload
// straddle the wrap repeatedly, and every byte must come back exact.
func TestShmRingWraparound(t *testing.T) {
	r := newHeapRing(256)
	scratch := make([]byte, 256)
	rng := uint64(1)
	for i := 0; i < 10_000; i++ {
		rng = splitmix(rng)
		size := int(rng % 90) // 0..89, vs 256 capacity: wraps constantly
		rec := make([]byte, size)
		for j := range rec {
			rec[j] = byte(i + j)
		}
		if !r.tryWrite(rec) {
			t.Fatalf("rep %d: tryWrite failed on an empty ring", i)
		}
		got, ok, err := r.tryRead(scratch)
		if err != nil {
			t.Fatalf("rep %d: tryRead: %v", i, err)
		}
		if !ok {
			t.Fatalf("rep %d: record not visible after write", i)
		}
		if !bytes.Equal(got, rec) {
			t.Fatalf("rep %d: payload mismatch (%d bytes)", i, size)
		}
	}
}

// TestShmRingTornFrameProperty is the concurrent torn-frame property
// test: a producer streams frame-encoded records of pseudorandom sizes
// while a consumer drains them. Run under -race (the CI race matrix
// includes this package) it checks the release/acquire protocol on
// head/tail; functionally it checks that no record is ever torn — every
// decoded frame must be byte-identical to what was staged, in order,
// across thousands of wraparounds of a deliberately tiny ring.
func TestShmRingTornFrameProperty(t *testing.T) {
	const (
		ringBytes = 4096
		records   = 20_000
		maxPay    = 700
	)
	r := newHeapRing(ringBytes)

	makePayload := func(i int) []byte {
		rng := splitmix(uint64(i)*0x9E3779B97F4A7C15 + 1)
		p := make([]byte, int(rng%maxPay))
		for j := range p {
			p[j] = byte(rng>>8) + byte(i*31+j)
		}
		return p
	}

	done := make(chan error, 1)
	go func() {
		scratch := make([]byte, ringBytes)
		for i := 0; i < records; i++ {
			var rec []byte
			for {
				var ok bool
				var err error
				rec, ok, err = r.tryRead(scratch)
				if err != nil {
					done <- err
					return
				}
				if ok {
					break
				}
				runtime.Gosched() // single-core CI: let the producer run
			}
			f, rest, err := decodeFrame(rec)
			if err != nil {
				done <- err
				return
			}
			if len(rest) != 0 {
				t.Errorf("record %d: %d trailing bytes after frame", i, len(rest))
			}
			if f.kind != frData || f.src != i%7 {
				t.Errorf("record %d: decoded kind=%d src=%d, want kind=%d src=%d",
					i, f.kind, f.src, frData, i%7)
			}
			if want := makePayload(i); !bytes.Equal(f.payload, want) {
				t.Errorf("record %d: torn payload (%d bytes, want %d)", i, len(f.payload), len(want))
			}
		}
		done <- nil
	}()

	for i := 0; i < records; i++ {
		rec := appendFrame(nil, frData, i%7, makePayload(i))
		for !r.tryWrite(rec) {
			runtime.Gosched() // ring full: let the consumer drain
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("consumer: %v", err)
	}
}

// TestShmRingFits pins the capacity rule: a record needs its payload
// plus the 4-byte prefix, and something larger than the ring can never
// be staged.
func TestShmRingFits(t *testing.T) {
	r := newHeapRing(128)
	if !r.fits(124) {
		t.Fatal("124-byte record should fit a 128-byte ring")
	}
	if r.fits(125) {
		t.Fatal("125-byte record cannot fit a 128-byte ring (4-byte prefix)")
	}
	if r.tryWrite(make([]byte, 125)) {
		t.Fatal("tryWrite accepted an oversized record")
	}
	// Exactly full is fine.
	if !r.tryWrite(make([]byte, 124)) {
		t.Fatal("tryWrite rejected an exactly-full record")
	}
	if r.tryWrite([]byte{1}) {
		t.Fatal("tryWrite accepted a record into a full ring")
	}
}
