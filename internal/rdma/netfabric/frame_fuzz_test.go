package netfabric

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame hammers the socket frame decoder with arbitrary bytes:
// whatever arrives, it must never panic, never over-read, and on success
// return a payload that round-trips through appendFrame. Seeds cover the
// interesting malformations: truncated length prefix, oversized frame,
// garbage after a valid frame, and a zero-length payload.
func FuzzDecodeFrame(f *testing.F) {
	// A valid single frame with payload.
	f.Add(appendFrame(nil, frData, 3, []byte("hello world")))
	// Zero-length payload (smallest legal frame).
	f.Add(appendFrame(nil, frHello, 0, nil))
	// A valid frame followed by garbage.
	f.Add(append(appendFrame(nil, frData, 1, []byte{1, 2, 3}), 0xFF, 0x00, 0x13, 0x37))
	// Truncated length prefix: a lone continuation byte.
	f.Add([]byte{0x80})
	// Length prefix alone, body missing entirely.
	f.Add([]byte{0x0A})
	// Oversized frame: length prefix far beyond maxFramePayload.
	f.Add(binary.AppendUvarint(nil, maxFramePayload+100))
	// Body claims more than the buffer holds.
	f.Add(append(binary.AppendUvarint(nil, 64), frData, 0x01))
	// Unknown kind.
	f.Add([]byte{0x02, 0x7F, 0x00})
	// Read request / response payloads embedded in frames.
	f.Add(appendFrame(nil, frReadReq, 2, appendReadReq(nil, 7, 9, 0, 128)))
	f.Add(appendFrame(nil, frReadResp, 2, []byte{0x07, readOK, 0xAA}))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, rest, err := decodeFrame(b)
		if err != nil {
			return
		}
		if fr.kind < frData || fr.kind > frReadResp {
			t.Fatalf("decoded invalid kind %d", fr.kind)
		}
		if fr.src < 0 || fr.src > 1<<20 {
			t.Fatalf("decoded out-of-range src %d", fr.src)
		}
		if len(fr.payload) > maxFramePayload {
			t.Fatalf("decoded payload of %d bytes exceeds cap", len(fr.payload))
		}
		// The frame plus the remainder must account for a prefix of b.
		consumed := len(b) - len(rest)
		if consumed <= 0 || consumed > len(b) {
			t.Fatalf("decoder consumed %d of %d bytes", consumed, len(b))
		}
		// Round-trip stability: re-encoding the decoded frame (minimal
		// varints, where the input may have used padded ones) and decoding
		// again must reproduce the same frame exactly.
		re := appendFrame(nil, fr.kind, fr.src, fr.payload)
		if len(re) > consumed {
			t.Fatalf("minimal re-encode is %d bytes, input frame only %d", len(re), consumed)
		}
		fr2, rest2, err := decodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if len(rest2) != 0 || fr2.kind != fr.kind || fr2.src != fr.src || !bytes.Equal(fr2.payload, fr.payload) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr, fr2)
		}
		// Parsers over the payload must be panic-free too.
		switch fr.kind {
		case frReadReq:
			_, _, _, _, _ = parseReadReq(fr.payload)
		case frReadResp:
			_, _, _, _ = parseReadResp(fr.payload)
		}
	})
}

// TestFrameSizeMatchesAppend pins frameSize to appendFrame's actual output
// across the size-class boundaries pooled buffers care about.
func TestFrameSizeMatchesAppend(t *testing.T) {
	for _, src := range []int{0, 1, 127, 128, 16383, 16384, 1 << 20} {
		for _, n := range []int{0, 1, 63, 64, 127, 128, 1 << 10, maxFramePayload} {
			got := len(appendFrame(nil, frData, src, make([]byte, n)))
			if want := frameSize(src, n); got != want {
				t.Fatalf("frameSize(%d, %d) = %d, appendFrame produced %d", src, n, want, got)
			}
		}
	}
}
