package netfabric

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// shmRing is a single-producer single-consumer byte ring over a shared
// memory region — the per-peer-pair lane of the shm transport. The sender
// process is the producer, the receiving rank's poll goroutine the
// consumer, and the only coordination is a pair of monotone byte cursors:
//
//	head  bytes consumed (written only by the consumer)
//	tail  bytes published (written only by the producer)
//
// Both live on their own cache line at the front of the region so the two
// sides never false-share, and both are accessed with sync/atomic — the
// release store of tail after the record bytes is what makes a record
// visible, and the acquire load on the other side is what makes its bytes
// safe to read, across processes exactly as across goroutines.
//
// Records are [u32 little-endian length][payload]; the payload is one
// encoded netfabric frame (the same codec TCP and UDP carry), and the
// fixed-width length prefix keeps parsing trivial under wraparound — both
// the prefix and the payload may wrap the ring edge and are copied in two
// spans when they do.
type shmRing struct {
	head *atomic.Uint64
	tail *atomic.Uint64
	data []byte
	size uint64
}

// ringCtrlBytes is the control prefix of a ring region: one cache line
// each for head and tail.
const ringCtrlBytes = 128

// ringAt lays a ring over mem (control prefix + data). mem must be
// 8-byte aligned — mmap regions are page aligned, and newHeapRing aligns
// its test backing explicitly.
func ringAt(mem []byte) (*shmRing, error) {
	if len(mem) <= ringCtrlBytes {
		return nil, fmt.Errorf("netfabric: ring region %d bytes, need > %d", len(mem), ringCtrlBytes)
	}
	if uintptr(unsafe.Pointer(&mem[0]))%8 != 0 {
		return nil, fmt.Errorf("netfabric: ring region misaligned")
	}
	r := &shmRing{
		head: (*atomic.Uint64)(unsafe.Pointer(&mem[0])),
		tail: (*atomic.Uint64)(unsafe.Pointer(&mem[64])),
		data: mem[ringCtrlBytes:],
	}
	r.size = uint64(len(r.data))
	return r, nil
}

// newHeapRing builds a ring over process-local memory, for tests: the
// uint64 backing guarantees the alignment mmap gives the real transport.
func newHeapRing(capacity int) *shmRing {
	words := make([]uint64, (ringCtrlBytes+capacity+7)/8)
	mem := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), ringCtrlBytes+capacity)
	r, err := ringAt(mem)
	if err != nil {
		panic(err)
	}
	return r
}

// fits reports whether a record of n payload bytes can ever be staged —
// i.e. whether it is smaller than the ring itself.
func (r *shmRing) fits(n int) bool { return uint64(4+n) <= r.size }

// tryWrite stages one record. It returns false when the ring lacks space;
// the producer retries under its spin-then-park policy. Only one producer
// may call tryWrite at a time (the shm endpoint serializes with a mutex).
func (r *shmRing) tryWrite(rec []byte) bool {
	need := uint64(4 + len(rec))
	tail := r.tail.Load()
	head := r.head.Load() // acquire: consumed bytes are reusable
	if r.size-(tail-head) < need {
		return false
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	r.copyIn(tail, hdr[:])
	r.copyIn(tail+4, rec)
	r.tail.Store(tail + need) // release: publish the record
	return true
}

// tryRead copies the next record into scratch and consumes it. ok is
// false when the ring is empty. A non-nil error means the ring state is
// corrupt (a torn or oversized record) — with a well-behaved producer
// this is unreachable, because tail is only advanced over whole records.
func (r *shmRing) tryRead(scratch []byte) (rec []byte, ok bool, err error) {
	head := r.head.Load()
	tail := r.tail.Load() // acquire: published bytes are readable
	avail := tail - head
	if avail == 0 {
		return nil, false, nil
	}
	if avail < 4 {
		return nil, false, fmt.Errorf("netfabric: shm ring torn record prefix (%d bytes)", avail)
	}
	var hdr [4]byte
	r.copyOut(head, hdr[:])
	n := uint64(binary.LittleEndian.Uint32(hdr[:]))
	if 4+n > avail {
		return nil, false, fmt.Errorf("netfabric: shm ring record %d bytes, only %d published", n, avail-4)
	}
	if n > uint64(len(scratch)) {
		return nil, false, fmt.Errorf("netfabric: shm ring record %d bytes exceeds scratch %d", n, len(scratch))
	}
	r.copyOut(head+4, scratch[:n])
	r.head.Store(head + 4 + n) // release: free the space
	return scratch[:n], true, nil
}

// copyIn writes p at ring position pos, wrapping at the edge.
func (r *shmRing) copyIn(pos uint64, p []byte) {
	off := pos % r.size
	n := copy(r.data[off:], p)
	if n < len(p) {
		copy(r.data, p[n:])
	}
}

// copyOut reads len(p) bytes from ring position pos, wrapping at the edge.
func (r *shmRing) copyOut(pos uint64, p []byte) {
	off := pos % r.size
	n := copy(p, r.data[off:])
	if n < len(p) {
		copy(p[n:], r.data)
	}
}
