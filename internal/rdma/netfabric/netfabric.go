// Package netfabric carries a mini-MPI world over real sockets and shared
// memory, so rank processes run out-of-process with true multi-core
// parallelism. It provides four rdma.Transport implementations behind the
// interface extracted from the in-process fabric:
//
//   - TCP: one connection per unordered rank pair, length-prefixed frames,
//     a per-peer writer goroutine that drains a send queue into batched
//     net.Buffers writev flushes, and pooled frame buffers so the
//     steady-state send and arrival paths allocate nothing. TCP preserves
//     per-peer ordered exactly-once delivery, so it reports Reliable() and
//     the MPI layer runs it exactly like the in-process fabric.
//
//   - UDP: one datagram per frame over a single socket. Datagrams drop,
//     duplicate, and reorder, so the transport reports !Reliable() and the
//     MPI layer interposes its reliability sublayer (sequencing, dedup,
//     reorder repair, ack/retransmit) as the delivery filter — the PR-3
//     machinery becomes load-bearing. A deterministic rdma.FaultPlan can
//     additionally be armed on the send path to force repairs at any rate.
//
//   - shm (shm.go): mmap-backed per-peer-pair SPSC ring buffers carrying
//     the same frame codec, with an adaptive spin-then-park wait, for
//     co-located ranks. Rendezvous registrations live in a per-rank shared
//     arena, so a same-host READ is a direct bounds-checked memcpy from
//     the owner's segment — zero round trips.
//
//   - hybrid (hybrid.go): consults the coordinator's host map and routes
//     each peer over shm (same host) or TCP (cross host).
//
// The rendezvous protocol's one-sided READ becomes a request/response
// exchange (frReadReq/frReadResp) against the owner's registered-region
// table; over UDP the idempotent request retries on a timeout; reads
// larger than one frame are split into pipelined sub-reads.
//
// Rank/address rendezvous at startup is a tiny JSON-lines coordinator
// (coord.go); Launch (launch.go) re-executes the current binary once per
// rank for the msgrate/replay multi-process mode.
package netfabric

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// Config parameterizes one rank's transport.
type Config struct {
	// Network selects the transport: "tcp", "udp", "shm", or "hybrid".
	Network string
	// Rank and Ranks identify this process within the job.
	Rank, Ranks int
	// Coord is the coordinator address for rank/address exchange; New
	// blocks until every rank has registered (the startup barrier).
	Coord string
	// Listen is the local bind address (default "127.0.0.1:0").
	Listen string
	// Faults arms deterministic datagram faults on the UDP send path
	// (drop, duplicate, delay — rdma.FaultPlan rates, keyed per peer).
	// Ignored for TCP, which models a reliable transport.
	Faults rdma.FaultPlan
	// Obs configures the transport's observability sink (the "fabric"
	// domain of the world's export).
	Obs obs.Options
	// SendQueue is the per-peer send-queue depth (default 512 frames);
	// data sends stall (with a CtrNetStalls tally) when it fills.
	SendQueue int
	// ReadTimeout is the per-attempt rendezvous read-retry timeout over
	// UDP (default 20ms, up to readAttempts tries).
	ReadTimeout time.Duration
	// Host names the machine this rank runs on, for hybrid locality
	// routing (default os.Hostname()). Tests and -sim-hosts override it
	// to simulate a multi-host topology on one machine.
	Host string
	// ShmDir is where shm segment files are created (default the system
	// temp dir). Peers on the same host must see the same filesystem.
	ShmDir string
	// ShmRing is the per-sender ring data capacity in bytes (default
	// 2 MiB — comfortably above the 1 MiB frame cap; min 64 KiB).
	ShmRing int
	// ShmArena is the shared rendezvous arena size in bytes (default
	// 64 MiB, backed by a sparse file so untouched pages cost nothing;
	// min 1 MiB).
	ShmArena int
}

func (c *Config) fill() error {
	switch c.Network {
	case "tcp", "udp", "shm", "hybrid":
	default:
		return fmt.Errorf("netfabric: network %q, want tcp, udp, shm, or hybrid", c.Network)
	}
	if c.Ranks < 1 || c.Rank < 0 || c.Rank >= c.Ranks {
		return fmt.Errorf("netfabric: rank %d of %d out of range", c.Rank, c.Ranks)
	}
	if c.Coord == "" {
		return fmt.Errorf("netfabric: missing coordinator address")
	}
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.SendQueue <= 0 {
		c.SendQueue = 512
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 20 * time.Millisecond
	}
	if c.ShmDir == "" {
		c.ShmDir = os.TempDir()
	}
	if c.ShmRing <= 0 {
		c.ShmRing = 2 << 20
	}
	if c.ShmRing < 64<<10 {
		return fmt.Errorf("netfabric: shm ring %d bytes, min %d", c.ShmRing, 64<<10)
	}
	if c.ShmArena <= 0 {
		c.ShmArena = 64 << 20
	}
	if c.ShmArena < 1<<20 {
		return fmt.Errorf("netfabric: shm arena %d bytes, min %d", c.ShmArena, 1<<20)
	}
	return nil
}

// New builds the transport for one rank: it binds a local socket,
// registers with the coordinator, and blocks until every rank of the job
// has done the same — the startup barrier. Peer links are established by
// Start (mpi.NewNetWorld calls it once the receive datapath exists).
func New(cfg Config) (rdma.Transport, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	switch cfg.Network {
	case "udp":
		return newUDP(cfg)
	case "shm":
		return newShm(cfg)
	case "hybrid":
		return newHybrid(cfg)
	default:
		return newTCP(cfg)
	}
}

// PendingReadCount reports the transport's in-flight outbound rendezvous
// reads — a test hook for the pending-read leak assertions. Transports
// not built by this package report 0.
func PendingReadCount(tr rdma.Transport) int {
	if c, ok := tr.(interface{ pendingReadCount() int }); ok {
		return c.pendingReadCount()
	}
	return 0
}

// base is the transport state shared by TCP and UDP: identity, the
// receive datapath, the registered-region table, the pending-read table,
// and the pooled frame buffers.
type base struct {
	rank, n int
	sink    *obs.Sink

	rq *rdma.RecvQueue
	cq *rdma.CQ

	done      chan struct{}
	closeOnce sync.Once

	// Registered memory regions, addressable by peers through frReadReq.
	mrMu    sync.Mutex
	mrs     map[uint64]*rdma.MemoryRegion
	nextKey uint64

	// In-flight outbound reads by request ID. completeRead deletes the
	// entry as it signals, so a duplicate response (UDP retry race) finds
	// nothing and is dropped.
	rdMu    sync.Mutex
	reads   map[uint64]*pendingRead
	nextReq uint64

	// framePool recycles encoded frame staging buffers (send path) and
	// scratch (UDP receive path), mirroring the fabric's wirePool.
	framePool sync.Pool
}

type pendingRead struct {
	dst  []byte
	done chan error
}

func newBase(cfg Config) base {
	return base{
		rank:    cfg.Rank,
		n:       cfg.Ranks,
		sink:    obs.New(cfg.Obs),
		done:    make(chan struct{}),
		mrs:     make(map[uint64]*rdma.MemoryRegion),
		nextKey: 1,
		reads:   make(map[uint64]*pendingRead),
	}
}

func (b *base) Rank() int      { return b.rank }
func (b *base) Size() int      { return b.n }
func (b *base) Obs() *obs.Sink { return b.sink }

// frameBuf returns a pooled buffer of at least n bytes, length 0.
func (b *base) frameBuf(n int) []byte {
	if bp, ok := b.framePool.Get().(*[]byte); ok && cap(*bp) >= n {
		return (*bp)[:0]
	}
	return make([]byte, 0, n)
}

func (b *base) frameRecycle(buf []byte) {
	f := buf[:0]
	b.framePool.Put(&f)
}

// RegisterMemory exposes buf for peer reads under a fresh rkey.
func (b *base) RegisterMemory(buf []byte) *rdma.MemoryRegion {
	b.mrMu.Lock()
	defer b.mrMu.Unlock()
	mr := &rdma.MemoryRegion{Buf: buf, RKey: b.nextKey}
	b.nextKey++
	b.mrs[mr.RKey] = mr
	return mr
}

// Deregister revokes a region; later reads fail with rdma.ErrBadKey.
func (b *base) Deregister(mr *rdma.MemoryRegion) {
	b.mrMu.Lock()
	defer b.mrMu.Unlock()
	delete(b.mrs, mr.RKey)
}

// adoptRegion publishes a region registered elsewhere (the hybrid
// transport's shm arena) under its existing rkey, so this transport's
// READ RPC path can serve it too.
func (b *base) adoptRegion(mr *rdma.MemoryRegion) {
	b.mrMu.Lock()
	defer b.mrMu.Unlock()
	b.mrs[mr.RKey] = mr
}

// regionSlice resolves (rkey, offset, length) against the local table,
// with the bounds discipline of rdma.Fabric.Read.
func (b *base) regionSlice(rkey uint64, offset, length int) ([]byte, byte) {
	b.mrMu.Lock()
	mr, ok := b.mrs[rkey]
	b.mrMu.Unlock()
	if !ok {
		return nil, readBadKey
	}
	if offset < 0 || length < 0 || offset+length > len(mr.Buf) {
		return nil, readBadBounds
	}
	return mr.Buf[offset : offset+length], readOK
}

// localRead serves a same-rank read without touching the wire.
func (b *base) localRead(dst []byte, rkey uint64, offset, length int) error {
	src, status := b.regionSlice(rkey, offset, length)
	switch status {
	case readBadKey:
		return rdma.ErrBadKey
	case readBadBounds:
		return rdma.ErrBounds
	}
	copy(dst, src)
	return nil
}

// newPendingRead registers an in-flight read and returns its request ID.
func (b *base) newPendingRead(dst []byte) (uint64, *pendingRead) {
	pr := &pendingRead{dst: dst, done: make(chan error, 1)}
	b.rdMu.Lock()
	b.nextReq++
	id := b.nextReq
	b.reads[id] = pr
	b.rdMu.Unlock()
	return id, pr
}

func (b *base) dropPendingRead(id uint64) {
	b.rdMu.Lock()
	delete(b.reads, id)
	b.rdMu.Unlock()
}

// pendingReadCount backs the PendingReadCount test hook.
func (b *base) pendingReadCount() int {
	b.rdMu.Lock()
	defer b.rdMu.Unlock()
	return len(b.reads)
}

// completeRead resolves a read response: it detaches the pending entry
// (so duplicates are ignored), copies the data, and signals the waiter.
func (b *base) completeRead(payload []byte) {
	id, status, data, err := parseReadResp(payload)
	if err != nil {
		return
	}
	b.rdMu.Lock()
	pr, ok := b.reads[id]
	delete(b.reads, id)
	b.rdMu.Unlock()
	if !ok {
		return // duplicate or abandoned
	}
	var res error
	switch status {
	case readOK:
		if len(data) != len(pr.dst) {
			res = rdma.ErrBounds
		} else {
			copy(pr.dst, data)
		}
	case readBadKey:
		res = rdma.ErrBadKey
	case readBadBounds:
		res = rdma.ErrBounds
	case readTooLarge:
		res = rdma.ErrBufferSize
	default:
		res = fmt.Errorf("netfabric: read status %d", status)
	}
	pr.done <- res
}

// serveReadPayload builds the frReadResp payload answering req. cap limits
// how much region data one response may carry (the UDP datagram budget;
// <= 0 means unlimited).
func (b *base) serveReadPayload(req []byte, cap int) ([]byte, bool) {
	reqID, rkey, offset, length, err := parseReadReq(req)
	if err != nil {
		return nil, false
	}
	src, status := b.regionSlice(rkey, offset, length)
	if status == readOK && cap > 0 && len(src) > cap {
		src, status = nil, readTooLarge
	}
	out := b.frameBuf(uvarintLen(reqID) + 1 + len(src))
	out = appendUvarint(out, reqID)
	out = append(out, status)
	out = append(out, src...)
	return out, true
}

// appendUvarint is a local alias so serveReadPayload reads clearly.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// deliverBytes pairs one received message payload with a posted bounce
// buffer and completes it, mirroring QP.deliver's oversize discipline: a
// message larger than its buffer produces an error completion carrying
// rdma.ErrBufferSize, never a silent truncation. Reports false only when
// the transport is shutting down.
func (b *base) deliverBytes(p []byte) bool {
	buf, wrID, ok := b.rq.Take(b.done)
	if !ok {
		return false
	}
	if len(p) > len(buf) {
		b.cq.Push(rdma.Completion{
			Op: rdma.OpRecv, WRID: wrID, Bytes: len(p), Data: buf[:0], Err: rdma.ErrBufferSize,
		})
		return true
	}
	n := copy(buf, p)
	b.cq.Push(rdma.Completion{Op: rdma.OpRecv, WRID: wrID, Bytes: n, Data: buf[:n]})
	return true
}

// markClosed flips the transport's done channel exactly once and fails
// every still-pending read, so no waiter outlives the links.
func (b *base) markClosed() (first bool) {
	b.closeOnce.Do(func() {
		first = true
		close(b.done)
		b.rdMu.Lock()
		for id, pr := range b.reads {
			delete(b.reads, id)
			pr.done <- rdma.ErrClosed
		}
		b.rdMu.Unlock()
	})
	return first
}

// noteStall tallies one saturated-queue data send.
func (b *base) noteStall(peer, bytes int) {
	b.sink.Counters.Inc(obs.CtrNetStalls)
	if b.sink.Enabled() {
		b.sink.Event(obs.EvNetStall, peer, uint64(peer), uint64(bytes), 0)
	}
}

// ---------------------------------------------------------------------------
// Loopback endpoint: self-sends never touch the socket. A small staging
// channel plus one delivery goroutine reproduces the QP's asynchronous
// self-loop semantics (Send returns once the payload is staged).

type loopEndpoint struct {
	b        *base
	reliable bool
	wire     chan []byte
	once     sync.Once
}

func newLoopback(b *base, reliable bool, depth int) *loopEndpoint {
	l := &loopEndpoint{b: b, reliable: reliable, wire: make(chan []byte, depth)}
	return l
}

// run drains staged self-sends into the receive datapath.
func (l *loopEndpoint) run() {
	for {
		select {
		case p := <-l.wire:
			ok := l.b.deliverBytes(p)
			l.b.frameRecycle(p)
			if !ok {
				return
			}
		case <-l.b.done:
			return
		}
	}
}

func (l *loopEndpoint) Send(data []byte, imm uint32, wrID uint64) error {
	buf := append(l.b.frameBuf(len(data)), data...)
	if l.reliable {
		select {
		case l.wire <- buf:
			return nil
		case <-l.b.done:
			l.b.frameRecycle(buf)
			return rdma.ErrClosed
		}
	}
	select {
	case l.wire <- buf:
		return nil
	case <-l.b.done:
		l.b.frameRecycle(buf)
		return rdma.ErrClosed
	default:
		// Lossy transport: surface backpressure instead of blocking; the
		// reliability sublayer retries.
		l.b.frameRecycle(buf)
		return rdma.ErrNoReceive
	}
}

func (l *loopEndpoint) SendControl(data []byte, imm uint32, wrID uint64) error {
	buf := append(l.b.frameBuf(len(data)), data...)
	select {
	case l.wire <- buf:
		return nil
	default:
		l.b.frameRecycle(buf)
		return rdma.ErrNoReceive
	}
}

func (l *loopEndpoint) Close() {}
