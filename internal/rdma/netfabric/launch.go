package netfabric

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
)

// Launch is the multi-process front door for cmd/msgrate and cmd/replay:
// invoked in a process whose flags name N ranks but no specific one, it
// starts an in-process coordinator, re-executes the current binary once
// per rank with `-rank K -coord <addr>` appended (the flag package keeps
// the last occurrence, so the appended pair overrides any earlier
// values), and waits for all of them. Children inherit stdout/stderr;
// callers make rank 0 the only writer of result files.
func Launch(ranks int) error {
	if ranks < 1 {
		return fmt.Errorf("netfabric: launch needs at least 1 rank, got %d", ranks)
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("netfabric: resolve executable: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("netfabric: coordinator listen: %w", err)
	}
	defer ln.Close()
	coordErr := make(chan error, 1)
	go func() { coordErr <- ServeCoordinator(ln, ranks) }()

	procs := make([]*exec.Cmd, 0, ranks)
	var firstErr error
	for k := 0; k < ranks; k++ {
		args := append(append([]string{}, os.Args[1:]...),
			"-rank", strconv.Itoa(k), "-coord", ln.Addr().String())
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			firstErr = fmt.Errorf("netfabric: start rank %d: %w", k, err)
			break
		}
		procs = append(procs, cmd)
	}
	for k, cmd := range procs {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("netfabric: rank %d: %w", k, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	// The coordinator returns once every rank registered; by the time all
	// children exited cleanly it must be done.
	if err := <-coordErr; err != nil {
		return fmt.Errorf("netfabric: coordinator: %w", err)
	}
	return nil
}
