package netfabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// The coordinator is the job's rendezvous point: every rank connects,
// announces its rank and data-plane address, and blocks until all N
// ranks have done the same, at which point each receives the full
// address book. Registration therefore doubles as the startup barrier —
// no rank's transport exists before every rank's socket is bound.
//
// The protocol is two JSON lines over TCP:
//
//	rank -> coord:  {"rank":K,"ranks":N,"addr":"127.0.0.1:4242"}\n
//	coord -> rank:  {"addrs":["127.0.0.1:4242",...]}\n        (or {"error":...})
//
// Hybrid ranks additionally announce the host they run on and the path of
// their shared-memory segment; the book then carries the full host map,
// which is what locality-aware routing consults to pick shm vs TCP per
// peer.

type coordHello struct {
	Rank  int    `json:"rank"`
	Ranks int    `json:"ranks"`
	Addr  string `json:"addr"`
	Host  string `json:"host,omitempty"`
	Shm   string `json:"shm,omitempty"`
}

type coordBook struct {
	Addrs []string `json:"addrs,omitempty"`
	Hosts []string `json:"hosts,omitempty"`
	Shms  []string `json:"shms,omitempty"`
	Error string   `json:"error,omitempty"`
}

// ServeCoordinator runs one rendezvous round on ln: it collects a hello
// from each of ranks distinct ranks, sends everyone the address book,
// and returns. A malformed or conflicting hello fails the whole round —
// a half-meshed job can only hang.
func ServeCoordinator(ln net.Listener, ranks int) error {
	conns := make([]net.Conn, ranks)
	addrs := make([]string, ranks)
	hosts := make([]string, ranks)
	shms := make([]string, ranks)
	anyHost, anyShm := false, false
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for got := 0; got < ranks; {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("netfabric: coordinator accept: %w", err)
		}
		conn.SetDeadline(time.Now().Add(30 * time.Second))
		var h coordHello
		if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&h); err != nil {
			conn.Close()
			return fmt.Errorf("netfabric: coordinator: bad hello: %w", err)
		}
		switch {
		case h.Ranks != ranks:
			err = fmt.Errorf("netfabric: rank %d expects %d ranks, coordinator has %d", h.Rank, h.Ranks, ranks)
		case h.Rank < 0 || h.Rank >= ranks:
			err = fmt.Errorf("netfabric: hello from out-of-range rank %d", h.Rank)
		case conns[h.Rank] != nil:
			err = fmt.Errorf("netfabric: duplicate hello from rank %d", h.Rank)
		case h.Addr == "":
			err = fmt.Errorf("netfabric: rank %d sent no address", h.Rank)
		}
		if err != nil {
			reply(conn, coordBook{Error: err.Error()})
			conn.Close()
			return err
		}
		conns[h.Rank], addrs[h.Rank] = conn, h.Addr
		hosts[h.Rank], shms[h.Rank] = h.Host, h.Shm
		anyHost = anyHost || h.Host != ""
		anyShm = anyShm || h.Shm != ""
		got++
	}
	book := coordBook{Addrs: addrs}
	if anyHost {
		book.Hosts = hosts
	}
	if anyShm {
		book.Shms = shms
	}
	for _, c := range conns {
		if err := reply(c, book); err != nil {
			return fmt.Errorf("netfabric: coordinator: send book: %w", err)
		}
	}
	return nil
}

func reply(conn net.Conn, book coordBook) error {
	b, err := json.Marshal(book)
	if err != nil {
		return err
	}
	_, err = conn.Write(append(b, '\n'))
	return err
}

// registerWithCoord announces this rank's data-plane address and blocks
// until the coordinator releases the full address book — the startup
// barrier every transport constructor passes through.
func registerWithCoord(coord string, rank, ranks int, addr string) ([]string, error) {
	book, err := registerHello(coord, coordHello{Rank: rank, Ranks: ranks, Addr: addr})
	if err != nil {
		return nil, err
	}
	return book.Addrs, nil
}

// registerHello is the full-book variant of registerWithCoord: hybrid
// ranks announce host and shm segment alongside the address and need the
// peers' host map back.
func registerHello(coord string, hello coordHello) (coordBook, error) {
	var book coordBook
	conn, err := net.DialTimeout("tcp", coord, 30*time.Second)
	if err != nil {
		return book, fmt.Errorf("netfabric: dial coordinator %s: %w", coord, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))
	b, err := json.Marshal(hello)
	if err != nil {
		return book, err
	}
	if _, err := conn.Write(append(b, '\n')); err != nil {
		return book, fmt.Errorf("netfabric: register with coordinator: %w", err)
	}
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&book); err != nil {
		return book, fmt.Errorf("netfabric: await address book: %w", err)
	}
	if book.Error != "" {
		return book, fmt.Errorf("netfabric: coordinator rejected rank %d: %s", hello.Rank, book.Error)
	}
	if len(book.Addrs) != hello.Ranks {
		return book, fmt.Errorf("netfabric: address book has %d entries, want %d", len(book.Addrs), hello.Ranks)
	}
	return book, nil
}
