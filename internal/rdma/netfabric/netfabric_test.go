package netfabric_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/rdma"
	"repro/internal/rdma/netfabric"
)

// startNetWorlds spins up a full out-of-process-shaped job inside one test
// process: a coordinator on a loopback listener and n transports + worlds,
// one per rank, created concurrently (New blocks on the rendezvous
// barrier, so sequential creation would deadlock).
func startNetWorlds(t *testing.T, network string, n int, opts mpi.Options, faults rdma.FaultPlan) []*mpi.World {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("coordinator listen: %v", err)
	}
	go netfabric.ServeCoordinator(ln, n)

	worlds := make([]*mpi.World, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			tr, err := netfabric.New(netfabric.Config{
				Network: network, Rank: k, Ranks: n,
				Coord: ln.Addr().String(), Faults: faults,
			})
			if err != nil {
				errs[k] = err
				return
			}
			worlds[k], errs[k] = mpi.NewNetWorld(tr, opts)
		}(k)
	}
	wg.Wait()
	ln.Close()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", k, err)
		}
	}
	t.Cleanup(func() {
		for _, w := range worlds {
			if w != nil {
				w.Close()
			}
		}
	})
	return worlds
}

// ringWorkload sends eager and rendezvous messages around the ring and
// verifies every payload byte, on every world concurrently.
func ringWorkload(t *testing.T, worlds []*mpi.World, reps, size int) {
	t.Helper()
	n := len(worlds)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := worlds[r].LocalProcs()[0].World()
			next, prev := (r+1)%n, (r+n-1)%n
			for i := 0; i < reps; i++ {
				want := payload(prev, i, size)
				buf := make([]byte, size)
				rreq, err := c.Irecv(prev, i, buf)
				if err != nil {
					errCh <- fmt.Errorf("rank %d irecv rep %d: %v", r, i, err)
					return
				}
				if err := c.Send(next, i, payload(r, i, size)); err != nil {
					errCh <- fmt.Errorf("rank %d send rep %d: %v", r, i, err)
					return
				}
				st, err := rreq.Wait()
				if err != nil {
					errCh <- fmt.Errorf("rank %d recv rep %d: %v", r, i, err)
					return
				}
				if st.Count != size || !bytes.Equal(buf[:st.Count], want) {
					errCh <- fmt.Errorf("rank %d rep %d: payload mismatch (%d bytes)", r, i, st.Count)
					return
				}
			}
			errCh <- c.Barrier()
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func payload(rank, rep, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(rank*31 + rep*7 + i)
	}
	return b
}

func TestTCPRingEagerAndRendezvous(t *testing.T) {
	opts := mpi.Options{EagerLimit: 256}
	worlds := startNetWorlds(t, "tcp", 3, opts, rdma.FaultPlan{})
	// Eager traffic (64 < EagerLimit), then rendezvous (8192 > EagerLimit,
	// exercising the frReadReq/frReadResp read path).
	ringWorkload(t, worlds, 20, 64)
	ringWorkload(t, worlds, 5, 8192)
}

func TestTCPOffloadEngine(t *testing.T) {
	opts := mpi.Options{Engine: mpi.EngineOffload, EagerLimit: 256}
	worlds := startNetWorlds(t, "tcp", 2, opts, rdma.FaultPlan{})
	ringWorkload(t, worlds, 10, 64)
}

func TestUDPRingWithFaults(t *testing.T) {
	faults := rdma.FaultPlan{Seed: 42}
	faults.Drop = 0.05
	faults.Duplicate = 0.02
	faults.Delay = 0.02
	opts := mpi.Options{EagerLimit: 256, RetxTimeout: time.Millisecond}
	worlds := startNetWorlds(t, "udp", 2, opts, faults)
	ringWorkload(t, worlds, 40, 64)
	ringWorkload(t, worlds, 4, 4096)

	var retx, injected uint64
	for _, w := range worlds {
		retx += w.ReliabilityStats().Retransmits
		fs := w.FaultStats()
		injected += fs.Dropped + fs.Duplicated + fs.Delayed
	}
	if injected == 0 {
		t.Fatalf("fault plan injected nothing (want drops/dups/delays at 5%%/2%%/2%%)")
	}
	if retx == 0 {
		t.Fatalf("no retransmissions despite %d injected faults", injected)
	}
}

func TestUDPLossless(t *testing.T) {
	// Loopback UDP with no injected faults should still complete (the
	// reliability layer is armed but mostly idle).
	worlds := startNetWorlds(t, "udp", 2, mpi.Options{EagerLimit: 256}, rdma.FaultPlan{})
	ringWorkload(t, worlds, 10, 64)
}

func TestCoordinatorRejectsDuplicateRank(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() { done <- netfabric.ServeCoordinator(ln, 2) }()

	// Two hellos claiming the same rank: the round must fail, not hang.
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := fmt.Fprintf(conn, `{"rank":0,"ranks":2,"addr":"127.0.0.1:1"}`+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("coordinator accepted a short round")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not fail the round")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []netfabric.Config{
		{Network: "sctp", Rank: 0, Ranks: 2, Coord: "x"},
		{Network: "tcp", Rank: 2, Ranks: 2, Coord: "x"},
		{Network: "tcp", Rank: -1, Ranks: 2, Coord: "x"},
		{Network: "udp", Rank: 0, Ranks: 0, Coord: "x"},
		{Network: "tcp", Rank: 0, Ranks: 2},
	}
	for i, cfg := range cases {
		if _, err := netfabric.New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}
