package netfabric_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/rdma"
	"repro/internal/rdma/netfabric"
)

// startNetWorlds spins up a full out-of-process-shaped job inside one test
// process: a coordinator on a loopback listener and n transports + worlds,
// one per rank, created concurrently (New blocks on the rendezvous
// barrier, so sequential creation would deadlock).
func startNetWorlds(t *testing.T, network string, n int, opts mpi.Options, faults rdma.FaultPlan) []*mpi.World {
	return startNetWorldsCfg(t, network, n, opts, faults, nil)
}

// startNetWorldsCfg is startNetWorlds with a per-rank Config hook (hybrid
// tests use it to assign simulated hosts).
func startNetWorldsCfg(t *testing.T, network string, n int, opts mpi.Options, faults rdma.FaultPlan, mod func(rank int, cfg *netfabric.Config)) []*mpi.World {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("coordinator listen: %v", err)
	}
	go netfabric.ServeCoordinator(ln, n)

	shmDir := ""
	if network == "shm" || network == "hybrid" {
		shmDir = t.TempDir()
	}
	worlds := make([]*mpi.World, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cfg := netfabric.Config{
				Network: network, Rank: k, Ranks: n,
				Coord: ln.Addr().String(), Faults: faults, ShmDir: shmDir,
			}
			if mod != nil {
				mod(k, &cfg)
			}
			tr, err := netfabric.New(cfg)
			if err != nil {
				errs[k] = err
				return
			}
			worlds[k], errs[k] = mpi.NewNetWorld(tr, opts)
		}(k)
	}
	wg.Wait()
	ln.Close()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", k, err)
		}
	}
	t.Cleanup(func() {
		for _, w := range worlds {
			if w != nil {
				w.Close()
			}
		}
	})
	return worlds
}

// ringWorkload sends eager and rendezvous messages around the ring and
// verifies every payload byte, on every world concurrently.
func ringWorkload(t *testing.T, worlds []*mpi.World, reps, size int) {
	t.Helper()
	n := len(worlds)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := worlds[r].LocalProcs()[0].World()
			next, prev := (r+1)%n, (r+n-1)%n
			for i := 0; i < reps; i++ {
				want := payload(prev, i, size)
				buf := make([]byte, size)
				rreq, err := c.Irecv(prev, i, buf)
				if err != nil {
					errCh <- fmt.Errorf("rank %d irecv rep %d: %v", r, i, err)
					return
				}
				if err := c.Send(next, i, payload(r, i, size)); err != nil {
					errCh <- fmt.Errorf("rank %d send rep %d: %v", r, i, err)
					return
				}
				st, err := rreq.Wait()
				if err != nil {
					errCh <- fmt.Errorf("rank %d recv rep %d: %v", r, i, err)
					return
				}
				if st.Count != size || !bytes.Equal(buf[:st.Count], want) {
					errCh <- fmt.Errorf("rank %d rep %d: payload mismatch (%d bytes)", r, i, st.Count)
					return
				}
			}
			errCh <- c.Barrier()
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func payload(rank, rep, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(rank*31 + rep*7 + i)
	}
	return b
}

func TestTCPRingEagerAndRendezvous(t *testing.T) {
	opts := mpi.Options{EagerLimit: 256}
	worlds := startNetWorlds(t, "tcp", 3, opts, rdma.FaultPlan{})
	// Eager traffic (64 < EagerLimit), then rendezvous (8192 > EagerLimit,
	// exercising the frReadReq/frReadResp read path).
	ringWorkload(t, worlds, 20, 64)
	ringWorkload(t, worlds, 5, 8192)
}

func TestTCPOffloadEngine(t *testing.T) {
	opts := mpi.Options{Engine: mpi.EngineOffload, EagerLimit: 256}
	worlds := startNetWorlds(t, "tcp", 2, opts, rdma.FaultPlan{})
	ringWorkload(t, worlds, 10, 64)
}

func TestUDPRingWithFaults(t *testing.T) {
	faults := rdma.FaultPlan{Seed: 42}
	faults.Drop = 0.05
	faults.Duplicate = 0.02
	faults.Delay = 0.02
	opts := mpi.Options{EagerLimit: 256, RetxTimeout: time.Millisecond}
	worlds := startNetWorlds(t, "udp", 2, opts, faults)
	ringWorkload(t, worlds, 40, 64)
	ringWorkload(t, worlds, 4, 4096)

	var retx, injected uint64
	for _, w := range worlds {
		retx += w.ReliabilityStats().Retransmits
		fs := w.FaultStats()
		injected += fs.Dropped + fs.Duplicated + fs.Delayed
	}
	if injected == 0 {
		t.Fatalf("fault plan injected nothing (want drops/dups/delays at 5%%/2%%/2%%)")
	}
	if retx == 0 {
		t.Fatalf("no retransmissions despite %d injected faults", injected)
	}
}

func TestUDPLossless(t *testing.T) {
	// Loopback UDP with no injected faults should still complete (the
	// reliability layer is armed but mostly idle).
	worlds := startNetWorlds(t, "udp", 2, mpi.Options{EagerLimit: 256}, rdma.FaultPlan{})
	ringWorkload(t, worlds, 10, 64)
}

// fabricCounters sums the named counter across every world's fabric sink.
func fabricCounters(t *testing.T, worlds []*mpi.World, name string) uint64 {
	t.Helper()
	var total uint64
	for _, w := range worlds {
		for _, nd := range w.ObsSinks() {
			if nd.Name == "fabric" {
				total += nd.Sink.Counters.Snapshot()[name]
			}
		}
	}
	return total
}

func TestShmRingEagerAndRendezvous(t *testing.T) {
	opts := mpi.Options{EagerLimit: 256}
	worlds := startNetWorlds(t, "shm", 3, opts, rdma.FaultPlan{})
	// Eager traffic through the rings, then rendezvous through the shared
	// arena (8192 > EagerLimit: zero-round-trip arena reads, no READ RPC).
	ringWorkload(t, worlds, 20, 64)
	ringWorkload(t, worlds, 5, 8192)
	if got := fabricCounters(t, worlds, "shm_tx_frames"); got == 0 {
		t.Fatal("no frames staged into shm rings")
	}
	if got := fabricCounters(t, worlds, "shm_reads"); got == 0 {
		t.Fatal("rendezvous traffic produced no zero-round-trip arena reads")
	}
	if got := fabricCounters(t, worlds, "net_read_reqs"); got != 0 {
		t.Fatalf("pure shm world issued %d READ RPCs", got)
	}
}

func TestShmOffloadEngine(t *testing.T) {
	opts := mpi.Options{Engine: mpi.EngineOffload, EagerLimit: 256}
	worlds := startNetWorlds(t, "shm", 2, opts, rdma.FaultPlan{})
	ringWorkload(t, worlds, 10, 64)
}

func TestHybridTwoSimulatedHosts(t *testing.T) {
	// Ranks 0,1 on hostA and 2,3 on hostB: the ring 0→1→2→3→0 then carries
	// two same-host hops (shm) and two cross-host hops (TCP), so both legs
	// and both rendezvous read paths are load-bearing.
	opts := mpi.Options{EagerLimit: 256}
	hosts := func(rank int, cfg *netfabric.Config) {
		if rank < 2 {
			cfg.Host = "hostA"
		} else {
			cfg.Host = "hostB"
		}
	}
	worlds := startNetWorldsCfg(t, "hybrid", 4, opts, rdma.FaultPlan{}, hosts)
	ringWorkload(t, worlds, 20, 64)
	ringWorkload(t, worlds, 5, 8192)
	if got := fabricCounters(t, worlds, "shm_tx_frames"); got == 0 {
		t.Fatal("hybrid routed no same-host frames over shm")
	}
	if got := fabricCounters(t, worlds, "net_tx_frames"); got == 0 {
		t.Fatal("hybrid routed no cross-host frames over TCP")
	}
	if got := fabricCounters(t, worlds, "shm_reads"); got == 0 {
		t.Fatal("same-host rendezvous produced no arena reads")
	}
	if got := fabricCounters(t, worlds, "net_read_reqs"); got == 0 {
		t.Fatal("cross-host rendezvous produced no READ RPCs")
	}
}

func TestHybridSingleHost(t *testing.T) {
	// Every rank on one host: hybrid must degenerate to pure shm routing
	// (the TCP mesh stays up but carries no data).
	opts := mpi.Options{EagerLimit: 256}
	worlds := startNetWorldsCfg(t, "hybrid", 2, opts, rdma.FaultPlan{},
		func(rank int, cfg *netfabric.Config) { cfg.Host = "onehost" })
	ringWorkload(t, worlds, 10, 64)
	ringWorkload(t, worlds, 2, 4096)
	if got := fabricCounters(t, worlds, "net_tx_frames"); got != 0 {
		t.Fatalf("single-host hybrid sent %d frames over TCP", got)
	}
	if got := fabricCounters(t, worlds, "shm_tx_frames"); got == 0 {
		t.Fatal("single-host hybrid staged nothing over shm")
	}
}

// TestChunkedTCPRendezvous pins the chunked READ path: rendezvous
// payloads at the 1 MiB frame-cap boundary and well past it must arrive
// byte-exact (each splits into pipelined sub-reads on the wire).
func TestChunkedTCPRendezvous(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MiB rendezvous transfers")
	}
	opts := mpi.Options{EagerLimit: 256}
	worlds := startNetWorlds(t, "tcp", 2, opts, rdma.FaultPlan{})
	for _, size := range []int{1<<20 - 1, 1<<20 + 1, 4 << 20} {
		ringWorkload(t, worlds, 1, size)
	}
}

// TestChunkedUDPRendezvous does the same over the datagram transport:
// sizes just past maxUDPRead (60000) and at 1 MiB split into windowed
// sub-reads, each with its own retry loop.
func TestChunkedUDPRendezvous(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk rendezvous transfers")
	}
	opts := mpi.Options{EagerLimit: 256}
	worlds := startNetWorlds(t, "udp", 2, opts, rdma.FaultPlan{})
	for _, size := range []int{60001, 1 << 20} {
		ringWorkload(t, worlds, 1, size)
	}
}

// TestUDPReadTimeoutDropsPending forces total-timeout failures (the peer
// transport is never started, so requests land in its kernel buffer
// unanswered) and asserts the pending-read table ends empty — the leak
// the deferred drop exists to prevent, for single-chunk and chunked
// reads alike.
func TestUDPReadTimeoutDropsPending(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go netfabric.ServeCoordinator(ln, 2)
	trs := make([]rdma.Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			trs[k], errs[k] = netfabric.New(netfabric.Config{
				Network: "udp", Rank: k, Ranks: 2,
				Coord: ln.Addr().String(), ReadTimeout: time.Millisecond,
			})
		}(k)
	}
	wg.Wait()
	ln.Close()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", k, err)
		}
	}
	t.Cleanup(func() {
		trs[0].Close()
		trs[1].Close()
	})
	if err := trs[0].Start(rdma.NewRecvQueue(16), rdma.NewCQ()); err != nil {
		t.Fatal(err)
	}

	if err := trs[0].Read(1, make([]byte, 100), 7, 0, 100); err == nil {
		t.Fatal("single-chunk read against a silent peer succeeded")
	}
	if err := trs[0].Read(1, make([]byte, 150_000), 7, 0, 150_000); err == nil {
		t.Fatal("chunked read against a silent peer succeeded")
	}
	if got := netfabric.PendingReadCount(trs[0]); got != 0 {
		t.Fatalf("%d pending-read entries leaked after forced timeouts", got)
	}
}

func TestCoordinatorRejectsDuplicateRank(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() { done <- netfabric.ServeCoordinator(ln, 2) }()

	// Two hellos claiming the same rank: the round must fail, not hang.
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := fmt.Fprintf(conn, `{"rank":0,"ranks":2,"addr":"127.0.0.1:1"}`+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("coordinator accepted a short round")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not fail the round")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []netfabric.Config{
		{Network: "sctp", Rank: 0, Ranks: 2, Coord: "x"},
		{Network: "tcp", Rank: 2, Ranks: 2, Coord: "x"},
		{Network: "tcp", Rank: -1, Ranks: 2, Coord: "x"},
		{Network: "udp", Rank: 0, Ranks: 0, Coord: "x"},
		{Network: "tcp", Rank: 0, Ranks: 2},
		{Network: "shm", Rank: 0, Ranks: 2, Coord: "x", ShmRing: 1 << 10},
		{Network: "hybrid", Rank: 0, Ranks: 2, Coord: "x", ShmArena: 1 << 10},
	}
	for i, cfg := range cases {
		if _, err := netfabric.New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}
