package netfabric

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// maxUDPRead bounds how much registered-region data one frReadResp
// datagram may carry. Reads larger than this are split into sub-reads of
// at most maxUDPRead bytes (udpReadWindow in flight at a time), so the
// cap sizes datagrams without capping rendezvous payloads.
const maxUDPRead = 60000

// udpReadWindow is how many sub-reads of one chunked rendezvous read may
// be in flight concurrently — enough to pipeline the retry latency,
// small enough not to burst-drop on a lossy link.
const udpReadWindow = 4

// readAttempts is how many times an unanswered frReadReq is re-sent
// before the read fails. Requests are idempotent, so retries are safe.
const readAttempts = 8

// udpTransport carries every frame as one datagram on a single socket.
// Datagrams drop, duplicate, and reorder — the transport reports
// !Reliable() and the MPI reliability sublayer (sequencing, dedup,
// reorder repair, sack/retransmit) becomes the delivery filter. A
// deterministic rdma.FaultPlan on the send path forces those repairs at
// any configured rate, with per-peer splitmix64 streams exactly like the
// in-process fault injector.
type udpTransport struct {
	base
	cfg   Config
	conn  *net.UDPConn
	peers []*udpEndpoint // nil at [rank]
	loop  *loopEndpoint
	wg    sync.WaitGroup
}

func newUDP(cfg Config) (rdma.Transport, error) {
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netfabric: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netfabric: listen udp: %w", err)
	}
	addrs, err := registerWithCoord(cfg.Coord, cfg.Rank, cfg.Ranks, conn.LocalAddr().String())
	if err != nil {
		conn.Close()
		return nil, err
	}
	t := &udpTransport{base: newBase(cfg), cfg: cfg, conn: conn}
	t.peers = make([]*udpEndpoint, cfg.Ranks)
	for j, a := range addrs {
		if j == cfg.Rank {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("netfabric: peer %d addr %q: %w", j, a, err)
		}
		t.peers[j] = newUDPEndpoint(t, j, ua)
	}
	t.loop = newLoopback(&t.base, false, cfg.SendQueue)
	return t, nil
}

func (t *udpTransport) Reliable() bool { return false }

func (t *udpTransport) Endpoint(peer int) rdma.Endpoint {
	if peer == t.rank {
		return t.loop
	}
	return t.peers[peer]
}

func (t *udpTransport) Start(rq *rdma.RecvQueue, cq *rdma.CQ) error {
	t.rq, t.cq = rq, cq
	t.wg.Add(2)
	go func() { defer t.wg.Done(); t.loop.run() }()
	go func() { defer t.wg.Done(); t.reader() }()
	return nil
}

// reader drains the socket. Each datagram is one frame; data payloads are
// copied into a posted bounce buffer by deliverBytes, and anything
// malformed is dropped — over UDP, garbage is indistinguishable from
// line noise and the reliability layer repairs the loss.
func (t *udpTransport) reader() {
	scratch := make([]byte, 64<<10)
	for {
		n, _, err := t.conn.ReadFromUDP(scratch)
		if err != nil {
			return // socket closed
		}
		f, _, err := decodeFrame(scratch[:n])
		if err != nil || f.src < 0 || f.src >= t.n {
			continue
		}
		t.sink.Counters.Inc(obs.CtrNetRxFrames)
		t.sink.Counters.Add(obs.CtrNetRxBytes, uint64(len(f.payload)))
		switch f.kind {
		case frData:
			if !t.deliverBytes(f.payload) {
				return
			}
		case frReadReq:
			if resp, ok := t.serveReadPayload(f.payload, maxUDPRead); ok {
				if ep := t.peers[f.src]; ep != nil {
					ep.writeFrame(frReadResp, resp, false)
				}
				t.frameRecycle(resp)
			}
		case frReadResp:
			t.completeRead(f.payload)
		}
	}
}

// Read satisfies a rendezvous read over the lossy link. Requests larger
// than one datagram's budget are split into sub-reads of maxUDPRead
// bytes, up to udpReadWindow in flight concurrently; each sub-read
// round-trips its own idempotent frReadReq with timeout-driven retries.
// Every failure path — timeout exhaustion included — drops its pending
// entry, so abandoned reads never leak table space.
func (t *udpTransport) Read(owner int, dst []byte, rkey uint64, offset, length int) error {
	if length != len(dst) {
		return rdma.ErrBounds
	}
	if owner == t.rank {
		return t.localRead(dst, rkey, offset, length)
	}
	if owner < 0 || owner >= t.n {
		return rdma.ErrBadKey
	}
	ep := t.peers[owner]
	if length <= maxUDPRead {
		return t.readChunk(ep, owner, dst, rkey, offset, length)
	}
	var (
		sem      = make(chan struct{}, udpReadWindow)
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for off := 0; off < length; off += maxUDPRead {
		n := min(length-off, maxUDPRead)
		sem <- struct{}{}
		errMu.Lock()
		failed := firstErr != nil
		errMu.Unlock()
		if failed {
			<-sem
			break
		}
		wg.Add(1)
		go func(off, n int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := t.readChunk(ep, owner, dst[off:off+n], rkey, offset+off, n); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(off, n)
	}
	wg.Wait()
	return firstErr
}

// readChunk round-trips one sub-read with timeout-driven retries:
// requests and responses are both droppable, and the request is
// idempotent, so the loop re-sends until a verdict arrives. Each retry
// is tallied on CtrNetReadRetries. The deferred drop guarantees the
// pending-read table entry dies with the call on every path, including
// timeout exhaustion.
func (t *udpTransport) readChunk(ep *udpEndpoint, owner int, dst []byte, rkey uint64, offset, length int) error {
	id, pr := t.newPendingRead(dst)
	defer t.dropPendingRead(id)
	req := appendReadReq(t.frameBuf(32), id, rkey, offset, length)
	defer t.frameRecycle(req)
	t.sink.Counters.Inc(obs.CtrNetReadReqs)

	timeout := t.cfg.ReadTimeout
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for attempt := 0; attempt < readAttempts; attempt++ {
		if attempt > 0 {
			t.sink.Counters.Inc(obs.CtrNetReadRetries)
		}
		// The request itself goes through the fault injector: a "dropped"
		// read request is exactly the loss the retry loop exists to absorb.
		ep.writeFrame(frReadReq, req, true)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(timeout)
		select {
		case err := <-pr.done:
			return err
		case <-timer.C:
			timeout *= 2
		case <-t.done:
			return rdma.ErrClosed
		}
	}
	return fmt.Errorf("netfabric: read from rank %d timed out after %d attempts", owner, readAttempts)
}

func (t *udpTransport) Close() error {
	if !t.markClosed() {
		return nil
	}
	t.conn.Close()
	t.wg.Wait()
	return nil
}

// udpEndpoint sends to one peer. Sends never block: WriteToUDP either
// queues in the kernel or drops, matching the fire-and-forget semantics
// the reliability layer is built for.
type udpEndpoint struct {
	t    *udpTransport
	rank int
	addr *net.UDPAddr

	// Deterministic fault stream, mirroring the in-process injector: each
	// faultable send draws a fixed number of PRNG values under the lock,
	// so decisions are a pure function of (seed, peer pair, send ordinal).
	mu       sync.Mutex
	rng      uint64
	rates    rdma.FaultRates
	active   bool
	held     []byte // a delayed datagram awaiting re-injection
	heldSpan int
}

func newUDPEndpoint(t *udpTransport, rank int, addr *net.UDPAddr) *udpEndpoint {
	ep := &udpEndpoint{t: t, rank: rank, addr: addr}
	plan := t.cfg.Faults
	ep.rates = plan.FaultRates
	if ep.rates.DelaySpan <= 0 {
		ep.rates.DelaySpan = 1
	}
	ep.active = plan.Active()
	// Stream seed mixes the ordered pair (me -> peer) so the two
	// directions of a link fault independently, as two QPs would.
	ep.rng = splitmix(plan.Seed ^ (uint64(t.rank*t.n+rank)+1)*0x9E3779B97F4A7C15)
	return ep
}

// splitmix is the SplitMix64 step (same generator as the in-process
// injector, repro/internal/rdma/fault.go).
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (ep *udpEndpoint) next() float64 {
	ep.rng = splitmix(ep.rng)
	return float64(ep.rng>>11) / (1 << 53)
}

// writeFrame encodes and transmits one frame. With faultable set the
// deterministic stream may drop, duplicate, or delay the datagram; sack
// and read-response traffic goes out un-faulted (matching the in-process
// injector, which exempts SendControl).
func (ep *udpEndpoint) writeFrame(kind byte, payload []byte, faultable bool) {
	t := ep.t
	buf := appendFrame(t.frameBuf(frameSize(t.rank, len(payload))), kind, t.rank, payload)
	if faultable && ep.active {
		buf = ep.inject(buf)
		if buf == nil {
			return
		}
	}
	ep.transmit(buf)
	t.frameRecycle(buf)
}

// inject applies one send's fault verdict. It may consume buf (drop,
// delay) and may return a previously delayed datagram for transmission
// alongside; the caller transmits whatever comes back.
func (ep *udpEndpoint) inject(buf []byte) []byte {
	t := ep.t
	ep.mu.Lock()
	// Fixed draw order keeps the stream aligned regardless of verdicts.
	drop := ep.next() < ep.rates.Drop
	dup := ep.next() < ep.rates.Duplicate
	delay := ep.next() < ep.rates.Delay

	// A held datagram re-enters the wire once enough sends overtake it.
	var release []byte
	if ep.held != nil {
		ep.heldSpan--
		if ep.heldSpan <= 0 {
			release = ep.held
			ep.held = nil
		}
	}
	switch {
	case drop:
		t.sink.Counters.Inc(obs.CtrFaultDropped)
		t.frameRecycle(buf)
		buf = nil
	case dup:
		t.sink.Counters.Inc(obs.CtrFaultDuplicated)
		ep.mu.Unlock()
		ep.transmit(buf) // first copy; caller sends the second
		ep.mu.Lock()
	case delay && ep.held == nil:
		t.sink.Counters.Inc(obs.CtrFaultDelayed)
		ep.held = buf
		ep.heldSpan = ep.rates.DelaySpan
		buf = nil
	}
	ep.mu.Unlock()
	if release != nil {
		ep.transmit(release)
		t.frameRecycle(release)
	}
	return buf
}

func (ep *udpEndpoint) transmit(buf []byte) {
	t := ep.t
	if _, err := t.conn.WriteToUDP(buf, ep.addr); err != nil {
		return
	}
	t.sink.Counters.Inc(obs.CtrNetTxFrames)
	t.sink.Counters.Add(obs.CtrNetTxBytes, uint64(len(buf)))
	t.sink.Counters.Inc(obs.CtrNetFlushes)
}

func (ep *udpEndpoint) Send(data []byte, imm uint32, wrID uint64) error {
	select {
	case <-ep.t.done:
		return rdma.ErrClosed
	default:
	}
	ep.writeFrame(frData, data, true)
	return nil
}

// SendControl transmits un-faulted: sacks are the repair channel, and the
// in-process fabric gives them the same exemption.
func (ep *udpEndpoint) SendControl(data []byte, imm uint32, wrID uint64) error {
	select {
	case <-ep.t.done:
		return rdma.ErrClosed
	default:
	}
	ep.writeFrame(frData, data, false)
	return nil
}

func (ep *udpEndpoint) Close() {}
