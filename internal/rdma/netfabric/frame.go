package netfabric

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Frame kinds. One codec covers both transports: on TCP a frame is one
// unit of the byte stream, on UDP a frame is one datagram.
const (
	// frData carries one MPI wire message (64-byte header + body) —
	// eager, coalesced kindEagerBatch, RTS, ACK, or sack — unchanged.
	frData byte = iota + 1
	// frHello opens a TCP link: the dialer identifies its rank (empty
	// payload; the src field carries the rank).
	frHello
	// frReadReq asks the owner of a registered region for its bytes —
	// the request half of the rendezvous one-sided READ.
	// Payload: reqID uvarint, rkey uvarint, offset uvarint, length uvarint.
	frReadReq
	// frReadResp answers a read request.
	// Payload: reqID uvarint, status byte, data.
	frReadResp
)

// Read-response status codes.
const (
	readOK byte = iota
	readBadKey
	readBadBounds
	readTooLarge // region slice exceeds the transport's frame budget
)

// maxFramePayload bounds one frame's payload: the slab's largest size
// class. The decoder rejects anything bigger before allocating or reading,
// so a hostile or corrupt length prefix cannot drive memory use.
const maxFramePayload = 1 << 20

// Encoded frame layout, after the varint discipline of
// internal/trace/codec.go (uvarint for the almost-always-small integers):
//
//	length  uvarint  // bytes that follow this field (kind + src + payload)
//	kind    byte
//	src     uvarint  // sending rank
//	payload (length - 1 - len(src varint)) bytes
type frame struct {
	kind    byte
	src     int
	payload []byte
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// appendFrame appends one encoded frame to dst.
func appendFrame(dst []byte, kind byte, src int, payload []byte) []byte {
	body := 1 + uvarintLen(uint64(src)) + len(payload)
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(src))
	return append(dst, payload...)
}

// frameSize is the exact encoded size appendFrame will produce, so pooled
// frame buffers can be sized without a second pass.
func frameSize(src int, payload int) int {
	body := 1 + uvarintLen(uint64(src)) + payload
	return uvarintLen(uint64(body)) + body
}

// decodeFrame parses one frame from the front of b and returns the rest of
// the buffer (further frames, or garbage the caller rejects). The payload
// aliases b. Every length is validated before use, so arbitrary bytes can
// never panic, over-read, or drive a huge allocation.
func decodeFrame(b []byte) (frame, []byte, error) {
	body, n := binary.Uvarint(b)
	if n <= 0 {
		return frame{}, nil, fmt.Errorf("netfabric: truncated frame length")
	}
	if body < 2 {
		return frame{}, nil, fmt.Errorf("netfabric: frame body %d bytes, need kind+src", body)
	}
	if body > maxFramePayload {
		return frame{}, nil, fmt.Errorf("netfabric: frame body %d exceeds %d", body, maxFramePayload)
	}
	b = b[n:]
	if uint64(len(b)) < body {
		return frame{}, nil, fmt.Errorf("netfabric: frame needs %d bytes, have %d", body, len(b))
	}
	kind := b[0]
	if kind < frData || kind > frReadResp {
		return frame{}, nil, fmt.Errorf("netfabric: unknown frame kind %d", kind)
	}
	src, sn := binary.Uvarint(b[1:body])
	if sn <= 0 {
		return frame{}, nil, fmt.Errorf("netfabric: truncated frame src")
	}
	if src > 1<<20 {
		return frame{}, nil, fmt.Errorf("netfabric: frame src %d out of range", src)
	}
	f := frame{kind: kind, src: int(src), payload: b[1+sn : body : body]}
	return f, b[body:], nil
}

// appendReadReq encodes a frReadReq payload.
func appendReadReq(dst []byte, reqID, rkey uint64, offset, length int) []byte {
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, rkey)
	dst = binary.AppendUvarint(dst, uint64(offset))
	return binary.AppendUvarint(dst, uint64(length))
}

// parseReadReq decodes a frReadReq payload.
func parseReadReq(p []byte) (reqID, rkey uint64, offset, length int, err error) {
	var vals [4]uint64
	for i := range vals {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, 0, 0, 0, fmt.Errorf("netfabric: truncated read request (field %d)", i)
		}
		vals[i] = v
		p = p[n:]
	}
	// Chunked reads carry offsets well past the frame cap; only the
	// per-request length must fit in one response frame. The offset bound
	// is a plain sanity cap against corrupt varints.
	if vals[2] > 1<<40 || vals[3] > maxFramePayload {
		return 0, 0, 0, 0, fmt.Errorf("netfabric: read request range out of bounds")
	}
	return vals[0], vals[1], int(vals[2]), int(vals[3]), nil
}

// parseReadResp decodes a frReadResp payload; data aliases p.
func parseReadResp(p []byte) (reqID uint64, status byte, data []byte, err error) {
	id, n := binary.Uvarint(p)
	if n <= 0 || len(p) < n+1 {
		return 0, 0, nil, fmt.Errorf("netfabric: truncated read response")
	}
	return id, p[n], p[n+1:], nil
}
