package netfabric

import (
	"errors"
	"fmt"
	"net"
	"os"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// hybridTransport routes each peer by locality: co-located ranks talk
// over the shm rings, cross-host ranks over TCP. One coordinator
// registration announces all three facts about this rank — TCP address,
// host name, shm segment path — and the returned host map decides, per
// peer, which leg owns the link.
//
// The TCP leg meshes every peer (not just cross-host ones): it is also
// the fallback READ RPC path for the rare rendezvous registration the
// shm arena could not hold. Same-host data frames never touch it, so the
// idle connections cost only descriptors.
//
// Rendezvous registrations go to the shm arena and are simultaneously
// adopted into the TCP leg's region table under the same rkey: same-host
// peers memcpy straight from the arena, cross-host peers round-trip the
// READ RPC, and both resolve the rkey the RTS carried.
type hybridTransport struct {
	shm      *shmTransport
	tcp      *tcpTransport
	sameHost []bool
}

func newHybrid(cfg Config) (rdma.Transport, error) {
	host := cfg.Host
	if host == "" {
		h, err := os.Hostname()
		if err != nil {
			return nil, fmt.Errorf("netfabric: hostname: %w", err)
		}
		host = h
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netfabric: listen: %w", err)
	}
	seg, err := createShmSegment(cfg.ShmDir, cfg.Rank, cfg.Ranks, cfg.ShmRing, cfg.ShmArena)
	if err != nil {
		ln.Close()
		return nil, err
	}
	book, err := registerHello(cfg.Coord, coordHello{
		Rank: cfg.Rank, Ranks: cfg.Ranks, Addr: ln.Addr().String(), Host: host, Shm: seg.path,
	})
	if err != nil {
		seg.close()
		ln.Close()
		return nil, err
	}
	if len(book.Hosts) != cfg.Ranks || len(book.Shms) != cfg.Ranks {
		seg.close()
		ln.Close()
		return nil, fmt.Errorf("netfabric: hybrid book missing host map (%d hosts, %d segments, want %d)",
			len(book.Hosts), len(book.Shms), cfg.Ranks)
	}
	sameHost := make([]bool, cfg.Ranks)
	for j, h := range book.Hosts {
		sameHost[j] = h == host
	}
	shm, err := newShmFrom(cfg, seg, book.Shms, sameHost)
	if err != nil {
		ln.Close()
		return nil, err
	}
	tcp := newTCPFrom(cfg, ln, book.Addrs)
	// Both legs tally into one sink, so Obs() exports a single "fabric"
	// domain with the shm_* and net_* counter families side by side.
	tcp.sink = shm.sink
	return &hybridTransport{shm: shm, tcp: tcp, sameHost: sameHost}, nil
}

func (h *hybridTransport) Rank() int      { return h.shm.rank }
func (h *hybridTransport) Size() int      { return h.shm.n }
func (h *hybridTransport) Reliable() bool { return true }
func (h *hybridTransport) Obs() *obs.Sink { return h.shm.sink }

// Start brings both legs onto the same receive datapath: whichever leg a
// frame arrives on, it lands in the one RecvQueue/CQ pair the MPI layer
// drains.
func (h *hybridTransport) Start(rq *rdma.RecvQueue, cq *rdma.CQ) error {
	if err := h.shm.Start(rq, cq); err != nil {
		return err
	}
	return h.tcp.Start(rq, cq)
}

// Endpoint picks the leg by locality. Self-sends go through the shm
// leg's loopback.
func (h *hybridTransport) Endpoint(peer int) rdma.Endpoint {
	if peer == h.shm.rank || (peer >= 0 && peer < len(h.sameHost) && h.sameHost[peer]) {
		return h.shm.Endpoint(peer)
	}
	return h.tcp.Endpoint(peer)
}

// RegisterMemory stages the buffer in the shm arena and adopts the
// region into the TCP leg under the same rkey, so both read paths can
// resolve it. When the arena overflowed into a heap region the adopted
// entry is the only servable copy — same-host readers then fall back to
// the RPC below.
func (h *hybridTransport) RegisterMemory(buf []byte) *rdma.MemoryRegion {
	mr := h.shm.RegisterMemory(buf)
	h.tcp.adoptRegion(mr)
	return mr
}

func (h *hybridTransport) Deregister(mr *rdma.MemoryRegion) {
	h.tcp.Deregister(mr)
	h.shm.Deregister(mr)
}

// Read prefers the zero-round-trip arena copy for same-host owners and
// falls back to the TCP READ RPC when the rkey is not in the owner's
// region table (a heap-fallback registration) — or when the owner is on
// another host, where the RPC is the only option.
func (h *hybridTransport) Read(owner int, dst []byte, rkey uint64, offset, length int) error {
	if owner == h.shm.rank || (owner >= 0 && owner < len(h.sameHost) && h.sameHost[owner]) {
		err := h.shm.Read(owner, dst, rkey, offset, length)
		if err == nil || !errors.Is(err, rdma.ErrBadKey) {
			return err
		}
	}
	return h.tcp.Read(owner, dst, rkey, offset, length)
}

func (h *hybridTransport) pendingReadCount() int {
	return h.shm.pendingReadCount() + h.tcp.pendingReadCount()
}

func (h *hybridTransport) Close() error {
	err := h.tcp.Close()
	if serr := h.shm.Close(); err == nil {
		err = serr
	}
	return err
}
