package rdma

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func pair(t *testing.T) (*QP, *QP, *CQ, *CQ) {
	t.Helper()
	f := NewFabric()
	cqA, cqB := NewCQ(), NewCQ()
	a, b := f.ConnectPair(
		QPConfig{SendCQ: NewCQ(), RecvCQ: cqA},
		QPConfig{SendCQ: NewCQ(), RecvCQ: cqB},
	)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, cqA, cqB
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b, _, cqB := pair(t)
	_ = b
	buf := make([]byte, 16)
	b.PostRecv(buf, 7)
	if err := a.Send([]byte("hello"), 42, 1); err != nil {
		t.Fatal(err)
	}
	c, ok := cqB.WaitIndex(0)
	if !ok {
		t.Fatal("no completion")
	}
	if c.Op != OpRecv || c.WRID != 7 || c.Imm != 42 || c.Bytes != 5 {
		t.Fatalf("completion = %+v", c)
	}
	if string(c.Data) != "hello" {
		t.Fatalf("data = %q", c.Data)
	}
}

func TestPerQPOrdering(t *testing.T) {
	a, b, _, cqB := pair(t)
	for i := 0; i < 32; i++ {
		b.PostRecv(make([]byte, 8), uint64(i))
	}
	for i := 0; i < 32; i++ {
		if err := a.Send([]byte{byte(i)}, uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 32; i++ {
		c, ok := cqB.WaitIndex(i)
		if !ok {
			t.Fatal("missing completion")
		}
		if c.Imm != uint32(i) {
			t.Fatalf("completion %d has imm %d: ordering violated", i, c.Imm)
		}
	}
}

func TestSendBlocksUntilReceivePosted(t *testing.T) {
	a, b, _, cqB := pair(t)
	done := make(chan struct{})
	go func() {
		a.Send([]byte("x"), 0, 1)
		close(done)
	}()
	// The send itself completes (buffered wire), but no receive completion
	// may appear until a buffer is posted.
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("send blocked unexpectedly")
	}
	if _, ok := cqB.Poll(0); ok {
		t.Fatal("completion before receive was posted")
	}
	b.PostRecv(make([]byte, 4), 9)
	if c, ok := cqB.WaitIndex(0); !ok || c.WRID != 9 {
		t.Fatal("delivery after post failed")
	}
}

func TestRDMARead(t *testing.T) {
	f := NewFabric()
	src := []byte("rendezvous payload")
	mr := f.RegisterMemory(src)
	dst := make([]byte, len(src))
	cq := NewCQ()
	if err := f.Read(dst, mr.RKey, 0, len(src), cq, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("read %q, want %q", dst, src)
	}
	if c, ok := cq.WaitIndex(0); !ok || c.Op != OpRead || c.WRID != 5 {
		t.Fatalf("completion = %+v ok=%v", c, ok)
	}
}

func TestRDMAReadOffset(t *testing.T) {
	f := NewFabric()
	mr := f.RegisterMemory([]byte("0123456789"))
	dst := make([]byte, 4)
	if err := f.Read(dst, mr.RKey, 3, 4, nil, 0); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "3456" {
		t.Fatalf("read %q, want 3456", dst)
	}
}

func TestRDMAReadErrors(t *testing.T) {
	f := NewFabric()
	mr := f.RegisterMemory(make([]byte, 8))
	dst := make([]byte, 16)
	if err := f.Read(dst, 999, 0, 4, nil, 0); err != ErrBadKey {
		t.Fatalf("bad key: %v", err)
	}
	if err := f.Read(dst, mr.RKey, 4, 8, nil, 0); err != ErrBounds {
		t.Fatalf("bounds: %v", err)
	}
	if err := f.Read(dst[:2], mr.RKey, 0, 8, nil, 0); err != ErrBufferSize {
		t.Fatalf("buffer size: %v", err)
	}
	f.Deregister(mr)
	if err := f.Read(dst, mr.RKey, 0, 4, nil, 0); err != ErrBadKey {
		t.Fatalf("deregistered: %v", err)
	}
}

func TestRDMAWrite(t *testing.T) {
	f := NewFabric()
	dst := make([]byte, 8)
	mr := f.RegisterMemory(dst)
	if err := f.Write([]byte("abcd"), mr.RKey, 2, nil, 0); err != nil {
		t.Fatal(err)
	}
	if string(dst[2:6]) != "abcd" {
		t.Fatalf("dst = %q", dst)
	}
	if err := f.Write(make([]byte, 9), mr.RKey, 0, nil, 0); err != ErrBounds {
		t.Fatalf("bounds: %v", err)
	}
	if err := f.Write([]byte("x"), 12345, 0, nil, 0); err != ErrBadKey {
		t.Fatalf("bad key: %v", err)
	}
}

func TestSharedRecvQueueManySenders(t *testing.T) {
	// The MPI pattern: one receiver pools bounce buffers in a shared
	// receive queue fed by several sender QPs; per-sender order must hold.
	f := NewFabric()
	recvCQ := NewCQ()
	srq := NewRecvQueue(256)
	const senders, msgs = 4, 32
	qps := make([]*QP, senders)
	for s := 0; s < senders; s++ {
		a, _ := f.ConnectPair(
			QPConfig{SendCQ: nil, RecvCQ: NewCQ()},
			QPConfig{SendCQ: nil, RecvCQ: recvCQ, RQ: srq},
		)
		qps[s] = a
		defer a.Close()
	}
	for i := 0; i < senders*msgs; i++ {
		srq.Post(make([]byte, 8), uint64(i))
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				qps[s].Send([]byte{byte(s)}, uint32(s<<16|i), 0)
			}
		}(s)
	}
	wg.Wait()
	lastPerSender := make([]int, senders)
	for i := range lastPerSender {
		lastPerSender[i] = -1
	}
	for k := uint64(0); k < senders*msgs; k++ {
		c, ok := recvCQ.WaitIndex(k)
		if !ok {
			t.Fatal("missing completion")
		}
		s := int(c.Imm >> 16)
		i := int(c.Imm & 0xffff)
		if i != lastPerSender[s]+1 {
			t.Fatalf("sender %d: message %d after %d (per-QP order violated)", s, i, lastPerSender[s])
		}
		lastPerSender[s] = i
	}
}

func TestCQStridedWait(t *testing.T) {
	q := NewCQ()
	const n = 4
	var wg sync.WaitGroup
	got := make([][]uint64, n)
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for k := uint64(tid); ; k += n {
				c, ok := q.WaitIndex(k)
				if !ok {
					return
				}
				got[tid] = append(got[tid], uint64(c.Imm))
			}
		}(tid)
	}
	for i := 0; i < 20; i++ {
		q.Push(Completion{Imm: uint32(i)})
	}
	q.Close()
	wg.Wait()
	for tid := 0; tid < n; tid++ {
		for j, v := range got[tid] {
			if v != uint64(tid+j*n) {
				t.Fatalf("thread %d saw %v", tid, got[tid])
			}
		}
	}
}

func TestCQTrim(t *testing.T) {
	q := NewCQ()
	for i := 0; i < 10; i++ {
		q.Push(Completion{Imm: uint32(i)})
	}
	q.Trim(5)
	if _, ok := q.Poll(4); ok {
		t.Fatal("trimmed entry still visible")
	}
	if c, ok := q.Poll(7); !ok || c.Imm != 7 {
		t.Fatal("post-trim entry lost")
	}
	if _, ok := q.WaitIndex(3); ok {
		t.Fatal("WaitIndex returned a trimmed entry")
	}
	q.Trim(3) // no-op: already beyond
	q.Trim(99)
	if q.Next() != 10 {
		t.Fatalf("Next = %d, want 10", q.Next())
	}
}

func TestCQCloseUnblocksWaiters(t *testing.T) {
	q := NewCQ()
	done := make(chan bool)
	go func() {
		_, ok := q.WaitIndex(0)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-done; ok {
		t.Fatal("closed wait reported ok")
	}
	if !q.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	a, b, _, _ := pair(t)
	b.Close()
	// Fill the wire, then the next send must observe the closed peer.
	var err error
	for i := 0; i < 100; i++ {
		if err = a.Send([]byte("x"), 0, 0); err != nil {
			break
		}
	}
	if err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCostCharge(t *testing.T) {
	start := time.Now()
	charge(200 * time.Microsecond)
	if time.Since(start) < 200*time.Microsecond {
		t.Fatal("charge returned early")
	}
	charge(0) // free
	c := Cost{PerKiB: time.Microsecond}
	if d := c.data(2048); d != 2*time.Microsecond {
		t.Fatalf("data(2048) = %v", d)
	}
}

func TestOpTypeString(t *testing.T) {
	names := map[OpType]string{OpSend: "send", OpRecv: "recv", OpRead: "read", OpWrite: "write", OpType(9): "OpType(9)"}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("%d = %q, want %q", op, got, want)
		}
	}
}

func TestCQPollBatch(t *testing.T) {
	q := NewCQ()
	dst := make([]Completion, 4)
	if n := q.PollBatch(0, dst); n != 0 {
		t.Fatalf("empty queue returned %d", n)
	}
	for i := 0; i < 6; i++ {
		q.Push(Completion{WRID: uint64(i)})
	}
	if q.Ready() != 6 {
		t.Fatalf("Ready = %d, want 6", q.Ready())
	}
	// A full window, bounded by len(dst).
	if n := q.PollBatch(0, dst); n != 4 {
		t.Fatalf("PollBatch(0) = %d, want 4", n)
	}
	for i, c := range dst {
		if c.WRID != uint64(i) {
			t.Fatalf("dst[%d].WRID = %d", i, c.WRID)
		}
	}
	// A partial window from an interior index.
	if n := q.PollBatch(4, dst); n != 2 || dst[0].WRID != 4 || dst[1].WRID != 5 {
		t.Fatalf("PollBatch(4) = %d (%v)", n, dst[:2])
	}
	// Beyond the produced range, and with an empty destination.
	if n := q.PollBatch(6, dst); n != 0 {
		t.Fatalf("PollBatch(6) = %d", n)
	}
	if n := q.PollBatch(0, nil); n != 0 {
		t.Fatalf("PollBatch(nil dst) = %d", n)
	}
	// Trimmed indexes are gone.
	q.Trim(3)
	if n := q.PollBatch(0, dst); n != 0 {
		t.Fatalf("PollBatch below base = %d", n)
	}
	if n := q.PollBatch(3, dst); n != 3 || dst[0].WRID != 3 {
		t.Fatalf("PollBatch(3) after trim = %d (%v)", n, dst[:3])
	}
}

func TestCQWaitBatch(t *testing.T) {
	q := NewCQ()
	got := make(chan []uint64, 1)
	go func() {
		dst := make([]Completion, 8)
		n, ok := q.WaitBatch(0, dst)
		if !ok {
			got <- nil
			return
		}
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = dst[i].WRID
		}
		got <- ids
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	q.Push(Completion{WRID: 7})
	ids := <-got
	if len(ids) < 1 || ids[0] != 7 {
		t.Fatalf("WaitBatch woke with %v", ids)
	}

	// Close unblocks a pending WaitBatch with ok=false…
	fail := make(chan bool, 1)
	go func() {
		_, ok := q.WaitBatch(q.Next(), make([]Completion, 1))
		fail <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-fail; ok {
		t.Fatal("WaitBatch returned ok after Close with nothing pending")
	}
	// …but still drains entries that were produced before the close.
	q2 := NewCQ()
	q2.Push(Completion{WRID: 1})
	q2.Push(Completion{WRID: 2})
	q2.Close()
	dst := make([]Completion, 4)
	if n, ok := q2.WaitBatch(0, dst); !ok || n != 2 {
		t.Fatalf("closed-but-nonempty WaitBatch = (%d,%v)", n, ok)
	}
}

func TestCQTrimCompacts(t *testing.T) {
	// Steady-state producer/consumer reuse: after a Trim the remaining
	// entries sit at the front of the same backing array, so the window
	// never grows beyond its high-water mark.
	q := NewCQ()
	dst := make([]Completion, 8)
	var cursor uint64
	for round := 0; round < 1000; round++ {
		for i := 0; i < 8; i++ {
			q.Push(Completion{WRID: cursor + uint64(i)})
		}
		n := q.PollBatch(cursor, dst)
		if n != 8 {
			t.Fatalf("round %d: drained %d", round, n)
		}
		for i := 0; i < n; i++ {
			if dst[i].WRID != cursor+uint64(i) {
				t.Fatalf("round %d: dst[%d].WRID = %d", round, i, dst[i].WRID)
			}
		}
		cursor += uint64(n)
		q.Trim(cursor)
	}
	if q.Next() != cursor {
		t.Fatalf("next = %d, want %d", q.Next(), cursor)
	}
}
