package rdma

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func pair(t *testing.T) (*QP, *QP, *CQ, *CQ) {
	t.Helper()
	f := NewFabric()
	cqA, cqB := NewCQ(), NewCQ()
	a, b := f.ConnectPair(
		QPConfig{SendCQ: NewCQ(), RecvCQ: cqA},
		QPConfig{SendCQ: NewCQ(), RecvCQ: cqB},
	)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, cqA, cqB
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b, _, cqB := pair(t)
	_ = b
	buf := make([]byte, 16)
	b.PostRecv(buf, 7)
	if err := a.Send([]byte("hello"), 42, 1); err != nil {
		t.Fatal(err)
	}
	c, ok := cqB.WaitIndex(0)
	if !ok {
		t.Fatal("no completion")
	}
	if c.Op != OpRecv || c.WRID != 7 || c.Imm != 42 || c.Bytes != 5 {
		t.Fatalf("completion = %+v", c)
	}
	if string(c.Data) != "hello" {
		t.Fatalf("data = %q", c.Data)
	}
}

func TestPerQPOrdering(t *testing.T) {
	a, b, _, cqB := pair(t)
	for i := 0; i < 32; i++ {
		b.PostRecv(make([]byte, 8), uint64(i))
	}
	for i := 0; i < 32; i++ {
		if err := a.Send([]byte{byte(i)}, uint32(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 32; i++ {
		c, ok := cqB.WaitIndex(i)
		if !ok {
			t.Fatal("missing completion")
		}
		if c.Imm != uint32(i) {
			t.Fatalf("completion %d has imm %d: ordering violated", i, c.Imm)
		}
	}
}

func TestSendBlocksUntilReceivePosted(t *testing.T) {
	a, b, _, cqB := pair(t)
	done := make(chan struct{})
	go func() {
		a.Send([]byte("x"), 0, 1)
		close(done)
	}()
	// The send itself completes (buffered wire), but no receive completion
	// may appear until a buffer is posted.
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("send blocked unexpectedly")
	}
	if _, ok := cqB.Poll(0); ok {
		t.Fatal("completion before receive was posted")
	}
	b.PostRecv(make([]byte, 4), 9)
	if c, ok := cqB.WaitIndex(0); !ok || c.WRID != 9 {
		t.Fatal("delivery after post failed")
	}
}

func TestRDMARead(t *testing.T) {
	f := NewFabric()
	src := []byte("rendezvous payload")
	mr := f.RegisterMemory(src)
	dst := make([]byte, len(src))
	cq := NewCQ()
	if err := f.Read(dst, mr.RKey, 0, len(src), cq, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("read %q, want %q", dst, src)
	}
	if c, ok := cq.WaitIndex(0); !ok || c.Op != OpRead || c.WRID != 5 {
		t.Fatalf("completion = %+v ok=%v", c, ok)
	}
}

func TestRDMAReadOffset(t *testing.T) {
	f := NewFabric()
	mr := f.RegisterMemory([]byte("0123456789"))
	dst := make([]byte, 4)
	if err := f.Read(dst, mr.RKey, 3, 4, nil, 0); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "3456" {
		t.Fatalf("read %q, want 3456", dst)
	}
}

func TestRDMAReadErrors(t *testing.T) {
	f := NewFabric()
	mr := f.RegisterMemory(make([]byte, 8))
	dst := make([]byte, 16)
	if err := f.Read(dst, 999, 0, 4, nil, 0); err != ErrBadKey {
		t.Fatalf("bad key: %v", err)
	}
	if err := f.Read(dst, mr.RKey, 4, 8, nil, 0); err != ErrBounds {
		t.Fatalf("bounds: %v", err)
	}
	if err := f.Read(dst[:2], mr.RKey, 0, 8, nil, 0); err != ErrBufferSize {
		t.Fatalf("buffer size: %v", err)
	}
	f.Deregister(mr)
	if err := f.Read(dst, mr.RKey, 0, 4, nil, 0); err != ErrBadKey {
		t.Fatalf("deregistered: %v", err)
	}
}

func TestRDMAWrite(t *testing.T) {
	f := NewFabric()
	dst := make([]byte, 8)
	mr := f.RegisterMemory(dst)
	if err := f.Write([]byte("abcd"), mr.RKey, 2, nil, 0); err != nil {
		t.Fatal(err)
	}
	if string(dst[2:6]) != "abcd" {
		t.Fatalf("dst = %q", dst)
	}
	if err := f.Write(make([]byte, 9), mr.RKey, 0, nil, 0); err != ErrBounds {
		t.Fatalf("bounds: %v", err)
	}
	if err := f.Write([]byte("x"), 12345, 0, nil, 0); err != ErrBadKey {
		t.Fatalf("bad key: %v", err)
	}
}

func TestSharedRecvQueueManySenders(t *testing.T) {
	// The MPI pattern: one receiver pools bounce buffers in a shared
	// receive queue fed by several sender QPs; per-sender order must hold.
	f := NewFabric()
	recvCQ := NewCQ()
	srq := NewRecvQueue(256)
	const senders, msgs = 4, 32
	qps := make([]*QP, senders)
	for s := 0; s < senders; s++ {
		a, _ := f.ConnectPair(
			QPConfig{SendCQ: nil, RecvCQ: NewCQ()},
			QPConfig{SendCQ: nil, RecvCQ: recvCQ, RQ: srq},
		)
		qps[s] = a
		defer a.Close()
	}
	for i := 0; i < senders*msgs; i++ {
		srq.Post(make([]byte, 8), uint64(i))
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				qps[s].Send([]byte{byte(s)}, uint32(s<<16|i), 0)
			}
		}(s)
	}
	wg.Wait()
	lastPerSender := make([]int, senders)
	for i := range lastPerSender {
		lastPerSender[i] = -1
	}
	for k := uint64(0); k < senders*msgs; k++ {
		c, ok := recvCQ.WaitIndex(k)
		if !ok {
			t.Fatal("missing completion")
		}
		s := int(c.Imm >> 16)
		i := int(c.Imm & 0xffff)
		if i != lastPerSender[s]+1 {
			t.Fatalf("sender %d: message %d after %d (per-QP order violated)", s, i, lastPerSender[s])
		}
		lastPerSender[s] = i
	}
}

func TestCQStridedWait(t *testing.T) {
	q := NewCQ()
	const n = 4
	var wg sync.WaitGroup
	got := make([][]uint64, n)
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for k := uint64(tid); ; k += n {
				c, ok := q.WaitIndex(k)
				if !ok {
					return
				}
				got[tid] = append(got[tid], uint64(c.Imm))
			}
		}(tid)
	}
	for i := 0; i < 20; i++ {
		q.Push(Completion{Imm: uint32(i)})
	}
	q.Close()
	wg.Wait()
	for tid := 0; tid < n; tid++ {
		for j, v := range got[tid] {
			if v != uint64(tid+j*n) {
				t.Fatalf("thread %d saw %v", tid, got[tid])
			}
		}
	}
}

func TestCQTrim(t *testing.T) {
	q := NewCQ()
	for i := 0; i < 10; i++ {
		q.Push(Completion{Imm: uint32(i)})
	}
	q.Trim(5)
	if _, ok := q.Poll(4); ok {
		t.Fatal("trimmed entry still visible")
	}
	if c, ok := q.Poll(7); !ok || c.Imm != 7 {
		t.Fatal("post-trim entry lost")
	}
	if _, ok := q.WaitIndex(3); ok {
		t.Fatal("WaitIndex returned a trimmed entry")
	}
	q.Trim(3) // no-op: already beyond
	q.Trim(99)
	if q.Next() != 10 {
		t.Fatalf("Next = %d, want 10", q.Next())
	}
}

func TestCQCloseUnblocksWaiters(t *testing.T) {
	q := NewCQ()
	done := make(chan bool)
	go func() {
		_, ok := q.WaitIndex(0)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-done; ok {
		t.Fatal("closed wait reported ok")
	}
	if !q.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	a, b, _, _ := pair(t)
	b.Close()
	// Fill the wire, then the next send must observe the closed peer.
	var err error
	for i := 0; i < 100; i++ {
		if err = a.Send([]byte("x"), 0, 0); err != nil {
			break
		}
	}
	if err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCostCharge(t *testing.T) {
	start := time.Now()
	charge(200 * time.Microsecond)
	if time.Since(start) < 200*time.Microsecond {
		t.Fatal("charge returned early")
	}
	charge(0) // free
	c := Cost{PerKiB: time.Microsecond}
	if d := c.data(2048); d != 2*time.Microsecond {
		t.Fatalf("data(2048) = %v", d)
	}
}

func TestOpTypeString(t *testing.T) {
	names := map[OpType]string{OpSend: "send", OpRecv: "recv", OpRead: "read", OpWrite: "write", OpType(9): "OpType(9)"}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("%d = %q, want %q", op, got, want)
		}
	}
}
