package rdma

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// FaultRates is the per-QP fault model: independent probabilities applied
// to each two-sided send, mirroring the failure modes a real RC transport
// on BlueField-class hardware exhibits (§IV-B): packets lost or duplicated
// by retransmission races, delivery delayed past later packets, receiver
// -not-ready NAKs when the remote has no posted receive, and completion
// -queue backpressure stalling the send pipeline.
type FaultRates struct {
	// Drop is the probability a message is lost on the wire after the
	// local send completion (the sender believes it left the NIC).
	Drop float64
	// Duplicate is the probability a message is delivered twice, as a
	// hardware retransmission race would produce.
	Duplicate float64
	// Delay is the probability a message is held back and overtaken by
	// the next DelaySpan messages on the same QP before being delivered.
	Delay float64
	// DelaySpan is how many subsequent sends overtake a delayed message
	// (default 1). At most one message per QP is delayed at a time.
	DelaySpan int
	// RNR is the probability Send fails with ErrNoReceive — the
	// receiver-not-ready NAK the reliability layer must retry through.
	RNR float64
	// Stall is the probability a send is stalled by StallTime, modelling
	// completion-queue backpressure on the NIC pipeline.
	Stall float64
	// StallTime is the busy-wait charged per stall (default 1µs).
	StallTime time.Duration
}

// active reports whether any fault can ever fire under these rates.
func (r FaultRates) active() bool {
	return r.Drop > 0 || r.Duplicate > 0 || r.Delay > 0 || r.RNR > 0 || r.Stall > 0
}

// FaultPlan is a deterministic fault schedule for a whole fabric: default
// rates for every QP plus optional per-QP overrides, all driven by
// independent PRNG streams derived from one seed. Two runs with the same
// plan and the same per-QP send sequences inject faults into exactly the
// same messages, so any failure is reproducible from the seed alone.
type FaultPlan struct {
	// Seed drives every per-QP decision stream. Plans differing only in
	// Seed produce statistically independent schedules.
	Seed uint64
	// FaultRates is the default model applied to every QP.
	FaultRates
	// PerQP overrides the default rates for specific QPs, keyed by QP
	// creation index (ConnectPair assigns 2k to the first argument's QP
	// and 2k+1 to the second, for the k-th pair created).
	PerQP map[int]FaultRates
}

// Active reports whether the plan injects any fault anywhere. A zero
// FaultPlan is inactive and leaves the fabric's behaviour untouched.
func (p FaultPlan) Active() bool {
	if p.FaultRates.active() {
		return true
	}
	for _, r := range p.PerQP {
		if r.active() {
			return true
		}
	}
	return false
}

// rates returns the effective rates for QP id, with defaults filled.
func (p FaultPlan) rates(id int) FaultRates {
	r := p.FaultRates
	if o, ok := p.PerQP[id]; ok {
		r = o
	}
	if r.DelaySpan <= 0 {
		r.DelaySpan = 1
	}
	if r.StallTime <= 0 {
		r.StallTime = time.Microsecond
	}
	return r
}

// FaultSnapshot is a point-in-time copy of the fabric's fault counters,
// read from the fabric's observability sink (obs.CtrFault*).
type FaultSnapshot struct {
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
	RNRs       uint64
	Stalls     uint64
}

// String renders the snapshot as a compact counter list.
func (s FaultSnapshot) String() string {
	return fmt.Sprintf("dropped=%d duplicated=%d delayed=%d rnr=%d stalls=%d",
		s.Dropped, s.Duplicated, s.Delayed, s.RNRs, s.Stalls)
}

// SetFaults installs a fault plan on the fabric. Call before ConnectPair:
// only QPs created after the call carry injectors. A plan for which
// Active() is false leaves the fabric lossless.
func (f *Fabric) SetFaults(p FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = p
	f.faultsOn = p.Active()
}

// FaultStats returns a snapshot of the fault counters.
func (f *Fabric) FaultStats() FaultSnapshot { return FaultSnapshotOf(f.obs) }

// FaultSnapshotOf reads the fault counters out of any dataplane sink — the
// in-process fabric's or a netfabric transport's (both tally injected
// faults on the obs.CtrFault* range).
func FaultSnapshotOf(s *obs.Sink) FaultSnapshot {
	c := &s.Counters
	return FaultSnapshot{
		Dropped:    c.Load(obs.CtrFaultDropped),
		Duplicated: c.Load(obs.CtrFaultDuplicated),
		Delayed:    c.Load(obs.CtrFaultDelayed),
		RNRs:       c.Load(obs.CtrFaultRNR),
		Stalls:     c.Load(obs.CtrFaultStalls),
	}
}

// newInjector builds the decision stream for QP id, or returns nil when
// the plan is inactive for that QP.
func (f *Fabric) newInjector(id int) *injector {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.faultsOn {
		return nil
	}
	r := f.faults.rates(id)
	if !r.active() {
		return nil
	}
	return &injector{
		rates: r,
		rng:   splitmix64(f.faults.Seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15),
		obs:   f.obs,
		qp:    id,
	}
}

// injector is one QP's deterministic fault stream. Decisions are a pure
// function of the plan seed, the QP id, and the per-QP send ordinal: each
// faultable send draws a fixed number of PRNG values under the injector
// lock, so concurrent senders serialize into one reproducible stream.
type injector struct {
	rates FaultRates
	obs   *obs.Sink
	qp    int

	mu  sync.Mutex
	rng uint64

	// held is the currently delayed message; it re-enters the wire after
	// heldSpan subsequent sends have overtaken it.
	held     *wireMsg
	heldSpan int
}

// splitmix64 is the SplitMix64 PRNG step: a tiny, well-distributed
// generator whose whole state is one uint64, ideal for per-QP streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Fault codes carried by EvFaultInject events (B payload word).
const (
	faultCodeDrop uint64 = iota
	faultCodeDup
	faultCodeDelay
	faultCodeRNR
	faultCodeStall
)

// note tallies one injected fault on counter ctr and, when the fabric sink
// is tracing, records an EvFaultInject event keyed by the QP id.
func (in *injector) note(ctr obs.Counter, code uint64) {
	in.obs.Counters.Inc(ctr)
	if in.obs.Enabled() {
		in.obs.Event(obs.EvFaultInject, in.qp, uint64(in.qp), code, 0)
	}
}

// next draws a uniform float64 in [0, 1).
func (in *injector) next() float64 {
	in.rng = splitmix64(in.rng)
	return float64(in.rng>>11) / (1 << 53)
}

// decision is the fault verdict for one send, drawn in a fixed order so
// the stream stays aligned regardless of which faults fire.
type decision struct {
	rnr   bool
	drop  bool
	dup   bool
	delay bool
	stall bool
}

// decide consumes one send's worth of PRNG draws.
func (in *injector) decide() decision {
	return decision{
		rnr:   in.next() < in.rates.RNR,
		drop:  in.next() < in.rates.Drop,
		dup:   in.next() < in.rates.Duplicate,
		delay: in.next() < in.rates.Delay,
		stall: in.next() < in.rates.Stall,
	}
}

// ParseFaultPlan parses the command-line fault syntax
// "seed=N,drop=P,dup=P,delay=P,delayspan=N,rnr=P,stall=P,stalltime=D"
// (any subset, comma-separated) into a FaultPlan. An empty string parses
// to the inactive zero plan.
func ParseFaultPlan(s string) (FaultPlan, error) {
	var p FaultPlan
	if s == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("rdma: fault field %q is not key=value", field)
		}
		var err error
		switch strings.ToLower(key) {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			p.Drop, err = strconv.ParseFloat(val, 64)
		case "dup", "duplicate":
			p.Duplicate, err = strconv.ParseFloat(val, 64)
		case "delay":
			p.Delay, err = strconv.ParseFloat(val, 64)
		case "delayspan":
			p.DelaySpan, err = strconv.Atoi(val)
		case "rnr":
			p.RNR, err = strconv.ParseFloat(val, 64)
		case "stall":
			p.Stall, err = strconv.ParseFloat(val, 64)
		case "stalltime":
			p.StallTime, err = time.ParseDuration(val)
		default:
			return p, fmt.Errorf("rdma: unknown fault field %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("rdma: fault field %q: %v", field, err)
		}
	}
	return p, nil
}
