package rdma

import (
	"sync"
	"sync/atomic"
)

// Completion is one completion-queue entry.
type Completion struct {
	Op    OpType
	WRID  uint64 // caller-assigned work-request ID
	Bytes int    // payload length
	Imm   uint32 // immediate data carried by sends
	Data  []byte // receive completions: the filled buffer (len = Bytes)
	Err   error  // non-nil for error completions (e.g. ErrBufferSize);
	// Data then carries the (unfilled) posted buffer for recycling and
	// Bytes the length the operation would have needed.

	// Aux carries consumer-side context on synthesized completions — the
	// fabric never sets it. The MPI layer uses it to tie the sub-message
	// completions expanded out of one coalesced frame back to their shared
	// bounce buffer for exactly-once recycling.
	Aux any
}

// CQ is a completion queue. Unlike hardware rings it retains a sliding
// window of entries indexed by absolute completion number, which lets the
// DPA's threads poll in the strided pattern of §IV-A: thread i waits for
// completion i, then i+N, and so on.
//
// Consumers that drain windows of entries should prefer WaitBatch /
// PollBatch, which move a whole batch under a single lock acquisition; the
// per-entry WaitIndex / Poll calls remain for strided pollers and tests.
type CQ struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries []Completion
	base    uint64 // absolute index of entries[0]
	next    uint64 // absolute index of the next completion to be pushed
	closed  bool

	// ready mirrors next outside the lock so pollers can check for new
	// completions — the common empty/ready test — without contending with
	// producers.
	ready atomic.Uint64
}

// NewCQ returns an empty completion queue.
func NewCQ() *CQ {
	q := &CQ{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a completion entry; exported so software paths (loopback
// devices, tests, host-generated events) can produce completions.
func (q *CQ) Push(c Completion) {
	q.mu.Lock()
	q.entries = append(q.entries, c)
	q.next++
	q.ready.Store(q.next)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Close wakes all waiters; subsequent waits return ok=false once drained.
func (q *CQ) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// WaitIndex blocks until the completion with absolute index k exists and
// returns it. It reports ok=false when the queue was closed before entry k
// was produced, or when k was already trimmed.
func (q *CQ) WaitIndex(k uint64) (Completion, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.next <= k {
		if q.closed {
			return Completion{}, false
		}
		q.cond.Wait()
	}
	if k < q.base {
		return Completion{}, false
	}
	return q.entries[k-q.base], true
}

// Poll returns the completion with absolute index k without blocking.
func (q *CQ) Poll(k uint64) (Completion, bool) {
	if q.ready.Load() <= k {
		return Completion{}, false // nothing at k yet: lock-free fast path
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.next <= k || k < q.base {
		return Completion{}, false
	}
	return q.entries[k-q.base], true
}

// PollBatch copies into dst all ready completions starting at absolute
// index from, up to len(dst), under a single lock acquisition, and returns
// the number copied. It returns 0 when nothing at or beyond from is ready
// or when from was already trimmed. The empty case is detected lock-free.
func (q *CQ) PollBatch(from uint64, dst []Completion) int {
	if q.ready.Load() <= from || len(dst) == 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.next <= from || from < q.base {
		return 0
	}
	return copy(dst, q.entries[from-q.base:])
}

// WaitBatch blocks until at least one completion at absolute index from or
// beyond exists, then drains as many consecutive completions as are ready
// (up to len(dst)) under the same lock acquisition. It reports ok=false
// when the queue was closed before entry from was produced, or when from
// was already trimmed.
func (q *CQ) WaitBatch(from uint64, dst []Completion) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.next <= from {
		if q.closed {
			return 0, false
		}
		q.cond.Wait()
	}
	if from < q.base {
		return 0, false
	}
	return copy(dst, q.entries[from-q.base:]), true
}

// Ready returns the absolute index of the next completion to be produced,
// without taking the queue lock. Ready() > k means entry k can be polled
// (unless trimmed); Ready() <= k means it does not exist yet.
func (q *CQ) Ready() uint64 { return q.ready.Load() }

// Next returns the absolute index of the next completion to be produced —
// i.e. the number of completions so far.
func (q *CQ) Next() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.next
}

// Trim discards entries below absolute index k, modelling ring reuse after
// the consumer has advanced. Remaining entries are compacted to the front
// of the backing array so a steady-state producer/consumer pair recycles
// one allocation indefinitely.
func (q *CQ) Trim(k uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if k <= q.base {
		return
	}
	if k > q.next {
		k = q.next
	}
	n := copy(q.entries, q.entries[k-q.base:])
	q.entries = q.entries[:n]
	q.base = k
}

// Closed reports whether the queue has been closed.
func (q *CQ) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}
