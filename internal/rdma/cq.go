package rdma

import "sync"

// Completion is one completion-queue entry.
type Completion struct {
	Op    OpType
	WRID  uint64 // caller-assigned work-request ID
	Bytes int    // payload length
	Imm   uint32 // immediate data carried by sends
	Data  []byte // receive completions: the filled buffer (len = Bytes)
}

// CQ is a completion queue. Unlike hardware rings it retains a sliding
// window of entries indexed by absolute completion number, which lets the
// DPA's threads poll in the strided pattern of §IV-A: thread i waits for
// completion i, then i+N, and so on.
type CQ struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries []Completion
	base    uint64 // absolute index of entries[0]
	next    uint64 // absolute index of the next completion to be pushed
	closed  bool
}

// NewCQ returns an empty completion queue.
func NewCQ() *CQ {
	q := &CQ{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a completion entry; exported so software paths (loopback
// devices, tests, host-generated events) can produce completions.
func (q *CQ) Push(c Completion) {
	q.mu.Lock()
	q.entries = append(q.entries, c)
	q.next++
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Close wakes all waiters; subsequent waits return ok=false once drained.
func (q *CQ) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// WaitIndex blocks until the completion with absolute index k exists and
// returns it. It reports ok=false when the queue was closed before entry k
// was produced, or when k was already trimmed.
func (q *CQ) WaitIndex(k uint64) (Completion, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.next <= k {
		if q.closed {
			return Completion{}, false
		}
		q.cond.Wait()
	}
	if k < q.base {
		return Completion{}, false
	}
	return q.entries[k-q.base], true
}

// Poll returns the completion with absolute index k without blocking.
func (q *CQ) Poll(k uint64) (Completion, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.next <= k || k < q.base {
		return Completion{}, false
	}
	return q.entries[k-q.base], true
}

// Next returns the absolute index of the next completion to be produced —
// i.e. the number of completions so far.
func (q *CQ) Next() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.next
}

// Trim discards entries below absolute index k, modelling ring reuse after
// the consumer has advanced.
func (q *CQ) Trim(k uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if k <= q.base {
		return
	}
	if k > q.next {
		k = q.next
	}
	q.entries = q.entries[k-q.base:]
	q.base = k
}

// Closed reports whether the queue has been closed.
func (q *CQ) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}
