package bench

import "repro/internal/core"

// Memory-footprint model for a full matching configuration. The §IV-E
// budget in core.ModelFootprint covers only the matcher's tables (bins and
// receive descriptors); a deployed configuration additionally pins memory
// per in-flight block slot (the staged envelopes of a block in formation)
// and per peer for the sender-side eager coalescer's frame buffers. The
// capacity planner prices candidates against an operator-supplied budget
// with this model.
const (
	// EnvelopeModelBytes is the accounted size of one staged envelope in a
	// block slot: the wire header fields, inline hash, and payload pointer.
	EnvelopeModelBytes = 64
	// CoalesceHeaderBytes is the accounted per-frame overhead of one
	// coalescer buffer beyond its byte threshold.
	CoalesceHeaderBytes = 64
)

// FootprintConfig names the knobs that pin memory.
type FootprintConfig struct {
	// Bins per hash table (three tables, core.IndexTables).
	Bins int
	// MaxReceives is the descriptor-table capacity.
	MaxReceives int
	// BlockSize × InFlight block slots hold staged envelopes.
	BlockSize int
	InFlight  int
	// CoalesceBytes is the per-destination frame buffer size (0 = coalescing
	// off, no buffers); Peers is the number of destinations buffered.
	CoalesceBytes int
	Peers         int
}

// ModelFootprintBytes computes the modeled resident bytes of one
// configuration: bins × bin size across the three index tables, the
// descriptor table, K × N block-slot envelopes, and the per-peer coalescer
// buffers.
func ModelFootprintBytes(c FootprintConfig) int {
	inflight := c.InFlight
	if inflight < 1 {
		inflight = 1
	}
	total := core.IndexTables * c.Bins * core.BinModelBytes
	total += c.MaxReceives * core.DescriptorModelBytes
	total += inflight * c.BlockSize * EnvelopeModelBytes
	if c.CoalesceBytes > 0 && c.Peers > 0 {
		total += c.Peers * (c.CoalesceBytes + CoalesceHeaderBytes)
	}
	return total
}
