package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/mpi"
)

func quick(cfg MsgRateConfig) MsgRateConfig {
	cfg.K = 32
	cfg.Reps = 5
	return cfg
}

func TestMsgRateScenariosRun(t *testing.T) {
	for _, cfg := range Figure8Scenarios() {
		cfg := quick(cfg)
		t.Run(cfg.Label, func(t *testing.T) {
			res, err := RunMsgRate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages != 32*5 {
				t.Fatalf("messages = %d", res.Messages)
			}
			if res.MsgPerSec <= 0 {
				t.Fatalf("rate = %f", res.MsgPerSec)
			}
			if res.String() == "" {
				t.Fatal("empty render")
			}
		})
	}
}

func TestMsgRateConflictPathsExercised(t *testing.T) {
	scens := Figure8Scenarios()
	fp, err := RunMsgRate(quick(scens[1])) // WC-FP
	if err != nil {
		t.Fatal(err)
	}
	if fp.MatchStats.FastPath == 0 {
		t.Errorf("WC-FP scenario never took the fast path: %+v", fp.MatchStats)
	}
	sp, err := RunMsgRate(quick(scens[2])) // WC-SP
	if err != nil {
		t.Fatal(err)
	}
	if sp.MatchStats.SlowPath == 0 {
		t.Errorf("WC-SP scenario never took the slow path: %+v", sp.MatchStats)
	}
	if sp.MatchStats.FastPath != 0 {
		t.Errorf("WC-SP took the fast path despite DisableFastPath: %+v", sp.MatchStats)
	}
	nc, err := RunMsgRate(quick(scens[0])) // NC
	if err != nil {
		t.Fatal(err)
	}
	if nc.MatchStats.Conflicts != 0 {
		t.Errorf("NC scenario recorded conflicts: %+v", nc.MatchStats)
	}
	if nc.Engine != mpi.EngineOffload {
		t.Errorf("NC engine = %v", nc.Engine)
	}
}

func TestFigure6Driver(t *testing.T) {
	reps, err := RunFigure6(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 16 {
		t.Fatalf("reports = %d, want 16", len(reps))
	}
	p2pOnly, collOnly := 0, 0
	for _, r := range reps {
		if r.Mix.Collective == 0 && r.Mix.P2P > 0 {
			p2pOnly++
		}
		if r.Mix.P2P == 0 && r.Mix.Collective > 0 {
			collOnly++
		}
	}
	if p2pOnly < 3 {
		t.Errorf("p2p-only apps = %d, paper reports 3+", p2pOnly)
	}
	if collOnly != 2 {
		t.Errorf("collectives-only apps = %d, paper reports 2", collOnly)
	}
}

func TestFigure7DriverAndReduction(t *testing.T) {
	byApp, err := RunFigure7(10, Figure7Bins)
	if err != nil {
		t.Fatal(err)
	}
	if len(byApp) != 16 {
		t.Fatalf("apps = %d", len(byApp))
	}
	red := Reduce(byApp, Figure7Bins)
	if red.AvgDepth[0] <= red.AvgDepth[1] || red.AvgDepth[1] < red.AvgDepth[2] {
		t.Fatalf("depth not monotone: %v", red.AvgDepth)
	}
	// Paper: −90% at 32 bins, −95% at 128. The synthetic traces must show
	// the same order of magnitude of collapse.
	if red.ReductionPct[1] < 70 {
		t.Errorf("32-bin reduction = %.1f%%, paper reports ~90%%", red.ReductionPct[1])
	}
	if red.ReductionPct[2] < red.ReductionPct[1] {
		t.Errorf("128-bin reduction (%.1f%%) below 32-bin (%.1f%%)",
			red.ReductionPct[2], red.ReductionPct[1])
	}
}

func TestModeledFigure8Shape(t *testing.T) {
	// The modeled rates must reproduce the paper's qualitative ordering
	// regardless of host core count: RDMA-CPU highest; MPI-CPU and
	// Optimistic-DPA NC comparable; WC-FP below NC; WC-SP lowest.
	rates, err := RunModeledFigure8(DefaultCostModel(), 64, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]ModeledRate{}
	for _, r := range rates {
		byLabel[r.Label] = r
	}
	nc := byLabel["Optimistic-DPA NC"].MsgPerSec
	fp := byLabel["Optimistic-DPA WC-FP"].MsgPerSec
	sp := byLabel["Optimistic-DPA WC-SP"].MsgPerSec
	host := byLabel["MPI-CPU"].MsgPerSec
	raw := byLabel["RDMA-CPU"].MsgPerSec

	if raw <= host || raw <= nc {
		t.Errorf("RDMA-CPU (%.0f) must be the reference peak (host %.0f, nc %.0f)", raw, host, nc)
	}
	if nc < host*0.7 || nc > host*1.4 {
		t.Errorf("NC (%.0f) not comparable to MPI-CPU (%.0f)", nc, host)
	}
	if fp >= nc {
		t.Errorf("WC-FP (%.0f) should fall below NC (%.0f)", fp, nc)
	}
	if sp >= fp {
		t.Errorf("WC-SP (%.0f) should be the slowest (fp %.0f)", sp, fp)
	}
	if byLabel["Optimistic-DPA NC"].String() == "" {
		t.Error("empty render")
	}
}

func TestCostModelEdgeCases(t *testing.T) {
	cm := DefaultCostModel()
	if r := cm.ModelOffload("x", core.EngineStats{}, match.Stats{}); r.MsgPerSec != 0 {
		t.Error("zero-message offload model must be zero")
	}
	if r := cm.ModelHost("x", match.Stats{}); r.MsgPerSec != 0 {
		t.Error("zero-message host model must be zero")
	}
	if r := cm.ModelRaw("x", 0); r.MsgPerSec != 0 {
		t.Error("zero-message raw model must be zero")
	}
	cm.Threads = 0 // degenerate width clamps to 1
	r := cm.ModelOffload("x", core.EngineStats{Messages: 10}, match.Stats{ArriveSearches: 10})
	if r.MsgPerSec <= 0 {
		t.Error("degenerate thread count broke the model")
	}
}
