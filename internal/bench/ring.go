package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// RingConfig describes one multi-rank message-rate run: every rank sends
// K-message sequences to its ring successor and receives from its
// predecessor, Reps times. Unlike the Figure 8 ping-pong (two ranks, one
// direction), the ring keeps every rank's send and receive engines busy
// simultaneously, so with rank processes pinned to distinct cores the
// aggregate rate scales with the process count — the workload behind the
// out-of-process transport measurements in EXPERIMENTS.md §"Multi-process
// scaling".
type RingConfig struct {
	Label string
	// K is messages per sequence (default 100), Reps the number of
	// sequences (default 200), PayloadBytes the eager payload (default 8).
	K, Reps, PayloadBytes int
}

func (c *RingConfig) fill() {
	if c.K == 0 {
		c.K = 100
	}
	if c.Reps == 0 {
		c.Reps = 200
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 8
	}
	if c.Label == "" {
		c.Label = "ring"
	}
}

// RingResult is one ring run's outcome as observed by this process.
type RingResult struct {
	Label string
	// Ranks is the world size; LocalRanks how many this process drove.
	Ranks, LocalRanks int
	// Messages is the global data-message count (Ranks × K × Reps);
	// every rank's timing window is barrier-aligned, so the global rate
	// is Messages over this process's Elapsed.
	Messages  int
	Elapsed   time.Duration
	MsgPerSec float64
	// Matcher aggregates offload-engine statistics over local ranks.
	Matcher core.EngineStats
	// Depth aggregates the local ranks' receive-search profile.
	Depth match.Stats
	// Faults and Reliability report the local transport's injected faults
	// and the local ranks' repair work (meaningful on lossy transports).
	Faults      rdma.FaultSnapshot
	Reliability mpi.ReliabilitySnapshot
	// Sinks are the world's observability sinks, captured before teardown.
	Sinks []obs.Named
}

// String renders one result row.
func (r *RingResult) String() string {
	return fmt.Sprintf("%-22s %12.0f msg/s  (%d ranks, %d msgs in %v)",
		r.Label, r.MsgPerSec, r.Ranks, r.Messages, r.Elapsed.Round(time.Millisecond))
}

const ringReadyTag = 6000 // receiver → predecessor: sequence receives posted

// RunMsgRateRing drives every rank the world hosts — all of them for an
// in-process world, exactly one for a NewNetWorld member — through the
// ring workload, and closes the world before reading stats. The flow
// control mirrors Figure 8's go-token: a rank releases its predecessor's
// sends only after posting the sequence's receives, so no sequence ever
// lands unexpected and tag reuse across repetitions cannot cross-match.
func RunMsgRateRing(w *mpi.World, cfg RingConfig) (*RingResult, error) {
	cfg.fill()
	procs := w.LocalProcs()
	n := w.Size()
	res := &RingResult{Label: cfg.Label, Ranks: n, LocalRanks: len(procs),
		Messages: n * cfg.K * cfg.Reps}

	// Every rank barriers at entry and exit of its workload (barriers are
	// collective, so each hosted rank must make its own calls); the timing
	// window brackets the goroutines and is barrier-aligned across the job
	// up to spawn overhead.
	start := time.Now()
	errCh := make(chan error, len(procs))
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *mpi.Proc) {
			defer wg.Done()
			errCh <- ringRank(p, cfg)
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(start)
	res.MsgPerSec = float64(res.Messages) / res.Elapsed.Seconds()

	// Quiesce before reading stats: Close waits for the engines' in-flight
	// blocks to retire, so the counters below have settled.
	w.Close()
	for _, p := range procs {
		if m := p.Matcher(); m != nil {
			st := m.Stats()
			res.Matcher.Messages += st.Messages
			res.Matcher.Blocks += st.Blocks
			res.Matcher.Optimistic += st.Optimistic
			res.Matcher.Conflicts += st.Conflicts
			res.Matcher.FastPath += st.FastPath
			res.Matcher.SlowPath += st.SlowPath
			res.Matcher.Unexpected += st.Unexpected
			d := m.DepthStats()
			res.Depth.PostSearches += d.PostSearches
			res.Depth.PostTraversed += d.PostTraversed
		} else {
			d := p.HostStats()
			res.Depth.PostSearches += d.PostSearches
			res.Depth.PostTraversed += d.PostTraversed
		}
	}
	res.Faults = w.FaultStats()
	res.Reliability = w.ReliabilityStats()
	res.Sinks = w.ObsSinks()
	return res, nil
}

// ringRank runs one rank's side of the ring. Per repetition: post the K
// receives from the predecessor, release the predecessor with a ready
// token, await the successor's token, fire the K sends, and wait for
// everything. A rank is its own neighbour in a one-rank world, which
// degenerates to a self-loop throughput test.
func ringRank(p *mpi.Proc, cfg RingConfig) error {
	c := p.World()
	rank, n := c.Rank(), c.Size()
	next, prev := (rank+1)%n, (rank+n-1)%n
	payload := make([]byte, cfg.PayloadBytes)
	bufs := make([][]byte, cfg.K)
	for i := range bufs {
		bufs[i] = make([]byte, cfg.PayloadBytes)
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	var token [1]byte
	reqs := make([]*mpi.Request, 0, 2*cfg.K)
	for rep := 0; rep < cfg.Reps; rep++ {
		reqs = reqs[:0]
		// The token receive goes first: the matching engines pair by tag in
		// any order, but the raw engine pairs arrivals with posts in FIFO
		// order, and the successor's token is the one message every rank
		// receives unconditionally — posted first it completes ready.Wait
		// instead of consuming a data post and deadlocking the ring.
		ready, err := c.Irecv(next, ringReadyTag, token[:])
		if err != nil {
			return err
		}
		for i := 0; i < cfg.K; i++ {
			req, err := c.Irecv(prev, i, bufs[i])
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if err := c.Send(prev, ringReadyTag, nil); err != nil {
			return err
		}
		if _, err := ready.Wait(); err != nil {
			return err
		}
		for i := 0; i < cfg.K; i++ {
			req, err := c.Isend(next, i, payload)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if err := mpi.Waitall(reqs...); err != nil {
			return err
		}
	}
	return c.Barrier()
}
