package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/match"
)

// Modeled message rate. The wall-clock Figure 8 numbers are distorted when
// the simulator runs on fewer cores than DPA threads (EXPERIMENTS.md): the
// goroutine scheduler charges context switches real silicon does not pay,
// and genuinely parallel phases serialize. The cost model below instead
// derives each configuration's throughput from the *counted* work the
// engines report — probes, conflict resolutions — under a pipeline
// bottleneck model: a back-to-back message sequence streams through wire,
// matching, and protocol stages, and the sustained rate is set by the
// slowest stage. Matching on the DPA is a run-to-completion handler per
// message (expensive on a lightweight core) whose *throughput* divides by
// the thread count; matching on the host is cheap per operation but
// strictly serial. Absolute numbers are only as good as the constants; the
// ordering and rough ratios are the point — and they are now independent
// of how many cores the simulation host happens to have.
type CostModel struct {
	// WireNS is the per-message fabric/NIC pipeline occupancy, common to
	// every configuration.
	WireNS float64
	// WireFrameNS is the per-frame fabric/NIC occupancy when eager
	// coalescing batches messages into multi-message wire frames: the
	// doorbell, descriptor, and CQE costs are paid once per frame and
	// amortize over its width. PerMsgHeaderNS is the residual per-message
	// cost inside a frame (sub-header bytes on the wire, sub-record parse).
	// With BatchWidth <= 1 the wire stage is the classic WireNS.
	WireFrameNS    float64
	PerMsgHeaderNS float64
	// BatchWidth is the mean messages per wire frame (a measured quantity:
	// obs.HistCoalesceWidth Mean). 0 or 1 models coalescing off.
	BatchWidth float64
	// HostRecvNS is the host CPU's per-message receive path without any
	// matching (the RDMA-CPU stage cost).
	HostRecvNS float64
	// HostMatchNS is the host's fixed matching overhead per message, and
	// HostProbeNS one PRQ probe, both on the serial host core.
	HostMatchNS float64
	HostProbeNS float64
	// DPAHandlerNS is one run-to-completion matching handler on a DPA core
	// (CQE dispatch, header parse, index walk setup, booking, protocol
	// hand-off) — an order of magnitude above the host's per-message cost,
	// as DPA cores are slow; parallelism is what wins it back.
	DPAHandlerNS float64
	// DPABarrierNS is the partial-barrier share per message.
	DPABarrierNS float64
	// DPAProbeNS is one index-chain probe on a DPA core.
	DPAProbeNS float64
	// DPAFastNS is one fast-path conflict resolution (§III-D3a).
	DPAFastNS float64
	// DPASlowNS is one slow-path round (§III-D3b); slow rounds serialize
	// against the predecessor thread, so they do not divide by Threads.
	DPASlowNS float64
	// DPABlockNS is the per-block serialization: CQ batch drain, block
	// launch, the straggler bubble at the partial barrier's tail, and the
	// retirement hand-off. In the §III-A stream of blocks this cost is paid
	// back to back — block k+1's handlers do not start until block k
	// completes — so it does not divide by Threads.
	DPABlockNS float64
	// Threads is the DPA parallel width.
	Threads int
	// InFlight is the matcher's in-flight block window (DESIGN.md §9):
	// with K blocks overlapped the per-block serialization pipelines K-wide,
	// so the block stage's occupancy divides by K. 0 means 1.
	InFlight int
}

// DefaultCostModel reflects the §II-C architecture sketch: DPA cores are
// power-efficient and roughly an order of magnitude slower per operation
// than a server core, with Threads-way parallelism compensating — which is
// exactly the regime where Figure 8 finds Optimistic-DPA NC comparable to
// MPI-CPU.
func DefaultCostModel() CostModel {
	return CostModel{
		WireNS:         55,
		WireFrameNS:    50,
		PerMsgHeaderNS: 5,
		HostRecvNS:     45,
		HostMatchNS:    35,
		HostProbeNS:    4,
		DPAHandlerNS:   2400,
		DPABarrierNS:   250,
		DPAProbeNS:     90,
		DPAFastNS:      700,
		DPASlowNS:      800,
		DPABlockNS:     800,
		Threads:        32,
		InFlight:       1,
	}
}

// ModeledRate is the outcome of applying the cost model to one measured
// scenario.
type ModeledRate struct {
	Label     string
	NSPerMsg  float64 // bottleneck-stage occupancy per message
	MsgPerSec float64
}

// String renders one row.
func (m ModeledRate) String() string {
	return fmt.Sprintf("%-22s %12.0f msg/s  (%.0f ns/msg bottleneck)", m.Label, m.MsgPerSec, m.NSPerMsg)
}

// Valid reports whether the model produced a usable rate. A degenerate
// model (all stage costs zero — reachable from a zeroed JSON configuration
// or an all-fast-path trace) or an empty measurement yields a zero
// ModeledRate, never Inf/NaN: callers that rank or serialize rates must
// check Valid first.
func (m ModeledRate) Valid() bool { return m.MsgPerSec > 0 }

// wireStage is the fabric occupancy per message. Coalescing replaces N
// lone messages (N × WireNS) with one frame (WireFrameNS + N ×
// PerMsgHeaderNS), so per message the stage shrinks toward PerMsgHeaderNS
// as frames widen.
func (cm CostModel) wireStage() float64 {
	if cm.BatchWidth <= 1 {
		return cm.WireNS
	}
	return cm.WireFrameNS/cm.BatchWidth + cm.PerMsgHeaderNS
}

// hostRecvStage is the host CPU's per-message receive-path cost. A frame
// pays the CQE dispatch and header decode once; sub-records cost only
// their parse.
func (cm CostModel) hostRecvStage() float64 {
	if cm.BatchWidth <= 1 {
		return cm.HostRecvNS
	}
	return cm.HostRecvNS/cm.BatchWidth + cm.PerMsgHeaderNS
}

func rate(label string, stageNS ...float64) ModeledRate {
	worst := 0.0
	for _, s := range stageNS {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return ModeledRate{Label: label}
		}
		if s > worst {
			worst = s
		}
	}
	// A zero bottleneck means every stage cost vanished (a zeroed model):
	// 1e9/0 would be +Inf, which poisons rankings and which encoding/json
	// refuses to marshal. Return the zero (invalid) rate instead.
	if worst <= 0 {
		return ModeledRate{Label: label}
	}
	return ModeledRate{Label: label, NSPerMsg: worst, MsgPerSec: 1e9 / worst}
}

// WireStageNS exposes the fabric stage occupancy per message at the
// model's BatchWidth — the wire row of a stage-by-stage breakdown.
func (cm CostModel) WireStageNS() float64 { return cm.wireStage() }

// OffloadStages decomposes the offload pipeline's matching stage per
// message: the thread-divided handler work, the slow-path rounds that
// serialize against the predecessor thread, and the per-block
// serialization pipelined K-wide by the in-flight window. The stage-by-
// stage view backs whatif's delta output; ModelOffload reduces it to the
// bottleneck rate, so the two can never drift apart.
type OffloadStages struct {
	WireNS        float64 // fabric stage (at the model's BatchWidth)
	ParallelNS    float64 // handler + barrier + probes + fast path, / Threads
	SlowSerialNS  float64 // slow-path rounds (do not divide by Threads)
	BlockSerialNS float64 // per-block serialization / InFlight
}

// MatchNS is the matching stage's total per-message occupancy.
func (s OffloadStages) MatchNS() float64 {
	return s.ParallelNS + s.SlowSerialNS + s.BlockSerialNS
}

// OffloadStages computes the per-stage decomposition of an offloaded run.
// ok is false when the measurement is empty (no messages to divide by).
func (cm CostModel) OffloadStages(st core.EngineStats, depth match.Stats) (OffloadStages, bool) {
	msgs := float64(st.Messages)
	if msgs == 0 {
		msgs = float64(depth.Delivered())
	}
	if msgs == 0 {
		return OffloadStages{}, false
	}
	threads := float64(cm.Threads)
	if threads < 1 {
		threads = 1
	}
	probesPerMsg := float64(depth.ArriveTraversed) / msgs
	fastPerMsg := float64(st.FastPath) / msgs
	slowPerMsg := float64(st.SlowPath) / msgs
	blocksPerMsg := float64(st.Blocks) / msgs
	inflight := float64(cm.InFlight)
	if inflight < 1 {
		inflight = 1
	}
	return OffloadStages{
		WireNS: cm.wireStage(),
		ParallelNS: (cm.DPAHandlerNS + cm.DPABarrierNS +
			probesPerMsg*cm.DPAProbeNS + fastPerMsg*cm.DPAFastNS) / threads,
		SlowSerialNS:  slowPerMsg * cm.DPASlowNS,
		BlockSerialNS: blocksPerMsg * cm.DPABlockNS / inflight,
	}, true
}

// ModelOffload computes the modeled rate of an offloaded run from its
// engine statistics and search-depth profile. The per-message denominator
// is the engine's delivered message count (EngineStats.Messages), falling
// back to the search-depth profile's Delivered when the engine count is
// absent (e.g. analyzer-derived statistics) — both models must price
// against the same message count or host-vs-offload comparisons skew.
func (cm CostModel) ModelOffload(label string, st core.EngineStats, depth match.Stats) ModeledRate {
	stages, ok := cm.OffloadStages(st, depth)
	if !ok {
		return ModeledRate{Label: label}
	}
	return rate(label, stages.WireNS, stages.MatchNS())
}

// HostStageNS is the host's serial matching-stage occupancy per message.
// ok is false when the profile is empty.
func (cm CostModel) HostStageNS(depth match.Stats) (float64, bool) {
	msgs := float64(depth.Delivered())
	if msgs == 0 {
		return 0, false
	}
	probesPerMsg := float64(depth.ArriveTraversed) / msgs
	return cm.hostRecvStage() + cm.HostMatchNS + probesPerMsg*cm.HostProbeNS, true
}

// ModelHost computes the modeled rate of host list matching: the matching
// stage runs serially on one core. The per-message denominator is the
// delivered message count (match.Stats.Delivered), the same quantity
// EngineStats.Messages counts for ModelOffload — with coalesced batch
// arrivals ArriveSearches counts frames-worth of searches and would skew
// host-vs-offload comparisons.
func (cm CostModel) ModelHost(label string, depth match.Stats) ModeledRate {
	stage, ok := cm.HostStageNS(depth)
	if !ok {
		return ModeledRate{Label: label}
	}
	return rate(label, cm.wireStage(), stage)
}

// ModelRaw computes the no-matching reference.
func (cm CostModel) ModelRaw(label string, messages int) ModeledRate {
	if messages == 0 {
		return ModeledRate{Label: label}
	}
	return rate(label, cm.wireStage(), cm.hostRecvStage())
}

// RunModeledFigure8 executes the five Figure 8 scenarios (small wall-clock
// runs to collect operation counts) and converts each to a modeled rate.
// Non-zero coalesceBytes/coalesceMsgs arm eager coalescing in the
// measurement runs; each scenario is then modeled at its *achieved* mean
// frame width (cm.BatchWidth is overridden per scenario from the measured
// obs.HistCoalesceWidth).
func RunModeledFigure8(cm CostModel, k, reps, coalesceBytes, coalesceMsgs int) ([]ModeledRate, error) {
	out := make([]ModeledRate, 0, 5)
	for _, cfg := range Figure8Scenarios() {
		cfg.K, cfg.Reps, cfg.Threads = k, reps, cm.Threads
		cfg.InFlight = cm.InFlight
		cfg.CoalesceBytes, cfg.CoalesceMsgs = coalesceBytes, coalesceMsgs
		res, err := RunMsgRate(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Label, err)
		}
		scm := cm
		scm.BatchWidth = res.BatchWidth
		switch {
		case res.MatchStats.Messages > 0:
			out = append(out, scm.ModelOffload(cfg.Label, res.MatchStats, res.Depth))
		case res.Depth.ArriveSearches > 0:
			out = append(out, scm.ModelHost(cfg.Label, res.Depth))
		default:
			out = append(out, scm.ModelRaw(cfg.Label, res.Messages))
		}
	}
	return out, nil
}
