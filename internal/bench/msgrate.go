// Package bench implements the paper's evaluation harnesses: the Figure 8
// message-rate ping-pong benchmark over the mini-MPI stack, and the
// Figure 6/7 drivers over the trace analyzer.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dpa"
	"repro/internal/match"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// MsgRateConfig describes one Figure 8 scenario. The defaults mirror §VI:
// sequences of K=100 small messages, 500 repetitions, 1024 in-flight
// receives, hash tables twice the in-flight count, 32 DPA threads.
type MsgRateConfig struct {
	Label string
	// Engine selects Optimistic-DPA / MPI-CPU / RDMA-CPU.
	Engine mpi.EngineKind
	// Conflict selects the workload: false = all receives use distinct
	// tags (the "no-conflict" case, NC), true = all receives share one
	// (source, tag) (the "with-conflict" case, WC).
	Conflict bool
	// Matcher configures the offload engine.
	Matcher core.Config
	// K is messages per sequence (default 100).
	K int
	// Reps is the number of sequences (default 500).
	Reps int
	// PayloadBytes is the eager payload size (default 8).
	PayloadBytes int
	// Threads is the DPA thread count (default 32).
	Threads int
	// InFlight is the matcher's in-flight block window K (default 1, the
	// paper's serial stream of blocks). Depths > 1 overlap arrival blocks;
	// fill raises Threads to K×BlockSize (capped at the DPA maximum) so
	// every in-flight handler activation can hold a hardware thread.
	InFlight int
	// CoalesceBytes and CoalesceMsgs arm sender-side eager coalescing
	// (mpi.Options; both zero = off): consecutive eager sends leave as
	// multi-message wire frames, and the achieved mean frame width lands in
	// MsgRateResult.BatchWidth.
	CoalesceBytes int
	CoalesceMsgs  int
	// Faults optionally injects deterministic fabric faults; an active plan
	// arms the reliability sublayer, whose counters land in the result.
	Faults rdma.FaultPlan
	// RetxTimeout overrides the reliability retransmit timeout (faulty runs
	// only; zero keeps the mpi default).
	RetxTimeout time.Duration
	// Obs configures the world's observability sinks. Counters are always
	// collected; set TraceEvents (e.g. via obs.Options.Tracing) to capture
	// event rings for Chrome trace export. The sinks land in
	// MsgRateResult.Sinks.
	Obs obs.Options
}

func (c *MsgRateConfig) fill() {
	if c.K == 0 {
		c.K = 100
	}
	if c.Reps == 0 {
		c.Reps = 500
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 8
	}
	if c.Threads == 0 {
		c.Threads = dpa.DefaultThreads
	}
	if c.Matcher == (core.Config{}) {
		c.Matcher = PaperMatcherConfig()
	}
	if c.InFlight == 0 {
		c.InFlight = 1
	}
	if c.Matcher.InFlightBlocks == 0 {
		c.Matcher.InFlightBlocks = c.InFlight
	}
	if need := c.Matcher.InFlightBlocks * c.Matcher.BlockSize; c.Threads < need {
		// The paper's geometry: 8 blocks × 32 threads fills the BF3 DPA's
		// 256 hardware threads.
		c.Threads = need
		if c.Threads > dpa.MaxThreads {
			c.Threads = dpa.MaxThreads
		}
	}
}

// PaperMatcherConfig returns the §VI prototype configuration: 1024
// in-flight receives, hash tables at twice that, 32 threads.
func PaperMatcherConfig() core.Config {
	return core.Config{
		Bins:              2048,
		MaxReceives:       1024 + 64, // paper's in-flight budget + control slack
		BlockSize:         32,
		EarlyBookingCheck: true,
		LazyRemoval:       true,
		UseInlineHashes:   true,
	}
}

// MsgRateResult is the outcome of one scenario.
type MsgRateResult struct {
	Label      string
	Messages   int
	Elapsed    time.Duration
	MsgPerSec  float64
	Engine     mpi.EngineKind
	MatchStats core.EngineStats // offload engine only
	Depth      match.Stats      // receiver-side search-depth profile
	// BatchWidth is the achieved mean messages per coalesced wire frame
	// across both ranks (0 when coalescing was off or never flushed).
	BatchWidth float64
	// Faults and Reliability are populated when cfg.Faults is active.
	Faults      rdma.FaultSnapshot
	Reliability mpi.ReliabilitySnapshot
	// Sinks are the world's observability sinks (per rank plus the fabric),
	// captured before teardown for stats/trace export. Names are prefixed
	// with the scenario label when one is set.
	Sinks []obs.Named
}

// String renders one result row.
func (r *MsgRateResult) String() string {
	return fmt.Sprintf("%-22s %12.0f msg/s  (%d msgs in %v)",
		r.Label, r.MsgPerSec, r.Messages, r.Elapsed.Round(time.Millisecond))
}

// tags
const (
	goTag   = 5000 // receiver → sender: sequence receives are posted
	ackTag  = 5001 // receiver → sender: sequence fully matched
	dataTag = 7    // WC data tag
)

// RunMsgRate executes the §VI ping-pong: the receiver posts K receives and
// signals readiness; the sender fires the K-message sequence; once the
// receiver has matched (and received) all of them it acknowledges. Message
// rate is total data messages over total elapsed time.
func RunMsgRate(cfg MsgRateConfig) (*MsgRateResult, error) {
	cfg.fill()
	w, err := mpi.NewWorld(2, mpi.Options{
		Engine:        cfg.Engine,
		Matcher:       cfg.Matcher,
		DPA:           dpa.Config{Threads: cfg.Threads},
		RecvDepth:     2 * cfg.K,
		EagerLimit:    1024,
		Faults:        cfg.Faults,
		RetxTimeout:   cfg.RetxTimeout,
		CoalesceBytes: cfg.CoalesceBytes,
		CoalesceMsgs:  cfg.CoalesceMsgs,
		Obs:           cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	sender := w.Proc(0).World()
	receiver := w.Proc(1).World()
	payload := make([]byte, cfg.PayloadBytes)

	tagOf := func(i int) int {
		if cfg.Conflict {
			return dataTag // every receive shares (source=0, tag=7)
		}
		return i // distinct keys spread over the tables
	}

	errCh := make(chan error, 1)
	go func() {
		bufs := make([][]byte, cfg.K)
		for i := range bufs {
			bufs[i] = make([]byte, cfg.PayloadBytes)
		}
		reqs := make([]*mpi.Request, cfg.K)
		for rep := 0; rep < cfg.Reps; rep++ {
			for i := 0; i < cfg.K; i++ {
				req, err := receiver.Irecv(0, tagOf(i), bufs[i])
				if err != nil {
					errCh <- err
					return
				}
				reqs[i] = req
			}
			if err := receiver.Send(0, goTag, nil); err != nil {
				errCh <- err
				return
			}
			if err := mpi.Waitall(reqs...); err != nil {
				errCh <- err
				return
			}
			if err := receiver.Send(0, ackTag, nil); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()

	var sync [1]byte
	start := time.Now()
	for rep := 0; rep < cfg.Reps; rep++ {
		if _, err := sender.Recv(1, goTag, sync[:]); err != nil {
			return nil, err
		}
		for i := 0; i < cfg.K; i++ {
			if _, err := sender.Isend(1, tagOf(i), payload); err != nil {
				return nil, err
			}
		}
		if _, err := sender.Recv(1, ackTag, sync[:]); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	if err := <-errCh; err != nil {
		return nil, err
	}

	res := &MsgRateResult{
		Label:     cfg.Label,
		Messages:  cfg.K * cfg.Reps,
		Elapsed:   elapsed,
		MsgPerSec: float64(cfg.K*cfg.Reps) / elapsed.Seconds(),
		Engine:    cfg.Engine,
	}
	if m := w.Proc(1).Matcher(); m != nil {
		res.MatchStats = m.Stats()
		res.Depth = m.DepthStats()
	} else {
		res.Depth = w.Proc(1).HostStats()
	}
	if cfg.Faults.Active() {
		res.Faults = w.FaultStats()
		res.Reliability = w.ReliabilityStats()
	}
	var frames, coalesced uint64
	for r := 0; r < 2; r++ {
		h := w.Proc(r).Obs().Hist(obs.HistCoalesceWidth)
		frames += h.Count
		coalesced += h.Sum
	}
	if frames > 0 {
		res.BatchWidth = float64(coalesced) / float64(frames)
	}
	// Sink state (atomics) stays readable after the deferred Close; only
	// the names need the scenario prefix for multi-run exports.
	res.Sinks = w.ObsSinks()
	if cfg.Label != "" {
		for i := range res.Sinks {
			res.Sinks[i].Name = cfg.Label + "/" + res.Sinks[i].Name
		}
	}
	return res, nil
}

// Figure8Scenarios returns the five §VI configurations: Optimistic-DPA in
// the no-conflict, with-conflict fast-path, and with-conflict slow-path
// settings, plus the MPI-CPU and RDMA-CPU baselines.
func Figure8Scenarios() []MsgRateConfig {
	fp := PaperMatcherConfig()
	// The fast path requires the all-threads-book-the-same-receive
	// precondition, which needs simultaneous handler activation and no
	// early-booking shortcut (see core.Config docs).
	fp.EarlyBookingCheck = false
	fp.SimultaneousArrival = true

	sp := fp
	sp.DisableFastPath = true

	return []MsgRateConfig{
		{Label: "Optimistic-DPA NC", Engine: mpi.EngineOffload, Conflict: false},
		{Label: "Optimistic-DPA WC-FP", Engine: mpi.EngineOffload, Conflict: true, Matcher: fp},
		{Label: "Optimistic-DPA WC-SP", Engine: mpi.EngineOffload, Conflict: true, Matcher: sp},
		{Label: "MPI-CPU", Engine: mpi.EngineHost, Conflict: false},
		{Label: "RDMA-CPU", Engine: mpi.EngineRaw, Conflict: false},
	}
}
