package bench

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/mpi"
)

// TestDegenerateModelNeverInf is the regression test for the rate() guard:
// a zeroed cost model (reachable from a zeroed JSON config) must yield a
// zero, marshalable ModeledRate — never +Inf, which encoding/json refuses
// and which would poison planner rankings.
func TestDegenerateModelNeverInf(t *testing.T) {
	var cm CostModel // all stage costs zero
	st := core.EngineStats{Messages: 100, Blocks: 4}
	depth := match.Stats{ArriveSearches: 100, ArriveTraversed: 50, Matched: 100}

	for _, r := range []ModeledRate{
		cm.ModelOffload("offload", st, depth),
		cm.ModelHost("host", depth),
		cm.ModelRaw("raw", 100),
	} {
		if r.Valid() {
			t.Errorf("%s: degenerate model reported Valid", r.Label)
		}
		if math.IsInf(r.MsgPerSec, 0) || math.IsNaN(r.MsgPerSec) ||
			math.IsInf(r.NSPerMsg, 0) || math.IsNaN(r.NSPerMsg) {
			t.Errorf("%s: degenerate model leaked Inf/NaN: %+v", r.Label, r)
		}
		if _, err := json.Marshal(r); err != nil {
			t.Errorf("%s: marshal failed: %v", r.Label, err)
		}
	}

	// A healthy model still validates.
	if r := DefaultCostModel().ModelHost("ok", depth); !r.Valid() {
		t.Errorf("healthy model reported invalid: %+v", r)
	}
}

// TestDeliveredMessages pins the unified denominator: delivered counts
// messages entering matching, independent of how arrivals were batched
// into searches and of post-side re-pairings.
func TestDeliveredMessages(t *testing.T) {
	// 400 delivered messages arriving as 100 batched searches: 300 matched
	// at arrival, 100 stored unexpected; 80 posts later drained 60 of the
	// unexpected (60 post-side Matched) and queued 20.
	s := match.Stats{
		ArriveSearches:  100,
		ArriveTraversed: 800,
		Matched:         300 + 60,
		Unexpected:      100,
		PostSearches:    80,
		Queued:          20,
	}
	if got := s.Delivered(); got != 400 {
		t.Fatalf("Delivered() = %d, want 400", got)
	}

	// ModelHost must divide by the 400 delivered messages, not the 100
	// frame searches: probes/msg = 800/400 = 2.
	cm := DefaultCostModel()
	want := cm.HostRecvNS + cm.HostMatchNS + 2*cm.HostProbeNS
	r := cm.ModelHost("coalesced", s)
	if r.NSPerMsg != want {
		t.Fatalf("host stage = %v ns/msg, want %v (delivered-message denominator)", r.NSPerMsg, want)
	}
}

// TestHostOffloadParityCoalesced pins host/offload denominator parity on a
// coalesced run: both engines see the same message stream, so both models
// must price against the same delivered-message count.
func TestHostOffloadParityCoalesced(t *testing.T) {
	const k, reps = 24, 12
	run := func(engine mpi.EngineKind) *MsgRateResult {
		res, err := RunMsgRate(MsgRateConfig{
			Label: "parity", Engine: engine,
			K: k, Reps: reps, CoalesceBytes: 4096, CoalesceMsgs: 8,
		})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		return res
	}
	host := run(mpi.EngineHost)
	off := run(mpi.EngineOffload)

	wantMsgs := uint64(k * reps)
	if got := host.Depth.Delivered(); got != wantMsgs {
		t.Errorf("host delivered %d messages, want %d", got, wantMsgs)
	}
	if got := off.MatchStats.Messages; got != wantMsgs {
		t.Errorf("offload engine counted %d messages, want %d", got, wantMsgs)
	}
	if h, o := host.Depth.Delivered(), off.MatchStats.Messages; h != o {
		t.Errorf("host (%d) and offload (%d) denominators diverge on a coalesced run", h, o)
	}

	cm := DefaultCostModel()
	cm.BatchWidth = host.BatchWidth
	if r := cm.ModelHost("host", host.Depth); !r.Valid() {
		t.Errorf("host model invalid on coalesced run: %+v", r)
	}
	cm.BatchWidth = off.BatchWidth
	if r := cm.ModelOffload("offload", off.MatchStats, off.Depth); !r.Valid() {
		t.Errorf("offload model invalid on coalesced run: %+v", r)
	}
}

// TestModelOffloadDeliveredFallback: analyzer-derived statistics carry no
// EngineStats; the offload model falls back to the depth profile's
// delivered count instead of reporting zero.
func TestModelOffloadDeliveredFallback(t *testing.T) {
	depth := match.Stats{ArriveSearches: 50, ArriveTraversed: 100, Matched: 50}
	r := DefaultCostModel().ModelOffload("fallback", core.EngineStats{}, depth)
	if !r.Valid() {
		t.Fatalf("offload model with depth-only stats should be valid, got %+v", r)
	}
}

// TestModelFootprintBytes pins the footprint model's composition.
func TestModelFootprintBytes(t *testing.T) {
	base := ModelFootprintBytes(FootprintConfig{
		Bins: 128, MaxReceives: 1024, BlockSize: 32, InFlight: 1,
	})
	want := core.IndexTables*128*core.BinModelBytes +
		1024*core.DescriptorModelBytes + 32*EnvelopeModelBytes
	if base != want {
		t.Fatalf("base footprint = %d, want %d", base, want)
	}

	deeper := ModelFootprintBytes(FootprintConfig{
		Bins: 128, MaxReceives: 1024, BlockSize: 32, InFlight: 8,
	})
	if deeper-base != 7*32*EnvelopeModelBytes {
		t.Fatalf("in-flight slots: %d -> %d, want +%d", base, deeper, 7*32*EnvelopeModelBytes)
	}

	coal := ModelFootprintBytes(FootprintConfig{
		Bins: 128, MaxReceives: 1024, BlockSize: 32, InFlight: 1,
		CoalesceBytes: 4096, Peers: 3,
	})
	if coal-base != 3*(4096+CoalesceHeaderBytes) {
		t.Fatalf("coalescer buffers: %d -> %d", base, coal)
	}

	// InFlight 0 normalizes to 1 (matching core.Config).
	if z := ModelFootprintBytes(FootprintConfig{Bins: 128, MaxReceives: 1024, BlockSize: 32}); z != base {
		t.Fatalf("zero InFlight = %d, want %d", z, base)
	}
}
