package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mpi"
)

// TestMsgRateCoalesced runs the NC scenario with eager coalescing armed:
// the sequence's back-to-back sends must actually form multi-message
// frames, reported as the achieved mean batch width.
func TestMsgRateCoalesced(t *testing.T) {
	cfg := quick(Figure8Scenarios()[0]) // Optimistic-DPA NC
	cfg.CoalesceBytes = 4096
	cfg.CoalesceMsgs = 32
	res, err := RunMsgRate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 32*5 || res.MsgPerSec <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.BatchWidth <= 1 {
		t.Fatalf("batch width %.2f, want > 1 (coalescing never batched)", res.BatchWidth)
	}

	off := quick(Figure8Scenarios()[0])
	resOff, err := RunMsgRate(off)
	if err != nil {
		t.Fatal(err)
	}
	if resOff.BatchWidth != 0 {
		t.Fatalf("coalescing off reported batch width %.2f", resOff.BatchWidth)
	}
}

// TestModeledCoalescingGain is the perf acceptance criterion: for small
// (≤256 B) eager messages, the modeled message rate with coalescing at its
// best swept batch size must beat the uncoalesced model by at least 15%.
func TestModeledCoalescingGain(t *testing.T) {
	cfg := quick(Figure8Scenarios()[3]) // MPI-CPU
	cfg.PayloadBytes = 8
	base, err := RunMsgRate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	baseRate := cm.ModelHost("base", base.Depth).MsgPerSec

	best := 0.0
	for _, msgs := range []int{2, 4, 8, 16, 32} {
		c := cfg
		c.CoalesceBytes = 16 << 10
		c.CoalesceMsgs = msgs
		res, err := RunMsgRate(c)
		if err != nil {
			t.Fatal(err)
		}
		wcm := cm
		wcm.BatchWidth = res.BatchWidth
		if r := wcm.ModelHost("coalesced", res.Depth).MsgPerSec; r > best {
			best = r
		}
	}
	if best < baseRate*1.15 {
		t.Fatalf("best coalesced modeled rate %.0f msg/s < 1.15 × base %.0f msg/s", best, baseRate)
	}
}

// TestBenchJSONRoundTrip exercises the machine-readable results schema.
func TestBenchJSONRoundTrip(t *testing.T) {
	doc := &BenchDoc{
		Config: BenchConfig{K: 100, Reps: 500, PayloadBytes: 8, Threads: 32, InFlight: 1},
		Results: []BenchEntry{
			{Label: "Optimistic-DPA NC", Engine: mpi.EngineOffload.String(),
				MsgPerSec: 1e6, Messages: 50000, ElapsedNS: 5e7, BatchWidth: 7.5},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBenchJSON(path, doc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema || len(got.Results) != 1 || got.Results[0].BatchWidth != 7.5 {
		t.Fatalf("round trip mangled the document: %+v", got)
	}

	for name, mutate := range map[string]func(*BenchDoc){
		"bad-schema": func(d *BenchDoc) { d.Schema = "other/v9" },
		"no-results": func(d *BenchDoc) { d.Results = nil },
		"no-label":   func(d *BenchDoc) { d.Results[0].Label = "" },
		"zero-rate":  func(d *BenchDoc) { d.Results[0].MsgPerSec = 0 },
		"no-elapsed": func(d *BenchDoc) { d.Results[0].ElapsedNS = 0 },
		"dup-label":  func(d *BenchDoc) { d.Results = append(d.Results, d.Results[0]) },
		"neg-width":  func(d *BenchDoc) { d.Results[0].BatchWidth = -1 },
	} {
		bad := *got
		bad.Results = append([]BenchEntry(nil), got.Results...)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt document", name)
		} else if !strings.HasPrefix(err.Error(), "bench:") {
			t.Errorf("%s: unexpected error namespace: %v", name, err)
		}
	}
}
