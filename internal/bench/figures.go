package bench

import (
	"fmt"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/tracegen"
)

// Figure7Bins are the paper's headline bin counts; the artifact sweeps
// ArtifactBins (1…256 in powers of two).
var (
	Figure7Bins  = []int{1, 32, 128}
	ArtifactBins = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// RunFigure6 generates every Table II application at the given scale and
// returns one analysis report per app (call-mix populated), in Table II
// order.
func RunFigure6(scale int) ([]*analyzer.Report, error) {
	var out []*analyzer.Report
	for _, app := range tracegen.Apps() {
		tr := app.Generate(tracegen.Config{Scale: scale})
		rep, err := analyzer.Analyze(tr, analyzer.Config{Bins: 32})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// RunFigure7 sweeps every application over the given bin counts and
// returns reports keyed by application name, aligned with bins.
func RunFigure7(scale int, bins []int) (map[string][]*analyzer.Report, error) {
	return RunFigure7Config(scale, bins, analyzer.Config{})
}

// RunFigure7Config is RunFigure7 with an explicit analyzer configuration
// (e.g. a baseline matching strategy for cross-engine comparison).
func RunFigure7Config(scale int, bins []int, cfg analyzer.Config) (map[string][]*analyzer.Report, error) {
	out := make(map[string][]*analyzer.Report)
	for _, app := range tracegen.Apps() {
		tr := app.Generate(tracegen.Config{Scale: scale})
		reps, err := analyzer.Sweep(tr, bins, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		out[app.Name] = reps
	}
	return out, nil
}

// Figure7Reduction summarizes the headline Figure 7 claim: the cross-app
// average queue depth at each bin count and its reduction relative to the
// first (1-bin, traditional) entry.
type Figure7Reduction struct {
	Bins         []int
	AvgDepth     []float64
	ReductionPct []float64 // vs the first bin count
}

// Reduce computes the cross-application averages from RunFigure7 output.
func Reduce(byApp map[string][]*analyzer.Report, bins []int) Figure7Reduction {
	red := Figure7Reduction{
		Bins:         bins,
		AvgDepth:     make([]float64, len(bins)),
		ReductionPct: make([]float64, len(bins)),
	}
	names := make([]string, 0, len(byApp))
	for name := range byApp {
		names = append(names, name)
	}
	sort.Strings(names)
	// Only p2p applications contribute depth signal (collectives-only apps
	// have no matching traffic and would dilute the average with zeros, as
	// in the paper's plots they are shown flat at zero).
	n := 0
	for _, name := range names {
		reps := byApp[name]
		if reps[0].Depth.ArriveSearches == 0 {
			continue
		}
		for i := range bins {
			red.AvgDepth[i] += reps[i].AvgDepth()
		}
		n++
	}
	if n > 0 {
		for i := range bins {
			red.AvgDepth[i] /= float64(n)
		}
	}
	for i := range bins {
		if red.AvgDepth[0] > 0 {
			red.ReductionPct[i] = 100 * (1 - red.AvgDepth[i]/red.AvgDepth[0])
		}
	}
	return red
}
