package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchSchema identifies the machine-readable msgrate result format.
// Consumers (cmd/obscheck -bench, CI artifact diffing) must reject
// documents with any other schema string.
const BenchSchema = "repro/msgrate-bench/v1"

// BenchDoc is the -bench-json output of cmd/msgrate: the run configuration
// plus one entry per scenario. The document is self-describing via Schema
// so downstream tooling can hard-fail on format drift.
type BenchDoc struct {
	Schema  string       `json:"schema"`
	Config  BenchConfig  `json:"config"`
	Results []BenchEntry `json:"results"`
}

// BenchConfig records the knobs the run was taken under.
type BenchConfig struct {
	K             int    `json:"k"`
	Reps          int    `json:"reps"`
	PayloadBytes  int    `json:"payload_bytes"`
	Threads       int    `json:"threads"`
	InFlight      int    `json:"inflight"`
	CoalesceBytes int    `json:"coalesce_bytes"`
	CoalesceMsgs  int    `json:"coalesce_msgs"`
	Faults        string `json:"faults,omitempty"`
	Modeled       bool   `json:"modeled"`
	// Transport is the fabric the run used: "" or "inproc" (in-process
	// channels, the default), "tcp", "udp" (out-of-process sockets),
	// "shm" (shared-memory rings), or "hybrid" (locality-routed shm/TCP).
	Transport string `json:"transport,omitempty"`
	// SimHosts is the number of simulated hosts a hybrid run spread its
	// ranks across (0 when unused).
	SimHosts int `json:"sim_hosts,omitempty"`
	// Ranks is the world size for ring-mode runs (0 for the classic
	// two-rank Figure 8 ping-pong).
	Ranks int `json:"ranks,omitempty"`
	// Cores is runtime.NumCPU() on the measuring host — multi-process
	// scaling numbers are meaningless without it.
	Cores int `json:"cores,omitempty"`
}

// BenchEntry is one scenario's outcome. Wall-clock runs fill Messages /
// ElapsedNS / AllocsPerMsg; modeled runs fill NSPerMsg instead and leave
// ElapsedNS zero.
type BenchEntry struct {
	Label        string  `json:"label"`
	Engine       string  `json:"engine,omitempty"`
	MsgPerSec    float64 `json:"msg_per_sec"`
	Messages     int     `json:"messages,omitempty"`
	ElapsedNS    int64   `json:"elapsed_ns,omitempty"`
	NSPerMsg     float64 `json:"ns_per_msg,omitempty"`
	BatchWidth   float64 `json:"batch_width,omitempty"`
	AllocsPerMsg float64 `json:"allocs_per_msg,omitempty"`
	// Shared-memory transport tallies (shm/hybrid runs): waits resolved
	// within the spin budget vs spin-to-park transitions, and send-side
	// full-ring stall episodes. Zero and omitted elsewhere.
	ShmSpinWakes uint64 `json:"shm_spin_wakes,omitempty"`
	ShmParks     uint64 `json:"shm_parks,omitempty"`
	ShmRingFull  uint64 `json:"shm_ring_full,omitempty"`
}

// Validate checks the structural invariants downstream tooling relies on.
func (d *BenchDoc) Validate() error {
	if d.Schema != BenchSchema {
		return fmt.Errorf("bench: schema %q, want %q", d.Schema, BenchSchema)
	}
	if len(d.Results) == 0 {
		return fmt.Errorf("bench: no results")
	}
	switch d.Config.Transport {
	case "", "inproc", "tcp", "udp", "shm", "hybrid":
	default:
		return fmt.Errorf("bench: unknown transport %q", d.Config.Transport)
	}
	if d.Config.Ranks < 0 {
		return fmt.Errorf("bench: negative ranks %d", d.Config.Ranks)
	}
	if d.Config.SimHosts < 0 {
		return fmt.Errorf("bench: negative sim_hosts %d", d.Config.SimHosts)
	}
	seen := make(map[string]bool, len(d.Results))
	for i, r := range d.Results {
		if r.Label == "" {
			return fmt.Errorf("bench: results[%d]: missing label", i)
		}
		if seen[r.Label] {
			return fmt.Errorf("bench: results[%d]: duplicate label %q", i, r.Label)
		}
		seen[r.Label] = true
		if r.MsgPerSec <= 0 {
			return fmt.Errorf("bench: results[%d] (%s): msg_per_sec %v, want > 0", i, r.Label, r.MsgPerSec)
		}
		if !d.Config.Modeled && r.ElapsedNS <= 0 {
			return fmt.Errorf("bench: results[%d] (%s): wall-clock run without elapsed_ns", i, r.Label)
		}
		if r.BatchWidth < 0 || r.AllocsPerMsg < 0 || r.Messages < 0 {
			return fmt.Errorf("bench: results[%d] (%s): negative metric", i, r.Label)
		}
	}
	return nil
}

// WriteBenchJSON validates doc and writes it to path, indented.
func WriteBenchJSON(path string, doc *BenchDoc) error {
	doc.Schema = BenchSchema
	if err := doc.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON loads and validates a -bench-json document.
func ReadBenchJSON(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}
