package core

import (
	"fmt"

	"repro/internal/match"
)

// Sequential adapts an OptimisticMatcher to the match.Matcher interface,
// processing every arrival as a one-message block. It is what the trace
// analyzer replays traces through, and what the golden-model property tests
// compare against the baselines. The adapter panics on ErrTableFull —
// callers that can overflow the descriptor table must size it accordingly
// or use PostRecv directly and implement the software fallback.
type Sequential struct {
	m *OptimisticMatcher
}

// Sequential returns the match.Matcher view of the engine.
func (m *OptimisticMatcher) Sequential() *Sequential {
	return &Sequential{m: m}
}

// PostRecv implements match.Matcher.
func (s *Sequential) PostRecv(r *match.Recv) (*match.Envelope, bool) {
	env, ok, err := s.m.PostRecv(r)
	if err != nil {
		panic(fmt.Sprintf("core: Sequential adapter: %v", err))
	}
	return env, ok
}

// Arrive implements match.Matcher.
func (s *Sequential) Arrive(e *match.Envelope) (*match.Recv, bool) {
	res := s.m.Arrive(e)
	if res.Unexpected {
		return nil, false
	}
	return res.Recv, true
}

// PostedDepth implements match.Matcher.
func (s *Sequential) PostedDepth() int { return s.m.PostedDepth() }

// UnexpectedDepth implements match.Matcher.
func (s *Sequential) UnexpectedDepth() int { return s.m.UnexpectedDepth() }

// Stats implements match.Matcher.
func (s *Sequential) Stats() match.Stats { return s.m.DepthStats() }

// ResetStats implements match.Matcher.
func (s *Sequential) ResetStats() { s.m.ResetDepthStats() }

var _ match.Matcher = (*Sequential)(nil)
