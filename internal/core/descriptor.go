package core

import (
	"sync/atomic"

	"repro/internal/match"
)

// Descriptor states. Transitions: free → posted (PostRecv), posted →
// consumed (a matching thread's CAS — the authoritative claim), consumed →
// free (unlink + release at block finish).
const (
	stateFree uint32 = iota
	statePosted
	stateConsumed
)

// descriptor is a receive descriptor slot (§III-B: "receive descriptors are
// stored in a fixed-size table"). The booking word packs the current block
// epoch in the high 32 bits and the N-bit booking bitmap in the low 32, so
// bitmaps left over from finished blocks are invalidated without a clearing
// sweep.
//
// Chain links: next is atomic because matching threads traverse chains
// while an eager-removal peer may unlink entries; unlink never clears next,
// so a traverser standing on an unlinked entry falls through into the rest
// of the chain. prev is only touched under the bucket's remove lock or the
// matcher lock.
type descriptor struct {
	recv  *match.Recv
	src   match.Rank
	tag   match.Tag
	comm  match.CommID
	class match.WildcardClass
	label uint64 // posting-order label (constraint C1 across indexes)
	seqID uint64 // compatible-sequence ID (§III-D3a fast path)

	state   atomic.Uint32
	booking atomic.Uint64 // epoch<<32 | bitmap

	// consumeEpoch records the block epoch at which the descriptor was
	// consumed; the fast-path walk uses it to distinguish entries consumed
	// in earlier blocks (skip silently) from entries consumed by peer
	// threads of the current block (count as taken positions).
	consumeEpoch atomic.Uint32

	next     atomic.Pointer[descriptor]
	prev     *descriptor
	owner    *rbucket // chain the descriptor lives in
	slot     int32    // index in the table, -1 for none
	unlinked bool     // set once removed from its chain
}

// bookingBits returns the bitmap if the word's epoch matches cur, else 0.
func (d *descriptor) bookingBits(cur uint32) uint32 {
	w := d.booking.Load()
	if uint32(w>>32) != cur {
		return 0
	}
	return uint32(w)
}

// book sets bit tid in the booking bitmap for epoch cur.
func (d *descriptor) book(cur uint32, tid int) {
	for {
		w := d.booking.Load()
		var bits uint32
		if uint32(w>>32) == cur {
			bits = uint32(w)
		}
		nw := uint64(cur)<<32 | uint64(bits|1<<uint(tid))
		if d.booking.CompareAndSwap(w, nw) {
			return
		}
	}
}

// consume attempts the authoritative posted→consumed transition, recording
// the consuming epoch. It reports whether this caller won the descriptor.
func (d *descriptor) consume(epoch uint32) bool {
	if d.state.CompareAndSwap(statePosted, stateConsumed) {
		d.consumeEpoch.Store(epoch)
		return true
	}
	return false
}

// isConsumed reports whether the descriptor has been consumed.
func (d *descriptor) isConsumed() bool { return d.state.Load() == stateConsumed }

// matches reports whether the descriptor's receive matches e.
func (d *descriptor) matches(e *match.Envelope) bool {
	if d.comm != e.Comm {
		return false
	}
	if d.src != match.AnySource && d.src != e.Source {
		return false
	}
	if d.tag != match.AnyTag && d.tag != e.Tag {
		return false
	}
	return true
}

// descriptorTable is the fixed-size descriptor pool (§IV-E: 64 bytes per
// descriptor in the DPA memory model). Allocation and release run under the
// matcher lock.
type descriptorTable struct {
	slots []descriptor
	free  []int32
	used  int

	// liveCount tracks allocated descriptors atomically so PostedDepth
	// snapshots do not need the matcher lock. Between a thread's consume
	// and the block's Finish a consumed descriptor still counts — the
	// counter reflects an instant, not a linearized depth.
	liveCount atomic.Int64
}

func newDescriptorTable(n int) *descriptorTable {
	t := &descriptorTable{
		slots: make([]descriptor, n),
		free:  make([]int32, 0, n),
	}
	for i := n - 1; i >= 0; i-- {
		t.slots[i].slot = int32(i)
		t.free = append(t.free, int32(i))
	}
	return t
}

// alloc takes a free descriptor, or returns nil when the table is full
// (the ErrTableFull condition).
func (t *descriptorTable) alloc() *descriptor {
	if len(t.free) == 0 {
		return nil
	}
	i := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	d := &t.slots[i]
	d.state.Store(statePosted)
	d.next.Store(nil)
	d.prev = nil
	d.owner = nil
	d.unlinked = false
	t.used++
	t.liveCount.Add(1)
	return d
}

// release returns a consumed, unlinked descriptor to the free pool.
func (t *descriptorTable) release(d *descriptor) {
	d.state.Store(stateFree)
	d.recv = nil
	t.free = append(t.free, d.slot)
	t.used--
	t.liveCount.Add(-1)
}

// get returns the descriptor at slot i.
func (t *descriptorTable) get(i int32) *descriptor { return &t.slots[i] }

// live returns the number of allocated descriptors still in posted state.
func (t *descriptorTable) live() int {
	live := 0
	for i := range t.slots {
		if t.slots[i].state.Load() == statePosted {
			live++
		}
	}
	return live
}

// capacity returns the table size.
func (t *descriptorTable) capacity() int { return len(t.slots) }
