package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/match"
)

// Descriptor states, stored in the low bits of the packed ownership word.
// Transitions: free → posted (PostRecv), posted → consumed (a matching
// thread's CAS — the authoritative claim), consumed → consumed with a LOWER
// block sequence (an earlier in-flight block steals the receive, see
// consume), consumed → free (unlink + release at block retirement).
const (
	stateFree uint64 = iota
	statePosted
	stateConsumed
)

// Ownership-word layout: state in bits [1:0], consuming thread ID in bits
// [7:2] (MaxBlockSize = 32 fits in 6 bits), consuming block sequence in the
// remaining 56 bits. Packing all three into one word makes claim, steal, and
// ownership re-check single atomic operations.
const (
	ownStateBits = 2
	ownTidBits   = 6
	ownSeqShift  = ownStateBits + ownTidBits
	ownStateMask = 1<<ownStateBits - 1
	ownTidMask   = 1<<ownTidBits - 1
)

func packConsumed(seq uint64, tid int) uint64 {
	return seq<<ownSeqShift | uint64(tid)<<ownStateBits | stateConsumed
}

func ownState(w uint64) uint64 { return w & ownStateMask }
func ownSeq(w uint64) uint64   { return w >> ownSeqShift }

// descriptor is a receive descriptor slot (§III-B: "receive descriptors are
// stored in a fixed-size table"). Each booking word packs a block epoch in
// the high 32 bits and the N-bit booking bitmap in the low 32, so bitmaps
// left over from finished blocks are invalidated without a clearing sweep;
// with several blocks in flight each ring slot gets its own booking word
// (slot = epoch mod MaxInFlightBlocks), so concurrent blocks never clobber
// each other's bookings.
//
// Chain links: next is atomic because matching threads traverse chains
// while an eager-removal peer may unlink entries; unlink never clears next,
// so a traverser standing on an unlinked entry falls through into the rest
// of the chain. prev is only touched under the bucket's remove lock.
type descriptor struct {
	recv  *match.Recv
	src   match.Rank
	tag   match.Tag
	comm  match.CommID
	class match.WildcardClass
	label uint64 // posting-order label (constraint C1 across indexes)
	seqID uint64 // compatible-sequence ID (§III-D3a fast path)

	// word is the packed ownership word: state | consuming tid | consuming
	// block sequence.
	word atomic.Uint64

	booking [MaxInFlightBlocks]atomic.Uint64 // per ring slot: epoch<<32 | bitmap

	next     atomic.Pointer[descriptor]
	prev     *descriptor
	owner    *rbucket // chain the descriptor lives in
	slot     int32    // index in the table, -1 for none
	unlinked bool     // set once removed from its chain
}

// bookingBits returns the bitmap for epoch cur if that epoch's ring slot
// still carries it, else 0.
func (d *descriptor) bookingBits(cur uint32) uint32 {
	w := d.booking[cur%MaxInFlightBlocks].Load()
	if uint32(w>>32) != cur {
		return 0
	}
	return uint32(w)
}

// book sets bit tid in the booking bitmap for epoch cur.
func (d *descriptor) book(cur uint32, tid int) {
	word := &d.booking[cur%MaxInFlightBlocks]
	for {
		w := word.Load()
		var bits uint32
		if uint32(w>>32) == cur {
			bits = uint32(w)
		}
		nw := uint64(cur)<<32 | uint64(bits|1<<uint(tid))
		if word.CompareAndSwap(w, nw) {
			return
		}
	}
}

// consume claims d for thread tid of block seq. A posted descriptor is taken
// outright. A descriptor provisionally consumed by a HIGHER-sequence block
// is stolen: the lower block serializes first, so its claim has precedence,
// and the higher block discovers the theft when it revalidates at
// retirement. A descriptor held at or below seq is permanently gone from
// this block's point of view. Steals only ever lower the owning sequence, so
// chains of steals terminate.
func (d *descriptor) consume(seq uint64, tid int) bool {
	ok, _ := d.consumeFrom(seq, tid)
	return ok
}

// consumeFrom is consume reporting provenance: on success, stolenFrom is
// the sequence of the higher block the descriptor was taken back from, or
// 0 when it was plainly posted (no steal).
func (d *descriptor) consumeFrom(seq uint64, tid int) (ok bool, stolenFrom uint64) {
	for {
		w := d.word.Load()
		switch ownState(w) {
		case statePosted:
			if d.word.CompareAndSwap(w, packConsumed(seq, tid)) {
				return true, 0
			}
		case stateConsumed:
			if ownSeq(w) <= seq {
				return false, 0
			}
			if d.word.CompareAndSwap(w, packConsumed(seq, tid)) {
				return true, ownSeq(w)
			}
		default:
			return false, 0 // free: mid-recycle, never a candidate
		}
	}
}

// takenFrom reports whether d is unavailable to a searcher in block seq:
// consumed at or below seq (a peer or an earlier block owns it for good).
// Descriptors consumed by higher-sequence blocks remain available — they are
// stealable.
func (d *descriptor) takenFrom(seq uint64) bool {
	w := d.word.Load()
	switch ownState(w) {
	case statePosted:
		return false
	case stateConsumed:
		return ownSeq(w) <= seq
	default:
		return true
	}
}

// ownedBy reports whether d is currently consumed by exactly (seq, tid) —
// the retirement-time revalidation check.
func (d *descriptor) ownedBy(seq uint64, tid int) bool {
	return d.word.Load() == packConsumed(seq, tid)
}

// isConsumed reports whether the descriptor has been consumed.
func (d *descriptor) isConsumed() bool { return ownState(d.word.Load()) == stateConsumed }

// markPosted publishes the descriptor as available (PostRecv and tests).
func (d *descriptor) markPosted() { d.word.Store(statePosted) }

// matches reports whether the descriptor's receive matches e.
func (d *descriptor) matches(e *match.Envelope) bool {
	if d.comm != e.Comm {
		return false
	}
	if d.src != match.AnySource && d.src != e.Source {
		return false
	}
	if d.tag != match.AnyTag && d.tag != e.Tag {
		return false
	}
	return true
}

// reclaim is one released descriptor waiting out its grace period: the slot
// may be reused once every block with sequence <= seq has retired, because
// only such blocks can still be traversing a chain the descriptor was
// unlinked from.
type reclaim struct {
	slot int32
	seq  uint64
}

// descriptorTable is the fixed-size descriptor pool (§IV-E: 64 bytes per
// descriptor in the DPA memory model). It is self-locking: posts allocate
// while arrival blocks run. Release is epoch-based: a retiring block pushes
// its consumed descriptors onto a deferred FIFO tagged with the current
// block-sequence watermark, and alloc recycles entries only after the retire
// frontier has passed their tag, so no in-flight block can ever stand on a
// reused slot.
type descriptorTable struct {
	mu    sync.Mutex
	slots []descriptor
	free  []int32
	used  int

	// deferred is a circular FIFO of released slots awaiting their grace
	// period; tags are monotone because blocks retire in sequence order.
	deferred []reclaim
	defHead  int
	defLen   int

	// retired points at the matcher's retire frontier; nil (unit tests)
	// means release immediately.
	retired *atomic.Uint64

	// liveCount tracks allocated descriptors atomically so PostedDepth
	// snapshots do not need any lock. Between a thread's consume and the
	// block's retirement a consumed descriptor still counts — the counter
	// reflects an instant, not a linearized depth.
	liveCount atomic.Int64
}

func newDescriptorTable(n int) *descriptorTable {
	t := &descriptorTable{
		slots:    make([]descriptor, n),
		free:     make([]int32, 0, n),
		deferred: make([]reclaim, n),
	}
	for i := n - 1; i >= 0; i-- {
		t.slots[i].slot = int32(i)
		t.free = append(t.free, int32(i))
	}
	return t
}

// alloc takes a free descriptor, or returns nil when the table is full
// (the ErrTableFull condition). Deferred releases whose grace period has
// expired are recycled first.
func (t *descriptorTable) alloc() *descriptor {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.free) == 0 {
		t.drainLocked()
		if len(t.free) == 0 {
			return nil
		}
	}
	i := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	d := &t.slots[i]
	d.next.Store(nil)
	d.prev = nil
	d.owner = nil
	d.unlinked = false
	t.used++
	t.liveCount.Add(1)
	return d
}

// drainLocked moves reclaimable deferred entries to the free list.
func (t *descriptorTable) drainLocked() {
	frontier := ^uint64(0)
	if t.retired != nil {
		frontier = t.retired.Load()
	}
	for t.defLen > 0 {
		rec := t.deferred[t.defHead]
		if rec.seq > frontier {
			break
		}
		t.free = append(t.free, rec.slot)
		t.defHead = (t.defHead + 1) % len(t.deferred)
		t.defLen--
	}
}

// release retires a consumed, unlinked descriptor; its slot becomes
// allocatable once every block with sequence <= afterSeq has retired.
// recv is deliberately NOT cleared: a higher in-flight block that was just
// robbed of d may still read it for a provisional result (re-derived at its
// own retirement), and the next allocation's field writes are ordered behind
// that block's retirement by the reclaim gate.
func (t *descriptorTable) release(d *descriptor, afterSeq uint64) {
	d.word.Store(stateFree)
	t.mu.Lock()
	t.deferred[(t.defHead+t.defLen)%len(t.deferred)] = reclaim{slot: d.slot, seq: afterSeq}
	t.defLen++
	t.used--
	t.mu.Unlock()
	t.liveCount.Add(-1)
}

// get returns the descriptor at slot i.
func (t *descriptorTable) get(i int32) *descriptor { return &t.slots[i] }

// live returns the number of allocated descriptors still in posted state.
func (t *descriptorTable) live() int {
	live := 0
	for i := range t.slots {
		if ownState(t.slots[i].word.Load()) == statePosted {
			live++
		}
	}
	return live
}

// capacity returns the table size.
func (t *descriptorTable) capacity() int { return len(t.slots) }
