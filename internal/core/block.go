package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/match"
	"repro/internal/obs"
)

// Path identifies how a message's match was finalized, for statistics and
// for the Figure 8 scenario assertions.
type Path uint8

const (
	// PathOptimistic: the optimistic phase succeeded with no conflict.
	PathOptimistic Path = iota
	// PathFast: a conflict was resolved on the fast path (§III-D3a).
	PathFast
	// PathSlow: a conflict (or a lower thread's conflict) forced the slow
	// path (§III-D3b).
	PathSlow
	// PathUnexpected: no receive matched; the message was stored.
	PathUnexpected
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case PathOptimistic:
		return "optimistic"
	case PathFast:
		return "fast"
	case PathSlow:
		return "slow"
	case PathUnexpected:
		return "unexpected"
	}
	return fmt.Sprintf("Path(%d)", uint8(p))
}

// Result is the outcome of matching one message.
type Result struct {
	Env        *match.Envelope
	Recv       *match.Recv // matched receive, nil when Unexpected
	Unexpected bool
	Path       Path
}

// barrierSpins bounds how long a barrier waiter busy-polls before yielding
// to the scheduler. On a single-core host spinning can never observe
// progress (the completing goroutine needs the core), so the budget drops
// to zero and waiters yield immediately.
var barrierSpins = func() int {
	if runtime.NumCPU() > 1 {
		return 128
	}
	return 0
}()

// frontier tracks completion of per-thread milestones in thread order: the
// completed prefix of threads 0..k-1 is what waiters wait on. Threads
// complete in arbitrary order. Two interchangeable implementations share
// the type:
//
//   - The default atomic barrier packs the block epoch and a
//     completed-thread bitmap into one word (epoch<<32 | bitmap — the
//     epoch is the sense of a sense-reversing barrier, so stale words from
//     finished blocks can never satisfy a waiter). complete is a single
//     atomic OR; waitThrough(i) checks that the low i+1 bits are all set,
//     spinning briefly and then yielding with runtime.Gosched. No lock, no
//     wakeup storm, no allocation — the cost profile of the DPA's hardware
//     partial barrier (§III-D1).
//   - The condvar implementation (Config.CondvarBarrier) advances a level
//     under a mutex and broadcasts — the pre-optimization host-style
//     barrier, kept selectable for the BenchmarkAblationBarrier ablation.
type frontier struct {
	condvar bool
	epoch   uint32

	word atomic.Uint64 // epoch<<32 | completed-thread bitmap

	mu    *sync.Mutex
	cond  *sync.Cond
	done  [MaxBlockSize]bool
	level int // all threads < level have completed
}

// reset prepares the frontier for a new block of n threads in epoch e.
func (f *frontier) reset(condvar bool, mu *sync.Mutex, cond *sync.Cond, n int, e uint32) {
	f.condvar = condvar
	f.epoch = e
	if !condvar {
		f.word.Store(uint64(e) << 32)
		return
	}
	f.mu, f.cond = mu, cond
	for i := 0; i < n; i++ {
		f.done[i] = false
	}
	f.level = 0
}

// complete marks thread i done and advances the frontier.
func (f *frontier) complete(i int) {
	if !f.condvar {
		f.word.Or(uint64(1) << uint(i))
		return
	}
	f.mu.Lock()
	f.done[i] = true
	advanced := false
	for f.level < MaxBlockSize && f.done[f.level] {
		f.level++
		advanced = true
	}
	f.mu.Unlock()
	if advanced {
		f.cond.Broadcast()
	}
}

// waitThrough blocks until every thread 0..i has completed.
func (f *frontier) waitThrough(i int) {
	if i < 0 {
		return
	}
	if !f.condvar {
		want := uint64(1)<<uint(i+1) - 1
		for spins := 0; ; spins++ {
			w := f.word.Load()
			if w&want == want || uint32(w>>32) != f.epoch {
				// Prefix complete — or the word belongs to another epoch,
				// which can only mean this block already finished
				// (defensive: all waiters join before Finish).
				return
			}
			if spins >= barrierSpins {
				runtime.Gosched()
			}
		}
	}
	f.mu.Lock()
	for f.level <= i {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Block processes up to BlockSize consecutive messages in parallel. Obtain
// one with BeginBlock, call Match concurrently from exactly n goroutines
// (thread IDs 0..n-1, one per message in arrival order), then call Finish
// (or FinishInto). Up to Config.InFlightBlocks blocks run concurrently;
// each carries a monotone sequence number and they retire in sequence
// order, which is what serializes their effects (DESIGN.md §9).
type Block struct {
	m       *OptimisticMatcher
	n       int
	mask    uint32
	seq     uint64 // block sequence; blocks retire in this order
	epoch   uint32 // uint32(seq): booking-bitmap and barrier sense tag
	horizon uint64 // post watermark snapshot: labels >= horizon are invisible

	// headAtStart records whether every lower-sequence block had already
	// retired when this block began. If so, no steal can ever touch this
	// block's pairings (steals only flow from lower-sequence blocks), so
	// matched results commit at Match time — the only mode at depth 1.
	// Otherwise every result stays provisional until retirement re-derives
	// the block's assignments in thread order (validate).
	headAtStart bool

	// Deliver, when set, is called once per DEFERRED result (a result that
	// could not commit at Match time because a lower-sequence block was
	// still in flight) after the block retires, outside all engine locks.
	// Early-committed results — the common case, and the only case at
	// in-flight depth 1 — are never re-delivered; their Match call already
	// returned final=true.
	Deliver func(tid int, res Result)

	fmu   sync.Mutex // shared by both frontiers
	fcond *sync.Cond

	booked frontier // partial barrier: booking milestones (§III-D1)
	done   frontier // finalization milestones (slow-path chain)

	cand [MaxBlockSize]atomic.Int32 // candidate slot per thread, -1 = none

	// Per-thread outputs; each thread writes only its own slot.
	final   [MaxBlockSize]*descriptor
	results [MaxBlockSize]Result
	early   [MaxBlockSize]bool // result committed at Match time
	tstats  [MaxBlockSize]threadStats

	seqBase   uint64
	startNano int64 // launch timestamp (obs tracing only; 0 when disabled)
}

// threadStats accumulates per-thread counters, folded into EngineStats at
// retirement to avoid atomic contention on the hot path.
type threadStats struct {
	traversed   uint64
	optimistic  uint64
	relaxed     uint64
	conflicts   uint64
	fastPath    uint64
	slowPath    uint64
	unexpected  uint64
	matched     uint64
	revalidated uint64
	steals      uint64
	maxDepth    uint64
}

// BeginBlock starts an arrival block for n messages (1 <= n <= BlockSize).
// Blocks must begin in arrival order; BeginBlock blocks while
// Config.InFlightBlocks blocks are already in flight (at depth 1 this is
// exactly the old one-block-at-a-time serialization). Posts are never
// excluded.
func (m *OptimisticMatcher) BeginBlock(n int) *Block {
	if n < 1 || n > m.cfg.BlockSize {
		panic(fmt.Sprintf("core: BeginBlock(%d) outside [1,%d]", n, m.cfg.BlockSize))
	}
	r := &m.ring
	r.mu.Lock()
	for r.next-r.retired > uint64(len(r.slots)) {
		r.cond.Wait()
	}
	seq := r.next
	r.next++
	r.nextAtomic.Store(r.next)
	headAtStart := r.retired+1 == seq
	seqBase := m.nextSeq
	m.nextSeq += uint64(n)
	// The watermark snapshot is taken under ring.mu so it is monotone in
	// block sequence — a later block never sees fewer posts than an earlier
	// one, which the retirement-time serialization argument relies on.
	horizon := m.postHorizon.Load()
	// Count the block up front: a handler may complete a user request
	// mid-block, and an observer woken by that completion must already see
	// the traffic in Stats(). The outcome counters fold in at retirement.
	m.obs.Counters.Inc(obs.CtrBlocks)
	m.obs.Counters.Add(obs.CtrMessages, uint64(n))
	r.mu.Unlock()

	// The slot's previous occupant (sequence seq-K) has retired and its
	// results were copied out, so initialization below is owner-exclusive.
	b := &r.slots[seq%uint64(len(r.slots))]
	b.m = m
	b.n = n
	b.mask = uint32(1)<<uint(n) - 1
	b.seq = seq
	b.epoch = uint32(seq)
	b.horizon = horizon
	b.headAtStart = headAtStart
	b.seqBase = seqBase
	b.Deliver = nil
	condvar := m.cfg.CondvarBarrier
	if condvar && b.fcond == nil {
		b.fcond = sync.NewCond(&b.fmu)
	}
	b.booked.reset(condvar, &b.fmu, b.fcond, n, b.epoch)
	b.done.reset(condvar, &b.fmu, b.fcond, n, b.epoch)
	for i := 0; i < n; i++ {
		b.cand[i].Store(-1)
		b.final[i] = nil
		b.results[i] = Result{}
		b.early[i] = false
		b.tstats[i] = threadStats{}
	}
	b.startNano = 0
	if m.obs.Enabled() {
		b.startNano = m.obs.Now()
		m.obs.EventAt(b.startNano, obs.EvBlockLaunch, 0, seq, uint64(n), horizon)
	}
	return b
}

// consume claims d for thread tid of this block, recording steal provenance:
// when the claim took the descriptor back from a higher-sequence block, the
// per-thread steal counter and (when tracing) an EvBlockSteal event record
// the theft the victim will discover at its retirement re-derivation.
func (b *Block) consume(d *descriptor, tid int) bool {
	ok, victim := d.consumeFrom(b.seq, tid)
	if ok && victim != 0 {
		b.tstats[tid].steals++
		if b.m.obs.Enabled() {
			b.m.obs.Event(obs.EvBlockSteal, tid, b.seq, victim, uint64(d.slot))
		}
	}
	return ok
}

// Match matches the message for thread tid. It must be called exactly once
// for every tid in [0, n) and may block on the partial barrier until all
// lower-numbered threads have called it.
//
// The returned flag reports whether the result is FINAL: committed at Match
// time because no lower-sequence block was still in flight. A non-final
// result is provisional — a lower block may steal the matched receive, and
// an unexpected verdict may be overturned by a raced post — and its settled
// value is delivered at retirement (FinishInto, or the Deliver callback).
// At in-flight depth 1 matched results are always final; unexpected ones
// are published to the store at retirement and delivered then.
func (b *Block) Match(tid int, env *match.Envelope) (Result, bool) {
	if env.Seq == 0 {
		env.Seq = b.seqBase + uint64(tid) + 1
	}
	st := &b.tstats[tid]

	// Relaxed matching (§VII mpi_assert_allow_overtaking): ordering
	// constraints are waived on this communicator, so the thread simply
	// claims any matching receive, with no booking or conflict resolution.
	if b.m.hints.get(env.Comm).AllowOvertaking {
		return b.matchRelaxed(tid, env, st)
	}

	// Optimistic phase (§III-C): search all indexes as if alone, select the
	// minimum-label candidate, and book it.
	cand := b.m.searchOldest(env, tid, b.seq, b.horizon, b.m.cfg.EarlyBookingCheck, st)
	if cand != nil {
		cand.book(b.epoch, tid)
		b.cand[tid].Store(cand.slot)
	}

	// Partial barrier (§III-D1): wait for all earlier-message threads to
	// have booked their candidates.
	b.enterBarrier(tid)

	// Conflict detection (§III-D2).
	myLoss := false
	if cand != nil {
		booking := cand.bookingBits(b.epoch) & b.mask
		if lowestBit(booking) < tid {
			myLoss = true
		}
	}
	lostLower := b.anyLowerConflict(tid)

	if !myLoss && !lostLower {
		if cand == nil {
			return b.finalizeUnexpected(tid, env, PathUnexpected)
		}
		if b.consume(cand, tid) {
			st.optimistic++
			return b.finalizeMatch(tid, env, cand, PathOptimistic)
		}
		// Unreachable at depth 1; with blocks in flight a lower-sequence
		// block may have taken the candidate between booking and consume.
		myLoss = true
	}
	if myLoss {
		st.conflicts++
	}

	// Fast path (§III-D3a): if every thread booked the same receive — the
	// head of a sequence of compatible receives — thread tid shifts to the
	// receive tid positions later in the sequence.
	if myLoss && cand != nil && !b.m.cfg.DisableFastPath &&
		cand.bookingBits(b.epoch)&b.mask == b.mask {
		if d := b.fastShift(cand, tid); d != nil {
			st.fastPath++
			return b.finalizeMatch(tid, env, d, PathFast)
		}
	}

	// Slow path (§III-D3b): wait for every earlier thread to finalize, then
	// redo the search with exclusive access to the block's leftovers.
	b.waitLowerDone(tid)
	st.slowPath++
	for {
		d := b.m.searchOldest(env, tid, b.seq, b.horizon, false, st)
		if d == nil {
			return b.finalizeUnexpected(tid, env, PathUnexpected)
		}
		if b.consume(d, tid) {
			return b.finalizeMatch(tid, env, d, PathSlow)
		}
		// A racing consumption by a lower-sequence in-flight block; retry
		// against the remainder.
	}
}

// matchRelaxed is the allow_overtaking arrival path: claim the first
// available matching receive by CAS, retrying on racing consumption. The
// thread still participates in the booking frontier (with no candidate) so
// ordered threads of the same block are not stalled at the partial barrier.
func (b *Block) matchRelaxed(tid int, env *match.Envelope, st *threadStats) (Result, bool) {
	b.booked.complete(tid)
	st.relaxed++
	for {
		d := b.m.searchOldest(env, tid, b.seq, b.horizon, false, st)
		if d == nil {
			return b.finalizeUnexpected(tid, env, PathUnexpected)
		}
		if b.consume(d, tid) {
			return b.finalizeMatch(tid, env, d, PathOptimistic)
		}
	}
}

// enterBarrier publishes thread tid's booking and waits for threads < tid
// (§III-D1 partial barrier) — or for all threads when the matcher models
// simultaneous handler activation.
func (b *Block) enterBarrier(tid int) {
	b.booked.complete(tid)
	if b.m.cfg.SimultaneousArrival {
		b.booked.waitThrough(b.n - 1)
	} else {
		b.booked.waitThrough(tid - 1)
	}
	// One event per block, not per thread: the top of the staircase is the
	// last exit, so its timestamp bounds every thread's barrier phase.
	// Per-thread emission costs a ring write per MESSAGE and alone pushes
	// the enabled-tracing overhead past the DESIGN.md §10 budget.
	if tid == b.n-1 && b.m.obs.Enabled() {
		b.m.obs.Event(obs.EvBlockBarrierExit, tid, b.seq, uint64(tid), 0)
	}
}

// waitLowerDone blocks until every thread below tid has finalized.
func (b *Block) waitLowerDone(tid int) {
	b.done.waitThrough(tid - 1)
}

// anyLowerConflict reports whether any thread below tid lost its booking in
// the optimistic phase. If so, this thread must resolve (§III-D2): the
// conflicted thread may re-select this thread's candidate and has
// precedence. Booking bitmaps are stable after the partial barrier, so the
// computation is race-free.
func (b *Block) anyLowerConflict(tid int) bool {
	for i := 0; i < tid; i++ {
		slot := b.cand[i].Load()
		if slot < 0 {
			continue
		}
		d := b.m.table.get(slot)
		booking := d.bookingBits(b.epoch) & b.mask
		if booking != 0 && lowestBit(booking) < i {
			return true
		}
	}
	return false
}

// fastShift walks the compatible sequence starting at cand and consumes the
// entry at position tid (position 0 is cand itself). Entries consumed by
// earlier blocks are skipped without counting — they were never available
// to this block — and entries past the block's watermark are invisible,
// while entries consumed by this block's peers (or provisionally held by
// later blocks, which are stealable) occupy their position. It returns nil
// when the sequence is too short or the walk leaves the sequence (different
// sequence ID), in which case the caller must take the slow path.
func (b *Block) fastShift(cand *descriptor, tid int) *descriptor {
	pos := 0
	for d := cand; d != nil; d = d.next.Load() {
		if d.seqID != cand.seqID {
			return nil // left the sequence of compatible receives
		}
		if d.label >= b.horizon {
			continue // posted after this block began: not yet visible
		}
		w := d.word.Load()
		if ownState(w) == stateConsumed && ownSeq(w) < b.seq {
			continue // consumed by an earlier block: never a position
		}
		if ownState(w) == stateFree {
			continue // mid-recycle remnant: not a position
		}
		if pos == tid {
			if b.consume(d, tid) {
				return d
			}
			return nil // lost a cross-block race: use the slow path
		}
		pos++
	}
	return nil
}

// finalizeMatch records a completed pairing and signals the done bitmap.
// When no lower-sequence block is in flight the pairing can never be stolen
// again, so it commits immediately (final = true); at depth 1 this is
// always the case. Otherwise the pairing stays provisional until the block
// retires.
func (b *Block) finalizeMatch(tid int, env *match.Envelope, d *descriptor, p Path) (Result, bool) {
	r := Result{Env: env, Recv: d.recv, Path: p}
	// A pairing is final only when the block has been at the head of the
	// retire frontier since it began: then no lower-sequence block ever
	// coexisted with it, nothing can steal the receive, and no same-block
	// re-derivation can reassign it (validate skips head blocks' matches).
	final := b.headAtStart
	b.early[tid] = final
	if final && !b.m.cfg.LazyRemoval {
		// Eager removal (§IV-D off) only for committed pairings: a
		// provisional descriptor must stay linked so a lower block's redo
		// can still reach (and steal) it.
		eagerUnlink(d)
	}
	b.final[tid] = d
	b.results[tid] = r
	b.tstats[tid].matched++
	if b.m.obs.Enabled() {
		switch p {
		case PathFast:
			b.m.obs.Event(obs.EvMatchFast, tid, b.seq, uint64(tid), 0)
		case PathSlow:
			b.m.obs.Event(obs.EvMatchSlow, tid, b.seq, uint64(tid), 0)
		}
	}
	b.done.complete(tid)
	return r, final
}

// finalizeUnexpected records an unexpected verdict and signals the done
// bitmap. Publication into the unexpected store is ALWAYS deferred to
// retirement: inserting mid-block would expose the message to concurrent
// posts while lower-sequence messages are still provisional, breaking the
// store's arrival-prefix consistency (DESIGN.md §9).
func (b *Block) finalizeUnexpected(tid int, env *match.Envelope, p Path) (Result, bool) {
	r := Result{Env: env, Unexpected: true, Path: p}
	b.early[tid] = false
	b.final[tid] = nil
	b.results[tid] = r
	b.tstats[tid].unexpected++
	b.done.complete(tid)
	return r, false
}

// Finish retires the block; see FinishInto.
func (b *Block) Finish() { b.finishInto(nil) }

// FinishInto retires the block and copies its settled results into out
// (len(out) >= n), in thread order. Retirement waits until every
// lower-sequence block has retired, validates all provisional results
// (redoing searches that lost to cross-block steals or raced posts),
// publishes unexpected messages to the store, sweeps consumed descriptors
// out of their chains, folds statistics, advances the retire frontier, and
// finally runs the Deliver callback for deferred results.
func (b *Block) FinishInto(out []Result) { b.finishInto(out) }

func (b *Block) finishInto(out []Result) {
	m := b.m
	r := &m.ring

	// In-order retirement: wait for the retire frontier to reach this block.
	r.mu.Lock()
	for r.retired+1 != b.seq {
		r.cond.Wait()
	}
	r.mu.Unlock()

	b.validate()
	if m.obs.Enabled() {
		// Settle events only carry information when validation actually
		// redid something; the conflict-free common case skips the ring
		// write (the per-block launch/retire span is recorded regardless).
		var reval uint64
		for tid := 0; tid < b.n; tid++ {
			reval += b.tstats[tid].revalidated
		}
		if reval > 0 {
			m.obs.Event(obs.EvBlockSettle, 0, b.seq, reval, 0)
		}
	}

	// Sweep: unlink consumed descriptors (the deferred half of lazy
	// removal) under their bucket locks, then release them. Reclamation of
	// the slots is gated on the blocks currently in flight — they may still
	// be traversing a chain these descriptors were just unlinked from.
	var reaped uint64
	for tid := 0; tid < b.n; tid++ {
		if d := b.final[tid]; d != nil && !d.unlinked {
			eagerUnlink(d)
			reaped++
		}
	}
	reclaimAfter := r.nextAtomic.Load() - 1
	for tid := 0; tid < b.n; tid++ {
		if d := b.final[tid]; d != nil {
			m.table.release(d, reclaimAfter)
		}
	}

	var agg threadStats
	for tid := 0; tid < b.n; tid++ {
		ts := &b.tstats[tid]
		agg.traversed += ts.traversed
		agg.optimistic += ts.optimistic
		agg.relaxed += ts.relaxed
		agg.conflicts += ts.conflicts
		agg.fastPath += ts.fastPath
		agg.slowPath += ts.slowPath
		agg.unexpected += ts.unexpected
		agg.matched += ts.matched
		agg.revalidated += ts.revalidated
		agg.steals += ts.steals
		if ts.maxDepth > agg.maxDepth {
			agg.maxDepth = ts.maxDepth
		}
	}
	c := &m.obs.Counters
	c.Add(obs.CtrOptimistic, agg.optimistic)
	c.Add(obs.CtrConflicts, agg.conflicts)
	c.Add(obs.CtrFastPath, agg.fastPath)
	c.Add(obs.CtrSlowPath, agg.slowPath)
	c.Add(obs.CtrUnexpected, agg.unexpected)
	c.Add(obs.CtrRelaxed, agg.relaxed)
	c.Add(obs.CtrLazyReaped, reaped)
	c.Add(obs.CtrRevalidated, agg.revalidated)
	c.Add(obs.CtrSteals, agg.steals)
	if m.cfg.LazyRemoval {
		c.Inc(obs.CtrLazySweeps)
	}
	c.Add(obs.CtrArriveSearches, uint64(b.n))
	c.Add(obs.CtrArriveTraversed, agg.traversed)
	c.Max(obs.CtrArriveMaxDepth, agg.maxDepth)
	c.Add(obs.CtrMatched, agg.matched)
	c.Add(obs.CtrUnexpectedStored, agg.unexpected)
	c.Inc(obs.CtrRetires)

	if out != nil {
		copy(out, b.results[:b.n])
	}

	// Snapshot everything deferred delivery needs BEFORE retiring: once the
	// frontier advances, K-1 more retirements can recycle this slot for
	// block seq+K while the deliveries below still run.
	n := b.n
	deliver := b.Deliver
	var dres [MaxBlockSize]Result
	var dearly [MaxBlockSize]bool
	if deliver != nil {
		copy(dres[:n], b.results[:n])
		copy(dearly[:n], b.early[:n])
	}
	// The retire record must be cut before the frontier advances: after
	// that, K-1 further retirements may recycle this ring slot and reuse
	// b.seq/b.startNano for block seq+K.
	if m.obs.Enabled() {
		now := m.obs.Now()
		life := uint64(now - b.startNano)
		m.obs.EventAt(now, obs.EvBlockRetire, 0, b.seq, uint64(n), life)
		m.obs.Observe(obs.HistBlockNs, life)
	}

	// Retire: advance the frontier, waking the next block's Finish and any
	// BeginBlock waiting for a ring slot.
	r.mu.Lock()
	r.retired = b.seq
	r.retiredAtomic.Store(b.seq)
	r.cond.Broadcast()
	r.mu.Unlock()

	// Deferred delivery: results that could not commit at Match time reach
	// their consumer here, outside all engine locks, in thread order.
	if deliver != nil {
		for tid := 0; tid < n; tid++ {
			if !dearly[tid] {
				deliver(tid, dres[tid])
			}
		}
	}
}

// validate settles every provisional result under the store lock, which
// freezes the post side. The redo horizon is the CURRENT watermark — at this
// point the block is the oldest in flight, so its serialization point is
// now, and all published posts are fair game. The redos and the store
// insertions happen atomically with respect to PostRecv, so either a post
// sees the stored message or the message's redo sees the post.
//
// A head-at-start block's pairings committed at Match time; only unexpected
// verdicts can be overturned, by posts that raced the block. Any other block
// ran while lower-sequence blocks were in flight, so its matched receives
// may have been stolen since — and a steal invalidates not just the robbed
// thread's pairing but potentially the whole block's ordering (the receive
// the robbed message should now take may be held by a same-block HIGHER
// thread). Those blocks settle by re-derivation: release every provisional
// hold, then reassign threads in thread order, each taking the oldest
// available receive — exactly the serial semantics retirement order promises.
func (b *Block) validate() {
	m := b.m
	s := m.unexpected
	s.mu.Lock()
	defer s.mu.Unlock()
	hzn := m.postHorizon.Load()

	if b.headAtStart {
		for tid := 0; tid < b.n; tid++ {
			res := &b.results[tid]
			if !res.Unexpected {
				continue // committed at Match time
			}
			// Posts that raced this block may have published a matching
			// receive the thread's bounded search could not see.
			if hzn != b.horizon {
				b.tstats[tid].revalidated++
				if nd := b.research(tid, res.Env, hzn); nd != nil {
					b.tstats[tid].unexpected--
					b.tstats[tid].matched++
					b.final[tid] = nd
					*res = Result{Env: res.Env, Recv: nd.recv, Path: PathSlow}
					continue
				}
			}
			b.publishUnexpected(res.Env)
		}
		return
	}

	// Re-derivation. Pass 1: release the holds this block still owns (a
	// concurrent higher-sequence block may re-consume one, but such a hold is
	// stealable and pass 2 takes it back).
	for tid := 0; tid < b.n; tid++ {
		if d := b.final[tid]; d != nil && d.ownedBy(b.seq, tid) {
			d.markPosted()
		}
	}
	// Pass 2: reassign in thread order.
	for tid := 0; tid < b.n; tid++ {
		res := &b.results[tid]
		old := b.final[tid]
		nd := b.research(tid, res.Env, hzn)
		if nd != old {
			b.tstats[tid].revalidated++
		}
		b.final[tid] = nd
		switch {
		case nd != nil && !res.Unexpected:
			if nd != old {
				res.Recv = nd.recv
				res.Path = PathSlow
			}
		case nd != nil: // unexpected verdict overturned
			b.tstats[tid].unexpected--
			b.tstats[tid].matched++
			*res = Result{Env: res.Env, Recv: nd.recv, Path: PathSlow}
		case !res.Unexpected: // robbed, with nothing left to take
			b.tstats[tid].matched--
			b.tstats[tid].unexpected++
			*res = Result{Env: res.Env, Unexpected: true, Path: PathSlow}
			b.publishUnexpected(res.Env)
		default:
			b.publishUnexpected(res.Env)
		}
	}
}

// publishUnexpected runs the engine hook and stores the message. Caller
// holds the store lock.
func (b *Block) publishUnexpected(env *match.Envelope) {
	if h := b.m.onUnexpected; h != nil {
		h(env)
	}
	b.m.unexpected.insertLocked(env)
	if b.m.obs.Enabled() {
		b.m.obs.Event(obs.EvUnexpectedPub, 0, b.seq, 0, 0)
	}
}

// research redoes thread tid's search at retirement with horizon hzn. The
// block is the oldest in flight, so every candidate it finds is either
// posted or held by a higher-sequence block (stealable); the consume loop
// terminates because steals strictly lower the owning sequence.
func (b *Block) research(tid int, env *match.Envelope, hzn uint64) *descriptor {
	st := &b.tstats[tid]
	for {
		d := b.m.searchOldest(env, tid, b.seq, hzn, false, st)
		if d == nil {
			return nil
		}
		if b.consume(d, tid) {
			return d
		}
	}
}

// searchOldest performs the §III-C cross-index search on behalf of thread
// tid of block seq: each index yields its oldest matching available receive
// below watermark hzn, and the global minimum posting label wins
// (constraint C1 across indexes). Hash values are taken from the
// sender-computed header when UseInlineHashes is set.
func (m *OptimisticMatcher) searchOldest(env *match.Envelope, tid int, seq uint64, hzn uint64, earlyCheck bool, st *threadStats) *descriptor {
	var h match.InlineHashes
	if m.cfg.UseInlineHashes {
		if env.Inline != nil {
			h = *env.Inline // sender-computed, carried in the header
		} else {
			h = match.ComputeInlineHashes(env)
		}
	} else {
		h = match.InlineHashes{
			SrcTag: match.HashSrcTag(env.Source, env.Tag, env.Comm),
			Tag:    match.HashTag(env.Tag, env.Comm),
			Src:    match.HashSrc(env.Source, env.Comm),
		}
	}

	var best *descriptor
	var traversed uint64

	consider := func(d *descriptor, n uint64) {
		traversed += n
		if d != nil && (best == nil || d.label < best.label) {
			best = d
		}
	}
	// Communicator assertions (§VII) prune entire wildcard indexes: a
	// no_any_source communicator can never have a receive in the source-
	// wildcard index, so its messages skip that search.
	hints := m.hints.get(env.Comm)
	consider(m.idxFull.search(env, h.SrcTag, tid, seq, hzn, earlyCheck))
	if !hints.NoAnySource {
		consider(m.idxSrcWild.search(env, h.Tag, tid, seq, hzn, earlyCheck))
	}
	if !hints.NoAnyTag {
		consider(m.idxTagWild.search(env, h.Src, tid, seq, hzn, earlyCheck))
	}
	if !hints.NoWildcards() {
		consider(m.idxBoth.search(env, 0, tid, seq, hzn, earlyCheck))
	}

	if st != nil {
		st.traversed += traversed
		if traversed > st.maxDepth {
			st.maxDepth = traversed
		}
	}
	return best
}

// lowestBit returns the index of the lowest set bit, or 64 when v is 0.
func lowestBit(v uint32) int {
	if v == 0 {
		return 64
	}
	return bits.TrailingZeros32(v)
}

// ArriveBlock matches a batch of messages, processing them in sequential
// parallel chunks of at most BlockSize, and returns one Result per message
// in input order. Envelopes without a sequence number are assigned one in
// input order, which is taken as arrival order.
func (m *OptimisticMatcher) ArriveBlock(envs []*match.Envelope) []Result {
	out := make([]Result, len(envs))
	rest := out
	for len(envs) > 0 {
		n := len(envs)
		if n > m.cfg.BlockSize {
			n = m.cfg.BlockSize
		}
		chunk := envs[:n]
		envs = envs[n:]
		res := rest[:n]
		rest = rest[n:]

		b := m.BeginBlock(n)
		var wg sync.WaitGroup
		wg.Add(n)
		for tid := 0; tid < n; tid++ {
			go func(tid int) {
				defer wg.Done()
				b.Match(tid, chunk[tid])
			}(tid)
		}
		wg.Wait()
		b.FinishInto(res)
	}
	return out
}

// ArrivePipelined matches a batch of messages with up to
// Config.InFlightBlocks blocks in flight concurrently, returning one Result
// per message in input order. Blocks begin in arrival order (BeginBlock
// applies backpressure when the ring is full) and retire in order, so the
// results are the settled, validated outcomes. At depth 1 it degenerates to
// ArriveBlock.
func (m *OptimisticMatcher) ArrivePipelined(envs []*match.Envelope) []Result {
	out := make([]Result, len(envs))
	var wg sync.WaitGroup
	rest := out
	remaining := envs
	for len(remaining) > 0 {
		n := len(remaining)
		if n > m.cfg.BlockSize {
			n = m.cfg.BlockSize
		}
		chunk := remaining[:n]
		remaining = remaining[n:]
		res := rest[:n]
		rest = rest[n:]

		b := m.BeginBlock(n) // arrival order; blocks when the ring is full
		wg.Add(1)
		go func(b *Block, chunk []*match.Envelope, res []Result) {
			defer wg.Done()
			var mwg sync.WaitGroup
			mwg.Add(len(chunk))
			for tid := range chunk {
				go func(tid int) {
					defer mwg.Done()
					b.Match(tid, chunk[tid])
				}(tid)
			}
			mwg.Wait()
			b.FinishInto(res)
		}(b, chunk, res)
	}
	wg.Wait()
	return out
}

// Arrive matches a single message (a one-message block).
func (m *OptimisticMatcher) Arrive(env *match.Envelope) Result {
	var out [1]Result
	b := m.BeginBlock(1)
	b.Match(0, env)
	b.FinishInto(out[:])
	return out[0]
}
