package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/match"
)

// Path identifies how a message's match was finalized, for statistics and
// for the Figure 8 scenario assertions.
type Path uint8

const (
	// PathOptimistic: the optimistic phase succeeded with no conflict.
	PathOptimistic Path = iota
	// PathFast: a conflict was resolved on the fast path (§III-D3a).
	PathFast
	// PathSlow: a conflict (or a lower thread's conflict) forced the slow
	// path (§III-D3b).
	PathSlow
	// PathUnexpected: no receive matched; the message was stored.
	PathUnexpected
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case PathOptimistic:
		return "optimistic"
	case PathFast:
		return "fast"
	case PathSlow:
		return "slow"
	case PathUnexpected:
		return "unexpected"
	}
	return fmt.Sprintf("Path(%d)", uint8(p))
}

// Result is the outcome of matching one message.
type Result struct {
	Env        *match.Envelope
	Recv       *match.Recv // matched receive, nil when Unexpected
	Unexpected bool
	Path       Path
}

// barrierSpins bounds how long a barrier waiter busy-polls before yielding
// to the scheduler. On a single-core host spinning can never observe
// progress (the completing goroutine needs the core), so the budget drops
// to zero and waiters yield immediately.
var barrierSpins = func() int {
	if runtime.NumCPU() > 1 {
		return 128
	}
	return 0
}()

// frontier tracks completion of per-thread milestones in thread order: the
// completed prefix of threads 0..k-1 is what waiters wait on. Threads
// complete in arbitrary order. Two interchangeable implementations share
// the type:
//
//   - The default atomic barrier packs the block epoch and a
//     completed-thread bitmap into one word (epoch<<32 | bitmap — the
//     epoch is the sense of a sense-reversing barrier, so stale words from
//     finished blocks can never satisfy a waiter). complete is a single
//     atomic OR; waitThrough(i) checks that the low i+1 bits are all set,
//     spinning briefly and then yielding with runtime.Gosched. No lock, no
//     wakeup storm, no allocation — the cost profile of the DPA's hardware
//     partial barrier (§III-D1).
//   - The condvar implementation (Config.CondvarBarrier) advances a level
//     under a mutex and broadcasts — the pre-optimization host-style
//     barrier, kept selectable for the BenchmarkAblationBarrier ablation.
type frontier struct {
	condvar bool
	epoch   uint32

	word atomic.Uint64 // epoch<<32 | completed-thread bitmap

	mu    *sync.Mutex
	cond  *sync.Cond
	done  [MaxBlockSize]bool
	level int // all threads < level have completed
}

// reset prepares the frontier for a new block of n threads in epoch e.
func (f *frontier) reset(condvar bool, mu *sync.Mutex, cond *sync.Cond, n int, e uint32) {
	f.condvar = condvar
	f.epoch = e
	if !condvar {
		f.word.Store(uint64(e) << 32)
		return
	}
	f.mu, f.cond = mu, cond
	for i := 0; i < n; i++ {
		f.done[i] = false
	}
	f.level = 0
}

// complete marks thread i done and advances the frontier.
func (f *frontier) complete(i int) {
	if !f.condvar {
		f.word.Or(uint64(1) << uint(i))
		return
	}
	f.mu.Lock()
	f.done[i] = true
	advanced := false
	for f.level < MaxBlockSize && f.done[f.level] {
		f.level++
		advanced = true
	}
	f.mu.Unlock()
	if advanced {
		f.cond.Broadcast()
	}
}

// waitThrough blocks until every thread 0..i has completed.
func (f *frontier) waitThrough(i int) {
	if i < 0 {
		return
	}
	if !f.condvar {
		want := uint64(1)<<uint(i+1) - 1
		for spins := 0; ; spins++ {
			w := f.word.Load()
			if w&want == want || uint32(w>>32) != f.epoch {
				// Prefix complete — or the word belongs to another epoch,
				// which can only mean this block already finished
				// (defensive: all waiters join before Finish).
				return
			}
			if spins >= barrierSpins {
				runtime.Gosched()
			}
		}
	}
	f.mu.Lock()
	for f.level <= i {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Block processes up to BlockSize consecutive messages in parallel. Obtain
// one with BeginBlock, call Match concurrently from exactly n goroutines
// (thread IDs 0..n-1, one per message in arrival order), then call Finish.
// The matcher lock is held for the whole block, excluding posts — the
// linearization the DPA achieves with run-to-completion handlers.
type Block struct {
	m     *OptimisticMatcher
	n     int
	mask  uint32
	epoch uint32

	fmu   sync.Mutex // shared by both frontiers
	fcond *sync.Cond

	booked frontier // partial barrier: booking milestones (§III-D1)
	done   frontier // finalization milestones (slow-path chain)

	cand [MaxBlockSize]atomic.Int32 // candidate slot per thread, -1 = none

	// Per-thread outputs; each thread writes only its own slot.
	final   [MaxBlockSize]*descriptor
	results [MaxBlockSize]Result
	tstats  [MaxBlockSize]threadStats

	seqBase uint64
}

// threadStats accumulates per-thread counters, folded into EngineStats at
// Finish to avoid atomic contention on the hot path.
type threadStats struct {
	traversed  uint64
	optimistic uint64
	relaxed    uint64
	conflicts  uint64
	fastPath   uint64
	slowPath   uint64
	unexpected uint64
	matched    uint64
	maxDepth   uint64
}

// BeginBlock starts an arrival block for n messages (1 <= n <= BlockSize).
// It blocks until any in-flight posts complete and holds the matcher lock
// until Finish.
func (m *OptimisticMatcher) BeginBlock(n int) *Block {
	if n < 1 || n > m.cfg.BlockSize {
		panic(fmt.Sprintf("core: BeginBlock(%d) outside [1,%d]", n, m.cfg.BlockSize))
	}
	m.mu.Lock()
	m.epoch++
	// The matcher lock serializes blocks, so a single Block value is
	// recycled: no per-block allocation on the hot path.
	b := &m.block
	b.m = m
	b.n = n
	b.mask = uint32(1)<<uint(n) - 1
	b.epoch = m.epoch
	condvar := m.cfg.CondvarBarrier
	if condvar && b.fcond == nil {
		b.fcond = sync.NewCond(&b.fmu)
	}
	b.booked.reset(condvar, &b.fmu, b.fcond, n, b.epoch)
	b.done.reset(condvar, &b.fmu, b.fcond, n, b.epoch)
	b.seqBase = m.nextSeq
	m.nextSeq += uint64(n)
	// Count the block up front: a handler may complete a user request
	// mid-block, and an observer woken by that completion must already see
	// the traffic in Stats(). The outcome counters fold in at Finish.
	m.stats.blocks.Add(1)
	m.stats.messages.Add(uint64(n))
	for i := 0; i < n; i++ {
		b.cand[i].Store(-1)
		b.final[i] = nil
		b.results[i] = Result{}
		b.tstats[i] = threadStats{}
	}
	return b
}

// Match matches the message for thread tid. It must be called exactly once
// for every tid in [0, n) and may block on the partial barrier until all
// lower-numbered threads have called it.
func (b *Block) Match(tid int, env *match.Envelope) Result {
	if env.Seq == 0 {
		env.Seq = b.seqBase + uint64(tid) + 1
	}
	st := &b.tstats[tid]

	// Relaxed matching (§VII mpi_assert_allow_overtaking): ordering
	// constraints are waived on this communicator, so the thread simply
	// claims any matching receive, with no booking or conflict resolution.
	if b.m.hints.get(env.Comm).AllowOvertaking {
		return b.matchRelaxed(tid, env, st)
	}

	// Optimistic phase (§III-C): search all indexes as if alone, select the
	// minimum-label candidate, and book it.
	cand := b.m.searchOldest(env, tid, b.epoch, b.m.cfg.EarlyBookingCheck, st)
	if cand != nil {
		cand.book(b.epoch, tid)
		b.cand[tid].Store(cand.slot)
	}

	// Partial barrier (§III-D1): wait for all earlier-message threads to
	// have booked their candidates.
	b.enterBarrier(tid)

	// Conflict detection (§III-D2).
	myLoss := false
	if cand != nil {
		booking := cand.bookingBits(b.epoch) & b.mask
		if lowestBit(booking) < tid {
			myLoss = true
		}
	}
	lostLower := b.anyLowerConflict(tid)

	if !myLoss && !lostLower {
		if cand == nil {
			return b.finalizeUnexpected(tid, env, PathUnexpected)
		}
		if cand.consume(b.epoch) {
			st.optimistic++
			return b.finalizeMatch(tid, env, cand, PathOptimistic)
		}
		myLoss = true // defensive: should be unreachable
	}
	if myLoss {
		st.conflicts++
	}

	// Fast path (§III-D3a): if every thread booked the same receive — the
	// head of a sequence of compatible receives — thread tid shifts to the
	// receive tid positions later in the sequence.
	if myLoss && cand != nil && !b.m.cfg.DisableFastPath &&
		cand.bookingBits(b.epoch)&b.mask == b.mask {
		if d := b.fastShift(cand, tid); d != nil {
			st.fastPath++
			return b.finalizeMatch(tid, env, d, PathFast)
		}
	}

	// Slow path (§III-D3b): wait for every earlier thread to finalize, then
	// redo the search with exclusive access to the leftovers.
	b.waitLowerDone(tid)
	st.slowPath++
	for {
		d := b.m.searchOldest(env, tid, b.epoch, false, st)
		if d == nil {
			return b.finalizeUnexpected(tid, env, PathUnexpected)
		}
		if d.consume(b.epoch) {
			return b.finalizeMatch(tid, env, d, PathSlow)
		}
		// A racing consumption is impossible once the lower threads are
		// done, but retrying keeps the loop self-correcting regardless.
	}
}

// matchRelaxed is the allow_overtaking arrival path: claim the first
// available matching receive by CAS, retrying on racing consumption. The
// thread still participates in the booking frontier (with no candidate) so
// ordered threads of the same block are not stalled at the partial barrier.
func (b *Block) matchRelaxed(tid int, env *match.Envelope, st *threadStats) Result {
	b.booked.complete(tid)
	st.relaxed++
	for {
		d := b.m.searchOldest(env, tid, b.epoch, false, st)
		if d == nil {
			return b.finalizeUnexpected(tid, env, PathUnexpected)
		}
		if d.consume(b.epoch) {
			return b.finalizeMatch(tid, env, d, PathOptimistic)
		}
	}
}

// enterBarrier publishes thread tid's booking and waits for threads < tid
// (§III-D1 partial barrier) — or for all threads when the matcher models
// simultaneous handler activation.
func (b *Block) enterBarrier(tid int) {
	b.booked.complete(tid)
	if b.m.cfg.SimultaneousArrival {
		b.booked.waitThrough(b.n - 1)
		return
	}
	b.booked.waitThrough(tid - 1)
}

// waitLowerDone blocks until every thread below tid has finalized.
func (b *Block) waitLowerDone(tid int) {
	b.done.waitThrough(tid - 1)
}

// anyLowerConflict reports whether any thread below tid lost its booking in
// the optimistic phase. If so, this thread must resolve (§III-D2): the
// conflicted thread may re-select this thread's candidate and has
// precedence. Booking bitmaps are stable after the partial barrier, so the
// computation is race-free.
func (b *Block) anyLowerConflict(tid int) bool {
	for i := 0; i < tid; i++ {
		slot := b.cand[i].Load()
		if slot < 0 {
			continue
		}
		d := b.m.table.get(slot)
		booking := d.bookingBits(b.epoch) & b.mask
		if booking != 0 && lowestBit(booking) < i {
			return true
		}
	}
	return false
}

// fastShift walks the compatible sequence starting at cand and consumes the
// entry at position tid (position 0 is cand itself). Entries consumed in
// earlier blocks are skipped without counting — they were never available
// to this block — while entries consumed by this block's peers occupy their
// position. It returns nil when the sequence is too short or the walk
// leaves the sequence (different sequence ID), in which case the caller
// must take the slow path.
func (b *Block) fastShift(cand *descriptor, tid int) *descriptor {
	pos := 0
	for d := cand; d != nil; d = d.next.Load() {
		if d.seqID != cand.seqID {
			return nil // left the sequence of compatible receives
		}
		if d.isConsumed() && d.consumeEpoch.Load() != b.epoch {
			continue // consumed before this block: never a position
		}
		if pos == tid {
			if d.consume(b.epoch) {
				return d
			}
			return nil // defensive: position math violated, use slow path
		}
		pos++
	}
	return nil
}

// finalizeMatch records a completed pairing and signals the done bitmap.
func (b *Block) finalizeMatch(tid int, env *match.Envelope, d *descriptor, p Path) Result {
	if !b.m.cfg.LazyRemoval {
		eagerUnlink(d)
	}
	b.final[tid] = d
	r := Result{Env: env, Recv: d.recv, Path: p}
	b.results[tid] = r
	b.tstats[tid].matched++
	b.done.complete(tid)
	return r
}

// finalizeUnexpected stores the message and signals the done bitmap.
func (b *Block) finalizeUnexpected(tid int, env *match.Envelope, p Path) Result {
	b.m.unexpected.insert(env)
	r := Result{Env: env, Unexpected: true, Path: p}
	b.results[tid] = r
	b.tstats[tid].unexpected++
	b.done.complete(tid)
	return r
}

// Finish completes the block: it sweeps consumed descriptors out of their
// chains (the deferred half of lazy removal), releases them to the free
// pool, folds statistics, and releases the matcher lock. Per-thread
// counters are accumulated locally and folded with one atomic add per
// field, so concurrent Stats() readers neither block nor are blocked.
func (b *Block) Finish() {
	m := b.m
	var agg threadStats
	var reaped uint64
	for tid := 0; tid < b.n; tid++ {
		if d := b.final[tid]; d != nil {
			if !d.unlinked {
				unlink(d) // exclusive: matcher lock held, threads joined
				reaped++
			}
			m.table.release(d)
		}
		ts := &b.tstats[tid]
		agg.traversed += ts.traversed
		agg.optimistic += ts.optimistic
		agg.relaxed += ts.relaxed
		agg.conflicts += ts.conflicts
		agg.fastPath += ts.fastPath
		agg.slowPath += ts.slowPath
		agg.unexpected += ts.unexpected
		agg.matched += ts.matched
		if ts.maxDepth > agg.maxDepth {
			agg.maxDepth = ts.maxDepth
		}
	}
	m.stats.optimistic.Add(agg.optimistic)
	m.stats.conflicts.Add(agg.conflicts)
	m.stats.fastPath.Add(agg.fastPath)
	m.stats.slowPath.Add(agg.slowPath)
	m.stats.unexpected.Add(agg.unexpected)
	m.stats.relaxed.Add(agg.relaxed)
	m.stats.lazyReaped.Add(reaped)
	if m.cfg.LazyRemoval {
		m.stats.lazySweeps.Add(1)
	}
	m.depth.arriveSearches.Add(uint64(b.n))
	m.depth.arriveTraversed.Add(agg.traversed)
	storeMax(&m.depth.arriveMax, agg.maxDepth)
	m.depth.matched.Add(agg.matched)
	m.depth.unexpected.Add(agg.unexpected)
	m.mu.Unlock()
}

// searchOldest performs the §III-C cross-index search: each index yields
// its oldest matching available receive, and the global minimum posting
// label wins (constraint C1 across indexes). Hash values are taken from
// the sender-computed header when UseInlineHashes is set.
func (m *OptimisticMatcher) searchOldest(env *match.Envelope, tid int, epoch uint32, earlyCheck bool, st *threadStats) *descriptor {
	var h match.InlineHashes
	if m.cfg.UseInlineHashes {
		if env.Inline != nil {
			h = *env.Inline // sender-computed, carried in the header
		} else {
			h = match.ComputeInlineHashes(env)
		}
	} else {
		h = match.InlineHashes{
			SrcTag: match.HashSrcTag(env.Source, env.Tag, env.Comm),
			Tag:    match.HashTag(env.Tag, env.Comm),
			Src:    match.HashSrc(env.Source, env.Comm),
		}
	}

	var best *descriptor
	var traversed uint64

	consider := func(d *descriptor, n uint64) {
		traversed += n
		if d != nil && (best == nil || d.label < best.label) {
			best = d
		}
	}
	// Communicator assertions (§VII) prune entire wildcard indexes: a
	// no_any_source communicator can never have a receive in the source-
	// wildcard index, so its messages skip that search.
	hints := m.hints.get(env.Comm)
	consider(m.idxFull.search(env, h.SrcTag, tid, epoch, earlyCheck))
	if !hints.NoAnySource {
		consider(m.idxSrcWild.search(env, h.Tag, tid, epoch, earlyCheck))
	}
	if !hints.NoAnyTag {
		consider(m.idxTagWild.search(env, h.Src, tid, epoch, earlyCheck))
	}
	if !hints.NoWildcards() {
		consider(m.idxBoth.search(env, 0, tid, epoch, earlyCheck))
	}

	if st != nil {
		st.traversed += traversed
		if traversed > st.maxDepth {
			st.maxDepth = traversed
		}
	}
	return best
}

// lowestBit returns the index of the lowest set bit, or 64 when v is 0.
func lowestBit(v uint32) int {
	if v == 0 {
		return 64
	}
	return bits.TrailingZeros32(v)
}

// ArriveBlock matches a batch of messages, processing them in parallel
// chunks of at most BlockSize, and returns one Result per message in input
// order. Envelopes without a sequence number are assigned one in input
// order, which is taken as arrival order.
func (m *OptimisticMatcher) ArriveBlock(envs []*match.Envelope) []Result {
	out := make([]Result, 0, len(envs))
	for len(envs) > 0 {
		n := len(envs)
		if n > m.cfg.BlockSize {
			n = m.cfg.BlockSize
		}
		chunk := envs[:n]
		envs = envs[n:]

		b := m.BeginBlock(n)
		var wg sync.WaitGroup
		wg.Add(n)
		for tid := 0; tid < n; tid++ {
			go func(tid int) {
				defer wg.Done()
				b.Match(tid, chunk[tid])
			}(tid)
		}
		wg.Wait()
		out = append(out, b.results[:n]...)
		b.Finish()
	}
	return out
}

// Arrive matches a single message (a one-message block).
func (m *OptimisticMatcher) Arrive(env *match.Envelope) Result {
	b := m.BeginBlock(1)
	r := b.Match(0, env)
	b.Finish()
	return r
}
