package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/match"
)

// rbucket is one bin of a posted-receive index: a remove lock plus head and
// tail of a posting-ordered chain (§IV-E accounts it at 20 bytes: 4-byte
// lock + two 8-byte pointers). The head pointer is atomic because matching
// threads traverse the chain while a concurrent post appends or an
// eager-removal peer unlinks entries; the remove lock serializes the
// structural mutations (insert and unlink) per bucket, which is all the
// mutual exclusion the arrival path needs — there is no global matcher lock.
type rbucket struct {
	mu   sync.Mutex
	head atomic.Pointer[descriptor]
	tail *descriptor  // maintained under mu (inserts and unlinks)
	n    atomic.Int32 // live entries; atomic so occupancy snapshots are lock-free
}

// recvIndex is one of the four §III-B posted-receive indexes: a hash table
// of rbuckets (or a single chain for the both-wildcard class).
type recvIndex struct {
	buckets []rbucket
}

func newRecvIndex(bins int) *recvIndex {
	return &recvIndex{buckets: make([]rbucket, bins)}
}

func (ix *recvIndex) bucketFor(hash uint64) *rbucket {
	return &ix.buckets[hash%uint64(len(ix.buckets))]
}

// insert appends d at the tail of its bucket chain under the bucket's remove
// lock (the tail races Finish-time unlink sweeps). Chains are posting-
// ordered because PostRecv serializes posts. The lazy parameter is accepted
// for symmetry with unlink policies; insertion itself is identical in both
// modes.
func (ix *recvIndex) insert(d *descriptor, hash uint64, lazy bool) {
	_ = lazy
	b := ix.bucketFor(hash)
	d.owner = b
	b.mu.Lock()
	if b.tail == nil {
		b.head.Store(d)
	} else {
		d.prev = b.tail
		b.tail.next.Store(d)
	}
	b.tail = d
	b.mu.Unlock()
	b.n.Add(1)
}

// unlink removes d from its chain. The caller must hold the bucket's remove
// lock. d.next is preserved so concurrent traversers standing on d fall
// through to the remainder of the chain.
func unlink(d *descriptor) {
	b := d.owner
	if b == nil || d.unlinked {
		return
	}
	next := d.next.Load()
	if d.prev == nil {
		b.head.Store(next)
	} else {
		d.prev.next.Store(next)
	}
	if next == nil {
		b.tail = d.prev
	} else {
		next.prev = d.prev
	}
	d.unlinked = true
	b.n.Add(-1)
}

// eagerUnlink removes d under its bucket's remove lock; this is the
// serialization the §IV-D lazy-removal optimization avoids.
func eagerUnlink(d *descriptor) {
	b := d.owner
	if b == nil {
		return
	}
	b.mu.Lock()
	unlink(d)
	b.mu.Unlock()
}

// search walks the chain for hash and returns the oldest available
// descriptor matching e, plus the number of entries examined, on behalf of
// thread tid of block seq. Availability is relative to the searching block:
// posted entries and entries provisionally consumed by higher-sequence
// blocks (stealable) are candidates; entries consumed at or below seq are
// gone. Receives with labels at or past hzn were published after the block's
// visibility snapshot and are skipped without counting — they belong to the
// post-side future. With earlyCheck enabled, entries already booked in the
// block's epoch by a lower-numbered thread are skipped (§IV-D "early booking
// check"): the booking invariant guarantees such entries will be consumed
// within this block.
func (ix *recvIndex) search(e *match.Envelope, hash uint64, tid int, seq uint64, hzn uint64, earlyCheck bool) (*descriptor, uint64) {
	var traversed uint64
	lower := uint32(1)<<uint(tid) - 1
	epoch := uint32(seq)
	for d := ix.bucketFor(hash).head.Load(); d != nil; d = d.next.Load() {
		if d.label >= hzn {
			continue // posted after this block began: not yet visible
		}
		if d.takenFrom(seq) {
			traversed++
			continue
		}
		if !d.matches(e) {
			traversed++
			continue
		}
		if earlyCheck && d.bookingBits(epoch)&lower != 0 {
			traversed++
			continue
		}
		// The matched entry itself is not charged: "queue depth" counts the
		// elements searched through before the match (which is what lets the
		// Figure 7 averages drop below one as bins multiply).
		return d, traversed
	}
	return nil, traversed
}

// occupancy reports the number of empty bins and the maximum chain length.
// Counters are atomic, so the snapshot never blocks an in-flight block.
func (ix *recvIndex) occupancy() (empty, maxChain int) {
	for i := range ix.buckets {
		n := int(ix.buckets[i].n.Load())
		if n == 0 {
			empty++
		}
		if n > maxChain {
			maxChain = n
		}
	}
	return empty, maxChain
}

// bins returns the bucket count.
func (ix *recvIndex) bins() int { return len(ix.buckets) }
