package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
)

// Package-level microbenchmarks for the engine's hot paths; the repository
// root's bench_test.go holds the table/figure-level harnesses.

func benchMatcher(b *testing.B, bins, blockN int) *core.OptimisticMatcher {
	b.Helper()
	return core.MustNew(core.Config{
		Bins: bins, MaxReceives: 8192, BlockSize: blockN,
		EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
	})
}

// BenchmarkPostRecv measures the host→engine posting path (§IV-E compares
// it to hardware tag matching command cost).
func BenchmarkPostRecv(b *testing.B) {
	m := benchMatcher(b, 2048, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &match.Recv{Source: match.Rank(i % 64), Tag: match.Tag(i % 1024)}
		if _, _, err := m.PostRecv(r); err != nil {
			b.Fatal(err)
		}
		// Keep the table bounded: consume the receive again.
		b.StopTimer()
		m.Arrive(&match.Envelope{Source: r.Source, Tag: r.Tag})
		b.StartTimer()
	}
}

// BenchmarkArriveExpected measures the single-message matching cycle on a
// warm table.
func BenchmarkArriveExpected(b *testing.B) {
	m := benchMatcher(b, 2048, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := &match.Recv{Source: 3, Tag: match.Tag(i % 512)}
		if _, _, err := m.PostRecv(r); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if res := m.Arrive(&match.Envelope{Source: 3, Tag: match.Tag(i % 512)}); res.Unexpected {
			b.Fatal("unexpected")
		}
	}
}

// BenchmarkArriveUnexpected measures the quadruple-index store path.
func BenchmarkArriveUnexpected(b *testing.B) {
	m := benchMatcher(b, 2048, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Arrive(&match.Envelope{Source: match.Rank(i % 64), Tag: match.Tag(i)})
		// Drain periodically so the store doesn't grow unbounded.
		if i%256 == 255 {
			b.StopTimer()
			for j := i - 255; j <= i; j++ {
				m.PostRecv(&match.Recv{Source: match.Rank(j % 64), Tag: match.Tag(j)})
			}
			b.StartTimer()
		}
	}
}

// BenchmarkParallelBlock measures full block turnaround (barrier + conflict
// machinery included) at several widths.
func BenchmarkParallelBlock(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			m := benchMatcher(b, 2048, n)
			envs := make([]*match.Envelope, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < n; j++ {
					m.PostRecv(&match.Recv{Source: match.Rank(j), Tag: match.Tag(j)})
					envs[j] = &match.Envelope{Source: match.Rank(j), Tag: match.Tag(j)}
				}
				b.StartTimer()
				m.ArriveBlock(envs)
			}
			b.ReportMetric(float64(n), "msgs/block")
		})
	}
}

// BenchmarkAblationBarrier compares full block turnaround under the two
// partial-barrier implementations: the default atomic sense-reversing
// barrier and the legacy mutex+condvar one (Config.CondvarBarrier).
func BenchmarkAblationBarrier(b *testing.B) {
	for _, kind := range []string{"atomic", "condvar"} {
		for _, n := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/N=%d", kind, n), func(b *testing.B) {
				m := core.MustNew(core.Config{
					Bins: 2048, MaxReceives: 8192, BlockSize: n,
					EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
					CondvarBarrier: kind == "condvar",
				})
				envs := make([]*match.Envelope, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					for j := 0; j < n; j++ {
						m.PostRecv(&match.Recv{Source: match.Rank(j), Tag: match.Tag(j)})
						envs[j] = &match.Envelope{Source: match.Rank(j), Tag: match.Tag(j)}
					}
					b.StartTimer()
					m.ArriveBlock(envs)
				}
				b.ReportMetric(float64(n), "msgs/block")
			})
		}
	}
}

// BenchmarkPeekUnexpected measures the MPI_Iprobe primitive.
func BenchmarkPeekUnexpected(b *testing.B) {
	m := benchMatcher(b, 2048, 1)
	for i := 0; i < 512; i++ {
		m.Arrive(&match.Envelope{Source: match.Rank(i % 16), Tag: match.Tag(i)})
	}
	r := &match.Recv{Source: 3, Tag: 99}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PeekUnexpected(r)
	}
}
