package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFrontierPrefixOrder is the partial-barrier property (§III-D1): a
// waiter for level i may only proceed once threads 0..i have all completed,
// regardless of the order completions arrive in. Both implementations —
// the atomic sense-reversing barrier and the legacy mutex+condvar one —
// must uphold it.
func TestFrontierPrefixOrder(t *testing.T) {
	for _, kind := range []string{"atomic", "condvar"} {
		t.Run(kind, func(t *testing.T) {
			condvar := kind == "condvar"
			rng := rand.New(rand.NewSource(7))
			var mu sync.Mutex
			cond := sync.NewCond(&mu)
			var f frontier
			for iter := 0; iter < 200; iter++ {
				n := 1 + rng.Intn(MaxBlockSize)
				f.reset(condvar, &mu, cond, n, uint32(iter+1))

				// completed mirrors the frontier: bit i is set just before
				// complete(i), so a correctly released waiter for level l
				// must observe all of bits 0..l.
				var completed atomic.Uint64

				var wwg sync.WaitGroup
				var badLevel atomic.Int32
				for w := 0; w < n; w++ {
					lvl := rng.Intn(n)
					wwg.Add(1)
					go func() {
						defer wwg.Done()
						f.waitThrough(lvl)
						want := uint64(1)<<uint(lvl+1) - 1
						if completed.Load()&want != want {
							badLevel.Store(int32(lvl + 1))
						}
					}()
				}

				var cwg sync.WaitGroup
				for _, i := range rng.Perm(n) {
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						completed.Or(uint64(1) << uint(i))
						f.complete(i)
					}()
				}
				cwg.Wait()
				wwg.Wait()
				if l := badLevel.Load(); l != 0 {
					t.Fatalf("%s iter %d (n=%d): waiter for level %d released before its prefix completed",
						kind, iter, n, l-1)
				}
			}
		})
	}
}

// TestFrontierSingleThread covers the degenerate n=1 block and the
// waitThrough(-1) no-op used by thread 0.
func TestFrontierSingleThread(t *testing.T) {
	var f frontier
	f.reset(false, nil, nil, 1, 1)
	f.waitThrough(-1) // must not block
	f.complete(0)
	f.waitThrough(0) // must not block either
}
