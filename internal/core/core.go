// Package core implements Optimistic Tag Matching, the paper's primary
// contribution: a bin-based MPI message-matching engine designed for
// lightweight, highly parallel on-NIC accelerators such as the BlueField-3
// Data Path Accelerator.
//
// Posted receives are split across four indexes according to the wildcards
// they use (§III-B): a (source,tag)-keyed hash table, a tag-keyed table for
// AnySource receives, a source-keyed table for AnyTag receives, and a
// posting-ordered list for receives with both wildcards. Every receive
// carries a monotonically increasing posting label (for constraint C1
// across indexes) and a compatible-sequence ID (for the fast conflict-
// resolution path).
//
// Incoming messages are processed in blocks of up to N consecutive messages
// by N parallel threads (§III-A). Each thread matches its message
// optimistically — as if alone — then books its candidate receive in the
// receive's booking bitmap, synchronizes on a partial barrier with all
// lower-numbered threads (§III-D1), and checks for conflicts (§III-D2).
// Conflicts are resolved either on the fast path — when all threads booked
// the head of a sequence of compatible receives, thread i simply shifts to
// the receive i positions later in the sequence (§III-D3a) — or on the slow
// path, where thread i waits for thread i−1 to finalize and then redoes the
// search (§III-D3b).
//
// Up to Config.InFlightBlocks arrival blocks run CONCURRENTLY, and posts
// proceed in parallel with them (DESIGN.md §9). Blocks carry monotone
// sequence numbers and retire in order; a block's provisional matches are
// validated at retirement, when every lower-sequence block has committed,
// which is what preserves the C1/C2 ordering constraints. Cross-block
// conflicts resolve through a steal protocol on the descriptor's packed
// ownership word: a lower-sequence block takes a receive back from a
// higher-sequence block that provisionally consumed it, and the victim
// redoes its search when it revalidates. Posts serialize only against each
// other (on the unexpected store's lock) and publish new receives with an
// ordered label watermark, so arrival blocks and PostRecv never exclude one
// another.
//
// Unexpected messages are stored in a mirror set of indexes, with each
// message indexed in all four structures so that a newly posted receive
// needs to search only the one index matching its wildcard class (§IV-C).
//
// The three §IV-D optimizations — inline hash values, the early booking
// check, and lazy removal — are implemented and individually switchable for
// ablation.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/match"
	"repro/internal/obs"
)

// MaxBlockSize is the largest supported matching block (the paper's
// prototype uses 32 threads, "limited by the bookkeeping bitmap size").
const MaxBlockSize = 32

// MaxInFlightBlocks is the largest supported in-flight block window, fixed
// by the per-descriptor booking array (one epoch-tagged bitmap word per
// block ring slot). 8 blocks × 32 threads matches the BF3 DPA's 256
// hardware threads.
const MaxInFlightBlocks = 8

// Model byte costs from §IV-E, used for DPA memory budgeting.
const (
	// BinModelBytes is the accounted size of one bin: a 4-byte remove lock
	// plus head and tail pointers (8 bytes each).
	BinModelBytes = 20
	// DescriptorModelBytes is the accounted size of one receive descriptor.
	DescriptorModelBytes = 64
	// IndexTables is the number of binned hash tables (the both-wildcard
	// class is a plain list and has no bins).
	IndexTables = 3
)

// ErrTableFull is returned by PostRecv when the descriptor table is
// exhausted; per §III-B the application must then fall back to software
// (host) tag matching.
var ErrTableFull = errors.New("core: receive descriptor table full")

// Config parameterizes an OptimisticMatcher.
type Config struct {
	// Bins is the number of buckets in each of the three hash tables.
	// One bin degenerates to traditional list search.
	Bins int
	// MaxReceives is the descriptor-table capacity: the maximum number of
	// receives posted at the same time (§III-B).
	MaxReceives int
	// BlockSize is N, the number of messages matched in parallel
	// (1..MaxBlockSize).
	BlockSize int
	// InFlightBlocks is K, the number of arrival blocks that may be in
	// flight concurrently (1..MaxInFlightBlocks; 0 normalizes to 1).
	// K = 1, the default, serializes blocks exactly as the original engine
	// did. Higher depths overlap block k+1's matching with block k's;
	// cross-block conflicts are resolved by the ownership steal protocol and
	// in-order retirement (DESIGN.md §9).
	InFlightBlocks int

	// EarlyBookingCheck enables the §IV-D optimization that skips, during
	// the optimistic search, receives already booked by a lower thread.
	EarlyBookingCheck bool
	// LazyRemoval enables the §IV-D optimization that marks consumed
	// receives instead of unlinking them inline; marked entries are swept
	// out when a lock holder next walks the chain.
	LazyRemoval bool
	// UseInlineHashes trusts sender-computed hash values carried in the
	// message header (§IV-D) instead of hashing on the accelerator.
	UseInlineHashes bool
	// DisableFastPath forces every conflict onto the slow path; used by the
	// Figure 8 "with-conflict, slow path" scenario and by ablations.
	DisableFastPath bool
	// SimultaneousArrival models the DPA's simultaneous handler activation
	// on a message burst: every thread completes its optimistic search and
	// booking before any thread moves to conflict detection (a full barrier
	// instead of the partial one). Without it, a simulated thread that
	// finishes early consumes its receive before later threads even search,
	// so the all-threads-booked-the-same-receive precondition of the fast
	// path almost never forms. The partial barrier remains the default, as
	// in the paper.
	SimultaneousArrival bool
	// CondvarBarrier selects the legacy mutex+condvar implementation of the
	// partial barrier instead of the default atomic one. Kept for ablation
	// (BenchmarkAblationBarrier); both implementations are semantically
	// identical.
	CondvarBarrier bool
}

// DefaultConfig mirrors the paper's prototype configuration (§VI): hash
// tables sized at twice the maximum number of in-flight receives, 1024
// in-flight receives, 32 threads, all optimizations on, one block in flight.
func DefaultConfig() Config {
	return Config{
		Bins:              2048,
		MaxReceives:       1024,
		BlockSize:         32,
		InFlightBlocks:    1,
		EarlyBookingCheck: true,
		LazyRemoval:       true,
		UseInlineHashes:   true,
	}
}

// validate normalizes cfg and reports configuration errors.
func (cfg *Config) validate() error {
	if cfg.Bins < 1 {
		return fmt.Errorf("core: Bins must be >= 1, got %d", cfg.Bins)
	}
	if cfg.MaxReceives < 1 {
		return fmt.Errorf("core: MaxReceives must be >= 1, got %d", cfg.MaxReceives)
	}
	if cfg.BlockSize < 1 || cfg.BlockSize > MaxBlockSize {
		return fmt.Errorf("core: BlockSize must be in [1,%d], got %d", MaxBlockSize, cfg.BlockSize)
	}
	if cfg.InFlightBlocks == 0 {
		cfg.InFlightBlocks = 1
	}
	if cfg.InFlightBlocks < 1 || cfg.InFlightBlocks > MaxInFlightBlocks {
		return fmt.Errorf("core: InFlightBlocks must be in [1,%d], got %d", MaxInFlightBlocks, cfg.InFlightBlocks)
	}
	return nil
}

// blockRing bounds and orders the in-flight arrival blocks. Block sequence
// numbers are monotone from 1; at most len(slots) blocks run between the
// assignment point (next) and the retire frontier (retired). Blocks recycle
// ring slots, so a saturated pipeline allocates nothing per block.
type blockRing struct {
	mu   sync.Mutex
	cond *sync.Cond

	slots   []Block
	next    uint64 // next block sequence to assign (starts at 1)
	retired uint64 // highest retired block sequence; blocks retire in order

	// Mirrors of next/retired for lock-free readers: the retire frontier
	// gates early result commits and descriptor-slot reclamation.
	nextAtomic    atomic.Uint64
	retiredAtomic atomic.Uint64
}

// OptimisticMatcher is the offloaded matching engine. Arrival blocks (up to
// Config.InFlightBlocks of them) and host-side posts all run concurrently;
// within a block up to BlockSize threads match concurrently.
type OptimisticMatcher struct {
	cfg Config

	table *descriptorTable

	// Posted-receive indexes, one per wildcard class (§III-B).
	idxFull    *recvIndex // key (source, tag, comm)
	idxSrcWild *recvIndex // key (tag, comm)
	idxTagWild *recvIndex // key (source, comm)
	idxBoth    *recvIndex // single chain, posting order

	unexpected *unexpectedStore

	// Post-side sequencing state, guarded by unexpected.mu — the post
	// serialization point (see unexpectedStore).
	nextLabel uint64
	nextSeqID uint64
	lastPost  postKey
	havePost  bool

	// postHorizon is the ordered-publish watermark: every receive with a
	// label below it is fully indexed and visible. It advances under
	// unexpected.mu after each post completes, and arrival blocks snapshot
	// it at BeginBlock — a block never half-sees a post.
	postHorizon atomic.Uint64

	nextSeq uint64 // arrival sequence for envelopes lacking one (ring.mu)

	ring  blockRing
	hints hintTable

	// onUnexpected, when set, runs exactly once per unexpected message,
	// under the store lock, immediately before the message is published to
	// the unexpected store — i.e. before any concurrent post can take it.
	// The offload engine uses it to stabilize eager payloads out of the
	// bounce buffer.
	onUnexpected func(*match.Envelope)

	// obs is the observability sink: engine and search-depth statistics
	// live in its enum-indexed atomic counters (the former engineCounters
	// and depthCounters mirrors are gone — DESIGN.md §10), and lifecycle
	// events go to its ring buffers when tracing is enabled. Always
	// non-nil: New installs a counters-only sink, SetObs replaces it.
	obs *obs.Sink
}

// postKey is the compatibility key of §III-D3a: consecutive receives with
// equal keys form a sequence of compatible receives.
type postKey struct {
	src  match.Rank
	tag  match.Tag
	comm match.CommID
}

// New returns a matcher for cfg.
func New(cfg Config) (*OptimisticMatcher, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &OptimisticMatcher{
		cfg:        cfg,
		table:      newDescriptorTable(cfg.MaxReceives),
		idxFull:    newRecvIndex(cfg.Bins),
		idxSrcWild: newRecvIndex(cfg.Bins),
		idxTagWild: newRecvIndex(cfg.Bins),
		idxBoth:    newRecvIndex(1),
		unexpected: newUnexpectedStore(cfg.Bins),
		obs:        obs.New(obs.Options{}),
	}
	m.ring.slots = make([]Block, cfg.InFlightBlocks)
	m.ring.next = 1
	m.ring.nextAtomic.Store(1)
	m.ring.cond = sync.NewCond(&m.ring.mu)
	m.table.retired = &m.ring.retiredAtomic
	return m, nil
}

// MustNew is New for configurations known to be valid; it panics on error.
func MustNew(cfg Config) *OptimisticMatcher {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the matcher's configuration.
func (m *OptimisticMatcher) Config() Config { return m.cfg }

// SetObs replaces the matcher's observability sink, redirecting its
// counters and (when the sink has tracing enabled) its lifecycle events.
// Install it before any traffic; a nil sink is ignored. Counters already
// accumulated in the previous sink are not migrated.
func (m *OptimisticMatcher) SetObs(s *obs.Sink) {
	if s != nil {
		m.obs = s
	}
}

// Obs returns the matcher's observability sink (never nil).
func (m *OptimisticMatcher) Obs() *obs.Sink { return m.obs }

// SetUnexpectedHook installs a callback invoked exactly once per unexpected
// message, under the store lock, right before the message becomes visible to
// posts. Install it before any arrivals; a nil hook disables it.
func (m *OptimisticMatcher) SetUnexpectedHook(fn func(*match.Envelope)) {
	m.onUnexpected = fn
}

// indexFor returns the posted-receive index for a wildcard class.
func (m *OptimisticMatcher) indexFor(c match.WildcardClass) *recvIndex {
	switch c {
	case match.ClassNone:
		return m.idxFull
	case match.ClassSrcWild:
		return m.idxSrcWild
	case match.ClassTagWild:
		return m.idxTagWild
	default:
		return m.idxBoth
	}
}

// keyHashFor returns the index hash for a receive of class c.
func keyHashFor(c match.WildcardClass, src match.Rank, tag match.Tag, comm match.CommID) uint64 {
	switch c {
	case match.ClassNone:
		return match.HashSrcTag(src, tag, comm)
	case match.ClassSrcWild:
		return match.HashTag(tag, comm)
	case match.ClassTagWild:
		return match.HashSrc(src, comm)
	default:
		return 0
	}
}

// PostRecv presents a receive to the engine (the host → DPA command of
// §IV-E). If a stored unexpected message matches, it is returned; otherwise
// the receive is indexed. ErrTableFull signals that the caller must fall
// back to software matching.
//
// Posts serialize against each other on the store lock but run concurrently
// with arrival blocks: the descriptor is fully linked before the label
// watermark advances past it, and blocks only look below their watermark
// snapshot, so a block either sees the whole post or none of it.
func (m *OptimisticMatcher) PostRecv(r *match.Recv) (*match.Envelope, bool, error) {
	if err := m.checkHints(r); err != nil {
		return nil, false, err
	}

	s := m.unexpected
	s.mu.Lock()
	defer s.mu.Unlock()

	r.Label = m.nextLabel
	m.nextLabel++

	key := postKey{r.Source, r.Tag, r.Comm}
	if !m.havePost || key != m.lastPost {
		m.nextSeqID++
	}
	m.lastPost, m.havePost = key, true

	// Check the unexpected store first (§IV-C): only the index matching the
	// receive's wildcard class needs searching, because every unexpected
	// message is indexed in all four structures.
	env, depth := s.takeMatchLocked(r)
	c := &m.obs.Counters
	c.Inc(obs.CtrPostSearches)
	c.Add(obs.CtrPostTraversed, depth)
	c.Max(obs.CtrPostMaxDepth, depth)
	m.obs.Observe(obs.HistPostDepth, depth)
	if env != nil {
		c.Inc(obs.CtrMatched)
		if m.obs.Enabled() {
			m.obs.Event(obs.EvPostMatch, 0, r.Label, depth, 0)
		}
		m.postHorizon.Store(r.Label + 1)
		return env, true, nil
	}

	d := m.table.alloc()
	if d == nil {
		c.Inc(obs.CtrTableFull)
		// The label is spent even on failure, so the watermark still moves.
		m.postHorizon.Store(r.Label + 1)
		return nil, false, ErrTableFull
	}
	d.recv = r
	d.src, d.tag, d.comm = r.Source, r.Tag, r.Comm
	d.class = r.Class()
	d.label = r.Label
	d.seqID = m.nextSeqID
	for i := range d.booking {
		d.booking[i].Store(0)
	}
	d.markPosted()

	idx := m.indexFor(d.class)
	idx.insert(d, keyHashFor(d.class, r.Source, r.Tag, r.Comm), m.cfg.LazyRemoval)
	c.Inc(obs.CtrQueued)
	// Ordered publish: advance the watermark only after the descriptor is
	// fully linked. The store is still locked, so watermark advances are
	// monotone.
	m.postHorizon.Store(r.Label + 1)
	return nil, false, nil
}

// PeekUnexpected reports whether a stored unexpected message matches r,
// without consuming it — the engine-side primitive behind MPI_Probe and
// MPI_Iprobe. The store is self-locking; arrival blocks are not excluded.
func (m *OptimisticMatcher) PeekUnexpected(r *match.Recv) (*match.Envelope, bool) {
	return m.unexpected.peek(r)
}

// PostedDepth returns the number of live posted receives. It reads an
// atomic counter — no lock — so a snapshot taken while an arrival block is
// in flight reflects some instant within that block.
func (m *OptimisticMatcher) PostedDepth() int {
	return int(m.table.liveCount.Load())
}

// UnexpectedDepth returns the number of stored unexpected messages. The
// store is self-locking.
func (m *OptimisticMatcher) UnexpectedDepth() int {
	return m.unexpected.len()
}

// DepthStats returns cumulative search-depth statistics comparable with the
// baselines' match.Stats. The snapshot is assembled from atomic counters
// without taking any lock; individual fields are each coherent but the
// snapshot as a whole may interleave with a concurrent block.
func (m *OptimisticMatcher) DepthStats() match.Stats {
	c := &m.obs.Counters
	return match.Stats{
		PostSearches:    c.Load(obs.CtrPostSearches),
		PostTraversed:   c.Load(obs.CtrPostTraversed),
		PostMaxDepth:    c.Load(obs.CtrPostMaxDepth),
		ArriveSearches:  c.Load(obs.CtrArriveSearches),
		ArriveTraversed: c.Load(obs.CtrArriveTraversed),
		ArriveMaxDepth:  c.Load(obs.CtrArriveMaxDepth),
		Matched:         c.Load(obs.CtrMatched),
		Unexpected:      c.Load(obs.CtrUnexpectedStored),
		Queued:          c.Load(obs.CtrQueued),
	}
}

// ResetDepthStats zeroes the search-depth statistics.
func (m *OptimisticMatcher) ResetDepthStats() {
	m.obs.Counters.Reset(
		obs.CtrPostSearches, obs.CtrPostTraversed, obs.CtrPostMaxDepth,
		obs.CtrArriveSearches, obs.CtrArriveTraversed, obs.CtrArriveMaxDepth,
		obs.CtrMatched, obs.CtrUnexpectedStored, obs.CtrQueued,
	)
}

// EngineStats counts engine-internal events for benchmarks and ablations.
type EngineStats struct {
	Blocks      uint64 // arrival blocks processed
	Messages    uint64 // messages processed
	Optimistic  uint64 // messages finalized without conflict
	Conflicts   uint64 // messages that lost their booking
	FastPath    uint64 // conflicts resolved via the fast path
	SlowPath    uint64 // conflicts resolved via the slow path
	Unexpected  uint64 // messages stored as unexpected
	Relaxed     uint64 // messages matched under allow_overtaking hints
	TableFull   uint64 // posts rejected with ErrTableFull
	LazySweeps  uint64 // lazy-removal chain sweeps
	LazyReaped  uint64 // consumed entries unlinked by sweeps
	Revalidated uint64 // retirement-time redos (cross-block steals, raced posts)
	Steals      uint64 // descriptors stolen back from higher-sequence blocks
	Retires     uint64 // arrival blocks retired (== Blocks once quiesced)
}

// Stats returns a snapshot of the engine statistics, assembled from the
// sink's atomic counters without taking any lock.
func (m *OptimisticMatcher) Stats() EngineStats {
	c := &m.obs.Counters
	return EngineStats{
		Blocks:      c.Load(obs.CtrBlocks),
		Messages:    c.Load(obs.CtrMessages),
		Optimistic:  c.Load(obs.CtrOptimistic),
		Conflicts:   c.Load(obs.CtrConflicts),
		FastPath:    c.Load(obs.CtrFastPath),
		SlowPath:    c.Load(obs.CtrSlowPath),
		Unexpected:  c.Load(obs.CtrUnexpected),
		Relaxed:     c.Load(obs.CtrRelaxed),
		TableFull:   c.Load(obs.CtrTableFull),
		LazySweeps:  c.Load(obs.CtrLazySweeps),
		LazyReaped:  c.Load(obs.CtrLazyReaped),
		Revalidated: c.Load(obs.CtrRevalidated),
		Steals:      c.Load(obs.CtrSteals),
		Retires:     c.Load(obs.CtrRetires),
	}
}

// ResetStats zeroes the engine statistics.
func (m *OptimisticMatcher) ResetStats() {
	m.obs.Counters.Reset(
		obs.CtrBlocks, obs.CtrMessages, obs.CtrOptimistic,
		obs.CtrConflicts, obs.CtrFastPath, obs.CtrSlowPath,
		obs.CtrUnexpected, obs.CtrRelaxed, obs.CtrTableFull,
		obs.CtrLazySweeps, obs.CtrLazyReaped, obs.CtrRevalidated,
		obs.CtrSteals, obs.CtrRetires,
	)
}

// Footprint is the §IV-E DPA memory model of a configuration.
type Footprint struct {
	BinBytes        int // 3 tables × bins × 20 B
	DescriptorBytes int // MaxReceives × 64 B
}

// Total returns the total modeled bytes.
func (f Footprint) Total() int { return f.BinBytes + f.DescriptorBytes }

// Occupancy reports, across the three binned posted-receive indexes, the
// number of empty bins, the total bins, and the longest chain — the §V-A
// "percentage of empty bins per hash table" statistic. Bucket counters are
// atomic, so the snapshot never blocks (or is blocked by) an in-flight
// arrival block.
func (m *OptimisticMatcher) Occupancy() (empty, total, maxChain int) {
	for _, ix := range []*recvIndex{m.idxFull, m.idxSrcWild, m.idxTagWild} {
		e, mx := ix.occupancy()
		empty += e
		total += ix.bins()
		if mx > maxChain {
			maxChain = mx
		}
	}
	return empty, total, maxChain
}

// ModelFootprint computes the paper's memory model for this configuration.
func (m *OptimisticMatcher) ModelFootprint() Footprint {
	return Footprint{
		BinBytes:        IndexTables * m.cfg.Bins * BinModelBytes,
		DescriptorBytes: m.cfg.MaxReceives * DescriptorModelBytes,
	}
}
