package core

import (
	"testing"

	"repro/internal/match"
)

// makePosted builds a posted descriptor for index tests.
func makePosted(src match.Rank, tag match.Tag, label uint64) *descriptor {
	d := &descriptor{src: src, tag: tag, comm: 0, label: label, slot: -1}
	d.markPosted()
	return d
}

func TestIndexInsertSearchOrder(t *testing.T) {
	ix := newRecvIndex(8)
	h := match.HashSrcTag(1, 2, 0)
	a := makePosted(1, 2, 10)
	b := makePosted(1, 2, 11)
	ix.insert(a, h, true)
	ix.insert(b, h, true)
	e := &match.Envelope{Source: 1, Tag: 2}
	got, n := ix.search(e, h, 0, 1, ^uint64(0), false)
	if got != a {
		t.Fatalf("search returned label %d, want oldest (10)", got.label)
	}
	if n != 0 {
		t.Fatalf("traversed %d, want 0 (the matched entry is not charged)", n)
	}
}

func TestIndexSearchSkipsConsumed(t *testing.T) {
	ix := newRecvIndex(8)
	h := match.HashSrcTag(1, 2, 0)
	a := makePosted(1, 2, 10)
	b := makePosted(1, 2, 11)
	ix.insert(a, h, true)
	ix.insert(b, h, true)
	a.consume(1, 0)
	got, n := ix.search(&match.Envelope{Source: 1, Tag: 2}, h, 0, 1, ^uint64(0), false)
	if got != b {
		t.Fatal("consumed entry not skipped")
	}
	if n != 1 {
		t.Fatalf("traversed %d, want 1 (consumed entries still cost a probe)", n)
	}
}

func TestIndexEarlyBookingCheckSkips(t *testing.T) {
	ix := newRecvIndex(8)
	h := match.HashSrcTag(1, 2, 0)
	a := makePosted(1, 2, 10)
	b := makePosted(1, 2, 11)
	ix.insert(a, h, true)
	ix.insert(b, h, true)
	a.book(5, 0) // thread 0 booked a
	// Thread 2 with early check must skip a (bit 0 < 2) and find b.
	got, _ := ix.search(&match.Envelope{Source: 1, Tag: 2}, h, 2, 5, ^uint64(0), true)
	if got != b {
		t.Fatal("early booking check did not skip lower-booked entry")
	}
	// Thread 0 itself must not skip its own booking.
	got, _ = ix.search(&match.Envelope{Source: 1, Tag: 2}, h, 0, 5, ^uint64(0), true)
	if got != a {
		t.Fatal("thread 0 skipped its own booked entry")
	}
	// A stale epoch booking must not cause a skip.
	got, _ = ix.search(&match.Envelope{Source: 1, Tag: 2}, h, 2, 6, ^uint64(0), true)
	if got != a {
		t.Fatal("stale-epoch booking caused a skip")
	}
}

func TestIndexUnlinkMiddleKeepsNext(t *testing.T) {
	ix := newRecvIndex(1)
	a := makePosted(1, 1, 1)
	b := makePosted(1, 1, 2)
	c := makePosted(1, 1, 3)
	ix.insert(a, 0, true)
	ix.insert(b, 0, true)
	ix.insert(c, 0, true)
	unlink(b)
	// b's next pointer must survive so a traverser standing on b falls
	// through to c.
	if b.next.Load() != c {
		t.Fatal("unlink cleared next pointer")
	}
	// Chain must now be a -> c.
	if a.next.Load() != c || c.prev != a {
		t.Fatal("chain not relinked around b")
	}
	// Head/tail unlinks.
	unlink(a)
	if ix.buckets[0].head.Load() != c {
		t.Fatal("head unlink broken")
	}
	unlink(c)
	if ix.buckets[0].head.Load() != nil || ix.buckets[0].tail != nil {
		t.Fatal("tail unlink broken")
	}
	// Double unlink is a no-op.
	unlink(c)
}

func TestIndexOccupancy(t *testing.T) {
	ix := newRecvIndex(4)
	empty, maxChain := ix.occupancy()
	if empty != 4 || maxChain != 0 {
		t.Fatalf("fresh occupancy = (%d,%d), want (4,0)", empty, maxChain)
	}
	h := match.HashSrcTag(9, 9, 0)
	ix.insert(makePosted(9, 9, 1), h, true)
	ix.insert(makePosted(9, 9, 2), h, true)
	empty, maxChain = ix.occupancy()
	if empty != 3 || maxChain != 2 {
		t.Fatalf("occupancy = (%d,%d), want (3,2)", empty, maxChain)
	}
	if ix.bins() != 4 {
		t.Fatalf("bins = %d, want 4", ix.bins())
	}
}

func TestEagerUnlinkLocksBucket(t *testing.T) {
	ix := newRecvIndex(2)
	d := makePosted(3, 3, 1)
	ix.insert(d, match.HashSrcTag(3, 3, 0), false)
	eagerUnlink(d)
	if !d.unlinked {
		t.Fatal("eagerUnlink did not unlink")
	}
	eagerUnlink(d) // idempotent
	// nil-owner descriptors are tolerated.
	eagerUnlink(&descriptor{})
	unlink(&descriptor{})
}
