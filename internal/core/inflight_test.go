package core_test

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/match/matchtest"
)

// runPipelined drives a scenario through the engine like runBlocks, but
// flushes pending arrivals through ArrivePipelined in batches of up to
// depth×blockN messages, so up to depth matching blocks are genuinely in
// flight at once. Posts flush first (the scenario is sequential: a post
// happens-after every earlier arrival).
func runPipelined(t *testing.T, m *core.OptimisticMatcher, ops []matchtest.Op, blockN, depth int) (pairings []match.Pairing, posted, unexpected int) {
	t.Helper()
	var seq uint64
	var pending []*match.Envelope

	flush := func() {
		if len(pending) == 0 {
			return
		}
		for _, res := range m.ArrivePipelined(pending) {
			if !res.Unexpected {
				pairings = append(pairings, match.Pairing{MsgSeq: res.Env.Seq, RecvLabel: res.Recv.Label})
			}
		}
		pending = pending[:0]
	}

	for _, op := range ops {
		if op.Post {
			flush()
			r := &match.Recv{Source: op.Src, Tag: op.Tag, Comm: op.Comm}
			env, ok, err := m.PostRecv(r)
			if err != nil {
				t.Fatalf("PostRecv: %v", err)
			}
			if ok {
				pairings = append(pairings, match.Pairing{MsgSeq: env.Seq, RecvLabel: r.Label})
			}
		} else {
			seq++
			pending = append(pending, &match.Envelope{Source: op.Src, Tag: op.Tag, Comm: op.Comm, Seq: seq})
			if len(pending) == blockN*depth {
				flush()
			}
		}
	}
	flush()
	return pairings, m.PostedDepth(), m.UnexpectedDepth()
}

// TestInFlightDepthEquivalence is the central multi-block correctness
// property: with K blocks in flight the settled pairing must equal both the
// sequential golden model's and the depth-1 engine's, for random scenarios
// across wildcard mixes, conflict storms, and flood shapes. Retirement-order
// serialization (DESIGN.md §9) is exactly the claim under test.
func TestInFlightDepthEquivalence(t *testing.T) {
	cfgs := []matchtest.Config{
		matchtest.DefaultConfig(),
		{Sources: 2, Tags: 2, Comms: 1, PSrcWild: 0.4, PTagWild: 0.4},
		{Sources: 1, Tags: 1, Comms: 1},                               // single key: pure conflict storm
		{Sources: 1, Tags: 1, Comms: 1, PSrcWild: 0.5, PTagWild: 0.5}, // conflicts + wildcards
		{Sources: 4, Tags: 2, Comms: 1, Burstiness: 8},                // compatible sequences
		{Sources: 3, Tags: 3, Comms: 1, PPost: 0.25, Burstiness: 4},   // arrival floods
		{Sources: 3, Tags: 3, Comms: 1, PPost: 0.75, Burstiness: 4},   // receive floods
	}
	const blockN = 8
	for ci, sc := range cfgs {
		for _, depth := range []int{2, 4, 8} {
			rng := rand.New(rand.NewSource(int64(1000*ci + depth)))
			for iter := 0; iter < 4; iter++ {
				ops := matchtest.Generate(rng, 400, sc)
				gold, gp, gu := matchtest.Run(match.NewListMatcher(), ops)

				one := core.MustNew(engineConfig(64, blockN, nil))
				ref, rp, ru := runPipelined(t, one, ops, blockN, 1)
				if diff := matchtest.DiffPairings(gold, ref); diff != "" {
					t.Fatalf("scenario %d depth 1 iter %d vs golden: %s", ci, iter, diff)
				}

				m := core.MustNew(engineConfig(64, blockN, func(c *core.Config) {
					c.InFlightBlocks = depth
				}))
				got, pp, pu := runPipelined(t, m, ops, blockN, depth)
				if diff := matchtest.DiffPairings(gold, got); diff != "" {
					t.Fatalf("scenario %d depth %d iter %d vs golden: %s", ci, depth, iter, diff)
				}
				if diff := matchtest.DiffPairings(ref, got); diff != "" {
					t.Fatalf("scenario %d depth %d iter %d vs depth 1: %s", ci, depth, iter, diff)
				}
				if gp != pp || gu != pu || rp != pp || ru != pu {
					t.Fatalf("scenario %d depth %d iter %d: depths golden (%d,%d) depth-1 (%d,%d) engine (%d,%d)",
						ci, depth, iter, gp, gu, rp, ru, pp, pu)
				}
			}
		}
	}
}

// TestInFlightDepthOneIsSerial: at InFlightBlocks=1 the ring must reproduce
// the original serial stream bit for bit — ArrivePipelined and ArriveBlock
// give identical pairings and path statistics on the same scenario.
func TestInFlightDepthOneIsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := matchtest.Generate(rng, 500, matchtest.DefaultConfig())

	a := core.MustNew(engineConfig(64, 8, nil))
	pa, ppa, pua := runBlocks(t, a, ops, 8)

	b := core.MustNew(engineConfig(64, 8, nil))
	pb, ppb, pub := runPipelined(t, b, ops, 8, 1)

	if diff := matchtest.DiffPairings(pa, pb); diff != "" {
		t.Fatalf("depth-1 pipelined diverges from serial: %s", diff)
	}
	if ppa != ppb || pua != pub {
		t.Fatalf("depths: serial (%d,%d) pipelined (%d,%d)", ppa, pua, ppb, pub)
	}
	// Path-split counters (optimistic/conflict/fast/slow) vary with thread
	// scheduling even between two serial runs; the deterministic outcome
	// counters must agree exactly, and depth 1 must never re-derive.
	sa, sb := a.Stats(), b.Stats()
	if sa.Blocks != sb.Blocks || sa.Messages != sb.Messages ||
		sa.Unexpected != sb.Unexpected || sa.LazyReaped != sb.LazyReaped ||
		sa.TableFull != sb.TableFull {
		t.Fatalf("outcome stats diverge:\nserial    %+v\npipelined %+v", sa, sb)
	}
	if sb.Revalidated != 0 {
		t.Fatalf("depth-1 pipelined revalidated %d results; serial mode must never re-derive", sb.Revalidated)
	}
}

// TestPostRecvConcurrentWithBlocksStress runs posts truly concurrently with
// a depth-4 stream of in-flight arrival blocks, with lock-free observers
// hammering Occupancy and Stats, and checks the serializability invariants
// that survive nondeterministic interleaving:
//
//   - every receive is matched at most once;
//   - message/receive conservation holds after a final drain;
//   - within each exact key, pairings are order-isomorphic (the i-th
//     matched message of the key pairs with the i-th matched receive —
//     C1/C2 restricted to one key, which no legal interleaving may bend).
//
// Run under -race this doubles as the PostRecv-vs-block data-race probe.
func TestPostRecvConcurrentWithBlocksStress(t *testing.T) {
	const (
		depth  = 4
		blockN = 8
		nKeys  = 13
		nArr   = 2048
		nPost  = 2048
	)
	m := core.MustNew(engineConfig(64, blockN, func(c *core.Config) {
		c.InFlightBlocks = depth
		c.MaxReceives = 4096
	}))
	keyOf := func(i int) (match.Rank, match.Tag) {
		k := i % nKeys
		return match.Rank(k % 4), match.Tag(k / 4)
	}

	recvs := make([]*match.Recv, nPost)
	postEnv := make([]*match.Envelope, nPost) // env matched at post time, if any
	var pwg sync.WaitGroup
	pwg.Add(1)
	go func() {
		defer pwg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < nPost; i++ {
			src, tag := keyOf(i)
			r := &match.Recv{Source: src, Tag: tag}
			recvs[i] = r
			env, ok, err := m.PostRecv(r)
			if err != nil {
				t.Errorf("PostRecv %d: %v", i, err)
				return
			}
			if ok {
				postEnv[i] = env
			}
			if rng.Intn(4) == 0 {
				runtime.Gosched()
			}
		}
	}()

	stop := make(chan struct{})
	var owg sync.WaitGroup
	for o := 0; o < 2; o++ {
		owg.Add(1)
		go func() {
			defer owg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Occupancy()
				m.Stats()
				m.PostedDepth()
				m.UnexpectedDepth()
				runtime.Gosched()
			}
		}()
	}

	var results []core.Result
	for i := 0; i < nArr; i += depth * blockN {
		n := depth * blockN
		if i+n > nArr {
			n = nArr - i
		}
		batch := make([]*match.Envelope, n)
		for j := range batch {
			src, tag := keyOf(i + j)
			batch[j] = &match.Envelope{Source: src, Tag: tag, Seq: uint64(i+j) + 1}
		}
		results = append(results, m.ArrivePipelined(batch)...)
	}
	pwg.Wait()
	close(stop)
	owg.Wait()
	if t.Failed() {
		return
	}

	// Collect all pairings: arrival-side matches plus post-time store hits.
	type pair struct{ seq, label uint64 }
	byKey := make(map[[2]int][]pair)
	matchedRecvs := make(map[*match.Recv]uint64)
	matched := 0
	for _, res := range results {
		if res.Unexpected {
			continue
		}
		matched++
		if prev, dup := matchedRecvs[res.Recv]; dup {
			t.Fatalf("receive label %d matched twice (seqs %d and %d)", res.Recv.Label, prev, res.Env.Seq)
		}
		matchedRecvs[res.Recv] = res.Env.Seq
		k := [2]int{int(res.Env.Source), int(res.Env.Tag)}
		byKey[k] = append(byKey[k], pair{res.Env.Seq, res.Recv.Label})
	}
	for i, env := range postEnv {
		if env == nil {
			continue
		}
		matched++
		r := recvs[i]
		if prev, dup := matchedRecvs[r]; dup {
			t.Fatalf("receive label %d matched twice (seqs %d and %d)", r.Label, prev, env.Seq)
		}
		matchedRecvs[r] = env.Seq
		k := [2]int{int(env.Source), int(env.Tag)}
		byKey[k] = append(byKey[k], pair{env.Seq, r.Label})
	}

	// Conservation: every arrival either matched or is in the store; every
	// receive either matched or is still posted.
	if got := matched + m.UnexpectedDepth(); got != nArr {
		t.Fatalf("message conservation: matched %d + stored %d = %d, want %d",
			matched, m.UnexpectedDepth(), got, nArr)
	}
	if got := matched + m.PostedDepth(); got != nPost {
		t.Fatalf("receive conservation: matched %d + posted %d = %d, want %d",
			matched, m.PostedDepth(), got, nPost)
	}

	// Per-key order isomorphism: sorted by message seq, labels must ascend.
	for k, ps := range byKey {
		sort.Slice(ps, func(i, j int) bool { return ps[i].seq < ps[j].seq })
		for i := 1; i < len(ps); i++ {
			if ps[i].label <= ps[i-1].label {
				t.Fatalf("key %v: message order %d<%d but label order %d>=%d",
					k, ps[i-1].seq, ps[i].seq, ps[i-1].label, ps[i].label)
			}
		}
	}

	// Drain the store: leftovers must come out in per-key arrival order.
	lastSeq := make(map[[2]int]uint64)
	for m.UnexpectedDepth() > 0 {
		drained := false
		for k := 0; k < nKeys; k++ {
			src, tag := keyOf(k)
			env, ok, err := m.PostRecv(&match.Recv{Source: src, Tag: tag})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			drained = true
			kk := [2]int{int(src), int(tag)}
			if env.Seq <= lastSeq[kk] {
				t.Fatalf("key %v drained out of order: %d after %d", kk, env.Seq, lastSeq[kk])
			}
			lastSeq[kk] = env.Seq
		}
		if !drained {
			t.Fatalf("store stuck with %d messages no key can drain", m.UnexpectedDepth())
		}
	}
}

// BenchmarkInFlightArrive measures matcher throughput as the in-flight
// window deepens: distinct-key messages against pre-posted receives, the
// Figure 8 NC shape. Depth 1 is the serial baseline the paper's stream of
// blocks imposes; deeper windows overlap whole blocks.
func BenchmarkInFlightArrive(b *testing.B) {
	const blockN = 8
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "depth=1", 2: "depth=2", 4: "depth=4", 8: "depth=8"}[depth], func(b *testing.B) {
			cfg := core.Config{
				Bins: 2048, MaxReceives: 8192, BlockSize: blockN,
				InFlightBlocks:    depth,
				EarlyBookingCheck: true, LazyRemoval: true, UseInlineHashes: true,
			}
			m := core.MustNew(cfg)
			const span = 512 // messages per inner round, <= MaxReceives
			envs := make([]*match.Envelope, span)
			recvs := make([]match.Recv, span)
			for i := range envs {
				envs[i] = &match.Envelope{Source: match.Rank(i % 64), Tag: match.Tag(i / 64)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := span
				if b.N-done < n {
					n = b.N - done
				}
				for i := 0; i < n; i++ {
					r := &recvs[i]
					*r = match.Recv{Source: envs[i].Source, Tag: envs[i].Tag}
					if _, _, err := m.PostRecv(r); err != nil {
						b.Fatal(err)
					}
				}
				for i := 0; i < n; i++ {
					envs[i].Seq = 0 // reassigned by the block in arrival order
				}
				m.ArrivePipelined(envs[:n])
				done += n
			}
		})
	}
}
