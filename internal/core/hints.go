package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/match"
)

// Hints are the per-communicator matching assertions of §VII: MPI 4.0 lets
// applications declare, through communicator info keys, that certain
// matching generality will not be used, and the paper proposes propagating
// them to the offloaded engine to cut matching costs.
type Hints struct {
	// NoAnySource asserts that no receive on this communicator uses
	// MPI_ANY_SOURCE (mpi_assert_no_any_source): the source-wildcard index
	// is never searched for its messages.
	NoAnySource bool
	// NoAnyTag asserts that no receive uses MPI_ANY_TAG
	// (mpi_assert_no_any_tag): the tag-wildcard index is never searched.
	NoAnyTag bool
	// AllowOvertaking relaxes the C1/C2 ordering constraints
	// (mpi_assert_allow_overtaking): any matching receive may complete any
	// matching message, so conflicted threads grab the next available
	// receive without ordering synchronization.
	AllowOvertaking bool
}

// NoWildcards is the combined assertion that no wildcard receives will be
// posted at all.
func (h Hints) NoWildcards() bool { return h.NoAnySource && h.NoAnyTag }

// String implements fmt.Stringer.
func (h Hints) String() string {
	return fmt.Sprintf("hints{noAnySrc=%v noAnyTag=%v allowOvertaking=%v}",
		h.NoAnySource, h.NoAnyTag, h.AllowOvertaking)
}

// hintTable stores per-communicator hints. Hints are installed rarely
// (communicator creation) and read on every matched message, so reads go
// through a copy-on-write snapshot: get is one atomic pointer load plus a
// map lookup, with no lock and no cache-line writes on the arrival path.
type hintTable struct {
	mu sync.Mutex // serializes writers; readers use the snapshot only
	p  atomic.Pointer[map[match.CommID]Hints]
}

func (t *hintTable) get(comm match.CommID) Hints {
	m := t.p.Load()
	if m == nil {
		return Hints{} // zero value: no assertions
	}
	return (*m)[comm]
}

func (t *hintTable) set(comm match.CommID, h Hints) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var old map[match.CommID]Hints
	if p := t.p.Load(); p != nil {
		old = *p
	}
	next := make(map[match.CommID]Hints, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[comm] = h
	t.p.Store(&next)
}

// ErrHintViolation is returned by PostRecv when a receive contradicts the
// communicator's assertions — the program is erroneous under MPI semantics.
var ErrHintViolation = fmt.Errorf("core: receive violates communicator hints")

// SetCommHints installs matching assertions for a communicator. Install
// hints before posting receives or delivering messages on the
// communicator; they are not retroactive.
func (m *OptimisticMatcher) SetCommHints(comm match.CommID, h Hints) {
	m.hints.set(comm, h)
}

// CommHints returns the hints installed for a communicator.
func (m *OptimisticMatcher) CommHints(comm match.CommID) Hints {
	return m.hints.get(comm)
}

// checkHints validates a receive against its communicator's assertions.
func (m *OptimisticMatcher) checkHints(r *match.Recv) error {
	h := m.hints.get(r.Comm)
	if h.NoAnySource && r.Source == match.AnySource {
		return fmt.Errorf("%w: AnySource receive on comm %d asserted no_any_source", ErrHintViolation, r.Comm)
	}
	if h.NoAnyTag && r.Tag == match.AnyTag {
		return fmt.Errorf("%w: AnyTag receive on comm %d asserted no_any_tag", ErrHintViolation, r.Comm)
	}
	return nil
}
