package core

import (
	"sync"
	"testing"

	"repro/internal/match"
)

func TestUnexpectedQuadrupleIndexing(t *testing.T) {
	s := newUnexpectedStore(16)
	s.insert(&match.Envelope{Source: 3, Tag: 9, Seq: 1})
	if s.len() != 1 {
		t.Fatalf("len = %d, want 1", s.len())
	}
	// Each wildcard class of receive must find the same single message.
	classes := []*match.Recv{
		{Source: 3, Tag: 9},
		{Source: match.AnySource, Tag: 9},
		{Source: 3, Tag: match.AnyTag},
		{Source: match.AnySource, Tag: match.AnyTag},
	}
	for _, r := range classes {
		s2 := newUnexpectedStore(16)
		s2.insert(&match.Envelope{Source: 3, Tag: 9, Seq: 1})
		env, _ := s2.takeMatch(r)
		if env == nil {
			t.Fatalf("class %v did not find the message", r.Class())
		}
		if s2.len() != 0 {
			t.Fatalf("class %v: message not removed from all indexes", r.Class())
		}
	}
}

func TestUnexpectedRemoveFromAllStructures(t *testing.T) {
	s := newUnexpectedStore(16)
	s.insert(&match.Envelope{Source: 1, Tag: 1, Seq: 1})
	s.insert(&match.Envelope{Source: 1, Tag: 2, Seq: 2})
	// Take the first via the full-key index.
	if env, _ := s.takeMatch(&match.Recv{Source: 1, Tag: 1}); env == nil {
		t.Fatal("full-key take failed")
	}
	// The removed message must be invisible to every other index.
	if env, _ := s.takeMatch(&match.Recv{Source: match.AnySource, Tag: 1}); env != nil {
		t.Fatal("removed message still visible in tag index")
	}
	if env, _ := s.takeMatch(&match.Recv{Source: 1, Tag: match.AnyTag}); env == nil || env.Seq != 2 {
		t.Fatal("source index returned the wrong message")
	}
	if s.len() != 0 {
		t.Fatalf("len = %d, want 0", s.len())
	}
}

func TestUnexpectedSortedInsertOutOfOrder(t *testing.T) {
	// Blocks can finalize unexpected messages slightly out of order; the
	// chains must still end up sequence-sorted.
	s := newUnexpectedStore(8)
	for _, seq := range []uint64{3, 1, 4, 2, 5} {
		s.insert(&match.Envelope{Source: 1, Tag: 1, Seq: seq})
	}
	for want := uint64(1); want <= 5; want++ {
		env, _ := s.takeMatch(&match.Recv{Source: match.AnySource, Tag: match.AnyTag})
		if env == nil || env.Seq != want {
			t.Fatalf("takeMatch returned seq %v, want %d", env, want)
		}
	}
}

func TestUnexpectedDepthCounting(t *testing.T) {
	s := newUnexpectedStore(1) // single bin: worst-case chains
	for i := 1; i <= 5; i++ {
		s.insert(&match.Envelope{Source: 9, Tag: match.Tag(i), Seq: uint64(i)})
	}
	// A full-key receive for the last message walks past the four earlier
	// entries (the matched one is not charged).
	_, depth := s.takeMatch(&match.Recv{Source: 9, Tag: 5})
	if depth != 4 {
		t.Fatalf("depth = %d, want 4", depth)
	}
	// No match still reports the traversal cost.
	_, depth = s.takeMatch(&match.Recv{Source: 9, Tag: 99})
	if depth != 4 {
		t.Fatalf("miss depth = %d, want 4", depth)
	}
}

func TestUnexpectedConcurrentInsert(t *testing.T) {
	s := newUnexpectedStore(32)
	var wg sync.WaitGroup
	const n = 64
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.insert(&match.Envelope{Source: match.Rank(i % 4), Tag: 1, Seq: uint64(i)})
		}(i)
	}
	wg.Wait()
	if s.len() != n {
		t.Fatalf("len = %d, want %d", s.len(), n)
	}
	// Wildcard receives must drain in sequence order regardless of the
	// insertion interleaving.
	last := uint64(0)
	for i := 0; i < n; i++ {
		env, _ := s.takeMatch(&match.Recv{Source: match.AnySource, Tag: match.AnyTag})
		if env == nil {
			t.Fatalf("drain stopped early at %d", i)
		}
		if env.Seq <= last {
			t.Fatalf("order violated: %d after %d", env.Seq, last)
		}
		last = env.Seq
	}
}

func TestUnexpectedCommIsolation(t *testing.T) {
	s := newUnexpectedStore(8)
	s.insert(&match.Envelope{Source: 1, Tag: 1, Comm: 5, Seq: 1})
	if env, _ := s.takeMatch(&match.Recv{Source: 1, Tag: 1, Comm: 6}); env != nil {
		t.Fatal("matched across communicators")
	}
	if env, _ := s.takeMatch(&match.Recv{Source: match.AnySource, Tag: match.AnyTag, Comm: 5}); env == nil {
		t.Fatal("same-comm wildcard should match")
	}
}

func TestUnexpectedPeek(t *testing.T) {
	s := newUnexpectedStore(8)
	s.insert(&match.Envelope{Source: 4, Tag: 2, Seq: 1})
	// Peek finds without consuming, across classes.
	for _, r := range []*match.Recv{
		{Source: 4, Tag: 2},
		{Source: match.AnySource, Tag: 2},
		{Source: 4, Tag: match.AnyTag},
		{Source: match.AnySource, Tag: match.AnyTag},
	} {
		env, ok := s.peek(r)
		if !ok || env.Seq != 1 {
			t.Fatalf("peek class %v failed", r.Class())
		}
	}
	if s.len() != 1 {
		t.Fatal("peek consumed the message")
	}
	if _, ok := s.peek(&match.Recv{Source: 9, Tag: 9}); ok {
		t.Fatal("peek invented a message")
	}
}
