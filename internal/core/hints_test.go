package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/match/matchtest"
)

func TestHintViolationRejected(t *testing.T) {
	m := core.MustNew(engineConfig(32, 4, nil))
	m.SetCommHints(1, core.Hints{NoAnySource: true})
	m.SetCommHints(2, core.Hints{NoAnyTag: true})

	if _, _, err := m.PostRecv(&match.Recv{Source: match.AnySource, Tag: 5, Comm: 1}); !errors.Is(err, core.ErrHintViolation) {
		t.Fatalf("AnySource on no_any_source comm: err = %v", err)
	}
	if _, _, err := m.PostRecv(&match.Recv{Source: 3, Tag: match.AnyTag, Comm: 2}); !errors.Is(err, core.ErrHintViolation) {
		t.Fatalf("AnyTag on no_any_tag comm: err = %v", err)
	}
	// The complementary wildcard is still allowed.
	if _, _, err := m.PostRecv(&match.Recv{Source: 3, Tag: match.AnyTag, Comm: 1}); err != nil {
		t.Fatalf("AnyTag on no_any_source comm rejected: %v", err)
	}
	if _, _, err := m.PostRecv(&match.Recv{Source: match.AnySource, Tag: 5, Comm: 2}); err != nil {
		t.Fatalf("AnySource on no_any_tag comm rejected: %v", err)
	}
	// Other communicators are unaffected.
	if _, _, err := m.PostRecv(&match.Recv{Source: match.AnySource, Tag: match.AnyTag, Comm: 3}); err != nil {
		t.Fatalf("wildcards on unhinted comm rejected: %v", err)
	}
}

func TestHintsPruneIndexSearches(t *testing.T) {
	// With full no-wildcard assertions, an arrival probes only the full-key
	// index: search depth must not include the (unsearched) other indexes.
	plain := core.MustNew(engineConfig(1, 1, nil)) // 1 bin: everything collides
	hinted := core.MustNew(engineConfig(1, 1, nil))
	hinted.SetCommHints(0, core.Hints{NoAnySource: true, NoAnyTag: true})

	for _, m := range []*core.OptimisticMatcher{plain, hinted} {
		for i := 0; i < 8; i++ {
			if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: match.Tag(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Arrival for the last-posted key walks the shared chain.
		res := m.Arrive(&match.Envelope{Source: 1, Tag: 7})
		if res.Unexpected {
			t.Fatal("arrival went unexpected")
		}
	}
	// Identical structures here, so identical depth — the pruning shows on
	// wildcard-bearing tables; assert on probe counts with populated
	// wildcard indexes instead:
	plain2 := core.MustNew(engineConfig(1, 1, nil))
	// Populate wildcard indexes on a DIFFERENT comm so they don't match but
	// still cost probes in the unhinted engine.
	for i := 0; i < 16; i++ {
		if _, _, err := plain2.PostRecv(&match.Recv{Source: match.AnySource, Tag: match.Tag(i), Comm: 9}); err != nil {
			t.Fatal(err)
		}
	}
	plain2.PostRecv(&match.Recv{Source: 1, Tag: 7, Comm: 0})
	plain2.Arrive(&match.Envelope{Source: 1, Tag: 7, Comm: 0})
	unhintedDepth := plain2.DepthStats().ArriveTraversed

	hinted2 := core.MustNew(engineConfig(1, 1, nil))
	hinted2.SetCommHints(0, core.Hints{NoAnySource: true, NoAnyTag: true})
	for i := 0; i < 16; i++ {
		if _, _, err := hinted2.PostRecv(&match.Recv{Source: match.AnySource, Tag: match.Tag(i), Comm: 9}); err != nil {
			t.Fatal(err)
		}
	}
	hinted2.PostRecv(&match.Recv{Source: 1, Tag: 7, Comm: 0})
	hinted2.Arrive(&match.Envelope{Source: 1, Tag: 7, Comm: 0})
	hintedDepth := hinted2.DepthStats().ArriveTraversed

	if hintedDepth >= unhintedDepth {
		t.Fatalf("hinted depth %d not below unhinted %d (index pruning missing)",
			hintedDepth, unhintedDepth)
	}
}

func TestHintsStillMatchGolden(t *testing.T) {
	// no_any_source / no_any_tag never change results for conforming
	// programs: run the golden equivalence with wildcards disabled in the
	// scenario and the hints asserted.
	sc := matchtest.Config{Sources: 4, Tags: 4, Comms: 1, Burstiness: 4}
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 10; iter++ {
		ops := matchtest.Generate(rng, 300, sc)
		gold, _, _ := matchtest.Run(match.NewListMatcher(), ops)
		m := core.MustNew(engineConfig(32, 8, nil))
		m.SetCommHints(0, core.Hints{NoAnySource: true, NoAnyTag: true})
		got, _, _ := runBlocks(t, m, ops, 8)
		if diff := matchtest.DiffPairings(gold, got); diff != "" {
			t.Fatalf("iter %d: %s", iter, diff)
		}
	}
}

func TestAllowOvertakingCompleteness(t *testing.T) {
	// Relaxed matching waives ordering, not delivery: every message must
	// still pair with exactly one matching receive.
	m := core.MustNew(engineConfig(64, 16, nil))
	m.SetCommHints(0, core.Hints{AllowOvertaking: true})

	const n = 64
	for i := 0; i < n; i++ {
		if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: 7}); err != nil {
			t.Fatal(err)
		}
	}
	envs := make([]*match.Envelope, n)
	for i := range envs {
		envs[i] = &match.Envelope{Source: 1, Tag: 7}
	}
	seen := make(map[uint64]bool)
	for _, res := range m.ArriveBlock(envs) {
		if res.Unexpected {
			t.Fatal("message went unexpected with matching receives posted")
		}
		if seen[res.Recv.Label] {
			t.Fatalf("receive %d consumed twice", res.Recv.Label)
		}
		seen[res.Recv.Label] = true
	}
	if len(seen) != n {
		t.Fatalf("paired %d receives, want %d", len(seen), n)
	}
	st := m.Stats()
	if st.Relaxed != n {
		t.Fatalf("Relaxed = %d, want %d", st.Relaxed, n)
	}
	if st.Conflicts != 0 || st.FastPath != 0 || st.SlowPath != 0 {
		t.Fatalf("relaxed matching ran conflict machinery: %+v", st)
	}
}

func TestAllowOvertakingMixedComms(t *testing.T) {
	// A block mixing relaxed and ordered communicators: the ordered side
	// must still match the golden ordering, the relaxed side must pair
	// completely.
	m := core.MustNew(engineConfig(64, 8, nil))
	m.SetCommHints(5, core.Hints{AllowOvertaking: true})

	for i := 0; i < 4; i++ {
		if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: match.Tag(i), Comm: 0}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.PostRecv(&match.Recv{Source: 1, Tag: 7, Comm: 5}); err != nil {
			t.Fatal(err)
		}
	}
	envs := []*match.Envelope{
		{Source: 1, Tag: 0, Comm: 0},
		{Source: 1, Tag: 7, Comm: 5},
		{Source: 1, Tag: 1, Comm: 0},
		{Source: 1, Tag: 7, Comm: 5},
		{Source: 1, Tag: 2, Comm: 0},
		{Source: 1, Tag: 7, Comm: 5},
		{Source: 1, Tag: 3, Comm: 0},
		{Source: 1, Tag: 7, Comm: 5},
	}
	ordered := make(map[match.Tag]uint64)
	relaxed := 0
	for _, res := range m.ArriveBlock(envs) {
		if res.Unexpected {
			t.Fatalf("unexpected result: %+v", res)
		}
		if res.Env.Comm == 0 {
			ordered[res.Env.Tag] = res.Recv.Label
		} else {
			relaxed++
		}
	}
	if relaxed != 4 {
		t.Fatalf("relaxed matches = %d, want 4", relaxed)
	}
	// Ordered comm receives were posted interleaved at labels 0,2,4,6 for
	// tags 0..3.
	for tag, wantLabel := range map[match.Tag]uint64{0: 0, 1: 2, 2: 4, 3: 6} {
		if ordered[tag] != wantLabel {
			t.Fatalf("ordered tag %d matched label %d, want %d", tag, ordered[tag], wantLabel)
		}
	}
}

func TestHintsAccessors(t *testing.T) {
	m := core.MustNew(engineConfig(8, 2, nil))
	if h := m.CommHints(3); h != (core.Hints{}) {
		t.Fatalf("default hints = %+v", h)
	}
	want := core.Hints{NoAnySource: true, AllowOvertaking: true}
	m.SetCommHints(3, want)
	if h := m.CommHints(3); h != want {
		t.Fatalf("hints = %+v, want %+v", h, want)
	}
	if want.NoWildcards() {
		t.Fatal("NoWildcards should require both assertions")
	}
	both := core.Hints{NoAnySource: true, NoAnyTag: true}
	if !both.NoWildcards() {
		t.Fatal("NoWildcards with both assertions should hold")
	}
	if both.String() == "" {
		t.Fatal("empty String()")
	}
}
