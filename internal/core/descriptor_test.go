package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/match"
)

func TestBookingEpochInvalidation(t *testing.T) {
	var d descriptor
	d.book(1, 3)
	if got := d.bookingBits(1); got != 1<<3 {
		t.Fatalf("bookingBits(1) = %b, want %b", got, 1<<3)
	}
	// A different epoch must see an empty bitmap without any clearing.
	if got := d.bookingBits(2); got != 0 {
		t.Fatalf("bookingBits(2) = %b, want 0", got)
	}
	// Epochs within the in-flight window occupy distinct ring slots, so
	// concurrent blocks never clobber each other's bookings.
	d.book(2, 0)
	if got := d.bookingBits(2); got != 1 {
		t.Fatalf("bookingBits(2) after book = %b, want 1", got)
	}
	if got := d.bookingBits(1); got != 1<<3 {
		t.Fatalf("in-flight epoch's word must survive, got %b", got)
	}
	// An epoch that recycles the ring slot replaces the stale word.
	d.book(1+MaxInFlightBlocks, 5)
	if got := d.bookingBits(1 + MaxInFlightBlocks); got != 1<<5 {
		t.Fatalf("bookingBits after slot reuse = %b, want %b", got, 1<<5)
	}
	if got := d.bookingBits(1); got != 0 {
		t.Fatalf("recycled slot's old epoch must read empty, got %b", got)
	}
}

func TestBookingAccumulatesWithinEpoch(t *testing.T) {
	var d descriptor
	for tid := 0; tid < MaxBlockSize; tid++ {
		d.book(7, tid)
	}
	if got := d.bookingBits(7); got != 0xFFFFFFFF {
		t.Fatalf("full booking = %x, want ffffffff", got)
	}
}

func TestBookingProperty(t *testing.T) {
	// For any set of (epoch, tid) bookings ending with a run in one epoch,
	// the bits visible for that epoch are exactly the union of that run.
	f := func(tids []uint8) bool {
		var d descriptor
		d.book(1, 5) // stale epoch noise
		var want uint32
		for _, raw := range tids {
			tid := int(raw % MaxBlockSize)
			d.book(2, tid)
			want |= 1 << uint(tid)
		}
		return d.bookingBits(2) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsumeIsExclusive(t *testing.T) {
	var d descriptor
	d.markPosted()
	if !d.consume(4, 0) {
		t.Fatal("first consume must win")
	}
	if d.consume(4, 1) {
		t.Fatal("a same-block peer must lose")
	}
	if !d.isConsumed() {
		t.Fatal("descriptor must be consumed")
	}
	if !d.ownedBy(4, 0) {
		t.Fatal("descriptor must be owned by (4, 0)")
	}
	if d.takenFrom(4) != true || d.takenFrom(3) != false {
		t.Fatal("availability must be relative to the viewer's block sequence")
	}
}

func TestConsumeStealOrder(t *testing.T) {
	// Lower-sequence blocks steal from higher ones, never the reverse: the
	// lower block serializes first, so its claim has precedence.
	var d descriptor
	d.markPosted()
	if !d.consume(4, 2) {
		t.Fatal("initial consume must win")
	}
	if d.consume(5, 0) {
		t.Fatal("a higher-sequence block must not steal from a lower one")
	}
	if !d.consume(3, 1) {
		t.Fatal("a lower-sequence block must steal from a higher one")
	}
	if !d.ownedBy(3, 1) {
		t.Fatal("ownership must transfer to the stealing block")
	}
	if d.consume(4, 2) {
		t.Fatal("the robbed block must not steal back")
	}
}

func TestDescriptorTableAllocRelease(t *testing.T) {
	tab := newDescriptorTable(3)
	if tab.capacity() != 3 {
		t.Fatalf("capacity = %d, want 3", tab.capacity())
	}
	a, b, c := tab.alloc(), tab.alloc(), tab.alloc()
	if a == nil || b == nil || c == nil {
		t.Fatal("allocation within capacity failed")
	}
	if tab.alloc() != nil {
		t.Fatal("allocation beyond capacity must fail")
	}
	a.markPosted()
	b.markPosted()
	c.markPosted()
	if tab.live() != 3 {
		t.Fatalf("live = %d, want 3", tab.live())
	}
	b.consume(1, 0)
	if tab.live() != 2 {
		t.Fatalf("live after consume = %d, want 2", tab.live())
	}
	tab.release(b, 0)
	d := tab.alloc()
	if d == nil {
		t.Fatal("released slot must be reusable")
	}
	if d.slot != b.slot {
		t.Fatalf("reused slot %d, want %d", d.slot, b.slot)
	}
}

func TestDescriptorTableDeferredReclaim(t *testing.T) {
	// With a retire frontier wired in, a released slot stays unavailable
	// until every block at or below its tag has retired.
	tab := newDescriptorTable(1)
	var retired atomic.Uint64
	tab.retired = &retired
	a := tab.alloc()
	if a == nil {
		t.Fatal("allocation within capacity failed")
	}
	a.markPosted()
	a.consume(1, 0)
	tab.release(a, 2) // blocks 1 and 2 may still stand on the chain
	if tab.alloc() != nil {
		t.Fatal("slot reused while blocks <= tag are still in flight")
	}
	retired.Store(1)
	if tab.alloc() != nil {
		t.Fatal("slot reused before the frontier passed its tag")
	}
	retired.Store(2)
	if tab.alloc() == nil {
		t.Fatal("slot must be reusable once the frontier reaches its tag")
	}
}

func TestDescriptorMatches(t *testing.T) {
	d := descriptor{src: match.AnySource, tag: 7, comm: 1}
	if !d.matches(&match.Envelope{Source: 99, Tag: 7, Comm: 1}) {
		t.Fatal("AnySource descriptor must match any source")
	}
	if d.matches(&match.Envelope{Source: 99, Tag: 8, Comm: 1}) {
		t.Fatal("tag mismatch must not match")
	}
	if d.matches(&match.Envelope{Source: 99, Tag: 7, Comm: 2}) {
		t.Fatal("comm mismatch must not match")
	}
}

func TestLowestBit(t *testing.T) {
	cases := []struct {
		v    uint32
		want int
	}{{0, 64}, {1, 0}, {0b1000, 3}, {0b1010, 1}, {1 << 31, 31}}
	for _, c := range cases {
		if got := lowestBit(c.v); got != c.want {
			t.Errorf("lowestBit(%b) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPathString(t *testing.T) {
	names := map[Path]string{
		PathOptimistic: "optimistic",
		PathFast:       "fast",
		PathSlow:       "slow",
		PathUnexpected: "unexpected",
		Path(99):       "Path(99)",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}
