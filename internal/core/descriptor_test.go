package core

import (
	"testing"
	"testing/quick"

	"repro/internal/match"
)

func TestBookingEpochInvalidation(t *testing.T) {
	var d descriptor
	d.book(1, 3)
	if got := d.bookingBits(1); got != 1<<3 {
		t.Fatalf("bookingBits(1) = %b, want %b", got, 1<<3)
	}
	// A different epoch must see an empty bitmap without any clearing.
	if got := d.bookingBits(2); got != 0 {
		t.Fatalf("bookingBits(2) = %b, want 0", got)
	}
	// Booking in the new epoch replaces the stale word.
	d.book(2, 0)
	if got := d.bookingBits(2); got != 1 {
		t.Fatalf("bookingBits(2) after rebook = %b, want 1", got)
	}
	if got := d.bookingBits(1); got != 0 {
		t.Fatalf("old epoch must now read empty, got %b", got)
	}
}

func TestBookingAccumulatesWithinEpoch(t *testing.T) {
	var d descriptor
	for tid := 0; tid < MaxBlockSize; tid++ {
		d.book(7, tid)
	}
	if got := d.bookingBits(7); got != 0xFFFFFFFF {
		t.Fatalf("full booking = %x, want ffffffff", got)
	}
}

func TestBookingProperty(t *testing.T) {
	// For any set of (epoch, tid) bookings ending with a run in one epoch,
	// the bits visible for that epoch are exactly the union of that run.
	f := func(tids []uint8) bool {
		var d descriptor
		d.book(1, 5) // stale epoch noise
		var want uint32
		for _, raw := range tids {
			tid := int(raw % MaxBlockSize)
			d.book(2, tid)
			want |= 1 << uint(tid)
		}
		return d.bookingBits(2) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsumeIsExclusive(t *testing.T) {
	var d descriptor
	d.state.Store(statePosted)
	if !d.consume(4) {
		t.Fatal("first consume must win")
	}
	if d.consume(4) {
		t.Fatal("second consume must lose")
	}
	if !d.isConsumed() {
		t.Fatal("descriptor must be consumed")
	}
	if d.consumeEpoch.Load() != 4 {
		t.Fatalf("consumeEpoch = %d, want 4", d.consumeEpoch.Load())
	}
}

func TestDescriptorTableAllocRelease(t *testing.T) {
	tab := newDescriptorTable(3)
	if tab.capacity() != 3 {
		t.Fatalf("capacity = %d, want 3", tab.capacity())
	}
	a, b, c := tab.alloc(), tab.alloc(), tab.alloc()
	if a == nil || b == nil || c == nil {
		t.Fatal("allocation within capacity failed")
	}
	if tab.alloc() != nil {
		t.Fatal("allocation beyond capacity must fail")
	}
	if tab.live() != 3 {
		t.Fatalf("live = %d, want 3", tab.live())
	}
	b.consume(1)
	if tab.live() != 2 {
		t.Fatalf("live after consume = %d, want 2", tab.live())
	}
	tab.release(b)
	d := tab.alloc()
	if d == nil {
		t.Fatal("released slot must be reusable")
	}
	if d.slot != b.slot {
		t.Fatalf("reused slot %d, want %d", d.slot, b.slot)
	}
}

func TestDescriptorMatches(t *testing.T) {
	d := descriptor{src: match.AnySource, tag: 7, comm: 1}
	if !d.matches(&match.Envelope{Source: 99, Tag: 7, Comm: 1}) {
		t.Fatal("AnySource descriptor must match any source")
	}
	if d.matches(&match.Envelope{Source: 99, Tag: 8, Comm: 1}) {
		t.Fatal("tag mismatch must not match")
	}
	if d.matches(&match.Envelope{Source: 99, Tag: 7, Comm: 2}) {
		t.Fatal("comm mismatch must not match")
	}
}

func TestLowestBit(t *testing.T) {
	cases := []struct {
		v    uint32
		want int
	}{{0, 64}, {1, 0}, {0b1000, 3}, {0b1010, 1}, {1 << 31, 31}}
	for _, c := range cases {
		if got := lowestBit(c.v); got != c.want {
			t.Errorf("lowestBit(%b) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPathString(t *testing.T) {
	names := map[Path]string{
		PathOptimistic: "optimistic",
		PathFast:       "fast",
		PathSlow:       "slow",
		PathUnexpected: "unexpected",
		Path(99):       "Path(99)",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}
